/// \file test_cds_risk.cpp
/// Unit tests for the sensitivity module: bump helpers, sign and magnitude
/// of the greeks, ladder additivity.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

#include "cds/legs.hpp"
#include "cds/risk.hpp"
#include "common/error.hpp"
#include "workload/curves.hpp"

namespace cdsflow::cds {
namespace {

struct RiskFixture : ::testing::Test {
  TermStructure interest = workload::paper_interest_curve(256);
  TermStructure hazard = workload::paper_hazard_curve(256);
  CdsOption option{.id = 0,
                   .maturity_years = 5.0,
                   .payment_frequency = 4.0,
                   .recovery_rate = 0.4};
};

TEST_F(RiskFixture, ParallelBumpShiftsEveryKnot) {
  const auto bumped = parallel_bump(hazard, 0.001);
  for (std::size_t i = 0; i < hazard.size(); ++i) {
    EXPECT_DOUBLE_EQ(bumped.value(i), hazard.value(i) + 0.001);
    EXPECT_DOUBLE_EQ(bumped.time(i), hazard.time(i));
  }
}

TEST_F(RiskFixture, BucketBumpOnlyTouchesRange) {
  const auto bumped = bucket_bump(hazard, 2.0, 5.0, 0.01);
  for (std::size_t i = 0; i < hazard.size(); ++i) {
    const bool in_bucket = hazard.time(i) >= 2.0 && hazard.time(i) < 5.0;
    EXPECT_DOUBLE_EQ(bumped.value(i),
                     hazard.value(i) + (in_bucket ? 0.01 : 0.0));
  }
  EXPECT_THROW(bucket_bump(hazard, 5.0, 2.0, 0.01), Error);
}

TEST_F(RiskFixture, Cs01SignAndMagnitude) {
  const auto s = compute_sensitivities(interest, hazard, option);
  // d(spread)/d(hazard) ~ (1-R): a 1 bp hazard bump moves the spread by
  // roughly 0.6 bp at R=0.4.
  EXPECT_GT(s.cs01, 0.3);
  EXPECT_LT(s.cs01, 1.0);
}

TEST_F(RiskFixture, Rec01IsNegative) {
  const auto s = compute_sensitivities(interest, hazard, option);
  // More recovery => cheaper protection => lower spread.
  EXPECT_LT(s.rec01, 0.0);
}

TEST_F(RiskFixture, JtdIsTheProtectionPayout) {
  // The engine quotes fair spreads (MTM zero), so jump-to-default is
  // exactly (1 - R) per unit notional.
  const auto s = compute_sensitivities(interest, hazard, option);
  EXPECT_DOUBLE_EQ(s.jtd, 1.0 - option.recovery_rate);
  CdsOption zero_recovery = option;
  zero_recovery.recovery_rate = 0.0;
  EXPECT_DOUBLE_EQ(
      compute_sensitivities(interest, hazard, zero_recovery).jtd, 1.0);
}

TEST_F(RiskFixture, Ir01IsSecondOrderSmall) {
  const auto s = compute_sensitivities(interest, hazard, option);
  // Discounting hits both legs almost equally; the spread's rate
  // sensitivity is far below its hazard sensitivity.
  EXPECT_LT(std::fabs(s.ir01), 0.1 * s.cs01);
}

TEST_F(RiskFixture, SpreadFieldMatchesPricer) {
  const auto s = compute_sensitivities(interest, hazard, option);
  EXPECT_NEAR(s.spread_bps,
              price_breakdown(interest, hazard, option).spread_bps, 1e-9);
}

TEST_F(RiskFixture, LadderSumsToParallelCs01) {
  const std::vector<double> edges = {0.0, 1.0, 2.0, 3.0, 5.0, 10.0, 30.0};
  const auto ladder = cs01_ladder(interest, hazard, option, edges);
  ASSERT_EQ(ladder.size(), edges.size() - 1);
  const double ladder_sum =
      std::accumulate(ladder.begin(), ladder.end(), 0.0);
  const auto s = compute_sensitivities(interest, hazard, option);
  // Bucket bumps tile the parallel bump; finite differences are linear to
  // first order, so the ladder sums to the parallel CS01.
  EXPECT_NEAR(ladder_sum, s.cs01, 0.02 * s.cs01);
}

TEST_F(RiskFixture, NoSensitivityBeyondMaturity) {
  // The hazard is piecewise-constant with each rate owned by the knot at
  // the segment's right end, so the first knot *after* maturity still
  // covers part of [0, maturity]. Knots whose whole segment lies beyond
  // maturity (here: beyond 5y + one 30/256y knot spacing) contribute
  // exactly nothing.
  const std::vector<double> edges = {0.0, 5.2, 30.0};
  const auto ladder = cs01_ladder(interest, hazard, option, edges);
  EXPECT_GT(ladder[0], 0.0);
  EXPECT_NEAR(ladder[1], 0.0, 1e-9);
}

TEST_F(RiskFixture, LongerMaturityMoreFrontBucketRisk) {
  const std::vector<double> edges = {0.0, 2.0};
  CdsOption long_opt = option;
  long_opt.maturity_years = 10.0;
  const auto short_ladder = cs01_ladder(interest, hazard, option, edges);
  const auto long_ladder = cs01_ladder(interest, hazard, long_opt, edges);
  // Both contracts see the first two years of hazard; sensitivities are
  // the same order of magnitude and both positive.
  EXPECT_GT(short_ladder[0], 0.0);
  EXPECT_GT(long_ladder[0], 0.0);
}

TEST_F(RiskFixture, ValidationErrors) {
  EXPECT_THROW(compute_sensitivities(interest, hazard, option, 0.0), Error);
  EXPECT_THROW(cs01_ladder(interest, hazard, option, {1.0}), Error);
  EXPECT_THROW(cs01_ladder(interest, hazard, option, {2.0, 1.0}), Error);
}

TEST_F(RiskFixture, BumpHelpersRejectNonFiniteInputs) {
  // A NaN/inf bump would silently poison every downstream spread; the
  // helpers validate instead of producing garbage curves.
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(parallel_bump(hazard, nan), Error);
  EXPECT_THROW(parallel_bump(hazard, inf), Error);
  EXPECT_THROW(bucket_bump(hazard, 0.0, 5.0, nan), Error);
  EXPECT_THROW(bucket_bump(hazard, nan, 5.0, 0.01), Error);
  EXPECT_THROW(bucket_bump(hazard, 0.0, nan, 0.01), Error);
  EXPECT_THROW(compute_sensitivities(interest, hazard, option, inf), Error);
  EXPECT_THROW(cs01_ladder(interest, hazard, option, {0.0, 5.0}, nan),
               Error);
  // +inf as the *upper* edge is the documented "to the end of the curve"
  // convention and stays legal.
  const auto open_ended = bucket_bump(hazard, 5.0, inf, 0.01);
  EXPECT_DOUBLE_EQ(open_ended.value(hazard.size() - 1),
                   hazard.value(hazard.size() - 1) + 0.01);
}

TEST_F(RiskFixture, LadderBucketsBeyondLastKnotAreExactlyZero) {
  // Buckets that start past the hazard curve's final knot bump nothing --
  // bucket_bump returns the identical curve, so up == dn and the entry is
  // exactly 0, not merely small.
  const double beyond = hazard.max_time() + 1.0;
  const auto ladder = cs01_ladder(interest, hazard, option,
                                  {beyond, beyond + 5.0, beyond + 10.0});
  ASSERT_EQ(ladder.size(), 2u);
  EXPECT_EQ(ladder[0], 0.0);
  EXPECT_EQ(ladder[1], 0.0);
}

TEST_F(RiskFixture, SingleBucketLadderMatchesParallelCs01) {
  // One bucket spanning every knot *is* the parallel bump.
  const auto ladder = cs01_ladder(interest, hazard, option,
                                  {0.0, hazard.max_time() + 1.0});
  ASSERT_EQ(ladder.size(), 1u);
  const auto s = compute_sensitivities(interest, hazard, option);
  EXPECT_NEAR(ladder[0], s.cs01, 1e-12 * std::fabs(s.cs01));
}

TEST_F(RiskFixture, EqualEdgesRejected) {
  EXPECT_THROW(cs01_ladder(interest, hazard, option, {1.0, 1.0}), Error);
  EXPECT_THROW(cs01_ladder(interest, hazard, option, {0.0, 1.0, 1.0, 2.0}),
               Error);
}

TEST_F(RiskFixture, CentralDifferenceIsStableInBumpSize) {
  const auto coarse =
      compute_sensitivities(interest, hazard, option, 1e-3);
  const auto fine = compute_sensitivities(interest, hazard, option, 1e-5);
  EXPECT_NEAR(coarse.cs01, fine.cs01, 0.01 * std::fabs(fine.cs01));
}

}  // namespace
}  // namespace cdsflow::cds
