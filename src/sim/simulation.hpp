/// \file simulation.hpp
/// The cycle-level scheduler.
///
/// The Simulation owns processes and channels, and advances a single global
/// clock with an event-accelerated loop: settle the current cycle to
/// quiescence, then jump straight to the earliest future wake-up any process
/// reports. Long pipeline occupancies (a 1024-element scan, a 60 us kernel
/// restart) therefore cost O(1) scheduler work instead of O(cycles), which is
/// what makes whole-portfolio simulations fast enough to benchmark.
///
/// Determinism: processes are stepped in registration order and all
/// randomness lives in workloads, so a given engine + portfolio always
/// produces bit-identical results and cycle counts (asserted by tests).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/cycle.hpp"
#include "sim/process.hpp"

namespace cdsflow::sim {

/// Outcome of a Simulation::run call.
struct SimResult {
  /// Clock value when the last process finished.
  Cycle end_cycle = 0;
  /// Total step() invocations (scheduler effort; useful for sim perf work).
  std::uint64_t total_steps = 0;
  /// Number of distinct cycles at which any progress happened.
  std::uint64_t active_cycles = 0;
};

class Simulation {
 public:
  Simulation() = default;

  /// Registers a process; the simulation takes ownership. Returns a
  /// reference for wiring convenience.
  template <typename P, typename... Args>
  P& add_process(Args&&... args) {
    static_assert(std::is_base_of_v<Process, P>);
    auto p = std::make_unique<P>(std::forward<Args>(args)...);
    P& ref = *p;
    processes_.push_back(std::move(p));
    return ref;
  }

  /// Registers an externally constructed process.
  Process& add(std::unique_ptr<Process> p);

  /// Creates a channel owned by the simulation.
  template <typename T>
  Channel<T>& make_channel(std::string name, std::size_t capacity) {
    auto c = std::make_unique<Channel<T>>(std::move(name), capacity);
    Channel<T>& ref = *c;
    channels_.push_back(std::move(c));
    return ref;
  }

  /// Runs until every process is done. Throws cdsflow::Error on deadlock
  /// (with a full dump of process and channel state) or when `max_cycles`
  /// is exceeded.
  SimResult run(Cycle max_cycles = kNoWake - 1);

  std::size_t process_count() const { return processes_.size(); }
  std::size_t channel_count() const { return channels_.size(); }
  const std::vector<std::unique_ptr<ChannelBase>>& channels() const {
    return channels_;
  }
  const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

  /// Current clock (valid during and after run()).
  Cycle now() const { return now_; }

 private:
  [[noreturn]] void report_deadlock() const;

  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<ChannelBase>> channels_;
  Cycle now_ = 0;
};

}  // namespace cdsflow::sim
