/// \file bench_fig3_vector_lanes.cpp
/// Reproduces paper Fig. 3 (structure): "Vectorisation of defaulting
/// probability calculation."
///
/// Fig. 3 shows the round-robin scheduler streaming input data cyclically to
/// the replicated functions and the defaulting-probability stage consuming
/// results cyclically. The reproduction runs the vectorised engine and
/// reports per-lane busy cycles (balanced by round-robin), scheduler
/// occupancy (the dual-ported-URAM feed limit), and verifies result order is
/// preserved -- plus the headline effect: 6-way replication doubling
/// throughput over the single-unit engine.
///
/// Usage: bench_fig3_vector_lanes [n_options]

#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "engines/interoption_engine.hpp"
#include "engines/vectorised_engine.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 128;

  const auto scenario = workload::paper_scenario(n_options);

  engine::FpgaEngineConfig cfg;
  engine::VectorisedEngine vec(scenario.interest, scenario.hazard, cfg);
  const auto vrun = vec.price(scenario.options);

  engine::InterOptionEngine single(scenario.interest, scenario.hazard, {});
  const auto srun = single.price(scenario.options);

  std::cout << "== Fig. 3 reproduction: round-robin vectorisation ==\n"
            << n_options << " options, " << cfg.vector_lanes
            << " replicated hazard/interp lanes\n\n";

  const auto& stats = vec.last_run();
  std::cout << "interp pool (the Fig. 2 bottleneck):\n";
  std::cout << "  scheduler busy (feeds data from dual-ported URAM): "
            << fixed(100.0 * double(stats.interp_scheduler_busy) /
                         double(stats.span),
                     1)
            << "% of the run -- the feed is the new limiter\n";
  for (std::size_t l = 0; l < stats.interp_lane_busy.size(); ++l) {
    std::cout << "  lane " << l << " busy "
              << pad_left(with_thousands(double(stats.interp_lane_busy[l]), 0),
                          12)
              << " cycles ("
              << fixed(100.0 * double(stats.interp_lane_busy[l]) /
                           double(stats.span),
                       1)
              << "%)\n";
  }
  std::cout << "hazard pool:\n";
  for (std::size_t l = 0; l < stats.hazard_lane_busy.size(); ++l) {
    std::cout << "  lane " << l << " busy "
              << pad_left(with_thousands(double(stats.hazard_lane_busy[l]), 0),
                          12)
              << " cycles\n";
  }

  // Round-robin order preservation: spreads must come back in option order.
  bool ordered = true;
  for (std::size_t i = 0; i < vrun.results.size(); ++i) {
    if (vrun.results[i].id != static_cast<std::int32_t>(i)) ordered = false;
  }
  std::cout << "\nresult order preserved by cyclic collection: "
            << (ordered ? "YES" : "NO") << '\n';

  std::cout << "\nthroughput: vectorised "
            << with_thousands(vrun.options_per_second, 2)
            << " options/s vs single-unit "
            << with_thousands(srun.options_per_second, 2) << " options/s -> "
            << fixed(vrun.options_per_second / srun.options_per_second, 2)
            << "x (paper: replication \"doubled performance\", 2.08x)\n";
  return 0;
}
