// Fixture bench for the bench-json-keys rule: writes BENCH_demo.json but
// under a different key than the one the fixture's bench_diff.py tracks,
// so the tracked metric would silently read as n/a in every trajectory.
#include <fstream>

int main() {
  std::ofstream out("BENCH_demo.json");
  out << "{\n";
  out << "  \"demo_throughput\": 1.0\n";
  out << "}\n";
  return 0;
}
