/// \file test_batch_pricer.cpp
/// The batched SoA fast-path kernel: parity with the golden reference
/// across knot counts and maturity edge cases, the O(log) curve-query fast
/// paths against their HLS-mirroring scan twins, schedule dedup accounting,
/// the buffer-reusing make_schedule overload, and determinism of the
/// cpu-batch engine through the sharded portfolio runtime.

#include <gtest/gtest.h>

#include <vector>

#include "cds/batch_pricer.hpp"
#include "cds/curve.hpp"
#include "cds/hazard.hpp"
#include "cds/legs.hpp"
#include "cds/pricer.hpp"
#include "cds/schedule.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "engines/registry.hpp"
#include "runtime/portfolio_runtime.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"
#include "workload/scenario.hpp"

namespace cdsflow {
namespace {

using cds::BatchPricer;
using cds::CdsOption;
using cds::TermStructure;

/// Kernel parity bar: the spec demands <= 1e-9 relative; the kernel matches
/// the reference association order, so we hold it far tighter.
constexpr double kParityTol = 1e-12;

void expect_parity(const BatchPricer& batch, const cds::ReferencePricer& ref,
                   const std::vector<CdsOption>& book) {
  const auto got = batch.price(book);
  ASSERT_EQ(got.size(), book.size());
  for (std::size_t i = 0; i < book.size(); ++i) {
    const double want = ref.spread_bps(book[i]);
    EXPECT_EQ(got[i].id, book[i].id);
    EXPECT_LE(relative_difference(got[i].spread_bps, want), kParityTol)
        << "option " << i << ": got " << got[i].spread_bps << " want "
        << want;
  }
}

// --- curve-query fast paths -------------------------------------------------------

TEST(InterpolateFast, MatchesScanInterpolationExactly) {
  Rng rng(99);
  for (const std::size_t knots : {1u, 2u, 7u, 64u, 1024u}) {
    const auto curve = workload::paper_interest_curve(knots);
    // Interior, knot-exact, and clamped queries.
    for (int i = 0; i < 500; ++i) {
      const double t = rng.uniform(0.0, curve.max_time() * 1.2);
      EXPECT_EQ(curve.interpolate_fast(t), curve.interpolate(t))
          << "knots=" << knots << " t=" << t;
    }
    for (std::size_t k = 0; k < curve.size(); ++k) {
      EXPECT_EQ(curve.interpolate_fast(curve.time(k)),
                curve.interpolate(curve.time(k)));
    }
    EXPECT_EQ(curve.interpolate_fast(0.0), curve.interpolate(0.0));
    EXPECT_EQ(curve.interpolate_fast(curve.max_time()),
              curve.interpolate(curve.max_time()));
  }
}

TEST(HazardPrefix, MatchesInOrderIntegrationExactly) {
  Rng rng(7);
  for (const std::size_t knots : {1u, 2u, 7u, 64u, 1024u}) {
    const auto hazard = workload::paper_hazard_curve(knots);
    const auto prefix = cds::make_hazard_prefix(hazard);
    for (int i = 0; i < 500; ++i) {
      // Past-the-end draws exercise the last-rate extrapolation tail.
      const double t = rng.uniform(0.0, hazard.max_time() * 1.5);
      EXPECT_EQ(cds::integrated_hazard_prefix(prefix, t),
                cds::integrated_hazard(hazard, t))
          << "knots=" << knots << " t=" << t;
      EXPECT_EQ(cds::survival_probability_prefix(prefix, t),
                cds::survival_probability(hazard, t));
    }
    // Knot-exact queries hit the segment boundary branch.
    for (std::size_t k = 0; k < hazard.size(); ++k) {
      EXPECT_EQ(cds::integrated_hazard_prefix(prefix, hazard.time(k)),
                cds::integrated_hazard(hazard, hazard.time(k)));
    }
    EXPECT_EQ(cds::integrated_hazard_prefix(prefix, 0.0), 0.0);
  }
}

TEST(HazardPrefix, RejectsNegativeTime) {
  const auto prefix =
      cds::make_hazard_prefix(workload::paper_hazard_curve(8));
  EXPECT_THROW(cds::integrated_hazard_prefix(prefix, -0.5), Error);
}

// --- make_schedule buffer overload ------------------------------------------------

TEST(ScheduleBuffer, AppendOverloadMatchesAllocatingOverload) {
  const CdsOption a{.id = 0, .maturity_years = 7.3, .payment_frequency = 4.0,
                    .recovery_rate = 0.4};
  const CdsOption b{.id = 1, .maturity_years = 1.0, .payment_frequency = 12.0,
                    .recovery_rate = 0.4};
  std::vector<cds::TimePoint> buffer;
  const std::size_t n_a = cds::make_schedule(a, buffer);
  const std::size_t n_b = cds::make_schedule(b, buffer);  // appends after a

  const auto want_a = cds::make_schedule(a);
  const auto want_b = cds::make_schedule(b);
  EXPECT_EQ(n_a, want_a.size());
  EXPECT_EQ(n_b, want_b.size());
  ASSERT_EQ(buffer.size(), want_a.size() + want_b.size());
  for (std::size_t i = 0; i < want_a.size(); ++i) {
    EXPECT_EQ(buffer[i].t, want_a[i].t);
    EXPECT_EQ(buffer[i].dt, want_a[i].dt);
  }
  for (std::size_t i = 0; i < want_b.size(); ++i) {
    EXPECT_EQ(buffer[want_a.size() + i].t, want_b[i].t);
    EXPECT_EQ(buffer[want_a.size() + i].dt, want_b[i].dt);
  }
}

TEST(ScheduleBuffer, ArenaAppendGrowsGeometrically) {
  // Appending thousands of schedules into one arena must not reallocate per
  // append (a reserve(size + n) per call turns arena filling quadratic --
  // this is the batch pricer's hot construction path).
  std::vector<cds::TimePoint> buffer;
  std::size_t reallocations = 0;
  std::size_t last_capacity = buffer.capacity();
  for (int i = 0; i < 4000; ++i) {
    const CdsOption option{i, 1.0 + 0.002 * i, 4.0, 0.4};
    cds::make_schedule(option, buffer);
    if (buffer.capacity() != last_capacity) {
      ++reallocations;
      last_capacity = buffer.capacity();
    }
  }
  EXPECT_GT(buffer.size(), 50'000u);
  EXPECT_LT(reallocations, 40u);
}

// --- batch kernel parity ----------------------------------------------------------

TEST(BatchPricer, RandomisedParityAcrossKnotCounts) {
  for (const std::size_t knots : {1u, 3u, 17u, 129u}) {
    SCOPED_TRACE(knots);
    const auto interest = workload::paper_interest_curve(knots, 5);
    const auto hazard = workload::paper_hazard_curve(knots, 6);
    const BatchPricer batch(interest, hazard);
    const cds::ReferencePricer ref(interest, hazard);

    workload::PortfolioSpec spec;
    spec.count = 200;
    spec.frequencies = {1.0, 2.0, 4.0, 12.0};
    spec.frequency_weights = {1.0, 1.0, 4.0, 1.0};
    spec.seed = 1000 + knots;
    expect_parity(batch, ref, workload::make_portfolio(spec));
  }
}

TEST(BatchPricer, EdgeCaseMaturities) {
  const auto interest = workload::paper_interest_curve(64);
  // Short hazard curve: maturities beyond its last knot exercise the
  // last-rate extrapolation in the precomputed survival grid.
  workload::CurveSpec hazard_spec;
  hazard_spec.points = 16;
  hazard_spec.span_years = 5.0;
  hazard_spec.shape = workload::CurveShape::kStressed;
  const auto hazard = workload::make_curve(hazard_spec);

  std::vector<CdsOption> book;
  std::int32_t id = 0;
  // Stub periods just short of a payment date, exact payment-date
  // maturities, single-period options, and beyond-last-knot maturities.
  for (const double maturity : {4.999, 5.0, 5.0 - 1e-11, 0.1, 0.25, 1.0 / 3.0,
                                7.5, 10.0, 29.9}) {
    for (const double frequency : {1.0, 4.0, 2.5}) {
      book.push_back({id++, maturity, frequency, 0.35});
    }
  }
  const BatchPricer batch(interest, hazard);
  const cds::ReferencePricer ref(interest, hazard);
  expect_parity(batch, ref, book);
}

TEST(BatchPricer, SinglePeriodOption) {
  const auto interest = workload::paper_interest_curve(32);
  const auto hazard = workload::paper_hazard_curve(32);
  const BatchPricer batch(interest, hazard);
  const cds::ReferencePricer ref(interest, hazard);
  // Maturity below one payment period: the schedule is the single stub
  // point at maturity.
  const std::vector<CdsOption> book{{7, 0.07, 4.0, 0.55}};
  ASSERT_EQ(cds::schedule_size(book[0]), 1u);
  expect_parity(batch, ref, book);
}

TEST(BatchPricer, DedupAccountingOnStandardTenorBook) {
  const auto scenario = workload::smoke_scenario(4);
  workload::PortfolioSpec spec;
  spec.count = 512;
  spec.maturity_tenor_grid = {1.0, 3.0, 5.0, 7.0, 10.0};
  spec.seed = 31;
  const auto book = workload::make_portfolio(spec);

  const BatchPricer batch(scenario.interest, scenario.hazard);
  BatchPricer::Workspace ws;
  std::vector<cds::SpreadResult> out(book.size());
  const auto stats = batch.price(book, out, ws);

  EXPECT_EQ(stats.options, book.size());
  // 5 tenors x 1 frequency: the whole book collapses to 5 grids.
  EXPECT_EQ(stats.unique_schedules, 5u);
  EXPECT_EQ(stats.grid_points, 4u + 12u + 20u + 28u + 40u);  // quarterly
  EXPECT_EQ(stats.scalar_points,
            workload::total_time_points(book));
  EXPECT_LT(stats.grid_points, stats.scalar_points / 50);

  // Workspace reuse across calls keeps results identical.
  std::vector<cds::SpreadResult> again(book.size());
  batch.price(book, again, ws);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(again[i].spread_bps, out[i].spread_bps);
  }
}

TEST(BatchPricer, PrecomputedGridsMatchReferenceCurveMath) {
  const auto interest = workload::paper_interest_curve(48);
  const auto hazard = workload::paper_hazard_curve(48);
  const BatchPricer batch(interest, hazard);
  // Two options share the 5y-quarterly grid; one brings its own.
  const std::vector<CdsOption> book{
      {0, 5.0, 4.0, 0.4}, {1, 2.5, 2.0, 0.3}, {2, 5.0, 4.0, 0.1}};
  BatchPricer::Workspace ws;
  std::vector<cds::SpreadResult> out(book.size());
  const auto stats = batch.price(book, out, ws);

  ASSERT_EQ(stats.unique_schedules, 2u);
  ASSERT_EQ(ws.points.size(), stats.grid_points);
  ASSERT_EQ(ws.discount.size(), stats.grid_points);
  ASSERT_EQ(ws.survival.size(), stats.grid_points);
  ASSERT_EQ(ws.default_mass.size(), stats.grid_points);
  // The tabulated D/Q/dq grids -- the intermediates a Greeks pass will
  // differentiate -- must equal the reference curve math point for point.
  for (std::size_t g = 0; g < stats.unique_schedules; ++g) {
    const std::size_t begin = ws.grid_offset[g];
    const std::size_t end = g + 1 < stats.unique_schedules
                                ? ws.grid_offset[g + 1]
                                : ws.points.size();
    double q_prev = 1.0;
    for (std::size_t i = begin; i < end; ++i) {
      EXPECT_EQ(ws.discount[i],
                cds::discount_factor(interest, ws.points[i].t));
      EXPECT_EQ(ws.survival[i],
                cds::survival_probability(hazard, ws.points[i].t));
      EXPECT_EQ(ws.default_mass[i], q_prev - ws.survival[i]);
      q_prev = ws.survival[i];
    }
  }
}

TEST(BatchPricer, EmptyBatchAndSizeMismatch) {
  const auto scenario = workload::smoke_scenario(4);
  const BatchPricer batch(scenario.interest, scenario.hazard);
  BatchPricer::Workspace ws;
  const auto stats = batch.price(std::span<const CdsOption>{},
                                 std::span<cds::SpreadResult>{}, ws);
  EXPECT_EQ(stats.options, 0u);
  EXPECT_EQ(stats.unique_schedules, 0u);

  std::vector<cds::SpreadResult> too_small(1);
  EXPECT_THROW(batch.price(scenario.options, too_small, ws), Error);
  EXPECT_THROW(batch.price({CdsOption{0, -1.0, 4.0, 0.4}}), Error);
}

// --- engine + runtime wiring ------------------------------------------------------

TEST(CpuBatchEngine, RegistryParsesBatchNames) {
  const auto scenario = workload::smoke_scenario(8);
  auto one = engine::make_engine("cpu-batch", scenario.interest,
                                 scenario.hazard);
  EXPECT_EQ(one->name(), "cpu-batch");
  auto two = engine::make_engine("cpu-batch-mt2", scenario.interest,
                                 scenario.hazard);
  EXPECT_EQ(two->name(), "cpu-batch-mt2");
  const auto run = two->price(scenario.options);
  EXPECT_EQ(run.results.size(), scenario.options.size());
  EXPECT_THROW(engine::make_engine("cpu-batch-mt0", scenario.interest,
                                   scenario.hazard),
               Error);
}

TEST(CpuBatchEngine, MatchesScalarCpuEngine) {
  const auto scenario = workload::paper_scenario(128, 17);
  auto scalar = engine::make_engine("cpu", scenario.interest,
                                    scenario.hazard);
  auto batch = engine::make_engine("cpu-batch", scenario.interest,
                                   scenario.hazard);
  const auto want = scalar->price(scenario.options);
  const auto got = batch->price(scenario.options);
  ASSERT_EQ(got.results.size(), want.results.size());
  for (std::size_t i = 0; i < want.results.size(); ++i) {
    EXPECT_EQ(got.results[i].id, want.results[i].id);
    EXPECT_LE(relative_difference(got.results[i].spread_bps,
                                  want.results[i].spread_bps),
              kParityTol)
        << "at " << i;
  }
}

TEST(CpuBatchEngine, ThreadedRunMatchesSingleThread) {
  const auto scenario = workload::smoke_scenario(61, 13);
  auto one = engine::make_engine("cpu-batch", scenario.interest,
                                 scenario.hazard);
  auto four = engine::make_engine("cpu-batch-mt4", scenario.interest,
                                  scenario.hazard);
  const auto want = one->price(scenario.options);
  const auto got = four->price(scenario.options);
  ASSERT_EQ(got.results.size(), want.results.size());
  for (std::size_t i = 0; i < want.results.size(); ++i) {
    EXPECT_EQ(got.results[i].id, want.results[i].id);
    EXPECT_EQ(got.results[i].spread_bps, want.results[i].spread_bps)
        << "at " << i;
  }
}

TEST(CpuBatchEngine, InvalidOptionSurfacesAsErrorFromThreadedRuns) {
  // An exception inside the OpenMP region / worker threads must surface as
  // a catchable Error, not terminate the process.
  const auto scenario = workload::smoke_scenario(12);
  auto book = scenario.options;
  book[7].maturity_years = -1.0;
  for (const auto* name : {"cpu-mt3", "cpu-batch-mt3"}) {
    SCOPED_TRACE(name);
    auto engine = engine::make_engine(name, scenario.interest,
                                      scenario.hazard);
    EXPECT_THROW(engine->price(book), Error);
    // The engine stays usable after the failed batch.
    const auto run = engine->price(scenario.options);
    EXPECT_EQ(run.results.size(), scenario.options.size());
  }
}

TEST(CpuBatchEngine, DeterministicThroughPortfolioRuntime) {
  const auto scenario = workload::smoke_scenario(53, 29);
  std::vector<cds::SpreadResult> reference;
  for (const unsigned workers : {1u, 2u, 4u}) {
    SCOPED_TRACE(workers);
    runtime::RuntimeConfig cfg;
    cfg.engine = "cpu-batch";
    cfg.workers = workers;
    cfg.shard_size = 7;  // ragged final shard: 53 = 7*7 + 4
    runtime::PortfolioRuntime rt(scenario.interest, scenario.hazard, cfg);
    const auto run = rt.price(scenario.options);
    ASSERT_EQ(run.run.results.size(), scenario.options.size());
    if (reference.empty()) {
      reference = run.run.results;
      // Shard-boundary parity against the unsharded scalar reference.
      const cds::ReferencePricer ref(scenario.interest, scenario.hazard);
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_LE(relative_difference(reference[i].spread_bps,
                                      ref.spread_bps(scenario.options[i])),
                  kParityTol);
      }
    } else {
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(run.run.results[i].id, reference[i].id);
        EXPECT_EQ(run.run.results[i].spread_bps, reference[i].spread_bps)
            << "at " << i;
      }
    }
  }
}

}  // namespace
}  // namespace cdsflow
