/// \file test_sim_trace.cpp
/// Unit tests for sim::Trace: busy accounting, overlap, concurrency metric,
/// ASCII rendering.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/trace.hpp"

namespace cdsflow::sim {
namespace {

TEST(Trace, EmptyTrace) {
  Trace t;
  EXPECT_EQ(t.span(), 0u);
  EXPECT_EQ(t.mean_concurrency(), 0.0);
}

TEST(Trace, BusyCyclesPerTrack) {
  Trace t;
  const auto a = t.add_track("a");
  const auto b = t.add_track("b");
  t.record(a, 0, 10);
  t.record(a, 20, 25);
  t.record(b, 5, 8);
  EXPECT_EQ(t.busy_cycles(a), 15u);
  EXPECT_EQ(t.busy_cycles(b), 3u);
  EXPECT_EQ(t.span(), 25u);
}

TEST(Trace, UtilisationFractions) {
  Trace t;
  const auto a = t.add_track("a");
  t.record(a, 0, 50);
  const auto b = t.add_track("b");
  t.record(b, 0, 100);
  EXPECT_DOUBLE_EQ(t.utilisation(a), 0.5);
  EXPECT_DOUBLE_EQ(t.utilisation(b), 1.0);
}

TEST(Trace, RejectsEmptyIntervalAndUnknownTrack) {
  Trace t;
  const auto a = t.add_track("a");
  EXPECT_THROW(t.record(a, 5, 5), Error);
  EXPECT_THROW(t.record(a + 1, 0, 1), Error);
}

TEST(Trace, OverlapFullPartialNone) {
  Trace t;
  const auto a = t.add_track("a");
  const auto b = t.add_track("b");
  const auto c = t.add_track("c");
  t.record(a, 0, 10);
  t.record(b, 0, 10);   // full overlap with a
  t.record(c, 10, 20);  // no overlap with a
  EXPECT_DOUBLE_EQ(t.overlap_fraction(a, b), 1.0);
  EXPECT_DOUBLE_EQ(t.overlap_fraction(a, c), 0.0);

  Trace t2;
  const auto x = t2.add_track("x");
  const auto y = t2.add_track("y");
  t2.record(x, 0, 10);
  t2.record(y, 5, 15);  // 5 cycles of 10 overlap
  EXPECT_DOUBLE_EQ(t2.overlap_fraction(x, y), 0.5);
}

TEST(Trace, OverlapHandlesFragmentedIntervals) {
  Trace t;
  const auto a = t.add_track("a");
  const auto b = t.add_track("b");
  t.record(a, 0, 2);
  t.record(a, 4, 6);
  t.record(b, 1, 5);  // overlaps [1,2) and [4,5) => 2 of min(4,4)=4
  EXPECT_DOUBLE_EQ(t.overlap_fraction(a, b), 0.5);
}

TEST(Trace, MeanConcurrencySequentialIsOne) {
  Trace t;
  const auto a = t.add_track("a");
  const auto b = t.add_track("b");
  t.record(a, 0, 10);
  t.record(b, 10, 20);
  EXPECT_DOUBLE_EQ(t.mean_concurrency(), 1.0);
}

TEST(Trace, MeanConcurrencyParallelIsTwo) {
  Trace t;
  const auto a = t.add_track("a");
  const auto b = t.add_track("b");
  t.record(a, 0, 10);
  t.record(b, 0, 10);
  EXPECT_DOUBLE_EQ(t.mean_concurrency(), 2.0);
}

TEST(Trace, AsciiRenderingShape) {
  Trace t;
  const auto a = t.add_track("stage_a");
  t.record(a, 0, 100);
  const std::string out = t.render_ascii(50);
  EXPECT_NE(out.find("stage_a"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_THROW(t.render_ascii(2), Error);
}

TEST(Trace, AsciiGlyphsReflectDensity) {
  Trace t;
  const auto a = t.add_track("a");
  // Busy only in the first half of a 2-bucket timeline.
  t.record(a, 0, 50);
  const auto b = t.add_track("b");
  t.record(b, 0, 100);
  const std::string out = t.render_ascii(10);
  // Track a: 5 busy buckets then 5 idle; track b: all busy.
  EXPECT_NE(out.find("#####     "), std::string::npos);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

}  // namespace
}  // namespace cdsflow::sim
