#include "cds/schedule.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cdsflow::cds {

namespace {

/// Tolerance for "maturity lands exactly on a payment date": avoids a
/// zero-length stub period from floating-point representation of dates like
/// 5.0 * 4 payments.
constexpr double kDateEps = 1e-9;

}  // namespace

std::size_t schedule_size(const CdsOption& option) {
  option.validate();
  const double periods = option.maturity_years * option.payment_frequency;
  // ceil with tolerance: maturity exactly on a payment date does not open a
  // new (empty) period.
  const auto n = static_cast<std::size_t>(std::ceil(periods - kDateEps));
  return n == 0 ? 1 : n;
}

std::vector<TimePoint> make_schedule(const CdsOption& option) {
  const std::size_t n = schedule_size(option);
  std::vector<TimePoint> points;
  points.reserve(n);
  const double step = 1.0 / option.payment_frequency;
  double prev = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    double t = static_cast<double>(i) * step;
    if (i == n || t > option.maturity_years) t = option.maturity_years;
    CDSFLOW_ASSERT(t > prev, "schedule produced a non-increasing time point");
    points.push_back({t, t - prev});
    prev = t;
  }
  CDSFLOW_ASSERT(points.back().t == option.maturity_years,
                 "schedule must end at maturity");
  return points;
}

}  // namespace cdsflow::cds
