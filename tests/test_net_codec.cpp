/// \file test_net_codec.cpp
/// Fuzz + property tests for the service wire codec -- the trust boundary.
///
/// Properties: every frame type round-trips bit-exactly through
/// encode->FrameReader under arbitrary stream splits (byte-at-a-time
/// included); every entry of a malformed corpus (truncated/oversized
/// lengths, bad magic/version/type, reserved bits, count mismatches)
/// cleanly poisons the reader -- no crash, no hang, no frame invented --
/// and nothing behind the poison point is ever surfaced. A seeded
/// random-bytes and bit-flip fuzz runs the same invariants over thousands
/// of adversarial streams; the suite runs under the ASan/UBSan and TSan CI
/// lanes, so "cleanly" is memory-clean, not just exception-clean.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/codec.hpp"

namespace cdsflow {
namespace {

using net::Frame;
using net::FrameReader;
using net::FrameType;
using net::RejectReason;

std::vector<cds::CdsOption> random_options(Rng& rng, std::size_t count) {
  std::vector<cds::CdsOption> options(count);
  for (std::size_t i = 0; i < count; ++i) {
    options[i].id = static_cast<std::int32_t>(rng.uniform_int(-1000, 100000));
    options[i].maturity_years = rng.uniform(0.25, 30.0);
    options[i].payment_frequency = rng.uniform(0.25, 1.0);
    options[i].recovery_rate = rng.uniform(0.0, 0.9);
  }
  return options;
}

std::vector<cds::SpreadResult> random_results(Rng& rng, std::size_t count) {
  std::vector<cds::SpreadResult> results(count);
  for (std::size_t i = 0; i < count; ++i) {
    results[i].id = static_cast<std::int32_t>(rng.uniform_int(0, 1 << 20));
    results[i].spread_bps = rng.uniform(-500.0, 5000.0);
  }
  return results;
}

std::vector<cds::Sensitivities> random_greeks(
    Rng& rng, const std::vector<cds::SpreadResult>& results) {
  std::vector<cds::Sensitivities> greeks(results.size());
  for (std::size_t i = 0; i < greeks.size(); ++i) {
    greeks[i].spread_bps = results[i].spread_bps;
    greeks[i].cs01 = rng.uniform(-10.0, 10.0);
    greeks[i].ir01 = rng.uniform(-10.0, 10.0);
    greeks[i].rec01 = rng.uniform(-10.0, 10.0);
    greeks[i].jtd = rng.uniform(-1e6, 1e6);
  }
  return greeks;
}

/// Feeds `bytes` to a reader in `chunk`-sized pieces and collects frames.
std::vector<Frame> decode_chunked(const std::vector<std::uint8_t>& bytes,
                                  std::size_t chunk, FrameReader& reader) {
  std::vector<Frame> frames;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - off);
    reader.feed(bytes.data() + off, n);
    while (auto frame = reader.next()) frames.push_back(std::move(*frame));
  }
  while (auto frame = reader.next()) frames.push_back(std::move(*frame));
  return frames;
}

void expect_bit_equal(const std::vector<cds::SpreadResult>& a,
                      const std::vector<cds::SpreadResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].spread_bps),
              std::bit_cast<std::uint64_t>(b[i].spread_bps));
  }
}

// --- round-trip properties --------------------------------------------------

TEST(NetCodec, QuoteUpdateRoundTripsUnderAllSplits) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const auto tenant = static_cast<std::uint32_t>(rng.uniform_int(1, 1000));
    const auto knot = static_cast<std::uint32_t>(rng.uniform_int(0, 63));
    const double rate = rng.uniform(1e-6, 0.5);
    const auto bytes = net::encode_quote_update(tenant, knot, rate);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    bytes.size()}) {
      FrameReader reader;
      const auto frames = decode_chunked(bytes, chunk, reader);
      ASSERT_FALSE(reader.failed()) << reader.error();
      ASSERT_EQ(frames.size(), 1u);
      EXPECT_EQ(frames[0].type, FrameType::kQuoteUpdate);
      EXPECT_EQ(frames[0].tenant, tenant);
      EXPECT_EQ(frames[0].knot, knot);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].rate),
                std::bit_cast<std::uint64_t>(rate));
    }
  }
}

TEST(NetCodec, PriceAndRiskRequestsRoundTripRandomPayloads) {
  Rng rng(202);
  for (int trial = 0; trial < 50; ++trial) {
    const auto count = static_cast<std::size_t>(rng.uniform_int(1, 300));
    const auto options = random_options(rng, count);
    const bool risk = trial % 2 == 1;
    const auto bytes = net::encode_price_request(9, 1000 + trial, options,
                                                 risk);
    FrameReader reader;
    const auto frames = decode_chunked(bytes, 13, reader);
    ASSERT_FALSE(reader.failed()) << reader.error();
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type,
              risk ? FrameType::kRiskRequest : FrameType::kPriceRequest);
    EXPECT_EQ(frames[0].request, static_cast<std::uint32_t>(1000 + trial));
    ASSERT_EQ(frames[0].options.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(frames[0].options[i].id, options[i].id);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].options[i].maturity_years),
                std::bit_cast<std::uint64_t>(options[i].maturity_years));
      EXPECT_EQ(
          std::bit_cast<std::uint64_t>(frames[0].options[i].payment_frequency),
          std::bit_cast<std::uint64_t>(options[i].payment_frequency));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].options[i].recovery_rate),
                std::bit_cast<std::uint64_t>(options[i].recovery_rate));
    }
  }
}

TEST(NetCodec, ResultFramesRoundTripPriceAndRiskKinds) {
  Rng rng(303);
  for (int trial = 0; trial < 50; ++trial) {
    const auto count = static_cast<std::size_t>(rng.uniform_int(0, 200));
    const auto results = random_results(rng, count);
    const bool risk = trial % 2 == 0 && count > 0;
    const auto greeks =
        risk ? random_greeks(rng, results) : std::vector<cds::Sensitivities>{};
    const std::uint8_t status =
        trial % 3 == 0 ? net::kResultDeferred : net::kResultOnTime;
    const auto bytes = net::encode_result(3, 77 + trial, status, results,
                                          greeks);
    FrameReader reader;
    const auto frames = decode_chunked(bytes, 1, reader);  // worst-case split
    ASSERT_FALSE(reader.failed()) << reader.error();
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, FrameType::kResult);
    EXPECT_EQ(frames[0].status, status);
    EXPECT_EQ(frames[0].risk, risk);
    expect_bit_equal(frames[0].results, results);
    if (risk) {
      ASSERT_EQ(frames[0].greeks.size(), greeks.size());
      for (std::size_t i = 0; i < greeks.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].greeks[i].cs01),
                  std::bit_cast<std::uint64_t>(greeks[i].cs01));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].greeks[i].jtd),
                  std::bit_cast<std::uint64_t>(greeks[i].jtd));
      }
    }
  }
}

TEST(NetCodec, RejectFramesRoundTripEveryReason) {
  for (const auto reason :
       {RejectReason::kMalformed, RejectReason::kOverload,
        RejectReason::kUnknownTenant, RejectReason::kWrongMode}) {
    const auto bytes =
        net::encode_reject(4, 9, reason, "why: " + std::string(50, 'x'));
    FrameReader reader;
    const auto frames = decode_chunked(bytes, 3, reader);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, FrameType::kReject);
    EXPECT_EQ(frames[0].reason, reason);
    EXPECT_EQ(frames[0].detail, "why: " + std::string(50, 'x'));
  }
}

TEST(NetCodec, BackToBackFramesDecodeInOrderAcrossRandomSplits) {
  Rng rng(404);
  std::vector<std::uint8_t> stream;
  std::vector<std::uint32_t> request_ids;
  for (int i = 0; i < 20; ++i) {
    const auto options =
        random_options(rng, static_cast<std::size_t>(rng.uniform_int(1, 40)));
    const auto id = static_cast<std::uint32_t>(i + 1);
    request_ids.push_back(id);
    const auto bytes = net::encode_price_request(1, id, options);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  // Random chunking independent of frame boundaries.
  FrameReader reader;
  std::vector<Frame> frames;
  std::size_t off = 0;
  while (off < stream.size()) {
    const auto chunk = static_cast<std::size_t>(rng.uniform_int(1, 97));
    const std::size_t n = std::min(chunk, stream.size() - off);
    ASSERT_TRUE(reader.feed(stream.data() + off, n));
    off += n;
    while (auto frame = reader.next()) frames.push_back(std::move(*frame));
  }
  ASSERT_EQ(frames.size(), request_ids.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].request, request_ids[i]);
  }
}

// --- cluster frames (docs/PROTOCOL.md sections 6-8) -------------------------

TEST(NetCodec, NodeProbeRequestAndReplyRoundTripUnderAllSplits) {
  // Empty-payload request.
  const auto request = net::encode_node_probe(42);
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{7}, request.size()}) {
    FrameReader reader;
    const auto frames = decode_chunked(request, chunk, reader);
    ASSERT_FALSE(reader.failed()) << reader.error();
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, FrameType::kNodeProbe);
    EXPECT_FALSE(frames[0].probe_reply);
    EXPECT_EQ(frames[0].tenant, 0u);
    EXPECT_EQ(frames[0].request, 42u);
  }
  // Node-info reply with the full capability tuple.
  const double ops = 1.25e6;
  const double setup = 3.5e-4;
  const double watts = 72.5;
  const auto reply =
      net::encode_node_info(42, 8, ops, setup, watts, "cpu-batch-t4");
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{7}, reply.size()}) {
    FrameReader reader;
    const auto frames = decode_chunked(reply, chunk, reader);
    ASSERT_FALSE(reader.failed()) << reader.error();
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, FrameType::kNodeProbe);
    EXPECT_TRUE(frames[0].probe_reply);
    EXPECT_EQ(frames[0].request, 42u);
    EXPECT_EQ(frames[0].lanes, 8u);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].ops_per_second),
              std::bit_cast<std::uint64_t>(ops));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].setup_seconds),
              std::bit_cast<std::uint64_t>(setup));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].watts),
              std::bit_cast<std::uint64_t>(watts));
    EXPECT_EQ(frames[0].engine, "cpu-batch-t4");
  }
}

TEST(NetCodec, ShardPriceRoundTripsBothKindsAndMatchesItsByteFormula) {
  Rng rng(606);
  for (int trial = 0; trial < 50; ++trial) {
    const auto count = static_cast<std::size_t>(rng.uniform_int(1, 300));
    const auto options = random_options(rng, count);
    const bool risk = trial % 2 == 1;
    const auto shard = static_cast<std::uint32_t>(trial);
    const auto bytes = net::encode_shard_price(shard, options, risk);
    EXPECT_EQ(bytes.size(), net::shard_price_frame_bytes(count));
    FrameReader reader;
    const auto frames = decode_chunked(bytes, 13, reader);
    ASSERT_FALSE(reader.failed()) << reader.error();
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, FrameType::kShardPrice);
    EXPECT_EQ(frames[0].tenant, 0u);
    EXPECT_EQ(frames[0].request, shard);
    EXPECT_EQ(frames[0].risk, risk);
    ASSERT_EQ(frames[0].options.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(frames[0].options[i].id, options[i].id);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].options[i].maturity_years),
                std::bit_cast<std::uint64_t>(options[i].maturity_years));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].options[i].recovery_rate),
                std::bit_cast<std::uint64_t>(options[i].recovery_rate));
    }
  }
}

TEST(NetCodec, ShardResultRoundTripsPriceAndRiskRowsBitExactly) {
  Rng rng(707);
  for (int trial = 0; trial < 50; ++trial) {
    const auto count = static_cast<std::size_t>(rng.uniform_int(1, 200));
    const auto results = random_results(rng, count);
    const bool risk = trial % 2 == 0;
    const auto greeks =
        risk ? random_greeks(rng, results) : std::vector<cds::Sensitivities>{};
    const double engine_seconds = rng.uniform(1e-6, 10.0);
    const auto shard = static_cast<std::uint32_t>(trial);
    const auto bytes =
        net::encode_shard_result(shard, engine_seconds, results, greeks);
    EXPECT_EQ(bytes.size(), net::shard_result_frame_bytes(count, risk));
    FrameReader reader;
    const auto frames = decode_chunked(bytes, 1, reader);  // worst-case split
    ASSERT_FALSE(reader.failed()) << reader.error();
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, FrameType::kShardResult);
    EXPECT_EQ(frames[0].request, shard);
    EXPECT_EQ(frames[0].risk, risk);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].engine_seconds),
              std::bit_cast<std::uint64_t>(engine_seconds));
    expect_bit_equal(frames[0].results, results);
    if (risk) {
      ASSERT_EQ(frames[0].greeks.size(), greeks.size());
      for (std::size_t i = 0; i < greeks.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].greeks[i].cs01),
                  std::bit_cast<std::uint64_t>(greeks[i].cs01));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].greeks[i].ir01),
                  std::bit_cast<std::uint64_t>(greeks[i].ir01));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].greeks[i].rec01),
                  std::bit_cast<std::uint64_t>(greeks[i].rec01));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(frames[0].greeks[i].jtd),
                  std::bit_cast<std::uint64_t>(greeks[i].jtd));
      }
    }
  }
}

// --- encoder bounds ---------------------------------------------------------

TEST(NetCodec, EncodersEnforceTheSameBoundsTheDecoderRejects) {
  Rng rng(505);
  auto too_many = random_options(rng, net::kMaxOptionsPerRequest + 1);
  EXPECT_THROW(net::encode_price_request(1, 1, too_many), Error);
  EXPECT_THROW(net::encode_price_request(1, 1, {}), Error);
  EXPECT_THROW(net::encode_reject(1, 1, RejectReason::kOverload,
                                  std::string(net::kMaxRejectDetailBytes + 1,
                                              'a')),
               Error);
  EXPECT_THROW(net::encode_shard_price(1, {}), Error);
  EXPECT_THROW(net::encode_shard_price(1, too_many), Error);
  EXPECT_THROW(net::encode_shard_result(1, 0.1, {}), Error);
  EXPECT_THROW(net::encode_node_info(1, 0, 1e6, 0.0, 10.0, "cpu-batch"),
               Error);
  EXPECT_THROW(net::encode_node_info(1, 4, 1e6, 0.0, 10.0, ""), Error);
  EXPECT_THROW(net::encode_node_info(
                   1, 4, 1e6, 0.0, 10.0,
                   std::string(net::kMaxEngineNameBytes + 1, 'e')),
               Error);
}

// --- malformed corpus -------------------------------------------------------

struct Malformation {
  const char* name;
  /// Mutates a valid frame (or fabricates an invalid one).
  std::vector<std::uint8_t> (*build)();
};

std::vector<std::uint8_t> valid_request() {
  std::vector<cds::CdsOption> options(3);
  for (std::size_t i = 0; i < options.size(); ++i) {
    options[i].id = static_cast<std::int32_t>(i);
    options[i].maturity_years = 5.0;
    options[i].payment_frequency = 0.25;
    options[i].recovery_rate = 0.4;
  }
  return net::encode_price_request(7, 42, options);
}

void put_le32(std::vector<std::uint8_t>& b, std::size_t off,
              std::uint32_t v) {
  b[off] = static_cast<std::uint8_t>(v);
  b[off + 1] = static_cast<std::uint8_t>(v >> 8);
  b[off + 2] = static_cast<std::uint8_t>(v >> 16);
  b[off + 3] = static_cast<std::uint8_t>(v >> 24);
}

std::vector<std::uint8_t> valid_shard_price() {
  std::vector<cds::CdsOption> options(3);
  for (std::size_t i = 0; i < options.size(); ++i) {
    options[i].id = static_cast<std::int32_t>(i);
    options[i].maturity_years = 5.0;
    options[i].payment_frequency = 0.25;
    options[i].recovery_rate = 0.4;
  }
  return net::encode_shard_price(3, options);
}

std::vector<std::uint8_t> valid_shard_result() {
  std::vector<cds::SpreadResult> results(3);
  for (std::size_t i = 0; i < results.size(); ++i) {
    results[i].id = static_cast<std::int32_t>(i);
    results[i].spread_bps = 100.0 + static_cast<double>(i);
  }
  return net::encode_shard_result(3, 0.25, results);
}

const Malformation kMalformedCorpus[] = {
    {"bad magic",
     [] {
       auto b = valid_request();
       b[0] ^= 0xFF;
       return b;
     }},
    {"bad version",
     [] {
       auto b = valid_request();
       b[4] = 99;
       return b;
     }},
    {"unknown frame type",
     [] {
       auto b = valid_request();
       b[5] = 200;
       return b;
     }},
    {"reserved header flags set",
     [] {
       auto b = valid_request();
       b[6] = 1;
       return b;
     }},
    {"oversized payload length",
     [] {
       auto b = valid_request();
       put_le32(b, 16, static_cast<std::uint32_t>(net::kMaxPayloadBytes + 1));
       return b;
     }},
    {"payload length below its count field",
     [] {
       auto b = valid_request();
       put_le32(b, 16, 2);
       b.resize(net::kHeaderBytes + 2);
       return b;
     }},
    {"zero option count",
     [] {
       auto b = valid_request();
       put_le32(b, net::kHeaderBytes, 0);
       return b;
     }},
    {"count does not match payload size",
     [] {
       auto b = valid_request();
       put_le32(b, net::kHeaderBytes, 2);  // payload sized for 3
       return b;
     }},
    {"count above kMaxOptionsPerRequest",
     [] {
       auto b = valid_request();
       put_le32(b, net::kHeaderBytes,
                static_cast<std::uint32_t>(net::kMaxOptionsPerRequest + 1));
       return b;
     }},
    {"quote-update payload wrong size",
     [] {
       auto b = net::encode_quote_update(1, 5, 0.02);
       put_le32(b, 16, 11);
       b.resize(net::kHeaderBytes + 11);
       return b;
     }},
    {"unknown result status",
     [] {
       auto b = net::encode_result(1, 1, net::kResultOnTime, {});
       b[net::kHeaderBytes] = 9;
       return b;
     }},
    {"unknown reject reason",
     [] {
       auto b = net::encode_reject(1, 1, RejectReason::kMalformed, "x");
       b[net::kHeaderBytes] = 0;
       return b;
     }},
    {"reject detail length mismatch",
     [] {
       auto b = net::encode_reject(1, 1, RejectReason::kOverload, "abc");
       b[net::kHeaderBytes + 2] = 200;  // detail_len > remaining payload
       return b;
     }},
    {"cluster frame carrying a tenant id",
     [] {
       auto b = valid_shard_price();
       put_le32(b, 8, 7);  // tenant field must be zero for kinds >= 6
       return b;
     }},
    {"node-probe payload shorter than the node-info preamble",
     [] {
       auto b = net::encode_node_probe(1);
       put_le32(b, 16, 10);
       b.resize(net::kHeaderBytes + 10);
       return b;
     }},
    {"node info reporting zero lanes",
     [] {
       auto b = net::encode_node_info(1, 4, 1e6, 0.0, 10.0, "cpu-batch");
       put_le32(b, net::kHeaderBytes, 0);
       return b;
     }},
    {"node-info zero engine name length",
     [] {
       auto b = net::encode_node_info(1, 4, 1e6, 0.0, 10.0, "cpu-batch");
       b[net::kHeaderBytes + 28] = 0;
       b[net::kHeaderBytes + 29] = 0;
       return b;
     }},
    {"node-info name length not matching the payload",
     [] {
       auto b = net::encode_node_info(1, 4, 1e6, 0.0, 10.0, "cpu-batch");
       b[net::kHeaderBytes + 28] = 64;  // name_len beyond the actual name
       return b;
     }},
    {"node-info reserved bytes set",
     [] {
       auto b = net::encode_node_info(1, 4, 1e6, 0.0, 10.0, "cpu-batch");
       b[net::kHeaderBytes + 30] = 1;
       return b;
     }},
    {"shard-price unknown kind byte",
     [] {
       auto b = valid_shard_price();
       b[net::kHeaderBytes] = 9;
       return b;
     }},
    {"shard-price reserved bytes set",
     [] {
       auto b = valid_shard_price();
       b[net::kHeaderBytes + 1] = 1;
       return b;
     }},
    {"shard-price zero option count",
     [] {
       auto b = valid_shard_price();
       put_le32(b, net::kHeaderBytes + 4, 0);
       return b;
     }},
    {"shard-price count not matching the payload",
     [] {
       auto b = valid_shard_price();
       put_le32(b, net::kHeaderBytes + 4, 2);  // payload sized for 3
       return b;
     }},
    {"shard-result nonzero status byte",
     [] {
       auto b = valid_shard_result();
       b[net::kHeaderBytes] = 9;
       return b;
     }},
    {"shard-result unknown kind byte",
     [] {
       auto b = valid_shard_result();
       b[net::kHeaderBytes + 1] = 7;
       return b;
     }},
    {"shard-result count not matching the payload",
     [] {
       auto b = valid_shard_result();
       put_le32(b, net::kHeaderBytes + 4, 1);  // payload sized for 3
       return b;
     }},
};

TEST(NetCodec, MalformedCorpusCleanlyPoisonsUnderEverySplit) {
  for (const auto& malformation : kMalformedCorpus) {
    const auto bytes = malformation.build();
    for (const std::size_t chunk :
         {std::size_t{1}, std::size_t{5}, bytes.size()}) {
      FrameReader reader;
      const auto frames = decode_chunked(bytes, chunk, reader);
      EXPECT_TRUE(reader.failed())
          << malformation.name << " (chunk " << chunk << ") not rejected";
      EXPECT_TRUE(frames.empty())
          << malformation.name << " produced a frame from malformed input";
      EXPECT_FALSE(reader.error().empty()) << malformation.name;
      // Poison is sticky: valid bytes after the fact stay untrusted.
      const auto good = valid_request();
      EXPECT_FALSE(reader.feed(good.data(), good.size()));
      EXPECT_FALSE(reader.next().has_value());
    }
  }
}

TEST(NetCodec, TruncatedHeaderOrPayloadNeverCompletesButNeverPoisons) {
  const auto bytes = valid_request();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameReader reader;
    ASSERT_TRUE(reader.feed(bytes.data(), cut));
    EXPECT_FALSE(reader.failed());
    EXPECT_FALSE(reader.next().has_value())
        << "frame completed from a " << cut << "-byte prefix";
    // The remainder completes it -- a split read is not an error.
    ASSERT_TRUE(reader.feed(bytes.data() + cut, bytes.size() - cut));
    EXPECT_TRUE(reader.next().has_value());
  }
}

TEST(NetCodec, FramesBeforeThePoisonPointSurviveFramesAfterDoNot) {
  auto good = valid_request();
  auto bad = valid_request();
  bad[0] ^= 0xFF;
  std::vector<std::uint8_t> stream = good;
  stream.insert(stream.end(), bad.begin(), bad.end());
  stream.insert(stream.end(), good.begin(), good.end());

  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  EXPECT_TRUE(reader.failed());
  std::size_t frames = 0;
  while (reader.next()) ++frames;
  EXPECT_EQ(frames, 1u) << "only the pre-poison frame may surface";
}

// --- fuzz -------------------------------------------------------------------

TEST(NetCodec, RandomByteStreamsNeverCrashOrHang) {
  Rng rng(606);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 400));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    while (reader.next()) {
    }
    // Bounded buffering even when the stream is garbage that happens to
    // parse as an incomplete frame.
    EXPECT_LE(reader.buffered_bytes(),
              net::kMaxPayloadBytes + net::kHeaderBytes);
  }
}

TEST(NetCodec, BitFlippedValidFramesNeverCrashAndNeverMisdecodeSilently) {
  Rng rng(707);
  const auto baseline = valid_request();
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = baseline;
    const auto flips = static_cast<std::size_t>(rng.uniform_int(1, 8));
    for (std::size_t f = 0; f < flips; ++f) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, bytes.size() - 1));
      bytes[pos] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    std::size_t frames = 0;
    while (reader.next()) ++frames;
    if (reader.failed()) {
      EXPECT_FALSE(reader.error().empty());
    } else {
      // Flips confined to the body decode as *some* structurally-valid
      // frame; there must never be more than the one frame that was sent.
      EXPECT_LE(frames, 1u);
    }
  }
}

}  // namespace
}  // namespace cdsflow
