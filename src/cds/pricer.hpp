/// \file pricer.hpp
/// The golden reference pricer.
///
/// A plain scalar implementation of the full CDS model -- the ground truth
/// every engine variant (FPGA-simulated and CPU) is validated against in the
/// test suite. It holds the two term structures (the "constant data" loaded
/// once per batch in the paper) and prices options one at a time.

#pragma once

#include <vector>

#include "cds/curve.hpp"
#include "cds/legs.hpp"
#include "cds/schedule.hpp"
#include "cds/types.hpp"

namespace cdsflow::cds {

class ReferencePricer {
 public:
  /// Both curves are copied; the pricer is immutable afterwards (safe to
  /// share across threads).
  ReferencePricer(TermStructure interest, TermStructure hazard);

  const TermStructure& interest() const { return interest_; }
  const TermStructure& hazard() const { return hazard_; }

  /// Fair spread (basis points) of one option.
  double spread_bps(const CdsOption& option) const;

  /// Fair spread with a caller-owned schedule buffer (reused across a
  /// portfolio loop; see price_breakdown's scratch overload).
  double spread_bps(const CdsOption& option,
                    std::vector<TimePoint>& scratch) const;

  /// Full leg breakdown of one option.
  PricingBreakdown breakdown(const CdsOption& option) const;

  /// Prices a whole portfolio in input order.
  std::vector<SpreadResult> price(const std::vector<CdsOption>& options) const;

 private:
  TermStructure interest_;
  TermStructure hazard_;
};

}  // namespace cdsflow::cds
