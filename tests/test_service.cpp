/// \file test_service.cpp
/// Deterministic loopback integration tests for the multi-tenant pricing
/// service: N tenants replay seeded feeds over a unix-domain socket and the
/// responses must be bit-identical to driving the same event sequences
/// through StreamRuntime directly -- independent of connection arrival
/// order. Plus the reject taxonomy (unknown tenant, wrong mode, semantic
/// malformation, overload shed, poisoned stream) over a real socket.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/error.hpp"
#include "net/client.hpp"
#include "net/codec.hpp"
#include "net/server.hpp"
#include "runtime/stream_runtime.hpp"
#include "service/service.hpp"
#include "workload/curves.hpp"
#include "workload/feed.hpp"

namespace cdsflow {
namespace {

cds::TermStructure test_interest() {
  return workload::paper_interest_curve(64, 11);
}
cds::TermStructure test_hazard() { return workload::paper_hazard_curve(64, 23); }

std::string unique_socket_path(const char* tag) {
  static int counter = 0;
  return "/tmp/cdsflow-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + "-" + std::to_string(counter++) +
         ".sock";
}

/// A fit fast enough that every request in these tests admits on-time.
engine::BackendCandidate generous_fit() {
  engine::BackendCandidate fit;
  fit.engine_name = "cpu-batch";
  fit.watts = 1.0;
  fit.options_per_second = 1e12;
  fit.setup_seconds = 0.0;
  return fit;
}

runtime::StreamConfig small_stream(const std::string& engine) {
  runtime::StreamConfig stream;
  stream.engine = engine;
  stream.lanes = 2;
  stream.max_batch = 64;
  stream.max_wait_us = 200;
  return stream;
}

service::TenantSpec tenant_spec(std::uint32_t id, const std::string& engine) {
  service::TenantSpec spec;
  spec.id = id;
  spec.name = "tenant-" + std::to_string(id);
  spec.stream = small_stream(engine);
  spec.fit = generous_fit();
  return spec;
}

/// The wire slicing both sides of the bit-identity comparison share: walk a
/// feed in order, grouping option events into requests of at most
/// `request_size` (a hazard event flushes the open request first, so the
/// event order on the runtime is identical on both paths).
struct SlicedFeed {
  struct Request {
    std::uint32_t id = 0;
    std::vector<cds::CdsOption> options;
  };
  struct Step {  // one wire frame, in order
    bool quote = false;
    std::size_t request_index = 0;  // !quote
    std::uint32_t knot = 0;         // quote
    double rate = 0.0;
  };
  std::vector<Request> requests;
  std::vector<Step> steps;
};

SlicedFeed slice_feed(const std::vector<workload::QuoteFeedEvent>& feed,
                      std::size_t request_size) {
  SlicedFeed sliced;
  SlicedFeed::Request open;
  auto flush = [&] {
    if (open.options.empty()) return;
    open.id = static_cast<std::uint32_t>(sliced.requests.size() + 1);
    sliced.steps.push_back(
        {false, sliced.requests.size(), 0, 0.0});
    sliced.requests.push_back(std::move(open));
    open = {};
  };
  for (const auto& event : feed) {
    if (event.kind == workload::QuoteFeedEvent::Kind::kHazardQuote) {
      flush();
      sliced.steps.push_back(
          {true, 0, static_cast<std::uint32_t>(event.knot), event.rate});
    } else {
      open.options.push_back(event.option);
      if (open.options.size() == request_size) flush();
    }
  }
  flush();
  return sliced;
}

/// Drives one tenant's sliced feed through a connected client (pipelined:
/// all frames out, then all results in) and returns the concatenated
/// results in request order.
struct ReplayOutcome {
  std::vector<cds::SpreadResult> results;
  std::vector<cds::Sensitivities> greeks;
};

ReplayOutcome replay_over_socket(const std::string& path, std::uint32_t tenant,
                                 const SlicedFeed& sliced, bool risk) {
  net::Client client = net::Client::connect_unix(path);
  for (const auto& step : sliced.steps) {
    if (step.quote) {
      client.send(net::encode_quote_update(tenant, step.knot, step.rate));
    } else {
      const auto& request = sliced.requests[step.request_index];
      client.send(net::encode_price_request(tenant, request.id,
                                            request.options, risk));
    }
  }
  ReplayOutcome outcome;
  for (const auto& request : sliced.requests) {
    net::Frame frame = client.read_frame();
    EXPECT_EQ(frame.type, net::FrameType::kResult);
    EXPECT_EQ(frame.tenant, tenant);
    EXPECT_EQ(frame.request, request.id) << "responses out of request order";
    EXPECT_EQ(frame.results.size(), request.options.size());
    outcome.results.insert(outcome.results.end(), frame.results.begin(),
                           frame.results.end());
    outcome.greeks.insert(outcome.greeks.end(), frame.greeks.begin(),
                          frame.greeks.end());
  }
  client.close();
  return outcome;
}

/// The same sliced feed on a directly-driven StreamRuntime.
runtime::StreamReport replay_direct(const SlicedFeed& sliced,
                                    const runtime::StreamConfig& stream) {
  runtime::StreamRuntime runtime(test_interest(), test_hazard(), stream);
  for (const auto& step : sliced.steps) {
    if (step.quote) {
      runtime.push_hazard_quote(step.knot, step.rate);
    } else {
      for (const auto& option : sliced.requests[step.request_index].options) {
        runtime.push(option);
      }
    }
  }
  return runtime.finish();
}

void expect_bit_identical(const std::vector<cds::SpreadResult>& service_side,
                          const std::vector<cds::SpreadResult>& direct_side) {
  ASSERT_EQ(service_side.size(), direct_side.size());
  for (std::size_t i = 0; i < service_side.size(); ++i) {
    EXPECT_EQ(service_side[i].id, direct_side[i].id) << "at event " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(service_side[i].spread_bps),
              std::bit_cast<std::uint64_t>(direct_side[i].spread_bps))
        << "spread not bit-identical at event " << i;
  }
}

SlicedFeed tenant_feed(std::uint32_t tenant, std::size_t events) {
  workload::QuoteFeedSpec spec;
  spec.events = events;
  spec.rate_hz = 0.0;  // unpaced
  spec.hazard_update_every = 9;
  spec.seed = 42;
  spec.tenant = tenant;
  return slice_feed(workload::make_quote_feed(spec, test_hazard()), 17);
}

TEST(ServiceLoopback, BitIdenticalToDirectRuntimeAcrossTenantsAndArrivalOrder) {
  const std::vector<std::uint32_t> tenant_ids = {1, 2, 3};
  std::vector<SlicedFeed> feeds;
  for (const auto id : tenant_ids) feeds.push_back(tenant_feed(id, 180));

  // Two passes with opposite client start order: per-tenant responses must
  // not depend on who connected first.
  std::vector<std::vector<ReplayOutcome>> passes;
  for (int pass = 0; pass < 2; ++pass) {
    const std::string path = unique_socket_path("svc");
    service::ServiceConfig config;
    config.stop_when_idle = true;
    for (const auto id : tenant_ids) {
      config.tenants.push_back(tenant_spec(id, "cpu-batch"));
    }
    net::Server server({path});
    service::PricingService pricing(config, test_interest(), test_hazard());
    std::thread loop([&] { server.run(pricing); });

    std::vector<ReplayOutcome> outcomes(tenant_ids.size());
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < tenant_ids.size(); ++i) {
      const std::size_t at =
          pass == 0 ? i : tenant_ids.size() - 1 - i;  // reversed second pass
      clients.emplace_back([&, at] {
        outcomes[at] = replay_over_socket(path, tenant_ids[at], feeds[at],
                                          /*risk=*/false);
      });
    }
    for (auto& c : clients) c.join();
    loop.join();  // idle-stop fires once all clients disconnected
    EXPECT_EQ(pricing.stats().shed, 0u);
    EXPECT_EQ(pricing.stats().rejects_malformed, 0u);
    passes.push_back(std::move(outcomes));
  }

  for (std::size_t i = 0; i < tenant_ids.size(); ++i) {
    // Service vs direct runtime: the tentpole bit-identity gate.
    const auto direct = replay_direct(feeds[i], small_stream("cpu-batch"));
    expect_bit_identical(passes[0][i].results, direct.run.results);
    // Pass vs pass: arrival-order independence.
    expect_bit_identical(passes[1][i].results, passes[0][i].results);
  }
}

TEST(ServiceLoopback, RiskTenantResponsesBitIdenticalToDirectRuntime) {
  const std::uint32_t tenant = 5;
  const SlicedFeed sliced = tenant_feed(tenant, 120);

  const std::string path = unique_socket_path("risk");
  service::ServiceConfig config;
  config.stop_when_idle = true;
  config.tenants.push_back(tenant_spec(tenant, "cpu-batch-risk"));
  net::Server server({path});
  service::PricingService pricing(config, test_interest(), test_hazard());
  std::thread loop([&] { server.run(pricing); });

  const ReplayOutcome outcome =
      replay_over_socket(path, tenant, sliced, /*risk=*/true);
  loop.join();

  const auto direct = replay_direct(sliced, small_stream("cpu-batch-risk"));
  expect_bit_identical(outcome.results, direct.run.results);
  ASSERT_EQ(outcome.greeks.size(), direct.run.sensitivities.size());
  for (std::size_t i = 0; i < outcome.greeks.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(outcome.greeks[i].cs01),
              std::bit_cast<std::uint64_t>(direct.run.sensitivities[i].cs01));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(outcome.greeks[i].ir01),
              std::bit_cast<std::uint64_t>(direct.run.sensitivities[i].ir01));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(outcome.greeks[i].rec01),
              std::bit_cast<std::uint64_t>(direct.run.sensitivities[i].rec01));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(outcome.greeks[i].jtd),
              std::bit_cast<std::uint64_t>(direct.run.sensitivities[i].jtd));
  }
}

TEST(ServiceLoopback, RejectTaxonomyIsMachineReadable) {
  const std::string path = unique_socket_path("rej");
  service::ServiceConfig config;
  config.stop_when_idle = true;
  config.tenants.push_back(tenant_spec(1, "cpu-batch"));
  // A tenant whose fit makes every request miss even the defer ceiling.
  auto slow = tenant_spec(2, "cpu-batch");
  slow.fit.options_per_second = 1.0;  // 1 option/s: anything sheds
  slow.fit.setup_seconds = 100.0;
  slow.deadline = {"interactive", 0.005, 0.020};
  config.tenants.push_back(slow);
  net::Server server({path});
  service::PricingService pricing(config, test_interest(), test_hazard());
  std::thread loop([&] { server.run(pricing); });

  std::vector<cds::CdsOption> options(3);
  for (std::size_t i = 0; i < options.size(); ++i) {
    options[i].id = static_cast<std::int32_t>(i);
    options[i].maturity_years = 5.0;
    options[i].payment_frequency = 0.25;
    options[i].recovery_rate = 0.4;
  }

  {
    net::Client client = net::Client::connect_unix(path);

    // Unknown tenant.
    client.send(net::encode_price_request(99, 1, options));
    net::Frame frame = client.read_frame();
    ASSERT_EQ(frame.type, net::FrameType::kReject);
    EXPECT_EQ(frame.reason, net::RejectReason::kUnknownTenant);
    EXPECT_EQ(frame.request, 1u);

    // Wrong mode: risk request to a price tenant.
    client.send(net::encode_price_request(1, 2, options, /*risk=*/true));
    frame = client.read_frame();
    ASSERT_EQ(frame.type, net::FrameType::kReject);
    EXPECT_EQ(frame.reason, net::RejectReason::kWrongMode);

    // Semantically malformed: well-framed but out-of-range option.
    auto bad = options;
    bad[1].recovery_rate = 2.0;
    client.send(net::encode_price_request(1, 3, bad));
    frame = client.read_frame();
    ASSERT_EQ(frame.type, net::FrameType::kReject);
    EXPECT_EQ(frame.reason, net::RejectReason::kMalformed);
    EXPECT_FALSE(frame.detail.empty());

    // Semantically malformed quote update: knot outside the curve.
    client.send(net::encode_quote_update(1, 4096, 0.02));
    frame = client.read_frame();
    ASSERT_EQ(frame.type, net::FrameType::kReject);
    EXPECT_EQ(frame.reason, net::RejectReason::kMalformed);

    // Overload: the slow tenant sheds.
    client.send(net::encode_price_request(2, 4, options));
    frame = client.read_frame();
    ASSERT_EQ(frame.type, net::FrameType::kReject);
    EXPECT_EQ(frame.reason, net::RejectReason::kOverload);
    EXPECT_EQ(frame.request, 4u);

    // The connection survived all five rejects; a valid request still
    // prices.
    client.send(net::encode_price_request(1, 5, options));
    frame = client.read_frame();
    ASSERT_EQ(frame.type, net::FrameType::kResult);
    EXPECT_EQ(frame.results.size(), options.size());
    client.close();
  }
  loop.join();
  EXPECT_EQ(pricing.stats().rejects_unknown_tenant, 1u);
  EXPECT_EQ(pricing.stats().rejects_wrong_mode, 1u);
  EXPECT_EQ(pricing.stats().rejects_malformed, 2u);
  EXPECT_EQ(pricing.stats().shed, 1u);
  EXPECT_EQ(pricing.stats().admitted, 1u);
}

TEST(ServiceLoopback, PoisonedStreamGetsRejectThenDisconnect) {
  const std::string path = unique_socket_path("poison");
  service::ServiceConfig config;
  config.stop_when_idle = true;
  config.tenants.push_back(tenant_spec(1, "cpu-batch"));
  net::Server server({path});
  service::PricingService pricing(config, test_interest(), test_hazard());
  std::thread loop([&] { server.run(pricing); });

  {
    net::Client client = net::Client::connect_unix(path);
    const std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF, 0x00,
                                               0x01, 0x02, 0x03};
    client.send(garbage);
    net::Frame frame = client.read_frame();
    ASSERT_EQ(frame.type, net::FrameType::kReject);
    EXPECT_EQ(frame.reason, net::RejectReason::kMalformed);
    // The server tears the poisoned connection down after the reject.
    EXPECT_THROW(client.read_frame(), Error);
  }
  loop.join();
  EXPECT_EQ(pricing.stats().connections_poisoned, 1u);
}

}  // namespace
}  // namespace cdsflow
