/// \file test_properties.cpp
/// Property-based suites (parameterised gtest): invariants that must hold
/// across randomised workloads, engine variants, and configuration sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "cds/hazard.hpp"
#include "cds/pricer.hpp"
#include "common/stats.hpp"
#include "engines/interoption_engine.hpp"
#include "engines/registry.hpp"
#include "engines/vectorised_engine.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"
#include "workload/scenario.hpp"

namespace cdsflow {
namespace {

// ---------------------------------------------------------------------------
// Property: every engine agrees with the golden model on any workload.
// Sweep: engine name x scenario seed.
// ---------------------------------------------------------------------------

using EngineSeedParam = std::tuple<std::string, std::uint64_t>;

class EngineGoldenAgreement
    : public ::testing::TestWithParam<EngineSeedParam> {};

TEST_P(EngineGoldenAgreement, SpreadsMatchGolden) {
  const auto& [name, seed] = GetParam();
  const auto scenario = workload::smoke_scenario(10, seed);
  const cds::ReferencePricer golden(scenario.interest, scenario.hazard);
  auto engine = engine::make_engine(name, scenario.interest, scenario.hazard);
  const auto run = engine->price(scenario.options);
  ASSERT_EQ(run.results.size(), scenario.options.size());
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    EXPECT_LT(relative_difference(run.results[i].spread_bps,
                                  golden.spread_bps(scenario.options[i])),
              1e-9)
        << name << " seed=" << seed << " option=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesManySeeds, EngineGoldenAgreement,
    ::testing::Combine(
        ::testing::Values("cpu", "xilinx-baseline", "dataflow",
                          "dataflow-interoption", "vectorised", "multi-2"),
        ::testing::Values(1u, 7u, 42u, 1234u, 987654u)),
    [](const auto& info) {
      auto name = std::get<0>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Property: lane count never changes results, only cycles.
// ---------------------------------------------------------------------------

class LaneInvariance : public ::testing::TestWithParam<unsigned> {};

TEST_P(LaneInvariance, ResultsIdenticalAcrossLaneCounts) {
  const unsigned lanes = GetParam();
  const auto scenario = workload::smoke_scenario(8, 55);

  engine::FpgaEngineConfig reference_cfg;
  reference_cfg.vector_lanes = 1;
  engine::VectorisedEngine reference(scenario.interest, scenario.hazard,
                                     reference_cfg);
  const auto ref_run = reference.price(scenario.options);

  engine::FpgaEngineConfig cfg;
  cfg.vector_lanes = lanes;
  engine::VectorisedEngine engine(scenario.interest, scenario.hazard, cfg);
  const auto run = engine.price(scenario.options);

  for (std::size_t i = 0; i < run.results.size(); ++i) {
    // Identical kernels in identical per-option order: bitwise equal.
    EXPECT_DOUBLE_EQ(run.results[i].spread_bps,
                     ref_run.results[i].spread_bps)
        << "lanes=" << lanes;
  }
  // More lanes never slow the kernel down.
  EXPECT_LE(run.kernel_cycles, ref_run.kernel_cycles + 100);
}

INSTANTIATE_TEST_SUITE_P(Lanes1To8, LaneInvariance,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

// ---------------------------------------------------------------------------
// Property: financial monotonicity across contract parameters.
// Sweep: maturity x frequency.
// ---------------------------------------------------------------------------

using ContractParam = std::tuple<double, double>;

class FinancialMonotonicity
    : public ::testing::TestWithParam<ContractParam> {};

TEST_P(FinancialMonotonicity, SpreadIncreasesWithHazardLevel) {
  const auto& [maturity, frequency] = GetParam();
  const auto interest = workload::paper_interest_curve(256);
  double prev = 0.0;
  for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
    workload::CurveSpec spec;
    spec.points = 256;
    spec.base_rate = 0.02 * scale;
    spec.shape = workload::CurveShape::kFlat;
    spec.jitter = 0.0;
    const cds::ReferencePricer pricer(interest, workload::make_curve(spec));
    const double s = pricer.spread_bps({.id = 0,
                                        .maturity_years = maturity,
                                        .payment_frequency = frequency,
                                        .recovery_rate = 0.4});
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST_P(FinancialMonotonicity, SpreadDecreasesWithRecovery) {
  const auto& [maturity, frequency] = GetParam();
  const cds::ReferencePricer pricer(workload::paper_interest_curve(256),
                                    workload::paper_hazard_curve(256));
  double prev = 1e12;
  for (const double recovery : {0.0, 0.25, 0.5, 0.75}) {
    const double s = pricer.spread_bps({.id = 0,
                                        .maturity_years = maturity,
                                        .payment_frequency = frequency,
                                        .recovery_rate = recovery});
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST_P(FinancialMonotonicity, SurvivalProductDecomposition) {
  // Q(t) must be multiplicative over disjoint intervals for a deterministic
  // hazard: Q(t) = Q(s) * exp(-(Lambda(t)-Lambda(s))).
  const auto& [maturity, frequency] = GetParam();
  (void)frequency;
  const auto hazard = workload::paper_hazard_curve(256);
  const double s = maturity / 2.0;
  const double qs = cds::survival_probability(hazard, s);
  const double qt = cds::survival_probability(hazard, maturity);
  const double lambda_gap = cds::integrated_hazard(hazard, maturity) -
                            cds::integrated_hazard(hazard, s);
  EXPECT_LT(relative_difference(qt, qs * std::exp(-lambda_gap)), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    MaturityFrequencyGrid, FinancialMonotonicity,
    ::testing::Combine(::testing::Values(1.0, 3.0, 5.0, 10.0),
                       ::testing::Values(1.0, 4.0, 12.0)));

// ---------------------------------------------------------------------------
// Property: the paper's Table I ordering holds for any workload -- each
// optimisation generation is at least as fast as its predecessor in kernel
// cycles.
// ---------------------------------------------------------------------------

class TableOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TableOrdering, GenerationsImproveMonotonically) {
  const auto scenario = workload::smoke_scenario(12, GetParam());
  auto cycles = [&](const char* name) {
    auto engine =
        engine::make_engine(name, scenario.interest, scenario.hazard);
    return engine->price(scenario.options).kernel_cycles;
  };
  const auto baseline = cycles("xilinx-baseline");
  const auto dataflow = cycles("dataflow");
  const auto interoption = cycles("dataflow-interoption");
  const auto vectorised = cycles("vectorised");
  EXPECT_LT(dataflow, baseline);
  EXPECT_LT(interoption, dataflow);
  EXPECT_LT(vectorised, interoption);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableOrdering,
                         ::testing::Values(3u, 19u, 202u, 5150u));

// ---------------------------------------------------------------------------
// Property: simulation determinism -- same seed, same engine => identical
// cycle counts and bitwise-identical results.
// ---------------------------------------------------------------------------

class Determinism : public ::testing::TestWithParam<std::string> {};

TEST_P(Determinism, RepeatRunsAreBitwiseIdentical) {
  const auto scenario = workload::smoke_scenario(10, 777);
  auto engine_a =
      engine::make_engine(GetParam(), scenario.interest, scenario.hazard);
  auto engine_b =
      engine::make_engine(GetParam(), scenario.interest, scenario.hazard);
  const auto a = engine_a->price(scenario.options);
  const auto b = engine_b->price(scenario.options);
  EXPECT_EQ(a.kernel_cycles, b.kernel_cycles);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.results[i].spread_bps, b.results[i].spread_bps);
  }
}

INSTANTIATE_TEST_SUITE_P(FpgaEngines, Determinism,
                         ::testing::Values("xilinx-baseline", "dataflow",
                                           "dataflow-interoption",
                                           "vectorised", "multi-3"),
                         [](const auto& info) {
                           auto name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Property: portfolio results are permutation-consistent -- pricing a
// shuffled book yields the same spread per option id.
// ---------------------------------------------------------------------------

class PermutationConsistency : public ::testing::TestWithParam<std::string> {
};

TEST_P(PermutationConsistency, ShuffledBookSameSpreads) {
  auto scenario = workload::smoke_scenario(12, 31);
  auto engine =
      engine::make_engine(GetParam(), scenario.interest, scenario.hazard);
  const auto original = engine->price(scenario.options);

  auto shuffled = scenario.options;
  std::rotate(shuffled.begin(), shuffled.begin() + 5, shuffled.end());
  auto engine2 =
      engine::make_engine(GetParam(), scenario.interest, scenario.hazard);
  const auto rotated = engine2->price(shuffled);

  for (const auto& r : rotated.results) {
    const auto it = std::find_if(
        original.results.begin(), original.results.end(),
        [&](const cds::SpreadResult& o) { return o.id == r.id; });
    ASSERT_NE(it, original.results.end());
    EXPECT_DOUBLE_EQ(it->spread_bps, r.spread_bps) << "id=" << r.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, PermutationConsistency,
                         ::testing::Values("dataflow-interoption",
                                           "vectorised"),
                         [](const auto& info) {
                           auto name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Property: stream depth changes throughput accounting but never results.
// ---------------------------------------------------------------------------

class StreamDepthInvariance
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamDepthInvariance, ResultsUnaffectedByDepth) {
  const auto scenario = workload::smoke_scenario(8, 91);
  engine::FpgaEngineConfig cfg;
  cfg.tp_stream_depth = GetParam();
  engine::InterOptionEngine engine(scenario.interest, scenario.hazard, cfg);
  const auto run = engine.price(scenario.options);
  const cds::ReferencePricer golden(scenario.interest, scenario.hazard);
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    EXPECT_LT(relative_difference(run.results[i].spread_bps,
                                  golden.spread_bps(scenario.options[i])),
              1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, StreamDepthInvariance,
                         ::testing::Values(1u, 2u, 3u, 8u, 32u));

}  // namespace
}  // namespace cdsflow
