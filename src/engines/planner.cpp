#include "engines/planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "engines/registry.hpp"
#include "fpga/device.hpp"
#include "net/codec.hpp"
#include "runtime/shard.hpp"
#include "runtime/sweep_runtime.hpp"
#include "workload/options.hpp"
#include "workload/scenario.hpp"

namespace cdsflow::engine {

namespace {

/// Warmup + best-of-N probe timing for natively executed engines. A single
/// cold run folds first-touch allocation and thread-spawn noise into the
/// measurement, which can invert the cpu vs cpu-mt ranking at probe size.
double measure_probe_seconds(Engine& engine,
                             const std::vector<cds::CdsOption>& probe,
                             unsigned warmup_runs, unsigned timed_runs) {
  for (unsigned i = 0; i < warmup_runs; ++i) {
    (void)engine.price(probe);  // discarded
  }
  double best = std::numeric_limits<double>::infinity();
  for (unsigned i = 0; i < std::max(1u, timed_runs); ++i) {
    best = std::min(best, engine.price(probe).total_seconds);
  }
  return best;
}

/// Through-origin least squares: the pure linear model seconds = n * slope.
double origin_slope(const std::vector<ProbeMeasurement>& probes) {
  double num = 0.0, den = 0.0;
  for (const auto& p : probes) {
    const double n = static_cast<double>(p.n_options);
    num += n * p.seconds;
    den += n * n;
  }
  return num / den;
}

/// Default worker-lane sweep: powers of two up to hardware_concurrency,
/// plus hardware_concurrency itself.
std::vector<unsigned> default_worker_counts() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> counts;
  for (unsigned w = 1; w < hw; w *= 2) counts.push_back(w);
  counts.push_back(hw);
  return counts;
}

}  // namespace

PlannerConfig::PlannerConfig() : device(fpga::alveo_u280()) {}

BackendCandidate fit_backend_model(std::string engine_name, double watts,
                                   std::vector<ProbeMeasurement> probes) {
  CDSFLOW_EXPECT(!probes.empty(),
                 "cost-model fit needs at least one probe measurement");
  for (const auto& p : probes) {
    CDSFLOW_EXPECT(p.n_options > 0, "probe measurement with zero options");
    CDSFLOW_EXPECT(p.seconds > 0.0,
                   "probe measurement with non-positive time");
  }

  double mean_n = 0.0, mean_t = 0.0;
  for (const auto& p : probes) {
    mean_n += static_cast<double>(p.n_options);
    mean_t += p.seconds;
  }
  mean_n /= static_cast<double>(probes.size());
  mean_t /= static_cast<double>(probes.size());
  double cov = 0.0, var = 0.0;
  for (const auto& p : probes) {
    const double dn = static_cast<double>(p.n_options) - mean_n;
    cov += dn * (p.seconds - mean_t);
    var += dn * dn;
  }

  double per_option, setup;
  if (var == 0.0) {
    // One distinct probe size: the setup term is unobservable, degrade to
    // the linear model.
    per_option = origin_slope(probes);
    setup = 0.0;
  } else {
    per_option = cov / var;
    setup = mean_t - per_option * mean_n;
    if (per_option <= 0.0 || setup < 0.0) {
      // Measurement noise produced an unphysical fit (bigger probes ran
      // relatively faster, or a negative fixed cost): fall back to linear.
      per_option = origin_slope(probes);
      setup = 0.0;
    }
  }
  CDSFLOW_EXPECT(per_option > 0.0,
                 "candidate '" + engine_name +
                     "' fitted a non-positive per-option cost");

  BackendCandidate candidate;
  candidate.engine_name = std::move(engine_name);
  candidate.watts = watts;
  candidate.options_per_second = 1.0 / per_option;
  candidate.setup_seconds = setup;
  candidate.probes = std::move(probes);
  return candidate;
}

std::vector<BackendCandidate> enumerate_backends(
    const cds::TermStructure& interest, const cds::TermStructure& hazard,
    const PlannerConfig& config) {
  CDSFLOW_EXPECT(!config.probe_sizes.empty(),
                 "need at least one probe size");
  for (const std::size_t size : config.probe_sizes) {
    CDSFLOW_EXPECT(size >= 8,
                   "probe workload too small to be representative");
  }

  // Probe books drawn once per size, shared by every candidate.
  std::vector<std::size_t> sizes = config.probe_sizes;
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  std::vector<std::vector<cds::CdsOption>> probe_books;
  probe_books.reserve(sizes.size());
  for (const std::size_t size : sizes) {
    workload::PortfolioSpec probe_spec;
    probe_spec.count = size;
    probe_spec.seed = 20211109;  // fixed: candidates must see identical work
    probe_books.push_back(workload::make_portfolio(probe_spec));
  }

  std::vector<BackendCandidate> candidates;
  const auto probe_candidate = [&](const std::string& name, double watts,
                                   bool simulated) {
    auto engine = make_engine(name, interest, hazard, {}, config.cpu);
    std::vector<ProbeMeasurement> measurements;
    measurements.reserve(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      // Simulated engines report deterministic modelled device time, so one
      // run per size suffices; native CPU engines are wall-clock timed and
      // get the warmup + best-of-N protocol.
      const double seconds =
          simulated ? engine->price(probe_books[i]).total_seconds
                    : measure_probe_seconds(*engine, probe_books[i],
                                            config.probe_warmup_runs,
                                            config.probe_repeats);
      measurements.push_back({sizes[i], seconds});
    }
    candidates.push_back(
        fit_backend_model(name, watts, std::move(measurements)));
  };

  // --- CPU candidates -------------------------------------------------------
  std::vector<unsigned> threads = config.cpu_thread_counts;
  if (threads.empty()) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    threads = {1u};
    if (hw > 1) threads.push_back(hw);
  }

  // Scenario-sweep planning: the probe's n axis is the scenario count (one
  // fixed book, varying scenario sets), so the candidates are measured here
  // on SweepRuntime and the option-axis candidates below are skipped --
  // mixing the two axes in one candidate set would compare incomparable
  // workloads. Everything downstream (affine fit, plan_runtime's worker x
  // shard_size expansion) is unchanged: "cpu-sweep" parses as a
  // single-threaded CPU name, so it scales with runtime worker lanes
  // exactly like "cpu-vec" does on the option axis.
  if (config.sweep_mode) {
    CDSFLOW_EXPECT(config.sweep_probe_options > 0,
                   "sweep probes need a non-empty book");
    workload::PortfolioSpec book_spec;
    book_spec.count = config.sweep_probe_options;
    book_spec.seed = 20211109;  // fixed: candidates must see identical work
    const auto book = workload::make_portfolio(book_spec);
    std::vector<workload::ScenarioSet> probe_sets;
    probe_sets.reserve(sizes.size());
    for (const std::size_t size : sizes) {
      probe_sets.push_back(workload::mc_hazard_scenarios(hazard, size));
    }
    for (const unsigned t : threads) {
      const std::string name = cpu_engine_name(
          /*batch_kernel=*/false, /*vector_kernel=*/false,
          /*sweep_kernel=*/true, /*risk_mode=*/false, t);
      runtime::SweepRuntimeConfig rt_config;
      rt_config.workers = t;
      rt_config.level = cds::simd::active_level();
      runtime::SweepRuntime sweep_runtime(interest, hazard, book, rt_config);
      std::vector<ProbeMeasurement> measurements;
      measurements.reserve(sizes.size());
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        const cds::ScenarioMatrix matrix = probe_sets[i].matrix();
        for (unsigned w = 0; w < config.probe_warmup_runs; ++w) {
          (void)sweep_runtime.run(matrix);  // discarded
        }
        double best = std::numeric_limits<double>::infinity();
        for (unsigned r = 0; r < std::max(1u, config.probe_repeats); ++r) {
          best = std::min(best, sweep_runtime.run(matrix).wall_seconds);
        }
        measurements.push_back({sizes[i], best});
      }
      candidates.push_back(fit_backend_model(name, config.cpu_power.watts(t),
                                             std::move(measurements)));
    }
    return candidates;
  }

  for (const unsigned t : threads) {
    std::vector<std::string> names;
    names.push_back(cpu_engine_name(false, config.risk_mode, t));
    if (config.probe_cpu_batch) {
      names.push_back(cpu_engine_name(true, config.risk_mode, t));
    }
    if (config.probe_cpu_vec &&
        cds::simd::active_level() != cds::simd::Level::kScalar) {
      names.push_back(cpu_engine_name(true, true, config.risk_mode, t));
    }
    for (const auto& name : names) {
      probe_candidate(name, config.cpu_power.watts(t), /*simulated=*/false);
    }
  }

  // --- FPGA candidates (price only: skipped when planning risk) -------------
  if (!config.risk_mode) {
    std::vector<unsigned> engines = config.fpga_engine_counts;
    if (engines.empty()) {
      fpga::EngineShape shape;
      shape.hazard_lanes = shape.interpolation_lanes = 6;
      const fpga::ResourceEstimator estimator(config.device);
      const unsigned max = estimator.max_engines(shape);
      for (unsigned n = 1; n <= max; ++n) engines.push_back(n);
    }
    for (const unsigned n : engines) {
      probe_candidate("multi-" + std::to_string(n),
                      config.fpga_power.watts(n), /*simulated=*/true);
    }
  }
  return candidates;
}

std::vector<PlanEntry> plan_batch(
    const std::vector<BackendCandidate>& candidates,
    const BatchRequirements& requirements) {
  CDSFLOW_EXPECT(requirements.n_options > 0, "batch must contain options");
  CDSFLOW_EXPECT(requirements.deadline_seconds > 0.0,
                 "deadline must be positive");
  CDSFLOW_EXPECT(!candidates.empty(), "no back-end candidates supplied");

  std::vector<PlanEntry> entries;
  entries.reserve(candidates.size());
  for (const auto& candidate : candidates) {
    CDSFLOW_EXPECT(candidate.options_per_second > 0.0,
                   "candidate '" + candidate.engine_name +
                       "' has no throughput measurement");
    PlanEntry entry;
    entry.candidate = candidate;
    entry.projected_seconds = candidate.seconds_for(requirements.n_options);
    entry.projected_joules = candidate.joules_for(requirements.n_options);
    entry.meets_deadline =
        entry.projected_seconds <= requirements.deadline_seconds;
    entries.push_back(entry);
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const PlanEntry& a, const PlanEntry& b) {
                     if (a.meets_deadline != b.meets_deadline) {
                       return a.meets_deadline;
                     }
                     if (a.meets_deadline) {
                       return a.projected_joules < b.projected_joules;
                     }
                     return a.projected_seconds < b.projected_seconds;
                   });
  return entries;
}

std::optional<PlanEntry> best_plan(const std::vector<PlanEntry>& entries) {
  if (entries.empty() || !entries.front().meets_deadline) {
    return std::nullopt;
  }
  return entries.front();
}

std::vector<RuntimePlanEntry> plan_runtime(
    const std::vector<BackendCandidate>& candidates,
    const BatchRequirements& requirements, const PlannerConfig& config) {
  CDSFLOW_EXPECT(requirements.n_options > 0, "batch must contain options");
  CDSFLOW_EXPECT(requirements.deadline_seconds > 0.0,
                 "deadline must be positive");
  CDSFLOW_EXPECT(!candidates.empty(), "no back-end candidates supplied");

  const std::size_t n = static_cast<std::size_t>(requirements.n_options);
  const std::vector<unsigned> worker_sweep =
      config.worker_counts.empty() ? default_worker_counts()
                                   : config.worker_counts;
  for (const unsigned w : worker_sweep) {
    CDSFLOW_EXPECT(w > 0, "worker counts must be positive");
  }

  std::vector<RuntimePlanEntry> entries;
  for (const auto& candidate : candidates) {
    CDSFLOW_EXPECT(candidate.options_per_second > 0.0,
                   "candidate '" + candidate.engine_name +
                       "' has no throughput measurement");
    // Only single-threaded CPU candidates scale with runtime worker lanes;
    // cpu-mtN / multi-N / cluster-MxN are already parallel inside the
    // engine, so replicating them across lanes would double-count cores.
    CpuEngineConfig parsed = config.cpu;
    const bool scales_with_workers =
        parse_cpu_engine_name(candidate.engine_name, parsed) &&
        parsed.threads == 1;
    const std::vector<unsigned> workers =
        scales_with_workers ? worker_sweep : std::vector<unsigned>{1u};

    for (const unsigned w : workers) {
      const double watts = (scales_with_workers && w > 1)
                               ? config.cpu_power.watts(w)
                               : candidate.watts;
      // Shard-size candidates: load-balanced (auto), setup-aware (amortise
      // the per-shard setup), and one-shard-per-lane (fewest setup
      // payments that still uses every lane).
      std::vector<std::size_t> shard_sizes;
      shard_sizes.push_back(runtime::auto_shard_size(n, w));
      shard_sizes.push_back(runtime::setup_aware_shard_size(
          n, w, candidate.setup_seconds, candidate.per_option_seconds(),
          config.max_setup_fraction));
      shard_sizes.push_back(std::max<std::size_t>(1, (n + w - 1) / w));
      std::sort(shard_sizes.begin(), shard_sizes.end());
      shard_sizes.erase(std::unique(shard_sizes.begin(), shard_sizes.end()),
                        shard_sizes.end());

      for (const std::size_t shard_size : shard_sizes) {
        const auto shards = runtime::plan_shards(n, shard_size);
        std::vector<double> shard_seconds;
        shard_seconds.reserve(shards.size());
        for (const auto& shard : shards) {
          shard_seconds.push_back(candidate.setup_seconds +
                                  static_cast<double>(shard.size()) *
                                      candidate.per_option_seconds());
        }
        const double makespan =
            runtime::list_schedule_makespan(shard_seconds, w);

        RuntimePlanEntry entry;
        entry.config.engine = candidate.engine_name;
        entry.config.workers = w;
        entry.config.shard_size = shard_size;
        entry.config.cpu = config.cpu;
        entry.candidate = candidate;
        entry.n_shards = shards.size();
        entry.watts = watts;
        entry.projected_seconds = makespan;
        entry.projected_joules = watts * makespan;
        entry.meets_deadline = makespan <= requirements.deadline_seconds;
        entries.push_back(std::move(entry));
      }
    }
  }

  std::stable_sort(entries.begin(), entries.end(),
                   [](const RuntimePlanEntry& a, const RuntimePlanEntry& b) {
                     if (a.meets_deadline != b.meets_deadline) {
                       return a.meets_deadline;
                     }
                     if (a.meets_deadline) {
                       return a.projected_joules < b.projected_joules;
                     }
                     return a.projected_seconds < b.projected_seconds;
                   });
  return entries;
}

std::vector<RuntimePlanEntry> plan_runtime(
    const cds::TermStructure& interest, const cds::TermStructure& hazard,
    const BatchRequirements& requirements, const PlannerConfig& config) {
  return plan_runtime(enumerate_backends(interest, hazard, config),
                      requirements, config);
}

std::optional<RuntimePlanEntry> best_runtime_plan(
    const std::vector<RuntimePlanEntry>& entries) {
  if (entries.empty() || !entries.front().meets_deadline) {
    return std::nullopt;
  }
  return entries.front();
}

double cluster_shard_seconds(const ClusterNode& node, std::size_t n_options,
                             bool risk) {
  const std::uint64_t bytes = net::shard_price_frame_bytes(n_options) +
                              net::shard_result_frame_bytes(n_options, risk);
  return node.fit.seconds_for(n_options) + node.link.seconds_for(bytes);
}

std::vector<ClusterPlanEntry> plan_cluster(
    const std::vector<ClusterNode>& nodes,
    const BatchRequirements& requirements, bool risk_mode,
    std::vector<std::size_t> shard_sizes) {
  CDSFLOW_EXPECT(!nodes.empty(), "cluster plan needs at least one node");
  CDSFLOW_EXPECT(requirements.n_options > 0,
                 "cluster plan needs a non-empty batch");
  CDSFLOW_EXPECT(requirements.deadline_seconds > 0.0,
                 "cluster plan needs a positive deadline");
  for (const auto& node : nodes) {
    CDSFLOW_EXPECT(node.fit.options_per_second > 0.0,
                   "cluster node '" + node.address +
                       "' has no throughput fit");
  }

  const std::size_t n = requirements.n_options;
  const unsigned lanes = static_cast<unsigned>(nodes.size());
  if (shard_sizes.empty()) {
    // Same shard-size candidates as plan_runtime(), but the setup-aware
    // size is computed per node: each node amortises its *own* setup.
    shard_sizes.push_back(runtime::auto_shard_size(n, lanes));
    for (const auto& node : nodes) {
      shard_sizes.push_back(runtime::setup_aware_shard_size(
          n, lanes, node.fit.setup_seconds, node.fit.per_option_seconds()));
    }
    shard_sizes.push_back(
        std::max<std::size_t>(1, (n + nodes.size() - 1) / nodes.size()));
  }
  // A shard must fit in one wire frame.
  for (std::size_t& size : shard_sizes) {
    size = std::clamp<std::size_t>(size, 1, net::kMaxOptionsPerRequest);
  }
  std::sort(shard_sizes.begin(), shard_sizes.end());
  shard_sizes.erase(std::unique(shard_sizes.begin(), shard_sizes.end()),
                    shard_sizes.end());

  std::vector<ClusterPlanEntry> entries;
  for (const std::size_t shard_size : shard_sizes) {
    const auto shards = runtime::plan_shards(n, shard_size);
    ClusterPlanEntry entry;
    entry.shard_size = shard_size;
    entry.n_shards = shards.size();
    entry.node_of_shard.reserve(shards.size());
    entry.shards_per_node.assign(nodes.size(), 0);
    // Earliest projected finish, shards in submission order, lowest node
    // index on ties -- list_schedule_makespan generalised to per-lane
    // costs (identical nodes reproduce it exactly).
    std::vector<double> free_at(nodes.size(), 0.0);
    for (const auto& shard : shards) {
      std::size_t best = 0;
      double best_finish = std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < nodes.size(); ++k) {
        const double finish =
            free_at[k] + cluster_shard_seconds(nodes[k], shard.size(),
                                               risk_mode);
        if (finish < best_finish) {
          best = k;
          best_finish = finish;
        }
      }
      entry.projected_joules +=
          nodes[best].fit.watts * (best_finish - free_at[best]);
      free_at[best] = best_finish;
      entry.node_of_shard.push_back(best);
      ++entry.shards_per_node[best];
    }
    entry.projected_seconds =
        *std::max_element(free_at.begin(), free_at.end());
    entry.meets_deadline =
        entry.projected_seconds <= requirements.deadline_seconds;
    entries.push_back(std::move(entry));
  }

  std::stable_sort(entries.begin(), entries.end(),
                   [](const ClusterPlanEntry& a, const ClusterPlanEntry& b) {
                     if (a.meets_deadline != b.meets_deadline) {
                       return a.meets_deadline;
                     }
                     if (a.meets_deadline) {
                       return a.projected_joules < b.projected_joules;
                     }
                     return a.projected_seconds < b.projected_seconds;
                   });
  return entries;
}

std::optional<ClusterPlanEntry> best_cluster_plan(
    const std::vector<ClusterPlanEntry>& entries) {
  if (entries.empty() || !entries.front().meets_deadline) {
    return std::nullopt;
  }
  return entries.front();
}

}  // namespace cdsflow::engine
