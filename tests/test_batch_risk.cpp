/// \file test_batch_risk.cpp
/// The batched risk kernel: randomized parity of CS01/IR01/Rec01/JTD and the
/// bucketed CS01 ladder against the scalar compute_sensitivities /
/// cs01_ladder reference across knot counts and tenor books, input
/// validation, risk-mode engines through the registry, and determinism of
/// sensitivity merging through the sharded portfolio runtime.

#include <gtest/gtest.h>

#include <vector>

#include "cds/batch_pricer.hpp"
#include "cds/risk.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "engines/registry.hpp"
#include "runtime/portfolio_runtime.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"
#include "workload/scenario.hpp"

namespace cdsflow {
namespace {

using cds::BatchPricer;
using cds::BatchRiskConfig;
using cds::CdsOption;
using cds::Sensitivities;
using cds::TermStructure;

/// The documented tolerance: the kernel mirrors the scalar association
/// order, so it holds far below the 1e-9 acceptance bound.
constexpr double kParityTol = 1e-12;

void expect_close(double got, double want, const char* what, std::size_t i) {
  EXPECT_LE(relative_difference(got, want), kParityTol)
      << what << " of option " << i << ": got " << got << " want " << want;
}

void expect_risk_parity(const TermStructure& interest,
                        const TermStructure& hazard,
                        const std::vector<CdsOption>& book,
                        const BatchRiskConfig& config = {}) {
  const BatchPricer batch(interest, hazard);
  const auto run = batch.price_with_sensitivities(book, config);
  ASSERT_EQ(run.sensitivities.size(), book.size());
  ASSERT_EQ(run.cs01_ladder.size(), book.size() * run.ladder_buckets);
  for (std::size_t i = 0; i < book.size(); ++i) {
    const auto want =
        cds::compute_sensitivities(interest, hazard, book[i], config.bump);
    const auto& got = run.sensitivities[i];
    expect_close(got.spread_bps, want.spread_bps, "spread", i);
    expect_close(got.cs01, want.cs01, "cs01", i);
    expect_close(got.ir01, want.ir01, "ir01", i);
    expect_close(got.rec01, want.rec01, "rec01", i);
    EXPECT_EQ(got.jtd, want.jtd) << "jtd of option " << i;
    if (run.ladder_buckets > 0) {
      const auto want_ladder = cds::cs01_ladder(interest, hazard, book[i],
                                                config.ladder_edges,
                                                config.bump);
      ASSERT_EQ(want_ladder.size(), run.ladder_buckets);
      for (std::size_t b = 0; b < run.ladder_buckets; ++b) {
        expect_close(run.cs01_ladder[i * run.ladder_buckets + b],
                     want_ladder[b], "ladder bucket", i);
      }
    }
  }
}

// --- parity -----------------------------------------------------------------

TEST(BatchRisk, RandomisedParityAcrossKnotCounts) {
  for (const std::size_t knots : {1u, 3u, 17u, 129u}) {
    SCOPED_TRACE(knots);
    const auto interest = workload::paper_interest_curve(knots, 5);
    const auto hazard = workload::paper_hazard_curve(knots, 6);
    workload::PortfolioSpec spec;
    spec.count = 60;
    spec.frequencies = {1.0, 2.0, 4.0, 12.0};
    spec.frequency_weights = {1.0, 1.0, 4.0, 1.0};
    spec.seed = 2000 + knots;
    expect_risk_parity(interest, hazard, workload::make_portfolio(spec));
  }
}

TEST(BatchRisk, TenorBookParityWithLadder) {
  const auto interest = workload::paper_interest_curve(256);
  const auto hazard = workload::paper_hazard_curve(256);
  workload::PortfolioSpec spec;
  spec.count = 150;
  spec.maturity_tenor_grid = {1.0, 3.0, 5.0, 7.0, 10.0};
  spec.seed = 77;
  BatchRiskConfig config;
  config.ladder_edges = {0.0, 1.0, 3.0, 5.0, 7.0, 10.0};
  expect_risk_parity(interest, hazard, workload::make_portfolio(spec),
                     config);
}

TEST(BatchRisk, NonDefaultBumpParity) {
  const auto interest = workload::paper_interest_curve(64);
  const auto hazard = workload::paper_hazard_curve(64);
  workload::PortfolioSpec spec;
  spec.count = 40;
  spec.seed = 5;
  BatchRiskConfig config;
  config.bump = 5e-4;
  config.ladder_edges = {0.0, 5.0, 30.0};
  expect_risk_parity(interest, hazard, workload::make_portfolio(spec),
                     config);
}

TEST(BatchRisk, EdgeCaseMaturities) {
  // Short hazard curve so maturities extrapolate beyond the last knot, plus
  // stub and single-period schedules -- the same edge set the pricing-kernel
  // tests walk.
  const auto interest = workload::paper_interest_curve(64);
  workload::CurveSpec hazard_spec;
  hazard_spec.points = 16;
  hazard_spec.span_years = 5.0;
  hazard_spec.shape = workload::CurveShape::kStressed;
  const auto hazard = workload::make_curve(hazard_spec);

  std::vector<CdsOption> book;
  std::int32_t id = 0;
  for (const double maturity : {0.07, 0.25, 4.999, 5.0, 7.5, 29.9}) {
    for (const double recovery : {0.0, 0.4, 0.95}) {
      book.push_back({id++, maturity, 4.0, recovery});
    }
  }
  BatchRiskConfig config;
  config.ladder_edges = {0.0, 2.0, 6.0};
  expect_risk_parity(interest, hazard, book, config);
}

// --- accounting and validation ----------------------------------------------

TEST(BatchRisk, StatsAccountForBumpedTabulations) {
  const auto scenario = workload::smoke_scenario(4);
  workload::PortfolioSpec spec;
  spec.count = 128;
  spec.maturity_tenor_grid = {1.0, 5.0};
  spec.seed = 9;
  const auto book = workload::make_portfolio(spec);
  const BatchPricer batch(scenario.interest, scenario.hazard);

  BatchRiskConfig config;
  config.ladder_edges = {0.0, 3.0, 10.0};  // 2 buckets
  const auto run = batch.price_with_sensitivities(book, config);
  EXPECT_EQ(run.stats.base.options, book.size());
  EXPECT_EQ(run.stats.base.unique_schedules, 2u);
  // 4 parallel scenarios + 2 per bucket, each walking every grid point.
  EXPECT_EQ(run.stats.bumped_grid_points, 8 * run.stats.base.grid_points);
  // The scalar loop pays 7 repricings per option plus 2 per bucket.
  EXPECT_EQ(run.stats.scalar_repricings, book.size() * 11);
}

TEST(BatchRisk, WorkspaceReuseIsDeterministic) {
  const auto scenario = workload::smoke_scenario(4);
  workload::PortfolioSpec spec;
  spec.count = 64;
  spec.seed = 3;
  const auto book = workload::make_portfolio(spec);
  const BatchPricer batch(scenario.interest, scenario.hazard);

  BatchRiskConfig config;
  config.ladder_edges = {0.0, 5.0, 30.0};
  BatchPricer::RiskWorkspace ws;
  std::vector<Sensitivities> first(book.size()), second(book.size());
  std::vector<double> ladder_first(book.size() * 2),
      ladder_second(book.size() * 2);
  batch.price_with_sensitivities(book, first, ladder_first, ws, config);
  batch.price_with_sensitivities(book, second, ladder_second, ws, config);
  for (std::size_t i = 0; i < book.size(); ++i) {
    EXPECT_EQ(first[i].cs01, second[i].cs01);
    EXPECT_EQ(first[i].ir01, second[i].ir01);
    EXPECT_EQ(first[i].rec01, second[i].rec01);
  }
  EXPECT_EQ(ladder_first, ladder_second);
}

TEST(BatchRisk, ValidatesInputs) {
  const auto scenario = workload::smoke_scenario(4);
  const BatchPricer batch(scenario.interest, scenario.hazard);
  BatchPricer::RiskWorkspace ws;
  std::vector<Sensitivities> out(scenario.options.size());

  BatchRiskConfig bad_bump;
  bad_bump.bump = 0.0;
  EXPECT_THROW(batch.price_with_sensitivities(scenario.options, out, {}, ws,
                                              bad_bump),
               Error);

  BatchRiskConfig one_edge;
  one_edge.ladder_edges = {1.0};
  EXPECT_THROW(batch.price_with_sensitivities(scenario.options, out, {}, ws,
                                              one_edge),
               Error);

  BatchRiskConfig decreasing;
  decreasing.ladder_edges = {2.0, 1.0};
  EXPECT_THROW(batch.price_with_sensitivities(scenario.options, out, {}, ws,
                                              decreasing),
               Error);

  // ladder_out sized for the wrong bucket count.
  BatchRiskConfig two_buckets;
  two_buckets.ladder_edges = {0.0, 1.0, 2.0};
  std::vector<double> wrong_ladder(scenario.options.size());
  EXPECT_THROW(batch.price_with_sensitivities(scenario.options, out,
                                              wrong_ladder, ws, two_buckets),
               Error);

  std::vector<Sensitivities> too_small(1);
  EXPECT_THROW(batch.price_with_sensitivities(scenario.options, too_small,
                                              {}, ws, {}),
               Error);
}

TEST(BatchRisk, EmptyBatch) {
  const auto scenario = workload::smoke_scenario(4);
  const BatchPricer batch(scenario.interest, scenario.hazard);
  BatchPricer::RiskWorkspace ws;
  const auto stats = batch.price_with_sensitivities(
      std::span<const CdsOption>{}, std::span<Sensitivities>{}, {}, ws, {});
  EXPECT_EQ(stats.base.options, 0u);
  EXPECT_EQ(stats.bumped_grid_points, 0u);
}

// --- engine + runtime wiring ------------------------------------------------

TEST(RiskEngines, RegistryParsesRiskNames) {
  const auto scenario = workload::smoke_scenario(8);
  auto batch_risk = engine::make_engine("cpu-batch-risk", scenario.interest,
                                        scenario.hazard);
  EXPECT_EQ(batch_risk->name(), "cpu-batch-risk");
  auto batch_risk_mt = engine::make_engine("cpu-batch-risk-mt2",
                                           scenario.interest,
                                           scenario.hazard);
  EXPECT_EQ(batch_risk_mt->name(), "cpu-batch-risk-mt2");
  auto scalar_risk = engine::make_engine("cpu-risk", scenario.interest,
                                         scenario.hazard);
  EXPECT_EQ(scalar_risk->name(), "cpu-risk");
  EXPECT_THROW(engine::make_engine("cpu-batch-risk-mt0", scenario.interest,
                                   scenario.hazard),
               Error);
}

TEST(RiskEngines, RiskModeFillsSensitivitiesAndSpreads) {
  const auto scenario = workload::paper_scenario(48, 17);
  engine::CpuEngineConfig cfg;
  cfg.ladder_edges = {0.0, 5.0, 30.0};
  auto engine = engine::make_engine("cpu-batch-risk", scenario.interest,
                                    scenario.hazard, {}, cfg);
  const auto run = engine->price(scenario.options);
  ASSERT_EQ(run.results.size(), scenario.options.size());
  ASSERT_EQ(run.sensitivities.size(), scenario.options.size());
  EXPECT_EQ(run.ladder_buckets, 2u);
  ASSERT_EQ(run.cs01_ladder.size(), 2 * scenario.options.size());
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    EXPECT_EQ(run.results[i].id, scenario.options[i].id);
    // The spread column must agree with the sensitivity record, so risk
    // runs merge through the runtime exactly like pricing runs.
    EXPECT_EQ(run.results[i].spread_bps, run.sensitivities[i].spread_bps);
  }
}

TEST(RiskEngines, ScalarAndBatchRiskEnginesAgree) {
  const auto scenario = workload::paper_scenario(40, 9);
  engine::CpuEngineConfig cfg;
  cfg.ladder_edges = {0.0, 2.0, 10.0};
  auto scalar = engine::make_engine("cpu-risk", scenario.interest,
                                    scenario.hazard, {}, cfg);
  auto batch = engine::make_engine("cpu-batch-risk", scenario.interest,
                                   scenario.hazard, {}, cfg);
  const auto want = scalar->price(scenario.options);
  const auto got = batch->price(scenario.options);
  ASSERT_EQ(want.sensitivities.size(), got.sensitivities.size());
  ASSERT_EQ(want.cs01_ladder.size(), got.cs01_ladder.size());
  for (std::size_t i = 0; i < want.sensitivities.size(); ++i) {
    expect_close(got.sensitivities[i].cs01, want.sensitivities[i].cs01,
                 "cs01", i);
    expect_close(got.sensitivities[i].ir01, want.sensitivities[i].ir01,
                 "ir01", i);
    expect_close(got.sensitivities[i].rec01, want.sensitivities[i].rec01,
                 "rec01", i);
  }
  for (std::size_t i = 0; i < want.cs01_ladder.size(); ++i) {
    expect_close(got.cs01_ladder[i], want.cs01_ladder[i], "ladder", i);
  }
}

TEST(RiskEngines, ThreadedRiskRunMatchesSingleThread) {
  const auto scenario = workload::smoke_scenario(61, 13);
  engine::CpuEngineConfig cfg;
  cfg.ladder_edges = {0.0, 5.0, 30.0};
  auto one = engine::make_engine("cpu-batch-risk", scenario.interest,
                                 scenario.hazard, {}, cfg);
  auto four = engine::make_engine("cpu-batch-risk-mt4", scenario.interest,
                                  scenario.hazard, {}, cfg);
  const auto want = one->price(scenario.options);
  const auto got = four->price(scenario.options);
  ASSERT_EQ(got.sensitivities.size(), want.sensitivities.size());
  for (std::size_t i = 0; i < want.sensitivities.size(); ++i) {
    EXPECT_EQ(got.sensitivities[i].cs01, want.sensitivities[i].cs01);
    EXPECT_EQ(got.sensitivities[i].ir01, want.sensitivities[i].ir01);
    EXPECT_EQ(got.sensitivities[i].rec01, want.sensitivities[i].rec01);
    EXPECT_EQ(got.sensitivities[i].jtd, want.sensitivities[i].jtd);
  }
  EXPECT_EQ(got.cs01_ladder, want.cs01_ladder);
}

TEST(RiskEngines, DeterministicThroughPortfolioRuntime) {
  const auto scenario = workload::smoke_scenario(53, 29);
  std::vector<Sensitivities> reference;
  std::vector<double> reference_ladder;
  for (const unsigned workers : {1u, 2u, 4u}) {
    SCOPED_TRACE(workers);
    runtime::RuntimeConfig cfg;
    cfg.engine = "cpu-batch-risk";
    cfg.workers = workers;
    cfg.shard_size = 7;  // ragged final shard: 53 = 7*7 + 4
    cfg.cpu.ladder_edges = {0.0, 5.0, 30.0};
    runtime::PortfolioRuntime rt(scenario.interest, scenario.hazard, cfg);
    const auto run = rt.price(scenario.options);
    ASSERT_EQ(run.run.results.size(), scenario.options.size());
    ASSERT_EQ(run.run.sensitivities.size(), scenario.options.size());
    EXPECT_EQ(run.run.ladder_buckets, 2u);
    ASSERT_EQ(run.run.cs01_ladder.size(), 2 * scenario.options.size());
    if (reference.empty()) {
      reference = run.run.sensitivities;
      reference_ladder = run.run.cs01_ladder;
      // Shard boundaries must not move the values: check against the
      // unsharded scalar reference.
      for (std::size_t i = 0; i < reference.size(); ++i) {
        const auto want = cds::compute_sensitivities(
            scenario.interest, scenario.hazard, scenario.options[i]);
        expect_close(reference[i].cs01, want.cs01, "cs01", i);
        expect_close(reference[i].rec01, want.rec01, "rec01", i);
      }
    } else {
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(run.run.sensitivities[i].cs01, reference[i].cs01) << i;
        EXPECT_EQ(run.run.sensitivities[i].ir01, reference[i].ir01) << i;
        EXPECT_EQ(run.run.sensitivities[i].rec01, reference[i].rec01) << i;
      }
      EXPECT_EQ(run.run.cs01_ladder, reference_ladder);
    }
  }
}

}  // namespace
}  // namespace cdsflow
