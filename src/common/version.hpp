/// \file version.hpp
/// Library version constants.

#pragma once

namespace cdsflow {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace cdsflow
