/// \file hazard.hpp
/// Hazard-rate integration and survival probabilities.
///
/// "The first significant option calculation performed for each time point
/// is the probability that the loan has defaulted by that point in time,
/// which involves accumulating the hazard rate constant data up until this
/// time." (paper Sec. II-A)
///
/// The hazard curve is piecewise-constant: rate h_j applies on the interval
/// (tau_{j-1}, tau_j] (with tau_{-1} = 0) and the last rate extrapolates
/// beyond the final knot. The integrated hazard is
///
///     Lambda(t) = sum_j h_j * max(0, min(tau_j, t) - min(tau_{j-1}, t))
///               + h_{N-1} * max(0, t - tau_{N-1})
///
/// and the survival probability Q(t) = exp(-Lambda(t)); the defaulting
/// probability is 1 - Q(t).
///
/// Each element's contribution is independent -- only the *sum* carries a
/// dependency -- which is why the paper's Listing 1 can replicate the
/// accumulator into seven lanes and recover II=1. Two implementations are
/// provided with *different summation orders*:
///
///   * integrated_hazard          -- in-order accumulation, the Vitis
///                                   library structure and the golden model;
///   * integrated_hazard_listing1 -- the seven-partial-sum rewrite,
///                                   bit-for-bit the order Listing 1
///                                   produces (including the uneven-tail
///                                   handling the paper omits for brevity).
///
/// The generic lane-accumulators at the bottom are the same trick over a
/// plain array; the Listing-1 bench uses them to show the dependency-chain
/// effect natively on the CPU as well.

#pragma once

#include <cstddef>
#include <span>

#include "cds/curve.hpp"

namespace cdsflow::cds {

/// Contribution of curve element `j` to Lambda(t); no carried dependency.
double hazard_element_contribution(const TermStructure& hazard, std::size_t j,
                                   double t);

/// In-order integrated hazard (Vitis library summation order).
double integrated_hazard(const TermStructure& hazard, double t);

/// Listing-1 integrated hazard: `lanes` partial sums filled cyclically, then
/// folded in lane order. lanes == 7 covers the 7-cycle double-add latency.
double integrated_hazard_listing1(const TermStructure& hazard, double t,
                                  unsigned lanes = 7);

/// Q(t) = exp(-Lambda(t)) using the in-order integration.
double survival_probability(const TermStructure& hazard, double t);

/// 1 - Q(t).
double default_probability(const TermStructure& hazard, double t);

// --- prefix-sum fast path --------------------------------------------------
//
// The host-side batch pricer queries Lambda(t) thousands of times against
// one fixed hazard curve; re-running the O(knots) scan per query is exactly
// the redundant recomputation the paper eliminates in hardware. Because the
// in-order scan accumulates full-segment contributions left to right (every
// segment past t contributes +0.0, which cannot change a finite IEEE sum),
// Lambda(tau_0..tau_j) can be precomputed once as a prefix sum in the same
// association order; a query then locates its segment by binary search and
// adds the single partial-segment term. The result is bit-for-bit equal to
// integrated_hazard() for every t >= 0.

/// Precomputed prefix sums of the hazard integral at each knot.
struct HazardPrefix {
  /// Knot times tau_j, copied from the curve.
  std::vector<double> times;
  /// Piecewise rates h_j, copied from the curve.
  std::vector<double> rates;
  /// lambda[j] = Lambda(tau_j), accumulated in curve order.
  std::vector<double> lambda;
};

/// Builds the prefix table (O(knots), done once per curve).
HazardPrefix make_hazard_prefix(const TermStructure& hazard);

/// Rebuilds `prefix` in place from raw knot arrays, reusing its vectors'
/// capacity (no validation; callers own the curve invariants). The lambda
/// accumulation order is exactly make_hazard_prefix's, so the result is
/// bit-identical to building a TermStructure and calling it -- this is the
/// scenario sweep's per-scenario path, which swaps rate rows against fixed
/// knot times without re-constructing curve objects.
void fill_hazard_prefix(std::span<const double> times,
                        std::span<const double> rates, HazardPrefix& prefix);

/// O(log knots) Lambda(t); bit-identical to integrated_hazard(hazard, t)
/// for the curve the prefix was built from.
double integrated_hazard_prefix(const HazardPrefix& prefix, double t);

/// Q(t) = exp(-Lambda(t)) via the prefix table.
double survival_probability_prefix(const HazardPrefix& prefix, double t);

// --- generic lane accumulation (Listing 1 over a plain array) --------------

/// Straight left-to-right sum: the II=7 dependency chain on the FPGA, and a
/// serial dependency chain on the CPU too.
double accumulate_naive(std::span<const double> xs);

/// Listing 1: `Lanes` partial sums filled cyclically in chunks, folded at
/// the end. Independent adds every cycle on the FPGA; independent dependency
/// chains (ILP) on the CPU.
template <unsigned Lanes = 7>
double accumulate_partial_lanes(std::span<const double> xs) {
  static_assert(Lanes >= 1);
  double lanes[Lanes];
  for (unsigned j = 0; j < Lanes; ++j) lanes[j] = 0.0;
  const std::size_t whole = xs.size() / Lanes;
  // Outer loop II=Lanes, inner loop fully unrolled (Listing 1 lines 4-10).
  for (std::size_t i = 0; i < whole; ++i) {
    for (unsigned j = 0; j < Lanes; ++j) {
      lanes[j] += xs[i * Lanes + j];
    }
  }
  // Uneven tail (omitted from the paper's listing for brevity).
  for (std::size_t k = whole * Lanes; k < xs.size(); ++k) {
    lanes[k % Lanes] += xs[k];
  }
  // Final fold (Listing 1 lines 12-15): short, so the carried dependency
  // costs only Lanes * latency cycles.
  double sum = 0.0;
  for (unsigned j = 0; j < Lanes; ++j) sum += lanes[j];
  return sum;
}

}  // namespace cdsflow::cds
