#include "cds/risk.hpp"

#include <cmath>

#include "cds/legs.hpp"
#include "common/error.hpp"

namespace cdsflow::cds {

TermStructure parallel_bump(const TermStructure& curve, double bump) {
  curve.validate();
  CDSFLOW_EXPECT(std::isfinite(bump), "curve bump must be finite");
  std::vector<double> values = curve.values();
  for (auto& v : values) v += bump;
  return TermStructure(curve.times(), std::move(values));
}

TermStructure bucket_bump(const TermStructure& curve, double t_lo,
                          double t_hi, double bump) {
  curve.validate();
  CDSFLOW_EXPECT(std::isfinite(bump), "curve bump must be finite");
  CDSFLOW_EXPECT(std::isfinite(t_lo) && !std::isnan(t_hi),
                 "bucket bump edges must not be NaN (t_hi may be +inf)");
  CDSFLOW_EXPECT(t_lo < t_hi, "bucket bump range is inverted");
  std::vector<double> values = curve.values();
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (curve.time(i) >= t_lo && curve.time(i) < t_hi) values[i] += bump;
  }
  return TermStructure(curve.times(), std::move(values));
}

namespace {

double spread_of(const TermStructure& interest, const TermStructure& hazard,
                 const CdsOption& option) {
  return price_breakdown(interest, hazard, option).spread_bps;
}

}  // namespace

Sensitivities compute_sensitivities(const TermStructure& interest,
                                    const TermStructure& hazard,
                                    const CdsOption& option, double bump) {
  CDSFLOW_EXPECT(bump > 0.0 && std::isfinite(bump),
                 "sensitivity bump must be positive and finite");
  option.validate();

  Sensitivities out;
  out.spread_bps = spread_of(interest, hazard, option);
  // JTD: the engine quotes fair spreads, so the contract marks at zero and
  // jump-to-default is exactly the protection payout.
  out.jtd = 1.0 - option.recovery_rate;

  // CS01: central difference in the hazard curve, scaled to a 1 bp bump.
  {
    const double up = spread_of(interest, parallel_bump(hazard, bump), option);
    const double dn =
        spread_of(interest, parallel_bump(hazard, -bump), option);
    out.cs01 = (up - dn) / (2.0 * bump) * 1e-4;
  }
  // IR01: central difference in the rates curve.
  {
    const double up = spread_of(parallel_bump(interest, bump), hazard, option);
    const double dn =
        spread_of(parallel_bump(interest, -bump), hazard, option);
    out.ir01 = (up - dn) / (2.0 * bump) * 1e-4;
  }
  // Rec01: central difference in recovery, scaled to +1% absolute.
  {
    CdsOption up_opt = option;
    CdsOption dn_opt = option;
    const double rb = std::min(bump, 0.5 * (1.0 - option.recovery_rate));
    up_opt.recovery_rate = option.recovery_rate + rb;
    dn_opt.recovery_rate = std::max(0.0, option.recovery_rate - rb);
    const double up = spread_of(interest, hazard, up_opt);
    const double dn = spread_of(interest, hazard, dn_opt);
    out.rec01 = (up - dn) /
                (up_opt.recovery_rate - dn_opt.recovery_rate) * 0.01;
  }
  return out;
}

void validate_ladder_edges(const std::vector<double>& bucket_edges) {
  CDSFLOW_EXPECT(bucket_edges.size() >= 2, "ladder needs >= 2 bucket edges");
  for (std::size_t i = 1; i < bucket_edges.size(); ++i) {
    CDSFLOW_EXPECT(bucket_edges[i] > bucket_edges[i - 1],
                   "bucket edges must be increasing");
  }
}

std::vector<double> cs01_ladder(const TermStructure& interest,
                                const TermStructure& hazard,
                                const CdsOption& option,
                                const std::vector<double>& bucket_edges,
                                double bump) {
  validate_ladder_edges(bucket_edges);
  CDSFLOW_EXPECT(bump > 0.0 && std::isfinite(bump),
                 "sensitivity bump must be positive and finite");

  std::vector<double> ladder;
  ladder.reserve(bucket_edges.size() - 1);
  for (std::size_t b = 0; b + 1 < bucket_edges.size(); ++b) {
    const double lo = bucket_edges[b];
    const double hi = bucket_edges[b + 1];
    const double up =
        spread_of(interest, bucket_bump(hazard, lo, hi, bump), option);
    const double dn =
        spread_of(interest, bucket_bump(hazard, lo, hi, -bump), option);
    ladder.push_back((up - dn) / (2.0 * bump) * 1e-4);
  }
  return ladder;
}

}  // namespace cdsflow::cds
