/// \file test_workload.cpp
/// Unit tests for workload generation: curve shapes, portfolio draws,
/// determinism, scenario composition.

#include <gtest/gtest.h>

#include "cds/schedule.hpp"
#include "common/error.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"
#include "workload/scenario.hpp"

namespace cdsflow::workload {
namespace {

TEST(Curves, SpecHonoursPointCountAndSpan) {
  CurveSpec spec;
  spec.points = 100;
  spec.span_years = 12.0;
  const auto c = make_curve(spec);
  EXPECT_EQ(c.size(), 100u);
  EXPECT_DOUBLE_EQ(c.max_time(), 12.0);
  EXPECT_GT(c.time(0), 0.0);
}

TEST(Curves, AllValuesPositive) {
  for (const auto shape :
       {CurveShape::kFlat, CurveShape::kUpwardSloping, CurveShape::kHumped,
        CurveShape::kStressed}) {
    CurveSpec spec;
    spec.shape = shape;
    const auto c = make_curve(spec);
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_GT(c.value(i), 0.0) << to_string(shape) << " @ " << i;
    }
  }
}

TEST(Curves, FlatWithoutJitterIsExactlyFlat) {
  CurveSpec spec;
  spec.shape = CurveShape::kFlat;
  spec.jitter = 0.0;
  spec.base_rate = 0.025;
  const auto c = make_curve(spec);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_DOUBLE_EQ(c.value(i), 0.025);
  }
}

TEST(Curves, UpwardSlopingSlopesUp) {
  CurveSpec spec;
  spec.shape = CurveShape::kUpwardSloping;
  spec.jitter = 0.0;
  const auto c = make_curve(spec);
  EXPECT_GT(c.value(c.size() - 1), c.value(0));
}

TEST(Curves, StressedSlopesDown) {
  CurveSpec spec;
  spec.shape = CurveShape::kStressed;
  spec.jitter = 0.0;
  const auto c = make_curve(spec);
  EXPECT_LT(c.value(c.size() - 1), c.value(0));
}

TEST(Curves, HumpedPeaksInTheMiddle) {
  CurveSpec spec;
  spec.shape = CurveShape::kHumped;
  spec.jitter = 0.0;
  const auto c = make_curve(spec);
  const std::size_t peak_region = c.size() * 2 / 5;
  EXPECT_GT(c.value(peak_region), c.value(0));
  EXPECT_GT(c.value(peak_region), c.value(c.size() - 1));
}

TEST(Curves, DeterministicForSameSeed) {
  CurveSpec spec;
  spec.seed = 77;
  const auto a = make_curve(spec);
  const auto b = make_curve(spec);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.value(i), b.value(i));
  }
  spec.seed = 78;
  const auto c = make_curve(spec);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.value(i) != c.value(i)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Curves, RejectsBadSpecs) {
  CurveSpec spec;
  spec.points = 0;
  EXPECT_THROW(make_curve(spec), Error);
  spec = {};
  spec.span_years = 0.0;
  EXPECT_THROW(make_curve(spec), Error);
  spec = {};
  spec.jitter = 1.5;
  EXPECT_THROW(make_curve(spec), Error);
}

TEST(Curves, PaperCurvesHave1024Points) {
  EXPECT_EQ(paper_interest_curve().size(), 1024u);
  EXPECT_EQ(paper_hazard_curve().size(), 1024u);
}

TEST(Portfolio, CountAndRanges) {
  PortfolioSpec spec;
  spec.count = 200;
  const auto book = make_portfolio(spec);
  ASSERT_EQ(book.size(), 200u);
  for (std::size_t i = 0; i < book.size(); ++i) {
    const auto& o = book[i];
    EXPECT_EQ(o.id, static_cast<std::int32_t>(i));
    EXPECT_GE(o.maturity_years, spec.maturity_min_years);
    EXPECT_LT(o.maturity_years, spec.maturity_max_years);
    EXPECT_GE(o.recovery_rate, spec.recovery_min);
    EXPECT_LT(o.recovery_rate, spec.recovery_max + 1e-12);
    EXPECT_EQ(o.payment_frequency, 4.0);  // default all-quarterly
  }
}

TEST(Portfolio, FrequencyMixRespected) {
  PortfolioSpec spec;
  spec.count = 500;
  spec.frequencies = {2.0, 12.0};
  spec.frequency_weights = {1.0, 1.0};
  const auto book = make_portfolio(spec);
  int semi = 0, monthly = 0;
  for (const auto& o : book) {
    if (o.payment_frequency == 2.0) ++semi;
    if (o.payment_frequency == 12.0) ++monthly;
  }
  EXPECT_EQ(semi + monthly, 500);
  EXPECT_GT(semi, 150);
  EXPECT_GT(monthly, 150);
}

TEST(Portfolio, DeterministicAndSeedSensitive) {
  PortfolioSpec spec;
  spec.count = 50;
  spec.seed = 5;
  const auto a = make_portfolio(spec);
  const auto b = make_portfolio(spec);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].maturity_years, b[i].maturity_years);
  }
  spec.seed = 6;
  const auto c = make_portfolio(spec);
  EXPECT_NE(a[0].maturity_years, c[0].maturity_years);
}

TEST(Portfolio, ValidationRejectsBadSpecs) {
  PortfolioSpec spec;
  spec.count = 0;
  EXPECT_THROW(make_portfolio(spec), Error);
  spec = {};
  spec.maturity_min_years = 5.0;
  spec.maturity_max_years = 1.0;
  EXPECT_THROW(make_portfolio(spec), Error);
  spec = {};
  spec.frequencies = {4.0};
  spec.frequency_weights = {1.0, 2.0};
  EXPECT_THROW(make_portfolio(spec), Error);
  spec = {};
  spec.recovery_max = 1.0;
  EXPECT_THROW(make_portfolio(spec), Error);
}

TEST(Portfolio, TotalTimePointsMatchesSchedules) {
  PortfolioSpec spec;
  spec.count = 20;
  const auto book = make_portfolio(spec);
  std::uint64_t expected = 0;
  for (const auto& o : book) expected += cds::schedule_size(o);
  EXPECT_EQ(total_time_points(book), expected);
  EXPECT_GT(expected, 0u);
}

TEST(Scenario, PaperScenarioShape) {
  const auto s = paper_scenario(64);
  EXPECT_EQ(s.interest.size(), 1024u);
  EXPECT_EQ(s.hazard.size(), 1024u);
  EXPECT_EQ(s.options.size(), 64u);
  EXPECT_EQ(s.name, "paper");
  // The calibrated option mix averages ~22 time points per option.
  const double avg_tp = static_cast<double>(total_time_points(s.options)) /
                        static_cast<double>(s.options.size());
  EXPECT_GT(avg_tp, 18.0);
  EXPECT_LT(avg_tp, 26.0);
}

TEST(Scenario, SmokeScenarioIsSmall) {
  const auto s = smoke_scenario();
  EXPECT_LT(s.interest.size(), 128u);
  EXPECT_FALSE(s.options.empty());
}

TEST(Scenario, StressedScenarioHasElevatedHazards) {
  const auto stressed = stressed_scenario(16);
  const auto normal = paper_scenario(16);
  EXPECT_GT(stressed.hazard.value(0), normal.hazard.value(0));
}

TEST(Scenario, SeedChangesOptionsNotCurves) {
  const auto a = paper_scenario(16, 1);
  const auto b = paper_scenario(16, 2);
  EXPECT_DOUBLE_EQ(a.interest.value(0), b.interest.value(0));
  EXPECT_NE(a.options[0].maturity_years, b.options[0].maturity_years);
}

TEST(Scenario, StressedHazardSpecIsIndependentOfInterestSpec) {
  // The hazard curve is built from its own explicit CurveSpec, not a copy
  // of the interest spec: both are stressed-shape (inverted), but the
  // hazard sits at the elevated 9% base with its own seed, so the two
  // curves must differ everywhere rather than being a level-shifted clone.
  const auto s = stressed_scenario(8);
  EXPECT_EQ(s.interest.size(), s.hazard.size());
  EXPECT_GT(s.hazard.value(0), 2.0 * s.interest.value(0));
  const double gap0 = s.hazard.value(0) - s.interest.value(0);
  const double gap_mid = s.hazard.value(s.hazard.size() / 2) -
                         s.interest.value(s.interest.size() / 2);
  EXPECT_NE(gap0, gap_mid);  // different seeds: not a parallel shift
}

// --- scenario sets ---------------------------------------------------------------

TEST(ScenarioSets, GeneratorsAreBitDeterministic) {
  const auto interest = paper_interest_curve(64);
  const auto hazard = paper_hazard_curve(64);
  const auto expect_same = [](const ScenarioSet& a, const ScenarioSet& b) {
    ASSERT_EQ(a.count, b.count);
    ASSERT_EQ(a.hazard_values.size(), b.hazard_values.size());
    ASSERT_EQ(a.rate_values.size(), b.rate_values.size());
    for (std::size_t i = 0; i < a.hazard_values.size(); ++i) {
      EXPECT_EQ(a.hazard_values[i], b.hazard_values[i]) << i;
    }
    for (std::size_t i = 0; i < a.rate_values.size(); ++i) {
      EXPECT_EQ(a.rate_values[i], b.rate_values[i]) << i;
    }
  };
  expect_same(parallel_stress_scenarios(hazard, 9, 100.0),
              parallel_stress_scenarios(hazard, 9, 100.0));
  expect_same(bucketed_stress_scenarios(hazard, 4, 25.0),
              bucketed_stress_scenarios(hazard, 4, 25.0));
  expect_same(replay_scenarios(interest, 7, 2.0, 11),
              replay_scenarios(interest, 7, 2.0, 11));
  expect_same(mc_hazard_scenarios(hazard, 7, 0.25, 11),
              mc_hazard_scenarios(hazard, 7, 0.25, 11));
  expect_same(joint_stress_scenarios(interest, hazard, 7, 50.0),
              joint_stress_scenarios(interest, hazard, 7, 50.0));
}

TEST(ScenarioSets, McRowsAreIndependentOfCount) {
  // Each path draws from Rng(seed).split(s): generating more scenarios
  // must not change the earlier rows.
  const auto hazard = paper_hazard_curve(32);
  const auto small = mc_hazard_scenarios(hazard, 3, 0.25, 5);
  const auto big = mc_hazard_scenarios(hazard, 12, 0.25, 5);
  for (std::size_t i = 0; i < small.hazard_values.size(); ++i) {
    EXPECT_EQ(small.hazard_values[i], big.hazard_values[i]) << i;
  }
}

TEST(ScenarioSets, ShapesAndKinds) {
  const auto interest = paper_interest_curve(32);
  const auto hazard = paper_hazard_curve(48);

  const auto ladder = parallel_stress_scenarios(hazard, 5, 100.0);
  EXPECT_EQ(ladder.kind, cds::ScenarioKind::kHazard);
  EXPECT_EQ(ladder.hazard_values.size(), 5u * 48u);
  EXPECT_TRUE(ladder.rate_values.empty());
  // Middle rung of an odd ladder is the unshocked base curve.
  for (std::size_t j = 0; j < 48; ++j) {
    EXPECT_EQ(ladder.hazard_values[2 * 48 + j], hazard.value(j)) << j;
  }

  const auto buckets = bucketed_stress_scenarios(hazard, 6, 25.0);
  EXPECT_EQ(buckets.count, 12u);

  const auto replay = replay_scenarios(interest, 4);
  EXPECT_EQ(replay.kind, cds::ScenarioKind::kRate);
  EXPECT_EQ(replay.rate_values.size(), 4u * 32u);
  EXPECT_TRUE(replay.hazard_values.empty());

  const auto joint = joint_stress_scenarios(interest, hazard, 4, 50.0);
  EXPECT_EQ(joint.kind, cds::ScenarioKind::kJoint);
  EXPECT_EQ(joint.hazard_values.size(), 4u * 48u);
  EXPECT_EQ(joint.rate_values.size(), 4u * 32u);

  // Row materialisation round-trips the stored values.
  const auto curve = joint.hazard_curve(2);
  for (std::size_t j = 0; j < 48; ++j) {
    EXPECT_EQ(curve.value(j), joint.hazard_values[2 * 48 + j]);
  }

  EXPECT_THROW(parallel_stress_scenarios(hazard, 0, 10.0), Error);
  EXPECT_THROW(bucketed_stress_scenarios(hazard, 0, 10.0), Error);
  EXPECT_THROW(bucketed_stress_scenarios(hazard, 49, 10.0), Error);
  EXPECT_THROW(replay.hazard_curve(0), Error);
  EXPECT_THROW(joint.rate_curve(4), Error);
}

TEST(ScenarioSets, HazardValuesStayPositive) {
  const auto hazard = paper_hazard_curve(32);
  // A shock far below the curve level floors at the minimum positive rate.
  const auto set = parallel_stress_scenarios(hazard, 3, 1e6);
  for (std::size_t j = 0; j < 32; ++j) {
    EXPECT_GT(set.hazard_values[j], 0.0) << j;  // scenario 0: -1e6 bp
  }
}

}  // namespace
}  // namespace cdsflow::workload
