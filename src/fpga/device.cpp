#include "fpga/device.hpp"

namespace cdsflow::fpga {

DeviceSpec alveo_u280() {
  DeviceSpec d;
  d.name = "Xilinx Alveo U280";
  // Capacities as reported in the paper (Sec. II-B) and the U280 data sheet.
  d.luts = 1'304'000;
  d.flip_flops = 2'607'000;
  d.bram_bytes = static_cast<std::uint64_t>(4.5 * 1024 * 1024);
  d.uram_bytes = 30ULL * 1024 * 1024;
  d.dsp_slices = 9024;
  d.hbm_bytes = 8ULL * 1024 * 1024 * 1024;
  d.hbm_bandwidth_bytes_per_s = 460.0e9;
  d.dram_bytes = 32ULL * 1024 * 1024 * 1024;
  return d;
}

DeviceSpec alveo_u250() {
  DeviceSpec d;
  d.name = "Xilinx Alveo U250";
  d.luts = 1'728'000;
  d.flip_flops = 3'456'000;
  d.bram_bytes = static_cast<std::uint64_t>(54.0 / 8.0 * 1024 * 1024);
  d.uram_bytes = 45ULL * 1024 * 1024;
  d.dsp_slices = 12288;
  d.hbm_bytes = 0;  // DDR-only card
  d.hbm_bandwidth_bytes_per_s = 77.0e9;
  d.dram_bytes = 64ULL * 1024 * 1024 * 1024;
  return d;
}

}  // namespace cdsflow::fpga
