/// \file dataflow.hpp
/// Dataflow region execution policies.
///
/// The paper's three FPGA engine generations differ in *how* the same stage
/// graph executes, not in what it computes:
///
///  * kSequentialLoops  — the original Vitis library style: each component is
///    a pipelined loop, loops run one after another communicating through
///    arrays. Modelled by summing per-stage spans (no overlap). The baseline
///    engine implements this directly; the enum value exists so configs and
///    reports can name it.
///  * kRestartPerOption — the first dataflow rewrite: stages run concurrently
///    connected by streams, but the region processes one option per kernel
///    invocation, so the region drains and the host restarts it between
///    options (ap_ctrl/XRT enqueue overhead + pipeline refill each time).
///  * kFreeRunning      — the "dataflow inter-options" engine: options stream
///    through a continuously running region; the region starts once per
///    batch.
///
/// RegionRunner applies a policy to a graph-factory callback and accumulates
/// total cycles, so every engine shares one tested implementation of the
/// start/stop accounting.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/cycle.hpp"
#include "sim/simulation.hpp"

namespace cdsflow::hls {

enum class ExecutionPolicy {
  kSequentialLoops,
  kRestartPerOption,
  kFreeRunning,
};

/// Human-readable policy name (reports, engine descriptions).
const char* to_string(ExecutionPolicy policy);

/// Cost accounting for region start/stop, in kernel-clock cycles.
struct RegionOverheads {
  /// Cycles charged per region start *after* the first (the host-side
  /// ap_start/XRT enqueue round trip the paper eliminated by streaming
  /// options). See fpga::HlsCostModel for the calibrated value.
  sim::Cycle restart_cycles = 0;
  /// One-time region start cost (first invocation, both policies).
  sim::Cycle initial_start_cycles = 0;
};

/// Result of running a region over a workload.
struct RegionRunResult {
  sim::Cycle total_cycles = 0;
  /// Number of separate region invocations (1 for free-running).
  std::uint64_t invocations = 0;
  /// Scheduler effort (diagnostics).
  std::uint64_t total_steps = 0;
};

/// Runs `work_items` region invocations under the given policy.
///
/// `build_and_run(item)` must construct a Simulation for work item `item`
/// (one option for kRestartPerOption; the whole batch for kFreeRunning) and
/// return its end cycle. The runner adds the policy's start/stop overheads.
///
/// For kFreeRunning, `work_items` must be 1.
class RegionRunner {
 public:
  RegionRunner(ExecutionPolicy policy, RegionOverheads overheads);

  RegionRunResult run(std::uint64_t work_items,
                      const std::function<sim::Cycle(std::uint64_t)>&
                          build_and_run) const;

  ExecutionPolicy policy() const { return policy_; }
  const RegionOverheads& overheads() const { return overheads_; }

 private:
  ExecutionPolicy policy_;
  RegionOverheads overheads_;
};

}  // namespace cdsflow::hls
