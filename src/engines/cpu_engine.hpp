/// \file cpu_engine.hpp
/// The paper's CPU comparator: "a bespoke version of the engine in C++ with
/// OpenMP for multi-threading" on a 24-core Xeon Platinum 8260M.
///
/// This engine *really executes*: it prices with native code and reports
/// measured wall-clock time. Two kernels are available:
///
///   * scalar (default) -- the paper's naive comparator: per-option schedule
///     allocation avoided via a reused buffer, but per-point O(knots) curve
///     scans and exps exactly as the reference model performs them;
///   * batch (config.batch_kernel) -- the batched SoA fast path
///     (cds::BatchPricer): schedule dedup + precomputed curve grids, the
///     host-side counterpart of the paper's dataflow restructuring. Spreads
///     are identical to the scalar kernel (well under 1e-9 relative; see
///     batch_pricer.hpp), so "cpu-batch" runs merge bit-identically in the
///     sharded runtime;
///   * vector (config.vector_kernel) -- the batch kernel with its
///     tabulation and combine passes running on the SIMD vector kernels at
///     the host's best level (cds/vector_kernel.hpp; AVX-512 8 lanes, AVX2
///     4 lanes, scalar fallback). The CPU analogue of the paper's Fig. 3
///     lane replication (hls/replicate.hpp); precision contract in
///     cds::VectorKernelContract and docs/VECTOR_LANES.md.
///
/// Either kernel can additionally run in *risk mode* (config.risk_mode,
/// registry names "cpu-risk" / "cpu-batch-risk"): the run then carries
/// per-option CS01/IR01/Rec01/JTD (and optionally a bucketed CS01 ladder)
/// next to the spreads -- the scalar kernel by per-option bumped repricing,
/// the batch kernel by bumping each unique schedule grid once
/// (BatchPricer::price_with_sensitivities).
///
/// Threading uses OpenMP when the toolchain provides it (as in the paper)
/// and falls back to std::thread otherwise; both paths drive the same
/// contiguous-chunk helper so they cannot drift. There are no dependencies
/// between options, so the parallel schedule is a simple partition -- the
/// paper observes the scalar workload scales poorly anyway (~9x on 24
/// cores), being memory-bound on the curve scans.

#pragma once

#include <memory>

#include "cds/batch_pricer.hpp"
#include "cds/curve.hpp"
#include "cds/pricer.hpp"
#include "engines/engine.hpp"

namespace cdsflow::engine {

struct CpuEngineConfig {
  /// Worker threads; 0 selects std::thread::hardware_concurrency().
  unsigned threads = 1;
  /// Price with the batched SoA fast-path kernel instead of the scalar
  /// reference math. The scalar path survives (flag off) as the paper's
  /// naive comparator and for parity checks.
  bool batch_kernel = false;
  /// Run the batch kernel's tabulation/combine passes on the SIMD vector
  /// kernels at simd::active_level() (registry name "cpu-vec[...]"; implies
  /// batch semantics, batch_kernel need not also be set). On a host without
  /// SIMD support -- or under CDSFLOW_SIMD=scalar / -DCDSFLOW_DISABLE_SIMD
  /// -- this degrades to exactly the batch kernel, bit for bit.
  bool vector_kernel = false;
  /// Registry name "cpu-sweep[...]": the scenario-sweep family
  /// (cds::SweepPricer / runtime::SweepRuntime). For a plain price() call a
  /// sweep engine is the vector kernel, bit for bit -- one scenario on the
  /// base curves IS the batch tabulation -- so the flag only changes the
  /// name and lets the registry/planner construct, round-trip and probe
  /// sweep candidates through the standard CPU grammar.
  bool sweep_kernel = false;
  /// Compute per-option sensitivities (CS01/IR01/Rec01/JTD, plus the CS01
  /// ladder when ladder_edges is set) instead of spreads alone. With the
  /// scalar kernel this loops compute_sensitivities/cs01_ladder per option
  /// (the naive post-pricing workflow); with the batch kernel it runs
  /// BatchPricer::price_with_sensitivities over the precomputed grids.
  /// run.results still carries (id, spread), so risk runs merge through the
  /// sharded runtime unchanged.
  bool risk_mode = false;
  /// Central-difference bump for risk mode (compute_sensitivities default).
  double risk_bump = 1e-4;
  /// CS01 ladder bucket edges for risk mode; empty disables the ladder.
  std::vector<double> ladder_edges = {};
};

class CpuEngine final : public Engine {
 public:
  CpuEngine(cds::TermStructure interest, cds::TermStructure hazard,
            CpuEngineConfig config = {});

  std::string name() const override;
  std::string description() const override;

  PricingRun price(const std::vector<cds::CdsOption>& options) override;

  unsigned threads() const { return threads_; }
  bool batch_kernel() const { return batch_; }
  bool vector_kernel() const { return vector_; }
  bool sweep_kernel() const { return sweep_; }
  /// The SIMD tier the vector kernel actually runs at (kScalar unless
  /// vector_kernel(); post hardware/CDSFLOW_SIMD clamp).
  cds::simd::Level kernel_level() const { return kernel_level_; }
  bool risk_mode() const { return risk_; }

  /// True when built with OpenMP (the paper's configuration).
  static bool uses_openmp();

 private:
  /// Reusable per-chunk scratch: the batch (risk) workspace or the scalar
  /// schedule buffer, whichever kernel/mode is active.
  struct Scratch {
    cds::BatchPricer::Workspace batch;
    cds::BatchPricer::RiskWorkspace risk;
    std::vector<cds::TimePoint> schedule;
  };

  /// Prices options[begin, end) into run.results[begin, end) (and, in risk
  /// mode, run.sensitivities / run.cs01_ladder) with the configured kernel.
  /// The single shared loop body behind the serial, OpenMP and std::thread
  /// paths.
  void price_chunk(const std::vector<cds::CdsOption>& options,
                   std::size_t begin, std::size_t end, PricingRun& run,
                   Scratch& scratch) const;

  cds::ReferencePricer pricer_;
  /// Present only when the batch kernel is selected.
  std::unique_ptr<cds::BatchPricer> batch_pricer_;
  /// One scratch per concurrent chunk, kept warm across price() calls (an
  /// engine object is never priced on concurrently; replicas are separate
  /// objects).
  std::vector<Scratch> scratch_;
  cds::BatchRiskConfig risk_config_;
  unsigned threads_;
  bool batch_ = false;
  bool vector_ = false;
  bool sweep_ = false;
  bool risk_ = false;
  cds::simd::Level kernel_level_ = cds::simd::Level::kScalar;
};

}  // namespace cdsflow::engine
