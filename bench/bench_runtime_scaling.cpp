/// \file bench_runtime_scaling.cpp
/// Host-side scaling: throughput of the sharded portfolio runtime vs worker
/// count, reported as JSON.
///
/// Mirrors the paper's Table II ablation (N concurrent engines on one card)
/// at the host layer: the same book is priced with 1, 2, 4, ... worker
/// lanes and the modelled makespan of the deterministic shard schedule
/// gives the paper-style throughput figure. Wall-clock throughput is
/// reported alongside (it only scales when the host has the cores). The
/// bench also cross-checks that every multi-worker run merges to results
/// bit-identical to the single-engine baseline.
///
/// Usage: bench_runtime_scaling [n_options] [engine] [max_workers] [out.json]
///   defaults: 16384 vectorised 8 BENCH_runtime_scaling.json

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "engines/registry.hpp"
#include "report/table.hpp"
#include "runtime/portfolio_runtime.hpp"
#include "runtime/shard.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16384;
  const std::string engine_name = argc > 2 ? argv[2] : "vectorised";
  const unsigned max_workers =
      argc > 3 ? static_cast<unsigned>(std::strtoul(argv[3], nullptr, 10)) : 8;
  const std::string out_path =
      argc > 4 ? argv[4] : "BENCH_runtime_scaling.json";

  const auto scenario = workload::paper_scenario(n_options, /*seed=*/7);
  std::cout << "== Runtime scaling: " << engine_name << " lanes over "
            << n_options << " options ==\n\n";

  // Single-engine baseline for the bit-identity cross-check.
  auto baseline_engine =
      engine::make_engine(engine_name, scenario.interest, scenario.hazard);
  const auto baseline = baseline_engine->price(scenario.options);

  report::Table table("Throughput vs worker lanes (" + engine_name + ")");
  table.set_columns({"Workers", "Shards", "Modelled opts/s", "Scaling",
                     "Wall opts/s", "Identical"});

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"runtime_scaling\",\n"
       << "  \"engine\": \"" << engine_name << "\",\n"
       << "  \"n_options\": " << n_options << ",\n"
       << "  \"baseline_options_per_second\": "
       << baseline.options_per_second << ",\n"
       << "  \"points\": [";

  double base_ops = 0.0;
  bool first = true;
  bool all_identical = true;
  for (unsigned workers = 1; workers <= max_workers; workers *= 2) {
    runtime::RuntimeConfig cfg;
    cfg.engine = engine_name;
    cfg.workers = workers;
    cfg.shard_size = runtime::auto_shard_size(n_options, max_workers);
    runtime::PortfolioRuntime rt(scenario.interest, scenario.hazard, cfg);
    const auto run = rt.price(scenario.options);

    bool identical = run.run.results.size() == baseline.results.size();
    for (std::size_t i = 0; identical && i < baseline.results.size(); ++i) {
      identical = run.run.results[i].id == baseline.results[i].id &&
                  run.run.results[i].spread_bps ==
                      baseline.results[i].spread_bps;
    }
    all_identical = all_identical && identical;

    if (workers == 1) base_ops = run.run.options_per_second;
    const double scaling = run.run.options_per_second / base_ops;
    table.add_row({std::to_string(workers),
                   std::to_string(run.shards.size()),
                   with_thousands(run.run.options_per_second, 0),
                   fixed(scaling, 2) + "x",
                   with_thousands(run.wall_options_per_second, 0),
                   identical ? "yes" : "NO"});

    json << (first ? "" : ",") << "\n    {\"workers\": " << workers
         << ", \"shards\": " << run.shards.size()
         << ", \"shard_size\": " << run.shard_size
         << ", \"modelled_options_per_second\": "
         << run.run.options_per_second
         << ", \"wall_options_per_second\": " << run.wall_options_per_second
         << ", \"scaling_vs_1_worker\": " << scaling
         << ", \"bit_identical_to_baseline\": "
         << (identical ? "true" : "false") << "}";
    first = false;
  }
  json << "\n  ],\n"
       << "  \"all_bit_identical\": " << (all_identical ? "true" : "false")
       << "\n}\n";

  std::cout << table.render_text() << '\n';
  std::ofstream out(out_path);
  out << json.str();
  std::cout << "JSON written to " << out_path << '\n';
  return all_identical ? 0 : 1;
}
