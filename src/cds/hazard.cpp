#include "cds/hazard.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace cdsflow::cds {

double hazard_element_contribution(const TermStructure& hazard, std::size_t j,
                                   double t) {
  CDSFLOW_ASSERT(j < hazard.size(), "hazard element index out of range");
  const double seg_begin = j == 0 ? 0.0 : hazard.time(j - 1);
  const double lo = std::min(seg_begin, t);
  const double hi = std::min(hazard.time(j), t);
  return hazard.value(j) * std::max(0.0, hi - lo);
}

namespace {

/// Extrapolation beyond the final knot at the last rate.
double tail_contribution(const TermStructure& hazard, double t) {
  const double last = hazard.max_time();
  if (t <= last) return 0.0;
  return hazard.values().back() * (t - last);
}

}  // namespace

double integrated_hazard(const TermStructure& hazard, double t) {
  CDSFLOW_EXPECT(t >= 0.0, "integrated hazard requires t >= 0");
  // The HLS kernel's fixed-bound scan: every element contributes (possibly
  // zero); the accumulation is the carried dependency the paper analyses.
  double acc = 0.0;
  for (std::size_t j = 0; j < hazard.size(); ++j) {
    acc += hazard_element_contribution(hazard, j, t);
  }
  return acc + tail_contribution(hazard, t);
}

double integrated_hazard_listing1(const TermStructure& hazard, double t,
                                  unsigned lanes) {
  CDSFLOW_EXPECT(t >= 0.0, "integrated hazard requires t >= 0");
  CDSFLOW_EXPECT(lanes >= 1, "listing-1 integration requires >= 1 lane");
  std::vector<double> partial(lanes, 0.0);
  for (std::size_t j = 0; j < hazard.size(); ++j) {
    partial[j % lanes] += hazard_element_contribution(hazard, j, t);
  }
  double acc = 0.0;
  for (unsigned j = 0; j < lanes; ++j) acc += partial[j];
  return acc + tail_contribution(hazard, t);
}

double survival_probability(const TermStructure& hazard, double t) {
  return std::exp(-integrated_hazard(hazard, t));
}

HazardPrefix make_hazard_prefix(const TermStructure& hazard) {
  hazard.validate();
  HazardPrefix prefix;
  fill_hazard_prefix(hazard.times(), hazard.values(), prefix);
  return prefix;
}

void fill_hazard_prefix(std::span<const double> times,
                        std::span<const double> rates, HazardPrefix& prefix) {
  CDSFLOW_ASSERT(times.size() == rates.size(),
                 "hazard prefix needs times.size() == rates.size()");
  prefix.times.assign(times.begin(), times.end());
  prefix.rates.assign(rates.begin(), rates.end());
  prefix.lambda.clear();
  prefix.lambda.reserve(prefix.times.size());
  // Accumulate full-segment contributions in exactly the in-order scan's
  // association order, so every lambda[j] is the bit pattern the scan
  // produces for t == tau_j.
  double acc = 0.0;
  double prev = 0.0;
  for (std::size_t j = 0; j < prefix.times.size(); ++j) {
    acc += prefix.rates[j] * (prefix.times[j] - prev);
    prefix.lambda.push_back(acc);
    prev = prefix.times[j];
  }
}

double integrated_hazard_prefix(const HazardPrefix& prefix, double t) {
  CDSFLOW_EXPECT(t >= 0.0, "integrated hazard requires t >= 0");
  CDSFLOW_ASSERT(!prefix.times.empty(), "empty hazard prefix");
  // First knot with tau_j >= t: t lies in segment j (tau_{j-1}, tau_j].
  const std::size_t j = static_cast<std::size_t>(
      std::lower_bound(prefix.times.begin(), prefix.times.end(), t) -
      prefix.times.begin());
  if (j == prefix.times.size()) {
    // Beyond the last knot: full prefix + last-rate extrapolation, the same
    // two-term sum integrated_hazard's tail handling produces.
    return prefix.lambda.back() +
           prefix.rates.back() * (t - prefix.times.back());
  }
  const double seg_begin = j == 0 ? 0.0 : prefix.times[j - 1];
  const double base = j == 0 ? 0.0 : prefix.lambda[j - 1];
  return base + prefix.rates[j] * (t - seg_begin);
}

double survival_probability_prefix(const HazardPrefix& prefix, double t) {
  return std::exp(-integrated_hazard_prefix(prefix, t));
}

double default_probability(const TermStructure& hazard, double t) {
  return 1.0 - survival_probability(hazard, t);
}

double accumulate_naive(std::span<const double> xs) {
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc;
}

}  // namespace cdsflow::cds
