/// \file test_cds_precision.cpp
/// Unit tests for the reduced-precision study (paper Sec. V future work):
/// fp32/mixed pricing accuracy against the fp64 golden model, and the
/// projected fp32 hardware model.

#include <gtest/gtest.h>

#include "cds/legs.hpp"
#include "cds/precision.hpp"
#include "common/error.hpp"
#include "fpga/reduced_precision.hpp"
#include "workload/options.hpp"
#include "workload/scenario.hpp"

namespace cdsflow {
namespace {

using cds::Precision;

struct PrecisionFixture : ::testing::Test {
  workload::Scenario scenario = workload::paper_scenario(48, 77);
};

TEST_F(PrecisionFixture, DoubleModeIsExactlyTheGoldenModel) {
  for (const auto& option : scenario.options) {
    const double golden =
        cds::price_breakdown(scenario.interest, scenario.hazard, option)
            .spread_bps;
    const double via = cds::spread_bps_with_precision(
        scenario.interest, scenario.hazard, option, Precision::kDouble);
    EXPECT_DOUBLE_EQ(via, golden);
  }
}

TEST_F(PrecisionFixture, SingleModeWithinFractionOfABp) {
  const auto report = cds::evaluate_precision(
      scenario.interest, scenario.hazard, scenario.options,
      Precision::kSingle);
  EXPECT_GT(report.max_abs_error_bps, 0.0);  // it *is* an approximation
  EXPECT_LT(report.max_abs_error_bps, 0.5);  // but a tight one
  EXPECT_LT(report.max_rel_error, 2e-3);
}

TEST_F(PrecisionFixture, MixedModeNoWorseThanSingleOnAverage) {
  const auto single = cds::evaluate_precision(
      scenario.interest, scenario.hazard, scenario.options,
      Precision::kSingle);
  const auto mixed = cds::evaluate_precision(
      scenario.interest, scenario.hazard, scenario.options,
      Precision::kMixed);
  EXPECT_LE(mixed.mean_abs_error_bps, single.mean_abs_error_bps * 1.5);
}

TEST_F(PrecisionFixture, ErrorsAreSystematicallySmallAcrossBook) {
  const auto report = cds::evaluate_precision(
      scenario.interest, scenario.hazard, scenario.options,
      Precision::kSingle);
  EXPECT_LT(report.mean_abs_error_bps, report.max_abs_error_bps + 1e-12);
  EXPECT_GT(report.mean_abs_error_bps, 0.0);
}

TEST(Precision, Names) {
  EXPECT_STREQ(cds::to_string(Precision::kDouble), "fp64");
  EXPECT_STREQ(cds::to_string(Precision::kSingle), "fp32");
  EXPECT_STREQ(cds::to_string(Precision::kMixed), "fp32/fp64-acc");
}

TEST(Precision, EvaluateRequiresOptions) {
  const auto s = workload::smoke_scenario(1);
  EXPECT_THROW(
      cds::evaluate_precision(s.interest, s.hazard, {}, Precision::kSingle),
      Error);
}

// --- hardware projection ------------------------------------------------------

TEST(ReducedPrecisionModel, ShortensLatenciesAndWidensFeed) {
  const fpga::ReducedPrecisionModel model;
  const auto fp32 = model.apply(fpga::default_cost_model());
  const auto& fp64 = fpga::default_cost_model();
  EXPECT_LT(fp32.dadd_latency, fp64.dadd_latency);
  EXPECT_LT(fp32.dexp_latency, fp64.dexp_latency);
  EXPECT_EQ(fp32.baseline_accumulation_ii, fp32.dadd_latency);
  EXPECT_EQ(fp32.listing1_lanes, fp32.dadd_latency);
  EXPECT_DOUBLE_EQ(fp32.uram_feed_elements_per_cycle,
                   2.0 * fp64.uram_feed_elements_per_cycle);
}

TEST(ReducedPrecisionModel, ShrinksOperatorResources) {
  const fpga::ReducedPrecisionModel model;
  const fpga::OperatorCosts fp64;
  const auto fp32 = model.apply(fp64);
  EXPECT_LT(fp32.dmul.dsp_slices, fp64.dmul.dsp_slices);
  EXPECT_LT(fp32.dadd.luts, fp64.dadd.luts);
  EXPECT_LT(fp32.dexp.dsp_slices, fp64.dexp.dsp_slices);
}

TEST(ReducedPrecisionModel, MoreEnginesFitInSingle) {
  const auto device = fpga::alveo_u280();
  const fpga::ReducedPrecisionModel model;
  const fpga::ResourceEstimator fp64(device);
  const fpga::ResourceEstimator fp32(device,
                                     model.apply(fpga::OperatorCosts{}));
  fpga::EngineShape shape;
  shape.hazard_lanes = 6;
  shape.interpolation_lanes = 6;
  EXPECT_GT(fp32.max_engines(shape), fp64.max_engines(shape));
}

}  // namespace
}  // namespace cdsflow
