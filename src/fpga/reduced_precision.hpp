/// \file reduced_precision.hpp
/// Hardware side of the reduced-precision study (paper Sec. V future work):
/// what single precision would buy the CDS engine on the FPGA.
///
/// Single-precision floating point on UltraScale+ is dramatically cheaper
/// than double: an fadd core has ~3-cycle latency (vs 7 for dadd -- so the
/// Listing-1 partial-sum count drops), an fmul needs 3 DSPs (vs 11), and
/// the datapath halves, doubling the effective URAM feed width. This model
/// rescales the calibrated fp64 cost model and resource shapes so the
/// design-space example and the precision bench can report projected
/// throughput, engines-per-card and efficiency for an fp32 build --
/// *projections* clearly labelled as such, pending a Versal-class port.

#pragma once

#include "fpga/hls_cost_model.hpp"
#include "fpga/resource.hpp"

namespace cdsflow::fpga {

struct ReducedPrecisionModel {
  /// fadd latency on UltraScale+ (the carried-dependency II of a naive
  /// fp32 accumulation; Listing 1 then needs only this many partial sums).
  sim::Cycle fadd_latency = 3;
  sim::Cycle fmul_latency = 4;
  sim::Cycle fdiv_latency = 14;
  sim::Cycle fexp_latency = 17;

  /// fp32 curve elements are half the width: a dual-ported URAM feed
  /// streams twice as many elements per cycle.
  double feed_scale = 2.0;

  /// Resource scale factors fp32 vs fp64 operator cores (LUT, DSP).
  double lut_scale = 0.45;
  double dsp_scale = 0.35;

  /// Derives an fp32-flavoured cost model from the calibrated fp64 one.
  HlsCostModel apply(const HlsCostModel& base) const;

  /// Derives fp32 operator resource costs from the fp64 table.
  OperatorCosts apply(const OperatorCosts& base) const;
};

/// Summary of the projected fp32 engine vs the measured fp64 engine.
struct PrecisionProjection {
  double fp64_options_per_second = 0.0;
  double fp32_options_per_second = 0.0;
  unsigned fp64_max_engines = 0;
  unsigned fp32_max_engines = 0;

  double speedup() const {
    return fp64_options_per_second == 0.0
               ? 0.0
               : fp32_options_per_second / fp64_options_per_second;
  }
};

}  // namespace cdsflow::fpga
