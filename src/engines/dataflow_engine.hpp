/// \file dataflow_engine.hpp
/// The "Optimised Dataflow CDS engine" (paper Table I, row 3).
///
/// First rewrite: the components become concurrently running dataflow
/// functions connected by streams (HLS DATAFLOW) and the hazard accumulation
/// uses the Listing 1 partial sums (II=1). The engine still processes one
/// option per kernel invocation, so between options the region drains, shuts
/// down, and pays the host restart -- the overhead the next engine removes.

#pragma once

#include "cds/curve.hpp"
#include "engines/engine.hpp"

namespace cdsflow::engine {

class DataflowEngine final : public Engine {
 public:
  DataflowEngine(cds::TermStructure interest, cds::TermStructure hazard,
                 FpgaEngineConfig config = {});

  std::string name() const override { return "dataflow"; }
  std::string description() const override {
    return "Optimised dataflow engine (streams + Listing 1, restart per "
           "option)";
  }

  PricingRun price(const std::vector<cds::CdsOption>& options) override;

 private:
  cds::TermStructure interest_;
  cds::TermStructure hazard_;
  FpgaEngineConfig config_;
};

}  // namespace cdsflow::engine
