#include "fpga/interconnect.hpp"

#include "common/error.hpp"

namespace cdsflow::fpga {

Interconnect::Interconnect(InterconnectConfig config) : config_(config) {
  CDSFLOW_EXPECT(config_.pcie_bandwidth_bytes_per_s > 0.0,
                 "PCIe bandwidth must be positive");
}

double Interconnect::transfer_seconds(std::uint64_t bytes) const {
  if (bytes == 0) return 0.0;
  return config_.transfer_latency_s +
         static_cast<double>(bytes) / config_.pcie_bandwidth_bytes_per_s;
}

double Interconnect::dispatch_seconds(std::uint64_t invocations) const {
  return config_.kernel_dispatch_s * static_cast<double>(invocations);
}

double Interconnect::arbitration_seconds(std::uint64_t n_options,
                                         unsigned n_engines) const {
  if (n_engines <= 1) return 0.0;
  return config_.dma_arbitration_s_per_option_per_extra_engine *
         static_cast<double>(n_options) *
         static_cast<double>(n_engines - 1);
}

}  // namespace cdsflow::fpga
