#include "sim/vcd.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <vector>

#include "common/error.hpp"

namespace cdsflow::sim {

namespace {

/// VCD identifier for track `i`: short strings over the printable range
/// '!'..'~' (94 characters), little-endian digits.
std::string vcd_identifier(std::size_t i) {
  std::string id;
  do {
    id += static_cast<char>('!' + i % 94);
    i /= 94;
  } while (i != 0);
  return id;
}

/// Sanitises a track name into a VCD signal name (no whitespace).
std::string vcd_signal_name(std::string name) {
  for (char& c : name) {
    if (c == ' ' || c == '\t') c = '_';
  }
  return name;
}

}  // namespace

void write_vcd(std::ostream& os, const Trace& trace, VcdOptions options) {
  CDSFLOW_EXPECT(trace.track_count() > 0, "VCD export needs >= 1 track");

  os << "$date cdsflow simulation $end\n";
  os << "$version cdsflow dataflow simulator $end\n";
  if (!options.comment.empty()) {
    os << "$comment " << options.comment << " $end\n";
  }
  os << "$comment one VCD tick == one kernel clock cycle $end\n";
  os << "$timescale " << options.timescale << " $end\n";
  os << "$scope module " << options.module_name << " $end\n";
  for (std::size_t t = 0; t < trace.track_count(); ++t) {
    os << "$var wire 1 " << vcd_identifier(t) << ' '
       << vcd_signal_name(trace.track_name(t)) << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  // Edge list: (cycle, track, value). Intervals are half-open [begin, end).
  struct Edge {
    Cycle at;
    std::size_t track;
    bool value;
  };
  std::vector<Edge> edges;
  edges.reserve(trace.intervals().size() * 2);
  for (const auto& iv : trace.intervals()) {
    edges.push_back({iv.begin, iv.track, true});
    edges.push_back({iv.end, iv.track, false});
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& a, const Edge& b) { return a.at < b.at; });

  // Initial values: everything low.
  os << "$dumpvars\n";
  for (std::size_t t = 0; t < trace.track_count(); ++t) {
    os << '0' << vcd_identifier(t) << '\n';
  }
  os << "$end\n";

  // Emit changes; merge adjacent intervals (a falling edge followed by a
  // rising edge of the same signal at the same cycle cancels out).
  std::size_t i = 0;
  std::vector<bool> state(trace.track_count(), false);
  while (i < edges.size()) {
    const Cycle at = edges[i].at;
    std::map<std::size_t, int> pending;  // track -> net level change
    while (i < edges.size() && edges[i].at == at) {
      pending[edges[i].track] += edges[i].value ? 1 : -1;
      ++i;
    }
    bool header_written = false;
    for (const auto& [track, delta] : pending) {
      const bool new_value = delta > 0 ? true
                             : delta < 0 ? false
                                         : state[track];
      if (new_value == state[track]) continue;
      if (!header_written) {
        os << '#' << at << '\n';
        header_written = true;
      }
      os << (new_value ? '1' : '0') << vcd_identifier(track) << '\n';
      state[track] = new_value;
    }
  }
  // Close the dump at the final span so viewers show the full window.
  os << '#' << trace.span() << '\n';
}

void write_vcd_file(const std::string& path, const Trace& trace,
                    VcdOptions options) {
  std::ofstream out(path);
  CDSFLOW_EXPECT(out.good(), "cannot open '" + path + "' for writing");
  write_vcd(out, trace, std::move(options));
  CDSFLOW_EXPECT(out.good(), "I/O failure while writing '" + path + "'");
}

}  // namespace cdsflow::sim
