/// \file bench_table2.cpp
/// Reproduces paper Table II: "Performance and power when scaling the FPGA
/// CDS engines on an Alveo U280, against 24-core Xeon CPU."
///
/// Rows: the CPU on all hardware threads (the paper's machine had 24 cores;
/// this host's count is printed), then 1, 2 and 5 vectorised FPGA engines.
/// The resource estimator first verifies that 5 engines fit on the U280 and
/// 6 do not, reproducing the paper's packing limit. Power is modelled (no
/// board/RAPL here -- see DESIGN.md substitutions) with the calibrated
/// affine models.
///
/// Usage: bench_table2 [n_options] [runs]

#include <cstdlib>
#include <iostream>
#include <thread>

#include "common/format.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/multi_engine.hpp"
#include "fpga/power.hpp"
#include "fpga/resource.hpp"
#include "report/experiment.hpp"
#include "report/paper.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
  const int runs = argc > 2 ? std::atoi(argv[2])
                            : report::paper::kRunsPerMeasurement;

  const auto scenario = workload::paper_scenario(n_options);
  const auto device = fpga::alveo_u280();
  const fpga::FpgaPowerModel fpga_power;
  const fpga::CpuPowerModel cpu_power;

  std::cout << "== Table II reproduction ==\n"
            << "scenario: " << scenario.description << '\n'
            << "options: " << n_options << ", runs averaged: " << runs
            << "\n\n";

  // --- packing limit ("being able to fit five onto the Alveo U280") --------
  engine::MultiEngineConfig probe;
  probe.n_engines = 1;
  engine::MultiEngine probe_engine(scenario.interest, scenario.hazard, probe);
  const fpga::ResourceEstimator estimator(device);
  const unsigned max_engines = estimator.max_engines(probe_engine.shape());
  std::cout << "resource fit: max vectorised engines on " << device.name
            << " = " << max_engines << " (paper: 5)\n"
            << estimator.utilisation_report(probe_engine.shape(), max_engines)
            << '\n';

  report::Table table("Table II -- Performance and power when scaling");
  table.set_columns({"Description", "Options/s", "Options/s (paper)",
                     "Watts", "Watts (paper)", "Opts/Watt",
                     "Opts/Watt (paper)"});

  auto add_row = [&table](const std::string& desc, double ops, double watts,
                          double paper_ops, double paper_watts,
                          double paper_eff) {
    table.add_row({desc, with_thousands(ops, 2),
                   paper_ops == 0 ? "-" : with_thousands(paper_ops, 2),
                   fixed(watts, 2),
                   paper_watts == 0 ? "-" : fixed(paper_watts, 2),
                   fixed(fpga::power_efficiency(ops, watts), 2),
                   paper_eff == 0 ? "-" : fixed(paper_eff, 2)});
  };

  // --- CPU on all hardware threads ------------------------------------------
  const unsigned hw_threads =
      std::max(1u, std::thread::hardware_concurrency());
  {
    engine::CpuEngine cpu(scenario.interest, scenario.hazard,
                          {.threads = hw_threads});
    const auto m = report::measure(cpu, scenario.options, runs);
    add_row(std::to_string(hw_threads) + "-thread CPU (this host; paper: " +
                std::to_string(report::paper::kCpuCores) + "-core Xeon)",
            m.mean_ops(), cpu_power.watts(hw_threads),
            report::paper::kCpu24CoreOptsPerSec,
            report::paper::kCpu24CoreWatts,
            report::paper::kCpu24CoreOptsPerWatt);
    std::cerr << "  measured cpu-mt" << hw_threads << ": " << m.mean_ops()
              << " options/s\n";
  }

  // --- 1 / 2 / 5 FPGA engines -------------------------------------------------
  struct FpgaRow {
    unsigned engines;
    double paper_ops, paper_watts, paper_eff;
  };
  const FpgaRow fpga_rows[] = {
      {1, report::paper::kFpga1EngineOptsPerSec,
       report::paper::kFpga1EngineWatts, report::paper::kFpga1EngineOptsPerWatt},
      {2, report::paper::kFpga2EngineOptsPerSec,
       report::paper::kFpga2EngineWatts, report::paper::kFpga2EngineOptsPerWatt},
      {5, report::paper::kFpga5EngineOptsPerSec,
       report::paper::kFpga5EngineWatts, report::paper::kFpga5EngineOptsPerWatt},
  };
  double fpga5_ops = 0.0;
  for (const auto& row : fpga_rows) {
    engine::MultiEngineConfig cfg;
    cfg.n_engines = row.engines;
    cfg.device = device;  // enforce the fit check
    engine::MultiEngine fpga_engine(scenario.interest, scenario.hazard, cfg);
    const auto m = report::measure(fpga_engine, scenario.options, runs);
    if (row.engines == 5) fpga5_ops = m.mean_ops();
    add_row(std::to_string(row.engines) + " FPGA engine(s)", m.mean_ops(),
            fpga_power.watts(row.engines), row.paper_ops, row.paper_watts,
            row.paper_eff);
    std::cerr << "  measured multi-" << row.engines << ": " << m.mean_ops()
              << " options/s\n";
  }

  std::cout << table.render_text() << '\n';

  std::cout << "headline ratios (paper Sec. IV / V):\n"
            << "  5-engine FPGA vs paper 24-core CPU: "
            << fixed(fpga5_ops / report::paper::kCpu24CoreOptsPerSec, 2)
            << "x (paper: " << fixed(report::paper::kFpgaVsCpu, 2) << "x)\n"
            << "  power ratio CPU/FPGA (models): "
            << fixed(cpu_power.watts(report::paper::kCpuCores) /
                         fpga_power.watts(5),
                     2)
            << "x (paper: " << fixed(report::paper::kPowerRatio, 2) << "x)\n";
  return 0;
}
