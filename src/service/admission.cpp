#include "service/admission.hpp"

#include "common/error.hpp"

namespace cdsflow::service {

const std::vector<DeadlineClass>& standard_deadline_classes() {
  static const std::vector<DeadlineClass> kClasses = {
      {"interactive", 0.005, 0.020},
      {"standard", 0.050, 0.200},
      {"batch", 2.0, 8.0},
  };
  return kClasses;
}

std::optional<DeadlineClass> find_deadline_class(const std::string& name) {
  for (const auto& klass : standard_deadline_classes()) {
    if (klass.name == name) return klass;
  }
  return std::nullopt;
}

const char* to_string(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      return "admit";
    case AdmissionDecision::kDefer:
      return "defer";
    case AdmissionDecision::kShed:
      return "shed";
  }
  return "unknown";
}

AdmissionController::AdmissionController(engine::BackendCandidate fit,
                                         unsigned lanes)
    : fit_(std::move(fit)), projector_(lanes) {
  CDSFLOW_EXPECT(fit_.options_per_second > 0.0,
                 "admission fit needs a positive throughput");
  CDSFLOW_EXPECT(fit_.setup_seconds >= 0.0,
                 "admission fit needs a non-negative setup");
}

AdmissionDecision AdmissionController::decide(std::uint32_t tenant,
                                              std::uint32_t request,
                                              std::size_t n_options,
                                              double arrival_seconds,
                                              const DeadlineClass& klass) {
  CDSFLOW_EXPECT(n_options > 0, "admission decision needs a non-empty request");
  CDSFLOW_EXPECT(klass.deadline_seconds > 0.0 &&
                     klass.defer_seconds >= klass.deadline_seconds,
                 "deadline class must have 0 < deadline <= defer");

  const double task = fit_.seconds_for(n_options);
  const double projected = projector_.project(arrival_seconds, task);

  AdmissionRecord record;
  record.tenant = tenant;
  record.request = request;
  record.n_options = n_options;
  record.arrival_seconds = arrival_seconds;
  record.projected_seconds = projected;
  record.deadline_seconds = arrival_seconds + klass.deadline_seconds;

  // <= on both boundaries: a projection landing exactly on the deadline is
  // a met deadline under the model (pinned by the golden tests).
  if (projected <= arrival_seconds + klass.deadline_seconds) {
    record.decision = AdmissionDecision::kAdmit;
  } else if (projected <= arrival_seconds + klass.defer_seconds) {
    record.decision = AdmissionDecision::kDefer;
  } else {
    record.decision = AdmissionDecision::kShed;
  }
  if (record.decision != AdmissionDecision::kShed) {
    projector_.book(arrival_seconds, task);  // shed work consumes no capacity
  }
  records_.push_back(record);
  return record.decision;
}

}  // namespace cdsflow::service
