#!/usr/bin/env python3
"""Warn-only bench trajectory diff for CI.

Compares the BENCH_*.json files of the current run against the previous
run's `bench-trajectory` artifact and prints a delta table. Never fails the
build: perf on shared CI runners is noisy, so this surfaces regressions in
the log for a human to judge.

Usage: bench_diff.py <previous-dir> <current-dir>
"""

import json
import math
import sys
from pathlib import Path

# Headline metric per bench JSON: (json key path, higher-is-better). A path
# segment "array[*]" maps over a list and the max of the leaf values is
# compared (used for the scaling curve's best point).
METRICS = {
    "BENCH_runtime_scaling.json": [
        ("baseline_options_per_second", True),
        ("points[*].modelled_options_per_second", True),
    ],
    "BENCH_cpu_fastpath.json": [
        ("single_thread_speedup", True),
    ],
    "BENCH_cpu_risk.json": [
        ("single_thread_speedup", True),
        ("max_rel_error", False),
    ],
    "BENCH_stream_ingest.json": [
        ("batches_per_second", True),
        ("steady_state_ratio", True),
        ("p50_ingest_to_result_us", False),
        ("p99_ingest_to_result_us", False),
    ],
    # SIMD vector kernel vs the scalar batch kernel, single thread; the
    # risk pass reuses the tabulated columns so it tracks separately.
    "BENCH_cpu_vector.json": [
        ("single_thread_speedup", True),
        ("risk_speedup", True),
    ],
    # worst_accuracy_distance is max(ratio, 1/ratio) over the measured CPU
    # plans -- the lower-is-better distance of plan projections from 1.0x.
    "BENCH_planner.json": [
        ("worst_accuracy_distance", False),
        ("chosen_plan_wall_options_per_second", True),
    ],
    # Scenario-sweep engine (one book x N scenarios on shared grids) vs the
    # naive per-scenario BatchPricer loop, single thread at the active level.
    "BENCH_scenario_sweep.json": [
        ("single_thread_speedup", True),
        ("sweep_scenarios_per_second", True),
    ],
    # Multi-tenant pricing service over a loopback socket: end-to-end
    # request throughput and the service-clock latency percentiles.
    "BENCH_service.json": [
        ("requests_per_second", True),
        ("p50_request_us", False),
        ("p99_request_us", False),
    ],
    # Multi-process socket cluster (src/cluster): per-point modelled
    # throughput plus the 2-node-vs-1-node modelled scaling ratio.
    "BENCH_cluster_scaling.json": [
        ("points[*].modelled_options_per_second", True),
        ("modelled_scaling_2v1", True),
    ],
}

WARN_THRESHOLD = 0.10  # flag drops beyond 10%


def lookup(obj, dotted):
    parts = dotted.split(".")
    for i, part in enumerate(parts):
        if part.endswith("[*]"):
            items = obj.get(part[:-3]) if isinstance(obj, dict) else None
            rest = ".".join(parts[i + 1:])
            if not isinstance(items, list) or not items or not rest:
                return None
            values = [lookup(item, rest) for item in items]
            return None if any(v is None for v in values) else max(values)
        if not isinstance(obj, dict) or part not in obj:
            return None
        obj = obj[part]
    return obj if isinstance(obj, (int, float)) else None


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 0
    prev_dir, cur_dir = Path(sys.argv[1]), Path(sys.argv[2])
    if not prev_dir.is_dir():
        print(f"no previous artifact at {prev_dir}; skipping bench diff")
        return 0
    if not any(prev_dir.glob("BENCH_*.json")):
        # The artifact download can succeed yet deliver an empty directory
        # (first run on a branch, expired artifact): not an error.
        print(f"no prior trajectory in {prev_dir}; "
              "current run seeds the baseline")
        return 0

    rows = []
    for name, metrics in METRICS.items():
        prev_path, cur_path = prev_dir / name, cur_dir / name
        if not cur_path.is_file():
            rows.append((name, "-", "-", "-", "not produced by this run"))
            continue
        if not prev_path.is_file():
            rows.append((name, "-", "-", "-", "new bench (no baseline)"))
            continue
        try:
            prev, cur = (json.loads(p.read_text())
                         for p in (prev_path, cur_path))
        except (json.JSONDecodeError, OSError) as err:
            rows.append((name, "-", "-", "-", f"unreadable JSON: {err}"))
            continue
        for key, higher_is_better in metrics:
            a, b = lookup(prev, key), lookup(cur, key)
            if a is None or b is None:
                rows.append((f"{name}:{key}", a, b, "-", "metric missing"))
                continue
            if a == 0 or not math.isfinite(a) or not math.isfinite(b):
                delta, note = "-", "baseline zero/non-finite"
            else:
                change = (b - a) / abs(a)
                delta = f"{change:+.1%}"
                regressed = change < -WARN_THRESHOLD if higher_is_better \
                    else change > WARN_THRESHOLD
                note = "WARNING: regression" if regressed else ""
            rows.append((f"{name}:{key}", f"{a:.6g}", f"{b:.6g}", delta,
                         note))

    widths = [max(len(str(r[i])) for r in rows + [("metric", "prev",
              "current", "delta", "")]) for i in range(5)]
    header = ("metric", "prev", "current", "delta", "")
    for row in [header] + rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)).rstrip())
    print("\n(warn-only: CI runner perf is noisy; deltas beyond "
          f"{WARN_THRESHOLD:.0%} are flagged, never gated)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
