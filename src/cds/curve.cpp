#include "cds/curve.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cdsflow::cds {

TermStructure::TermStructure(std::vector<double> times,
                             std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  validate();
}

void TermStructure::validate() const {
  CDSFLOW_EXPECT(!times_.empty(), "term structure needs at least one point");
  CDSFLOW_EXPECT(times_.size() == values_.size(),
                 "term structure times/values length mismatch");
  CDSFLOW_EXPECT(times_.front() >= 0.0,
                 "term structure times must be non-negative");
  for (std::size_t i = 1; i < times_.size(); ++i) {
    CDSFLOW_EXPECT(times_[i] > times_[i - 1],
                   "term structure times must be strictly increasing");
  }
}

std::size_t TermStructure::find_bracket_scan(double t) const {
  // The HLS kernel's fixed-bound loop: walk every knot, remember the last
  // one at or before t. (The FPGA cannot early-exit a pipelined loop without
  // hurting II, so the hardware always pays the full scan; the *value*
  // computed is identical to a binary search.)
  std::size_t last_le = 0;
  bool found = false;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] <= t) {
      last_le = i;
      found = true;
    }
  }
  return found ? last_le : times_.size();
}

std::size_t TermStructure::count_at_or_before(double t) const {
  return static_cast<std::size_t>(
      std::upper_bound(times_.begin(), times_.end(), t) - times_.begin());
}

double TermStructure::lerp_on_bracket(std::size_t lo, double t) const {
  const std::size_t hi = lo + 1;
  const double t0 = times_[lo];
  const double t1 = times_[hi];
  const double v0 = values_[lo];
  const double v1 = values_[hi];
  return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
}

double TermStructure::interpolate(double t) const {
  CDSFLOW_ASSERT(!times_.empty(), "interpolate on empty curve");
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  return lerp_on_bracket(find_bracket_scan(t), t);
}

double TermStructure::interpolate_fast(double t) const {
  CDSFLOW_ASSERT(!times_.empty(), "interpolate on empty curve");
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  // Last knot with time <= t: the same index find_bracket_scan returns for
  // any t strictly inside the knot range (count_at_or_before is never zero
  // here because t > times_.front()).
  return lerp_on_bracket(count_at_or_before(t) - 1, t);
}

}  // namespace cdsflow::cds
