/// \file risk.hpp
/// Finite-difference credit risk sensitivities -- the post-pricing workflow
/// the engine exists to accelerate (a desk reprices its book under bumped
/// curves after every batch).
///
/// Conventions:
///   * CS01  -- change in spread (bps) for a +1 bp parallel shift of the
///              hazard curve's rates.
///   * IR01  -- change in spread (bps) for a +1 bp parallel shift of the
///              interest-rate curve.
///   * Rec01 -- change in spread (bps) for a +1% (absolute) recovery bump.
///   * JTD   -- jump-to-default: the protection payout (1 - R) per unit
///              notional on an immediate default. The engine quotes *fair*
///              spreads (the contract carries no off-market coupon), so the
///              mark-to-market term of the usual JTD definition is zero and
///              the payout is exact, not a finite difference.
/// All bumped figures are computed by central differences on the golden
/// model; the bucketed ladder bumps one curve segment at a time.
///
/// Preconditions (validated, not assumed): the input curves must satisfy the
/// TermStructure invariants -- at least one knot, strictly increasing
/// non-negative times -- and every bump/edge must be finite. A curve bumped
/// by NaN/inf would silently poison every downstream spread, so the bump
/// helpers reject such inputs up front instead of producing garbage curves.
///
/// The batched counterpart over the fast-path grids is
/// BatchPricer::price_with_sensitivities (cds/batch_pricer.hpp); it bumps
/// each *unique schedule grid* once instead of repricing per option and is
/// bit-consistent with these reference functions (tests hold it to 1e-12
/// relative).

#pragma once

#include <vector>

#include "cds/curve.hpp"
#include "cds/types.hpp"

namespace cdsflow::cds {

struct Sensitivities {
  double spread_bps = 0.0;
  double cs01 = 0.0;   ///< d(spread)/d(hazard), per 1 bp parallel bump
  double ir01 = 0.0;   ///< d(spread)/d(rates), per 1 bp parallel bump
  double rec01 = 0.0;  ///< d(spread)/d(recovery), per +1% recovery
  double jtd = 0.0;    ///< protection payout (1 - R) on immediate default
};

/// Returns `curve` with `bump` added to every value (parallel shift).
/// `curve` must satisfy the TermStructure invariants and `bump` must be
/// finite; both are validated.
TermStructure parallel_bump(const TermStructure& curve, double bump);

/// Returns `curve` with `bump` added to values whose times fall in
/// [t_lo, t_hi) (bucket shift). `curve` must satisfy the TermStructure
/// invariants; `t_lo < t_hi` and all of `t_lo`, `t_hi`, `bump` must be
/// finite (`t_hi` may be +inf to mean "to the end of the curve"). All
/// validated.
TermStructure bucket_bump(const TermStructure& curve, double t_lo,
                          double t_hi, double bump);

/// Central-difference sensitivities of one option.
Sensitivities compute_sensitivities(const TermStructure& interest,
                                    const TermStructure& hazard,
                                    const CdsOption& option,
                                    double bump = 1e-4);

/// Throws unless `bucket_edges` is a valid ladder: at least two edges,
/// strictly increasing (NaNs fail the comparison and are rejected; the last
/// edge may be +inf). The one home of the edge contract, shared by
/// cs01_ladder, the batched risk kernel and the risk-mode engine config.
void validate_ladder_edges(const std::vector<double>& bucket_edges);

/// Bucketed CS01 ladder: spread change per +1 bp hazard bump in each
/// [bucket_edges[i], bucket_edges[i+1]) segment. Returns one value per
/// bucket (edges must satisfy validate_ladder_edges).
std::vector<double> cs01_ladder(const TermStructure& interest,
                                const TermStructure& hazard,
                                const CdsOption& option,
                                const std::vector<double>& bucket_edges,
                                double bump = 1e-4);

}  // namespace cdsflow::cds
