/// \file resource.hpp
/// FPGA resource estimation for CDS engine configurations.
///
/// The paper fits five vectorised engines on the U280 ("being able to fit
/// five onto the Alveo U280", Sec. IV). This estimator reproduces that
/// limit from first principles: per-operator LUT/DSP costs of the
/// double-precision floating-point cores Vitis HLS instantiates, summed over
/// the stages of an engine configuration, plus per-engine infrastructure
/// (AXI/control/FIFOs) and per-replica URAM for the curve copies. The fit
/// check applies the device's routable-LUT ceiling -- large multi-kernel
/// U280 designs fail placement/routing well before 100% utilisation.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/device.hpp"

namespace cdsflow::fpga {

/// Resource vector: what one block occupies.
struct ResourceUsage {
  std::uint64_t luts = 0;
  std::uint64_t flip_flops = 0;
  std::uint64_t dsp_slices = 0;
  std::uint64_t bram_bytes = 0;
  std::uint64_t uram_blocks = 0;

  ResourceUsage& operator+=(const ResourceUsage& o);
  friend ResourceUsage operator+(ResourceUsage a, const ResourceUsage& b) {
    a += b;
    return a;
  }
  ResourceUsage scaled(std::uint64_t n) const;
};

/// Per-core costs of the double-precision operator IP Vitis HLS instantiates
/// on UltraScale+ (full-precision cores, order-of-magnitude from the
/// floating-point operator data sheets).
struct OperatorCosts {
  ResourceUsage dadd{.luts = 700, .flip_flops = 1000, .dsp_slices = 3};
  ResourceUsage dmul{.luts = 300, .flip_flops = 650, .dsp_slices = 11};
  ResourceUsage ddiv{.luts = 3200, .flip_flops = 3500, .dsp_slices = 0};
  ResourceUsage dexp{.luts = 2800, .flip_flops = 2600, .dsp_slices = 26};
  ResourceUsage dcmp{.luts = 120, .flip_flops = 80, .dsp_slices = 0};
};

/// Structural description of one CDS engine instance, sufficient for
/// resource estimation. Mirrors engine::EngineConfig's hardware-relevant
/// fields without depending on the engines module.
struct EngineShape {
  /// Replicated hazard-integration lanes (1 for the non-vectorised engines).
  unsigned hazard_lanes = 1;
  /// Replicated interpolation lanes.
  unsigned interpolation_lanes = 1;
  /// Partial accumulators per Listing-1 accumulation (7), or 1 in the
  /// baseline engine.
  unsigned accumulation_lanes = 7;
  /// Points per term-structure curve (1024 in all paper experiments).
  unsigned curve_points = 1024;
  /// Whether the engine carries the full dataflow plumbing (streams,
  /// schedulers/collectors); the sequential baseline does not.
  bool dataflow_plumbing = true;
};

/// Itemised estimate for one engine.
struct EngineEstimate {
  ResourceUsage total;
  std::vector<std::pair<std::string, ResourceUsage>> breakdown;
};

class ResourceEstimator {
 public:
  explicit ResourceEstimator(DeviceSpec device, OperatorCosts costs = {});

  const DeviceSpec& device() const { return device_; }

  /// Resources for a single engine of the given shape.
  EngineEstimate estimate_engine(const EngineShape& shape) const;

  /// Resources for `n` identical engines plus the shared shell.
  ResourceUsage estimate_design(const EngineShape& shape,
                                unsigned n_engines) const;

  /// True when `n` engines place-and-route within the device's ceilings.
  bool fits(const EngineShape& shape, unsigned n_engines) const;

  /// Largest engine count that fits (0 if even one does not).
  unsigned max_engines(const EngineShape& shape,
                       unsigned search_limit = 64) const;

  /// Multi-line utilisation report for a design.
  std::string utilisation_report(const EngineShape& shape,
                                 unsigned n_engines) const;

 private:
  DeviceSpec device_;
  OperatorCosts costs_;
};

}  // namespace cdsflow::fpga
