/// \file bench_ablation_lanes.cpp
/// Ablation: replication factor of the vectorised pools (paper picked 6).
///
/// Sweeps vector_lanes 1..8 and reports throughput plus the resource cost of
/// each configuration. The curve shows why more lanes stop helping: the
/// round-robin scheduler streams curve elements from *dual-ported URAM* at 2
/// elements/cycle, so once enough lanes exist to absorb that feed (~3), the
/// pool is feed-limited -- which is exactly why the paper saw 6-way
/// replication "double" performance rather than multiply it by six.
///
/// Usage: bench_ablation_lanes [n_options]

#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "engines/vectorised_engine.hpp"
#include "fpga/resource.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 192;

  const auto scenario = workload::paper_scenario(n_options);
  const auto device = fpga::alveo_u280();
  const fpga::ResourceEstimator estimator(device);

  std::cout << "== Ablation: vector lane count (paper: 6) ==\n"
            << n_options << " options, free-running vectorised engine\n\n";

  report::Table table("Throughput and cost vs replication factor");
  table.set_columns({"Lanes", "Options/s", "Speedup vs 1 lane",
                     "Engine LUTs", "Max engines on U280"});

  double base_ops = 0.0;
  for (unsigned lanes = 1; lanes <= 8; ++lanes) {
    engine::FpgaEngineConfig cfg;
    cfg.vector_lanes = lanes;
    engine::VectorisedEngine engine(scenario.interest, scenario.hazard, cfg);
    const auto run = engine.price(scenario.options);
    if (lanes == 1) base_ops = run.options_per_second;

    fpga::EngineShape shape;
    shape.hazard_lanes = lanes;
    shape.interpolation_lanes = lanes;
    const auto estimate = estimator.estimate_engine(shape);

    table.add_row({std::to_string(lanes),
                   with_thousands(run.options_per_second, 2),
                   fixed(run.options_per_second / base_ops, 2) + "x",
                   with_thousands(double(estimate.total.luts), 0),
                   std::to_string(estimator.max_engines(shape))});
  }
  std::cout << table.render_text()
            << "\nthe speedup saturates once the lanes cover the 2-element/"
               "cycle URAM feed; extra lanes only cost LUTs (and eventually "
               "engines per card).\n";
  return 0;
}
