/// \file bench_micro_kernels.cpp
/// google-benchmark micro kernels: the native building blocks behind every
/// engine (golden pricer, curve interpolation, schedule generation, survival
/// probabilities) and the simulator's own overhead. These are regression
/// guards for the host-side performance of the library.

#include <benchmark/benchmark.h>

#include "cds/hazard.hpp"
#include "cds/legs.hpp"
#include "cds/pricer.hpp"
#include "cds/schedule.hpp"
#include "engines/interoption_engine.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace cdsflow;

const workload::Scenario& paper_scenario_singleton() {
  static const workload::Scenario s = workload::paper_scenario(64);
  return s;
}

void BM_GoldenPricer_SpreadBps(benchmark::State& state) {
  const auto& s = paper_scenario_singleton();
  const cds::ReferencePricer pricer(s.interest, s.hazard);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pricer.spread_bps(s.options[i++ % s.options.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoldenPricer_SpreadBps);

void BM_Curve_InterpolateScan(benchmark::State& state) {
  const auto& s = paper_scenario_singleton();
  double t = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.interest.interpolate(t));
    t += 0.37;
    if (t > 29.0) t = 0.1;
  }
}
BENCHMARK(BM_Curve_InterpolateScan);

void BM_Schedule_Make(benchmark::State& state) {
  const cds::CdsOption option{.id = 0,
                              .maturity_years = 7.3,
                              .payment_frequency = 4.0,
                              .recovery_rate = 0.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cds::make_schedule(option));
  }
}
BENCHMARK(BM_Schedule_Make);

void BM_Hazard_SurvivalProbability(benchmark::State& state) {
  const auto& s = paper_scenario_singleton();
  double t = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cds::survival_probability(s.hazard, t));
    t += 0.61;
    if (t > 29.0) t = 0.1;
  }
}
BENCHMARK(BM_Hazard_SurvivalProbability);

/// Simulator overhead per simulated kernel cycle: prices a small batch on
/// the free-running engine and reports host-ns per simulated cycle --
/// the metric that keeps whole-portfolio simulation cheap.
void BM_Simulator_FreeRunningEngine(benchmark::State& state) {
  const auto& s = paper_scenario_singleton();
  sim::Cycle cycles = 0;
  for (auto _ : state) {
    engine::InterOptionEngine engine(s.interest, s.hazard, {});
    const auto run = engine.price(s.options);
    cycles = run.kernel_cycles;
    benchmark::DoNotOptimize(run.results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.options.size()));
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles));
}
BENCHMARK(BM_Simulator_FreeRunningEngine)->Unit(benchmark::kMillisecond);

}  // namespace
