/// \file error.hpp
/// Error handling for cdsflow.
///
/// The library follows a "wide contract at the API boundary, narrow contract
/// inside" policy (C++ Core Guidelines I.5/I.6): public entry points validate
/// their inputs with CDSFLOW_EXPECT and throw cdsflow::Error; internal
/// invariants use CDSFLOW_ASSERT which also throws (so simulator bugs surface
/// in release builds and tests instead of silently corrupting results).

#pragma once

#include <stdexcept>
#include <string>

namespace cdsflow {

/// Exception type thrown by all cdsflow precondition and invariant failures.
///
/// Carries the failing expression and source location in what() so test
/// failures and user errors are directly actionable.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

namespace detail {

/// Builds the diagnostic string and throws. Out-of-line so the macro
/// expansion stays small at every call site.
[[noreturn]] void throw_error(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& message);

}  // namespace detail

}  // namespace cdsflow

/// Validate a caller-supplied precondition. `msg` is a string (or something
/// streamable into std::string via operator+) describing what went wrong.
#define CDSFLOW_EXPECT(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::cdsflow::detail::throw_error("precondition", #cond, __FILE__,     \
                                     __LINE__, (msg));                    \
    }                                                                     \
  } while (false)

/// Check an internal invariant. Same behaviour as CDSFLOW_EXPECT but the
/// diagnostic is labelled as a library bug rather than a usage error.
#define CDSFLOW_ASSERT(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::cdsflow::detail::throw_error("internal invariant", #cond,         \
                                     __FILE__, __LINE__, (msg));          \
    }                                                                     \
  } while (false)
