/// \file multi_engine.hpp
/// Scaling up: several CDS engines on one card (paper Sec. IV, Table II).
///
/// "There are no dependencies between calculations involving different
/// options, and as such we decomposed based upon the options themselves,
/// splitting the entire set up into N chunks." Each chunk runs on its own
/// engine instance (every engine holds the full curve data in URAM, loaded
/// at initialisation); batch kernel time is the maximum over engines, and
/// the shared PCIe/DMA infrastructure charges an arbitration cost per option
/// per extra engine (calibrated in fpga::HlsCostModel).
///
/// When a DeviceSpec is supplied the constructor refuses engine counts that
/// do not place-and-route -- the reproduction of "being able to fit five
/// onto the Alveo U280".

#pragma once

#include <memory>
#include <optional>

#include "cds/curve.hpp"
#include "engines/engine.hpp"
#include "fpga/device.hpp"
#include "fpga/resource.hpp"

namespace cdsflow::engine {

struct MultiEngineConfig {
  FpgaEngineConfig engine;
  unsigned n_engines = 5;
  /// Use the vectorised engine per instance (the paper's Table II setup);
  /// false selects the plain free-running engine.
  bool vectorised = true;
  /// When set, the constructor enforces the resource fit check.
  std::optional<fpga::DeviceSpec> device;
};

class MultiEngine final : public Engine {
 public:
  MultiEngine(cds::TermStructure interest, cds::TermStructure hazard,
              MultiEngineConfig config);

  std::string name() const override;
  std::string description() const override;

  PricingRun price(const std::vector<cds::CdsOption>& options) override;

  unsigned n_engines() const { return config_.n_engines; }

  /// The EngineShape matching this configuration (resource estimation).
  fpga::EngineShape shape() const;

 private:
  cds::TermStructure interest_;
  cds::TermStructure hazard_;
  MultiEngineConfig config_;
};

}  // namespace cdsflow::engine
