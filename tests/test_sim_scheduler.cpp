/// \file test_sim_scheduler.cpp
/// Unit tests for the Simulation scheduler: quiescence settling, event-
/// driven time advance, completion, deadlock detection and diagnostics,
/// contract enforcement.

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace cdsflow::sim {
namespace {

/// Produces `count` integers, one every `period` cycles.
class TickSource final : public Process {
 public:
  TickSource(std::string name, Channel<int>& out, int count, Cycle period)
      : Process(std::move(name)), out_(out), count_(count), period_(period) {}

  bool step(Cycle now) override {
    if (emitted_ >= count_ || now < next_ || !out_.can_push()) return false;
    out_.push(emitted_++);
    next_ = now + period_;
    return true;
  }
  Cycle next_wake(Cycle now) const override {
    if (emitted_ >= count_) return kNoWake;
    return next_ > now ? next_ : kNoWake;
  }
  bool done() const override { return emitted_ >= count_; }

 private:
  Channel<int>& out_;
  int count_;
  Cycle period_;
  int emitted_ = 0;
  Cycle next_ = 0;
};

/// Consumes `count` integers immediately when available.
class Drain final : public Process {
 public:
  Drain(std::string name, Channel<int>& in, int count)
      : Process(std::move(name)), in_(in), count_(count) {}

  bool step(Cycle) override {
    if (received_ >= count_ || !in_.can_pop()) return false;
    last_ = in_.pop();
    ++received_;
    return true;
  }
  Cycle next_wake(Cycle) const override { return kNoWake; }
  bool done() const override { return received_ >= count_; }
  int last() const { return last_; }
  int received() const { return received_; }

 private:
  Channel<int>& in_;
  int count_;
  int received_ = 0;
  int last_ = -1;
};

/// Never makes progress; never done -- the deadlock fixture.
class Stuck final : public Process {
 public:
  explicit Stuck(std::string name) : Process(std::move(name)) {}
  bool step(Cycle) override { return false; }
  Cycle next_wake(Cycle) const override { return kNoWake; }
  bool done() const override { return false; }
  std::string describe_state() const override { return "hopelessly stuck"; }
};

/// Violates the contract: claims progress forever.
class Liar final : public Process {
 public:
  explicit Liar(std::string name) : Process(std::move(name)) {}
  bool step(Cycle) override { return true; }
  Cycle next_wake(Cycle) const override { return kNoWake; }
  bool done() const override { return false; }
};

TEST(Simulation, RunsSourceToDrain) {
  Simulation sim;
  auto& ch = sim.make_channel<int>("ch", 2);
  sim.add_process<TickSource>("src", ch, 10, 3);
  auto& drain = sim.add_process<Drain>("drain", ch, 10);
  const auto result = sim.run();
  EXPECT_EQ(drain.received(), 10);
  EXPECT_EQ(drain.last(), 9);
  // 10 tokens, one every 3 cycles starting at 0 => last emitted at 27.
  EXPECT_EQ(result.end_cycle, 27u);
}

TEST(Simulation, EventDrivenSkipsIdleCycles) {
  Simulation sim;
  auto& ch = sim.make_channel<int>("ch", 2);
  sim.add_process<TickSource>("src", ch, 4, 1000);
  sim.add_process<Drain>("drain", ch, 4);
  const auto result = sim.run();
  EXPECT_EQ(result.end_cycle, 3000u);
  // Only the emission cycles are active, not the 3000 in between.
  EXPECT_LE(result.active_cycles, 8u);
}

TEST(Simulation, BackpressureThrottlesProducer) {
  Simulation sim;
  auto& ch = sim.make_channel<int>("ch", 1);
  // Source wants to emit every cycle; drain accepts all 5 immediately, so
  // the depth-1 channel never stalls long -- but with a stuck consumer the
  // source must stop after filling the FIFO (covered by DeadlockDetected).
  sim.add_process<TickSource>("src", ch, 5, 1);
  auto& drain = sim.add_process<Drain>("drain", ch, 5);
  sim.run();
  EXPECT_EQ(drain.received(), 5);
}

TEST(Simulation, DeadlockDetectedAndDescribed) {
  Simulation sim;
  auto& ch = sim.make_channel<int>("full_channel", 1);
  sim.add_process<TickSource>("src", ch, 5, 1);
  sim.add_process<Stuck>("consumer");
  try {
    sim.run();
    FAIL() << "expected deadlock";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos);
    EXPECT_NE(what.find("hopelessly stuck"), std::string::npos);
    EXPECT_NE(what.find("full_channel"), std::string::npos);
    EXPECT_NE(what.find("FULL"), std::string::npos);
  }
}

TEST(Simulation, SettleGuardCatchesLyingProcess) {
  Simulation sim;
  sim.add_process<Liar>("liar");
  EXPECT_THROW(sim.run(), Error);
}

TEST(Simulation, MaxCyclesEnforced) {
  Simulation sim;
  auto& ch = sim.make_channel<int>("ch", 2);
  sim.add_process<TickSource>("src", ch, 100, 1000);
  sim.add_process<Drain>("drain", ch, 100);
  EXPECT_THROW(sim.run(/*max_cycles=*/500), Error);
}

TEST(Simulation, RequiresProcesses) {
  Simulation sim;
  EXPECT_THROW(sim.run(), Error);
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto build_and_run = [] {
    Simulation sim;
    auto& a = sim.make_channel<int>("a", 2);
    auto& b = sim.make_channel<int>("b", 3);
    sim.add_process<TickSource>("s1", a, 20, 2);
    sim.add_process<TickSource>("s2", b, 20, 3);
    sim.add_process<Drain>("d1", a, 20);
    sim.add_process<Drain>("d2", b, 20);
    return sim.run().end_cycle;
  };
  EXPECT_EQ(build_and_run(), build_and_run());
}

TEST(Simulation, ChannelOwnershipAndIntrospection) {
  Simulation sim;
  sim.make_channel<int>("x", 2);
  sim.make_channel<double>("y", 4);
  EXPECT_EQ(sim.channel_count(), 2u);
  EXPECT_EQ(sim.channels()[0]->name(), "x");
  EXPECT_EQ(sim.channels()[1]->capacity(), 4u);
}

TEST(Simulation, DescribeStateSurfacesProgressCounters) {
  // Deadlock diagnostics depend on describe_state() carrying useful
  // information; check the stage implementations report token progress and
  // blocking channels.
  Simulation sim;
  auto& ch = sim.make_channel<int>("narrow", 1);
  sim.add_process<TickSource>("src", ch, 3, 1);
  sim.add_process<Stuck>("black_hole");
  try {
    sim.run();
    FAIL() << "expected deadlock";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("black_hole"), std::string::npos);
    EXPECT_NE(what.find("narrow"), std::string::npos);
    EXPECT_NE(what.find("1/1"), std::string::npos);  // channel occupancy
  }
}

TEST(Simulation, SameCycleHandoffWorksRegardlessOfOrder) {
  // Drain registered before source: settle loop must still deliver the
  // token within the same cycle.
  Simulation sim;
  auto& ch = sim.make_channel<int>("ch", 2);
  auto& drain = sim.add_process<Drain>("drain", ch, 1);
  sim.add_process<TickSource>("src", ch, 1, 1);
  const auto result = sim.run();
  EXPECT_EQ(result.end_cycle, 0u);
  EXPECT_EQ(drain.received(), 1);
}

}  // namespace
}  // namespace cdsflow::sim
