/// \file vector_kernel.hpp
/// Runtime-dispatched SIMD vector-lane kernel for the batched CPU fast path.
///
/// The paper's Fig. 3 "vectorisation" replicates the expensive hazard /
/// interpolation sub-functions into parallel lanes behind a round-robin
/// distributor (hls/replicate.hpp models exactly that structure). This
/// module is the host-side counterpart: the same per-time-point curve
/// queries -- Lambda(t) lookup + exp for the survival column, bracket
/// search + lerp + exp for the discount column -- executed W points at a
/// time in x86 vector lanes:
///
///     level     lanes W   HLS analogue (Fig. 3 / replicate.hpp)
///     kScalar   1         un-replicated sub-function
///     kAvx2     4         4 replica lanes
///     kAvx512   8         8 replica lanes  (paper: 6, URAM-feed limited)
///
/// The lane count *is* the replication factor: one AVX-512 register holds
/// what the paper feeds six replica kernels, and `bench_fig3_vector_lanes`
/// (modelled) and `bench_cpu_vector` (native) tell the same story. See
/// docs/VECTOR_LANES.md for the full correspondence and the precision
/// contract.
///
/// Dispatch rules (docs/VECTOR_LANES.md "Runtime dispatch"):
///   * detect_level(): best level both compiled in (CMake flag checks;
///     CDSFLOW_DISABLE_SIMD forces none) and supported by the running CPU
///     (AVX-512 needs F+DQ+VL, AVX2 needs AVX2+FMA).
///   * active_level(): detect_level(), optionally clamped *down* by the
///     CDSFLOW_SIMD environment variable ("scalar" | "avx2" | "avx512");
///     cached after first use. This is what the engines run with.
///   * Every entry point takes an explicit Level and resolves it with
///     resolve_level(), so a request can never exceed what the host
///     supports; Level::kScalar is always valid and executes the exact
///     scalar-reference arithmetic (bit-identical fallback).
///
/// Precision contract (documented in docs/VECTOR_LANES.md, every bound
/// asserted by tests/test_vector_kernel.cpp; the numeric bounds live in
/// cds/precision.hpp as VectorKernelContract):
///   * kScalar level: bit-identical to the scalar batch kernel.
///   * The integrated hazard and the interpolated rate use the reference
///     expressions (no fused contractions), so the only vector-vs-scalar
///     deviation in the columns is exp_pd() vs std::exp -- bounded by
///     VectorKernelContract::kExpUlpBound ulp.
///   * The leg-sum reductions and dq subtraction stay on the scalar path in
///     the reference association order (batch_pricer.cpp), so no
///     reassociation tolerance is ever needed; spreads and Greeks inherit
///     only the column ulp noise (kSpreadRelTol / kGreekRelTol).
///   * At a vector level the lane *tail* evaluates a scalar twin of exp_pd
///     (std::fma mirrors the lane fmadd bit for bit), so a point's column
///     value never depends on where the lane head happens to end. Results
///     at a fixed level are therefore invariant under sharding, thread
///     chunking, micro-batching and incremental per-grid re-tabulation --
///     the runtime's bit-determinism guarantees hold for cpu-vec exactly as
///     for cpu-batch.
///   * combine_spreads() performs the identical IEEE ops per lane as the
///     scalar combine: bit-exact at every level.

#pragma once

#include <cstdint>
#include <span>

#include "cds/curve.hpp"
#include "cds/hazard.hpp"
#include "cds/schedule.hpp"
#include "cds/types.hpp"

namespace cdsflow::cds::simd {

/// Vector-lane width selector, ordered so narrower levels compare less.
enum class Level { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// True when at least one SIMD translation unit was compiled in (i.e. the
/// build did not use -DCDSFLOW_DISABLE_SIMD=ON and the compiler supported
/// the -m flags). The scalar-only CI lane asserts this is false.
bool compiled_with_simd();

/// Best level both compiled in and supported by the running CPU.
Level detect_level();

/// detect_level() clamped down by the CDSFLOW_SIMD environment variable
/// ("scalar" | "avx2" | "avx512"; anything else is ignored). Cached after
/// the first call -- the level the engines construct kernels with.
Level active_level();

/// What a request for `level` actually executes: min(level, detect_level()).
Level resolve_level(Level level);

/// Vector lanes of a level: 1 / 4 / 8 -- the CPU replication factor
/// mirroring hls::ReplicationConfig::lanes.
unsigned lanes(Level level);

const char* to_string(Level level);

/// Fills the survival column Q(t_i) = exp(-Lambda(t_i)) over `points`.
/// Lambda uses the integrated_hazard_prefix expressions verbatim. At vector
/// levels the lane tail (points.size() % lanes) runs the scalar exp_pd twin
/// so the column's bits are alignment-independent; kScalar runs the scalar
/// reference (std::exp) throughout.
void survival_column(const HazardPrefix& prefix,
                     std::span<const TimePoint> points, std::span<double> out,
                     Level level);

/// Fills the discount column D(t_i) = exp(-r(t_i) * t_i) with r from
/// TermStructure::interpolate_fast's bracket-search + lerp arithmetic.
void discount_column(const TermStructure& interest,
                     std::span<const TimePoint> points, std::span<double> out,
                     Level level);

/// Both base-grid columns in one call: survival always, discount only when
/// `refresh_discount` (the hazard-quote update path reuses the stored
/// column, exactly like detail::tabulate_grid).
void tabulate_columns(const TermStructure& interest,
                      const HazardPrefix& prefix,
                      std::span<const TimePoint> points,
                      std::span<double> discount, std::span<double> survival,
                      bool refresh_discount, Level level);

/// The branch-free per-option combine, W options per iteration: gathers
/// each option's grid sums by id and evaluates
///   spread = (kBasisPointsPerUnit * ((1 - recovery) * payoff[g])) / annuity[g]
/// with the identical per-lane IEEE operations as the scalar loop --
/// bit-exact at every level (asserted by tests).
void combine_spreads(std::span<const CdsOption> options,
                     std::span<const std::uint32_t> grid_of,
                     std::span<const double> annuity,
                     std::span<const double> payoff,
                     std::span<SpreadResult> out, Level level);

/// exp() over a column -- the one transcendental the vector path replaces.
/// kScalar runs std::exp; vector levels run the Cody-Waite + polynomial
/// exp_pd (lanes on the head, its bit-identical scalar twin on the tail)
/// whose error vs std::exp is bounded by
/// VectorKernelContract::kExpUlpBound ulp (asserted by tests). Exposed so
/// the precision tests can measure the bound directly.
void exp_columns(std::span<const double> xs, std::span<double> out,
                 Level level);

/// Scenario-group survival tabulation for the sweep pricer: one group of
/// exactly W = lanes(resolve_level(level)) scenarios, *scenarios* in the
/// vector lanes instead of schedule points. All scenarios in a hazard sweep
/// share the knot times and the schedule, so the segment bracket of every
/// point is search-free: the caller precomputes, once per sweep,
///
///   knot_dt[j]   = tau_j - tau_{j-1}          (tau_{-1} = 0)
///   base_row[i]  = std::lower_bound index j of point t_i
///   rate_row[i]  = min(j, n_knots - 1)
///   point_dt[i]  = t_i - seg_begin_i
///
/// and transposes the group's hazard rates into `rates_T` (n_knots rows of
/// W doubles, scenario-minor). The kernel then accumulates the prefix
/// lambdas into `lambda_T` ((n_knots + 1) rows of W; row 0 is the zero
/// base, row n_knots the beyond-last-knot base) in make_hazard_prefix's
/// exact order and writes q_T[i * W + w] = exp(-(base + rate * dt)) -- per
/// lane the identical IEEE expression survival_column evaluates, with
/// exp_pd at vector levels and std::exp at kScalar. Every operation is
/// lane-wise, so a scenario's column bits depend only on its own rates:
/// results are invariant under scenario grouping, padding of a partial
/// final group, sharding and thread count (at a fixed level).
void sweep_survival_group(std::span<const double> rates_T,
                          std::span<const double> knot_dt,
                          std::span<double> lambda_T,
                          std::span<const double> point_dt,
                          std::span<const std::int64_t> base_row,
                          std::span<const std::int64_t> rate_row,
                          std::span<double> q_T, Level level);

/// Scenario-group leg-sum reduction for the sweep pricer: one grid of
/// `dts.size()` schedule points, W = lanes(resolve_level(level)) scenarios
/// abreast. `discount` is the grid's shared discount column, `q_T` the
/// grid's slice of sweep_survival_group's scenario-minor survival rows, and
/// the outputs hold one annuity (premium + accrual, checked_grid_sums' add)
/// and one payoff sum per lane. Per lane this is detail::reduce_leg_sums'
/// exact serial accumulation -- kScalar literally runs it; vector levels
/// run the identical plain mul/add expressions lane-wise -- so a scenario's
/// sums are bit-identical to a one-scenario reduction and invariant under
/// grouping, sharding and thread count. The annuity positivity check stays
/// with the caller.
void sweep_leg_sums_group(std::span<const double> dts,
                          std::span<const double> discount,
                          std::span<const double> q_T,
                          std::span<double> annuity_out,
                          std::span<double> payoff_out, Level level);

}  // namespace cdsflow::cds::simd
