/// \file tokens.hpp
/// Token types flowing on the dataflow streams (paper Fig. 2).
///
/// Red arrows in Fig. 2 are per-option streams (OptionToken, LegSumToken,
/// SpreadResult); blue arrows are per-time-point streams (everything else).
/// Tokens carry their provenance (option id, time-point index) so the zip
/// stages can assert that streams stay in lockstep -- the simulator
/// equivalent of verifying the HLS stream wiring.

#pragma once

#include <cstdint>

namespace cdsflow::engine {

/// One option entering the engine (with its precomputed schedule length so
/// downstream stages know the group size).
struct OptionToken {
  std::int32_t id = 0;
  double maturity = 0.0;
  double frequency = 0.0;
  double recovery = 0.0;
  std::int32_t n_points = 0;
};

/// One premium payment time point of one option.
struct TimePointToken {
  std::int32_t option_id = 0;
  std::int32_t index = 0;  ///< 0-based within the option
  std::int32_t count = 0;  ///< time points in this option
  double t = 0.0;
  double dt = 0.0;

  bool first() const { return index == 0; }
  bool last() const { return index + 1 == count; }
};

/// Integrated hazard Lambda(t) at a time point (hazard-lane output).
struct HazardToken {
  TimePointToken tp;
  double lambda = 0.0;
};

/// Survival state at a time point: Q(t_i) and the default mass
/// dQ = Q(t_{i-1}) - Q(t_i).
struct SurvivalToken {
  TimePointToken tp;
  double q = 0.0;
  double dq = 0.0;
};

/// Interpolated zero rate r(t) (interpolation-lane output).
struct RateToken {
  TimePointToken tp;
  double r = 0.0;
};

/// Discount factor D(t) = exp(-r t).
struct DiscountToken {
  TimePointToken tp;
  double d = 0.0;
};

/// One leg's contribution at one time point.
struct TermsToken {
  TimePointToken tp;
  double value = 0.0;
};

/// One leg summed over an option.
struct LegSumToken {
  std::int32_t option_id = 0;
  double value = 0.0;
};

}  // namespace cdsflow::engine
