/// \file bench_fig1_flowchart.cpp
/// Reproduces paper Fig. 1 (structure): "Flowchart illustration of the
/// structure of the Xilinx CDS FPGA engine."
///
/// Fig. 1 is an architecture diagram, so the reproduction is structural
/// evidence rather than a data series: the baseline engine's stage trace for
/// a few options, showing that the components (time points -> defaulting
/// probability -> payment -> payoff -> accrual -> accumulate -> combine) run
/// strictly one after another -- mean concurrency ~1.0 and zero pairwise
/// overlap -- unlike the dataflow engines of Fig. 2.
///
/// Usage: bench_fig1_flowchart [n_options]

#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "engines/xilinx_baseline.hpp"
#include "sim/trace.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  auto scenario = workload::paper_scenario(n_options);
  scenario.options.resize(n_options);

  sim::Trace trace;
  engine::FpgaEngineConfig cfg;
  cfg.trace = &trace;
  engine::XilinxBaselineEngine engine(scenario.interest, scenario.hazard,
                                      cfg);
  const auto run = engine.price(scenario.options);

  std::cout << "== Fig. 1 reproduction: sequential structure of the Xilinx "
               "library engine ==\n"
            << n_options << " option(s), "
            << with_thousands(double(run.kernel_cycles), 0)
            << " kernel cycles total\n\n"
            << "Per-stage timeline (strictly sequential; gaps between "
               "options are the per-option kernel restart):\n\n"
            << trace.render_ascii(100) << '\n';

  std::cout << "mean concurrency (1.0 == fully sequential): "
            << fixed(trace.mean_concurrency(), 3) << "\n";
  std::cout << "pairwise stage overlap (default_probability vs payment_pv): "
            << fixed(trace.overlap_fraction(2, 3) * 100.0, 2) << "%\n\n";

  std::cout << "Per-option stage spans (cycles):\n";
  for (const auto& span :
       engine.option_stage_spans(scenario.options.front())) {
    std::cout << "  " << pad_right(span.stage, 22)
              << pad_left(with_thousands(double(span.cycles), 0), 10) << '\n';
  }
  return 0;
}
