/// \file stats.hpp
/// Streaming statistics used by the simulator (channel occupancy, stage
/// utilisation) and the benchmark harness (3-run averaging as in the paper).

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace cdsflow {

/// Welford-style running mean/variance plus min/max. O(1) space, numerically
/// stable, safe to merge.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel reduction support).
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [0, upper]; values above `upper` land in the
/// final bucket. Used for channel occupancy distributions.
class Histogram {
 public:
  Histogram(std::size_t buckets, double upper);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const { return total_; }
  /// Fraction of samples in bucket i (0 if empty histogram).
  double fraction(std::size_t i) const;

 private:
  std::vector<std::uint64_t> counts_;
  double upper_;
  std::uint64_t total_ = 0;
};

/// Relative difference |a-b| / max(|a|,|b|,eps); the comparison metric used
/// by the engine-vs-golden test suites.
double relative_difference(double a, double b);

/// p-th percentile (p in [0,100]) of a sample by linear interpolation
/// between order statistics. Copies and sorts; intended for end-of-run
/// reporting (latency percentiles), not hot paths. Throws on empty input.
double percentile(std::vector<double> samples, double p);

}  // namespace cdsflow
