/// \file risk_ladder.cpp
/// Credit risk sensitivities with the CDS engine: the workflow a desk runs
/// after pricing -- bump the hazard curve, reprice, and read off spread
/// sensitivities per maturity bucket (a "CS01 ladder"), plus recovery-rate
/// sensitivity. Uses the engine for bulk repricing and the golden model's
/// leg breakdown for the decomposition.
///
/// Run:  ./risk_ladder

#include <iostream>
#include <vector>

#include "cds/pricer.hpp"
#include "common/format.hpp"
#include "engines/interoption_engine.hpp"
#include "report/table.hpp"
#include "workload/curves.hpp"

namespace {

using namespace cdsflow;

/// Returns a copy of `curve` with every knot's value scaled by (1 + bump).
cds::TermStructure bumped(const cds::TermStructure& curve, double bump) {
  std::vector<double> values = curve.values();
  for (auto& v : values) v *= 1.0 + bump;
  return cds::TermStructure(curve.times(), std::move(values));
}

}  // namespace

int main() {
  const auto interest = workload::paper_interest_curve();
  const auto hazard = workload::paper_hazard_curve();

  // A benchmark ladder: par CDS at standard tenors.
  std::vector<cds::CdsOption> ladder;
  const double tenors[] = {1.0, 2.0, 3.0, 5.0, 7.0, 10.0};
  for (std::size_t i = 0; i < std::size(tenors); ++i) {
    ladder.push_back({.id = static_cast<std::int32_t>(i),
                      .maturity_years = tenors[i],
                      .payment_frequency = 4.0,
                      .recovery_rate = 0.4});
  }

  // Base and bumped books priced on the free-running engine.
  const double kBump = 0.01;  // +1% relative hazard bump
  engine::InterOptionEngine base_engine(interest, hazard, {});
  engine::InterOptionEngine up_engine(interest, bumped(hazard, kBump), {});
  engine::InterOptionEngine down_engine(interest, bumped(hazard, -kBump), {});
  const auto base = base_engine.price(ladder);
  const auto up = up_engine.price(ladder);
  const auto down = down_engine.price(ladder);

  const cds::ReferencePricer pricer(interest, hazard);

  report::Table table("Hazard sensitivity ladder (+/-1% relative bump)");
  table.set_columns({"Tenor", "Par spread (bps)", "dSpread/dHazard (bps)",
                     "Central diff (bps)", "Risky PV01"});
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const double s0 = base.results[i].spread_bps;
    const double s_up = up.results[i].spread_bps;
    const double s_dn = down.results[i].spread_bps;
    const auto breakdown = pricer.breakdown(ladder[i]);
    table.add_row({fixed(tenors[i], 0) + "y", fixed(s0, 2),
                   fixed(s_up - s0, 3),
                   fixed((s_up - s_dn) / 2.0, 3),
                   fixed(breakdown.premium_leg + breakdown.accrual_leg, 4)});
  }
  std::cout << table.render_text() << '\n';

  // Recovery sensitivity at the 5y point: spread falls as recovery rises.
  std::cout << "recovery-rate sensitivity (5y):\n";
  for (const double r : {0.0, 0.2, 0.4, 0.6}) {
    cds::CdsOption o{.id = 0, .maturity_years = 5.0, .payment_frequency = 4.0,
                     .recovery_rate = r};
    std::cout << "  R=" << fixed(r, 1) << "  spread "
              << fixed(pricer.spread_bps(o), 2) << " bps\n";
  }
  std::cout << "\n(sanity: spread scales ~(1-R); protection is worth less "
               "when more of the loan is recovered)\n";
  return 0;
}
