/// \file process.hpp
/// The unit of concurrency in the simulator.
///
/// A Process models one concurrently executing hardware entity (an HLS
/// dataflow function, a memory port, a scheduler...). The Simulation drives
/// every process with a cooperative step/next_wake protocol:
///
///  * step(now)      — attempt to make progress at cycle `now`. Must return
///                     true iff observable state changed (a token moved, an
///                     internal phase advanced). The scheduler keeps
///                     re-stepping all processes within a cycle until
///                     everything is quiescent, so same-cycle producer ->
///                     consumer hand-off works regardless of step order.
///  * next_wake(now) — the earliest cycle strictly after `now` at which the
///                     process could make progress *on its own* (e.g. a
///                     pipeline result completing). Return kNoWake when only
///                     channel activity from another process can unblock it;
///                     if every live process says kNoWake the system is
///                     deadlocked and the scheduler reports it.
///  * done()         — the process has finished all the work it will ever do.

#pragma once

#include <string>

#include "sim/cycle.hpp"

namespace cdsflow::sim {

class Process {
 public:
  explicit Process(std::string name) : name_(std::move(name)) {}
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }

  /// Attempt progress at `now`; true iff state changed. See file comment.
  virtual bool step(Cycle now) = 0;

  /// Earliest self-driven wake-up after `now`; kNoWake if channel-bound/done.
  virtual Cycle next_wake(Cycle now) const = 0;

  /// All work complete.
  virtual bool done() const = 0;

  /// One-line state description for deadlock diagnostics; overriders should
  /// mention which channel they are blocked on.
  virtual std::string describe_state() const { return done() ? "done" : "running"; }

 private:
  std::string name_;
};

}  // namespace cdsflow::sim
