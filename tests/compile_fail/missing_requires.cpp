// Seeded violation: calling a CDSFLOW_REQUIRES function without holding
// the mutex it names. Clang must reject this under -Werror=thread-safety
// ("calling function 'bump_locked' requires holding mutex 'mu_'");
// the compile_fail_missing_requires ctest entry is WILL_FAIL on that.
// Under GCC the annotations are no-ops and this is ordinary valid C++.

#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump_unlocked() {
    bump_locked();  // REQUIRES(mu_) callee, no lock: the seeded violation
  }

 private:
  void bump_locked() CDSFLOW_REQUIRES(mu_) { ++count_; }

  cdsflow::Mutex mu_;
  long count_ CDSFLOW_GUARDED_BY(mu_) = 0;
};

}  // namespace

void cf_missing_requires_probe() {
  Counter counter;
  counter.bump_unlocked();
}
