/// \file test_integration.cpp
/// Cross-module integration tests: miniature versions of the paper's
/// experiments asserting the qualitative results the benches print --
/// Table I ordering and rough ratios, Table II scaling and power, Fig. 1/2
/// concurrency contrast, Fig. 3 saturation, and transfer share.

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/interoption_engine.hpp"
#include "engines/multi_engine.hpp"
#include "engines/registry.hpp"
#include "engines/vectorised_engine.hpp"
#include "engines/xilinx_baseline.hpp"
#include "fpga/power.hpp"
#include "fpga/resource.hpp"
#include "report/paper.hpp"
#include "sim/trace.hpp"
#include "workload/curves.hpp"
#include "workload/scenario.hpp"

namespace cdsflow {
namespace {

/// Options/s of an FPGA engine on the paper scenario (single run; the
/// simulator is deterministic so repeats are pointless in tests).
double paper_ops(const std::string& name, std::size_t n_options = 96) {
  const auto scenario = workload::paper_scenario(n_options);
  auto engine =
      engine::make_engine(name, scenario.interest, scenario.hazard);
  return engine->price(scenario.options).options_per_second;
}

TEST(TableI, RatiosReproduceWithinTolerance) {
  const double baseline = paper_ops("xilinx-baseline");
  const double dataflow = paper_ops("dataflow");
  const double interoption = paper_ops("dataflow-interoption");
  const double vectorised = paper_ops("vectorised");

  // Paper ratios: 2.13x, 1.80x, 2.08x, overall 7.99x. Allow 20% slack --
  // the claim is the shape, not the third digit.
  EXPECT_NEAR(dataflow / baseline, 2.13, 2.13 * 0.20);
  EXPECT_NEAR(interoption / dataflow, 1.80, 1.80 * 0.20);
  EXPECT_NEAR(vectorised / interoption, 2.08, 2.08 * 0.20);
  EXPECT_NEAR(vectorised / baseline, 7.99, 7.99 * 0.20);
}

TEST(TableI, AbsoluteThroughputNearPaper) {
  // The calibrated simulator should land close on absolute numbers too
  // (these are simulated-kernel + modelled-host times, host-independent).
  EXPECT_NEAR(paper_ops("xilinx-baseline"),
              report::paper::kXilinxLibraryOptsPerSec,
              report::paper::kXilinxLibraryOptsPerSec * 0.15);
  EXPECT_NEAR(paper_ops("dataflow-interoption"),
              report::paper::kInterOptionOptsPerSec,
              report::paper::kInterOptionOptsPerSec * 0.15);
  EXPECT_NEAR(paper_ops("vectorised"),
              report::paper::kVectorisedOptsPerSec,
              report::paper::kVectorisedOptsPerSec * 0.15);
}

TEST(TableII, EngineScalingShape) {
  const auto scenario = workload::paper_scenario(240);
  auto run_n = [&](unsigned n) {
    engine::MultiEngineConfig cfg;
    cfg.n_engines = n;
    engine::MultiEngine engine(scenario.interest, scenario.hazard, cfg);
    return engine.price(scenario.options).options_per_second;
  };
  const double one = run_n(1);
  const double two = run_n(2);
  const double five = run_n(5);
  // Paper: 1.94x at 2 engines, 4.12x at 5.
  EXPECT_NEAR(two / one, 1.94, 0.2);
  EXPECT_NEAR(five / one, 4.12, 0.5);
  EXPECT_LT(five / one, 5.0);  // sub-linear: shared DMA arbitration
}

TEST(TableII, PowerEfficiencyAdvantageReproduced) {
  const fpga::FpgaPowerModel fpga_power;
  const fpga::CpuPowerModel cpu_power;
  const double fpga_eff =
      paper_ops("multi-5", 240) / fpga_power.watts(5);
  // Use the paper's CPU numbers as the comparison point (host CPUs vary).
  const double paper_cpu_eff = report::paper::kCpu24CoreOptsPerSec /
                               cpu_power.watts(24);
  EXPECT_GT(fpga_eff / paper_cpu_eff, 5.0);  // paper: ~7x
}

TEST(Fig1Fig2, ConcurrencyContrast) {
  const auto scenario = workload::paper_scenario(12);

  sim::Trace seq_trace;
  engine::FpgaEngineConfig seq_cfg;
  seq_cfg.trace = &seq_trace;
  engine::XilinxBaselineEngine baseline(scenario.interest, scenario.hazard,
                                        seq_cfg);
  baseline.price(scenario.options);

  sim::Trace df_trace;
  engine::FpgaEngineConfig df_cfg;
  df_cfg.trace = &df_trace;
  engine::InterOptionEngine dataflow(scenario.interest, scenario.hazard,
                                     df_cfg);
  dataflow.price(scenario.options);

  // Fig. 1: strictly sequential -- mean concurrency exactly 1.
  EXPECT_DOUBLE_EQ(seq_trace.mean_concurrency(), 1.0);
  // Fig. 2: dataflow overlap -- strictly greater.
  EXPECT_GT(df_trace.mean_concurrency(), 1.1);
}

TEST(Fig2, InterpolationIsTheBottleneckStage) {
  const auto scenario = workload::paper_scenario(24);
  engine::InterOptionEngine engine(scenario.interest, scenario.hazard, {});
  const auto run = engine.price(scenario.options);
  const auto& stats = engine.last_run();
  // The interp scan is busy nearly the whole run; hazard is far lighter.
  EXPECT_GT(static_cast<double>(stats.interp_busy) /
                static_cast<double>(run.kernel_cycles),
            0.9);
  EXPECT_LT(static_cast<double>(stats.hazard_busy) /
                static_cast<double>(stats.interp_busy),
            0.5);
}

TEST(Fig3, LaneSpeedupSaturatesAtFeedLimit) {
  const auto scenario = workload::paper_scenario(48);
  auto ops_with_lanes = [&](unsigned lanes) {
    engine::FpgaEngineConfig cfg;
    cfg.vector_lanes = lanes;
    engine::VectorisedEngine engine(scenario.interest, scenario.hazard, cfg);
    return engine.price(scenario.options).options_per_second;
  };
  const double l1 = ops_with_lanes(1);
  const double l2 = ops_with_lanes(2);
  const double l6 = ops_with_lanes(6);
  const double l8 = ops_with_lanes(8);
  // Replication helps up to the URAM feed cap (~2x)...
  EXPECT_GT(l2 / l1, 1.7);
  EXPECT_NEAR(l6 / l1, 2.0, 0.25);
  // ...then saturates (paper: 6 lanes "doubled performance", not 6x).
  EXPECT_NEAR(l8 / l6, 1.0, 0.05);
}

TEST(CrossValidation, RestartGapEqualsConfiguredOverhead) {
  // The restart-per-option engine and the free-running engine execute the
  // *same* stage graph; their per-option cycle difference must equal the
  // configured restart handshake plus the per-option pipeline fill/drain
  // the barrier exposes. This cross-validates the simulator's region
  // accounting against its own dataflow execution.
  const auto scenario = workload::paper_scenario(64);
  auto restart = engine::make_engine("dataflow", scenario.interest,
                                     scenario.hazard);
  auto streaming = engine::make_engine(
      "dataflow-interoption", scenario.interest, scenario.hazard);
  const auto r = restart->price(scenario.options);
  const auto s = streaming->price(scenario.options);
  const double gap_per_option =
      static_cast<double>(r.kernel_cycles - s.kernel_cycles) /
      static_cast<double>(scenario.options.size());
  const auto restart_cycles = static_cast<double>(
      fpga::default_cost_model().region_restart_cycles);
  // Fill/drain adds a few hundred cycles on top of the 18k restart.
  EXPECT_GT(gap_per_option, restart_cycles * 0.95);
  EXPECT_LT(gap_per_option, restart_cycles + 2000.0);
}

TEST(CrossValidation, FreeRunningThroughputMatchesBottleneckAnalysis) {
  // Steady-state dataflow throughput == bottleneck stage occupancy: the
  // simulated end cycle must be explained by the interpolation stage's
  // per-token work (curve size x scan II) within a few percent.
  const auto scenario = workload::paper_scenario(48);
  engine::InterOptionEngine engine(scenario.interest, scenario.hazard, {});
  const auto run = engine.price(scenario.options);
  const auto& cost = fpga::default_cost_model();
  const double analytic =
      static_cast<double>(engine.last_run().total_time_points) *
      static_cast<double>(scenario.interest.size() *
                              cost.interpolation_scan_ii +
                          cost.loop_overhead_cycles);
  EXPECT_NEAR(static_cast<double>(run.kernel_cycles), analytic,
              0.05 * analytic);
}

TEST(CrossValidation, BaselineAnalyticModelAgreesWithStageBusyCycles) {
  // The baseline engine's analytic hazard/interp spans must be consistent
  // with what the simulated dataflow graph actually spends on the same
  // kernels (same scan lengths, different II): baseline hazard span
  // = II7/II1 x the graph's hazard busy cycles, minus Listing-1 epilogue
  // differences.
  const auto scenario = workload::paper_scenario(32);
  engine::InterOptionEngine streaming(scenario.interest, scenario.hazard,
                                      {});
  streaming.price(scenario.options);
  const auto graph_hazard =
      static_cast<double>(streaming.last_run().hazard_busy);

  engine::XilinxBaselineEngine baseline(scenario.interest, scenario.hazard);
  double baseline_hazard = 0.0;
  for (const auto& option : scenario.options) {
    for (const auto& span : baseline.option_stage_spans(option)) {
      if (std::string(span.stage) == "default_probability") {
        baseline_hazard += static_cast<double>(span.cycles);
      }
    }
  }
  const auto& cost = fpga::default_cost_model();
  // Graph charges len*1 + epilogue + overhead; baseline charges len*7 +
  // exp. Strip the per-token constants and compare the scan cycles.
  const auto tp = static_cast<double>(streaming.last_run().total_time_points);
  const double graph_scan =
      graph_hazard - tp * static_cast<double>(cost.listing1_epilogue_cycles +
                                              cost.loop_overhead_cycles + 1);
  const double baseline_scan =
      baseline_hazard - tp * static_cast<double>(cost.dexp_latency);
  EXPECT_NEAR(baseline_scan / graph_scan,
              static_cast<double>(cost.baseline_accumulation_ii), 0.35);
}

TEST(Transfer, BulkPcieIsSmallShareOfTotal) {
  const auto scenario = workload::paper_scenario(128);
  for (const char* name :
       {"xilinx-baseline", "dataflow-interoption", "vectorised"}) {
    auto engine =
        engine::make_engine(name, scenario.interest, scenario.hazard);
    const auto run = engine->price(scenario.options);
    // "a small part of the overall execution time" (paper Sec. II-B).
    EXPECT_LT(run.transfer_seconds / run.total_seconds, 0.05) << name;
  }
}

TEST(ResourceStory, PaperConfigurationPacksExactlyFive) {
  engine::MultiEngineConfig cfg;
  engine::MultiEngine probe(workload::paper_interest_curve(),
                            workload::paper_hazard_curve(), cfg);
  const fpga::ResourceEstimator estimator(fpga::alveo_u280());
  EXPECT_EQ(estimator.max_engines(probe.shape()), 5u);
}

TEST(EndToEnd, StressedScenarioAllEnginesAgree) {
  const auto scenario = workload::stressed_scenario(24);
  const cds::ReferencePricer golden(scenario.interest, scenario.hazard);
  for (const char* name :
       {"cpu", "xilinx-baseline", "dataflow-interoption", "vectorised"}) {
    auto engine =
        engine::make_engine(name, scenario.interest, scenario.hazard);
    const auto run = engine->price(scenario.options);
    for (std::size_t i = 0; i < run.results.size(); ++i) {
      EXPECT_LT(relative_difference(run.results[i].spread_bps,
                                    golden.spread_bps(scenario.options[i])),
                1e-9)
          << name;
    }
  }
}

TEST(EndToEnd, SpreadsAreFinanciallyPlausible) {
  // Hazard ~3% humped, recovery 0.2-0.6 => spreads within ~[80, 400] bps.
  const auto scenario = workload::paper_scenario(128);
  engine::VectorisedEngine engine(scenario.interest, scenario.hazard, {});
  const auto run = engine.price(scenario.options);
  for (const auto& r : run.results) {
    EXPECT_GT(r.spread_bps, 50.0);
    EXPECT_LT(r.spread_bps, 500.0);
  }
}

}  // namespace
}  // namespace cdsflow
