#include "engines/registry.hpp"

#include <charconv>

#include "common/error.hpp"
#include "engines/cluster.hpp"
#include "engines/dataflow_engine.hpp"
#include "engines/interoption_engine.hpp"
#include "engines/multi_engine.hpp"
#include "engines/vectorised_engine.hpp"
#include "engines/xilinx_baseline.hpp"

namespace cdsflow::engine {

namespace {

bool parse_suffix_uint(const std::string& s, const std::string& prefix,
                       unsigned& out) {
  if (s.size() <= prefix.size() || s.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  const char* begin = s.data() + prefix.size();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end && out >= 1;
}

}  // namespace

bool parse_cpu_engine_name(const std::string& name, CpuEngineConfig& config) {
  // CPU family, assembled as "cpu[-batch|-vec|-sweep][-risk][-mt[N]]":
  // strip the optional kernel and mode tokens, then parse the thread
  // suffix.
  CpuEngineConfig cfg = config;
  std::string cpu_name = name;
  const auto strip_token = [&cpu_name](const std::string& prefix) {
    if (cpu_name.rfind(prefix, 0) != 0) return false;
    cpu_name = "cpu" + cpu_name.substr(prefix.size());
    return true;
  };
  if (strip_token("cpu-batch")) {
    cfg.batch_kernel = true;
  } else if (strip_token("cpu-vec")) {
    cfg.vector_kernel = true;  // implies batch semantics in CpuEngine
  } else if (strip_token("cpu-sweep")) {
    cfg.sweep_kernel = true;  // implies vector semantics in CpuEngine
  }
  if (strip_token("cpu-risk")) cfg.risk_mode = true;
  unsigned n = 0;
  if (cpu_name == "cpu") {
    cfg.threads = 1;
  } else if (cpu_name == "cpu-mt") {
    cfg.threads = 0;  // all hardware threads
  } else if (parse_suffix_uint(cpu_name, "cpu-mt", n)) {
    cfg.threads = n;
  } else {
    return false;
  }
  config = cfg;
  return true;
}

std::string cpu_engine_name(bool batch_kernel, bool vector_kernel,
                            bool sweep_kernel, bool risk_mode,
                            unsigned threads) {
  std::string name = "cpu";
  if (sweep_kernel) {
    name += "-sweep";
  } else if (vector_kernel) {
    name += "-vec";
  } else if (batch_kernel) {
    name += "-batch";
  }
  if (risk_mode) name += "-risk";
  if (threads == 0) {
    name += "-mt";
  } else if (threads > 1) {
    name += "-mt" + std::to_string(threads);
  }
  return name;
}

std::string cpu_engine_name(bool batch_kernel, bool vector_kernel,
                            bool risk_mode, unsigned threads) {
  return cpu_engine_name(batch_kernel, vector_kernel, /*sweep_kernel=*/false,
                         risk_mode, threads);
}

std::string cpu_engine_name(bool batch_kernel, bool risk_mode,
                            unsigned threads) {
  return cpu_engine_name(batch_kernel, /*vector_kernel=*/false,
                         /*sweep_kernel=*/false, risk_mode, threads);
}

std::unique_ptr<Engine> make_engine(const std::string& name,
                                    const cds::TermStructure& interest,
                                    const cds::TermStructure& hazard,
                                    const FpgaEngineConfig& fpga_config,
                                    const CpuEngineConfig& cpu_config) {
  {
    CpuEngineConfig cfg = cpu_config;
    if (parse_cpu_engine_name(name, cfg)) {
      return std::make_unique<CpuEngine>(interest, hazard, cfg);
    }
  }
  unsigned n = 0;
  if (name == "xilinx-baseline") {
    return std::make_unique<XilinxBaselineEngine>(interest, hazard,
                                                  fpga_config);
  }
  if (name == "dataflow") {
    return std::make_unique<DataflowEngine>(interest, hazard, fpga_config);
  }
  if (name == "dataflow-interoption") {
    return std::make_unique<InterOptionEngine>(interest, hazard, fpga_config);
  }
  if (name == "vectorised") {
    return std::make_unique<VectorisedEngine>(interest, hazard, fpga_config);
  }
  if (parse_suffix_uint(name, "multi-", n)) {
    MultiEngineConfig cfg;
    cfg.engine = fpga_config;
    cfg.n_engines = n;
    return std::make_unique<MultiEngine>(interest, hazard, cfg);
  }
  // "cluster-<cards>x<engines>", e.g. "cluster-4x5".
  if (name.rfind("cluster-", 0) == 0) {
    const auto x = name.find('x', 8);
    if (x != std::string::npos) {
      unsigned cards = 0, engines = 0;
      if (parse_suffix_uint(name.substr(0, x), "cluster-", cards) &&
          parse_suffix_uint("e" + name.substr(x + 1), "e", engines)) {
        ClusterConfig cfg;
        cfg.n_cards = cards;
        cfg.per_card.engine = fpga_config;
        cfg.per_card.n_engines = engines;
        return std::make_unique<ClusterEngine>(interest, hazard, cfg);
      }
    }
  }
  throw Error("unknown engine name '" + name +
              "'; known: cpu[-batch|-vec|-sweep][-risk][-mt[N]], "
              "xilinx-baseline, dataflow, dataflow-interoption, vectorised, "
              "multi-N, cluster-MxN");
}

std::vector<std::string> engine_names() {
  return {"cpu",      "cpu-mt",      "cpu-batch", "cpu-batch-mt",
          "cpu-vec",  "cpu-vec-mt",  "cpu-sweep", "cpu-sweep-mt",
          "cpu-risk", "cpu-batch-risk", "cpu-vec-risk",
          "xilinx-baseline", "dataflow", "dataflow-interoption",
          "vectorised", "multi-5"};
}

}  // namespace cdsflow::engine
