/// \file interconnect.hpp
/// Host<->card data movement model (PCIe + XRT).
///
/// All paper results "include the overhead of data transfer via PCIe"
/// (Sec. II-B) and note it is a small part of total runtime; the engines add
/// these costs to every run so the reproduction keeps the same accounting.
/// The model covers:
///   * bulk transfers (curves up, options up, spreads back) over PCIe gen3,
///   * the per-invocation XRT enqueue/ap_ctrl handshake, and
///   * DMA arbitration when several engines share the card infrastructure.

#pragma once

#include <cstdint>

#include "fpga/hls_cost_model.hpp"

namespace cdsflow::fpga {

struct InterconnectConfig {
  /// Effective host->card bandwidth (PCIe gen3 x16 delivers ~12 GB/s of its
  /// 15.75 GB/s raw after protocol overhead).
  double pcie_bandwidth_bytes_per_s = 12.0e9;
  /// Fixed software + DMA setup latency per bulk transfer.
  double transfer_latency_s = 10.0e-6;
  /// XRT kernel enqueue + completion round trip (see
  /// HlsCostModel::region_restart_cycles for the calibrated kernel-side
  /// value; this is the same cost expressed in seconds).
  double kernel_dispatch_s = 60.0e-6;
  /// Per-option arbitration penalty per extra engine sharing the DMA path.
  double dma_arbitration_s_per_option_per_extra_engine = 0.4e-6;
};

class Interconnect {
 public:
  explicit Interconnect(InterconnectConfig config = {});

  const InterconnectConfig& config() const { return config_; }

  /// Seconds to move `bytes` host->card (or back) as one bulk transfer.
  double transfer_seconds(std::uint64_t bytes) const;

  /// Seconds of host-side overhead for `invocations` kernel dispatches.
  double dispatch_seconds(std::uint64_t invocations) const;

  /// Extra seconds added to a batch of `n_options` when `n_engines` share
  /// the card (zero for a single engine).
  double arbitration_seconds(std::uint64_t n_options,
                             unsigned n_engines) const;

 private:
  InterconnectConfig config_;
};

}  // namespace cdsflow::fpga
