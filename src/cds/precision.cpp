#include "cds/precision.hpp"

#include <cmath>

#include "cds/hazard.hpp"
#include "cds/legs.hpp"
#include "cds/schedule.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace cdsflow::cds {

const char* to_string(Precision precision) {
  switch (precision) {
    case Precision::kDouble:
      return "fp64";
    case Precision::kSingle:
      return "fp32";
    case Precision::kMixed:
      return "fp32/fp64-acc";
  }
  return "unknown";
}

namespace {

/// The full model with fp32 arithmetic; `AccT` selects the accumulator
/// width (float for kSingle, double for kMixed). The structure mirrors
/// price_breakdown exactly so differences are purely arithmetic precision.
template <typename AccT>
double spread_single_precision(const TermStructure& interest,
                               const TermStructure& hazard,
                               const CdsOption& option,
                               std::vector<TimePoint>& scratch) {
  scratch.clear();
  make_schedule(option, scratch);

  AccT premium = 0, accrual = 0, payoff = 0;
  float q_prev = 1.0f;
  for (const TimePoint& tp : scratch) {
    const auto t = static_cast<float>(tp.t);
    const auto dt = static_cast<float>(tp.dt);

    // Integrated hazard, fp32 scan (same element order as the fp64 scan).
    float lambda = 0.0f;
    for (std::size_t j = 0; j < hazard.size(); ++j) {
      const auto seg_begin =
          static_cast<float>(j == 0 ? 0.0 : hazard.time(j - 1));
      const auto seg_end = static_cast<float>(hazard.time(j));
      const float lo = std::min(seg_begin, t);
      const float hi = std::min(seg_end, t);
      lambda += static_cast<float>(hazard.value(j)) *
                std::max(0.0f, hi - lo);
    }
    if (t > static_cast<float>(hazard.max_time())) {
      lambda += static_cast<float>(hazard.values().back()) *
                (t - static_cast<float>(hazard.max_time()));
    }
    const float q = std::exp(-lambda);
    const float dq = q_prev - q;
    q_prev = q;

    // Discount factor, fp32 interpolation + exp.
    const auto r = static_cast<float>(interest.interpolate(tp.t));
    const float d = std::exp(-r * t);

    premium += static_cast<AccT>(d * q * dt);
    accrual += static_cast<AccT>(0.5f * d * dq * dt);
    payoff += static_cast<AccT>(d * dq);
  }

  const auto recovery = static_cast<float>(option.recovery_rate);
  const AccT annuity = premium + accrual;
  CDSFLOW_EXPECT(annuity > 0, "risky annuity must be positive");
  return static_cast<double>(
      static_cast<AccT>(kBasisPointsPerUnit) *
      static_cast<AccT>(1.0f - recovery) * payoff / annuity);
}

}  // namespace

double spread_bps_with_precision(const TermStructure& interest,
                                 const TermStructure& hazard,
                                 const CdsOption& option,
                                 Precision precision) {
  std::vector<TimePoint> scratch;
  return spread_bps_with_precision(interest, hazard, option, precision,
                                   scratch);
}

double spread_bps_with_precision(const TermStructure& interest,
                                 const TermStructure& hazard,
                                 const CdsOption& option, Precision precision,
                                 std::vector<TimePoint>& scratch) {
  option.validate();
  switch (precision) {
    case Precision::kDouble:
      return price_breakdown(interest, hazard, option, scratch).spread_bps;
    case Precision::kSingle:
      return spread_single_precision<float>(interest, hazard, option,
                                            scratch);
    case Precision::kMixed:
      return spread_single_precision<double>(interest, hazard, option,
                                             scratch);
  }
  throw Error("unknown precision mode");
}

PrecisionErrorReport evaluate_precision(const TermStructure& interest,
                                        const TermStructure& hazard,
                                        const std::vector<CdsOption>& book,
                                        Precision precision) {
  CDSFLOW_EXPECT(!book.empty(), "precision evaluation requires options");
  PrecisionErrorReport report;
  report.precision = precision;
  double abs_sum = 0.0;
  std::vector<TimePoint> scratch;
  for (const auto& option : book) {
    const double exact =
        price_breakdown(interest, hazard, option, scratch).spread_bps;
    const double approx =
        spread_bps_with_precision(interest, hazard, option, precision,
                                  scratch);
    const double abs_err = std::fabs(approx - exact);
    abs_sum += abs_err;
    report.max_abs_error_bps = std::max(report.max_abs_error_bps, abs_err);
    report.max_rel_error =
        std::max(report.max_rel_error, relative_difference(approx, exact));
  }
  report.mean_abs_error_bps = abs_sum / static_cast<double>(book.size());
  return report;
}

}  // namespace cdsflow::cds
