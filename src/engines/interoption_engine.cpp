#include "engines/interoption_engine.hpp"

#include "common/error.hpp"
#include "hls/dataflow.hpp"

namespace cdsflow::engine {

InterOptionEngine::InterOptionEngine(cds::TermStructure interest,
                                     cds::TermStructure hazard,
                                     FpgaEngineConfig config)
    : interest_(std::move(interest)),
      hazard_(std::move(hazard)),
      config_(config) {
  interest_.validate();
  hazard_.validate();
}

PricingRun InterOptionEngine::price(
    const std::vector<cds::CdsOption>& options) {
  CDSFLOW_EXPECT(!options.empty(), "price() requires options");
  PricingRun run;

  sim::Simulation sim;
  const auto handles = build_cds_dataflow_graph(
      sim, interest_, hazard_, std::span(options.data(), options.size()),
      config_, GraphVariant::kOptimised);
  const auto sim_result = sim.run();
  run.results = handles.sink->collected();
  CDSFLOW_ASSERT(run.results.size() == options.size(),
                 "free-running region must produce one spread per option");

  last_run_.total_time_points = handles.total_time_points;
  last_run_.hazard_busy = handles.hazard_unit->busy_cycles();
  last_run_.interp_busy = handles.interp_unit->busy_cycles();
  last_run_.option_latency_cycles = handles.option_latencies();

  run.kernel_cycles =
      sim_result.end_cycle + config_.cost.region_initial_start_cycles;
  run.invocations = 1;
  run.kernel_seconds =
      static_cast<double>(run.kernel_cycles) / config_.clock_hz();
  if (config_.include_transfer) {
    const fpga::Interconnect pcie(config_.interconnect);
    run.transfer_seconds = pcie.transfer_seconds(
        batch_traffic(interest_.size(), options.size()).total());
  }
  run.finalise(options.size());
  return run;
}

}  // namespace cdsflow::engine
