/// \file coordinator.hpp
/// Cluster coordinator: shard a book across N worker processes over
/// sockets, merge the shard results deterministically.
///
/// Construction connects to every configured worker (retrying until the
/// per-node connect timeout), probes each with NODE_PROBE -- measuring the
/// link round trip and collecting the worker's self-reported affine fit --
/// and builds the heterogeneous node table engine::plan_cluster() plans
/// over. price() cuts the book into contiguous shards (runtime::plan_shards,
/// the same contiguity that makes the in-process merge deterministic),
/// assigns them to nodes with the planner's earliest-finish schedule, and
/// drives one dispatch thread per node; results are merged by concatenating
/// shard rows in shard (= submission) order, so the merged values are
/// bit-identical to a single-process run of the same engine whatever node
/// priced which shard (see docs/CLUSTER.md for the full contract).
///
/// Failure semantics: a worker that drops its connection or times out
/// mid-run is declared dead for the run; its unfinished shards (including
/// the one in flight) move to an orphan queue that surviving nodes drain
/// after their own assignment. A reject frame from a worker is a
/// configuration error and aborts the run; losing every node with shards
/// outstanding does too.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cds/types.hpp"
#include "engines/engine.hpp"
#include "engines/planner.hpp"
#include "net/client.hpp"

namespace cdsflow::cluster {

/// Where one worker listens and how its link is modelled.
struct NodeSpec {
  /// Non-empty: connect over this unix-domain socket path.
  std::string unix_path;
  /// Used when unix_path is empty.
  std::string host = "127.0.0.1";
  std::uint16_t tcp_port = 0;
  /// Construction retries the connect until this deadline (covers workers
  /// still starting up), then throws.
  double connect_timeout_seconds = 5.0;
  /// Link model. The latency term is replaced by the measured probe round
  /// trip (min over repeats, halved) unless measure_latency is false; the
  /// bandwidth term is configuration.
  engine::ClusterLinkModel link;
  bool measure_latency = true;

  std::string label() const {
    return unix_path.empty() ? host + ":" + std::to_string(tcp_port)
                             : unix_path;
  }
};

struct CoordinatorConfig {
  std::vector<NodeSpec> nodes;
  /// Options per shard; 0 lets plan_cluster() pick the best size.
  std::size_t shard_size = 0;
  double deadline_seconds = 3600.0;
  /// Risk-mode shards (workers must run a risk engine).
  bool risk = false;
  /// NODE_PROBE round trips per node at construction (min RTT is kept).
  unsigned probe_repeats = 3;
  /// A node that takes longer than this to answer one shard is declared
  /// dead for the run and its shards are resubmitted.
  double response_timeout_seconds = 300.0;
};

/// Per-shard accounting, in shard (= submission) order.
struct ClusterShardOutcome {
  std::size_t index = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  /// Node that finally priced the shard.
  std::size_t node = 0;
  /// Worker-reported engine time for the shard.
  double engine_seconds = 0.0;
  /// Modelled link charge for the shard's request + response bytes.
  double link_seconds = 0.0;
  /// True when the shard had to be resubmitted after a node loss.
  bool resubmitted = false;
};

struct ClusterRun {
  /// Merged run, rows in submission order. total_seconds is the modelled
  /// concurrent makespan (per node: sum of its shards' engine + link time;
  /// max over nodes) and options_per_second the modelled throughput --
  /// the same modelled-vs-wall split PortfolioRuntime reports. The CS01
  /// ladder does not travel on the wire, so cs01_ladder stays empty even
  /// in risk mode.
  engine::PricingRun run;
  std::vector<ClusterShardOutcome> shards;

  /// The plan the dispatch started from (before any failure rerouting).
  engine::ClusterPlanEntry plan;
  std::size_t shard_size = 0;
  std::size_t n_nodes = 0;

  double wall_seconds = 0.0;
  double wall_options_per_second = 0.0;

  std::size_t resubmissions = 0;
  std::size_t nodes_lost = 0;
};

class ClusterCoordinator {
 public:
  /// Connects to and probes every node. Throws cdsflow::Error when a node
  /// cannot be reached within its connect timeout or answers the probe
  /// with anything but a node-info reply.
  explicit ClusterCoordinator(CoordinatorConfig config);

  ClusterCoordinator(const ClusterCoordinator&) = delete;
  ClusterCoordinator& operator=(const ClusterCoordinator&) = delete;

  /// The probed node table (address, fit, measured link), in config order.
  const std::vector<engine::ClusterNode>& nodes() const { return nodes_; }

  /// The plan price() would execute for a book of `n_options`.
  engine::ClusterPlanEntry plan(std::size_t n_options) const;

  /// Prices the book across the cluster. An empty book returns an empty
  /// run. Throws cdsflow::Error when a worker rejects a shard or every
  /// node is lost with shards outstanding.
  ClusterRun price(const std::vector<cds::CdsOption>& options);

 private:
  CoordinatorConfig config_;
  std::vector<net::Client> clients_;
  std::vector<engine::ClusterNode> nodes_;
};

}  // namespace cdsflow::cluster
