/// \file curves.hpp
/// Synthetic term-structure generators.
///
/// SUBSTITUTION NOTE: the paper uses "1024 interest and hazard rates" for
/// every experiment but does not publish the market data behind them (such
/// curves are commercially licensed). These generators produce curves with
/// the same *shape class* a stripped USD curve or CDS-bootstrapped hazard
/// curve exhibits (level + slope + hump, small deterministic noise), at any
/// point count, so the engines exercise identical code paths: the cost of
/// every kernel depends only on point count and knot spacing, never on the
/// rate values themselves.

#pragma once

#include <cstddef>
#include <cstdint>

#include "cds/curve.hpp"

namespace cdsflow::workload {

enum class CurveShape {
  /// Constant rate (closed-form checks use this).
  kFlat,
  /// Linearly rising with tenor (normal yield-curve regime).
  kUpwardSloping,
  /// Nelson-Siegel-style hump peaking mid-curve.
  kHumped,
  /// Inverted front end + elevated level (stressed credit regime).
  kStressed,
};

const char* to_string(CurveShape shape);

struct CurveSpec {
  std::size_t points = 1024;       ///< paper: 1024 for all experiments
  double span_years = 30.0;        ///< last knot tenor
  double base_rate = 0.02;         ///< level (2% interest / 2% hazard)
  CurveShape shape = CurveShape::kUpwardSloping;
  /// Deterministic per-knot jitter amplitude as a fraction of base_rate
  /// (0 disables; keeps knots realistic without randomising experiment
  /// cost).
  double jitter = 0.05;
  std::uint64_t seed = 1;
};

/// Generates a curve per the spec. Knots are evenly spaced on
/// (0, span_years]; values are positive.
cds::TermStructure make_curve(const CurveSpec& spec);

/// Convenience: the interest-rate curve used by the paper scenario.
cds::TermStructure paper_interest_curve(std::size_t points = 1024,
                                        std::uint64_t seed = 11);

/// Convenience: the hazard-rate curve used by the paper scenario.
cds::TermStructure paper_hazard_curve(std::size_t points = 1024,
                                      std::uint64_t seed = 23);

}  // namespace cdsflow::workload
