/// \file bench_ablation_clock.cpp
/// Ablation: kernel clock frequency.
///
/// The paper does not report its kernel clock; the reproduction assumes the
/// 300 MHz Vitis default (DESIGN.md §5). This sweep shows how the absolute
/// Table I rows scale with that single assumption -- cycle counts are
/// clock-invariant, so options/s scales linearly until the (modelled) PCIe
/// floor -- and confirms 300 MHz is the value that lands on the paper's
/// numbers.
///
/// Usage: bench_ablation_clock [n_options]

#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "engines/vectorised_engine.hpp"
#include "engines/xilinx_baseline.hpp"
#include "report/paper.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 192;

  const auto scenario = workload::paper_scenario(n_options);
  std::cout << "== Ablation: kernel clock (reproduction assumes 300 MHz) =="
            << "\n\n";

  report::Table table("Throughput vs kernel clock");
  table.set_columns({"Clock (MHz)", "Library engine (opts/s)",
                     "Vectorised (opts/s)", "Vectorised vs paper"});
  for (const double mhz : {150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0}) {
    engine::FpgaEngineConfig cfg;
    cfg.cost.kernel_clock_hz = mhz * 1e6;

    engine::XilinxBaselineEngine baseline(scenario.interest, scenario.hazard,
                                          cfg);
    const auto base_run = baseline.price(scenario.options);
    engine::VectorisedEngine vectorised(scenario.interest, scenario.hazard,
                                        cfg);
    const auto vec_run = vectorised.price(scenario.options);

    table.add_row(
        {fixed(mhz, 0), with_thousands(base_run.options_per_second, 0),
         with_thousands(vec_run.options_per_second, 0),
         format_percent_delta(vec_run.options_per_second,
                              report::paper::kVectorisedOptsPerSec)});
  }
  std::cout << table.render_text()
            << "\ncycle counts are clock-invariant; 300 MHz (the Vitis "
               "default kernel clock) reproduces the paper's absolute "
               "rows.\n";
  return 0;
}
