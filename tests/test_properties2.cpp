/// \file test_properties2.cpp
/// Second property-test wave: calibration round trips across curve regimes,
/// precision behaviour across scenarios, extreme-contract robustness, and
/// cross-module consistency sweeps.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cds/bootstrap.hpp"
#include "cds/legs.hpp"
#include "cds/precision.hpp"
#include "cds/pricer.hpp"
#include "cds/risk.hpp"
#include "common/stats.hpp"
#include "engines/registry.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"
#include "workload/scenario.hpp"

namespace cdsflow {
namespace {

// ---------------------------------------------------------------------------
// Property: bootstrap(price(curve)) == curve across rate regimes and
// recovery assumptions.
// ---------------------------------------------------------------------------

using RegimeParam = std::tuple<workload::CurveShape, double>;

class BootstrapRoundTrip : public ::testing::TestWithParam<RegimeParam> {};

TEST_P(BootstrapRoundTrip, RecoversGeneratingCurve) {
  const auto& [shape, recovery] = GetParam();
  workload::CurveSpec interest_spec;
  interest_spec.points = 128;
  interest_spec.shape = shape;
  interest_spec.seed = 5;
  const auto interest = workload::make_curve(interest_spec);

  const std::vector<double> tenors = {1.0, 3.0, 5.0, 10.0};
  const std::vector<double> rates = {0.015, 0.028, 0.022, 0.04};
  const cds::TermStructure truth(tenors, rates);

  cds::BootstrapOptions options;
  options.recovery_rate = recovery;
  std::vector<cds::SpreadQuote> quotes;
  for (const double tenor : tenors) {
    const cds::CdsOption contract{.id = 0,
                                  .maturity_years = tenor,
                                  .payment_frequency = 4.0,
                                  .recovery_rate = recovery};
    quotes.push_back(
        {tenor, cds::price_breakdown(interest, truth, contract).spread_bps});
  }
  const auto result = cds::bootstrap_hazard_curve(interest, quotes, options);
  for (std::size_t i = 0; i < tenors.size(); ++i) {
    EXPECT_NEAR(result.hazard.value(i), rates[i], 1e-6)
        << "segment " << i << " shape " << workload::to_string(shape);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RegimesAndRecoveries, BootstrapRoundTrip,
    ::testing::Combine(::testing::Values(workload::CurveShape::kFlat,
                                         workload::CurveShape::kUpwardSloping,
                                         workload::CurveShape::kHumped,
                                         workload::CurveShape::kStressed),
                       ::testing::Values(0.2, 0.4, 0.6)));

// ---------------------------------------------------------------------------
// Property: fp32 pricing stays within a small fraction of a bp across
// scenarios and frequencies.
// ---------------------------------------------------------------------------

class PrecisionAcrossScenarios
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrecisionAcrossScenarios, SingleStaysSubBp) {
  const auto scenario = workload::paper_scenario(24, GetParam());
  const auto report = cds::evaluate_precision(
      scenario.interest, scenario.hazard, scenario.options,
      cds::Precision::kSingle);
  EXPECT_LT(report.max_abs_error_bps, 0.5) << "seed " << GetParam();
}

TEST_P(PrecisionAcrossScenarios, StressedRegimeStillSubBp) {
  const auto scenario = workload::stressed_scenario(24, GetParam());
  const auto report = cds::evaluate_precision(
      scenario.interest, scenario.hazard, scenario.options,
      cds::Precision::kSingle);
  EXPECT_LT(report.max_abs_error_bps, 1.5) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrecisionAcrossScenarios,
                         ::testing::Values(1u, 99u, 4242u));

// ---------------------------------------------------------------------------
// Property: engines survive extreme but valid contracts and still agree
// with the golden model.
// ---------------------------------------------------------------------------

class ExtremeContracts : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtremeContracts, EnginesAgreeOnEdgeBook) {
  const auto base = workload::smoke_scenario(1, 1);
  // Hand-built edge cases: tiny/huge maturities, odd frequencies, extreme
  // recoveries.
  std::vector<cds::CdsOption> book = {
      {.id = 0, .maturity_years = 0.01, .payment_frequency = 4.0, .recovery_rate = 0.4},
      {.id = 1, .maturity_years = 50.0, .payment_frequency = 1.0, .recovery_rate = 0.4},
      {.id = 2, .maturity_years = 5.0, .payment_frequency = 0.5, .recovery_rate = 0.4},
      {.id = 3, .maturity_years = 5.0, .payment_frequency = 52.0, .recovery_rate = 0.4},
      {.id = 4, .maturity_years = 5.0, .payment_frequency = 4.0, .recovery_rate = 0.0},
      {.id = 5, .maturity_years = 5.0, .payment_frequency = 4.0, .recovery_rate = 0.99},
      {.id = 6, .maturity_years = 0.26, .payment_frequency = 4.0, .recovery_rate = 0.3},
  };
  const cds::ReferencePricer golden(base.interest, base.hazard);
  auto engine = engine::make_engine(GetParam(), base.interest, base.hazard);
  const auto run = engine->price(book);
  ASSERT_EQ(run.results.size(), book.size());
  for (std::size_t i = 0; i < book.size(); ++i) {
    EXPECT_LT(relative_difference(run.results[i].spread_bps,
                                  golden.spread_bps(book[i])),
              1e-9)
        << "option " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, ExtremeContracts,
                         ::testing::Values("cpu", "xilinx-baseline",
                                           "dataflow-interoption",
                                           "vectorised"),
                         [](const auto& info) {
                           auto name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Property: risk numbers are consistent with direct repricing across the
// contract grid (first-order Taylor check).
// ---------------------------------------------------------------------------

class RiskConsistency
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RiskConsistency, Cs01PredictsSmallBumpRepricing) {
  const auto& [maturity, recovery] = GetParam();
  const auto interest = workload::paper_interest_curve(128);
  const auto hazard = workload::paper_hazard_curve(128);
  const cds::CdsOption option{.id = 0,
                              .maturity_years = maturity,
                              .payment_frequency = 4.0,
                              .recovery_rate = recovery};
  const auto s = cds::compute_sensitivities(interest, hazard, option);
  // Reprice under a +2 bp parallel bump and compare with the linear
  // prediction.
  const double bump = 2e-4;
  const double repriced =
      cds::price_breakdown(interest, cds::parallel_bump(hazard, bump), option)
          .spread_bps;
  const double predicted = s.spread_bps + s.cs01 * (bump / 1e-4);
  EXPECT_NEAR(repriced, predicted, 0.02 * std::fabs(s.cs01) + 1e-6)
      << "maturity " << maturity << " recovery " << recovery;
}

INSTANTIATE_TEST_SUITE_P(
    ContractGrid, RiskConsistency,
    ::testing::Combine(::testing::Values(1.0, 5.0, 10.0),
                       ::testing::Values(0.0, 0.4, 0.7)));

// ---------------------------------------------------------------------------
// Property: paper-scenario throughput ordering is invariant to the book
// composition (frequencies, maturity ranges).
// ---------------------------------------------------------------------------

struct BookShape {
  double maturity_min;
  double maturity_max;
  double frequency;
};

class OrderingAcrossBooks : public ::testing::TestWithParam<int> {};

TEST_P(OrderingAcrossBooks, GenerationsOrderedForAnyBookShape) {
  static const BookShape shapes[] = {
      {0.5, 2.0, 12.0},  // short-dated, monthly
      {5.0, 10.0, 4.0},  // long-dated, quarterly
      {1.0, 10.0, 1.0},  // annual premiums
  };
  const auto& shape = shapes[GetParam()];
  workload::PortfolioSpec spec;
  spec.count = 12;
  spec.maturity_min_years = shape.maturity_min;
  spec.maturity_max_years = shape.maturity_max;
  spec.frequencies = {shape.frequency};
  spec.frequency_weights = {1.0};
  spec.seed = 1000 + static_cast<std::uint64_t>(GetParam());
  const auto book = workload::make_portfolio(spec);
  const auto interest = workload::paper_interest_curve();
  const auto hazard = workload::paper_hazard_curve();

  auto cycles = [&](const char* name) {
    return engine::make_engine(name, interest, hazard)
        ->price(book)
        .kernel_cycles;
  };
  const auto baseline = cycles("xilinx-baseline");
  const auto dataflow = cycles("dataflow");
  const auto interoption = cycles("dataflow-interoption");
  const auto vectorised = cycles("vectorised");
  EXPECT_LT(dataflow, baseline);
  EXPECT_LT(interoption, dataflow);
  EXPECT_LT(vectorised, interoption);
}

INSTANTIATE_TEST_SUITE_P(BookShapes, OrderingAcrossBooks,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace cdsflow
