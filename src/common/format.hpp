/// \file format.hpp
/// Human-readable formatting helpers shared by the report module, benches and
/// examples: engineering-unit numbers, thousands separators, durations, and
/// rates. Kept dependency-free (no std::format requirement on older
/// toolchains).

#pragma once

#include <cstdint>
#include <string>

namespace cdsflow {

/// "1234567.8" -> "1,234,567.8" (also handles negatives).
std::string with_thousands(double value, int decimals = 2);

/// Fixed-point with the given number of decimals, no separators.
std::string fixed(double value, int decimals = 2);

/// Scientific-ish compact form for wide-ranging magnitudes: chooses between
/// fixed and exponent notation.
std::string compact(double value);

/// Nanoseconds to a human-readable duration ("1.25 ms", "3.4 s").
std::string format_duration_ns(double ns);

/// Cycles at a clock frequency to a duration string.
std::string format_cycles(std::uint64_t cycles, double clock_hz);

/// "27675.7 options/s" style rate string.
std::string format_rate(double per_second, const std::string& unit);

/// Percentage with sign, e.g. "+7.3%"; used in paper-vs-measured columns.
std::string format_percent_delta(double measured, double reference);

/// Left/right pads `s` with spaces to `width` (no truncation).
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace cdsflow
