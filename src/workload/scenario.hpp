/// \file scenario.hpp
/// Named end-to-end workloads: curves + portfolio + description.
///
/// `paper_scenario` is the workload every table/figure bench runs: 1024
/// interest and 1024 hazard rates (paper Sec. II-B) with the calibrated
/// option mix. Other scenarios feed the examples and property tests.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cds/curve.hpp"
#include "cds/types.hpp"

namespace cdsflow::workload {

struct Scenario {
  std::string name;
  std::string description;
  cds::TermStructure interest;
  cds::TermStructure hazard;
  std::vector<cds::CdsOption> options;
};

/// The paper's experimental setup: 1024+1024 rates, `n_options` contracts.
/// The paper does not state its batch size; benches default to a size large
/// enough to amortise one-time costs the same way (>= several hundred).
Scenario paper_scenario(std::size_t n_options = 1024, std::uint64_t seed = 42);

/// Small smoke scenario for tests (fast: 64 curve points, few options).
Scenario smoke_scenario(std::size_t n_options = 16, std::uint64_t seed = 7);

/// Stressed-credit scenario for the examples (elevated hazards, mixed
/// frequencies including monthly).
Scenario stressed_scenario(std::size_t n_options = 256,
                           std::uint64_t seed = 1234);

}  // namespace cdsflow::workload
