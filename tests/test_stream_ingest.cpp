/// \file test_stream_ingest.cpp
/// The streaming ingest runtime: bounded-queue backpressure (blocking vs
/// drop-oldest, both counted), micro-batch flush policy on a fake clock,
/// deterministic merge of out-of-order batch completions, and end-to-end
/// equivalence of the concurrent stream with a serial replay -- hazard-quote
/// updates included.

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "cds/batch_pricer.hpp"
#include "cds/stream_pricer.hpp"
#include "common/error.hpp"
#include "runtime/ingest_queue.hpp"
#include "runtime/stream_runtime.hpp"
#include "workload/curves.hpp"
#include "workload/feed.hpp"

namespace cdsflow {
namespace {

using runtime::BackpressurePolicy;
using runtime::IngestQueue;
using runtime::MicroBatcher;
using runtime::QuoteEvent;
using runtime::StreamClock;

cds::TermStructure test_interest() {
  return workload::paper_interest_curve(64, 11);
}
cds::TermStructure test_hazard() { return workload::paper_hazard_curve(64, 23); }

cds::CdsOption option_with_id(std::int32_t id) {
  cds::CdsOption option;
  option.id = id;
  option.maturity_years = 5.0;
  return option;
}

// --- ingest queue -----------------------------------------------------------

TEST(IngestQueue, BlockPolicyIsLosslessAndCountsWaits) {
  IngestQueue queue(2, BackpressurePolicy::kBlock);
  std::thread producer([&queue] {
    for (std::int32_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(queue.push(runtime::option_event(option_with_id(i))));
    }
    queue.close();
  });
  // Let the producer actually hit the capacity wall before draining.
  for (int spin = 0; spin < 1000 && queue.stats().blocked_pushes == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<QuoteEvent> events;
  while (auto event = queue.pop()) events.push_back(*event);
  producer.join();

  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].sequence, i);
    EXPECT_EQ(events[i].option.id, static_cast<std::int32_t>(i));
  }
  const auto stats = queue.stats();
  EXPECT_EQ(stats.accepted, 6u);
  EXPECT_EQ(stats.dropped_oldest, 0u);
  EXPECT_GE(stats.blocked_pushes, 1u);
  EXPECT_EQ(stats.high_water, 2u);
  EXPECT_TRUE(queue.drained());
}

TEST(IngestQueue, BlockedPushChargesWaitToIngestLatency) {
  // Regression: the ingest stamp used to be taken *after* the kBlock
  // capacity wait, so time an event spent blocked by backpressure was
  // invisible to ingest-to-result latency and deadline accounting. The
  // stamp is now taken on entry to push(): with a capacity-1 queue and a
  // deliberately slow consumer, the blocked event's latency must include
  // the time it spent parked.
  IngestQueue queue(1, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.push(runtime::option_event(option_with_id(0))));
  std::thread producer([&queue] {
    ASSERT_TRUE(queue.push(runtime::option_event(option_with_id(1))));
  });
  // Wait until the producer is provably parked on the full queue.
  for (int spin = 0; spin < 2000 && queue.stats().blocked_pushes == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(queue.stats().blocked_pushes, 1u);
  // Slow consumer: hold the queue full while the producer stays blocked.
  const auto blocked_for = std::chrono::milliseconds(50);
  std::this_thread::sleep_for(blocked_for);
  ASSERT_TRUE(queue.pop().has_value());  // frees space, releases producer
  producer.join();

  const auto blocked = queue.pop();
  ASSERT_TRUE(blocked.has_value());
  EXPECT_EQ(blocked->option.id, 1);
  const auto latency = StreamClock::now() - blocked->ingest;
  // Pre-fix this measured ~0 (stamped after the wait); post-fix it covers
  // the whole blocked interval. Allow generous slack under sanitizers.
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(latency),
            blocked_for - std::chrono::milliseconds(5));
}

TEST(IngestQueue, DropOldestEvictsStalestAndCounts) {
  IngestQueue queue(4, BackpressurePolicy::kDropOldest);
  for (std::int32_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(queue.push(runtime::option_event(option_with_id(i))));
  }
  EXPECT_EQ(queue.size(), 4u);
  const auto stats = queue.stats();
  EXPECT_EQ(stats.accepted, 10u);
  EXPECT_EQ(stats.dropped_oldest, 6u);
  EXPECT_EQ(stats.blocked_pushes, 0u);

  queue.close();
  // The survivors are the newest four, still in ingest order.
  for (std::int32_t want = 6; want < 10; ++want) {
    const auto event = queue.pop();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->option.id, want);
    EXPECT_EQ(event->sequence, static_cast<std::uint64_t>(want));
  }
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_TRUE(queue.drained());
}

TEST(IngestQueue, CloseRejectsPushesAndDrains) {
  IngestQueue queue(8, BackpressurePolicy::kBlock);
  EXPECT_TRUE(queue.push(runtime::option_event(option_with_id(0))));
  queue.close();
  EXPECT_FALSE(queue.push(runtime::option_event(option_with_id(1))));
  EXPECT_EQ(queue.stats().rejected_closed, 1u);
  EXPECT_FALSE(queue.drained());  // one event still queued
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.drained());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(IngestQueue, PopForTimesOutOnEmptyOpenQueue) {
  IngestQueue queue(4, BackpressurePolicy::kBlock);
  EXPECT_FALSE(queue.pop_for(std::chrono::milliseconds(1)).has_value());
  EXPECT_FALSE(queue.drained());  // timed out, not drained
}

TEST(IngestQueue, RejectsZeroCapacity) {
  EXPECT_THROW(IngestQueue(0, BackpressurePolicy::kBlock), Error);
}

TEST(IngestQueue, PolicyNamesRoundTrip) {
  EXPECT_EQ(runtime::parse_backpressure_policy("block"),
            BackpressurePolicy::kBlock);
  EXPECT_EQ(runtime::parse_backpressure_policy("drop-oldest"),
            BackpressurePolicy::kDropOldest);
  EXPECT_STREQ(to_string(BackpressurePolicy::kDropOldest), "drop-oldest");
  EXPECT_THROW(runtime::parse_backpressure_policy("spill"), Error);
}

// --- micro-batcher (fake clock) ---------------------------------------------

QuoteEvent event_at(StreamClock::time_point ingest, std::int32_t id) {
  QuoteEvent event = runtime::option_event(option_with_id(id));
  event.ingest = ingest;
  return event;
}

TEST(MicroBatcher, FlushesOnMaxBatch) {
  const auto t0 = StreamClock::time_point(std::chrono::seconds(100));
  MicroBatcher batcher(3, std::chrono::microseconds(500));
  EXPECT_FALSE(batcher.add(event_at(t0, 0)));
  EXPECT_FALSE(batcher.add(event_at(t0, 1)));
  EXPECT_TRUE(batcher.add(event_at(t0, 2)));  // full: flush now
  const auto batch = batcher.take();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[2].option.id, 2);
  EXPECT_FALSE(batcher.open());
}

TEST(MicroBatcher, FlushesOnMaxWaitWithFakeClock) {
  const auto t0 = StreamClock::time_point(std::chrono::seconds(100));
  const auto wait = std::chrono::microseconds(500);
  MicroBatcher batcher(1024, wait);

  // Closed batcher: never due, a fresh event could wait the full budget.
  EXPECT_FALSE(batcher.due(t0));
  EXPECT_EQ(batcher.time_until_due(t0), wait);

  // The deadline anchors at the *oldest* event's ingest stamp.
  batcher.add(event_at(t0, 0));
  batcher.add(event_at(t0 + std::chrono::microseconds(400), 1));
  EXPECT_FALSE(batcher.due(t0 + std::chrono::microseconds(499)));
  EXPECT_EQ(batcher.time_until_due(t0 + std::chrono::microseconds(300)),
            std::chrono::microseconds(200));
  EXPECT_TRUE(batcher.due(t0 + std::chrono::microseconds(500)));
  EXPECT_EQ(batcher.time_until_due(t0 + std::chrono::microseconds(600)),
            StreamClock::duration::zero());

  EXPECT_EQ(batcher.take().size(), 2u);
  EXPECT_FALSE(batcher.due(t0 + std::chrono::seconds(1)));  // reset
}

TEST(MicroBatcher, RejectsDegenerateConfig) {
  EXPECT_THROW(MicroBatcher(0, std::chrono::microseconds(1)), Error);
  EXPECT_THROW(MicroBatcher(4, std::chrono::microseconds(-1)), Error);
}

// --- deterministic merge ----------------------------------------------------

runtime::stream_detail::BatchResult batch_result(std::size_t index,
                                                 std::int32_t first_id,
                                                 std::size_t n) {
  runtime::stream_detail::BatchResult result;
  result.index = index;
  for (std::size_t i = 0; i < n; ++i) {
    result.results.push_back(
        {first_id + static_cast<std::int32_t>(i), 100.0});
  }
  return result;
}

TEST(BatchCollector, MergesOutOfOrderCompletionsInBatchOrder) {
  runtime::stream_detail::BatchCollector collector;
  // Completion order 2, 0, 3, 1 -- the merge must not care.
  collector.put(batch_result(2, 20, 2));
  collector.put(batch_result(0, 0, 3));
  collector.put(batch_result(3, 30, 1));
  collector.put(batch_result(1, 10, 2));
  EXPECT_EQ(collector.count(), 4u);

  const auto merged = collector.take();
  ASSERT_EQ(merged.size(), 4u);
  std::vector<std::int32_t> ids;
  for (const auto& batch : merged) {
    for (const auto& r : batch.results) ids.push_back(r.id);
  }
  EXPECT_EQ(ids, (std::vector<std::int32_t>{0, 1, 2, 10, 11, 20, 21, 30}));
}

TEST(BatchCollector, DetectsLostBatch) {
  runtime::stream_detail::BatchCollector collector;
  collector.put(batch_result(0, 0, 1));
  collector.put(batch_result(2, 20, 1));  // index 1 never arrives
  EXPECT_THROW(collector.take(), Error);
}

// --- stream runtime end to end ----------------------------------------------

workload::QuoteFeedSpec small_feed_spec(std::size_t events,
                                        std::size_t update_every) {
  workload::QuoteFeedSpec spec;
  spec.events = events;
  spec.hazard_update_every = update_every;
  spec.book.maturity_tenor_grid = {1.0, 3.0, 5.0, 7.0, 10.0};
  spec.seed = 99;
  return spec;
}

/// Serial replay reference: one StreamPricer, events applied in feed order.
std::vector<cds::SpreadResult> replay_serially(
    const cds::TermStructure& interest, const cds::TermStructure& hazard,
    const std::vector<workload::QuoteFeedEvent>& feed) {
  cds::StreamPricer pricer(interest, hazard);
  std::vector<cds::SpreadResult> results;
  for (const auto& event : feed) {
    if (event.kind == workload::QuoteFeedEvent::Kind::kHazardQuote) {
      pricer.update_hazard_quote(event.knot, event.rate);
    } else {
      cds::SpreadResult out;
      pricer.price({&event.option, 1}, {&out, 1});
      results.push_back(out);
    }
  }
  return results;
}

// --- per-tenant feed independence -------------------------------------------

/// Collapses a feed into a comparable fingerprint: the exact doubles that the
/// generator draws (arrivals, option fields, update rates). Bit equality of
/// fingerprints means bit equality of feeds.
std::vector<double> feed_fingerprint(
    const std::vector<workload::QuoteFeedEvent>& feed) {
  std::vector<double> fp;
  for (const auto& event : feed) {
    fp.push_back(event.offset_seconds);
    if (event.kind == workload::QuoteFeedEvent::Kind::kOption) {
      fp.push_back(event.option.maturity_years);
      fp.push_back(event.option.recovery_rate);
    } else {
      fp.push_back(static_cast<double>(event.knot));
      fp.push_back(event.rate);
    }
  }
  return fp;
}

workload::QuoteFeedSpec tenant_feed_spec(std::uint64_t seed,
                                         std::uint32_t tenant) {
  auto spec = small_feed_spec(96, 8);
  spec.seed = seed;
  spec.tenant = tenant;
  spec.rate_hz = 1000.0;  // exercise the arrival stream too
  return spec;
}

TEST(QuoteFeed, TenantZeroReproducesTheLegacyStreamBitForBit) {
  const auto hazard = test_hazard();
  auto legacy = small_feed_spec(96, 8);
  legacy.rate_hz = 1000.0;
  legacy.seed = 7;
  // tenant is defaulted to 0 in `legacy`; setting it explicitly must not
  // perturb a single drawn bit.
  EXPECT_EQ(feed_fingerprint(workload::make_quote_feed(legacy, hazard)),
            feed_fingerprint(
                workload::make_quote_feed(tenant_feed_spec(7, 0), hazard)));
}

TEST(QuoteFeed, TenantStreamsAreDeterministicAndPairwiseDistinct) {
  const auto hazard = test_hazard();
  std::vector<std::vector<double>> prints;
  for (const std::uint32_t tenant : {0u, 1u, 2u, 3u, 4u}) {
    const auto spec = tenant_feed_spec(7, tenant);
    const auto a = feed_fingerprint(workload::make_quote_feed(spec, hazard));
    const auto b = feed_fingerprint(workload::make_quote_feed(spec, hazard));
    EXPECT_EQ(a, b) << "tenant " << tenant << " feed must be reproducible";
    prints.push_back(a);
  }
  for (std::size_t i = 0; i < prints.size(); ++i) {
    for (std::size_t j = i + 1; j < prints.size(); ++j) {
      EXPECT_NE(prints[i], prints[j])
          << "tenants " << i << " and " << j << " share a stream";
    }
  }
}

TEST(QuoteFeed, TenantDerivationIsNotSeedArithmetic) {
  // The classic bug: deriving tenant streams as seed + tenant, which makes
  // (seed=7, tenant=2) collide with (seed=8, tenant=1) and (seed=9,
  // tenant=0). The split-tree derivation must keep all of these distinct.
  const auto hazard = test_hazard();
  const auto base =
      feed_fingerprint(workload::make_quote_feed(tenant_feed_spec(7, 2),
                                                 hazard));
  EXPECT_NE(base, feed_fingerprint(workload::make_quote_feed(
                      tenant_feed_spec(8, 1), hazard)));
  EXPECT_NE(base, feed_fingerprint(workload::make_quote_feed(
                      tenant_feed_spec(9, 0), hazard)));
  EXPECT_NE(base, feed_fingerprint(workload::make_quote_feed(
                      tenant_feed_spec(5, 4), hazard)));
}

TEST(StreamRuntime, MatchesSerialReplayWithHazardUpdates) {
  const auto interest = test_interest();
  const auto hazard = test_hazard();
  const auto spec = small_feed_spec(101, 10);
  const auto feed = workload::make_quote_feed(spec, hazard);
  const auto want = replay_serially(interest, hazard, feed);

  runtime::StreamConfig cfg;
  cfg.lanes = 3;
  cfg.max_batch = 8;
  cfg.max_wait_us = 50;
  runtime::StreamRuntime rt(interest, hazard, cfg);
  const auto report = rt.play(feed);

  EXPECT_EQ(report.events_in, 101u);
  EXPECT_EQ(report.hazard_updates, 10u);
  EXPECT_EQ(report.events_priced, 91u);
  EXPECT_EQ(report.events_dropped, 0u);
  ASSERT_EQ(report.run.results.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(report.run.results[i].id, want[i].id) << "at " << i;
    EXPECT_EQ(report.run.results[i].spread_bps, want[i].spread_bps)
        << "at " << i;
  }
  // Sanity on the accounting: every option event has a latency, batches
  // partition the events, modelled makespan is positive.
  std::size_t batched_events = 0;
  for (const auto& batch : report.batches) batched_events += batch.events;
  EXPECT_EQ(batched_events, report.events_priced);
  EXPECT_GT(report.run.invocations, 0u);
  EXPECT_GT(report.modelled_seconds, 0.0);
  EXPECT_GT(report.max_latency_seconds, 0.0);
  EXPECT_GE(report.p99_latency_seconds, report.p50_latency_seconds);
}

TEST(StreamRuntime, DeterministicAcrossLaneCounts) {
  const auto interest = test_interest();
  const auto hazard = test_hazard();
  const auto feed =
      workload::make_quote_feed(small_feed_spec(64, 9), hazard);
  std::vector<cds::SpreadResult> reference;
  for (const unsigned lanes : {1u, 4u}) {
    SCOPED_TRACE(lanes);
    runtime::StreamConfig cfg;
    cfg.lanes = lanes;
    cfg.max_batch = 5;
    runtime::StreamRuntime rt(interest, hazard, cfg);
    const auto report = rt.play(feed);
    if (reference.empty()) {
      reference = report.run.results;
    } else {
      ASSERT_EQ(report.run.results.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(report.run.results[i].id, reference[i].id);
        EXPECT_EQ(report.run.results[i].spread_bps,
                  reference[i].spread_bps);
      }
    }
  }
}

TEST(StreamRuntime, RiskModeStreamsGreeks) {
  const auto interest = test_interest();
  const auto hazard = test_hazard();
  const auto feed =
      workload::make_quote_feed(small_feed_spec(40, 0), hazard);
  std::vector<cds::CdsOption> book;
  for (const auto& event : feed) book.push_back(event.option);

  runtime::StreamConfig cfg;
  cfg.engine = "cpu-batch-risk";
  cfg.lanes = 2;
  cfg.max_batch = 16;
  cfg.ladder_edges = {0.0, 5.0, 30.0};
  runtime::StreamRuntime rt(interest, hazard, cfg);
  EXPECT_TRUE(rt.risk_mode());
  EXPECT_EQ(rt.ladder_buckets(), 2u);
  const auto report = rt.play(feed);

  cds::BatchRiskConfig risk_config;
  risk_config.ladder_edges = cfg.ladder_edges;
  const cds::BatchPricer reference(interest, hazard);
  const auto want = reference.price_with_sensitivities(book, risk_config);

  ASSERT_EQ(report.run.sensitivities.size(), book.size());
  ASSERT_EQ(report.run.ladder_buckets, 2u);
  ASSERT_EQ(report.run.cs01_ladder.size(), book.size() * 2);
  for (std::size_t i = 0; i < book.size(); ++i) {
    EXPECT_EQ(report.run.sensitivities[i].cs01, want.sensitivities[i].cs01);
    EXPECT_EQ(report.run.sensitivities[i].jtd, want.sensitivities[i].jtd);
    EXPECT_EQ(report.run.results[i].spread_bps,
              want.sensitivities[i].spread_bps);
  }
  for (std::size_t i = 0; i < report.run.cs01_ladder.size(); ++i) {
    EXPECT_EQ(report.run.cs01_ladder[i], want.cs01_ladder[i]);
  }
}

TEST(StreamRuntime, DeadlineMissesAreCounted) {
  const auto interest = test_interest();
  const auto hazard = test_hazard();
  runtime::StreamConfig cfg;
  cfg.lanes = 1;
  cfg.max_batch = 1024;       // never fills from 3 events
  cfg.max_wait_us = 100'000;  // flush only happens at drain
  cfg.deadline_us = 1;        // everything that waited measurably misses
  runtime::StreamRuntime rt(interest, hazard, cfg);
  for (std::int32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(rt.push(option_with_id(i)));
  }
  // Let the events age well past the 1 us deadline before the drain flush.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto report = rt.finish();
  EXPECT_EQ(report.events_priced, 3u);
  EXPECT_EQ(report.deadline_misses, 3u);
  ASSERT_EQ(report.batches.size(), 1u);
  EXPECT_EQ(report.batches[0].deadline_misses, 3u);
  EXPECT_GT(report.p50_latency_seconds, 1e-6);
}

TEST(StreamRuntime, PushAfterCloseFailsAndFinishIsSingleUse) {
  runtime::StreamConfig cfg;
  cfg.lanes = 1;
  runtime::StreamRuntime rt(test_interest(), test_hazard(), cfg);
  rt.close();
  EXPECT_FALSE(rt.push(option_with_id(1)));
  EXPECT_FALSE(rt.push_hazard_quote(0, 0.02));
  const auto report = rt.finish();
  EXPECT_EQ(report.events_in, 0u);
  EXPECT_EQ(report.events_priced, 0u);
  EXPECT_EQ(report.modelled_seconds, 0.0);
  EXPECT_THROW(rt.finish(), Error);
}

TEST(StreamRuntime, BadHazardUpdateSurfacesAtFinish) {
  runtime::StreamConfig cfg;
  cfg.lanes = 2;
  runtime::StreamRuntime rt(test_interest(), test_hazard(), cfg);
  rt.push(option_with_id(0));
  rt.push_hazard_quote(1'000'000, 0.02);  // knot out of range
  EXPECT_THROW(rt.finish(), Error);
}

TEST(StreamRuntime, PollBatchesHarvestsEachBatchExactlyOnceInOrder) {
  const auto interest = test_interest();
  const auto hazard = test_hazard();
  runtime::StreamConfig cfg;
  cfg.lanes = 2;
  cfg.max_batch = 6;  // divides the push count: every batch flushes on full
  cfg.max_wait_us = 100;
  runtime::StreamRuntime rt(interest, hazard, cfg);

  constexpr std::size_t kOptions = 60;
  for (std::size_t i = 0; i < kOptions; ++i) {
    ASSERT_TRUE(rt.push(option_with_id(static_cast<std::int32_t>(i))));
  }

  // Harvest incrementally while the lanes drain. Every poll returns only
  // batches not seen before, and the stitched stream is the contiguous
  // batch sequence 0..n-1.
  std::vector<cds::SpreadResult> polled;
  std::size_t next_index = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (polled.size() < kOptions) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "poll_batches never surfaced all batches";
    for (const auto& batch : rt.poll_batches()) {
      EXPECT_EQ(batch.index, next_index) << "batch replayed or skipped";
      ++next_index;
      polled.insert(polled.end(), batch.results.begin(), batch.results.end());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // At least one batch per max_batch window; timer flushes may add more.
  EXPECT_GE(next_index, kOptions / cfg.max_batch);
  // Fully harvested: an extra poll is empty, not a replay from index 0.
  EXPECT_TRUE(rt.poll_batches().empty());

  // finish() still observes the complete run -- polling copies, it does not
  // consume the collector.
  const auto report = rt.finish();
  ASSERT_EQ(report.run.results.size(), kOptions);
  ASSERT_EQ(polled.size(), kOptions);
  for (std::size_t i = 0; i < kOptions; ++i) {
    EXPECT_EQ(polled[i].id, report.run.results[i].id) << "at " << i;
    EXPECT_EQ(polled[i].spread_bps, report.run.results[i].spread_bps)
        << "at " << i;
  }
}

TEST(StreamRuntime, RejectsNonCpuEngines) {
  runtime::StreamConfig cfg;
  cfg.engine = "vectorised";
  EXPECT_THROW(
      runtime::StreamRuntime(test_interest(), test_hazard(), cfg), Error);
}

}  // namespace
}  // namespace cdsflow
