/// \file test_admission.cpp
/// Golden tests for deadline-class admission control: the exported
/// CompletionProjector must mirror runtime::list_schedule_makespan exactly,
/// a fixed affine fit plus a scripted overload burst must reproduce a
/// deterministic admit/defer/shed transcript, and the boundary case
/// projected-completion == deadline is pinned admitted (with an exact-FP
/// construction, not a tolerance).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "engines/planner.hpp"
#include "runtime/shard.hpp"
#include "service/admission.hpp"

namespace cdsflow {
namespace {

using service::AdmissionController;
using service::AdmissionDecision;
using service::DeadlineClass;

engine::BackendCandidate fit_of(double setup_seconds,
                                double options_per_second) {
  engine::BackendCandidate fit;
  fit.engine_name = "cpu-batch";
  fit.watts = 1.0;
  fit.setup_seconds = setup_seconds;
  fit.options_per_second = options_per_second;
  return fit;
}

// --- projector == offline list schedule -------------------------------------

TEST(CompletionProjector, ReproducesListScheduleMakespanBitForBit) {
  Rng rng(9001);
  for (const unsigned lanes : {1u, 2u, 3u, 7u}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<double> tasks(
          static_cast<std::size_t>(rng.uniform_int(1, 40)));
      for (auto& t : tasks) t = rng.uniform(0.001, 2.0);

      engine::CompletionProjector projector(lanes);
      for (const double t : tasks) projector.book(0.0, t);

      const double offline = runtime::list_schedule_makespan(tasks, lanes);
      // Same additions to the same lanes in the same order: bit equality,
      // not approximate equality.
      EXPECT_EQ(projector.makespan(), offline)
          << lanes << " lanes, trial " << trial;
    }
  }
}

TEST(CompletionProjector, ProjectDoesNotCommitCapacity) {
  engine::CompletionProjector projector(2);
  const double first = projector.project(0.0, 1.0);
  EXPECT_EQ(first, 1.0);
  EXPECT_EQ(projector.project(0.0, 1.0), first)
      << "project() must be side-effect free";
  EXPECT_EQ(projector.makespan(), 0.0);
  projector.book(0.0, 1.0);
  EXPECT_EQ(projector.makespan(), 1.0);
}

TEST(CompletionProjector, LateArrivalStartsAtArrivalNotLaneFree) {
  engine::CompletionProjector projector(1);
  projector.book(0.0, 1.0);  // lane free at 1.0
  // Arriving at t=5 on an idle lane starts at 5, not 1.
  EXPECT_EQ(projector.project(5.0, 2.0), 7.0);
  // Arriving at t=0.5 on the busy lane queues behind it.
  EXPECT_EQ(projector.project(0.5, 2.0), 3.0);
}

// --- exact-FP boundary pin --------------------------------------------------

TEST(Admission, ProjectedCompletionExactlyOnDeadlineIsAdmitted) {
  // Probes chosen so the affine fit recovers setup = per_option = 2^-10
  // exactly: seconds(1024) = 1 + 2^-10, seconds(2048) = 2 + 2^-10 (all
  // binary-representable; slope (s2-s1)/1024 = 2^-10 and intercept
  // s1 - 1024 * 2^-10 = 2^-10, every step exact in IEEE-754).
  const double tick = 1.0 / 1024.0;
  const auto fit = engine::fit_backend_model(
      "cpu-batch", 1.0, {{1024, 1.0 + tick}, {2048, 2.0 + tick}});
  ASSERT_EQ(fit.setup_seconds, tick);
  ASSERT_EQ(1.0 / fit.options_per_second, tick);

  // task(63) = 2^-10 + 63 * 2^-10 = 64/1024 = 2^-4 exactly; with an idle
  // lane and arrival 0 the projected completion is exactly the deadline.
  const DeadlineClass klass{"pinned", 1.0 / 16.0, 1.0 / 4.0};
  AdmissionController admission(fit, 1);
  ASSERT_EQ(admission.task_seconds(63), klass.deadline_seconds);

  EXPECT_EQ(admission.decide(1, 1, 63, 0.0, klass), AdmissionDecision::kAdmit)
      << "projected == deadline must admit (<=, not <)";
  const auto& record = admission.transcript().back();
  EXPECT_EQ(record.projected_seconds, record.deadline_seconds);

  // One ulp past the boundary defers: a 64th option adds exactly 2^-10.
  EXPECT_EQ(admission.decide(1, 2, 64, 1.0, klass), AdmissionDecision::kDefer);
}

// --- scripted overload burst ------------------------------------------------

TEST(Admission, ScriptedBurstProducesGoldenTranscript) {
  // fit: task(n) = 0.001 + n/1000; one lane; standard-ish class.
  AdmissionController admission(fit_of(0.001, 1000.0), 1);
  const DeadlineClass klass{"test", 0.05, 0.2};

  struct Step {
    std::uint32_t request;
    std::size_t n_options;
    double arrival;
    AdmissionDecision expected;
  };
  // 40-option requests cost 0.041 s. Burst at t=0 on an idle lane:
  //   r1 projected 0.041 <= 0.05          -> admit
  //   r2 projected 0.082 <= 0.2           -> defer
  //   r3 projected 0.123                  -> defer
  //   r4 projected 0.164                  -> defer
  //   r5 projected 0.205 > 0.2            -> shed (books nothing)
  //   r6 at t=0.164 projected 0.205 <= 0.214 -> admit (shed freed nothing,
  //      but the lane is free exactly when r6 arrives)
  const std::vector<Step> script = {
      {1, 40, 0.0, AdmissionDecision::kAdmit},
      {2, 40, 0.0, AdmissionDecision::kDefer},
      {3, 40, 0.0, AdmissionDecision::kDefer},
      {4, 40, 0.0, AdmissionDecision::kDefer},
      {5, 40, 0.0, AdmissionDecision::kShed},
      {6, 40, 0.164, AdmissionDecision::kAdmit},
  };
  for (const auto& step : script) {
    EXPECT_EQ(admission.decide(9, step.request, step.n_options, step.arrival,
                               klass),
              step.expected)
        << "request " << step.request;
  }

  // The transcript is the decision log, in order, with projections.
  const auto& transcript = admission.transcript();
  ASSERT_EQ(transcript.size(), script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    EXPECT_EQ(transcript[i].request, script[i].request);
    EXPECT_EQ(transcript[i].decision, script[i].expected);
    EXPECT_EQ(transcript[i].tenant, 9u);
  }
  EXPECT_NEAR(transcript[0].projected_seconds, 0.041, 1e-12);
  EXPECT_NEAR(transcript[4].projected_seconds, 0.205, 1e-12);
  // r5 shed books nothing: r6's projection starts from r4's completion.
  EXPECT_NEAR(transcript[5].projected_seconds, 0.205, 1e-12);

  // Replaying the same script on a fresh controller reproduces the
  // transcript bit-for-bit (clock-free determinism).
  AdmissionController replay(fit_of(0.001, 1000.0), 1);
  for (const auto& step : script) {
    replay.decide(9, step.request, step.n_options, step.arrival, klass);
  }
  ASSERT_EQ(replay.transcript().size(), transcript.size());
  for (std::size_t i = 0; i < transcript.size(); ++i) {
    EXPECT_EQ(replay.transcript()[i].decision, transcript[i].decision);
    EXPECT_EQ(replay.transcript()[i].projected_seconds,
              transcript[i].projected_seconds);
  }
}

TEST(Admission, MultiLanePoolAbsorbsTheBurstTheSingleLaneSheds) {
  // Same burst as the golden transcript but on 4 lanes: every request
  // starts immediately on its own lane, so all six admit.
  AdmissionController admission(fit_of(0.001, 1000.0), 4);
  const DeadlineClass klass{"test", 0.05, 0.2};
  for (std::uint32_t r = 1; r <= 4; ++r) {
    EXPECT_EQ(admission.decide(9, r, 40, 0.0, klass),
              AdmissionDecision::kAdmit)
        << "request " << r;
  }
  // Lane 0 is the earliest-free tie-break target again at r5: it queues.
  EXPECT_EQ(admission.decide(9, 5, 40, 0.0, klass), AdmissionDecision::kDefer);
}

TEST(Admission, StandardDeadlineClassesAreWellFormedAndFindable) {
  const auto& classes = service::standard_deadline_classes();
  ASSERT_EQ(classes.size(), 3u);
  for (const auto& klass : classes) {
    EXPECT_GT(klass.deadline_seconds, 0.0);
    EXPECT_GE(klass.defer_seconds, klass.deadline_seconds);
    const auto found = service::find_deadline_class(klass.name);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->deadline_seconds, klass.deadline_seconds);
  }
  EXPECT_FALSE(service::find_deadline_class("no-such-class").has_value());
  EXPECT_EQ(classes[0].name, "interactive");
  EXPECT_EQ(classes[1].name, "standard");
  EXPECT_EQ(classes[2].name, "batch");
}

TEST(Admission, RejectsDegenerateInputs) {
  AdmissionController admission(fit_of(0.0, 1000.0), 1);
  const DeadlineClass klass{"test", 0.05, 0.2};
  EXPECT_THROW(admission.decide(1, 1, 0, 0.0, klass), Error);
  EXPECT_THROW(admission.decide(1, 1, 10, 0.0, {"bad", 0.0, 0.0}), Error);
  EXPECT_THROW(admission.decide(1, 1, 10, 0.0, {"bad", 0.2, 0.05}), Error);
  EXPECT_THROW(AdmissionController(fit_of(0.0, 0.0), 1), Error);
  EXPECT_THROW(engine::CompletionProjector(0), Error);
}

}  // namespace
}  // namespace cdsflow
