#include "sim/channel.hpp"

namespace cdsflow::sim {

ChannelBase::ChannelBase(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity) {}

}  // namespace cdsflow::sim
