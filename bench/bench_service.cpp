/// \file bench_service.cpp
/// Multi-tenant pricing-service bench over a loopback unix-domain socket,
/// reported as JSON.
///
/// N tenants replay seeded feeds concurrently (one client thread each,
/// pipelined requests) against a PricingService on the socket server. The
/// run measures end-to-end request latency (admission arrival to response
/// harvest, the service's own clock) per tenant and in aggregate, and
/// gates on the tentpole bit-identity contract: every tenant's concatenated
/// response spreads must be bit-identical to driving the identical event
/// sequence through a StreamRuntime directly. The per-tenant latency CDF
/// is written next to the JSON (scripts/bench_diff.py tracks the JSON
/// percentiles across commits).
///
/// Usage: bench_service [n_events_per_tenant] [n_tenants] [out.json]
///                      [cdf.csv]
///   defaults: 16384 3 BENCH_service.json BENCH_service_latency_cdf.csv

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/format.hpp"
#include "common/stats.hpp"
#include "io/csv.hpp"
#include "net/client.hpp"
#include "net/codec.hpp"
#include "net/server.hpp"
#include "runtime/stream_runtime.hpp"
#include "service/service.hpp"
#include "workload/curves.hpp"
#include "workload/feed.hpp"

namespace {

using namespace cdsflow;

struct SlicedStep {
  bool quote = false;
  std::uint32_t request = 0;
  std::vector<cds::CdsOption> options;
  std::uint32_t knot = 0;
  double rate = 0.0;
};

/// Same slicing as tools/cdsflow_cli.cpp client-replay and
/// tests/test_service.cpp: hazard updates flush the open request so both
/// sides of the bit-identity comparison see the identical event order.
std::vector<SlicedStep> slice_feed(
    const std::vector<workload::QuoteFeedEvent>& feed,
    std::size_t request_size) {
  std::vector<SlicedStep> steps;
  std::uint32_t next_request = 1;
  SlicedStep open;
  auto flush = [&] {
    if (open.options.empty()) return;
    open.request = next_request++;
    steps.push_back(std::move(open));
    open = {};
  };
  for (const auto& event : feed) {
    if (event.kind == workload::QuoteFeedEvent::Kind::kHazardQuote) {
      flush();
      SlicedStep quote;
      quote.quote = true;
      quote.knot = static_cast<std::uint32_t>(event.knot);
      quote.rate = event.rate;
      steps.push_back(std::move(quote));
    } else {
      open.options.push_back(event.option);
      if (open.options.size() == request_size) flush();
    }
  }
  flush();
  return steps;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_events =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16384;
  const std::size_t n_tenants =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
  const std::string out_path = argc > 3 ? argv[3] : "BENCH_service.json";
  const std::string cdf_path =
      argc > 4 ? argv[4] : "BENCH_service_latency_cdf.csv";
  constexpr std::size_t kRequestSize = 64;

  const auto interest = workload::paper_interest_curve();
  const auto hazard = workload::paper_hazard_curve();

  std::cout << "== Pricing service: " << n_tenants << " tenant(s) x "
            << n_events << " events over a loopback socket ==\n\n";

  // Per-tenant sliced feeds (independent split-tree streams of one seed).
  std::vector<std::vector<SlicedStep>> feeds;
  for (std::size_t t = 0; t < n_tenants; ++t) {
    workload::QuoteFeedSpec spec;
    spec.events = n_events;
    spec.hazard_update_every = 64;
    spec.book.maturity_tenor_grid = {1.0, 3.0, 5.0, 7.0, 10.0};
    spec.seed = 7;
    spec.tenant = static_cast<std::uint32_t>(t + 1);
    feeds.push_back(slice_feed(workload::make_quote_feed(spec, hazard),
                               kRequestSize));
  }

  runtime::StreamConfig stream;
  stream.engine = "cpu-batch";
  stream.lanes = 2;
  stream.max_batch = 256;
  stream.max_wait_us = 200;

  service::ServiceConfig config;
  config.stop_when_idle = true;
  for (std::size_t t = 0; t < n_tenants; ++t) {
    service::TenantSpec spec;
    spec.id = static_cast<std::uint32_t>(t + 1);
    spec.name = "tenant-" + std::to_string(t + 1);
    spec.deadline = {"batch", 2.0, 8.0};  // no shedding: throughput run
    spec.stream = stream;
    spec.fit.engine_name = stream.engine;
    spec.fit.watts = 1.0;
    spec.fit.options_per_second = 1e12;  // generous: admission never sheds
    config.tenants.push_back(std::move(spec));
  }

  const std::string socket_path =
      "/tmp/cdsflow-bench-" + std::to_string(::getpid()) + ".sock";
  net::Server server({socket_path});
  service::PricingService pricing(config, interest, hazard);
  std::thread loop([&] { server.run(pricing); });

  // One pipelined client per tenant; responses arrive in request order.
  std::vector<std::vector<cds::SpreadResult>> responses(n_tenants);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < n_tenants; ++t) {
    clients.emplace_back([&, t] {
      const auto tenant = static_cast<std::uint32_t>(t + 1);
      net::Client client = net::Client::connect_unix(socket_path);
      std::size_t n_requests = 0;
      for (const auto& step : feeds[t]) {
        if (step.quote) {
          client.send(net::encode_quote_update(tenant, step.knot, step.rate));
        } else {
          client.send(net::encode_price_request(tenant, step.request,
                                                step.options));
          ++n_requests;
        }
      }
      for (std::size_t i = 0; i < n_requests; ++i) {
        const net::Frame frame = client.read_frame();
        if (frame.type != net::FrameType::kResult) {
          std::cerr << "tenant " << tenant << " request rejected: "
                    << net::to_string(frame.reason) << '\n';
          std::exit(1);
        }
        responses[t].insert(responses[t].end(), frame.results.begin(),
                            frame.results.end());
      }
      client.close();
    });
  }
  for (auto& c : clients) c.join();
  loop.join();  // idle-stop: all clients done, nothing pending
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Bit-identity gate: each tenant's responses vs a directly-driven
  // StreamRuntime over the identical event sequence.
  bool identical = true;
  for (std::size_t t = 0; t < n_tenants && identical; ++t) {
    runtime::StreamRuntime direct(interest, hazard, stream);
    for (const auto& step : feeds[t]) {
      if (step.quote) {
        direct.push_hazard_quote(step.knot, step.rate);
      } else {
        for (const auto& option : step.options) direct.push(option);
      }
    }
    const auto report = direct.finish();
    identical = responses[t].size() == report.run.results.size();
    for (std::size_t i = 0; identical && i < responses[t].size(); ++i) {
      identical =
          responses[t][i].id == report.run.results[i].id &&
          std::bit_cast<std::uint64_t>(responses[t][i].spread_bps) ==
              std::bit_cast<std::uint64_t>(report.run.results[i].spread_bps);
    }
    if (!identical) {
      std::cout << "tenant " << (t + 1)
                << ": responses NOT bit-identical to direct runtime\n";
    }
  }

  // Latency: the service's own per-request ingest-to-response clock.
  std::vector<double> all_latency;
  std::size_t total_requests = 0;
  std::size_t total_options = 0;
  for (std::size_t t = 0; t < n_tenants; ++t) {
    const auto* session =
        pricing.session(static_cast<std::uint32_t>(t + 1));
    all_latency.insert(all_latency.end(), session->latency_us().begin(),
                       session->latency_us().end());
    total_requests += session->latency_us().size();
    total_options += responses[t].size();
  }
  const double p50 = percentile(all_latency, 50.0);
  const double p99 = percentile(all_latency, 99.0);
  const double requests_per_second = total_requests / wall;

  std::cout << "replayed " << total_requests << " request(s) ("
            << total_options << " options) across " << n_tenants
            << " tenant(s) in " << fixed(wall, 3) << " s: "
            << with_thousands(requests_per_second, 0) << " requests/s, "
            << with_thousands(total_options / wall, 0)
            << " options/s end-to-end\n"
            << "request latency: p50 " << fixed(p50, 1) << " us, p99 "
            << fixed(p99, 1) << " us\nbit-identical to direct StreamRuntime: "
            << (identical ? "yes" : "NO") << '\n';

  io::write_latency_cdf_csv(cdf_path, pricing.latency_rows());
  std::cout << "per-tenant latency CDF written to " << cdf_path << '\n';

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"service\",\n"
       << "  \"n_tenants\": " << n_tenants << ",\n"
       << "  \"n_events_per_tenant\": " << n_events << ",\n"
       << "  \"request_size\": " << kRequestSize << ",\n"
       << "  \"requests\": " << total_requests << ",\n"
       << "  \"options\": " << total_options << ",\n"
       << "  \"wall_seconds\": " << wall << ",\n"
       << "  \"requests_per_second\": " << requests_per_second << ",\n"
       << "  \"options_per_second\": " << total_options / wall << ",\n"
       << "  \"p50_request_us\": " << p50 << ",\n"
       << "  \"p99_request_us\": " << p99 << ",\n"
       << "  \"admitted\": " << pricing.stats().admitted << ",\n"
       << "  \"deferred\": " << pricing.stats().deferred << ",\n"
       << "  \"shed\": " << pricing.stats().shed << ",\n"
       << "  \"bit_identical_to_direct_runtime\": "
       << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::ofstream out(out_path);
  out << json.str();
  std::cout << "JSON written to " << out_path << '\n';

  if (!identical) {
    std::cout << "FAIL: service responses not bit-identical\n";
  }
  return identical ? 0 : 1;
}
