/// \file bench_ablation_cpu_scaling.cpp
/// Ablation: CPU thread scaling.
///
/// The paper notes the CPU engine "is scaling fairly poorly, where we have
/// increased the core count by 24 times but the performance only increases
/// by around nine times" -- the curve scans are memory-bandwidth-bound.
/// This bench sweeps thread counts up to the host's hardware concurrency
/// and reports the same scaling curve for this machine.
///
/// Usage: bench_ablation_cpu_scaling [n_options] [runs]

#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "common/format.hpp"
#include "engines/cpu_engine.hpp"
#include "report/experiment.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2048;
  const int runs = argc > 2 ? std::atoi(argv[2]) : 3;

  const auto scenario = workload::paper_scenario(n_options);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::cout << "== Ablation: CPU thread scaling (paper: 9x at 24 cores) ==\n"
            << n_options << " options, " << runs << " runs averaged, host "
            << "has " << hw << " hardware thread(s), engine uses "
            << (engine::CpuEngine::uses_openmp() ? "OpenMP" : "std::thread")
            << "\n\n";

  std::vector<unsigned> counts;
  for (unsigned t = 1; t <= hw; t *= 2) counts.push_back(t);
  if (counts.back() != hw) counts.push_back(hw);

  report::Table table("CPU throughput vs threads");
  table.set_columns({"Threads", "Options/s", "Scaling", "Efficiency"});
  double base = 0.0;
  for (const unsigned t : counts) {
    engine::CpuEngine engine(scenario.interest, scenario.hazard,
                             {.threads = t});
    const auto m = report::measure(engine, scenario.options, runs);
    if (t == 1) base = m.mean_ops();
    table.add_row({std::to_string(t), with_thousands(m.mean_ops(), 2),
                   fixed(m.mean_ops() / base, 2) + "x",
                   fixed(100.0 * m.mean_ops() / base / t, 1) + "%"});
  }
  std::cout << table.render_text() << '\n';
  return 0;
}
