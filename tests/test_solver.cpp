/// \file test_solver.cpp
/// Unit tests for the Brent root finder used by curve calibration.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/solver.hpp"

namespace cdsflow {
namespace {

TEST(Brent, FindsPolynomialRoot) {
  const auto r = find_root_brent([](double x) { return x * x - 4.0; }, 0.0,
                                 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.root, 2.0, 1e-10);
  EXPECT_LE(std::fabs(r.residual), 1e-9);
}

TEST(Brent, FindsTranscendentalRoot) {
  // exp(-x) = x has the Omega constant as root: ~0.567143.
  const auto r = find_root_brent(
      [](double x) { return std::exp(-x) - x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.root, 0.56714329040978384, 1e-9);
}

TEST(Brent, HandlesRootAtBracketEnd) {
  const auto lo = find_root_brent([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(lo.converged);
  EXPECT_DOUBLE_EQ(lo.root, 0.0);
  const auto hi =
      find_root_brent([](double x) { return x - 1.0; }, 0.0, 1.0);
  EXPECT_TRUE(hi.converged);
  EXPECT_DOUBLE_EQ(hi.root, 1.0);
}

TEST(Brent, SteepAndFlatFunctions) {
  const auto steep = find_root_brent(
      [](double x) { return 1e9 * (x - 0.3); }, 0.0, 1.0);
  EXPECT_TRUE(steep.converged);
  EXPECT_NEAR(steep.root, 0.3, 1e-9);
  const auto flat = find_root_brent(
      [](double x) { return 1e-9 * (x - 0.7); }, 0.0, 1.0,
      {.f_tolerance = 1e-15});
  EXPECT_TRUE(flat.converged);
  EXPECT_NEAR(flat.root, 0.7, 1e-5);
}

TEST(Brent, RejectsNonBracketingInterval) {
  EXPECT_THROW(
      find_root_brent([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      Error);
  EXPECT_THROW(find_root_brent([](double x) { return x; }, 2.0, 1.0), Error);
  EXPECT_THROW(find_root_brent(nullptr, 0.0, 1.0), Error);
}

TEST(Brent, IterationCountIsSmall) {
  const auto r = find_root_brent(
      [](double x) { return std::cos(x) - x; }, 0.0, 1.5);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 30);  // superlinear convergence
}

TEST(Expanding, GrowsBracketUntilSignChange) {
  // Root at 1000; initial bracket [0, 1] must expand.
  const auto r = find_root_expanding(
      [](double x) { return x - 1000.0; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.root, 1000.0, 1e-6);
}

TEST(Expanding, FailsWhenNoRootExists) {
  EXPECT_THROW(find_root_expanding(
                   [](double x) { return x * x + 1.0; }, 0.0, 1.0, 10),
               Error);
}

TEST(Expanding, ImmediateRootAtLowerBound) {
  const auto r = find_root_expanding([](double) { return 0.0; }, 0.5, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.root, 0.5);
}

}  // namespace
}  // namespace cdsflow
