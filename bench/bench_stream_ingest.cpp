/// \file bench_stream_ingest.cpp
/// Streaming quote-ingest trajectory bench, reported as JSON.
///
/// Two phases over the same standard-tenor option mix:
///
///   1. *Steady state (unpaced feed).* Every event is pushed back-to-back,
///      so the lanes run flat out; the stream's modelled throughput
///      (options / list-schedule makespan of the per-micro-batch pricing
///      times -- the same modelled figure the batch runtime reports) is
///      compared against the batch runtime pricing the identical book with
///      the same engine kernel and lane count. The acceptance bar is
///      steady_state_ratio >= 0.9: streaming micro-batches must not cost
///      more than 10% of the batch path's modelled throughput. (In practice
///      the stream wins: its lanes keep their schedule grids across
///      micro-batches while the batch runtime re-tabulates per shard.) The
///      phase also asserts the merged stream spreads are bit-identical to a
///      single cpu-batch engine run over the same option sequence.
///
///   2. *Latency (paced feed).* The same feed replayed as a Poisson stream
///      at ~30% of the measured wall saturation rate, with hazard-quote
///      updates mixed in: p50/p99/max ingest-to-result latency, deadline
///      misses and the incremental-risk re-tabulation accounting.
///
/// Usage: bench_stream_ingest [n_events] [max_batch] [out.json] [lanes]
///   defaults: 16384 1024 BENCH_stream_ingest.json 2

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "engines/registry.hpp"
#include "runtime/portfolio_runtime.hpp"
#include "runtime/stream_runtime.hpp"
#include "workload/curves.hpp"
#include "workload/feed.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_events =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16384;
  const std::size_t max_batch =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1024;
  const std::string out_path =
      argc > 3 ? argv[3] : "BENCH_stream_ingest.json";
  const unsigned lanes =
      argc > 4 ? static_cast<unsigned>(std::strtoul(argv[4], nullptr, 10)) : 2;

  const auto interest = workload::paper_interest_curve();
  const auto hazard = workload::paper_hazard_curve();

  workload::QuoteFeedSpec feed_spec;
  feed_spec.events = n_events;
  feed_spec.book.maturity_tenor_grid = {1.0, 3.0, 5.0, 7.0, 10.0};
  feed_spec.seed = 7;

  runtime::StreamConfig stream_cfg;
  stream_cfg.lanes = lanes;
  stream_cfg.max_batch = max_batch;
  stream_cfg.max_wait_us = 200;
  stream_cfg.deadline_us = 50'000;

  std::cout << "== Stream ingest: " << n_events << " events, micro-batch <= "
            << max_batch << ", " << lanes << " lane(s) ==\n\n";

  // Phase 1 -- unpaced steady state vs the batch runtime.
  const auto feed = workload::make_quote_feed(feed_spec, hazard);
  std::vector<cds::CdsOption> book;
  book.reserve(feed.size());
  for (const auto& event : feed) book.push_back(event.option);

  runtime::StreamRuntime stream(interest, hazard, stream_cfg);
  const auto steady = stream.play(feed);

  runtime::RuntimeConfig batch_cfg;
  batch_cfg.engine = "cpu-batch";
  batch_cfg.workers = lanes;
  runtime::PortfolioRuntime batch_rt(interest, hazard, batch_cfg);
  const auto batch = batch_rt.price(book);

  const double ratio =
      batch.run.options_per_second > 0.0
          ? steady.modelled_events_per_second / batch.run.options_per_second
          : 0.0;

  // Bit-identity cross-check against one cpu-batch engine over the same
  // option sequence (same guarantee the batch runtime's merge makes).
  auto single = engine::make_engine("cpu-batch", interest, hazard);
  const auto baseline = single->price(book);
  bool identical = steady.run.results.size() == baseline.results.size();
  for (std::size_t i = 0; identical && i < baseline.results.size(); ++i) {
    identical = steady.run.results[i].id == baseline.results[i].id &&
                steady.run.results[i].spread_bps ==
                    baseline.results[i].spread_bps;
  }

  std::cout << "steady state: stream "
            << with_thousands(steady.modelled_events_per_second, 0)
            << " vs batch runtime "
            << with_thousands(batch.run.options_per_second, 0)
            << " options/s modelled (ratio " << fixed(ratio, 2)
            << "x, bar >= 0.9), " << steady.batches.size()
            << " micro-batches, merge bit-identical: "
            << (identical ? "yes" : "NO") << '\n';

  // Phase 2 -- paced feed with hazard-quote updates: the latency picture.
  feed_spec.rate_hz = std::max(1.0, steady.wall_events_per_second * 0.3);
  feed_spec.hazard_update_every = 256;
  runtime::StreamRuntime paced_rt(interest, hazard, stream_cfg);
  const auto paced = paced_rt.play(workload::make_quote_feed(feed_spec, hazard));

  auto us = [](double seconds) { return seconds * 1e6; };
  std::cout << "paced at " << with_thousands(feed_spec.rate_hz, 0)
            << " events/s: p50 " << fixed(us(paced.p50_latency_seconds), 1)
            << " us, p99 " << fixed(us(paced.p99_latency_seconds), 1)
            << " us, max " << fixed(us(paced.max_latency_seconds), 1)
            << " us ingest-to-result; " << paced.deadline_misses
            << " deadline miss(es); " << paced.hazard_updates
            << " update(s) re-tabulated " << paced.grids_retabulated
            << " grid(s) (full rebuilds: " << paced.full_rebuild_grids
            << ")\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"stream_ingest\",\n"
       << "  \"n_events\": " << n_events << ",\n"
       << "  \"max_batch\": " << max_batch << ",\n"
       << "  \"lanes\": " << lanes << ",\n"
       << "  \"batches\": " << steady.batches.size() << ",\n"
       << "  \"batches_per_second\": " << steady.batches_per_second << ",\n"
       << "  \"stream_modelled_options_per_second\": "
       << steady.modelled_events_per_second << ",\n"
       << "  \"stream_wall_options_per_second\": "
       << steady.wall_events_per_second << ",\n"
       << "  \"batch_modelled_options_per_second\": "
       << batch.run.options_per_second << ",\n"
       << "  \"steady_state_ratio\": " << ratio << ",\n"
       << "  \"bit_identical_to_batch_engine\": "
       << (identical ? "true" : "false") << ",\n"
       << "  \"paced_rate_hz\": " << feed_spec.rate_hz << ",\n"
       << "  \"p50_ingest_to_result_us\": " << us(paced.p50_latency_seconds)
       << ",\n"
       << "  \"p99_ingest_to_result_us\": " << us(paced.p99_latency_seconds)
       << ",\n"
       << "  \"max_ingest_to_result_us\": " << us(paced.max_latency_seconds)
       << ",\n"
       << "  \"deadline_us\": " << stream_cfg.deadline_us << ",\n"
       << "  \"deadline_misses\": " << paced.deadline_misses << ",\n"
       << "  \"queue_high_water\": " << paced.queue_high_water << ",\n"
       << "  \"hazard_updates\": " << paced.hazard_updates << ",\n"
       << "  \"grids_retabulated\": " << paced.grids_retabulated << ",\n"
       << "  \"full_rebuild_grids\": " << paced.full_rebuild_grids << "\n"
       << "}\n";

  std::ofstream out(out_path);
  out << json.str();
  std::cout << "JSON written to " << out_path << '\n';

  const bool pass = identical && ratio >= 0.9;
  if (!pass) {
    std::cout << "FAIL: "
              << (!identical ? "stream merge not bit-identical"
                             : "steady-state ratio below the 0.9 bar")
              << '\n';
  }
  return pass ? 0 : 1;
}
