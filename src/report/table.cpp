#include "report/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"

namespace cdsflow::report {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_columns(std::vector<std::string> names,
                        std::vector<Align> aligns) {
  CDSFLOW_EXPECT(!names.empty(), "table requires columns");
  if (aligns.empty()) {
    aligns.assign(names.size(), Align::kLeft);
    // Numbers usually sit on the right: default all but the first column.
    for (std::size_t i = 1; i < aligns.size(); ++i) aligns[i] = Align::kRight;
  }
  CDSFLOW_EXPECT(aligns.size() == names.size(),
                 "alignment/column count mismatch");
  columns_ = std::move(names);
  aligns_ = std::move(aligns);
}

void Table::add_row(std::vector<std::string> cells) {
  CDSFLOW_EXPECT(!columns_.empty(), "set_columns before add_row");
  CDSFLOW_EXPECT(cells.size() == columns_.size(),
                 "row width does not match column count");
  rows_.push_back({std::move(cells), false});
}

void Table::add_separator() { rows_.push_back({{}, true}); }

std::vector<std::size_t> Table::column_widths() const {
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  return widths;
}

std::string Table::render_text() const {
  CDSFLOW_EXPECT(!columns_.empty(), "render requires columns");
  const auto widths = column_widths();
  std::ostringstream os;
  auto rule = [&os, &widths] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string padded = aligns_[c] == Align::kLeft
                                     ? pad_right(cells[c], widths[c])
                                     : pad_left(cells[c], widths[c]);
      os << ' ' << padded << " |";
    }
    os << '\n';
  };
  if (!title_.empty()) os << title_ << '\n';
  rule();
  emit(columns_);
  rule();
  for (const auto& row : rows_) {
    if (row.separator) {
      rule();
    } else {
      emit(row.cells);
    }
  }
  rule();
  return os.str();
}

std::string Table::render_markdown() const {
  CDSFLOW_EXPECT(!columns_.empty(), "render requires columns");
  std::ostringstream os;
  if (!title_.empty()) os << "**" << title_ << "**\n\n";
  os << '|';
  for (const auto& c : columns_) os << ' ' << c << " |";
  os << "\n|";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (aligns_[c] == Align::kRight ? " ---: |" : " --- |");
  }
  os << '\n';
  for (const auto& row : rows_) {
    if (row.separator) continue;
    os << '|';
    for (const auto& cell : row.cells) os << ' ' << cell << " |";
    os << '\n';
  }
  return os.str();
}

std::string Table::render_csv() const {
  CDSFLOW_EXPECT(!columns_.empty(), "render requires columns");
  std::ostringstream os;
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (const char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += '"';
    return q;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "" : ",") << quote(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << quote(row.cells[c]);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace cdsflow::report
