/// \file stream_pricer.hpp
/// Persistent-grid streaming pricer: BatchPricer semantics with the grid
/// cache retained across micro-batches and hazard-quote updates applied
/// incrementally.
///
/// The batch pricer (cds/batch_pricer.hpp) rebuilds its dedup map and curve
/// grids on every call -- the right contract for one-shot portfolio pricing,
/// the wrong one for a live AAT-style feed where micro-batches arrive every
/// few hundred microseconds and mostly repeat the same standard-tenor
/// schedules. This pricer keeps the unique-schedule grids alive across
/// calls:
///
///   * *Cross-batch dedup.* The first micro-batch on a tenor book tabulates
///     its handful of grids; every later batch prices as pure O(1) combines
///     against the cached sums. Steady-state cost per option is therefore
///     the same as (or below) the batch kernel's, which re-tabulates per
///     batch.
///   * *Incremental hazard-quote updates.* The hazard curve is
///     piecewise-constant: rate h_k applies on (tau_{k-1}, tau_k], so moving
///     quote k changes the integrated hazard -- and hence Q(t) -- only for
///     t > tau_{k-1}. update_hazard_quote() rebuilds the O(knots) prefix
///     table (cheap: one multiply-add per knot, no exp) and re-tabulates
///     only the cached grids whose maturity extends past tau_{k-1}, reusing
///     the discount column (the interest curve did not move). Grids at or
///     below the threshold keep survival values that are bit-identical to
///     what a full rebuild would produce, because the prefix sums below the
///     moved knot accumulate the same terms in the same order -- so the
///     incremental state is bit-consistent with a freshly-built BatchPricer
///     on the updated curve (asserted by tests/test_stream_pricer.cpp).
///
/// Risk mode reuses the batched Greeks kernel: price_with_sensitivities()
/// delegates each micro-batch to BatchPricer::price_with_sensitivities on
/// the current curves (the bumped-scenario curves move with every quote, so
/// the risk pass is rebuilt lazily after an update rather than patched).
///
/// Thread compatibility matches BatchPricer's workspaces: one StreamPricer
/// per concurrent caller (the stream runtime holds one replica per lane and
/// applies quote updates to every replica at a batch barrier).

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cds/batch_pricer.hpp"
#include "cds/curve.hpp"
#include "cds/hazard.hpp"
#include "cds/risk.hpp"
#include "cds/types.hpp"

namespace cdsflow::cds {

struct StreamPricerConfig {
  /// Compute per-option Greeks per micro-batch (the streaming risk feed).
  bool risk_mode = false;
  /// Central-difference bump for risk mode (compute_sensitivities default).
  double risk_bump = 1e-4;
  /// CS01 ladder bucket edges for risk mode; empty disables the ladder.
  std::vector<double> ladder_edges;
  /// SIMD tier of the grid tabulations and per-option combines
  /// (cds/vector_kernel.hpp; clamped to the host). kScalar reproduces the
  /// scalar batch kernel bit-for-bit; vector levels hold
  /// VectorKernelContract against it. Risk mode forwards the level to the
  /// batched Greeks kernel.
  simd::Level kernel_level = simd::Level::kScalar;
};

/// Lifetime accounting of one stream pricer replica.
struct StreamPricerStats {
  std::uint64_t options_priced = 0;
  std::uint64_t batches = 0;
  /// Distinct (maturity, frequency) grids currently cached.
  std::size_t cached_grids = 0;
  /// Schedule points materialised across all cached grids.
  std::size_t grid_points = 0;
  /// Hazard-quote updates applied.
  std::uint64_t hazard_updates = 0;
  /// Grids re-tabulated by those updates (<= hazard_updates * cached_grids;
  /// the gap is the work incrementality saved).
  std::uint64_t grids_retabulated = 0;
  /// Grid tabulations a per-update full rebuild would have performed.
  std::uint64_t full_rebuild_grids = 0;
};

class StreamPricer {
 public:
  /// Both curves are copied; the interest curve is validated once (it never
  /// changes) and the hazard prefix table is built for the initial curve.
  StreamPricer(TermStructure interest, TermStructure hazard,
               StreamPricerConfig config = {});

  /// Prices one micro-batch into out[i] (ids preserved, batch order).
  /// Unique grids accumulate in the cache across calls; spreads are
  /// bit-identical to BatchPricer::price on the current curves.
  void price(std::span<const CdsOption> options, std::span<SpreadResult> out);

  /// Risk-mode micro-batch: spreads + per-option CS01/IR01/Rec01/JTD (and,
  /// when the config carries ladder edges, the bucketed CS01 ladder,
  /// row-major per option). Requires config.risk_mode; delegates to the
  /// batched Greeks kernel on the current curves, so results are
  /// bit-consistent with BatchPricer::price_with_sensitivities.
  void price_with_sensitivities(std::span<const CdsOption> options,
                                std::span<SpreadResult> out,
                                std::span<Sensitivities> sensitivities,
                                std::span<double> ladder_out);

  /// Applies a hazard-quote update: replaces knot `knot`'s rate with `rate`
  /// (finite, positive) and re-tabulates only the cached grids whose
  /// maturity extends past the preceding knot. Returns the number of grids
  /// re-tabulated. O(knots + affected grid points); bit-consistent with a
  /// full rebuild on the updated curve.
  std::size_t update_hazard_quote(std::size_t knot, double rate);

  const TermStructure& interest() const { return interest_; }
  const TermStructure& hazard() const { return hazard_; }
  const StreamPricerConfig& config() const { return config_; }
  bool risk_mode() const { return config_.risk_mode; }
  /// Buckets per option that price_with_sensitivities writes (0 without a
  /// ladder).
  std::size_t ladder_buckets() const {
    return config_.ladder_edges.empty() ? 0 : config_.ladder_edges.size() - 1;
  }
  const StreamPricerStats& stats() const { return stats_; }

 private:
  /// Tabulates grid `g`'s columns and leg sums in place.
  void tabulate(std::size_t g, bool refresh_discount);
  /// (Re)builds the lazily-cached risk-kernel pricer after quote updates.
  const BatchPricer& risk_pricer();

  TermStructure interest_;
  TermStructure hazard_;
  HazardPrefix hazard_prefix_;
  StreamPricerConfig config_;

  /// Persistent grid cache; same layout as the batch workspace, but never
  /// cleared between batches (grid_of is per-call scratch).
  BatchPricer::Workspace grids_;
  /// Number of points of grid g: grid_offset[g+1] - grid_offset[g] needs a
  /// sentinel; store explicit sizes instead so grids stay appendable.
  std::vector<std::size_t> grid_points_;

  /// Risk mode: the batched Greeks kernel on the current curves, rebuilt
  /// lazily after a quote update. The RiskWorkspace stays warm across
  /// batches.
  std::unique_ptr<BatchPricer> risk_pricer_;
  BatchPricer::RiskWorkspace risk_workspace_;
  BatchRiskConfig risk_config_;
  bool risk_dirty_ = true;

  StreamPricerStats stats_;
};

}  // namespace cdsflow::cds
