/// \file bootstrap.hpp
/// Hazard-curve bootstrapping: the inverse of the pricing problem.
///
/// Markets quote par CDS spreads at standard tenors; the pricing engine
/// needs a hazard-rate term structure. The bootstrapper builds a piecewise-
/// constant hazard curve segment by segment: for each quoted tenor
/// (ascending), it solves for the constant hazard rate on the newest
/// segment such that the par CDS of that tenor reprices to its quoted
/// spread, holding the already-bootstrapped earlier segments fixed -- the
/// standard ISDA-style construction, using the same ReferencePricer the
/// engines validate against.

#pragma once

#include <vector>

#include "cds/curve.hpp"
#include "cds/types.hpp"

namespace cdsflow::cds {

/// One market quote: tenor (years) and par spread (bps).
struct SpreadQuote {
  double tenor_years = 0.0;
  double spread_bps = 0.0;
};

struct BootstrapOptions {
  /// Payment frequency and recovery assumed for the quoted contracts
  /// (standard CDS: quarterly, 40%).
  double payment_frequency = 4.0;
  double recovery_rate = 0.4;
  /// Hazard search bracket per segment.
  double hazard_min = 1e-8;
  double hazard_max = 5.0;
  /// Repricing tolerance in bps.
  double tolerance_bps = 1e-8;
};

struct BootstrapResult {
  /// Piecewise-constant hazard curve with one knot per quote tenor.
  TermStructure hazard;
  /// Max |repricing error| over the quotes, in bps.
  double max_error_bps = 0.0;
  /// Root-finder iterations summed over all segments.
  int total_iterations = 0;
};

/// Bootstraps a hazard curve that reprices `quotes` on the given interest
/// curve. Quotes must have strictly increasing positive tenors and positive
/// spreads. Throws cdsflow::Error when a segment cannot be solved (e.g.
/// arbitrage-inconsistent quotes that would need a negative hazard).
BootstrapResult bootstrap_hazard_curve(const TermStructure& interest,
                                       const std::vector<SpreadQuote>& quotes,
                                       BootstrapOptions options = {});

}  // namespace cdsflow::cds
