/// \file vector_kernel_arch.hpp
/// Internal interface between the vector-kernel dispatcher
/// (vector_kernel.cpp) and the per-architecture translation units
/// (vector_kernel_avx2.cpp / vector_kernel_avx512.cpp).
///
/// The arch TUs are compiled with -mavx2/-mavx512* flags, so they must not
/// instantiate inline functions from common headers (a comdat copy built
/// with wider ISA flags could be the one the linker keeps, crashing hosts
/// without that ISA). Everything crosses this boundary as raw pointers and
/// sizes; the dispatcher unpacks HazardPrefix / TermStructure / TimePoint
/// spans and handles the scalar tails, and the arch entry points require
/// n to be a multiple of the lane width.

#pragma once

#include <cstddef>
#include <cstdint>

namespace cdsflow::cds::simd {

/// Bucketed knot-search acceleration table (optional: buckets == nullptr
/// makes the arch kernels fall back to the branchless binary search).
///
/// The dispatcher builds it per call when the point count justifies the
/// O(n_buckets) build (vector_kernel.cpp's build_search_lut): a uniform
/// grid of
/// `n_buckets` buckets over [t0, t0 + n_buckets * width] whose width is at
/// most *half* the smallest knot gap, where buckets[k] is the exact
/// std::lower_bound (or std::upper_bound, per table) index of the bucket's
/// anchor `fma(k, width, t0)`. A lane query re-derives its exact bucket
/// with the same fma anchors and then needs at most ONE masked advance:
/// a half-gap bucket can hold at most one knot, so the bound index of any
/// t inside bucket k is buckets[k] or buckets[k] + 1. The result is the
/// exact scalar search index -- bit-identical bracket choice, ~10 data-
/// dependent gathers per lane replaced by 2.
struct SearchLut {
  const std::int64_t* buckets = nullptr;
  double t0 = 0.0;
  double width = 0.0;
  double inv_width = 0.0;
  std::int64_t n_buckets = 0;
};

/// TermStructure, flattened (times/values SoA; size >= 2 -- single-knot
/// curves are degenerate constants the dispatcher handles itself).
struct CurveView {
  const double* times;
  const double* values;
  std::size_t size;
  /// Optional upper_bound table over `times`.
  SearchLut lut;
};

/// HazardPrefix, flattened.
struct PrefixView {
  const double* times;
  const double* rates;
  const double* lambda;
  std::size_t size;
  /// Optional lower_bound table over `times`.
  SearchLut lut;
};

}  // namespace cdsflow::cds::simd

// Each arch namespace implements the same four kernels (see
// vector_kernel_impl.hpp for the single shared implementation):
//
//   survival_column:  q_out[i] = exp(-Lambda(t_i)); ts strided by
//                     `t_stride` doubles (TimePoint arrays pass 2).
//   discount_column:  d_out[i] = exp(-interpolate_fast(t_i) * t_i).
//   combine_spreads:  spread_out[i * out_stride] from the recovery rates
//                     (strided AoS doubles), grid ids and grid sums.
//   exp_columns:      out[i] = exp_pd(xs[i]).

#if defined(CDSFLOW_HAVE_AVX2)
namespace cdsflow::cds::simd::detail_avx2 {
void survival_column(const PrefixView& prefix, const double* ts,
                     std::size_t t_stride, std::size_t n, double* q_out);
void discount_column(const CurveView& curve, const double* ts,
                     std::size_t t_stride, std::size_t n, double* d_out);
void combine_spreads(const double* recovery, std::size_t rec_stride,
                     const std::uint32_t* grid_of, const double* annuity,
                     const double* payoff, std::size_t n, double* spread_out,
                     std::size_t out_stride);
void exp_columns(const double* xs, std::size_t n, double* out);
}  // namespace cdsflow::cds::simd::detail_avx2
#endif

#if defined(CDSFLOW_HAVE_AVX512)
namespace cdsflow::cds::simd::detail_avx512 {
void survival_column(const PrefixView& prefix, const double* ts,
                     std::size_t t_stride, std::size_t n, double* q_out);
void discount_column(const CurveView& curve, const double* ts,
                     std::size_t t_stride, std::size_t n, double* d_out);
void combine_spreads(const double* recovery, std::size_t rec_stride,
                     const std::uint32_t* grid_of, const double* annuity,
                     const double* payoff, std::size_t n, double* spread_out,
                     std::size_t out_stride);
void exp_columns(const double* xs, std::size_t n, double* out);
}  // namespace cdsflow::cds::simd::detail_avx512
#endif
