#include "engines/cpu_engine.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace cdsflow::engine {

CpuEngine::CpuEngine(cds::TermStructure interest, cds::TermStructure hazard,
                     CpuEngineConfig config)
    : pricer_(std::move(interest), std::move(hazard)),
      threads_(config.threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

std::string CpuEngine::name() const {
  return threads_ == 1 ? "cpu" : ("cpu-mt" + std::to_string(threads_));
}

std::string CpuEngine::description() const {
  return "Bespoke C++ CPU engine, " + std::to_string(threads_) +
         " thread(s) (" + (uses_openmp() ? "OpenMP" : "std::thread") + ")";
}

bool CpuEngine::uses_openmp() {
#if defined(CDSFLOW_HAVE_OPENMP)
  return true;
#else
  return false;
#endif
}

PricingRun CpuEngine::price(const std::vector<cds::CdsOption>& options) {
  CDSFLOW_EXPECT(!options.empty(), "price() requires options");
  PricingRun run;
  run.results.resize(options.size());

  const auto n = static_cast<std::ptrdiff_t>(options.size());
  const auto t0 = std::chrono::steady_clock::now();
  if (threads_ <= 1) {
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      run.results[static_cast<std::size_t>(i)] = {
          options[static_cast<std::size_t>(i)].id,
          pricer_.spread_bps(options[static_cast<std::size_t>(i)])};
    }
  } else {
#if defined(CDSFLOW_HAVE_OPENMP)
#pragma omp parallel for schedule(static) num_threads(static_cast<int>(threads_))
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      run.results[static_cast<std::size_t>(i)] = {
          options[static_cast<std::size_t>(i)].id,
          pricer_.spread_bps(options[static_cast<std::size_t>(i)])};
    }
#else
    std::vector<std::thread> workers;
    workers.reserve(threads_);
    const std::size_t chunk =
        (options.size() + threads_ - 1) / threads_;
    for (unsigned t = 0; t < threads_; ++t) {
      const std::size_t begin = static_cast<std::size_t>(t) * chunk;
      const std::size_t end =
          std::min(options.size(), begin + chunk);
      if (begin >= end) break;
      workers.emplace_back([this, &options, &run, begin, end] {
        for (std::size_t i = begin; i < end; ++i) {
          run.results[i] = {options[i].id, pricer_.spread_bps(options[i])};
        }
      });
    }
    for (auto& w : workers) w.join();
#endif
  }
  const auto t1 = std::chrono::steady_clock::now();

  run.kernel_seconds = std::chrono::duration<double>(t1 - t0).count();
  run.kernel_cycles = 0;  // native execution
  run.transfer_seconds = 0.0;
  run.invocations = 1;
  run.finalise(options.size());
  return run;
}

}  // namespace cdsflow::engine
