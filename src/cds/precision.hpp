/// \file precision.hpp
/// Reduced-precision pricing -- the paper's future-work direction:
/// "further exploration around reduced precision, especially within the
/// context of the future Xilinx Versal ACAP with AI engines for
/// accelerating single precision floating point and fixed-point
/// arithmetic, would be very interesting." (Sec. V)
///
/// This module implements the numerical half of that study: the complete
/// CDS model evaluated in IEEE single precision (and a mixed mode that
/// keeps only the accumulations in double), so the accuracy cost of
/// dropping precision can be quantified in basis points against the fp64
/// golden model. The hardware half -- what single precision buys on the
/// FPGA -- is modelled by fpga::ReducedPrecisionModel.

#pragma once

#include <vector>

#include "cds/curve.hpp"
#include "cds/schedule.hpp"
#include "cds/types.hpp"

namespace cdsflow::cds {

enum class Precision {
  kDouble,        ///< fp64 everywhere (the golden model)
  kSingle,        ///< fp32 everywhere
  kMixed,         ///< fp32 arithmetic, fp64 accumulators (a common FPGA
                  ///< compromise: cheap multipliers, safe sums)
};

const char* to_string(Precision precision);

/// Prices one option with the requested arithmetic. kDouble reproduces the
/// golden model bit-for-bit.
double spread_bps_with_precision(const TermStructure& interest,
                                 const TermStructure& hazard,
                                 const CdsOption& option,
                                 Precision precision);

/// Same with a caller-owned schedule buffer, reusable across a book loop.
double spread_bps_with_precision(const TermStructure& interest,
                                 const TermStructure& hazard,
                                 const CdsOption& option, Precision precision,
                                 std::vector<TimePoint>& scratch);

/// Error summary of a reduced-precision pricer over a book.
struct PrecisionErrorReport {
  Precision precision = Precision::kSingle;
  double max_abs_error_bps = 0.0;
  double mean_abs_error_bps = 0.0;
  double max_rel_error = 0.0;
};

PrecisionErrorReport evaluate_precision(const TermStructure& interest,
                                        const TermStructure& hazard,
                                        const std::vector<CdsOption>& book,
                                        Precision precision);

/// The SIMD vector kernel's precision contract against the scalar batch
/// kernel (cds/vector_kernel.hpp; rationale and derivation in
/// docs/VECTOR_LANES.md). The vector path never reassociates a reduction --
/// leg sums always accumulate in the scalar reference's order -- so the only
/// divergence is the per-element column math: the polynomial exp and the
/// fused multiply-adds inside interpolation. Each bound below is asserted by
/// tests/test_vector_kernel.cpp; loosening one is an interface change and
/// must update the doc and the tests together.
struct VectorKernelContract {
  /// Vectorised exp vs std::exp, in units in the last place. Measured at 1
  /// ulp on both AVX2 and AVX-512; 4 leaves margin for other libms' scalar
  /// exp (itself not correctly rounded).
  static constexpr double kExpUlpBound = 4.0;
  /// Batch spreads, vector vs scalar kernel, relative. Column errors of a
  /// few ulp propagate through the premium/accrual/payoff sums and one
  /// division essentially unamplified; 1e-11 holds ~two decades of margin
  /// over the observed worst case. Rec01 obeys the same bound (it is a
  /// reweighting of base sums).
  static constexpr double kSpreadRelTol = 1e-11;
  /// CS01 / IR01 / ladder buckets, vector vs scalar kernel, relative term.
  static constexpr double kGreekRelTol = 1e-9;
  /// Absolute floor for Greeks of near-zero spreads, where both other terms
  /// of greek_tolerance() vanish.
  static constexpr double kGreekAbsFloor = 1e-12;
  /// The bound for one bumped Greek. Three regimes, take the largest:
  /// relative when the Greek is well away from zero; the amplified spread
  /// error otherwise -- the central difference (up - dn) / (2 * bump) * 1e-4
  /// scales each scenario spread's error by 1e-4 / (2 * bump) (= 0.5 at the
  /// default bump), which dominates for Greeks that are small relative to
  /// their spread (IR01 on a rate-insensitive book, far ladder buckets); and
  /// the hard floor when the spread itself is ~0.
  static constexpr double greek_tolerance(double greek, double spread_bps,
                                          double bump) {
    const double rel = kGreekRelTol * (greek < 0 ? -greek : greek);
    const double amplified = kSpreadRelTol *
                             (spread_bps < 0 ? -spread_bps : spread_bps) *
                             (1e-4 / (2.0 * bump));
    const double tol = rel > amplified ? rel : amplified;
    return tol > kGreekAbsFloor ? tol : kGreekAbsFloor;
  }
  // JTD (= 1 - R, no curve math) and the pass-3 spread combine are bit-exact
  // by construction: identical IEEE expressions evaluated per lane. The
  // kScalar fallback is bit-identical to the scalar batch kernel, not merely
  // within tolerance. Both are EXPECT_EQ'd in the tests, so they carry no
  // constant here.
};

}  // namespace cdsflow::cds
