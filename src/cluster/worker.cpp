#include "cluster/worker.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "engines/registry.hpp"
#include "fpga/power.hpp"
#include "workload/options.hpp"

namespace cdsflow::cluster {
namespace {

std::string clip_detail(const std::string& detail) {
  return detail.size() <= net::kMaxRejectDetailBytes
             ? detail
             : detail.substr(0, net::kMaxRejectDetailBytes);
}

bool validate_options(const std::vector<cds::CdsOption>& options,
                      std::string* error) {
  for (const auto& option : options) {
    if (!std::isfinite(option.maturity_years) ||
        !std::isfinite(option.payment_frequency) ||
        !std::isfinite(option.recovery_rate)) {
      *error = "option " + std::to_string(option.id) +
               " carries a non-finite field";
      return false;
    }
    try {
      option.validate();
    } catch (const Error& e) {
      *error = e.what();
      return false;
    }
  }
  return true;
}

/// Risk mode of a registry engine name: the CPU grammar's -risk token
/// (simulated FPGA engines only price).
bool engine_risk_mode(const std::string& name,
                      const engine::CpuEngineConfig& base) {
  engine::CpuEngineConfig parsed = base;
  if (engine::parse_cpu_engine_name(name, parsed)) {
    return parsed.risk_mode;
  }
  return false;
}

}  // namespace

ClusterWorker::ClusterWorker(cds::TermStructure interest,
                             cds::TermStructure hazard, WorkerConfig config)
    : config_(std::move(config)),
      runtime_(std::move(interest), std::move(hazard), config_.runtime),
      fit_(config_.fit),
      risk_mode_(engine_risk_mode(config_.runtime.engine,
                                  config_.runtime.cpu)) {
  if (fit_.options_per_second > 0.0) {
    fit_.engine_name = config_.runtime.engine;
    if (fit_.watts <= 0.0) {
      fit_.watts = fpga::CpuPowerModel{}.watts(runtime_.lanes());
    }
    return;  // pinned fit: nothing to calibrate
  }
  // Self-calibration: the planner's probe protocol (warmup + best-of-N per
  // size) against the local runtime, so the reported fit prices the exact
  // configuration shards will run on.
  CDSFLOW_EXPECT(!config_.probe_sizes.empty(),
                 "worker calibration needs at least one probe size");
  std::vector<engine::ProbeMeasurement> probes;
  probes.reserve(config_.probe_sizes.size());
  for (const std::size_t size : config_.probe_sizes) {
    workload::PortfolioSpec spec;
    spec.count = size;
    const auto book = workload::make_portfolio(spec);
    for (unsigned i = 0; i < config_.probe_warmup_runs; ++i) {
      (void)runtime_.price(book);  // discarded
    }
    double best = std::numeric_limits<double>::infinity();
    for (unsigned i = 0; i < std::max(1u, config_.probe_repeats); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)runtime_.price(book);
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    probes.push_back({size, best});
  }
  const double watts = config_.fit.watts > 0.0
                           ? config_.fit.watts
                           : fpga::CpuPowerModel{}.watts(runtime_.lanes());
  fit_ = engine::fit_backend_model(config_.runtime.engine, watts,
                                   std::move(probes));
}

void ClusterWorker::on_frame(net::Server& server, int conn,
                             net::Frame frame) {
  saw_connection_ = true;
  switch (frame.type) {
    case net::FrameType::kNodeProbe: {
      if (frame.probe_reply) {
        break;  // a reply sent *to* a worker is a protocol violation
      }
      ++stats_.probes;
      server.send(conn, net::encode_node_info(
                            frame.request, runtime_.lanes(),
                            fit_.options_per_second, fit_.setup_seconds,
                            fit_.watts, config_.runtime.engine));
      return;
    }
    case net::FrameType::kShardPrice: {
      if (frame.risk != risk_mode_) {
        ++stats_.rejects;
        server.send(conn,
                    net::encode_reject(
                        0, frame.request, net::RejectReason::kWrongMode,
                        risk_mode_ ? "worker engine runs in risk mode"
                                   : "worker engine runs in price mode"));
        return;
      }
      std::string error;
      if (!validate_options(frame.options, &error)) {
        ++stats_.rejects;
        server.send(conn, net::encode_reject(0, frame.request,
                                             net::RejectReason::kMalformed,
                                             clip_detail(error)));
        return;
      }
      if (config_.fail_after_shards > 0 &&
          stats_.shards >= config_.fail_after_shards) {
        // Injected mid-shard death: the coordinator sees the connection
        // drop with this shard outstanding and must resubmit it.
        ++stats_.injected_failures;
        server.close_connection(conn);
        return;
      }
      const auto run = runtime_.price(frame.options);
      ++stats_.shards;
      stats_.options += frame.options.size();
      server.send(conn, net::encode_shard_result(
                            frame.request, run.run.total_seconds,
                            run.run.results, run.run.sensitivities));
      return;
    }
    case net::FrameType::kQuoteUpdate:
    case net::FrameType::kPriceRequest:
    case net::FrameType::kRiskRequest:
    case net::FrameType::kResult:
    case net::FrameType::kReject:
    case net::FrameType::kShardResult:
      break;
  }
  // Anything else at a worker is a protocol violation: reject, then drop
  // the connection (the service does the same for cluster frames).
  ++stats_.rejects;
  server.send(conn, net::encode_reject(
                        0, frame.request, net::RejectReason::kMalformed,
                        std::string("unexpected frame at a cluster worker (") +
                            net::to_string(frame.type) + ")"));
  server.close_connection(conn);
}

void ClusterWorker::on_malformed(net::Server& server, int conn,
                                 const std::string& error) {
  ++stats_.connections_poisoned;
  // Last frame out before the server tears the connection down -- this is
  // how a version-mismatched peer learns it is being rejected.
  server.send(conn, net::encode_reject(0, 0, net::RejectReason::kMalformed,
                                       clip_detail(error)));
}

void ClusterWorker::on_tick(net::Server& server) {
  if (config_.stop_when_idle && saw_connection_ &&
      server.connections() == 0) {
    server.stop();
  }
}

void ClusterWorker::on_disconnect(int /*conn*/) { saw_connection_ = true; }

}  // namespace cdsflow::cluster
