/// \file vector_kernel_avx2.cpp
/// AVX2 (4 x double lanes) instantiation of the vector kernels. Compiled
/// with -mavx2 -mfma (CMakeLists.txt set_source_files_properties); empty
/// when the build disabled SIMD or the compiler lacks the flags.

#include "cds/vector_kernel_arch.hpp"

#if defined(CDSFLOW_HAVE_AVX2)
#define CDSFLOW_SIMD_NS detail_avx2
#define CDSFLOW_SIMD_WIDTH 4
#include "cds/vector_kernel_impl.hpp"
#endif
