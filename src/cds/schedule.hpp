/// \file schedule.hpp
/// Premium payment schedules ("distinct time points", paper Fig. 1).
///
/// For each option the model first determines the set of time points that
/// "extend to the maturity date"; every subsequent component loops over
/// them. Payments fall every 1/frequency years; the final point is the
/// maturity itself, which may make the last period short (a "stub").

#pragma once

#include <cstddef>
#include <vector>

#include "cds/types.hpp"

namespace cdsflow::cds {

/// One premium payment time point.
struct TimePoint {
  /// Payment date as a year fraction.
  double t = 0.0;
  /// Accrual period ending at t (t_i - t_{i-1}, with t_0 = 0).
  double dt = 0.0;
};

/// Payment schedule for one option: time points t_1 < t_2 < ... < t_n with
/// t_n == maturity.
std::vector<TimePoint> make_schedule(const CdsOption& option);

/// Appends the same schedule to `out` (existing contents are preserved) and
/// returns the number of points appended. Lets hot loops reuse one buffer
/// across many options instead of heap-allocating per option -- the scalar
/// pricing paths and the batch pricer's flat schedule arena both use this.
std::size_t make_schedule(const CdsOption& option, std::vector<TimePoint>& out);

/// Number of time points make_schedule would produce, without materialising
/// them (engines use this to size streams and account work).
std::size_t schedule_size(const CdsOption& option);

}  // namespace cdsflow::cds
