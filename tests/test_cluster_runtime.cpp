/// \file test_cluster_runtime.cpp
/// Multi-process cluster scale-out: planner properties of plan_cluster()
/// (heterogeneous divergence, link charging) plus end-to-end coordinator /
/// worker runs over real unix-domain sockets -- the bit-identity contract
/// (docs/CLUSTER.md) against the in-process PortfolioRuntime, and the
/// coordinator edge cases: connect timeout, mid-shard worker death with
/// orphan resubmission, wrong-mode rejection, and version-mismatch
/// poisoning at the worker.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cluster/coordinator.hpp"
#include "cluster/worker.hpp"
#include "common/error.hpp"
#include "engines/planner.hpp"
#include "net/client.hpp"
#include "net/codec.hpp"
#include "net/server.hpp"
#include "runtime/portfolio_runtime.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"

namespace cdsflow {
namespace {

cds::TermStructure test_interest() {
  return workload::paper_interest_curve(64, 11);
}
cds::TermStructure test_hazard() { return workload::paper_hazard_curve(64, 23); }

std::string unique_socket_path(const char* tag) {
  static int counter = 0;
  return "/tmp/cdsflow-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + "-" + std::to_string(counter++) +
         ".sock";
}

std::vector<cds::CdsOption> test_book(std::size_t count, unsigned seed = 7) {
  workload::PortfolioSpec spec;
  spec.count = count;
  spec.seed = seed;
  return workload::make_portfolio(spec);
}

engine::ClusterNode make_node(double ops_per_second,
                              const std::string& address = "node") {
  engine::ClusterNode node;
  node.address = address;
  node.fit.engine_name = "cpu-batch";
  node.fit.options_per_second = ops_per_second;
  node.fit.setup_seconds = 1e-4;
  node.fit.watts = 60.0;
  return node;
}

/// One in-process worker: a net::Server on its own thread driven by a
/// ClusterWorker, torn down (stop + join) by the destructor. Uses a pinned
/// fit so plans are deterministic and construction is instant.
struct InProcessWorker {
  std::string path;
  std::unique_ptr<cluster::ClusterWorker> worker;
  std::unique_ptr<net::Server> server;
  std::thread thread;

  InProcessWorker(const char* tag, cluster::WorkerConfig config) {
    path = unique_socket_path(tag);
    worker = std::make_unique<cluster::ClusterWorker>(
        test_interest(), test_hazard(), std::move(config));
    net::ServerConfig server_config;
    server_config.unix_path = path;
    server = std::make_unique<net::Server>(server_config);
    thread = std::thread([this] { server->run(*worker); });
  }

  ~InProcessWorker() {
    server->stop();
    thread.join();
  }
};

cluster::WorkerConfig pinned_worker(const std::string& engine,
                                    double ops_per_second) {
  cluster::WorkerConfig config;
  config.runtime.engine = engine;
  config.runtime.workers = 1;
  config.fit.options_per_second = ops_per_second;
  config.fit.setup_seconds = 1e-4;
  config.fit.watts = 60.0;
  return config;
}

cluster::NodeSpec node_spec(const std::string& path) {
  cluster::NodeSpec spec;
  spec.unix_path = path;
  spec.connect_timeout_seconds = 10.0;
  // Keep the link model configuration-only so plans depend on the pinned
  // fits, not on loopback timing noise.
  spec.measure_latency = false;
  return spec;
}

void expect_run_bit_identical(const engine::PricingRun& a,
                              const engine::PricingRun& b, bool risk) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].id, b.results[i].id);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.results[i].spread_bps),
              std::bit_cast<std::uint64_t>(b.results[i].spread_bps))
        << "spread mismatch at row " << i;
  }
  if (!risk) {
    return;
  }
  ASSERT_EQ(a.sensitivities.size(), b.sensitivities.size());
  for (std::size_t i = 0; i < a.sensitivities.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.sensitivities[i].cs01),
              std::bit_cast<std::uint64_t>(b.sensitivities[i].cs01));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.sensitivities[i].ir01),
              std::bit_cast<std::uint64_t>(b.sensitivities[i].ir01));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.sensitivities[i].rec01),
              std::bit_cast<std::uint64_t>(b.sensitivities[i].rec01));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.sensitivities[i].jtd),
              std::bit_cast<std::uint64_t>(b.sensitivities[i].jtd));
  }
}

// --- plan_cluster() properties ----------------------------------------------

TEST(ClusterPlanner, HeterogeneousFitsDivergeFromTheHomogeneousSplit) {
  engine::BatchRequirements requirements;
  requirements.n_options = 4096;
  requirements.deadline_seconds = 3600.0;

  // Equal nodes: the earliest-finish schedule balances shards evenly.
  const std::vector<engine::ClusterNode> equal = {make_node(1e6, "a"),
                                                  make_node(1e6, "b")};
  const auto balanced =
      engine::plan_cluster(equal, requirements, false, {512}).front();
  ASSERT_EQ(balanced.shards_per_node.size(), 2u);
  EXPECT_EQ(balanced.shards_per_node[0], balanced.shards_per_node[1]);

  // A 4x throughput imbalance must shift shards toward the fast node --
  // the acceptance gate: distinct fits provably change the assignment.
  const std::vector<engine::ClusterNode> skewed = {make_node(4e6, "fast"),
                                                   make_node(1e6, "slow")};
  const auto skewed_plan =
      engine::plan_cluster(skewed, requirements, false, {512}).front();
  ASSERT_EQ(skewed_plan.shards_per_node.size(), 2u);
  EXPECT_GT(skewed_plan.shards_per_node[0], skewed_plan.shards_per_node[1]);
  EXPECT_NE(skewed_plan.node_of_shard, balanced.node_of_shard);
  // Same book, same shard size: every shard is still assigned exactly once.
  EXPECT_EQ(skewed_plan.shards_per_node[0] + skewed_plan.shards_per_node[1],
            skewed_plan.n_shards);
  EXPECT_EQ(skewed_plan.n_shards, balanced.n_shards);
}

TEST(ClusterPlanner, LinkChargeFollowsTheExactWireByteFormula) {
  auto node = make_node(1e6);
  node.link.latency_seconds = 1e-3;
  node.link.bytes_per_second = 1e6;
  for (const std::size_t n : {std::size_t{1}, std::size_t{64},
                              std::size_t{1000}}) {
    for (const bool risk : {false, true}) {
      const std::uint64_t bytes = net::shard_price_frame_bytes(n) +
                                  net::shard_result_frame_bytes(n, risk);
      const double expected = node.fit.seconds_for(n) +
                              node.link.seconds_for(bytes);
      EXPECT_DOUBLE_EQ(engine::cluster_shard_seconds(node, n, risk),
                       expected);
    }
  }
  // Risk rows are wider on the wire, so the risk charge strictly dominates.
  EXPECT_GT(engine::cluster_shard_seconds(node, 256, true),
            engine::cluster_shard_seconds(node, 256, false));
}

TEST(ClusterPlanner, SlowerLinkRaisesProjectedTimeMonotonically) {
  engine::BatchRequirements requirements;
  requirements.n_options = 2048;
  requirements.deadline_seconds = 3600.0;
  auto fast_link = make_node(1e6);
  auto slow_link = make_node(1e6);
  slow_link.link.bytes_per_second = 1e4;  // 100,000x slower pipe
  const auto fast = engine::plan_cluster({fast_link}, requirements, false,
                                         {256}).front();
  const auto slow = engine::plan_cluster({slow_link}, requirements, false,
                                         {256}).front();
  EXPECT_GT(slow.projected_seconds, fast.projected_seconds);
  EXPECT_GT(slow.projected_joules, fast.projected_joules);
}

TEST(ClusterPlanner, RejectsDegenerateInputs) {
  engine::BatchRequirements requirements;
  requirements.n_options = 128;
  requirements.deadline_seconds = 1.0;
  EXPECT_THROW(engine::plan_cluster({}, requirements), Error);
  auto unfit = make_node(0.0);
  EXPECT_THROW(engine::plan_cluster({unfit}, requirements), Error);
  engine::BatchRequirements empty_batch;
  empty_batch.n_options = 0;
  EXPECT_THROW(engine::plan_cluster({make_node(1e6)}, empty_batch), Error);
}

// --- end-to-end bit-identity ------------------------------------------------

TEST(ClusterRuntime, SingleNodeClusterIsBitIdenticalToTheLocalRuntime) {
  InProcessWorker worker("cluster-n1", pinned_worker("cpu-batch", 1e6));
  cluster::CoordinatorConfig config;
  config.nodes = {node_spec(worker.path)};
  config.shard_size = 96;
  cluster::ClusterCoordinator coordinator(config);

  const auto book = test_book(500);
  const auto cluster_run = coordinator.price(book);
  EXPECT_EQ(cluster_run.resubmissions, 0u);
  EXPECT_EQ(cluster_run.nodes_lost, 0u);
  EXPECT_GT(cluster_run.run.options_per_second, 0.0);

  runtime::RuntimeConfig local_config;
  local_config.engine = "cpu-batch";
  local_config.workers = 1;
  runtime::PortfolioRuntime local(test_interest(), test_hazard(),
                                  local_config);
  const auto local_run = local.price(book);
  expect_run_bit_identical(cluster_run.run, local_run.run, false);
}

TEST(ClusterRuntime, TwoHeterogeneousNodesMergeBitIdenticallyAndDiverge) {
  // 4:1 pinned fits: the plan must favour the fast node, yet the merged
  // rows must not depend on who priced what.
  InProcessWorker fast("cluster-fast", pinned_worker("cpu-batch", 4e6));
  InProcessWorker slow("cluster-slow", pinned_worker("cpu-batch", 1e6));
  cluster::CoordinatorConfig config;
  config.nodes = {node_spec(fast.path), node_spec(slow.path)};
  config.shard_size = 64;
  cluster::ClusterCoordinator coordinator(config);

  const auto plan = coordinator.plan(512);
  ASSERT_EQ(plan.shards_per_node.size(), 2u);
  EXPECT_GT(plan.shards_per_node[0], plan.shards_per_node[1]);

  const auto book = test_book(512);
  const auto cluster_run = coordinator.price(book);
  EXPECT_EQ(cluster_run.nodes_lost, 0u);
  EXPECT_EQ(cluster_run.shards.size(), plan.n_shards);

  runtime::RuntimeConfig local_config;
  local_config.engine = "cpu-batch";
  local_config.workers = 1;
  runtime::PortfolioRuntime local(test_interest(), test_hazard(),
                                  local_config);
  expect_run_bit_identical(cluster_run.run, local.price(book).run, false);
}

TEST(ClusterRuntime, RiskModeShardsCarryBitIdenticalSensitivities) {
  InProcessWorker a("cluster-risk-a", pinned_worker("cpu-batch-risk", 2e6));
  InProcessWorker b("cluster-risk-b", pinned_worker("cpu-batch-risk", 1e6));
  cluster::CoordinatorConfig config;
  config.nodes = {node_spec(a.path), node_spec(b.path)};
  config.shard_size = 48;
  config.risk = true;
  cluster::ClusterCoordinator coordinator(config);

  const auto book = test_book(300);
  const auto cluster_run = coordinator.price(book);
  ASSERT_EQ(cluster_run.run.sensitivities.size(), book.size());

  runtime::RuntimeConfig local_config;
  local_config.engine = "cpu-batch-risk";
  local_config.workers = 1;
  runtime::PortfolioRuntime local(test_interest(), test_hazard(),
                                  local_config);
  expect_run_bit_identical(cluster_run.run, local.price(book).run, true);
}

// --- coordinator edge cases -------------------------------------------------

TEST(ClusterRuntime, ConnectTimeoutNamesTheUnreachableNode) {
  cluster::CoordinatorConfig config;
  cluster::NodeSpec spec;
  spec.unix_path = unique_socket_path("cluster-nobody");  // never bound
  spec.connect_timeout_seconds = 0.2;
  config.nodes = {spec};
  try {
    cluster::ClusterCoordinator coordinator(config);
    FAIL() << "expected a connect timeout";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("connect timed out"), std::string::npos) << what;
    EXPECT_NE(what.find(spec.unix_path), std::string::npos) << what;
  }
}

TEST(ClusterRuntime, MidShardWorkerDeathResubmitsOrphansToSurvivors) {
  // The failing node answers two shards, then drops the connection with the
  // third in flight; its orphans (in-flight + queued) must drain through
  // the healthy node, and the merged rows must still be bit-identical.
  auto failing = pinned_worker("cpu-batch", 4e6);
  failing.fail_after_shards = 2;
  InProcessWorker dying("cluster-dying", std::move(failing));
  InProcessWorker healthy("cluster-healthy", pinned_worker("cpu-batch", 1e6));

  cluster::CoordinatorConfig config;
  config.nodes = {node_spec(dying.path), node_spec(healthy.path)};
  config.shard_size = 32;  // 10 shards over 320 options
  cluster::ClusterCoordinator coordinator(config);

  const auto book = test_book(320);
  const auto plan = coordinator.plan(book.size());
  ASSERT_GT(plan.shards_per_node[0], 2u)
      << "plan must queue more shards on the dying node than it survives";

  const auto run = coordinator.price(book);
  EXPECT_EQ(run.nodes_lost, 1u);
  EXPECT_GE(run.resubmissions, 1u);
  ASSERT_EQ(run.run.results.size(), book.size());

  runtime::RuntimeConfig local_config;
  local_config.engine = "cpu-batch";
  local_config.workers = 1;
  runtime::PortfolioRuntime local(test_interest(), test_hazard(),
                                  local_config);
  expect_run_bit_identical(run.run, local.price(book).run, false);
  // Every shard the dying node never priced was re-priced by the survivor.
  for (const auto& shard : run.shards) {
    if (shard.resubmitted) {
      EXPECT_EQ(shard.node, 1u);
    }
  }
}

TEST(ClusterRuntime, WrongModeWorkerRejectionIsFatalNotResubmitted) {
  // A price-mode worker sent risk shards is a configuration error: the
  // worker answers kWrongMode and the run aborts instead of retrying.
  InProcessWorker worker("cluster-mode", pinned_worker("cpu-batch", 1e6));
  cluster::CoordinatorConfig config;
  config.nodes = {node_spec(worker.path)};
  config.risk = true;
  cluster::ClusterCoordinator coordinator(config);
  try {
    coordinator.price(test_book(64));
    FAIL() << "expected a wrong-mode rejection";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rejected a shard"), std::string::npos) << what;
    EXPECT_NE(what.find("wrong-mode"), std::string::npos) << what;
  }
}

TEST(ClusterRuntime, VersionMismatchedPeerIsRejectedAndPoisoned) {
  // A peer speaking wire version 1 must get a kMalformed reject naming the
  // version, and nothing after the bad frame may be parsed.
  InProcessWorker worker("cluster-ver", pinned_worker("cpu-batch", 1e6));
  auto client = net::Client::connect_unix(worker.path);
  auto probe = net::encode_node_probe(0);
  probe[4] = 1;  // wire version byte: kWireVersion - 1
  client.send(probe);
  auto reply = client.read_frame_for(5'000'000);
  ASSERT_TRUE(reply.has_value()) << "worker sent no reject before closing";
  EXPECT_EQ(reply->type, net::FrameType::kReject);
  EXPECT_EQ(reply->reason, net::RejectReason::kMalformed);
  EXPECT_NE(reply->detail.find("version"), std::string::npos)
      << reply->detail;
  // The server tears the poisoned connection down: a fresh, correct client
  // still gets service (the poisoning is per-connection).
  auto fresh = net::Client::connect_unix(worker.path);
  fresh.send(net::encode_node_probe(1));
  auto info = fresh.read_frame_for(5'000'000);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->type, net::FrameType::kNodeProbe);
  EXPECT_TRUE(info->probe_reply);
  EXPECT_EQ(info->engine, "cpu-batch");
}

TEST(ClusterRuntime, EmptyBookShortCircuitsWithoutTouchingTheWire) {
  InProcessWorker worker("cluster-empty", pinned_worker("cpu-batch", 1e6));
  cluster::CoordinatorConfig config;
  config.nodes = {node_spec(worker.path)};
  cluster::ClusterCoordinator coordinator(config);
  const auto run = coordinator.price({});
  EXPECT_TRUE(run.run.results.empty());
  EXPECT_EQ(run.shards.size(), 0u);
}

}  // namespace
}  // namespace cdsflow
