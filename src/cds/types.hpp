/// \file types.hpp
/// Core value types of the CDS model (paper Sec. II-A).
///
/// A Credit Default Swap engine prices *options*: each option is a contract
/// described by three numbers -- the maturity date (year fraction), the
/// premium payment frequency (payments per year), and the recovery rate (the
/// fraction of the notional recovered on default). The engine's output per
/// option is the *fair spread* in basis points: the annual premium, per unit
/// notional, that makes the premium leg's value equal the protection leg's.

#pragma once

#include <cstdint>
#include <string>

namespace cdsflow::cds {

/// One CDS contract to price. The paper streams vectors of these through the
/// engine against fixed interest/hazard term structures.
struct CdsOption {
  /// Caller-assigned identifier, preserved in results (engines may partition
  /// and reorder work internally).
  std::int32_t id = 0;
  /// Contract end, as a year fraction from the valuation date. Must be > 0.
  double maturity_years = 5.0;
  /// Premium payments per year (4 = quarterly, 12 = monthly). Must be > 0.
  double payment_frequency = 4.0;
  /// Fraction of notional recovered on default, in [0, 1).
  double recovery_rate = 0.4;

  /// Throws cdsflow::Error when any field is out of range.
  void validate() const;
};

/// Fair spread for one option.
struct SpreadResult {
  std::int32_t id = 0;
  /// Annual premium in basis points of notional (paper Sec. II-A: divide by
  /// 100 for a percentage).
  double spread_bps = 0.0;
};

/// Detailed pricing breakdown (golden model; used by tests and the risk
/// example).
struct PricingBreakdown {
  /// Present value of the premium payments per unit spread ("risky PV01").
  double premium_leg = 0.0;
  /// PV of the accrued-on-default premium per unit spread.
  double accrual_leg = 0.0;
  /// PV of the protection payments (already scaled by 1 - recovery).
  double protection_leg = 0.0;
  double spread_bps = 0.0;
};

/// Basis points per unit (1.0 == 10,000 bps).
inline constexpr double kBasisPointsPerUnit = 10'000.0;

std::string to_string(const CdsOption& option);

}  // namespace cdsflow::cds
