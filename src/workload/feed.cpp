#include "workload/feed.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cdsflow::workload {

void QuoteFeedSpec::validate() const {
  CDSFLOW_EXPECT(rate_hz >= 0.0 && std::isfinite(rate_hz),
                 "feed rate must be finite and >= 0");
  CDSFLOW_EXPECT(hazard_update_every != 1,
                 "hazard_update_every == 1 would make every event an update "
                 "and price nothing");
  CDSFLOW_EXPECT(hazard_update_scale >= 0.0 && hazard_update_scale < 1.0,
                 "hazard update scale must lie in [0, 1) to keep rates "
                 "positive");
}

std::vector<QuoteFeedEvent> make_quote_feed(const QuoteFeedSpec& spec,
                                            const cds::TermStructure& hazard) {
  spec.validate();
  hazard.validate();
  if (spec.events == 0) return {};

  const bool updates = spec.hazard_update_every > 1;
  std::size_t n_updates = 0;
  if (updates) n_updates = spec.events / spec.hazard_update_every;
  const std::size_t n_options = spec.events - n_updates;
  CDSFLOW_EXPECT(n_options > 0, "feed must contain at least one option event");

  // Split-tree stream derivation: seed -> (tenant branch) -> role leaves.
  // Each tenant gets its own branch of the root stream and the three role
  // streams (book, arrivals, updates) are leaves of that branch, so two
  // tenants on the same seed share no stream state at all -- the split
  // contract of common/rng.hpp, as opposed to seed arithmetic, whose
  // splitmix64-adjacent seeds yield correlated expanded states. Tenant 0
  // takes the root branch itself, reproducing the pre-tenant feeds
  // bit-for-bit.
  const Rng root = spec.tenant == 0
                       ? Rng(spec.seed)
                       : Rng(spec.seed).split(0x74656E61000000ULL + spec.tenant);
  PortfolioSpec book = spec.book;
  book.count = n_options;
  book.seed = root.split(1).next_u64();
  const auto options = make_portfolio(book);

  // Independent child streams so adding a consumer never perturbs the
  // others (common/rng.hpp): arrivals, update knots, update sizes.
  Rng arrival_rng = root.split(2);
  Rng update_rng = root.split(3);

  std::vector<QuoteFeedEvent> feed;
  feed.reserve(spec.events);
  double offset = 0.0;
  std::size_t next_option = 0;
  for (std::size_t i = 0; i < spec.events; ++i) {
    if (spec.rate_hz > 0.0) {
      // Exponential inter-arrival gap at the mean rate (Poisson feed).
      const double u = std::max(1e-12, arrival_rng.uniform01());
      offset += -std::log(u) / spec.rate_hz;
    }
    QuoteFeedEvent event;
    event.offset_seconds = offset;
    if (updates && (i + 1) % spec.hazard_update_every == 0) {
      event.kind = QuoteFeedEvent::Kind::kHazardQuote;
      event.knot = static_cast<std::size_t>(update_rng.uniform_int(
          0, static_cast<std::int64_t>(hazard.size()) - 1));
      const double factor =
          1.0 + spec.hazard_update_scale * (2.0 * update_rng.uniform01() - 1.0);
      event.rate = hazard.value(event.knot) * factor;
    } else {
      event.kind = QuoteFeedEvent::Kind::kOption;
      event.option = options[next_option++];
    }
    feed.push_back(event);
  }
  CDSFLOW_ASSERT(next_option == n_options, "feed option accounting mismatch");
  return feed;
}

}  // namespace cdsflow::workload
