/// \file batch_pricer.hpp
/// Batched structure-of-arrays fast-path pricing kernel for the CPU.
///
/// The host-side scalar path re-derives everything per option: an O(knots)
/// hazard scan plus an exp per schedule point, an O(knots) interpolation
/// scan plus an exp per schedule point, and a heap-allocated schedule per
/// option. That is exactly the redundant recomputation the paper strips out
/// of the FPGA kernel by restructuring it as dataflow (Sec. III); this
/// kernel performs the same restructuring for the CPU path the sharded
/// runtime's workers execute:
///
///   1. *Schedule dedup.* Options sharing (maturity, frequency) share one
///      payment grid; a standard-tenor book of 16k options collapses to a
///      handful of grids. Grids live in one flat arena (no per-option
///      allocation).
///   2. *Curve-grid precompute.* Once per (interest, hazard) pair and unique
///      grid, the kernel tabulates the discount factor D(t_i), survival
///      Q(t_i) and default mass dq_i on that grid -- hazard integration via
///      O(log) prefix sums (integrated_hazard_prefix), interpolation via
///      O(log) binary search (interpolate_fast) -- and reduces the three leg
///      sums in the reference accumulation order.
///   3. *Per-option combine.* Pricing an option is then a branch-free
///      multiply-divide against its grid's reduced sums: no exp, no curve
///      scan, no allocation in the inner loop.
///
/// Numerics: every intermediate is computed with the same association order
/// as the scalar reference (`price_breakdown`), so spreads agree with
/// ReferencePricer bit-for-bit under default compilation (and to well below
/// 1e-9 relative under any IEEE-conforming contraction). The HLS-mirroring
/// fixed-bound scans stay untouched for the simulated engines -- they model
/// what the hardware pays; this kernel is what the host should pay.
///
/// *Risk pass* (price_with_sensitivities): the post-pricing Greeks workflow
/// (cds/risk.hpp) reprices every option under six bumped scenarios plus two
/// per ladder bucket -- per option. The streaming-Greeks observation
/// (arXiv:2212.13977) is that all of those repricings differentiate the
/// same tabulated discount/survival intermediates, so the bumps belong on
/// the *grids*, not the options:
///
///   - CS01 / IR01 / ladder: each parallel- or bucket-bumped curve is built
///     once per batch, its D or Q column re-tabulated once per unique
///     schedule grid, and the central difference collapses -- like the
///     spread itself -- to an O(1) per-option combine. A hazard bump leaves
///     the discount column untouched (and vice versa), so each scenario
///     re-tabulates only the column its bump moves.
///   - Rec01 / JTD: the spread is exactly linear in the recovery rate, so
///     no bumped grid is needed at all -- the same central-difference
///     expression the scalar reference evaluates reduces to a reweighting
///     of the base grid's payoff/annuity sums.
///
/// Every scenario accumulates in the reference order over curve values that
/// are themselves bit-identical to the scalar path's, so all sensitivities
/// match compute_sensitivities / cs01_ladder bit-for-bit under default
/// compilation; the tests and benches hold the documented tolerance of
/// 1e-12 relative (the acceptance bound is 1e-9).
///
/// *Vector kernel* (cds/vector_kernel.hpp): constructed with a
/// simd::Level above kScalar, passes 2/2b tabulate the discount and
/// survival columns with the SIMD exp/search kernels -- arena-wide, one
/// lane tail for the whole batch instead of one per grid -- and pass 3
/// combines spreads `lanes(level)` options at a time. The leg-sum
/// *reductions* stay scalar in the reference association order, so the only
/// divergence from the scalar kernel is the per-element column math, bounded
/// by VectorKernelContract (cds/precision.hpp) and documented in
/// docs/VECTOR_LANES.md. At kScalar (the default) every path below is
/// byte-for-byte the pre-vector kernel.

#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "cds/curve.hpp"
#include "cds/hazard.hpp"
#include "cds/risk.hpp"
#include "cds/schedule.hpp"
#include "cds/types.hpp"
#include "cds/vector_kernel.hpp"

namespace cdsflow::cds {

namespace detail {

/// Dedup key: the exact bit patterns of (maturity, frequency). Near-equal
/// doubles hash to distinct grids, which costs a redundant grid but never
/// correctness.
struct ScheduleKey {
  std::uint64_t maturity_bits = 0;
  std::uint64_t frequency_bits = 0;
  friend bool operator==(const ScheduleKey&, const ScheduleKey&) = default;
};

struct ScheduleKeyHash {
  std::size_t operator()(const ScheduleKey& key) const noexcept {
    // splitmix64-style finaliser over the combined words.
    std::uint64_t x =
        key.maturity_bits ^ (key.frequency_bits * 0x9E3779B97F4A7C15ULL);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

/// Leg sums of one tabulated grid.
struct GridSums {
  double annuity = 0.0;  ///< premium + accrual leg sum
  double payoff = 0.0;   ///< unscaled payoff sum
};

/// Tabulates one schedule grid: fills the discount / survival / default-mass
/// columns over `points` and reduces the leg sums in the scalar reference's
/// accumulation order. The single home of the grid walk, shared by
/// BatchPricer::build_grids and the streaming pricer (cds/stream_pricer.hpp)
/// so a batch-built and an incrementally-maintained grid are bit-identical.
/// With `refresh_discount` false the stored discount column is reused
/// instead of recomputed -- the hazard-quote update path, where the interest
/// curve has not moved (the reused values are the ones a recompute would
/// produce, so bit-consistency is preserved either way). Throws the scalar
/// reference's diagnostic when the risky annuity is not positive.
///
/// `level` above simd::Level::kScalar tabulates the columns with the SIMD
/// kernels (column values within VectorKernelContract of the reference);
/// the leg-sum reduction stays in the reference association order either
/// way. The default reproduces the scalar walk exactly.
GridSums tabulate_grid(const TermStructure& interest,
                       const HazardPrefix& hazard_prefix,
                       std::span<const TimePoint> points,
                       std::span<double> discount, std::span<double> survival,
                       std::span<double> default_mass, bool refresh_discount,
                       simd::Level level = simd::Level::kScalar);

/// The three running leg sums of one grid walk.
struct LegSums {
  double premium = 0.0;
  double accrual = 0.0;
  double payoff = 0.0;
};

/// Reduces the three leg sums over already-tabulated columns in exactly the
/// scalar walk's accumulation order. The vector passes produce columns; this
/// reduction is what keeps them bit-consistent with the fused scalar walk
/// whenever the column values themselves agree. Shared by the batch, stream
/// and scenario-sweep pricers so every engine folds columns identically.
LegSums reduce_leg_sums(std::span<const TimePoint> points,
                        std::span<const double> discount,
                        std::span<const double> survival);

/// Hoisted from the per-option combine: the annuity is recovery-free, so
/// one check per grid covers every option on it (same diagnostic as
/// combine_spread_bps).
GridSums checked_grid_sums(const LegSums& sums);

}  // namespace detail

/// What one batch cost and how much work dedup removed.
struct BatchStats {
  std::size_t options = 0;
  /// Distinct (maturity, frequency) grids the batch collapsed to.
  std::size_t unique_schedules = 0;
  /// Schedule points actually materialised and walked (sum over grids).
  std::size_t grid_points = 0;
  /// Schedule points the scalar path would have walked (sum over options);
  /// grid_points / scalar_points is the dedup factor.
  std::size_t scalar_points = 0;
};

/// Risk-pass configuration (price_with_sensitivities).
struct BatchRiskConfig {
  /// Central-difference bump; same default and meaning as
  /// compute_sensitivities.
  double bump = 1e-4;
  /// CS01 ladder bucket edges, same contract as cs01_ladder (increasing, at
  /// least two when present). Empty disables the ladder.
  std::vector<double> ladder_edges;
};

/// What one risk batch cost on top of the base pricing pass.
struct BatchRiskStats {
  /// Dedup/grid accounting of the base pricing tabulation.
  BatchStats base;
  /// Points walked across all bumped-grid tabulations:
  /// (4 + 2 * ladder buckets) scenario columns per unique grid.
  std::size_t bumped_grid_points = 0;
  /// Full repricings the per-option scalar loop performs for the same
  /// output (7 + 2 * ladder buckets per option) -- the work the grid-level
  /// bumps remove.
  std::size_t scalar_repricings = 0;
};

class BatchPricer {
 public:
  /// Reusable scratch for price(): flat SoA arrays plus the dedup map. All
  /// memory is retained between calls, so a warmed workspace makes a batch
  /// allocation-free. One workspace per concurrent caller.
  struct Workspace {
    // Per option, in batch order.
    std::vector<std::uint32_t> grid_of;
    // Per unique grid.
    std::vector<double> grid_maturity;
    std::vector<double> grid_frequency;
    std::vector<double> grid_annuity;  ///< premium + accrual leg sums
    std::vector<double> grid_payoff;   ///< unscaled payoff sum
    std::vector<std::size_t> grid_offset;
    // Flat arena over all unique grids. The three tabulated curves are not
    // read by the spread combine (its reductions fold them immediately);
    // they are the per-grid intermediates a risk pass differentiates --
    // CS01/JTD are one more reduction over these arrays (see the ROADMAP
    // batch-kernel-Greeks item) -- and the parity tests check them against
    // the reference curve math directly.
    std::vector<TimePoint> points;
    std::vector<double> discount;  ///< D(t_i)
    std::vector<double> survival;  ///< Q(t_i)
    std::vector<double> default_mass;  ///< dq_i = Q(t_{i-1}) - Q(t_i)
    std::unordered_map<detail::ScheduleKey, std::uint32_t,
                       detail::ScheduleKeyHash>
        dedup;

    void clear();
  };

  /// Scratch for price_with_sensitivities(): the base pricing workspace
  /// plus, per unique grid, the leg sums under every bumped scenario. Same
  /// reuse contract as Workspace: one per concurrent caller, warmed across
  /// calls.
  struct RiskWorkspace {
    Workspace base;
    // Per unique grid: annuity / unscaled-payoff sums under the four
    // parallel-bumped curves (hazard +/- bump with the base discount
    // column, interest +/- bump with the base survival column).
    std::vector<double> annuity_hazard_up, payoff_hazard_up;
    std::vector<double> annuity_hazard_dn, payoff_hazard_dn;
    std::vector<double> annuity_interest_up, payoff_interest_up;
    std::vector<double> annuity_interest_dn, payoff_interest_dn;
    // Per (grid, bucket), row-major: sums under the bucket-bumped hazard.
    std::vector<double> ladder_annuity_up, ladder_payoff_up;
    std::vector<double> ladder_annuity_dn, ladder_payoff_dn;
    // Per-grid accumulator scratch (2 q_prev + 6 sums per ladder bucket).
    std::vector<double> bucket_scratch;
    // Vector-kernel path: one arena-wide scenario column, reused across all
    // bumped scenarios (column-at-a-time keeps risk scratch at one column).
    std::vector<double> scenario_col;

    void clear();
  };

  /// Everything the convenience risk overload produces.
  struct RiskRun {
    /// Per option, batch order (ids are implicit: entry i belongs to
    /// options[i]).
    std::vector<Sensitivities> sensitivities;
    /// Row-major [option][bucket]; empty when no ladder was requested.
    std::vector<double> cs01_ladder;
    std::size_t ladder_buckets = 0;
    BatchRiskStats stats;
  };

  /// Both curves are copied and the hazard prefix table is built once; the
  /// pricer is immutable afterwards (safe to share across threads, each
  /// thread bringing its own Workspace).
  ///
  /// `kernel_level` selects the SIMD tier of the tabulation/combine passes
  /// and is clamped to what the host supports (simd::resolve_level), so
  /// requesting kAvx512 on an AVX2-only machine degrades safely. The
  /// CDSFLOW_SIMD environment override applies where engines construct the
  /// pricer with simd::active_level(); direct construction takes the level
  /// literally (modulo hardware).
  explicit BatchPricer(TermStructure interest, TermStructure hazard,
                       simd::Level kernel_level = simd::Level::kScalar);

  const TermStructure& interest() const { return interest_; }
  const TermStructure& hazard() const { return hazard_; }
  const HazardPrefix& hazard_prefix() const { return hazard_prefix_; }
  /// The SIMD tier the kernel actually runs at (post hardware clamp).
  simd::Level kernel_level() const { return kernel_level_; }

  /// Prices options[i] into out[i] (ids preserved, batch order). `out` must
  /// have the same length as `options`. Throws cdsflow::Error on invalid
  /// options or an unpriceable grid (non-positive risky annuity), exactly
  /// like the scalar reference.
  BatchStats price(std::span<const CdsOption> options,
                   std::span<SpreadResult> out, Workspace& workspace) const;

  /// Convenience overload that owns its workspace and result vector.
  std::vector<SpreadResult> price(const std::vector<CdsOption>& options) const;

  /// Batched risk kernel: per-option CS01 / IR01 / Rec01 / JTD (and, when
  /// config.ladder_edges is set, the bucketed CS01 ladder) in one pass over
  /// the precomputed grids. `out` must match `options` in length;
  /// `ladder_out` must hold options.size() * buckets values (row-major per
  /// option) and be empty when no ladder is requested. Bit-consistent with
  /// compute_sensitivities / cs01_ladder (see the file header; documented
  /// tolerance 1e-12 relative). Throws cdsflow::Error exactly where the
  /// scalar reference does (invalid options, non-positive risky annuity
  /// under any scenario, bad bump or ladder edges).
  BatchRiskStats price_with_sensitivities(std::span<const CdsOption> options,
                                          std::span<Sensitivities> out,
                                          std::span<double> ladder_out,
                                          RiskWorkspace& workspace,
                                          const BatchRiskConfig& config = {})
      const;

  /// Convenience overload that owns its workspace and result buffers.
  RiskRun price_with_sensitivities(const std::vector<CdsOption>& options,
                                   const BatchRiskConfig& config = {}) const;

  /// Passes 1-2 of the kernel (dedup + base-grid tabulation), shared by the
  /// pricing and risk paths and reused by the scenario sweep (which builds
  /// the base grids once and re-tabulates only the moved column per
  /// scenario). Fills everything in `ws` except grid_of-driven combines;
  /// returns stats with options / unique_schedules / grid_points set
  /// (scalar_points is left to the caller's combine loop).
  BatchStats build_grids(std::span<const CdsOption> options,
                         Workspace& ws) const;

 private:
  TermStructure interest_;
  TermStructure hazard_;
  HazardPrefix hazard_prefix_;
  simd::Level kernel_level_ = simd::Level::kScalar;
};

}  // namespace cdsflow::cds
