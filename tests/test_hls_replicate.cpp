/// \file test_hls_replicate.cpp
/// Unit tests for the round-robin replication pool (paper Fig. 3):
/// ordering preservation, lane balance, feed-rate limiting, and throughput
/// saturation.

#include <gtest/gtest.h>

#include <numeric>

#include "hls/replicate.hpp"
#include "hls/stream.hpp"
#include "sim/simulation.hpp"

namespace cdsflow::hls {
namespace {

using sim::Simulation;

std::vector<int> iota_tokens(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

struct PoolFixture {
  Simulation sim;
  sim::Channel<int>* in = nullptr;
  sim::Channel<int>* out = nullptr;
  ReplicatedPoolHandles<int, int> handles;
  SinkStage<int>* sink = nullptr;

  /// Pool where each token costs `work` lane cycles and `feed` elements.
  void build(int n_tokens, std::size_t lanes, double feed_rate,
             sim::Cycle work, double feed_elems) {
    in = &make_stream<int>(sim, "in", 8);
    out = &make_stream<int>(sim, "out", 8);
    sim.add_process<SourceStage<int>>("src", *in, iota_tokens(n_tokens),
                                      StageTiming{.latency = 1, .ii = 1});
    ReplicationConfig cfg;
    cfg.lanes = lanes;
    cfg.feed_elements_per_cycle = feed_rate;
    handles = make_replicated_pool<int, int>(
        sim, "pool", *in, *out, cfg,
        [](std::size_t lane) {
          return std::function<int(const int&)>(
              [lane](const int& v) { return v * 10 + static_cast<int>(lane % 10); });
        },
        [work](const int&) { return work; },
        [feed_elems](const int&) { return feed_elems; },
        StageTiming{.latency = 2, .ii = 1}, static_cast<std::uint64_t>(n_tokens));
    sink = &sim.add_process<SinkStage<int>>(
        "sink", *out, static_cast<std::uint64_t>(n_tokens),
        StageTiming{.latency = 1, .ii = 1});
  }
};

TEST(ReplicatedPool, PreservesTokenOrder) {
  PoolFixture f;
  f.build(24, 4, 100.0, 17, 1.0);
  f.sim.run();
  const auto& results = f.sink->collected();
  ASSERT_EQ(results.size(), 24u);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)] / 10, i)
        << "out-of-order result at " << i;
  }
}

TEST(ReplicatedPool, RoundRobinAssignsLanesCyclically) {
  PoolFixture f;
  f.build(12, 3, 100.0, 5, 1.0);
  f.sim.run();
  const auto& results = f.sink->collected();
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)] % 10, i % 3)
        << "token " << i << " went to the wrong lane";
  }
}

TEST(ReplicatedPool, LaneSharesAreBalanced) {
  PoolFixture f;
  f.build(14, 4, 100.0, 5, 1.0);  // 14 = 4*3 + 2: lanes get 4,4,3,3
  f.sim.run();
  EXPECT_EQ(f.handles.lanes[0]->processed_tokens(), 4u);
  EXPECT_EQ(f.handles.lanes[1]->processed_tokens(), 4u);
  EXPECT_EQ(f.handles.lanes[2]->processed_tokens(), 3u);
  EXPECT_EQ(f.handles.lanes[3]->processed_tokens(), 3u);
}

TEST(ReplicatedPool, ComputeBoundWhenFeedIsFast) {
  // 1 lane, work=50/token: throughput ~ 50 cycles/token.
  PoolFixture f;
  f.build(10, 1, 1000.0, 50, 1.0);
  const auto r = f.sim.run();
  EXPECT_GE(r.end_cycle, 450u);
  EXPECT_LE(r.end_cycle, 520u);
}

TEST(ReplicatedPool, ParallelLanesDivideComputeTime) {
  PoolFixture one, five;
  one.build(20, 1, 1000.0, 50, 1.0);
  five.build(20, 5, 1000.0, 50, 1.0);
  const auto r1 = one.sim.run();
  const auto r5 = five.sim.run();
  const double speedup = static_cast<double>(r1.end_cycle) /
                         static_cast<double>(r5.end_cycle);
  EXPECT_GT(speedup, 3.5);  // ~5x minus fill/drain
}

TEST(ReplicatedPool, FeedRateCapsThroughput) {
  // Each token needs 100 elements at 2 elements/cycle => the distributor
  // alone takes 50 cycles/token no matter how many lanes exist.
  PoolFixture f;
  f.build(10, 8, 2.0, 60, 100.0);
  const auto r = f.sim.run();
  EXPECT_GE(r.end_cycle, 450u);  // >= 10 tokens * 50 cycles of feed
  // The distributor is the busy process.
  EXPECT_GE(f.handles.distributor->busy_cycles(), 500u);
}

TEST(ReplicatedPool, SaturationMatchesMinOfFeedAndCompute) {
  // work=100, feed=50 cycles/token: 1 lane -> compute-bound (~100/token),
  // 2 lanes -> ~50+, >=3 lanes -> feed-bound (~50/token, flat).
  std::vector<sim::Cycle> ends;
  for (const std::size_t lanes : {1u, 2u, 3u, 6u}) {
    PoolFixture f;
    f.build(20, lanes, 2.0, 100, 100.0);
    ends.push_back(f.sim.run().end_cycle);
  }
  EXPECT_GT(ends[0], ends[1]);                   // 2 lanes beat 1
  const double plateau = static_cast<double>(ends[2]) /
                         static_cast<double>(ends[3]);
  EXPECT_NEAR(plateau, 1.0, 0.1);                // 3 vs 6 lanes: flat
  EXPECT_NEAR(static_cast<double>(ends[0]) / static_cast<double>(ends[3]),
              2.0, 0.3);                          // overall ~2x
}

TEST(ReplicatedPool, SingleLaneMatchesPlainMapThroughput) {
  // A 1-lane pool should behave like a plain MapStage with the same work
  // (plus negligible scheduler/collector overhead).
  PoolFixture pool;
  pool.build(16, 1, 1000.0, 30, 1.0);
  const auto pool_end = pool.sim.run().end_cycle;

  Simulation sim;
  auto& in = make_stream<int>(sim, "in", 8);
  auto& out = make_stream<int>(sim, "out", 8);
  sim.add_process<SourceStage<int>>("src", in, iota_tokens(16),
                                    StageTiming{.latency = 1, .ii = 1});
  sim.add_process<MapStage<int, int>>(
      "map", in, out, [](const int& v) { return v; },
      StageTiming{.latency = 2, .ii = 1}, 16, nullptr,
      [](const int&) { return sim::Cycle{30}; });
  sim.add_process<SinkStage<int>>("sink", out, 16,
                                  StageTiming{.latency = 1, .ii = 1});
  const auto plain_end = sim.run().end_cycle;
  EXPECT_NEAR(static_cast<double>(pool_end),
              static_cast<double>(plain_end), 10.0);
}

TEST(ReplicatedPool, RejectsBadConfig) {
  Simulation sim;
  auto& in = make_stream<int>(sim, "in", 8);
  auto& out = make_stream<int>(sim, "out", 8);
  ReplicationConfig cfg;
  cfg.lanes = 0;
  auto make_kernel = [](std::size_t) {
    return std::function<int(const int&)>([](const int& v) { return v; });
  };
  EXPECT_THROW(
      (make_replicated_pool<int, int>(sim, "p", in, out, cfg, make_kernel,
                                      nullptr, nullptr, StageTiming{}, 1)),
      Error);
  cfg.lanes = 2;
  cfg.feed_elements_per_cycle = 0.0;
  EXPECT_THROW(
      (make_replicated_pool<int, int>(sim, "p", in, out, cfg, make_kernel,
                                      nullptr, nullptr, StageTiming{}, 1)),
      Error);
}

}  // namespace
}  // namespace cdsflow::hls
