/// \file test_stream_pricer.cpp
/// The persistent-grid streaming pricer: micro-batched pricing parity with
/// the batch kernel, cross-batch grid caching, and -- the load-bearing
/// guarantee -- incremental hazard-quote updates that are bit-consistent
/// with a full grid rebuild on the updated curve, under randomized updates.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "cds/batch_pricer.hpp"
#include "cds/stream_pricer.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"

namespace cdsflow {
namespace {

cds::TermStructure test_interest() {
  return workload::paper_interest_curve(64, 11);
}
cds::TermStructure test_hazard() { return workload::paper_hazard_curve(64, 23); }

std::vector<cds::CdsOption> tenor_book(std::size_t count, std::uint64_t seed) {
  workload::PortfolioSpec spec;
  spec.count = count;
  spec.maturity_tenor_grid = {1.0, 3.0, 5.0, 7.0, 10.0};
  spec.seed = seed;
  return workload::make_portfolio(spec);
}

std::vector<cds::CdsOption> continuous_book(std::size_t count,
                                            std::uint64_t seed) {
  workload::PortfolioSpec spec;
  spec.count = count;
  spec.seed = seed;
  return workload::make_portfolio(spec);
}

/// Bit-identical: the streaming grids must reproduce the batch kernel's
/// spreads exactly (same arithmetic, same association order).
void expect_identical(const std::vector<cds::SpreadResult>& got,
                      const std::vector<cds::SpreadResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "at " << i;
    EXPECT_EQ(got[i].spread_bps, want[i].spread_bps) << "at " << i;
  }
}

std::vector<cds::SpreadResult> stream_price(cds::StreamPricer& pricer,
                                            const std::vector<cds::CdsOption>&
                                                options,
                                            std::size_t chunk) {
  std::vector<cds::SpreadResult> out(options.size());
  for (std::size_t begin = 0; begin < options.size(); begin += chunk) {
    const std::size_t end = std::min(options.size(), begin + chunk);
    pricer.price(std::span<const cds::CdsOption>(options).subspan(
                     begin, end - begin),
                 std::span<cds::SpreadResult>(out).subspan(begin, end - begin));
  }
  return out;
}

TEST(StreamPricer, MicroBatchesMatchBatchKernel) {
  const auto interest = test_interest();
  const auto hazard = test_hazard();
  const auto book = continuous_book(53, 5);
  const cds::BatchPricer batch(interest, hazard);
  const auto want = batch.price(book);

  cds::StreamPricer stream(interest, hazard);
  expect_identical(stream_price(stream, book, 7), want);
  EXPECT_EQ(stream.stats().options_priced, book.size());
}

TEST(StreamPricer, GridCachePersistsAcrossBatches) {
  cds::StreamPricer stream(test_interest(), test_hazard());
  const auto book = tenor_book(64, 3);
  stream_price(stream, book, 16);
  EXPECT_LE(stream.stats().cached_grids, 5u);
  const std::size_t grids_after_first = stream.stats().cached_grids;
  const std::size_t points_after_first = stream.stats().grid_points;

  // A second pass over the same tenors adds no grids and no points.
  stream_price(stream, tenor_book(64, 4), 16);
  EXPECT_EQ(stream.stats().cached_grids, grids_after_first);
  EXPECT_EQ(stream.stats().grid_points, points_after_first);
}

TEST(StreamPricer, IncrementalUpdateMatchesFullRebuildRandomized) {
  const auto interest = test_interest();
  auto hazard = test_hazard();
  // Mixed book: repeated tenors plus continuous maturities, so updates hit
  // both shared and singleton grids.
  auto book = tenor_book(40, 7);
  const auto extra = continuous_book(24, 9);
  book.insert(book.end(), extra.begin(), extra.end());

  cds::StreamPricer stream(interest, hazard);
  stream_price(stream, book, 13);

  Rng rng(321);
  for (int round = 0; round < 25; ++round) {
    const auto knot = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hazard.size()) - 1));
    const double rate = hazard.value(knot) * rng.uniform(0.5, 1.5);
    const std::size_t retabulated = stream.update_hazard_quote(knot, rate);
    EXPECT_LE(retabulated, stream.stats().cached_grids);

    // Full rebuild on the updated curve: a fresh BatchPricer must agree
    // bit-for-bit with the incrementally-maintained grids.
    std::vector<double> values = hazard.values();
    values[knot] = rate;
    hazard = cds::TermStructure(hazard.times(), std::move(values));
    const cds::BatchPricer rebuilt(interest, hazard);
    expect_identical(stream_price(stream, book, 17), rebuilt.price(book));
  }
  // The whole point: randomized updates must not have re-tabulated every
  // grid every time.
  EXPECT_LT(stream.stats().grids_retabulated,
            stream.stats().full_rebuild_grids);
}

TEST(StreamPricer, UpdateBeyondBookMaturityRetabulatesNothing) {
  const auto interest = test_interest();
  const auto hazard = test_hazard();  // 64 knots spanning 30y
  cds::StreamPricer stream(interest, hazard);
  const auto book = tenor_book(32, 11);  // maturities <= 10y
  const auto before = stream_price(stream, book, 8);

  // The last knot's rate applies on (tau_{n-2}, tau_n-1] ~ (29.5y, 30y],
  // far beyond every 10y maturity: nothing to re-tabulate, spreads frozen.
  const std::size_t last = hazard.size() - 1;
  EXPECT_EQ(stream.update_hazard_quote(last, hazard.value(last) * 2.0), 0u);
  expect_identical(stream_price(stream, book, 8), before);
}

TEST(StreamPricer, UpdateOfFirstKnotRetabulatesEverything) {
  cds::StreamPricer stream(test_interest(), test_hazard());
  const auto book = tenor_book(32, 13);
  stream_price(stream, book, 8);
  const std::size_t grids = stream.stats().cached_grids;
  // Knot 0 moves the (0, tau_0] segment under every schedule point.
  EXPECT_EQ(stream.update_hazard_quote(0, 0.05), grids);
}

TEST(StreamPricer, UpdateValidation) {
  const auto hazard = test_hazard();
  cds::StreamPricer stream(test_interest(), hazard);
  EXPECT_THROW(stream.update_hazard_quote(hazard.size(), 0.02), Error);
  EXPECT_THROW(stream.update_hazard_quote(0, 0.0), Error);
  EXPECT_THROW(stream.update_hazard_quote(0, -0.01), Error);
  EXPECT_THROW(
      stream.update_hazard_quote(0, std::numeric_limits<double>::quiet_NaN()),
      Error);
}

TEST(StreamPricer, RiskModeMatchesBatchRiskKernelAcrossUpdates) {
  const auto interest = test_interest();
  auto hazard = test_hazard();
  cds::StreamPricerConfig config;
  config.risk_mode = true;
  config.risk_bump = 1e-4;
  config.ladder_edges = {0.0, 3.0, 7.0, 30.0};
  cds::StreamPricer stream(interest, hazard, config);
  ASSERT_EQ(stream.ladder_buckets(), 3u);

  const auto book = tenor_book(24, 17);
  cds::BatchRiskConfig risk_config;
  risk_config.bump = config.risk_bump;
  risk_config.ladder_edges = config.ladder_edges;

  const auto check = [&] {
    std::vector<cds::SpreadResult> results(book.size());
    std::vector<cds::Sensitivities> sens(book.size());
    std::vector<double> ladder(book.size() * 3);
    stream.price_with_sensitivities(book, results, sens, ladder);

    const cds::BatchPricer reference(interest, hazard);
    const auto want = reference.price_with_sensitivities(book, risk_config);
    for (std::size_t i = 0; i < book.size(); ++i) {
      EXPECT_EQ(sens[i].spread_bps, want.sensitivities[i].spread_bps);
      EXPECT_EQ(results[i].spread_bps, want.sensitivities[i].spread_bps);
      EXPECT_EQ(sens[i].cs01, want.sensitivities[i].cs01);
      EXPECT_EQ(sens[i].ir01, want.sensitivities[i].ir01);
      EXPECT_EQ(sens[i].rec01, want.sensitivities[i].rec01);
      EXPECT_EQ(sens[i].jtd, want.sensitivities[i].jtd);
    }
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      EXPECT_EQ(ladder[i], want.cs01_ladder[i]);
    }
  };

  check();
  // A quote update dirties the risk kernel; the rebuilt one must agree with
  // a fresh BatchPricer on the updated curve.
  const double moved = hazard.value(3) * 1.25;
  stream.update_hazard_quote(3, moved);
  std::vector<double> values = hazard.values();
  values[3] = moved;
  hazard = cds::TermStructure(hazard.times(), std::move(values));
  check();
}

TEST(StreamPricer, RiskModeRequiredForSensitivities) {
  cds::StreamPricer stream(test_interest(), test_hazard());
  const auto book = tenor_book(4, 19);
  std::vector<cds::SpreadResult> results(book.size());
  std::vector<cds::Sensitivities> sens(book.size());
  EXPECT_THROW(stream.price_with_sensitivities(book, results, sens, {}),
               Error);
}

}  // namespace
}  // namespace cdsflow
