#include "engines/engine.hpp"

#include "common/error.hpp"

namespace cdsflow::engine {

void PricingRun::finalise(std::size_t n_options) {
  total_seconds = kernel_seconds + transfer_seconds;
  CDSFLOW_ASSERT(total_seconds > 0.0, "pricing run must take non-zero time");
  options_per_second = static_cast<double>(n_options) / total_seconds;
}

BatchTraffic batch_traffic(std::size_t curve_points, std::size_t n_options) {
  BatchTraffic t;
  // Two curves x (time, value) doubles.
  t.curve_bytes = static_cast<std::uint64_t>(curve_points) * 2 * 2 *
                  sizeof(double);
  // Option: maturity, frequency, recovery packed as 3 doubles + id word,
  // rounded into 32-byte half-beats.
  t.option_bytes = static_cast<std::uint64_t>(n_options) * 32;
  // Result: id + spread padded to 16 bytes.
  t.result_bytes = static_cast<std::uint64_t>(n_options) * 16;
  return t;
}

}  // namespace cdsflow::engine
