/// \file vcd.hpp
/// Value Change Dump (IEEE 1364) export of simulator traces.
///
/// HLS developers live in waveform viewers; exporting the activity trace as
/// a VCD file lets the simulated engines be inspected in GTKWave exactly
/// like an RTL co-simulation: one 1-bit "busy" signal per stage, toggling
/// with the stage's activity intervals. The Fig. 1 / Fig. 2 contrast
/// (sequential staircase vs. everything-high) is immediately visible.

#pragma once

#include <iosfwd>
#include <string>

#include "sim/trace.hpp"

namespace cdsflow::sim {

struct VcdOptions {
  /// VCD timescale per simulator cycle. The engines run a 300 MHz kernel
  /// clock, so 1 cycle = 3.333 ns; "1ns" with a 3-cycle multiplier would
  /// distort, so the default writes one VCD tick per cycle and documents
  /// the clock in the header comment instead.
  std::string timescale = "1ns";
  /// Module name wrapping the signals.
  std::string module_name = "cdsflow";
  /// Free-text comment embedded in the header (e.g. engine + workload).
  std::string comment;
};

/// Writes `trace` as a VCD document to `os`. Signals appear in track order;
/// identifiers are generated per the VCD printable-character scheme.
void write_vcd(std::ostream& os, const Trace& trace, VcdOptions options = {});

/// Convenience: writes to `path` (throws cdsflow::Error on I/O failure).
void write_vcd_file(const std::string& path, const Trace& trace,
                    VcdOptions options = {});

}  // namespace cdsflow::sim
