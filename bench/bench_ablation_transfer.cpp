/// \file bench_ablation_transfer.cpp
/// Ablation: PCIe transfer and dispatch share of total runtime.
///
/// All paper numbers include PCIe transfer, "which nevertheless represents a
/// small part of the overall execution time" (Sec. II-B). This bench breaks
/// total time into kernel / bulk-transfer / per-option restart components
/// per engine generation, showing (a) transfer is indeed small, and (b) for
/// the per-option engines the *dispatch* overhead is anything but -- it is
/// the 60 us/option the inter-option rewrite deleted.
///
/// Usage: bench_ablation_transfer [n_options]

#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "engines/registry.hpp"
#include "fpga/interconnect.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;

  const auto scenario = workload::paper_scenario(n_options);

  std::cout << "== Ablation: data movement share per engine generation ==\n"
            << n_options << " options (PCIe included in all paper numbers)\n"
            << "\n";

  report::Table table("Time breakdown");
  table.set_columns({"Engine", "Total (ms)", "Kernel compute (ms)",
                     "Restart overhead (ms)", "PCIe bulk (ms)",
                     "PCIe share"});

  const fpga::HlsCostModel cost;
  for (const char* name :
       {"xilinx-baseline", "dataflow", "dataflow-interoption", "vectorised"}) {
    auto engine =
        engine::make_engine(name, scenario.interest, scenario.hazard);
    const auto run = engine->price(scenario.options);
    // Restart overhead embedded in kernel cycles for per-option engines.
    const double restart_s =
        run.invocations > 1
            ? static_cast<double>(run.invocations - 1) *
                  static_cast<double>(cost.region_restart_cycles) /
                  cost.kernel_clock_hz
            : 0.0;
    const double compute_s = run.kernel_seconds - restart_s;
    table.add_row(
        {name, fixed(run.total_seconds * 1e3, 3),
         fixed(compute_s * 1e3, 3), fixed(restart_s * 1e3, 3),
         fixed(run.transfer_seconds * 1e3, 3),
         fixed(100.0 * run.transfer_seconds / run.total_seconds, 2) + "%"});
  }
  std::cout << table.render_text()
            << "\nbulk PCIe stays <1% everywhere (the paper's observation); "
               "the per-option engines' real host cost is the kernel "
               "restart, ~45% of the optimised dataflow engine's runtime -- "
               "which is why streaming options through the region doubled "
               "throughput.\n";
  return 0;
}
