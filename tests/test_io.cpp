/// \file test_io.cpp
/// Unit tests for CSV import/export: exact round trips, header/field/number
/// validation with line diagnostics, and validation propagation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "io/csv.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"

namespace cdsflow::io {
namespace {

namespace fs = std::filesystem;

/// Temp-file helper: unique path, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    static int counter = 0;
    path_ = (fs::temp_directory_path() /
             ("cdsflow_test_" + stem + "_" + std::to_string(counter++) +
              ".csv"))
                .string();
  }
  ~TempFile() {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

  void write(const std::string& content) const {
    std::ofstream out(path_);
    out << content;
  }

 private:
  std::string path_;
};

TEST(CsvCurve, RoundTripsExactly) {
  const auto curve = workload::paper_interest_curve(128);
  TempFile file("curve");
  write_curve_csv(file.path(), curve);
  const auto loaded = read_curve_csv(file.path());
  ASSERT_EQ(loaded.size(), curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.time(i), curve.time(i));
    EXPECT_DOUBLE_EQ(loaded.value(i), curve.value(i));
  }
}

TEST(CsvCurve, RejectsWrongHeader) {
  TempFile file("badheader");
  file.write("years,rate\n1.0,0.02\n");
  EXPECT_THROW(read_curve_csv(file.path()), Error);
}

TEST(CsvCurve, RejectsBadNumberWithLineDiagnostic) {
  TempFile file("badnum");
  file.write("time_years,rate\n1.0,0.02\nnot_a_number,0.03\n");
  try {
    read_curve_csv(file.path());
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(":3"), std::string::npos);
  }
}

TEST(CsvCurve, RejectsWrongFieldCount) {
  TempFile file("fields");
  file.write("time_years,rate\n1.0,0.02,extra\n");
  EXPECT_THROW(read_curve_csv(file.path()), Error);
}

TEST(CsvCurve, RejectsNonMonotoneCurveOnLoad) {
  TempFile file("monotone");
  file.write("time_years,rate\n2.0,0.02\n1.0,0.03\n");
  EXPECT_THROW(read_curve_csv(file.path()), Error);
}

TEST(CsvCurve, MissingFile) {
  EXPECT_THROW(read_curve_csv("/nonexistent/nowhere.csv"), Error);
}

TEST(CsvCurve, EmptyFileAndHeaderOnly) {
  TempFile empty("empty");
  empty.write("");
  EXPECT_THROW(read_curve_csv(empty.path()), Error);
  TempFile header_only("header");
  header_only.write("time_years,rate\n");
  EXPECT_THROW(read_curve_csv(header_only.path()), Error);  // no points
}

TEST(CsvPortfolio, RoundTripsExactly) {
  workload::PortfolioSpec spec;
  spec.count = 37;
  spec.frequencies = {2.0, 4.0, 12.0};
  spec.frequency_weights = {1.0, 2.0, 1.0};
  const auto book = workload::make_portfolio(spec);
  TempFile file("portfolio");
  write_portfolio_csv(file.path(), book);
  const auto loaded = read_portfolio_csv(file.path());
  ASSERT_EQ(loaded.size(), book.size());
  for (std::size_t i = 0; i < book.size(); ++i) {
    EXPECT_EQ(loaded[i].id, book[i].id);
    EXPECT_DOUBLE_EQ(loaded[i].maturity_years, book[i].maturity_years);
    EXPECT_DOUBLE_EQ(loaded[i].payment_frequency,
                     book[i].payment_frequency);
    EXPECT_DOUBLE_EQ(loaded[i].recovery_rate, book[i].recovery_rate);
  }
}

TEST(CsvPortfolio, RejectsInvalidOption) {
  TempFile file("badopt");
  file.write(
      "id,maturity_years,payment_frequency,recovery_rate\n"
      "0,-5.0,4,0.4\n");
  EXPECT_THROW(read_portfolio_csv(file.path()), Error);
}

TEST(CsvPortfolio, RejectsNonIntegerId) {
  TempFile file("badid");
  file.write(
      "id,maturity_years,payment_frequency,recovery_rate\n"
      "zero,5.0,4,0.4\n");
  EXPECT_THROW(read_portfolio_csv(file.path()), Error);
}

TEST(CsvResults, RoundTrips) {
  const std::vector<cds::SpreadResult> results = {
      {0, 181.25}, {1, 203.5}, {7, 99.875}};
  TempFile file("results");
  write_results_csv(file.path(), results);
  const auto loaded = read_results_csv(file.path());
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[2].id, 7);
  EXPECT_DOUBLE_EQ(loaded[2].spread_bps, 99.875);
}

TEST(CsvQuotes, RoundTrips) {
  const std::vector<cds::SpreadQuote> quotes = {{1.0, 110.0}, {5.0, 185.0}};
  TempFile file("quotes");
  write_quotes_csv(file.path(), quotes);
  const auto loaded = read_quotes_csv(file.path());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[1].tenor_years, 5.0);
  EXPECT_DOUBLE_EQ(loaded[1].spread_bps, 185.0);
}

TEST(CsvQuotes, SkipsBlankLines) {
  TempFile file("blank");
  file.write("tenor_years,spread_bps\n1.0,110\n\n5.0,185\n");
  EXPECT_EQ(read_quotes_csv(file.path()).size(), 2u);
}

TEST(CsvWrite, UnwritablePathFails) {
  EXPECT_THROW(write_results_csv("/nonexistent_dir/out.csv", {{0, 1.0}}),
               Error);
}

TEST(LatencyCdf, RowsCoverFixedPercentileLadderPerTenant) {
  // 1..100 us: percentile(p) by linear interpolation is analytic.
  std::vector<double> latency_us(100);
  for (std::size_t i = 0; i < latency_us.size(); ++i) {
    latency_us[i] = static_cast<double>(i + 1);
  }
  const auto rows = latency_cdf_rows(7, latency_us);
  ASSERT_EQ(rows.size(), 11u);
  for (const auto& row : rows) EXPECT_EQ(row.tenant, 7u);
  // Ladder is sorted and the CDF is monotone.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].percentile, rows[i - 1].percentile);
    EXPECT_GE(rows[i].latency_us, rows[i - 1].latency_us);
  }
  EXPECT_EQ(rows.front().percentile, 1.0);
  EXPECT_EQ(rows.back().percentile, 100.0);
  EXPECT_EQ(rows.back().latency_us, 100.0);
  // Median of 1..100 interpolates halfway between the 50th and 51st values.
  const auto p50 = std::find_if(rows.begin(), rows.end(), [](const auto& r) {
    return r.percentile == 50.0;
  });
  ASSERT_NE(p50, rows.end());
  EXPECT_DOUBLE_EQ(p50->latency_us, 50.5);

  EXPECT_TRUE(latency_cdf_rows(7, {}).empty());
}

TEST(LatencyCdf, WriterEmitsOneLinePerRowWithHeader) {
  const std::vector<LatencyCdfRow> rows = {
      {1, 50.0, 12.5}, {1, 99.0, 80.25}, {2, 50.0, 7.0}};
  TempFile file("latency_cdf");
  write_latency_cdf_csv(file.path(), rows);
  std::ifstream in(file.path());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "tenant,percentile,latency_us");
  std::vector<std::string> body;
  while (std::getline(in, line)) body.push_back(line);
  ASSERT_EQ(body.size(), rows.size());
  EXPECT_EQ(body[0], "1,50,12.5");
  EXPECT_EQ(body[1], "1,99,80.25");
  EXPECT_EQ(body[2], "2,50,7");
}

}  // namespace
}  // namespace cdsflow::io
