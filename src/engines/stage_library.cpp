#include "engines/stage_library.hpp"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "cds/hazard.hpp"
#include "cds/legs.hpp"
#include "cds/schedule.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "hls/stream.hpp"

namespace cdsflow::engine {

namespace {

using hls::BroadcastStage;
using hls::ExpandStage;
using hls::MapStage;
using hls::ReduceStage;
using hls::SinkStage;
using hls::SourceStage;
using hls::StageTiming;
using hls::ZipStage;
using sim::Cycle;

/// Asserts two per-time-point streams are in lockstep (the simulator's
/// answer to "did I wire the HLS streams correctly").
void check_lockstep(const TimePointToken& a, const TimePointToken& b,
                    const char* where) {
  CDSFLOW_ASSERT(a.option_id == b.option_id && a.index == b.index,
                 std::string("stream desynchronisation in ") + where);
}

std::vector<OptionToken> make_option_tokens(
    std::span<const cds::CdsOption> options) {
  std::vector<OptionToken> tokens;
  tokens.reserve(options.size());
  for (const auto& opt : options) {
    opt.validate();
    tokens.push_back({opt.id, opt.maturity_years, opt.payment_frequency,
                      opt.recovery_rate,
                      static_cast<std::int32_t>(cds::schedule_size(opt))});
  }
  return tokens;
}

}  // namespace

std::vector<sim::Cycle> GraphHandles::option_latencies() const {
  CDSFLOW_EXPECT(source != nullptr && sink != nullptr,
                 "latencies require a built graph");
  const auto& emitted = source->emission_cycles();
  const auto& arrived = sink->arrival_cycles();
  CDSFLOW_ASSERT(emitted.size() == arrived.size(),
                 "latency accounting requires one result per option");
  std::vector<sim::Cycle> latencies(emitted.size());
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    CDSFLOW_ASSERT(arrived[i] >= emitted[i],
                   "result cannot precede its option");
    latencies[i] = arrived[i] - emitted[i];
  }
  return latencies;
}

LatencyStats latency_stats(const std::vector<sim::Cycle>& latencies) {
  CDSFLOW_EXPECT(!latencies.empty(), "latency stats require samples");
  std::vector<double> xs(latencies.begin(), latencies.end());
  LatencyStats stats;
  stats.p50 = percentile(xs, 50.0);
  stats.p95 = percentile(xs, 95.0);
  stats.p99 = percentile(xs, 99.0);
  stats.max = percentile(xs, 100.0);
  double sum = 0.0;
  for (const double x : xs) sum += x;
  stats.mean = sum / static_cast<double>(xs.size());
  return stats;
}

GraphHandles build_cds_dataflow_graph(sim::Simulation& sim,
                                      const cds::TermStructure& interest,
                                      const cds::TermStructure& hazard,
                                      std::span<const cds::CdsOption> options,
                                      const FpgaEngineConfig& config,
                                      GraphVariant variant) {
  CDSFLOW_EXPECT(!options.empty(), "graph requires at least one option");
  interest.validate();
  hazard.validate();

  const auto& cost = config.cost;
  const std::uint64_t n_options = options.size();
  std::uint64_t total_tp = 0;
  for (const auto& opt : options) total_tp += cds::schedule_size(opt);

  GraphHandles handles;
  handles.total_time_points = total_tp;
  sim::Trace* trace = config.trace;

  const std::size_t tp_depth = config.tp_stream_depth;
  const std::size_t opt_depth = config.option_stream_depth;

  // --- streams -------------------------------------------------------------
  auto& s_options = hls::make_stream<OptionToken>(sim, "options", opt_depth);
  auto& s_opt_to_tpgen =
      hls::make_stream<OptionToken>(sim, "options.tpgen", opt_depth);
  auto& s_opt_to_combine =
      hls::make_stream<OptionToken>(sim, "options.combine", opt_depth);
  auto& s_tp = hls::make_stream<TimePointToken>(sim, "timepoints", tp_depth);
  auto& s_tp_hazard =
      hls::make_stream<TimePointToken>(sim, "tp.hazard", tp_depth);
  auto& s_tp_rate = hls::make_stream<TimePointToken>(sim, "tp.rate", tp_depth);
  auto& s_lambda = hls::make_stream<HazardToken>(sim, "lambda", tp_depth);
  auto& s_survival =
      hls::make_stream<SurvivalToken>(sim, "survival", tp_depth);
  auto& s_sv_premium =
      hls::make_stream<SurvivalToken>(sim, "survival.premium", tp_depth);
  auto& s_sv_payoff =
      hls::make_stream<SurvivalToken>(sim, "survival.payoff", tp_depth);
  auto& s_sv_accrual =
      hls::make_stream<SurvivalToken>(sim, "survival.accrual", tp_depth);
  auto& s_rate = hls::make_stream<RateToken>(sim, "rate", tp_depth);
  auto& s_discount =
      hls::make_stream<DiscountToken>(sim, "discount", tp_depth);
  auto& s_d_premium =
      hls::make_stream<DiscountToken>(sim, "discount.premium", tp_depth);
  auto& s_d_payoff =
      hls::make_stream<DiscountToken>(sim, "discount.payoff", tp_depth);
  auto& s_d_accrual =
      hls::make_stream<DiscountToken>(sim, "discount.accrual", tp_depth);
  auto& s_premium_terms =
      hls::make_stream<TermsToken>(sim, "terms.premium", tp_depth);
  auto& s_payoff_terms =
      hls::make_stream<TermsToken>(sim, "terms.payoff", tp_depth);
  auto& s_accrual_terms =
      hls::make_stream<TermsToken>(sim, "terms.accrual", tp_depth);
  auto& s_premium_sum =
      hls::make_stream<LegSumToken>(sim, "legsum.premium", opt_depth);
  auto& s_payoff_sum =
      hls::make_stream<LegSumToken>(sim, "legsum.payoff", opt_depth);
  auto& s_accrual_sum =
      hls::make_stream<LegSumToken>(sim, "legsum.accrual", opt_depth);
  auto& s_spread =
      hls::make_stream<cds::SpreadResult>(sim, "spreads", opt_depth);

  // --- option source + fan-out ----------------------------------------------
  // Options stream from HBM packed in 512-bit words; one token per cycle is
  // well below the port's capability. A custom arrival pace (streaming
  // quote scenarios) overrides the back-to-back default.
  handles.source = &sim.add_process<SourceStage<OptionToken>>(
      "option_source", s_options, make_option_tokens(options),
      StageTiming{.latency = 1, .ii = 1}, trace,
      config.option_arrival_pace);

  sim.add_process<BroadcastStage<OptionToken>>(
      "option_fanout", s_options,
      std::vector<sim::Channel<OptionToken>*>{&s_opt_to_tpgen,
                                              &s_opt_to_combine},
      StageTiming{.latency = 1, .ii = 1}, n_options, trace);

  // --- time-point generation (expand) ---------------------------------------
  sim.add_process<ExpandStage<OptionToken, TimePointToken>>(
      "timepoint_gen", s_opt_to_tpgen, s_tp,
      [](const OptionToken& opt) {
        const cds::CdsOption o{opt.id, opt.maturity, opt.frequency,
                               opt.recovery};
        const auto schedule = cds::make_schedule(o);
        std::vector<TimePointToken> tps;
        tps.reserve(schedule.size());
        for (std::size_t i = 0; i < schedule.size(); ++i) {
          tps.push_back({opt.id, static_cast<std::int32_t>(i),
                         static_cast<std::int32_t>(schedule.size()),
                         schedule[i].t, schedule[i].dt});
        }
        return tps;
      },
      StageTiming{.latency = 6, .ii = 1}, n_options, trace);

  sim.add_process<BroadcastStage<TimePointToken>>(
      "tp_fanout", s_tp,
      std::vector<sim::Channel<TimePointToken>*>{&s_tp_hazard, &s_tp_rate},
      StageTiming{.latency = 1, .ii = 1}, total_tp, trace);

  // --- hazard integration (paper Listing 1 applied: II=1 scan) --------------
  // Occupancy: one scan element per cycle over the knots at or before t,
  // plus the partial-lane fold epilogue and loop entry overhead.
  const Cycle acc_ii = cost.optimised_accumulation_ii;
  const Cycle epilogue = cost.listing1_epilogue_cycles;
  const Cycle loop_oh = cost.loop_overhead_cycles;
  const unsigned l1_lanes = cost.listing1_lanes;
  auto hazard_work = [&hazard, acc_ii, epilogue, loop_oh](
                         const TimePointToken& tp) -> Cycle {
    const auto len =
        static_cast<Cycle>(hazard.count_at_or_before(tp.t)) + 1;
    return len * acc_ii + epilogue + loop_oh;
  };
  auto hazard_kernel = [&hazard, l1_lanes](const TimePointToken& tp) {
    return HazardToken{tp,
                       cds::integrated_hazard_listing1(hazard, tp.t, l1_lanes)};
  };
  // Feed requirement for the vectorised pool's round-robin scheduler: the
  // hazard knots streamed from the dual-ported URAM replicas.
  auto hazard_feed = [&hazard](const TimePointToken& tp) {
    return static_cast<double>(hazard.count_at_or_before(tp.t)) + 1.0;
  };
  const StageTiming hazard_timing{.latency = cost.dadd_latency, .ii = 1};

  // --- rate interpolation ----------------------------------------------------
  // Fixed-bound bracket scan over the whole interest curve (II=1, no carried
  // dependency) followed by the slope division.
  const Cycle interp_scan = static_cast<Cycle>(interest.size()) *
                                cost.interpolation_scan_ii +
                            loop_oh;
  auto interp_work = [interp_scan](const TimePointToken&) -> Cycle {
    return interp_scan;
  };
  auto interp_kernel = [&interest](const TimePointToken& tp) {
    return RateToken{tp, interest.interpolate(tp.t)};
  };
  auto interp_feed = [&interest](const TimePointToken&) {
    return static_cast<double>(interest.size());
  };
  const StageTiming interp_timing{.latency = cost.ddiv_latency + 2, .ii = 1};

  if (variant == GraphVariant::kOptimised) {
    handles.hazard_unit = &sim.add_process<MapStage<TimePointToken, HazardToken>>(
        "hazard_integrate", s_tp_hazard, s_lambda, hazard_kernel,
        hazard_timing, total_tp, trace, hazard_work);
    handles.interp_unit = &sim.add_process<MapStage<TimePointToken, RateToken>>(
        "rate_interp", s_tp_rate, s_rate, interp_kernel, interp_timing,
        total_tp, trace, interp_work);
  } else {
    hls::ReplicationConfig pool;
    pool.lanes = config.vector_lanes;
    pool.feed_elements_per_cycle = cost.uram_feed_elements_per_cycle;
    pool.lane_stream_depth = tp_depth;
    handles.hazard_pool =
        hls::make_replicated_pool<TimePointToken, HazardToken>(
            sim, "hazard", s_tp_hazard, s_lambda, pool,
            [hazard_kernel](std::size_t) {
              return std::function<HazardToken(const TimePointToken&)>(
                  hazard_kernel);
            },
            hazard_work, hazard_feed, hazard_timing, total_tp, trace);
    handles.interp_pool = hls::make_replicated_pool<TimePointToken, RateToken>(
        sim, "interp", s_tp_rate, s_rate, pool,
        [interp_kernel](std::size_t) {
          return std::function<RateToken(const TimePointToken&)>(
              interp_kernel);
        },
        interp_work, interp_feed, interp_timing, total_tp, trace);
  }

  // --- defaulting probability ------------------------------------------------
  // Sequential, ordered consumer of the hazard results (in the vectorised
  // engine this is the stage that "receives results cyclically", Fig. 3).
  // Carries Q(t_{i-1}) across a single option's time points.
  {
    auto q_prev = std::make_shared<double>(1.0);
    sim.add_process<MapStage<HazardToken, SurvivalToken>>(
        "default_prob", s_lambda, s_survival,
        [q_prev](const HazardToken& h) {
          if (h.tp.first()) *q_prev = 1.0;
          const double q = std::exp(-h.lambda);
          const double dq = *q_prev - q;
          *q_prev = q;
          return SurvivalToken{h.tp, q, dq};
        },
        StageTiming{.latency = cost.dexp_latency + 1, .ii = 1}, total_tp,
        trace);
  }

  sim.add_process<BroadcastStage<SurvivalToken>>(
      "survival_fanout", s_survival,
      std::vector<sim::Channel<SurvivalToken>*>{&s_sv_premium, &s_sv_payoff,
                                                &s_sv_accrual},
      StageTiming{.latency = 1, .ii = 1}, total_tp, trace);

  // --- discount factor --------------------------------------------------------
  sim.add_process<MapStage<RateToken, DiscountToken>>(
      "discount", s_rate, s_discount,
      [](const RateToken& r) {
        return DiscountToken{r.tp, std::exp(-r.r * r.tp.t)};
      },
      StageTiming{.latency = cost.dexp_latency + cost.dmul_latency, .ii = 1},
      total_tp, trace);

  sim.add_process<BroadcastStage<DiscountToken>>(
      "discount_fanout", s_discount,
      std::vector<sim::Channel<DiscountToken>*>{&s_d_premium, &s_d_payoff,
                                                &s_d_accrual},
      StageTiming{.latency = 1, .ii = 1}, total_tp, trace);

  // --- per-time-point leg terms (zips) ----------------------------------------
  sim.add_process<ZipStage<TermsToken, SurvivalToken, DiscountToken>>(
      "premium_calc",
      std::make_tuple(&s_sv_premium, &s_d_premium), s_premium_terms,
      [](const SurvivalToken& s, const DiscountToken& d) {
        check_lockstep(s.tp, d.tp, "premium_calc");
        return TermsToken{s.tp, d.d * s.q * s.tp.dt};
      },
      StageTiming{.latency = 2 * cost.dmul_latency, .ii = 1}, total_tp, trace);

  sim.add_process<ZipStage<TermsToken, SurvivalToken, DiscountToken>>(
      "payoff_calc", std::make_tuple(&s_sv_payoff, &s_d_payoff),
      s_payoff_terms,
      [](const SurvivalToken& s, const DiscountToken& d) {
        check_lockstep(s.tp, d.tp, "payoff_calc");
        return TermsToken{s.tp, d.d * s.dq};
      },
      StageTiming{.latency = cost.dmul_latency, .ii = 1}, total_tp, trace);

  sim.add_process<ZipStage<TermsToken, SurvivalToken, DiscountToken>>(
      "accrual_calc", std::make_tuple(&s_sv_accrual, &s_d_accrual),
      s_accrual_terms,
      [](const SurvivalToken& s, const DiscountToken& d) {
        check_lockstep(s.tp, d.tp, "accrual_calc");
        return TermsToken{s.tp, 0.5 * d.d * s.dq * s.tp.dt};
      },
      StageTiming{.latency = 2 * cost.dmul_latency, .ii = 1}, total_tp, trace);

  // --- per-option accumulators (reduce) ----------------------------------------
  // In-order accumulation; the Listing-1 partial lanes make these II=1 on
  // hardware, and with ~tens of tokens per option the fold epilogue is
  // negligible (paper: these stages "can generate a result per cycle").
  auto add_reduce = [&](const char* name, sim::Channel<TermsToken>& in,
                        sim::Channel<LegSumToken>& out) {
    auto acc = std::make_shared<double>(0.0);
    auto current = std::make_shared<std::int32_t>(0);
    sim.add_process<ReduceStage<TermsToken, LegSumToken>>(
        name, in, out,
        [acc, current](const TermsToken& t) {
          if (t.tp.first()) {
            *acc = 0.0;
            *current = t.tp.option_id;
          }
          CDSFLOW_ASSERT(*current == t.tp.option_id,
                         "accumulator received interleaved options");
          *acc += t.value;
        },
        [acc, current]() {
          return LegSumToken{*current, *acc};
        },
        [](const TermsToken& t) { return t.tp.last(); },
        StageTiming{.latency = cost.dadd_latency,
                    .ii = cost.optimised_accumulation_ii},
        total_tp, trace);
  };
  add_reduce("accum_premium", s_premium_terms, s_premium_sum);
  add_reduce("accum_payoff", s_payoff_terms, s_payoff_sum);
  add_reduce("accum_accrual", s_accrual_terms, s_accrual_sum);

  // --- spread combine + sink ----------------------------------------------------
  sim.add_process<
      ZipStage<cds::SpreadResult, OptionToken, LegSumToken, LegSumToken,
               LegSumToken>>(
      "spread_combine",
      std::make_tuple(&s_opt_to_combine, &s_premium_sum, &s_accrual_sum,
                      &s_payoff_sum),
      s_spread,
      [](const OptionToken& opt, const LegSumToken& premium,
         const LegSumToken& accrual, const LegSumToken& payoff) {
        CDSFLOW_ASSERT(opt.id == premium.option_id &&
                           opt.id == accrual.option_id &&
                           opt.id == payoff.option_id,
                       "spread_combine received mismatched option streams");
        return cds::SpreadResult{
            opt.id, cds::combine_spread_bps(premium.value, accrual.value,
                                            payoff.value, opt.recovery)};
      },
      StageTiming{.latency = cost.ddiv_latency + 2 * cost.dmul_latency,
                  .ii = 1},
      n_options, trace);

  handles.sink = &sim.add_process<SinkStage<cds::SpreadResult>>(
      "result_sink", s_spread, n_options, StageTiming{.latency = 1, .ii = 1},
      trace);

  return handles;
}

}  // namespace cdsflow::engine
