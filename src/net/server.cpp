#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace cdsflow::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  CDSFLOW_EXPECT(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "fcntl(O_NONBLOCK) failed");
}

}  // namespace

void ServerHandler::on_malformed(Server&, int, const std::string&) {}
void ServerHandler::on_tick(Server&) {}
void ServerHandler::on_disconnect(int) {}

Server::Server(ServerConfig config) : config_(std::move(config)) {
  int pipe_fds[2];
  CDSFLOW_EXPECT(::pipe(pipe_fds) == 0, "self-pipe creation failed");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);

  if (!config_.unix_path.empty()) {
    CDSFLOW_EXPECT(config_.unix_path.size() < sizeof(sockaddr_un{}.sun_path),
                   "unix socket path too long");
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    CDSFLOW_EXPECT(listen_fd_ >= 0, "socket(AF_UNIX) failed");
    ::unlink(config_.unix_path.c_str());  // stale socket from a prior run
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    CDSFLOW_EXPECT(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "bind(" + config_.unix_path + ") failed: " +
                       std::strerror(errno));
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    CDSFLOW_EXPECT(listen_fd_ >= 0, "socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(config_.tcp_port);
    CDSFLOW_EXPECT(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "bind(port " + std::to_string(config_.tcp_port) +
                       ") failed: " + std::strerror(errno));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    CDSFLOW_EXPECT(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                                 &len) == 0,
                   "getsockname failed");
    tcp_port_ = ntohs(bound.sin_port);
  }
  CDSFLOW_EXPECT(::listen(listen_fd_, config_.backlog) == 0,
                 std::string("listen failed: ") + std::strerror(errno));
  set_nonblocking(listen_fd_);
}

Server::~Server() {
  for (const auto& [fd, conn] : connections_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
}

void Server::stop() {
  const char byte = 0;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const auto n = ::write(wake_write_fd_, &byte, 1);
}

void Server::send(int conn, const std::vector<std::uint8_t>& bytes) {
  const auto it = connections_.find(conn);
  if (it == connections_.end()) return;
  it->second.outbound.insert(it->second.outbound.end(), bytes.begin(),
                             bytes.end());
}

void Server::close_connection(int conn) {
  const auto it = connections_.find(conn);
  if (it != connections_.end()) it->second.closing = true;
}

void Server::accept_ready(ServerHandler&) {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN: backlog drained
    set_nonblocking(fd);
    connections_.emplace(fd, Connection{});
  }
}

bool Server::read_ready(ServerHandler& handler, int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return false;
  std::uint8_t chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      Connection& conn = it->second;
      if (!conn.reader.feed(chunk, static_cast<std::size_t>(n))) {
        handler.on_malformed(*this, fd, conn.reader.error());
        conn.closing = true;
        return true;  // flushed + closed by the caller's POLLOUT handling
      }
      // Hand over every frame completed by this chunk. The handler may
      // send() or close_connection(), both loop-thread-safe here.
      while (auto frame = conn.reader.next()) {
        handler.on_frame(*this, fd, std::move(*frame));
        it = connections_.find(fd);
        if (it == connections_.end()) return false;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    teardown(handler, fd, true);  // peer closed (n == 0) or hard error
    return false;
  }
}

bool Server::flush(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return false;
  Connection& conn = it->second;
  while (conn.outbound_offset < conn.outbound.size()) {
    const ssize_t n = ::send(fd, conn.outbound.data() + conn.outbound_offset,
                             conn.outbound.size() - conn.outbound_offset,
                             MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbound_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // hard write error: caller tears down
  }
  conn.outbound.clear();
  conn.outbound_offset = 0;
  return true;
}

void Server::teardown(ServerHandler& handler, int fd, bool notify) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::close(fd);
  connections_.erase(it);
  if (notify) handler.on_disconnect(fd);
}

void Server::run(ServerHandler& handler) {
  stopping_ = false;
  const int timeout_ms =
      std::max(1, static_cast<int>(config_.tick_us / 1000));
  std::vector<pollfd> fds;
  std::vector<int> dead;
  while (!stopping_) {
    fds.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : connections_) {
      short events = POLLIN;
      if (conn.outbound_offset < conn.outbound.size() || conn.closing) {
        events |= POLLOUT;
      }
      fds.push_back({fd, events, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0) {
      CDSFLOW_EXPECT(errno == EINTR,
                     std::string("poll failed: ") + std::strerror(errno));
      continue;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
      stopping_ = true;
    }
    if ((fds[1].revents & POLLIN) != 0) accept_ready(handler);

    for (std::size_t i = 2; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      const short revents = fds[i].revents;
      if (revents == 0) continue;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        teardown(handler, fd, true);
        continue;
      }
      if ((revents & POLLIN) != 0 && !read_ready(handler, fd)) continue;
      if ((revents & (POLLOUT | POLLHUP)) != 0 && !flush(fd)) {
        teardown(handler, fd, true);
        continue;
      }
      if ((revents & POLLHUP) != 0 && connections_.count(fd) != 0 &&
          connections_[fd].outbound.empty()) {
        teardown(handler, fd, true);
      }
    }

    // Close-after-flush connections: one immediate flush attempt so
    // reject-then-close does not wait a poll round-trip, then tear down
    // once (or because) the buffer is done.
    dead.clear();
    for (auto& [fd, conn] : connections_) {
      if (!conn.closing) continue;
      if (!flush(fd) || conn.outbound.empty()) dead.push_back(fd);
    }
    for (const int fd : dead) teardown(handler, fd, true);

    handler.on_tick(*this);
  }
}

}  // namespace cdsflow::net
