/// \file experiment.hpp
/// Experiment protocol: run an engine several times (the paper averages over
/// three), aggregate the throughput, and build paper-vs-measured rows.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "engines/engine.hpp"
#include "report/table.hpp"

namespace cdsflow::report {

/// Aggregated outcome of repeated pricing runs.
struct Measurement {
  std::string label;
  RunningStats options_per_second;
  RunningStats total_seconds;
  engine::PricingRun last_run;  ///< results + breakdown of the final run

  double mean_ops() const { return options_per_second.mean(); }
};

/// Runs `engine.price(options)` `runs` times and aggregates.
Measurement measure(engine::Engine& engine,
                    const std::vector<cds::CdsOption>& options, int runs = 3,
                    std::string label = {});

/// One row of a reproduction table: measured vs paper-reported.
struct ComparisonRow {
  std::string description;
  double measured = 0.0;
  double paper = 0.0;  ///< 0 when the paper has no matching number
};

/// Renders comparison rows as the standard reproduction table
/// (value column name e.g. "Options/second").
Table comparison_table(const std::string& title,
                       const std::string& value_name,
                       const std::vector<ComparisonRow>& rows);

}  // namespace cdsflow::report
