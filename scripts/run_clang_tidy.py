#!/usr/bin/env python3
"""Run clang-tidy over src/ and fail on findings NOT in the checked-in
baseline (scripts/clang_tidy_baseline.txt).

The baseline is the burn-down list: pre-existing findings are recorded
there (file + check name, no line numbers, so ordinary edits don't churn
it) and removed as they are fixed; anything not listed is a NEW finding
and fails the lint job. Silencing with NOLINT instead of fixing or
baselining is not the workflow.

Usage:
  scripts/run_clang_tidy.py --build-dir <dir> [--update-baseline]

<dir> must be a CMake build tree configured with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the CI lint job does this). Exits 2
with a clear message when no clang-tidy binary is on PATH -- the local
gcc-only dev box is expected to rely on CI for this check.
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "scripts" / "clang_tidy_baseline.txt"
FINDING = re.compile(r"^(/[^:]+):\d+:\d+: (?:warning|error): .* \[([\w.,-]+)\]")


def find_tool(names):
    for name in names:
        path = shutil.which(name)
        if path:
            return path
    return None


def tidy_binary():
    return find_tool(["clang-tidy"] + [f"clang-tidy-{v}" for v in
                                       range(21, 13, -1)])


def source_files(build_dir: Path):
    commands = build_dir / "compile_commands.json"
    if not commands.is_file():
        sys.exit(f"run_clang_tidy: {commands} not found; configure with "
                 "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON")
    files = []
    for entry in json.loads(commands.read_text()):
        path = Path(entry["file"]).resolve()
        if (REPO / "src") in path.parents:
            files.append(path)
    return sorted(set(files))


def run_one(tidy: str, build_dir: Path, path: Path):
    proc = subprocess.run(
        [tidy, "-p", str(build_dir), "--quiet", str(path)],
        capture_output=True, text=True)
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING.match(line)
        if not m:
            continue
        abspath, checks = m.groups()
        try:
            rel = Path(abspath).resolve().relative_to(REPO).as_posix()
        except ValueError:
            continue  # system/third-party header
        for check in checks.split(","):
            findings.add((rel, check))
    return findings, proc.stdout


def load_baseline():
    if not BASELINE.is_file():
        return set()
    entries = set()
    for line in BASELINE.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rel, check = line.split()
        entries.add((rel, check))
    return entries


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", required=True, type=Path)
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's findings")
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args()

    tidy = tidy_binary()
    if tidy is None:
        print("run_clang_tidy: no clang-tidy binary on PATH; this check "
              "runs in the CI lint job")
        return 2

    files = source_files(args.build_dir.resolve())
    if not files:
        sys.exit("run_clang_tidy: no src/ translation units in "
                 "compile_commands.json")
    print(f"run_clang_tidy: {tidy}, {len(files)} translation unit(s)")

    findings = set()
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for found, _ in pool.map(
                lambda p: run_one(tidy, args.build_dir, p), files):
            findings |= found

    if args.update_baseline:
        lines = ["# clang-tidy burn-down baseline: pre-existing findings",
                 "# (file + check), removed as fixed. Regenerate with",
                 "#   scripts/run_clang_tidy.py --build-dir <dir> "
                 "--update-baseline"]
        lines += [f"{rel} {check}" for rel, check in sorted(findings)]
        BASELINE.write_text("\n".join(lines) + "\n")
        print(f"run_clang_tidy: baseline rewritten "
              f"({len(findings)} finding(s))")
        return 0

    baseline = load_baseline()
    new = findings - baseline
    fixed = baseline - findings
    for rel, check in sorted(new):
        print(f"NEW: {rel} [{check}]")
    if fixed:
        print(f"run_clang_tidy: {len(fixed)} baselined finding(s) no longer "
              "fire -- prune them from scripts/clang_tidy_baseline.txt")
    if new:
        print(f"run_clang_tidy: {len(new)} new finding(s); fix them or, for "
              "a deliberate burn-down entry, --update-baseline")
        return 1
    print(f"run_clang_tidy: clean ({len(findings)} baselined finding(s) "
          "still open)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
