# Fixture bench_diff.py for cdslint's bench-json-keys rule: tracks a key
# ("demo_speedup") that no bench source in this fixture tree writes -- the
# seeded violation.
METRICS = {
    "BENCH_demo.json": [
        ("demo_speedup", True),
    ],
}
