#include "workload/curves.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cdsflow::workload {

const char* to_string(CurveShape shape) {
  switch (shape) {
    case CurveShape::kFlat:
      return "flat";
    case CurveShape::kUpwardSloping:
      return "upward-sloping";
    case CurveShape::kHumped:
      return "humped";
    case CurveShape::kStressed:
      return "stressed";
  }
  return "unknown";
}

cds::TermStructure make_curve(const CurveSpec& spec) {
  CDSFLOW_EXPECT(spec.points >= 1, "curve requires at least one point");
  CDSFLOW_EXPECT(spec.span_years > 0.0, "curve span must be positive");
  CDSFLOW_EXPECT(spec.base_rate > 0.0, "base rate must be positive");
  CDSFLOW_EXPECT(spec.jitter >= 0.0 && spec.jitter < 1.0,
                 "jitter must lie in [0, 1)");

  Rng rng(spec.seed);
  std::vector<double> times(spec.points);
  std::vector<double> values(spec.points);
  const auto n = static_cast<double>(spec.points);
  for (std::size_t i = 0; i < spec.points; ++i) {
    const double frac = static_cast<double>(i + 1) / n;  // (0, 1]
    times[i] = frac * spec.span_years;
    double shape_factor = 1.0;
    switch (spec.shape) {
      case CurveShape::kFlat:
        shape_factor = 1.0;
        break;
      case CurveShape::kUpwardSloping:
        // +80% from front to back.
        shape_factor = 0.8 + 0.8 * frac;
        break;
      case CurveShape::kHumped:
        // Peaks at ~1.6x around 40% of the span.
        shape_factor =
            0.9 + 0.7 * std::exp(-12.0 * (frac - 0.4) * (frac - 0.4));
        break;
      case CurveShape::kStressed:
        // Elevated, inverted front end.
        shape_factor = 1.8 - 0.6 * frac;
        break;
    }
    double v = spec.base_rate * shape_factor;
    if (spec.jitter > 0.0) {
      v *= 1.0 + spec.jitter * (rng.uniform01() - 0.5);
    }
    values[i] = v;
  }
  return cds::TermStructure(std::move(times), std::move(values));
}

cds::TermStructure paper_interest_curve(std::size_t points,
                                        std::uint64_t seed) {
  CurveSpec spec;
  spec.points = points;
  spec.span_years = 30.0;
  spec.base_rate = 0.02;  // ~2% risk-free level
  spec.shape = CurveShape::kUpwardSloping;
  spec.seed = seed;
  return make_curve(spec);
}

cds::TermStructure paper_hazard_curve(std::size_t points, std::uint64_t seed) {
  CurveSpec spec;
  spec.points = points;
  spec.span_years = 30.0;
  spec.base_rate = 0.03;  // ~300 bps flat-ish credit
  spec.shape = CurveShape::kHumped;
  spec.seed = seed;
  return make_curve(spec);
}

}  // namespace cdsflow::workload
