#include "engines/cpu_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace cdsflow::engine {

CpuEngine::CpuEngine(cds::TermStructure interest, cds::TermStructure hazard,
                     CpuEngineConfig config)
    : pricer_(std::move(interest), std::move(hazard)),
      threads_(config.threads),
      batch_(config.batch_kernel || config.vector_kernel ||
             config.sweep_kernel),
      vector_(config.vector_kernel || config.sweep_kernel),
      sweep_(config.sweep_kernel),
      risk_(config.risk_mode) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
  if (batch_) {
    if (vector_) kernel_level_ = cds::simd::active_level();
    batch_pricer_ = std::make_unique<cds::BatchPricer>(
        pricer_.interest(), pricer_.hazard(), kernel_level_);
  }
  risk_config_.bump = config.risk_bump;
  risk_config_.ladder_edges = std::move(config.ladder_edges);
  if (risk_) {
    // Validate the risk configuration up front so both kernels reject bad
    // configs identically (the batch kernel re-checks per call; the scalar
    // loop would only trip per option).
    CDSFLOW_EXPECT(risk_config_.bump > 0.0 && std::isfinite(risk_config_.bump),
                   "sensitivity bump must be positive and finite");
    if (!risk_config_.ladder_edges.empty()) {
      cds::validate_ladder_edges(risk_config_.ladder_edges);
    }
  }
}

std::string CpuEngine::name() const {
  std::string base =
      sweep_ ? "cpu-sweep" : vector_ ? "cpu-vec" : batch_ ? "cpu-batch" : "cpu";
  if (risk_) base += "-risk";
  return threads_ == 1 ? base : (base + "-mt" + std::to_string(threads_));
}

std::string CpuEngine::description() const {
  std::string kernel = "scalar reference kernel";
  if (vector_) {
    kernel = std::string(sweep_ ? "scenario-sweep SIMD kernel ("
                                : "SIMD batch kernel (") +
             cds::simd::to_string(kernel_level_) + ", " +
             std::to_string(cds::simd::lanes(kernel_level_)) + " lane(s))";
  } else if (batch_) {
    kernel = "batched SoA fast-path kernel";
  }
  return std::string("Bespoke C++ CPU engine, ") + kernel +
         (risk_ ? " + Greeks (CS01/IR01/Rec01/JTD)" : "") + ", " +
         std::to_string(threads_) + " thread(s) (" +
         (uses_openmp() ? "OpenMP" : "std::thread") + ")";
}

bool CpuEngine::uses_openmp() {
#if defined(CDSFLOW_HAVE_OPENMP)
  return true;
#else
  return false;
#endif
}

void CpuEngine::price_chunk(const std::vector<cds::CdsOption>& options,
                            std::size_t begin, std::size_t end,
                            PricingRun& run, Scratch& scratch) const {
  const std::size_t n = end - begin;
  if (risk_) {
    const std::size_t buckets = run.ladder_buckets;
    if (batch_) {
      batch_pricer_->price_with_sensitivities(
          std::span<const cds::CdsOption>(options).subspan(begin, n),
          std::span<cds::Sensitivities>(run.sensitivities).subspan(begin, n),
          std::span<double>(run.cs01_ladder)
              .subspan(begin * buckets, n * buckets),
          scratch.risk, risk_config_);
    } else {
      // The naive post-pricing workflow: bumped repricings per option.
      for (std::size_t i = begin; i < end; ++i) {
        run.sensitivities[i] =
            cds::compute_sensitivities(pricer_.interest(), pricer_.hazard(),
                                       options[i], risk_config_.bump);
        if (buckets > 0) {
          const auto row = cds::cs01_ladder(
              pricer_.interest(), pricer_.hazard(), options[i],
              risk_config_.ladder_edges, risk_config_.bump);
          std::copy(row.begin(), row.end(),
                    run.cs01_ladder.begin() +
                        static_cast<std::ptrdiff_t>(i * buckets));
        }
      }
    }
    for (std::size_t i = begin; i < end; ++i) {
      run.results[i] = {options[i].id, run.sensitivities[i].spread_bps};
    }
    return;
  }
  if (batch_) {
    batch_pricer_->price(
        std::span<const cds::CdsOption>(options).subspan(begin, n),
        std::span<cds::SpreadResult>(run.results).subspan(begin, n),
        scratch.batch);
    return;
  }
  for (std::size_t i = begin; i < end; ++i) {
    run.results[i] = {options[i].id,
                      pricer_.spread_bps(options[i], scratch.schedule)};
  }
}

PricingRun CpuEngine::price(const std::vector<cds::CdsOption>& options) {
  CDSFLOW_EXPECT(!options.empty(), "price() requires options");
  PricingRun run;
  run.results.resize(options.size());
  if (risk_) {
    run.sensitivities.resize(options.size());
    run.ladder_buckets = risk_config_.ladder_edges.empty()
                             ? 0
                             : risk_config_.ladder_edges.size() - 1;
    run.cs01_ladder.resize(options.size() * run.ladder_buckets);
  }

  const auto t0 = std::chrono::steady_clock::now();
  if (threads_ <= 1) {
    if (scratch_.empty()) scratch_.resize(1);
    price_chunk(options, 0, options.size(), run, scratch_[0]);
  } else {
    // One contiguous chunk per worker; the OpenMP and std::thread paths
    // execute the identical partition through price_chunk, each chunk on
    // its own warm scratch (kept across price() calls).
    const std::size_t chunk = (options.size() + threads_ - 1) / threads_;
    const auto n_chunks =
        static_cast<std::ptrdiff_t>((options.size() + chunk - 1) / chunk);
    if (scratch_.size() < static_cast<std::size_t>(n_chunks)) {
      scratch_.resize(static_cast<std::size_t>(n_chunks));
    }
    // An exception (invalid option, unpriceable grid) must not escape the
    // parallel region or a worker thread -- that would terminate the
    // process instead of surfacing a catchable Error. Capture the first
    // one and rethrow after the join, matching the serial path's contract.
    // The slot is locked for the final read too, not only the writes: the
    // join does publish it, but the lock keeps the access pattern uniform
    // and lets the thread-safety analysis prove it instead of trusting the
    // join edge (test_engines' WorkerThreadExceptionSurfacesAsError covers
    // this path).
    struct ErrorSlot {
      Mutex mu;
      std::exception_ptr first CDSFLOW_GUARDED_BY(mu);
    } slot;
    auto run_chunk = [&](std::ptrdiff_t c) noexcept {
      const std::size_t begin = static_cast<std::size_t>(c) * chunk;
      try {
        price_chunk(options, begin, std::min(options.size(), begin + chunk),
                    run, scratch_[static_cast<std::size_t>(c)]);
      } catch (...) {
        const MutexLock lock(slot.mu);
        if (!slot.first) slot.first = std::current_exception();
      }
    };
#if defined(CDSFLOW_HAVE_OPENMP)
#pragma omp parallel for schedule(static) num_threads(static_cast<int>(threads_))
    for (std::ptrdiff_t c = 0; c < n_chunks; ++c) {
      run_chunk(c);
    }
#else
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(n_chunks));
    for (std::ptrdiff_t c = 0; c < n_chunks; ++c) {
      workers.emplace_back([&run_chunk, c] { run_chunk(c); });
    }
    for (auto& w : workers) w.join();
#endif
    std::exception_ptr first_error;
    {
      const MutexLock lock(slot.mu);
      first_error = slot.first;
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  const auto t1 = std::chrono::steady_clock::now();

  run.kernel_seconds = std::chrono::duration<double>(t1 - t0).count();
  run.kernel_cycles = 0;  // native execution
  run.transfer_seconds = 0.0;
  run.invocations = 1;
  run.finalise(options.size());
  return run;
}

}  // namespace cdsflow::engine
