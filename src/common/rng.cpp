#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace cdsflow {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 expansion guarantees a non-zero state even for seed == 0.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() {
  // Top 53 bits -> [0,1) double, the standard xoshiro idiom.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CDSFLOW_EXPECT(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CDSFLOW_EXPECT(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal(double mean, double stddev) {
  CDSFLOW_EXPECT(stddev >= 0.0, "normal() requires stddev >= 0");
  // Box-Muller; u1 nudged away from zero so log() stays finite.
  const double u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1 + 1e-300));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  CDSFLOW_EXPECT(!weights.empty(), "weighted_index() requires weights");
  double total = 0.0;
  for (double w : weights) {
    CDSFLOW_EXPECT(w >= 0.0, "weighted_index() weights must be >= 0");
    total += w;
  }
  CDSFLOW_EXPECT(total > 0.0, "weighted_index() weights must sum to > 0");
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: landed exactly on `total`
}

Rng Rng::split(std::uint64_t salt) const {
  // Mix the current state with the salt through splitmix64 so child streams
  // are decorrelated from the parent and from each other.
  std::uint64_t s = state_[0] ^ rotl(state_[3], 13) ^ (salt * 0xD1B54A32D192ED03ULL);
  return Rng(splitmix64(s));
}

}  // namespace cdsflow
