/// \file bench_cluster_scaling.cpp
/// Multi-process cluster scale-out over real sockets, reported as JSON.
///
/// Launches N in-process cluster workers (each a net::Server on its own
/// thread wrapping a pinned-fit ClusterWorker -- the same processes-on-one-
/// host topology scripts/cluster_smoke.sh drives with real processes) and
/// prices one book through the ClusterCoordinator at 1 and 2 nodes. Every
/// point is gated on bit-identity against the single-process
/// PortfolioRuntime -- the cluster determinism contract of docs/CLUSTER.md
/// -- and the exit code enforces it. The modelled makespan charges each
/// node its measured engine seconds plus the link model, so 2-vs-1 scaling
/// reflects real shard-time balance (host core contention shows up here, as
/// it should on a 1-core CI box); a final heterogeneous point (4:1 pinned
/// fits) records how plan_cluster() shifts shards toward the fast node.
///
/// Usage: bench_cluster_scaling [n_options] [engine] [out.json]
///   defaults: 4096 cpu-batch BENCH_cluster_scaling.json

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cluster/coordinator.hpp"
#include "cluster/worker.hpp"
#include "common/format.hpp"
#include "net/server.hpp"
#include "report/table.hpp"
#include "runtime/portfolio_runtime.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace cdsflow;

std::string unique_socket_path(int index) {
  return "/tmp/cdsflow-bench-cluster-" + std::to_string(::getpid()) + "-" +
         std::to_string(index) + ".sock";
}

/// One in-process worker node: server thread + pinned-fit ClusterWorker.
struct WorkerNode {
  std::string path;
  std::unique_ptr<cluster::ClusterWorker> worker;
  std::unique_ptr<net::Server> server;
  std::thread thread;

  WorkerNode(const workload::Scenario& scenario, const std::string& engine,
             int index, double ops_per_second) {
    path = unique_socket_path(index);
    cluster::WorkerConfig config;
    config.runtime.engine = engine;
    config.runtime.workers = 1;
    config.fit.options_per_second = ops_per_second;
    config.fit.setup_seconds = 1e-4;
    config.fit.watts = 60.0;
    worker = std::make_unique<cluster::ClusterWorker>(
        scenario.interest, scenario.hazard, std::move(config));
    net::ServerConfig server_config;
    server_config.unix_path = path;
    server = std::make_unique<net::Server>(server_config);
    thread = std::thread([this] { server->run(*worker); });
  }

  ~WorkerNode() {
    server->stop();
    thread.join();
  }
};

cluster::NodeSpec node_spec(const std::string& path) {
  cluster::NodeSpec spec;
  spec.unix_path = path;
  spec.connect_timeout_seconds = 10.0;
  spec.measure_latency = false;  // keep the modelled figures deterministic
  return spec;
}

bool bit_identical(const std::vector<cds::SpreadResult>& a,
                   const std::vector<cds::SpreadResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].spread_bps != b[i].spread_bps) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;
  const std::string engine_name = argc > 2 ? argv[2] : "cpu-batch";
  const std::string out_path =
      argc > 3 ? argv[3] : "BENCH_cluster_scaling.json";

  const auto scenario = workload::paper_scenario(n_options, /*seed=*/7);
  std::cout << "== Cluster scaling: " << engine_name << " workers over "
            << n_options << " options ==\n\n";

  // Single-process baseline the cluster merges must bit-match.
  runtime::RuntimeConfig local_config;
  local_config.engine = engine_name;
  local_config.workers = 1;
  runtime::PortfolioRuntime local(scenario.interest, scenario.hazard,
                                  local_config);
  const auto baseline = local.price(scenario.options);

  report::Table table("Cluster throughput vs node count (" + engine_name +
                      ")");
  table.set_columns({"Nodes", "Shards", "Modelled opts/s", "Scaling",
                     "Wall opts/s", "Resub", "Identical"});

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"cluster_scaling\",\n"
       << "  \"engine\": \"" << engine_name << "\",\n"
       << "  \"n_options\": " << n_options << ",\n"
       << "  \"baseline_options_per_second\": "
       << baseline.run.options_per_second << ",\n"
       << "  \"points\": [";

  bool all_identical = true;
  double ops_1node = 0.0;
  double ops_2node = 0.0;
  bool first = true;
  // A fixed shard size (8 shards over the book) keeps the schedule
  // interesting: the equal-fit points balance 4/4 and the 4:1 point must
  // visibly skew, instead of degenerating to one shard per node.
  const std::size_t shard_size = std::max<std::size_t>(1, n_options / 8);
  for (const std::size_t n_nodes : {std::size_t{1}, std::size_t{2}}) {
    std::vector<std::unique_ptr<WorkerNode>> nodes;
    cluster::CoordinatorConfig config;
    config.shard_size = shard_size;
    for (std::size_t i = 0; i < n_nodes; ++i) {
      nodes.push_back(std::make_unique<WorkerNode>(
          scenario, engine_name, static_cast<int>(i), 1e6));
      config.nodes.push_back(node_spec(nodes.back()->path));
    }
    cluster::ClusterCoordinator coordinator(config);
    const auto run = coordinator.price(scenario.options);

    const bool identical =
        bit_identical(run.run.results, baseline.run.results);
    all_identical = all_identical && identical;
    if (n_nodes == 1) ops_1node = run.run.options_per_second;
    if (n_nodes == 2) ops_2node = run.run.options_per_second;
    const double scaling = run.run.options_per_second / ops_1node;
    table.add_row({std::to_string(n_nodes),
                   std::to_string(run.shards.size()),
                   with_thousands(run.run.options_per_second, 0),
                   fixed(scaling, 2) + "x",
                   with_thousands(run.wall_options_per_second, 0),
                   std::to_string(run.resubmissions),
                   identical ? "yes" : "NO"});

    json << (first ? "" : ",") << "\n    {\"nodes\": " << n_nodes
         << ", \"shards\": " << run.shards.size()
         << ", \"shard_size\": " << run.shard_size
         << ", \"modelled_options_per_second\": "
         << run.run.options_per_second
         << ", \"wall_options_per_second\": " << run.wall_options_per_second
         << ", \"scaling_vs_1_node\": " << scaling
         << ", \"resubmissions\": " << run.resubmissions
         << ", \"bit_identical\": " << (identical ? "true" : "false") << "}";
    first = false;
  }

  // Heterogeneous point: 4:1 pinned fits on two nodes -- the plan must
  // shift shards toward the fast node (docs/CLUSTER.md's planning model).
  std::size_t hetero_fast_shards = 0;
  std::size_t hetero_slow_shards = 0;
  bool hetero_identical = false;
  {
    WorkerNode fast(scenario, engine_name, 10, 4e6);
    WorkerNode slow(scenario, engine_name, 11, 1e6);
    cluster::CoordinatorConfig config;
    config.shard_size = shard_size;
    config.nodes = {node_spec(fast.path), node_spec(slow.path)};
    cluster::ClusterCoordinator coordinator(config);
    const auto run = coordinator.price(scenario.options);
    hetero_fast_shards = run.plan.shards_per_node[0];
    hetero_slow_shards = run.plan.shards_per_node[1];
    hetero_identical = bit_identical(run.run.results, baseline.run.results);
    all_identical = all_identical && hetero_identical;
    table.add_row({"2 (4:1)", std::to_string(run.shards.size()),
                   with_thousands(run.run.options_per_second, 0),
                   fixed(run.run.options_per_second / ops_1node, 2) + "x",
                   with_thousands(run.wall_options_per_second, 0),
                   std::to_string(run.resubmissions),
                   hetero_identical ? "yes" : "NO"});
  }

  const double scaling_2v1 = ops_2node / ops_1node;
  json << "\n  ],\n"
       << "  \"modelled_scaling_2v1\": " << scaling_2v1 << ",\n"
       << "  \"hetero_fast_shards\": " << hetero_fast_shards << ",\n"
       << "  \"hetero_slow_shards\": " << hetero_slow_shards << ",\n"
       << "  \"hetero_plan_diverges\": "
       << (hetero_fast_shards > hetero_slow_shards ? "true" : "false")
       << ",\n"
       << "  \"all_bit_identical\": " << (all_identical ? "true" : "false")
       << "\n}\n";

  std::cout << table.render_text() << '\n'
            << "modelled 2-vs-1 scaling: " << fixed(scaling_2v1, 2)
            << "x (measured engine seconds + link charge per node)\n"
            << "hetero (4:1) shard split: " << hetero_fast_shards << " / "
            << hetero_slow_shards << '\n';
  std::ofstream out(out_path);
  out << json.str();
  std::cout << "JSON written to " << out_path << '\n';
  return all_identical ? 0 : 1;
}
