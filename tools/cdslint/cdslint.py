#!/usr/bin/env python3
"""cdslint: machine checks for cdsflow's written invariants.

The repo's contracts that used to live only in prose (docs/VECTOR_LANES.md,
docs/PROTOCOL.md, docs/CONCURRENCY.md, bench_diff.py's metric table) are
enforced here as an AST-free source lint, registered as a CTest and run in
the CI lint job. Rules:

  fp-contract        The arch/vector-kernel TUs must be compiled with
                     -ffp-contract=off (the bit-parity contract of
                     docs/VECTOR_LANES.md: "plain mul + add" must not be
                     fused into FMAs behind the kernels' back), and no
                     CMake file may enable fast-math anywhere.
  raw-primitives     No raw std::mutex / std::lock_guard / std::unique_lock
                     / std::scoped_lock outside the annotated wrappers in
                     src/common/thread_annotations.hpp, and no raw
                     std::thread outside the ThreadPool and the documented
                     thread owners -- everything else must go through the
                     Clang-thread-safety-annotated vocabulary.
  codec-bounds       In src/net/codec.cpp's decode switch, every frame case
                     must gate the payload through a require_payload_*
                     helper before its first raw byte read, and every
                     length-field read (count / len / lanes) must be
                     followed by a require_count_between gate on that
                     variable (docs/PROTOCOL.md: explicit bounds on every
                     length field).
  float-in-cds       No `float` types or literals in the src/cds pricing
                     paths: the engine's contract is double precision
                     everywhere except the deliberate reduced-precision
                     emulation in src/cds/precision.* (the paper's kSingle
                     study), which is allowlisted.
  bench-json-keys    Every metric key bench_diff.py tracks must be written
                     by some bench source under that exact name, and every
                     tracked BENCH_*.json must be produced by the CI bench
                     job -- so a renamed key or dropped bench shows up as a
                     lint failure, not as a silently empty trajectory.

Usage:
  cdslint.py <repo-root>     lint a tree (exit 1 on violations)
  cdslint.py --self-test     run every rule against its seeded-violation
                             fixture tree (exit 1 when a rule fails to fire
                             or fires for the wrong reason)

No third-party dependencies; regex/token level on purpose (no compiler or
clang python bindings needed in CI).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# shared helpers


class Violation:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_cpp(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Keeps every newline so line numbers survive; replaces the stripped
    bytes with spaces so column-free regexes cannot match into comments or
    literals ("std::mutex" in a doc comment is not a violation).
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2 if i + 1 < n else 1
            out.append(" ")
            continue
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
            out.append(" ")
            continue
        else:
            out.append(c)
            i += 1
            continue
    return "".join(out)


def iter_lines(stripped: str):
    for lineno, line in enumerate(stripped.split("\n"), start=1):
        yield lineno, line


def read(path: Path) -> str:
    return path.read_text(encoding="utf-8", errors="replace")


def cmake_statements(text: str):
    """Yields (lineno, 'command(args...)') for top-level CMake commands."""
    for match in re.finditer(r"(?m)^\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(", text):
        start = match.end() - 1
        depth = 0
        for i in range(start, len(text)):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    lineno = text.count("\n", 0, match.start()) + 1
                    yield lineno, match.group(1), text[match.start():i + 1]
                    break


# --------------------------------------------------------------------------
# rule: fp-contract

ARCH_TUS = (
    "src/cds/vector_kernel_avx2.cpp",
    "src/cds/vector_kernel_avx512.cpp",
)

FAST_MATH_FLAGS = (
    "-ffast-math",
    "-funsafe-math-optimizations",
    "-Ofast",
    "-ffp-contract=fast",
    "-fassociative-math",
    "-freciprocal-math",
)


def rule_fp_contract(root: Path):
    violations = []
    cmake_files = [p for p in [root / "CMakeLists.txt"] if p.is_file()]
    cmake_files += sorted(root.glob("cmake/*.cmake"))
    cmake_files += sorted(root.glob("*/CMakeLists.txt"))
    cmake_files += sorted(root.glob("*/*/CMakeLists.txt"))

    properties_for = {tu: [] for tu in ARCH_TUS}
    for cmake in cmake_files:
        text = read(cmake)
        for lineno, command, statement in cmake_statements(text):
            for flag in FAST_MATH_FLAGS:
                if flag in statement:
                    violations.append(Violation(
                        "fp-contract", cmake, lineno,
                        f"{flag} would break the scalar/vector bit-parity "
                        "contract; fast-math is banned repo-wide"))
            if command != "set_source_files_properties":
                continue
            for tu in ARCH_TUS:
                if Path(tu).name in statement:
                    properties_for[tu].append((cmake, lineno, statement))

    for tu in ARCH_TUS:
        if not (root / tu).is_file():
            continue
        blocks = properties_for[tu]
        if not blocks:
            violations.append(Violation(
                "fp-contract", root / "CMakeLists.txt", 1,
                f"{tu} has no set_source_files_properties block; the arch "
                "TU must be compiled with -ffp-contract=off"))
            continue
        for cmake, lineno, statement in blocks:
            if "-ffp-contract=off" not in statement:
                violations.append(Violation(
                    "fp-contract", cmake, lineno,
                    f"{tu} compile options lack -ffp-contract=off; with "
                    "-mfma in scope the compiler would fuse the kernels' "
                    "plain mul+add into FMAs and break bit parity with the "
                    "scalar reference"))
    return violations


# --------------------------------------------------------------------------
# rule: raw-primitives

LOCK_TOKEN = re.compile(
    r"std::(?:recursive_|shared_|timed_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock)\b")
THREAD_TOKEN = re.compile(r"std::thread\b(?!::)")
MUTEX_INCLUDE = re.compile(r"#\s*include\s*<(?:mutex|shared_mutex)>")

# The annotated vocabulary itself wraps the std types.
LOCK_ALLOWLIST = {"src/common/thread_annotations.hpp"}
# Documented thread owners: the pool's workers, the stream dispatcher, the
# cluster drive threads, and the CPU engine's OpenMP-fallback workers (all
# mapped in docs/CONCURRENCY.md). Everything else must submit to ThreadPool.
THREAD_ALLOWLIST = {
    "src/runtime/thread_pool.hpp",
    "src/runtime/thread_pool.cpp",
    "src/runtime/stream_runtime.hpp",
    "src/runtime/stream_runtime.cpp",
    "src/engines/cpu_engine.cpp",
    "src/cluster/coordinator.cpp",
}


def rule_raw_primitives(root: Path):
    violations = []
    files = sorted((root / "src").rglob("*.[hc]pp")) if (root / "src").is_dir() else []
    if (root / "tools").is_dir():
        files += sorted((root / "tools").rglob("*.[hc]pp"))
    seen = set()
    for path in files:
        if path in seen:
            continue
        seen.add(path)
        rel = path.relative_to(root).as_posix()
        # The linter's own seeded-violation fixtures are deliberate
        # negatives, exercised by --self-test, not part of the tree.
        if rel.startswith("tools/cdslint/fixtures/"):
            continue
        stripped = strip_cpp(read(path))
        for lineno, line in iter_lines(stripped):
            if rel not in LOCK_ALLOWLIST:
                m = LOCK_TOKEN.search(line)
                if m:
                    violations.append(Violation(
                        "raw-primitives", path, lineno,
                        f"raw {m.group(0)}; use the annotated cdsflow::Mutex"
                        " / MutexLock / UniqueLock wrappers from "
                        "common/thread_annotations.hpp so Clang's "
                        "thread-safety analysis can see the lock"))
                if MUTEX_INCLUDE.search(line):
                    violations.append(Violation(
                        "raw-primitives", path, lineno,
                        "direct <mutex> include; include "
                        "common/thread_annotations.hpp instead"))
            if rel not in THREAD_ALLOWLIST and rel not in LOCK_ALLOWLIST:
                if THREAD_TOKEN.search(line):
                    violations.append(Violation(
                        "raw-primitives", path, lineno,
                        "raw std::thread outside the documented thread "
                        "owners (ThreadPool, stream dispatcher, cluster "
                        "drive threads, CPU engine fallback); submit work "
                        "to a ThreadPool instead"))
    return violations


# --------------------------------------------------------------------------
# rule: codec-bounds

LENGTH_READ = re.compile(
    r"std::uint(?:16|32|64)_t\s+(\w*(?:count|len|lanes)\w*)\s*=\s*get_u\d+\s*\(")
CASE_SPLIT = re.compile(r"case\s+FrameType::(\w+)\s*:")
RAW_READ = re.compile(r"\bget_(?:u16|u32|u64|i32|f64)\s*\(")
REQUIRE_GATE = re.compile(r"\brequire_payload_\w+\s*\(")
COUNT_GATE_WINDOW = 6  # lines within which the require_count gate must appear


def rule_codec_bounds(root: Path):
    codec = root / "src" / "net" / "codec.cpp"
    if not codec.is_file():
        return []
    violations = []
    stripped = strip_cpp(read(codec))
    lines = stripped.split("\n")

    # Scope: FrameReader::feed's decode switch (everything after the first
    # `switch (frame.type)`), where payload bytes are interpreted.
    switch_at = next((i for i, l in enumerate(lines)
                      if "switch (frame.type)" in l), None)
    if switch_at is None:
        violations.append(Violation(
            "codec-bounds", codec, 1,
            "decode switch `switch (frame.type)` not found; the "
            "codec-bounds rule no longer matches the decoder structure"))
        return violations

    # Per-case: a require_payload_* gate must come before the first raw
    # byte read of the case.
    case_marks = [(i, m.group(1)) for i, l in enumerate(lines)
                  for m in [CASE_SPLIT.search(l)] if m and i >= switch_at]
    for idx, (start, name) in enumerate(case_marks):
        end = case_marks[idx + 1][0] if idx + 1 < len(case_marks) else len(lines)
        first_read = None
        first_gate = None
        for i in range(start, end):
            if first_read is None and RAW_READ.search(lines[i]):
                first_read = i
            if first_gate is None and REQUIRE_GATE.search(lines[i]):
                first_gate = i
        if first_read is not None and (first_gate is None
                                       or first_gate > first_read):
            violations.append(Violation(
                "codec-bounds", codec, first_read + 1,
                f"case {name}: raw payload read before any "
                "require_payload_* bounds gate"))

    # Per length-field read: the variable must be vetted by
    # require_count_between within the next few lines.
    for i in range(switch_at, len(lines)):
        m = LENGTH_READ.search(lines[i])
        if not m:
            continue
        var = m.group(1)
        window = "\n".join(lines[i:i + 1 + COUNT_GATE_WINDOW])
        if not re.search(r"require_count_between\s*\(\s*" + re.escape(var),
                         window):
            violations.append(Violation(
                "codec-bounds", codec, i + 1,
                f"length field '{var}' read without a require_count_between"
                f" gate within {COUNT_GATE_WINDOW} lines"))
    return violations


# --------------------------------------------------------------------------
# rule: float-in-cds

FLOAT_TYPE = re.compile(r"\bfloat\b")
FLOAT_LITERAL = re.compile(r"\b\d+(?:\.\d*)?(?:[eE][+-]?\d+)?f\b")
FLOAT_ALLOWLIST = {"src/cds/precision.hpp", "src/cds/precision.cpp"}


def rule_float_in_cds(root: Path):
    violations = []
    cds = root / "src" / "cds"
    if not cds.is_dir():
        return []
    for path in sorted(cds.rglob("*.[hc]pp")):
        rel = path.relative_to(root).as_posix()
        if rel in FLOAT_ALLOWLIST:
            continue
        stripped = strip_cpp(read(path))
        for lineno, line in iter_lines(stripped):
            m = FLOAT_TYPE.search(line) or FLOAT_LITERAL.search(line)
            if m:
                violations.append(Violation(
                    "float-in-cds", path, lineno,
                    f"'{m.group(0)}' in a pricing path: src/cds is "
                    "double-precision by contract; reduced precision lives "
                    "only in the deliberate src/cds/precision.* emulation"))
    return violations


# --------------------------------------------------------------------------
# rule: bench-json-keys

METRIC_FILE = re.compile(r'^\s*"(BENCH_[^"]+\.json)"\s*:')
METRIC_KEY = re.compile(r'^\s*\("([^"]+)"\s*,')


def parse_metrics(bench_diff: Path):
    metrics = {}
    current = None
    for line in read(bench_diff).split("\n"):
        m = METRIC_FILE.search(line)
        if m:
            current = m.group(1)
            metrics[current] = []
            continue
        m = METRIC_KEY.search(line)
        if m and current is not None:
            metrics[current].append(m.group(1))
    return metrics


def rule_bench_json_keys(root: Path):
    bench_diff = root / "scripts" / "bench_diff.py"
    bench_dir = root / "bench"
    if not bench_diff.is_file() or not bench_dir.is_dir():
        return []
    violations = []
    metrics = parse_metrics(bench_diff)
    if not metrics:
        violations.append(Violation(
            "bench-json-keys", bench_diff, 1,
            "no METRICS entries parsed; the bench-json-keys rule no longer "
            "matches bench_diff.py's table format"))
        return violations
    bench_text = "\n".join(read(p) for p in sorted(bench_dir.glob("*.cpp")))
    ci = root / ".github" / "workflows" / "ci.yml"
    ci_text = read(ci) if ci.is_file() else ""
    for fname, keypaths in metrics.items():
        if ci_text and fname not in ci_text:
            violations.append(Violation(
                "bench-json-keys", bench_diff, 1,
                f"{fname} is tracked by bench_diff.py but never produced or "
                "uploaded by the CI bench job"))
        for keypath in keypaths:
            for component in keypath.split("."):
                component = component.removesuffix("[*]")
                # The bench writers emit JSON by hand, so the key appears
                # as a (possibly escape-quoted) string literal.
                if not re.search(r'\\?"' + re.escape(component) + r'\\?"',
                                 bench_text):
                    violations.append(Violation(
                        "bench-json-keys", bench_diff, 1,
                        f"tracked key '{keypath}' ({fname}): no bench "
                        f"source writes \"{component}\" -- the trajectory "
                        "diff would silently report n/a"))
    return violations


# --------------------------------------------------------------------------
# driver

RULES = {
    "fp-contract": rule_fp_contract,
    "raw-primitives": rule_raw_primitives,
    "codec-bounds": rule_codec_bounds,
    "float-in-cds": rule_float_in_cds,
    "bench-json-keys": rule_bench_json_keys,
}


def lint(root: Path):
    violations = []
    for rule in RULES.values():
        violations.extend(rule(root))
    return violations


def self_test() -> int:
    fixtures = Path(__file__).resolve().parent / "fixtures"
    failures = 0
    for rule_name in RULES:
        tree = fixtures / rule_name.replace("-", "_")
        if not tree.is_dir():
            print(f"self-test: FIXTURE MISSING for rule {rule_name}: {tree}")
            failures += 1
            continue
        violations = lint(tree)
        fired = {v.rule for v in violations}
        if rule_name not in fired:
            print(f"self-test: rule {rule_name} did NOT fire on its seeded "
                  f"violation fixture {tree}")
            failures += 1
        else:
            hits = [v for v in violations if v.rule == rule_name]
            print(f"self-test: {rule_name}: OK "
                  f"({len(hits)} violation(s) detected)")
        unexpected = fired - {rule_name}
        if unexpected:
            print(f"self-test: fixture {tree} also tripped {unexpected}; "
                  "fixtures must be minimal (one rule each)")
            failures += 1
    if failures:
        print(f"self-test: {failures} failure(s)")
        return 1
    print("self-test: all rules fire on their fixtures")
    return 0


def main(argv) -> int:
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 2:
        print(__doc__)
        return 2
    root = Path(argv[1]).resolve()
    if not root.is_dir():
        print(f"cdslint: not a directory: {root}")
        return 2
    violations = lint(root)
    for v in violations:
        print(v)
    if violations:
        print(f"cdslint: {len(violations)} violation(s)")
        return 1
    print("cdslint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
