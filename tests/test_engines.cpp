/// \file test_engines.cpp
/// Integration tests for the engine implementations: numerical agreement
/// with the golden model, ordering, timing structure (who includes restart
/// overheads, who streams), the registry, and the multi-engine partitioner.

#include <gtest/gtest.h>

#include <set>

#include "cds/pricer.hpp"
#include "common/stats.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/dataflow_engine.hpp"
#include "engines/interoption_engine.hpp"
#include "engines/multi_engine.hpp"
#include "engines/registry.hpp"
#include "engines/vectorised_engine.hpp"
#include "engines/xilinx_baseline.hpp"
#include "workload/scenario.hpp"

namespace cdsflow::engine {
namespace {

class EnginesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = workload::smoke_scenario(24, 321);
    golden_ = std::make_unique<cds::ReferencePricer>(scenario_.interest,
                                                     scenario_.hazard);
    expected_ = golden_->price(scenario_.options);
  }

  void expect_matches_golden(const PricingRun& run, double tol = 1e-9) {
    ASSERT_EQ(run.results.size(), expected_.size());
    for (std::size_t i = 0; i < expected_.size(); ++i) {
      EXPECT_EQ(run.results[i].id, expected_[i].id);
      EXPECT_LT(relative_difference(run.results[i].spread_bps,
                                    expected_[i].spread_bps),
                tol)
          << "option " << i;
    }
  }

  workload::Scenario scenario_;
  std::unique_ptr<cds::ReferencePricer> golden_;
  std::vector<cds::SpreadResult> expected_;
};

// --- CPU ----------------------------------------------------------------------

TEST_F(EnginesFixture, CpuSerialMatchesGoldenExactly) {
  CpuEngine engine(scenario_.interest, scenario_.hazard, {.threads = 1});
  const auto run = engine.price(scenario_.options);
  expect_matches_golden(run, 1e-15);  // same code path: bitwise
  EXPECT_EQ(run.kernel_cycles, 0u);
  EXPECT_EQ(run.transfer_seconds, 0.0);
  EXPECT_GT(run.options_per_second, 0.0);
}

TEST_F(EnginesFixture, CpuParallelMatchesSerial) {
  CpuEngine serial(scenario_.interest, scenario_.hazard, {.threads = 1});
  CpuEngine parallel(scenario_.interest, scenario_.hazard, {.threads = 4});
  const auto a = serial.price(scenario_.options);
  const auto b = parallel.price(scenario_.options);
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.results[i].spread_bps, b.results[i].spread_bps);
  }
}

TEST(CpuEngine, ZeroThreadsSelectsHardwareConcurrency) {
  const auto s = workload::smoke_scenario(4);
  CpuEngine engine(s.interest, s.hazard, {.threads = 0});
  EXPECT_GE(engine.threads(), 1u);
}

TEST(Registry, CpuEngineNameRoundTripsThroughParse) {
  for (const bool batch : {false, true}) {
    for (const bool risk : {false, true}) {
      for (const unsigned threads : {0u, 1u, 2u, 24u}) {
        const std::string name = cpu_engine_name(batch, risk, threads);
        CpuEngineConfig config;
        ASSERT_TRUE(parse_cpu_engine_name(name, config)) << name;
        EXPECT_EQ(config.batch_kernel, batch) << name;
        EXPECT_EQ(config.risk_mode, risk) << name;
        EXPECT_EQ(config.threads, threads) << name;
      }
    }
  }
  EXPECT_EQ(cpu_engine_name(false, false, 1), "cpu");
  EXPECT_EQ(cpu_engine_name(true, true, 8), "cpu-batch-risk-mt8");
}

TEST(Registry, SweepEngineNameRoundTripsThroughParse) {
  for (const unsigned threads : {0u, 1u, 2u, 24u}) {
    const std::string name =
        cpu_engine_name(/*batch_kernel=*/false, /*vector_kernel=*/false,
                        /*sweep_kernel=*/true, /*risk_mode=*/false, threads);
    CpuEngineConfig config;
    ASSERT_TRUE(parse_cpu_engine_name(name, config)) << name;
    EXPECT_TRUE(config.sweep_kernel) << name;
    EXPECT_FALSE(config.batch_kernel) << name;
    EXPECT_FALSE(config.vector_kernel) << name;
    EXPECT_EQ(config.threads, threads) << name;
  }
  EXPECT_EQ(cpu_engine_name(false, false, true, false, 1), "cpu-sweep");
  EXPECT_EQ(cpu_engine_name(false, false, true, false, 0), "cpu-sweep-mt");
  EXPECT_EQ(cpu_engine_name(false, false, true, false, 8), "cpu-sweep-mt8");
}

TEST(Registry, SweepEngineConstructsAndPricesLikeVec) {
  // For a plain price() call the sweep engine IS the vector kernel: one
  // scenario on the base curves is exactly the batch tabulation. The
  // registry must construct it, report the sweep name, and reproduce
  // cpu-vec bit for bit.
  const auto s = workload::smoke_scenario(24);
  const auto sweep =
      engine::make_engine("cpu-sweep", s.interest, s.hazard);
  EXPECT_EQ(sweep->name(), "cpu-sweep");
  const auto vec = engine::make_engine("cpu-vec", s.interest, s.hazard);
  const auto a = sweep->price(s.options);
  const auto b = vec->price(s.options);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].spread_bps, b.results[i].spread_bps) << i;
  }
}

// --- Xilinx baseline -------------------------------------------------------------

TEST_F(EnginesFixture, BaselineMatchesGoldenExactly) {
  XilinxBaselineEngine engine(scenario_.interest, scenario_.hazard);
  const auto run = engine.price(scenario_.options);
  expect_matches_golden(run, 1e-15);  // in-order summation: bitwise
  EXPECT_EQ(run.invocations, scenario_.options.size());
  EXPECT_GT(run.kernel_cycles, 0u);
}

TEST_F(EnginesFixture, BaselineStageSpansDominatedByHazardAndInterp) {
  XilinxBaselineEngine engine(scenario_.interest, scenario_.hazard);
  const auto spans = engine.option_stage_spans(scenario_.options.front());
  sim::Cycle total = 0, heavy = 0;
  for (const auto& s : spans) {
    total += s.cycles;
    if (std::string(s.stage) == "default_probability" ||
        std::string(s.stage) == "payment_pv" ||
        std::string(s.stage) == "payoff_pv") {
      heavy += s.cycles;
    }
  }
  EXPECT_GT(static_cast<double>(heavy) / static_cast<double>(total), 0.8);
}

// --- dataflow engines ----------------------------------------------------------------

TEST_F(EnginesFixture, DataflowEngineMatchesGolden) {
  DataflowEngine engine(scenario_.interest, scenario_.hazard);
  const auto run = engine.price(scenario_.options);
  expect_matches_golden(run);
  EXPECT_EQ(run.invocations, scenario_.options.size());
}

TEST_F(EnginesFixture, InterOptionEngineMatchesGolden) {
  InterOptionEngine engine(scenario_.interest, scenario_.hazard);
  const auto run = engine.price(scenario_.options);
  expect_matches_golden(run);
  EXPECT_EQ(run.invocations, 1u);  // single free-running region
}

TEST_F(EnginesFixture, VectorisedEngineMatchesGolden) {
  VectorisedEngine engine(scenario_.interest, scenario_.hazard);
  const auto run = engine.price(scenario_.options);
  expect_matches_golden(run);
}

TEST_F(EnginesFixture, InterOptionFasterThanRestartPerOption) {
  DataflowEngine restart(scenario_.interest, scenario_.hazard);
  InterOptionEngine streaming(scenario_.interest, scenario_.hazard);
  const auto a = restart.price(scenario_.options);
  const auto b = streaming.price(scenario_.options);
  EXPECT_LT(b.kernel_cycles, a.kernel_cycles);
}

TEST_F(EnginesFixture, TransferCanBeExcluded) {
  FpgaEngineConfig cfg;
  cfg.include_transfer = false;
  InterOptionEngine engine(scenario_.interest, scenario_.hazard, cfg);
  const auto run = engine.price(scenario_.options);
  EXPECT_EQ(run.transfer_seconds, 0.0);
  EXPECT_DOUBLE_EQ(run.total_seconds, run.kernel_seconds);
}

TEST_F(EnginesFixture, LastRunStatsExposeBottleneck) {
  // The interp-dominates-hazard relation needs the paper's 1024-point
  // curves: the interp scan always walks the whole curve while the hazard
  // scan stops at t (smoke curves are too short to separate them).
  const auto scenario = workload::paper_scenario(16);
  InterOptionEngine engine(scenario.interest, scenario.hazard);
  engine.price(scenario.options);
  const auto& stats = engine.last_run();
  EXPECT_GT(stats.total_time_points, 0u);
  EXPECT_GT(stats.interp_busy, stats.hazard_busy);
}

TEST_F(EnginesFixture, VectorisedLaneStatsAreBalanced) {
  VectorisedEngine engine(scenario_.interest, scenario_.hazard);
  engine.price(scenario_.options);
  const auto& stats = engine.last_run();
  ASSERT_EQ(stats.interp_lane_busy.size(), 6u);
  RunningStats busy;
  for (const auto b : stats.interp_lane_busy) {
    busy.add(static_cast<double>(b));
  }
  // Round-robin balance: no lane deviates more than 25% from the mean.
  EXPECT_LT((busy.max() - busy.min()) / busy.mean(), 0.25);
}

// --- multi engine ------------------------------------------------------------------

TEST_F(EnginesFixture, MultiEngineMatchesGoldenAndCoversAllOptions) {
  MultiEngineConfig cfg;
  cfg.n_engines = 3;
  MultiEngine engine(scenario_.interest, scenario_.hazard, cfg);
  const auto run = engine.price(scenario_.options);
  expect_matches_golden(run);
  std::set<std::int32_t> ids;
  for (const auto& r : run.results) ids.insert(r.id);
  EXPECT_EQ(ids.size(), scenario_.options.size());  // exactly once each
}

TEST_F(EnginesFixture, MultiEngineScalesKernelTime) {
  MultiEngineConfig one, four;
  one.n_engines = 1;
  four.n_engines = 4;
  MultiEngine e1(scenario_.interest, scenario_.hazard, one);
  MultiEngine e4(scenario_.interest, scenario_.hazard, four);
  const auto r1 = e1.price(scenario_.options);
  const auto r4 = e4.price(scenario_.options);
  const double speedup = static_cast<double>(r1.kernel_cycles) /
                         static_cast<double>(r4.kernel_cycles);
  // 4 engines on a 24-option book: well above 2x even with chunk imbalance
  // and per-chunk pipeline fills (larger books approach 4x; see the
  // Table II integration test).
  EXPECT_GT(speedup, 2.2);
}

TEST_F(EnginesFixture, MultiEngineEnforcesDeviceFit) {
  MultiEngineConfig cfg;
  cfg.n_engines = 6;  // does not fit on the U280
  cfg.device = fpga::alveo_u280();
  EXPECT_THROW(
      MultiEngine(scenario_.interest, scenario_.hazard, cfg), Error);
  cfg.n_engines = 5;
  EXPECT_NO_THROW(MultiEngine(scenario_.interest, scenario_.hazard, cfg));
}

TEST_F(EnginesFixture, MultiEngineRejectsMoreEnginesThanOptions) {
  MultiEngineConfig cfg;
  cfg.n_engines = 30;
  MultiEngine engine(scenario_.interest, scenario_.hazard, cfg);
  std::vector<cds::CdsOption> tiny(scenario_.options.begin(),
                                   scenario_.options.begin() + 3);
  EXPECT_THROW(engine.price(tiny), Error);
}

// --- registry -------------------------------------------------------------------------

TEST_F(EnginesFixture, RegistryBuildsEveryFixedName) {
  for (const auto& name : engine_names()) {
    auto engine = make_engine(name, scenario_.interest, scenario_.hazard);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_FALSE(engine->description().empty());
  }
}

TEST_F(EnginesFixture, RegistryParsesParameterisedNames) {
  auto multi = make_engine("multi-3", scenario_.interest, scenario_.hazard);
  EXPECT_EQ(multi->name(), "multi-3");
  auto mt = make_engine("cpu-mt2", scenario_.interest, scenario_.hazard);
  const auto run = mt->price(scenario_.options);
  EXPECT_EQ(run.results.size(), scenario_.options.size());
}

TEST_F(EnginesFixture, RegistryParsesClusterNames) {
  auto cluster =
      make_engine("cluster-2x3", scenario_.interest, scenario_.hazard);
  EXPECT_EQ(cluster->name(), "cluster-2x3");
  const auto run = cluster->price(scenario_.options);
  expect_matches_golden(run);
}

TEST_F(EnginesFixture, RegistryRejectsUnknownNames) {
  EXPECT_THROW(make_engine("gpu", scenario_.interest, scenario_.hazard),
               Error);
  EXPECT_THROW(make_engine("multi-0", scenario_.interest, scenario_.hazard),
               Error);
  EXPECT_THROW(make_engine("", scenario_.interest, scenario_.hazard), Error);
}

// --- misc -----------------------------------------------------------------------------

TEST_F(EnginesFixture, EmptyPortfolioRejectedEverywhere) {
  const std::vector<cds::CdsOption> empty;
  CpuEngine cpu(scenario_.interest, scenario_.hazard);
  EXPECT_THROW(cpu.price(empty), Error);
  InterOptionEngine stream(scenario_.interest, scenario_.hazard);
  EXPECT_THROW(stream.price(empty), Error);
  XilinxBaselineEngine baseline(scenario_.interest, scenario_.hazard);
  EXPECT_THROW(baseline.price(empty), Error);
}

TEST_F(EnginesFixture, WorkerThreadExceptionSurfacesAsError) {
  // Regression for CpuEngine::price()'s first-error slot: an unpriceable
  // option throws inside a worker thread; the engine must capture the
  // first exception under the slot's lock and rethrow after the join as a
  // catchable Error. The worker body is noexcept, so without the capture
  // the exception would escape a thread and terminate the process.
  CpuEngineConfig cfg;
  cfg.threads = 4;
  CpuEngine engine(scenario_.interest, scenario_.hazard, cfg);
  auto book = scenario_.options;
  ASSERT_GE(book.size(), 8u);  // several chunks; the bad row is not in chunk 0
  book.back().maturity_years = -1.0;  // no premium schedule -> zero annuity
  EXPECT_THROW(engine.price(book), Error);
  // A failed run must not wedge the engine: the slot is per-call state.
  const auto run = engine.price(scenario_.options);
  EXPECT_EQ(run.results.size(), scenario_.options.size());
}

TEST(BatchTraffic, ScalesWithInputs) {
  const auto t = batch_traffic(1024, 512);
  EXPECT_EQ(t.curve_bytes, 1024u * 2 * 2 * 8);
  EXPECT_EQ(t.option_bytes, 512u * 32);
  EXPECT_EQ(t.result_bytes, 512u * 16);
  EXPECT_EQ(t.total(), t.curve_bytes + t.option_bytes + t.result_bytes);
}

TEST_F(EnginesFixture, SingleOptionPortfolioWorks) {
  const std::vector<cds::CdsOption> one(scenario_.options.begin(),
                                        scenario_.options.begin() + 1);
  for (const auto& name :
       {"dataflow", "dataflow-interoption", "vectorised"}) {
    auto engine = make_engine(name, scenario_.interest, scenario_.hazard);
    const auto run = engine->price(one);
    ASSERT_EQ(run.results.size(), 1u) << name;
    EXPECT_LT(relative_difference(run.results[0].spread_bps,
                                  expected_[0].spread_bps),
              1e-9)
        << name;
  }
}

}  // namespace
}  // namespace cdsflow::engine
