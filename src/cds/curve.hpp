/// \file curve.hpp
/// Term structures: the interest-rate and hazard-rate inputs.
///
/// Both model constants are "a list of percentages ... in a given time
/// frame" (paper Sec. II-A): pairs of (year fraction, rate). The curve is
/// stored structure-of-arrays (times[], values[]) -- the layout both the
/// FPGA URAM replicas and the CPU engine scan -- with strictly increasing
/// times.
///
/// Rate lookup is linear interpolation between bracketing knots, clamped at
/// the ends. The FPGA kernels locate the bracket with a fixed-bound scan
/// over all points (that scan is precisely the interpolation cost the paper
/// vectorises); `find_bracket_scan` exposes the same loop for the engine
/// kernels while `interpolate` uses it so every code path computes identical
/// values.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cdsflow::cds {

class TermStructure {
 public:
  TermStructure() = default;

  /// Builds a curve from matching time/value arrays. Times must be strictly
  /// increasing and non-negative; at least one point is required.
  TermStructure(std::vector<double> times, std::vector<double> values);

  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }
  double time(std::size_t i) const { return times_.at(i); }
  double value(std::size_t i) const { return values_.at(i); }
  double max_time() const { return times_.back(); }

  /// Index of the last knot with time <= t via the same linear scan the HLS
  /// kernel performs; returns size() when t precedes the first knot's use
  /// (i.e. npos semantics are avoided -- see interpolate for clamping).
  /// Exposed separately so the engine stage kernels share it.
  std::size_t find_bracket_scan(double t) const;

  /// Number of knots with time <= t (binary search; used for scan-cost
  /// modelling, not for values).
  std::size_t count_at_or_before(double t) const;

  /// Linearly interpolated value at `t`, clamped to the end values outside
  /// the knot range.
  double interpolate(double t) const;

  /// Same value as interpolate(), bracket located by binary search instead
  /// of the HLS-mirroring fixed-bound scan: O(log n) per query. The bracket
  /// index and the interpolation arithmetic are identical, so the result is
  /// bit-for-bit equal to interpolate() -- this is the host fast path the
  /// batch pricer uses, while the simulated engines keep paying the scan the
  /// hardware pays.
  double interpolate_fast(double t) const;

  /// Throws cdsflow::Error if the invariants fail (used after deserialising
  /// external data).
  void validate() const;

 private:
  /// Linear interpolation on the bracket [lo, lo+1] -- the one arithmetic
  /// both interpolate() and interpolate_fast() share, so their bit-for-bit
  /// equality is structural.
  double lerp_on_bracket(std::size_t lo, double t) const;

  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace cdsflow::cds
