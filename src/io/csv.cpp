#include "io/csv.hpp"

#include <charconv>
#include <fstream>
#include <iterator>
#include <sstream>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace cdsflow::io {

namespace {

/// Splits a CSV line on commas (the formats here never quote fields).
std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

double parse_double(const std::string& s, const std::string& path,
                    std::size_t line_no) {
  // std::from_chars for doubles is incomplete on some libstdc++ versions;
  // strtod with full-consumption check is portable and strict enough.
  const char* begin = s.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  CDSFLOW_EXPECT(end != begin && *end == '\0',
                 path + ":" + std::to_string(line_no) +
                     ": cannot parse number '" + s + "'");
  return v;
}

std::int64_t parse_int(const std::string& s, const std::string& path,
                       std::size_t line_no) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  CDSFLOW_EXPECT(ec == std::errc{} && ptr == s.data() + s.size(),
                 path + ":" + std::to_string(line_no) +
                     ": cannot parse integer '" + s + "'");
  return v;
}

/// Reads all data rows of `path`, validating the exact header.
std::vector<std::vector<std::string>> read_rows(const std::string& path,
                                                const std::string& header) {
  std::ifstream in(path);
  CDSFLOW_EXPECT(in.good(), "cannot open '" + path + "' for reading");
  std::string line;
  CDSFLOW_EXPECT(static_cast<bool>(std::getline(in, line)),
                 path + ": empty file");
  CDSFLOW_EXPECT(line == header, path + ": expected header '" + header +
                                     "', found '" + line + "'");
  const std::size_t n_fields = split_fields(header).size();
  std::vector<std::vector<std::string>> rows;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = split_fields(line);
    CDSFLOW_EXPECT(fields.size() == n_fields,
                   path + ":" + std::to_string(line_no) + ": expected " +
                       std::to_string(n_fields) + " fields, found " +
                       std::to_string(fields.size()));
    rows.push_back(std::move(fields));
  }
  return rows;
}

std::ofstream open_for_write(const std::string& path) {
  std::ofstream out(path);
  CDSFLOW_EXPECT(out.good(), "cannot open '" + path + "' for writing");
  out.precision(17);  // round-trip doubles exactly
  return out;
}

}  // namespace

// --- curves -------------------------------------------------------------------

void write_curve_csv(const std::string& path,
                     const cds::TermStructure& curve) {
  curve.validate();
  auto out = open_for_write(path);
  out << "time_years,rate\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    out << curve.time(i) << ',' << curve.value(i) << '\n';
  }
}

cds::TermStructure read_curve_csv(const std::string& path) {
  const auto rows = read_rows(path, "time_years,rate");
  CDSFLOW_EXPECT(!rows.empty(), path + ": curve has no points");
  std::vector<double> times, values;
  times.reserve(rows.size());
  values.reserve(rows.size());
  std::size_t line_no = 1;
  for (const auto& row : rows) {
    ++line_no;
    times.push_back(parse_double(row[0], path, line_no));
    values.push_back(parse_double(row[1], path, line_no));
  }
  return cds::TermStructure(std::move(times), std::move(values));
}

// --- portfolios ------------------------------------------------------------------

void write_portfolio_csv(const std::string& path,
                         const std::vector<cds::CdsOption>& options) {
  auto out = open_for_write(path);
  out << "id,maturity_years,payment_frequency,recovery_rate\n";
  for (const auto& o : options) {
    o.validate();
    out << o.id << ',' << o.maturity_years << ',' << o.payment_frequency
        << ',' << o.recovery_rate << '\n';
  }
}

std::vector<cds::CdsOption> read_portfolio_csv(const std::string& path) {
  const auto rows =
      read_rows(path, "id,maturity_years,payment_frequency,recovery_rate");
  std::vector<cds::CdsOption> options;
  options.reserve(rows.size());
  std::size_t line_no = 1;
  for (const auto& row : rows) {
    ++line_no;
    cds::CdsOption o;
    o.id = static_cast<std::int32_t>(parse_int(row[0], path, line_no));
    o.maturity_years = parse_double(row[1], path, line_no);
    o.payment_frequency = parse_double(row[2], path, line_no);
    o.recovery_rate = parse_double(row[3], path, line_no);
    o.validate();
    options.push_back(o);
  }
  return options;
}

// --- results ---------------------------------------------------------------------

void write_results_csv(const std::string& path,
                       const std::vector<cds::SpreadResult>& results) {
  auto out = open_for_write(path);
  out << "id,spread_bps\n";
  for (const auto& r : results) {
    out << r.id << ',' << r.spread_bps << '\n';
  }
}

void write_sensitivities_csv(const std::string& path,
                             const std::vector<cds::SpreadResult>& results,
                             const std::vector<cds::Sensitivities>& greeks,
                             const std::vector<double>& ladder,
                             std::size_t ladder_buckets) {
  CDSFLOW_EXPECT(results.size() == greeks.size(),
                 "risk CSV needs one sensitivity record per result");
  CDSFLOW_EXPECT(ladder.size() == results.size() * ladder_buckets,
                 "risk CSV needs options * buckets ladder values");
  auto out = open_for_write(path);
  out << "id,spread_bps,cs01,ir01,rec01,jtd";
  for (std::size_t b = 0; b < ladder_buckets; ++b) {
    out << ",cs01_bucket_" << b;
  }
  out << '\n';
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& s = greeks[i];
    out << results[i].id << ',' << s.spread_bps << ',' << s.cs01 << ','
        << s.ir01 << ',' << s.rec01 << ',' << s.jtd;
    for (std::size_t b = 0; b < ladder_buckets; ++b) {
      out << ',' << ladder[i * ladder_buckets + b];
    }
    out << '\n';
  }
}

void write_stream_batches_csv(const std::string& path,
                              const std::vector<StreamBatchRow>& rows) {
  auto out = open_for_write(path);
  out << "batch,events,lane,pricing_seconds,max_latency_us,deadline_misses\n";
  for (const auto& r : rows) {
    out << r.batch << ',' << r.events << ',' << r.lane << ','
        << r.pricing_seconds << ',' << r.max_latency_us << ','
        << r.deadline_misses << '\n';
  }
}

void write_sweep_aggregates_csv(const std::string& path,
                                const std::vector<SweepAggregateRow>& rows) {
  auto out = open_for_write(path);
  out << "scenario,min_spread_bps,max_spread_bps\n";
  for (const auto& r : rows) {
    out << r.scenario << ',' << r.min_spread_bps << ',' << r.max_spread_bps
        << '\n';
  }
}

std::vector<LatencyCdfRow> latency_cdf_rows(std::uint32_t tenant,
                                            std::vector<double> latency_us) {
  static constexpr double kPercentiles[] = {1.0,  5.0,  10.0, 25.0,
                                            50.0, 75.0, 90.0, 95.0,
                                            99.0, 99.9, 100.0};
  std::vector<LatencyCdfRow> rows;
  if (latency_us.empty()) return rows;
  rows.reserve(std::size(kPercentiles));
  for (const double p : kPercentiles) {
    rows.push_back({tenant, p, percentile(latency_us, p)});
  }
  return rows;
}

void write_latency_cdf_csv(const std::string& path,
                           const std::vector<LatencyCdfRow>& rows) {
  auto out = open_for_write(path);
  out << "tenant,percentile,latency_us\n";
  for (const auto& r : rows) {
    out << r.tenant << ',' << r.percentile << ',' << r.latency_us << '\n';
  }
}

std::vector<cds::SpreadResult> read_results_csv(const std::string& path) {
  const auto rows = read_rows(path, "id,spread_bps");
  std::vector<cds::SpreadResult> results;
  results.reserve(rows.size());
  std::size_t line_no = 1;
  for (const auto& row : rows) {
    ++line_no;
    results.push_back(
        {static_cast<std::int32_t>(parse_int(row[0], path, line_no)),
         parse_double(row[1], path, line_no)});
  }
  return results;
}

// --- quotes ----------------------------------------------------------------------

void write_quotes_csv(const std::string& path,
                      const std::vector<cds::SpreadQuote>& quotes) {
  auto out = open_for_write(path);
  out << "tenor_years,spread_bps\n";
  for (const auto& q : quotes) {
    out << q.tenor_years << ',' << q.spread_bps << '\n';
  }
}

std::vector<cds::SpreadQuote> read_quotes_csv(const std::string& path) {
  const auto rows = read_rows(path, "tenor_years,spread_bps");
  std::vector<cds::SpreadQuote> quotes;
  quotes.reserve(rows.size());
  std::size_t line_no = 1;
  for (const auto& row : rows) {
    ++line_no;
    quotes.push_back({parse_double(row[0], path, line_no),
                      parse_double(row[1], path, line_no)});
  }
  return quotes;
}

}  // namespace cdsflow::io
