/// \file vector_kernel_impl.hpp
/// Single shared implementation of the per-architecture vector kernels.
/// Included ONLY by the arch translation units, which define
///
///   CDSFLOW_SIMD_NS      detail_avx2 | detail_avx512
///   CDSFLOW_SIMD_WIDTH   4 | 8
///
/// and are compiled with the matching -m flags (CMake
/// set_source_files_properties). The width-4 block wraps AVX2+FMA, the
/// width-8 block AVX-512 F/DQ/VL; everything below the ops layer is
/// width-generic.
///
/// Numerics (the basis of the precision contract in docs/VECTOR_LANES.md):
///
///   * lower_bound / upper_bound are branchless binary searches producing
///     exactly std::lower_bound / std::upper_bound's index per lane -- the
///     bracket choice can never differ from the scalar path.
///   * integrated_hazard / interp_fast evaluate the *reference expressions*
///     (hazard.cpp / curve.cpp) with plain mul/add/div -- no fused
///     contractions -- so given the same bracket they produce values within
///     an ulp of the scalar build (bit-identical when the scalar build does
///     not contract either).
///   * exp_pd is the only replaced transcendental: Cody-Waite two-term ln2
///     argument reduction (with FMA) + a degree-13 Taylor/Horner polynomial
///     + exact 2^n scaling via exponent bits. |r| <= ln2/2 bounds the
///     truncation error below 1e-17 relative; total error vs std::exp stays
///     well inside VectorKernelContract::kExpUlpBound (= 4) ulp, asserted
///     by tests/test_vector_kernel.cpp over the full pricing domain.

#if !defined(CDSFLOW_SIMD_NS) || !defined(CDSFLOW_SIMD_WIDTH)
#error "vector_kernel_impl.hpp must be included by an arch TU"
#endif

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "cds/vector_kernel_arch.hpp"

namespace cdsflow::cds::simd::CDSFLOW_SIMD_NS {

namespace {

// ---------------------------------------------------------------- ops -----
// blend(m, a, b) selects b where the mask is set, a where it is clear.

#if CDSFLOW_SIMD_WIDTH == 8

using VecD = __m512d;
using VecI = __m512i;
using Mask = __mmask8;
constexpr unsigned kW = 8;

inline VecD set1(double v) { return _mm512_set1_pd(v); }
inline VecD loadu(const double* p) { return _mm512_loadu_pd(p); }
inline void storeu(double* p, VecD v) { _mm512_storeu_pd(p, v); }
inline VecD add(VecD a, VecD b) { return _mm512_add_pd(a, b); }
inline VecD sub(VecD a, VecD b) { return _mm512_sub_pd(a, b); }
inline VecD mul(VecD a, VecD b) { return _mm512_mul_pd(a, b); }
inline VecD div(VecD a, VecD b) { return _mm512_div_pd(a, b); }
inline VecD fmadd(VecD a, VecD b, VecD c) { return _mm512_fmadd_pd(a, b, c); }
inline VecD fnmadd(VecD a, VecD b, VecD c) {
  return _mm512_fnmadd_pd(a, b, c);
}
inline VecD min(VecD a, VecD b) { return _mm512_min_pd(a, b); }
inline VecD max(VecD a, VecD b) { return _mm512_max_pd(a, b); }
inline VecD blend(Mask m, VecD a, VecD b) {
  return _mm512_mask_blend_pd(m, a, b);
}
inline Mask cmp_lt(VecD a, VecD b) {
  return _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ);
}
inline Mask cmp_le(VecD a, VecD b) {
  return _mm512_cmp_pd_mask(a, b, _CMP_LE_OQ);
}
inline Mask cmp_ge(VecD a, VecD b) {
  return _mm512_cmp_pd_mask(a, b, _CMP_GE_OQ);
}
inline VecI set1_i(std::int64_t v) { return _mm512_set1_epi64(v); }
inline VecI load_i(const std::int64_t* p) {
  return _mm512_load_si512(reinterpret_cast<const void*>(p));
}
inline VecI add_i(VecI a, VecI b) { return _mm512_add_epi64(a, b); }
inline VecI sub_i(VecI a, VecI b) { return _mm512_sub_epi64(a, b); }
inline Mask cmpgt_i(VecI a, VecI b) {
  return _mm512_cmpgt_epi64_mask(a, b);
}
inline VecI blend_i(Mask m, VecI a, VecI b) {
  return _mm512_mask_blend_epi64(m, a, b);
}
inline VecI sll52(VecI v) { return _mm512_slli_epi64(v, 52); }
inline VecI castd_i(VecD v) { return _mm512_castpd_si512(v); }
inline VecD casti_d(VecI v) { return _mm512_castsi512_pd(v); }
inline VecD gather(const double* base, VecI idx) {
  return _mm512_i64gather_pd(idx, base, 8);
}
inline VecI gather_i(const std::int64_t* base, VecI idx) {
  return _mm512_i64gather_epi64(idx, base, 8);
}
inline VecD floor_pd(VecD v) {
  return _mm512_roundscale_pd(v, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
}
inline Mask mask_and(Mask a, Mask b) { return a & b; }
inline VecI widen_u32(const std::uint32_t* p) {
  return _mm512_cvtepu32_epi64(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}
inline VecD load_stride2(const double* p) {
  // Every other double from p[0..15]: two contiguous loads + one shuffle
  // beat an 8-lane gather by ~3x on gather-weak cores.
  const __m512d lo = _mm512_loadu_pd(p);
  const __m512d hi = _mm512_loadu_pd(p + 8);
  return _mm512_permutex2var_pd(
      lo, _mm512_set_epi64(14, 12, 10, 8, 6, 4, 2, 0), hi);
}

#else  // CDSFLOW_SIMD_WIDTH == 4

using VecD = __m256d;
using VecI = __m256i;
using Mask = __m256d;
constexpr unsigned kW = 4;

inline VecD set1(double v) { return _mm256_set1_pd(v); }
inline VecD loadu(const double* p) { return _mm256_loadu_pd(p); }
inline void storeu(double* p, VecD v) { _mm256_storeu_pd(p, v); }
inline VecD add(VecD a, VecD b) { return _mm256_add_pd(a, b); }
inline VecD sub(VecD a, VecD b) { return _mm256_sub_pd(a, b); }
inline VecD mul(VecD a, VecD b) { return _mm256_mul_pd(a, b); }
inline VecD div(VecD a, VecD b) { return _mm256_div_pd(a, b); }
inline VecD fmadd(VecD a, VecD b, VecD c) { return _mm256_fmadd_pd(a, b, c); }
inline VecD fnmadd(VecD a, VecD b, VecD c) {
  return _mm256_fnmadd_pd(a, b, c);
}
inline VecD min(VecD a, VecD b) { return _mm256_min_pd(a, b); }
inline VecD max(VecD a, VecD b) { return _mm256_max_pd(a, b); }
inline VecD blend(Mask m, VecD a, VecD b) {
  return _mm256_blendv_pd(a, b, m);
}
inline Mask cmp_lt(VecD a, VecD b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
inline Mask cmp_le(VecD a, VecD b) { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
inline Mask cmp_ge(VecD a, VecD b) { return _mm256_cmp_pd(a, b, _CMP_GE_OQ); }
inline VecI set1_i(std::int64_t v) { return _mm256_set1_epi64x(v); }
inline VecI load_i(const std::int64_t* p) {
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
}
inline VecI add_i(VecI a, VecI b) { return _mm256_add_epi64(a, b); }
inline VecI sub_i(VecI a, VecI b) { return _mm256_sub_epi64(a, b); }
inline Mask cmpgt_i(VecI a, VecI b) {
  return _mm256_castsi256_pd(_mm256_cmpgt_epi64(a, b));
}
inline VecI blend_i(Mask m, VecI a, VecI b) {
  return _mm256_castpd_si256(_mm256_blendv_pd(
      _mm256_castsi256_pd(a), _mm256_castsi256_pd(b), m));
}
inline VecI sll52(VecI v) { return _mm256_slli_epi64(v, 52); }
inline VecI castd_i(VecD v) { return _mm256_castpd_si256(v); }
inline VecD casti_d(VecI v) { return _mm256_castsi256_pd(v); }
inline VecD gather(const double* base, VecI idx) {
  return _mm256_i64gather_pd(base, idx, 8);
}
inline VecI gather_i(const std::int64_t* base, VecI idx) {
  return _mm256_i64gather_epi64(reinterpret_cast<const long long*>(base), idx,
                                8);
}
inline VecD floor_pd(VecD v) { return _mm256_floor_pd(v); }
inline Mask mask_and(Mask a, Mask b) { return _mm256_and_pd(a, b); }
inline VecI widen_u32(const std::uint32_t* p) {
  return _mm256_cvtepu32_epi64(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}
inline VecD load_stride2(const double* p) {
  // Every other double from p[0..7]: two contiguous loads + two shuffles
  // beat a 4-lane gather on gather-weak cores.
  const __m256d lo = _mm256_loadu_pd(p);      // {p0, p1, p2, p3}
  const __m256d hi = _mm256_loadu_pd(p + 4);  // {p4, p5, p6, p7}
  const __m256d u = _mm256_unpacklo_pd(lo, hi);  // {p0, p4, p2, p6}
  return _mm256_permute4x64_pd(u, 0b11011000);   // {p0, p2, p4, p6}
}

#endif

inline VecI min_i(VecI a, VecI b) { return blend_i(cmpgt_i(a, b), a, b); }
inline VecI max_i(VecI a, VecI b) { return blend_i(cmpgt_i(a, b), b, a); }
inline VecD negate(VecD v) { return sub(set1(0.0), v); }

/// Lane index offsets {0, stride, 2*stride, ...} for strided gathers.
inline VecI lane_steps(std::size_t stride) {
  alignas(64) std::int64_t buf[kW];
  for (unsigned w = 0; w < kW; ++w) {
    buf[w] = static_cast<std::int64_t>(w * stride);
  }
  return load_i(buf);
}

// ------------------------------------------------------------- exp_pd -----

inline VecD exp_pd(VecD x) {
  const VecD log2e = set1(1.44269504088896340736);
  // Cody-Waite split of ln2: hi has ~32 trailing zero bits, so n * hi is
  // exact for |n| < 2^20 and the reduction r = x - n*ln2 loses no bits.
  const VecD ln2_hi = set1(6.93147180369123816490e-01);
  const VecD ln2_lo = set1(1.90821492927058770002e-10);
  // 2^52 + 2^51: adding it rounds x*log2e to the nearest integer in the
  // low mantissa bits (two's complement for negatives).
  const VecD magic = set1(6755399441055744.0);

  // The pricing domain is tiny (|x| < ~50); the clamp only guards the
  // exponent-bit scaling against pathological inputs.
  x = max(min(x, set1(708.0)), set1(-708.0));

  const VecD t = fmadd(x, log2e, magic);
  const VecD n = sub(t, magic);  // round-to-nearest(x * log2e)
  const VecI ni = sub_i(castd_i(t), castd_i(magic));

  VecD r = fnmadd(n, ln2_hi, x);
  r = fnmadd(n, ln2_lo, r);  // |r| <= ln2/2

  // exp(r) ~= sum_{k=0..13} r^k / k!; remainder < 4e-18 relative.
  VecD p = set1(1.0 / 6227020800.0);         // 1/13!
  p = fmadd(p, r, set1(1.0 / 479001600.0));  // 1/12!
  p = fmadd(p, r, set1(1.0 / 39916800.0));   // 1/11!
  p = fmadd(p, r, set1(1.0 / 3628800.0));    // 1/10!
  p = fmadd(p, r, set1(1.0 / 362880.0));     // 1/9!
  p = fmadd(p, r, set1(1.0 / 40320.0));      // 1/8!
  p = fmadd(p, r, set1(1.0 / 5040.0));       // 1/7!
  p = fmadd(p, r, set1(1.0 / 720.0));        // 1/6!
  p = fmadd(p, r, set1(1.0 / 120.0));        // 1/5!
  p = fmadd(p, r, set1(1.0 / 24.0));         // 1/4!
  p = fmadd(p, r, set1(1.0 / 6.0));          // 1/3!
  p = fmadd(p, r, set1(0.5));                // 1/2!
  p = fmadd(p, r, set1(1.0));
  p = fmadd(p, r, set1(1.0));

  // 2^n as a bit pattern; n in [-1022, 1023] after the clamp above.
  const VecD scale = casti_d(sll52(add_i(ni, set1_i(1023))));
  return mul(p, scale);
}

// ----------------------------------------------------------- searches -----
// Branchless binary searches: `size` halves identically for every lane, so
// the loop trip count is uniform; only `low` is per-lane. Invariant: the
// answer lies in [low, low + size], hence every probe = low + size/2 is a
// valid index.

/// Per-lane std::lower_bound index: first i with arr[i] >= t.
inline VecI lower_bound(const double* arr, std::size_t count, VecD t) {
  VecI low = set1_i(0);
  std::size_t size = count;
  while (size > 0) {
    const std::size_t half = size / 2;
    const VecI probe = add_i(low, set1_i(static_cast<std::int64_t>(half)));
    const VecI moved =
        add_i(low, set1_i(static_cast<std::int64_t>(size - half)));
    const Mask advance = cmp_lt(gather(arr, probe), t);
    low = blend_i(advance, low, moved);
    size = half;
  }
  return low;
}

/// Per-lane std::upper_bound index: first i with arr[i] > t.
inline VecI upper_bound(const double* arr, std::size_t count, VecD t) {
  VecI low = set1_i(0);
  std::size_t size = count;
  while (size > 0) {
    const std::size_t half = size / 2;
    const VecI probe = add_i(low, set1_i(static_cast<std::int64_t>(half)));
    const VecI moved =
        add_i(low, set1_i(static_cast<std::int64_t>(size - half)));
    const Mask advance = cmp_le(gather(arr, probe), t);
    low = blend_i(advance, low, moved);
    size = half;
  }
  return low;
}

/// Per-lane bound index via the bucket table (SearchLut invariants in
/// vector_kernel_arch.hpp): the log2(knots) data-dependent gathers of the
/// binary search collapse to two. kUpper false gives std::lower_bound's
/// index, true std::upper_bound's -- exactly, so the bracket choice (and
/// hence every downstream bit) is identical to the binary-search path.
///
/// Steps, with s_k = fma(k, width, t0) -- the builder's own anchors, so
/// the lane fmadd reproduces them bit for bit:
///   1. k ~= floor((t - t0) * inv_width), clamped to [0, n_buckets - 1].
///      Rounding can misplace k by at most one bucket, so
///   2. step down where t < s_k, up where t >= s_{k+1}, re-clamp: now
///      s_k <= t < s_{k+1} exactly (or k is the clamped edge bucket).
///   3. j = buckets[k] (the bound of s_k); at most one knot lies in
///      [s_k, t), so advance by one where arr[j] is on t's wrong side.
template <bool kUpper>
inline VecI lut_bound(const double* arr, std::size_t count, VecD t,
                      const SearchLut& lut) {
  const VecD zero = set1(0.0);
  const VecD one = set1(1.0);
  const VecD t0 = set1(lut.t0);
  const VecD width = set1(lut.width);
  const VecD last_bucket = set1(static_cast<double>(lut.n_buckets - 1));
  VecD k = floor_pd(mul(sub(t, t0), set1(lut.inv_width)));
  k = max(min(k, last_bucket), zero);
  const VecD s_k = fmadd(k, width, t0);
  const VecD s_k1 = fmadd(add(k, one), width, t0);
  k = blend(cmp_lt(t, s_k), k, sub(k, one));
  k = blend(cmp_ge(t, s_k1), k, add(k, one));
  k = max(min(k, last_bucket), zero);
  // floor'ed doubles to int64 exactly, via the same magic-add bit trick as
  // exp_pd's exponent extraction (|k| < 2^51 always holds here).
  const VecD magic = set1(6755399441055744.0);  // 2^52 + 2^51
  const VecI ki = sub_i(castd_i(add(k, magic)), castd_i(magic));
  VecI j = gather_i(lut.buckets, ki);
  const VecI n = set1_i(static_cast<std::int64_t>(count));
  const VecI jc = min_i(j, set1_i(static_cast<std::int64_t>(count) - 1));
  const VecD pivot = gather(arr, jc);
  const Mask on_wrong_side =
      kUpper ? cmp_le(pivot, t) : cmp_lt(pivot, t);
  const Mask advance = mask_and(on_wrong_side, cmpgt_i(n, j));
  return blend_i(advance, j, add_i(j, set1_i(1)));
}

// ------------------------------------------------------------ kernels -----

/// Lambda(t) per lane: integrated_hazard_prefix's expressions with the
/// branch structure turned into index clamps + blends. For j == size the
/// clamped j-1 / rate indices land on the last knot, which *is* the scalar
/// tail-extrapolation expression; for j == 0 the gathered base/seg are
/// blended to 0.0.
inline VecD integrated_hazard(const PrefixView& prefix, VecD t) {
  const VecI zero = set1_i(0);
  const VecI j = prefix.lut.buckets != nullptr
                     ? lut_bound<false>(prefix.times, prefix.size, t,
                                        prefix.lut)
                     : lower_bound(prefix.times, prefix.size, t);
  const Mask has_prev = cmpgt_i(j, zero);
  const VecI jm1 = max_i(sub_i(j, set1_i(1)), zero);
  const VecI jr =
      min_i(j, set1_i(static_cast<std::int64_t>(prefix.size) - 1));
  const VecD seg_begin =
      blend(has_prev, set1(0.0), gather(prefix.times, jm1));
  const VecD base = blend(has_prev, set1(0.0), gather(prefix.lambda, jm1));
  const VecD rate = gather(prefix.rates, jr);
  // base + rates[j] * (t - seg_begin), plain mul/add as in hazard.cpp.
  return add(base, mul(rate, sub(t, seg_begin)));
}

/// interpolate_fast per lane: upper_bound bracket, lerp_on_bracket
/// arithmetic, end clamps. curve.size >= 2 (dispatcher contract).
inline VecD interp_fast(const CurveView& curve, VecD t) {
  const VecI zero = set1_i(0);
  const VecI last =
      set1_i(static_cast<std::int64_t>(curve.size) - 2);
  const VecI ub = curve.lut.buckets != nullptr
                      ? lut_bound<true>(curve.times, curve.size, t, curve.lut)
                      : upper_bound(curve.times, curve.size, t);
  VecI lo = sub_i(ub, set1_i(1));
  lo = max_i(min_i(lo, last), zero);  // keep clamped lanes' gathers in range
  const VecI hi = add_i(lo, set1_i(1));
  const VecD t0 = gather(curve.times, lo);
  const VecD t1 = gather(curve.times, hi);
  const VecD v0 = gather(curve.values, lo);
  const VecD v1 = gather(curve.values, hi);
  // v0 + (v1 - v0) * (t - t0) / (t1 - t0), exactly lerp_on_bracket.
  VecD r = add(v0, div(mul(sub(v1, v0), sub(t, t0)), sub(t1, t0)));
  r = blend(cmp_le(t, set1(curve.times[0])), r, set1(curve.values[0]));
  r = blend(cmp_ge(t, set1(curve.times[curve.size - 1])), r,
            set1(curve.values[curve.size - 1]));
  return r;
}

}  // namespace

namespace {

/// Strided t load for the column kernels. The common strides dodge the
/// gather: contiguous (1) is a plain load, the TimePoint AoS stride (2) a
/// deinterleave -- branch is loop-invariant, predicted free. The lanes hold
/// ts[i*t_stride], ts[(i+1)*t_stride], ... whichever path runs.
inline VecD load_t(const double* ts, std::size_t t_stride, std::size_t i,
                   VecI steps) {
  if (t_stride == 1) {
    return loadu(ts + i);
  }
  if (t_stride == 2) {
    return load_stride2(ts + 2 * i);
  }
  return gather(
      ts, add_i(steps, set1_i(static_cast<std::int64_t>(i * t_stride))));
}

}  // namespace

void survival_column(const PrefixView& prefix, const double* ts,
                     std::size_t t_stride, std::size_t n, double* q_out) {
  const VecI steps = lane_steps(t_stride);
  for (std::size_t i = 0; i < n; i += kW) {
    const VecD t = load_t(ts, t_stride, i, steps);
    storeu(q_out + i, exp_pd(negate(integrated_hazard(prefix, t))));
  }
}

void discount_column(const CurveView& curve, const double* ts,
                     std::size_t t_stride, std::size_t n, double* d_out) {
  const VecI steps = lane_steps(t_stride);
  for (std::size_t i = 0; i < n; i += kW) {
    const VecD t = load_t(ts, t_stride, i, steps);
    const VecD r = interp_fast(curve, t);
    // exp(-r * t): the sign flip commutes with the multiply exactly.
    storeu(d_out + i, exp_pd(negate(mul(r, t))));
  }
}

void combine_spreads(const double* recovery, std::size_t rec_stride,
                     const std::uint32_t* grid_of, const double* annuity,
                     const double* payoff, std::size_t n, double* spread_out,
                     std::size_t out_stride) {
  const VecI steps = lane_steps(rec_stride);
  const VecD one = set1(1.0);
  const VecD bpu = set1(10000.0);  // kBasisPointsPerUnit
  alignas(64) double tmp[kW];
  for (std::size_t i = 0; i < n; i += kW) {
    const VecI ridx =
        add_i(steps, set1_i(static_cast<std::int64_t>(i * rec_stride)));
    const VecD rec = gather(recovery, ridx);
    const VecI g = widen_u32(grid_of + i);
    const VecD a = gather(annuity, g);
    const VecD pf = gather(payoff, g);
    // kBasisPointsPerUnit * ((1 - recovery) * payoff[g]) / annuity[g]:
    // the identical per-lane IEEE ops as the scalar combine -> bit-exact.
    const VecD spread = div(mul(bpu, mul(sub(one, rec), pf)), a);
    storeu(tmp, spread);
    for (unsigned w = 0; w < kW; ++w) {
      spread_out[(i + w) * out_stride] = tmp[w];
    }
  }
}

void exp_columns(const double* xs, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; i += kW) {
    storeu(out + i, exp_pd(loadu(xs + i)));
  }
}

void sweep_survival_block(const double* rates_T, std::size_t n_knots,
                          const double* knot_dt, double* lambda_T,
                          const double* point_dt,
                          const std::int64_t* base_row,
                          const std::int64_t* rate_row, std::size_t n_points,
                          double* q_T) {
  // Prefix chain, one add per knot for W scenarios at once. Plain mul +
  // add, never contracted -- make_hazard_prefix's exact accumulation per
  // lane (knot_dt carries the same scalar subtraction bits).
  VecD acc = loadu(lambda_T);  // row 0, pre-zeroed by the dispatcher
  for (std::size_t j = 0; j < n_knots; ++j) {
    acc = add(acc, mul(loadu(rates_T + j * kW), set1(knot_dt[j])));
    storeu(lambda_T + (j + 1) * kW, acc);
  }
  // Per schedule point: base + rate * dt is integrated_hazard_prefix's
  // expression with the branch structure resolved into precomputed row
  // indices (shared across every scenario -- the knot times never move in
  // a hazard sweep), then the same negate + exp_pd as survival_column.
  for (std::size_t i = 0; i < n_points; ++i) {
    const VecD base =
        loadu(lambda_T + static_cast<std::size_t>(base_row[i]) * kW);
    const VecD rate =
        loadu(rates_T + static_cast<std::size_t>(rate_row[i]) * kW);
    const VecD lam = add(base, mul(rate, set1(point_dt[i])));
    storeu(q_T + i * kW, exp_pd(negate(lam)));
  }
}

void sweep_leg_sums_block(const double* dts, const double* discount,
                          const double* q_T, std::size_t n_points,
                          double* annuity_out, double* payoff_out) {
  // reduce_leg_sums per lane: serial walk over the grid's points with W
  // scenarios abreast. D and dt are scenario-invariant (broadcast); the
  // per-point terms are leg_terms_from_discount's expressions in its
  // association order, plain mul/add, never contracted -- so every lane
  // reproduces the scalar reduction bit for bit.
  const VecD half = set1(0.5);
  VecD premium = set1(0.0);
  VecD accrual = set1(0.0);
  VecD payoff = set1(0.0);
  VecD q_prev = set1(1.0);  // Q(0)
  for (std::size_t i = 0; i < n_points; ++i) {
    const VecD d = set1(discount[i]);
    const VecD dt = set1(dts[i]);
    const VecD q = loadu(q_T + i * kW);
    const VecD dq = sub(q_prev, q);
    premium = add(premium, mul(mul(d, q), dt));
    accrual = add(accrual, mul(mul(mul(half, d), dq), dt));
    payoff = add(payoff, mul(d, dq));
    q_prev = q;
  }
  // checked_grid_sums' annuity add; the positivity check stays with the
  // caller (per lane, with the scalar diagnostic).
  storeu(annuity_out, add(premium, accrual));
  storeu(payoff_out, payoff);
}

}  // namespace cdsflow::cds::simd::CDSFLOW_SIMD_NS
