/// \file test_cds_curve.cpp
/// Unit tests for TermStructure: validation, bracket scan, interpolation
/// exactness and clamping.

#include <gtest/gtest.h>

#include "cds/curve.hpp"
#include "common/error.hpp"

namespace cdsflow::cds {
namespace {

TermStructure simple_curve() {
  return TermStructure({1.0, 2.0, 4.0, 8.0}, {0.01, 0.02, 0.04, 0.08});
}

TEST(TermStructure, ValidationAcceptsGoodCurve) {
  EXPECT_NO_THROW(simple_curve());
  EXPECT_NO_THROW(TermStructure({0.0}, {0.05}));  // single point, t=0 ok
}

TEST(TermStructure, ValidationRejectsBadCurves) {
  EXPECT_THROW(TermStructure({}, {}), Error);
  EXPECT_THROW(TermStructure({1.0, 2.0}, {0.01}), Error);
  EXPECT_THROW(TermStructure({2.0, 1.0}, {0.01, 0.02}), Error);   // not increasing
  EXPECT_THROW(TermStructure({1.0, 1.0}, {0.01, 0.02}), Error);   // duplicate
  EXPECT_THROW(TermStructure({-1.0, 1.0}, {0.01, 0.02}), Error);  // negative
}

TEST(TermStructure, Accessors) {
  const auto c = simple_curve();
  EXPECT_EQ(c.size(), 4u);
  EXPECT_FALSE(c.empty());
  EXPECT_DOUBLE_EQ(c.time(2), 4.0);
  EXPECT_DOUBLE_EQ(c.value(2), 0.04);
  EXPECT_DOUBLE_EQ(c.max_time(), 8.0);
}

TEST(TermStructure, InterpolationExactAtKnots) {
  const auto c = simple_curve();
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_DOUBLE_EQ(c.interpolate(c.time(i)), c.value(i));
  }
}

TEST(TermStructure, InterpolationLinearBetweenKnots) {
  const auto c = simple_curve();
  EXPECT_DOUBLE_EQ(c.interpolate(1.5), 0.015);
  EXPECT_DOUBLE_EQ(c.interpolate(3.0), 0.03);
  EXPECT_DOUBLE_EQ(c.interpolate(6.0), 0.06);
}

TEST(TermStructure, InterpolationClampsOutsideRange) {
  const auto c = simple_curve();
  EXPECT_DOUBLE_EQ(c.interpolate(0.0), 0.01);
  EXPECT_DOUBLE_EQ(c.interpolate(0.5), 0.01);
  EXPECT_DOUBLE_EQ(c.interpolate(100.0), 0.08);
}

TEST(TermStructure, BracketScanFindsLastKnotAtOrBefore) {
  const auto c = simple_curve();
  EXPECT_EQ(c.find_bracket_scan(1.0), 0u);
  EXPECT_EQ(c.find_bracket_scan(3.9), 1u);
  EXPECT_EQ(c.find_bracket_scan(4.0), 2u);
  EXPECT_EQ(c.find_bracket_scan(9.0), 3u);
  // Before the first knot: "not found" sentinel is size().
  EXPECT_EQ(c.find_bracket_scan(0.5), c.size());
}

TEST(TermStructure, CountAtOrBeforeMatchesScanSemantics) {
  const auto c = simple_curve();
  EXPECT_EQ(c.count_at_or_before(0.5), 0u);
  EXPECT_EQ(c.count_at_or_before(1.0), 1u);
  EXPECT_EQ(c.count_at_or_before(4.5), 3u);
  EXPECT_EQ(c.count_at_or_before(100.0), 4u);
}

TEST(TermStructure, ScanAndBinarySearchAgreeEverywhere) {
  const auto c = simple_curve();
  for (double t = 0.0; t <= 9.0; t += 0.1) {
    const std::size_t count = c.count_at_or_before(t);
    const std::size_t scan = c.find_bracket_scan(t);
    if (count == 0) {
      EXPECT_EQ(scan, c.size());
    } else {
      EXPECT_EQ(scan, count - 1);
    }
  }
}

TEST(TermStructure, SinglePointCurveInterpolatesFlat) {
  const TermStructure c({5.0}, {0.03});
  EXPECT_DOUBLE_EQ(c.interpolate(0.0), 0.03);
  EXPECT_DOUBLE_EQ(c.interpolate(5.0), 0.03);
  EXPECT_DOUBLE_EQ(c.interpolate(50.0), 0.03);
}

TEST(TermStructure, InterpolationIsMonotoneOnMonotoneCurve) {
  const auto c = simple_curve();
  double prev = -1.0;
  for (double t = 0.0; t <= 9.0; t += 0.05) {
    const double v = c.interpolate(t);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace cdsflow::cds
