/// \file market_calibration.cpp
/// End-of-day desk pipeline: market quotes -> bootstrapped hazard curve ->
/// book repricing on the engine -> risk report. Exercises the calibration
/// (bootstrap), I/O (CSV), engine, and risk modules together.
///
/// Run:  ./market_calibration

#include <filesystem>
#include <iostream>

#include "cds/bootstrap.hpp"
#include "cds/risk.hpp"
#include "common/format.hpp"
#include "engines/interoption_engine.hpp"
#include "io/csv.hpp"
#include "report/table.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"

int main() {
  using namespace cdsflow;

  // 1. Market quotes (normally from the market data system; CSV round-trip
  //    shown for the integration path).
  const std::vector<cds::SpreadQuote> quotes = {
      {1.0, 112.0}, {2.0, 131.0}, {3.0, 149.0},
      {5.0, 183.0}, {7.0, 201.0}, {10.0, 226.0}};
  const auto quotes_path =
      (std::filesystem::temp_directory_path() / "cdsflow_quotes.csv")
          .string();
  io::write_quotes_csv(quotes_path, quotes);
  const auto loaded_quotes = io::read_quotes_csv(quotes_path);

  // 2. Bootstrap the hazard curve that reprices them.
  const auto interest = workload::paper_interest_curve();
  const auto boot = cds::bootstrap_hazard_curve(interest, loaded_quotes);
  std::cout << "bootstrapped hazard curve (max repricing error "
            << compact(boot.max_error_bps) << " bps):\n";
  for (std::size_t i = 0; i < boot.hazard.size(); ++i) {
    std::cout << "  up to " << fixed(boot.hazard.time(i), 0) << "y: "
              << fixed(boot.hazard.value(i) * 1e4, 1) << " bps hazard\n";
  }

  // 3. Reprice the desk's book on the calibrated curve with the engine.
  workload::PortfolioSpec spec;
  spec.count = 64;
  spec.seed = 99;
  const auto book = workload::make_portfolio(spec);
  engine::InterOptionEngine engine(interest, boot.hazard, {});
  const auto run = engine.price(book);
  std::cout << "\nrepriced " << book.size() << " positions at "
            << with_thousands(run.options_per_second, 0)
            << " options/s (simulated free-running engine)\n\n";

  // 4. Risk on the benchmark tenors.
  report::Table table("desk risk report (calibrated curve)");
  table.set_columns({"Tenor", "Par spread (bps)", "CS01 (bps/bp)",
                     "IR01 (bps/bp)", "Rec01 (bps/%)"});
  for (const double tenor : {1.0, 5.0, 10.0}) {
    const cds::CdsOption contract{.id = 0,
                                  .maturity_years = tenor,
                                  .payment_frequency = 4.0,
                                  .recovery_rate = 0.4};
    const auto s =
        cds::compute_sensitivities(interest, boot.hazard, contract);
    table.add_row({fixed(tenor, 0) + "y", fixed(s.spread_bps, 1),
                   fixed(s.cs01, 3), fixed(s.ir01, 4), fixed(s.rec01, 3)});
  }
  std::cout << table.render_text();

  std::filesystem::remove(quotes_path);
  return 0;
}
