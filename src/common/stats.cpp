#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cdsflow {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(std::size_t buckets, double upper)
    : counts_(buckets, 0), upper_(upper) {
  CDSFLOW_EXPECT(buckets > 0, "Histogram requires at least one bucket");
  CDSFLOW_EXPECT(upper > 0.0, "Histogram upper bound must be positive");
}

void Histogram::add(double x) {
  const double clamped = std::clamp(x, 0.0, upper_);
  auto idx = static_cast<std::size_t>(clamped / upper_ *
                                      static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
  ++total_;
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

double relative_difference(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) / scale;
}

double percentile(std::vector<double> samples, double p) {
  CDSFLOW_EXPECT(!samples.empty(), "percentile of an empty sample");
  CDSFLOW_EXPECT(p >= 0.0 && p <= 100.0, "percentile must lie in [0,100]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

}  // namespace cdsflow
