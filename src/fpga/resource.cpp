#include "fpga/resource.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"

namespace cdsflow::fpga {

ResourceUsage& ResourceUsage::operator+=(const ResourceUsage& o) {
  luts += o.luts;
  flip_flops += o.flip_flops;
  dsp_slices += o.dsp_slices;
  bram_bytes += o.bram_bytes;
  uram_blocks += o.uram_blocks;
  return *this;
}

ResourceUsage ResourceUsage::scaled(std::uint64_t n) const {
  return {luts * n, flip_flops * n, dsp_slices * n, bram_bytes * n,
          uram_blocks * n};
}

ResourceEstimator::ResourceEstimator(DeviceSpec device, OperatorCosts costs)
    : device_(std::move(device)), costs_(costs) {}

namespace {

/// Control/FSM logic wrapped around every HLS function.
constexpr std::uint64_t kStageControlLuts = 600;
constexpr std::uint64_t kStageControlFfs = 900;
/// One stream FIFO (control + LUTRAM for shallow depths).
constexpr std::uint64_t kStreamLuts = 250;
constexpr std::uint64_t kStreamBramBytes = 1024;
/// Round-robin scheduler/collector pair logic per lane.
constexpr std::uint64_t kLaneMuxLuts = 350;
/// Per-engine AXI masters, burst packing, option loader, result writer,
/// kernel control.
constexpr std::uint64_t kEngineInfraLuts = 35'000;
constexpr std::uint64_t kEngineInfraFfs = 45'000;
constexpr std::uint64_t kEngineInfraBram = 64 * 1024;
/// Static region (shell: PCIe/XDMA, HBM controllers, clocking) -- consumed
/// once regardless of engine count.
constexpr std::uint64_t kShellLuts = 90'000;
constexpr std::uint64_t kShellFfs = 130'000;

ResourceUsage with_control(ResourceUsage ops) {
  ops.luts += kStageControlLuts;
  ops.flip_flops += kStageControlFfs;
  return ops;
}

}  // namespace

EngineEstimate ResourceEstimator::estimate_engine(
    const EngineShape& shape) const {
  CDSFLOW_EXPECT(shape.hazard_lanes >= 1, "engine needs >= 1 hazard lane");
  CDSFLOW_EXPECT(shape.interpolation_lanes >= 1,
                 "engine needs >= 1 interpolation lane");
  CDSFLOW_EXPECT(shape.accumulation_lanes >= 1,
                 "engine needs >= 1 accumulation lane");
  const OperatorCosts& oc = costs_;
  EngineEstimate est;
  auto add = [&est](const std::string& name, ResourceUsage u) {
    est.breakdown.emplace_back(name, u);
    est.total += u;
  };

  // Per-curve on-chip replica: one URAM block per lane per curve half
  // (2 curves x 1024 points x 16 B = 32 KiB <= 1 block each).
  const std::uint64_t curve_bytes =
      static_cast<std::uint64_t>(shape.curve_points) * 2 * sizeof(double);
  const std::uint64_t blocks_per_replica = std::max<std::uint64_t>(
      1, (curve_bytes + device_.uram_block_bytes - 1) /
             device_.uram_block_bytes);

  // Hazard integration lane: `accumulation_lanes` partial adders (Listing 1;
  // 1 in the baseline), one multiplier for rate*dt, two compares for the
  // time-bracket test.
  {
    ResourceUsage lane = with_control(
        oc.dadd.scaled(shape.accumulation_lanes) + oc.dmul +
        oc.dcmp.scaled(2));
    lane.uram_blocks = blocks_per_replica;
    add("hazard lanes", lane.scaled(shape.hazard_lanes));
  }

  // Interpolation lane: bracket scan (2 compares) + slope div + 2 mul +
  // 2 add.
  {
    ResourceUsage lane = with_control(oc.dcmp.scaled(2) + oc.ddiv +
                                      oc.dmul.scaled(2) + oc.dadd.scaled(2));
    lane.uram_blocks = blocks_per_replica;
    add("interpolation lanes", lane.scaled(shape.interpolation_lanes));
  }

  add("discount (exp)", with_control(oc.dexp + oc.dmul.scaled(2)));
  add("default probability (exp)", with_control(oc.dexp + oc.dadd));
  add("time-point generator",
      with_control(oc.dmul.scaled(2) + oc.dcmp + oc.dadd));
  add("premium calc", with_control(oc.dmul.scaled(2)));
  add("payoff calc", with_control(oc.dmul));
  add("accrual calc", with_control(oc.dmul.scaled(3)));
  {
    ResourceUsage acc =
        with_control(oc.dadd.scaled(shape.accumulation_lanes));
    add("accumulators (x3)", acc.scaled(3));
  }
  add("spread combine",
      with_control(oc.ddiv + oc.dmul.scaled(2) + oc.dadd));

  if (shape.dataflow_plumbing) {
    const std::uint64_t lane_count =
        shape.hazard_lanes + shape.interpolation_lanes;
    ResourceUsage plumbing;
    plumbing.luts = lane_count * kLaneMuxLuts + 2 * kStageControlLuts;
    // ~20 inter-stage streams plus 2 per replica lane.
    const std::uint64_t streams = 20 + 2 * lane_count;
    plumbing.luts += streams * kStreamLuts;
    plumbing.bram_bytes = streams * kStreamBramBytes;
    plumbing.flip_flops = streams * 300;
    add("dataflow plumbing (streams/schedulers)", plumbing);
  }

  ResourceUsage infra;
  infra.luts = kEngineInfraLuts;
  infra.flip_flops = kEngineInfraFfs;
  infra.bram_bytes = kEngineInfraBram;
  add("AXI/control infrastructure", infra);

  return est;
}

ResourceUsage ResourceEstimator::estimate_design(const EngineShape& shape,
                                                 unsigned n_engines) const {
  CDSFLOW_EXPECT(n_engines >= 1, "design needs >= 1 engine");
  ResourceUsage total = estimate_engine(shape).total.scaled(n_engines);
  total.luts += kShellLuts;
  total.flip_flops += kShellFfs;
  return total;
}

bool ResourceEstimator::fits(const EngineShape& shape,
                             unsigned n_engines) const {
  const ResourceUsage u = estimate_design(shape, n_engines);
  const auto lut_ceiling = static_cast<std::uint64_t>(
      device_.routable_lut_fraction * static_cast<double>(device_.luts));
  return u.luts <= lut_ceiling && u.flip_flops <= device_.flip_flops &&
         u.dsp_slices <= device_.dsp_slices &&
         u.bram_bytes <= device_.bram_bytes &&
         u.uram_blocks <= device_.uram_blocks();
}

unsigned ResourceEstimator::max_engines(const EngineShape& shape,
                                        unsigned search_limit) const {
  unsigned best = 0;
  for (unsigned n = 1; n <= search_limit; ++n) {
    if (fits(shape, n)) {
      best = n;
    } else {
      break;  // usage is monotone in n
    }
  }
  return best;
}

std::string ResourceEstimator::utilisation_report(const EngineShape& shape,
                                                  unsigned n_engines) const {
  const EngineEstimate one = estimate_engine(shape);
  const ResourceUsage total = estimate_design(shape, n_engines);
  std::ostringstream os;
  os << device_.name << " with " << n_engines << " engine(s):\n";
  auto line = [&os](const std::string& what, std::uint64_t used,
                    std::uint64_t avail) {
    os << "  " << pad_right(what, 12) << pad_left(with_thousands(double(used), 0), 12)
       << " / " << pad_left(with_thousands(double(avail), 0), 12) << "  ("
       << fixed(avail == 0 ? 0.0 : 100.0 * double(used) / double(avail), 1)
       << "%)\n";
  };
  line("LUT", total.luts, device_.luts);
  line("FF", total.flip_flops, device_.flip_flops);
  line("DSP", total.dsp_slices, device_.dsp_slices);
  line("BRAM bytes", total.bram_bytes, device_.bram_bytes);
  line("URAM blocks", total.uram_blocks, device_.uram_blocks());
  os << "  routable-LUT ceiling "
     << fixed(device_.routable_lut_fraction * 100.0, 0) << "% -> "
     << (fits(shape, n_engines) ? "FITS" : "DOES NOT FIT") << '\n';
  os << "  per-engine breakdown:\n";
  for (const auto& [name, u] : one.breakdown) {
    os << "    " << pad_right(name, 40)
       << pad_left(with_thousands(double(u.luts), 0), 10) << " LUT "
       << pad_left(std::to_string(u.dsp_slices), 5) << " DSP "
       << pad_left(std::to_string(u.uram_blocks), 4) << " URAM\n";
  }
  return os.str();
}

}  // namespace cdsflow::fpga
