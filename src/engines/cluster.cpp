#include "engines/cluster.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cdsflow::engine {

ClusterEngine::ClusterEngine(cds::TermStructure interest,
                             cds::TermStructure hazard, ClusterConfig config)
    : interest_(std::move(interest)),
      hazard_(std::move(hazard)),
      config_(std::move(config)) {
  interest_.validate();
  hazard_.validate();
  CDSFLOW_EXPECT(config_.n_cards >= 1, "cluster needs at least one card");
  CDSFLOW_EXPECT(config_.host_fanout_s_per_extra_card >= 0.0,
                 "fan-out cost cannot be negative");
  // Validate the per-card configuration once (fit check etc.).
  MultiEngine probe(interest_, hazard_, config_.per_card);
}

std::string ClusterEngine::name() const {
  return "cluster-" + std::to_string(config_.n_cards) + "x" +
         std::to_string(config_.per_card.n_engines);
}

std::string ClusterEngine::description() const {
  return std::to_string(config_.n_cards) + " card(s) x " +
         std::to_string(config_.per_card.n_engines) +
         " engine(s), options scattered across independent PCIe links";
}

PricingRun ClusterEngine::price(const std::vector<cds::CdsOption>& options) {
  CDSFLOW_EXPECT(!options.empty(), "price() requires options");
  const unsigned cards = config_.n_cards;
  CDSFLOW_EXPECT(options.size() >=
                     static_cast<std::size_t>(cards) *
                         config_.per_card.n_engines,
                 "fewer options than engines across the cluster");

  PricingRun run;
  run.results.reserve(options.size());

  const std::size_t base = options.size() / cards;
  const std::size_t extra = options.size() % cards;

  double max_card_seconds = 0.0;
  sim::Cycle max_card_cycles = 0;
  std::size_t begin = 0;
  for (unsigned card = 0; card < cards; ++card) {
    const std::size_t len = base + (card < extra ? 1 : 0);
    const std::vector<cds::CdsOption> chunk(
        options.begin() + static_cast<std::ptrdiff_t>(begin),
        options.begin() + static_cast<std::ptrdiff_t>(begin + len));
    begin += len;

    // Each card independently pays its own PCIe transfer + arbitration
    // (MultiEngine already accounts both for its chunk).
    MultiEngine engine(interest_, hazard_, config_.per_card);
    const PricingRun card_run = engine.price(chunk);
    max_card_seconds = std::max(max_card_seconds, card_run.total_seconds);
    max_card_cycles = std::max(max_card_cycles, card_run.kernel_cycles);
    run.results.insert(run.results.end(), card_run.results.begin(),
                       card_run.results.end());
  }
  CDSFLOW_ASSERT(run.results.size() == options.size(),
                 "cluster chunks must cover every option exactly once");

  run.kernel_cycles = max_card_cycles;
  run.kernel_seconds = max_card_seconds;  // slowest card gates the batch
  run.transfer_seconds =
      config_.host_fanout_s_per_extra_card * (cards - 1);
  run.invocations = cards;
  run.finalise(options.size());
  return run;
}

}  // namespace cdsflow::engine
