#include "engines/dataflow_engine.hpp"

#include "common/error.hpp"
#include "engines/stage_library.hpp"
#include "hls/dataflow.hpp"

namespace cdsflow::engine {

DataflowEngine::DataflowEngine(cds::TermStructure interest,
                               cds::TermStructure hazard,
                               FpgaEngineConfig config)
    : interest_(std::move(interest)),
      hazard_(std::move(hazard)),
      config_(config) {
  interest_.validate();
  hazard_.validate();
}

PricingRun DataflowEngine::price(const std::vector<cds::CdsOption>& options) {
  CDSFLOW_EXPECT(!options.empty(), "price() requires options");
  PricingRun run;
  run.results.reserve(options.size());

  // Per-option tracing would interleave unrelated simulations; not
  // supported here (use the free-running engines for Fig. 2).
  FpgaEngineConfig cfg = config_;
  cfg.trace = nullptr;

  const hls::RegionRunner runner(
      hls::ExecutionPolicy::kRestartPerOption,
      {cfg.cost.region_restart_cycles,
       cfg.cost.region_initial_start_cycles});

  const auto region = runner.run(options.size(), [&](std::uint64_t i) {
    sim::Simulation sim;
    const auto handles = build_cds_dataflow_graph(
        sim, interest_, hazard_, std::span(&options[i], 1), cfg,
        GraphVariant::kOptimised);
    const auto sim_result = sim.run();
    const auto& spreads = handles.sink->collected();
    CDSFLOW_ASSERT(spreads.size() == 1,
                   "per-option region must produce one spread");
    run.results.push_back(spreads.front());
    return sim_result.end_cycle;
  });

  run.kernel_cycles = region.total_cycles;
  run.invocations = region.invocations;
  run.kernel_seconds =
      static_cast<double>(run.kernel_cycles) / cfg.clock_hz();
  if (cfg.include_transfer) {
    const fpga::Interconnect pcie(cfg.interconnect);
    run.transfer_seconds = pcie.transfer_seconds(
        batch_traffic(interest_.size(), options.size()).total());
  }
  run.finalise(options.size());
  return run;
}

}  // namespace cdsflow::engine
