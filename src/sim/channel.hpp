/// \file channel.hpp
/// Bounded FIFO channels connecting simulator processes.
///
/// A Channel models the physical FIFO an HLS stream synthesises to: fixed
/// capacity, blocking semantics (a producer that finds the FIFO full must
/// stall; a consumer that finds it empty must stall), strict FIFO order.
/// Channels also accumulate the statistics the benches report: stall counts,
/// high-water mark, and total traffic.

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace cdsflow::sim {

/// Type-erased channel interface: what the scheduler and the deadlock
/// reporter need without knowing the token type.
class ChannelBase {
 public:
  ChannelBase(std::string name, std::size_t capacity);
  virtual ~ChannelBase() = default;

  ChannelBase(const ChannelBase&) = delete;
  ChannelBase& operator=(const ChannelBase&) = delete;

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }
  virtual std::size_t size() const = 0;

  bool full() const { return size() >= capacity_; }
  bool empty() const { return size() == 0; }

  // --- statistics -------------------------------------------------------
  std::uint64_t total_pushed() const { return total_pushed_; }
  std::uint64_t push_stalls() const { return push_stalls_; }
  std::uint64_t pop_stalls() const { return pop_stalls_; }
  std::size_t max_occupancy() const { return max_occupancy_; }

  /// Stages call these when they *wanted* to push/pop but could not; the
  /// counters feed the stream-depth ablation bench.
  void record_push_stall() { ++push_stalls_; }
  void record_pop_stall() { ++pop_stalls_; }

 protected:
  void note_push() {
    ++total_pushed_;
    if (size() > max_occupancy_) max_occupancy_ = size();
  }

 private:
  std::string name_;
  std::size_t capacity_;
  std::uint64_t total_pushed_ = 0;
  std::uint64_t push_stalls_ = 0;
  std::uint64_t pop_stalls_ = 0;
  std::size_t max_occupancy_ = 0;
};

/// Typed bounded FIFO. Capacity 2 mirrors the default depth Vitis HLS gives
/// an hls::stream; engines size critical streams explicitly.
template <typename T>
class Channel final : public ChannelBase {
 public:
  Channel(std::string name, std::size_t capacity)
      : ChannelBase(std::move(name), capacity) {
    CDSFLOW_EXPECT(capacity > 0, "channel capacity must be >= 1");
  }

  std::size_t size() const override { return buf_.size(); }

  bool can_push() const { return buf_.size() < capacity(); }
  bool can_pop() const { return !buf_.empty(); }

  void push(T value) {
    CDSFLOW_ASSERT(can_push(), "push() on full channel '" + name() + "'");
    buf_.push_back(std::move(value));
    note_push();
  }

  /// Peek without consuming (HLS streams expose the same).
  const T& front() const {
    CDSFLOW_ASSERT(can_pop(), "front() on empty channel '" + name() + "'");
    return buf_.front();
  }

  T pop() {
    CDSFLOW_ASSERT(can_pop(), "pop() on empty channel '" + name() + "'");
    T v = std::move(buf_.front());
    buf_.pop_front();
    return v;
  }

 private:
  std::deque<T> buf_;
};

}  // namespace cdsflow::sim
