/// \file thread_pool.hpp
/// A small fixed-size worker pool for the batch runtime.
///
/// Deliberately minimal: FIFO task queue, std::future-based completion, no
/// work stealing. The runtime submits one task per shard; fairness and load
/// balance come from shard oversubscription (see shard.hpp), not from the
/// pool. Kept as its own component so later PRs (async streaming ingest,
/// request servers) can reuse it.

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cdsflow::runtime {

class ThreadPool {
 public:
  /// Starts `workers` threads. `workers` must be > 0.
  explicit ThreadPool(unsigned workers);

  /// Drains nothing: outstanding tasks are completed before destruction
  /// returns (join semantics, never detach).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(threads_.size()); }

  /// Enqueues a task; the future resolves when it has run (or carries the
  /// exception it threw).
  std::future<void> submit(std::function<void()> task);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace cdsflow::runtime
