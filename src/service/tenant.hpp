/// \file tenant.hpp
/// Per-tenant session state of the pricing service: one StreamRuntime per
/// tenant, request bookkeeping that slices the runtime's ordered result
/// stream back into per-request responses, and the tenant's admission
/// controller.
///
/// The bit-identity contract rides on StreamRuntime's determinism
/// guarantee: a tenant's admitted events (options and hazard quotes) are
/// pushed into its runtime in frame order, the runtime merges micro-batch
/// results back into exactly that event order (stream_runtime.hpp), and the
/// session completes requests by counting options -- the first pending
/// request owns the first n_options results of the stream, the next request
/// the following ones, and so on. No result is ever recomputed, copied
/// through a lossy format, or reordered, so a response's spreads are
/// bit-identical to pricing the same event sequence on a StreamRuntime
/// directly (tests/test_service.cpp drives both sides and compares bits).
///
/// All methods run on the service's event-loop thread; the runtime's own
/// API is the only cross-thread surface.

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "cds/curve.hpp"
#include "runtime/stream_runtime.hpp"
#include "service/admission.hpp"

namespace cdsflow::service {

struct TenantSpec {
  /// Wire tenant id (0 is reserved/invalid on the wire).
  std::uint32_t id = 0;
  std::string name;
  DeadlineClass deadline{"standard", 0.050, 0.200};
  /// The tenant's runtime shape. `engine` carrying "-risk" makes this a
  /// risk tenant (price requests are then kWrongMode and vice versa).
  runtime::StreamConfig stream;
  /// Affine cost fit of one runtime lane, for admission projection. Tests
  /// pin exact fits; the CLI calibrates one via calibrate_stream_fit().
  engine::BackendCandidate fit;
};

/// Times a StreamPricer for the given stream config at two probe sizes and
/// fits the affine admission model (the planner's probe->fit protocol
/// applied to the engine that will actually serve the tenant).
engine::BackendCandidate calibrate_stream_fit(
    const cds::TermStructure& interest, const cds::TermStructure& hazard,
    const runtime::StreamConfig& stream,
    const std::vector<std::size_t>& probe_sizes = {256, 2048});

class TenantSession {
 public:
  /// One completed (admitted or deferred) request, ready to encode.
  struct Completed {
    int conn = -1;
    std::uint32_t request = 0;
    std::uint8_t status = 0;  ///< net::kResultOnTime / kResultDeferred
    bool risk = false;
    std::vector<cds::SpreadResult> results;
    std::vector<cds::Sensitivities> greeks;
    /// Ingest-to-response latency, microseconds (admission arrival to
    /// harvest).
    double latency_us = 0.0;
  };

  TenantSession(TenantSpec spec, const cds::TermStructure& interest,
                const cds::TermStructure& hazard);

  /// Applies a hazard-quote update; false (with `error` set) when the knot
  /// index or rate fails semantic validation. Valid updates enter the event
  /// stream in order, like a directly-driven runtime's push_hazard_quote.
  bool push_quote(std::uint32_t knot, double rate, std::string* error);

  /// Admission-checks and (unless shed) enqueues one request. Options must
  /// already be semantically valid. `now_seconds` is the service clock.
  AdmissionDecision submit(int conn, std::uint32_t request,
                           const std::vector<cds::CdsOption>& options,
                           double now_seconds);

  /// Harvests micro-batches completed since the last poll and returns every
  /// request whose full result span is now available, in request order.
  std::vector<Completed> poll(double now_seconds);

  /// Closes the runtime, drains it and completes all remaining requests.
  /// Call once, after which the session is done.
  std::vector<Completed> drain(double now_seconds);

  const TenantSpec& spec() const { return spec_; }
  bool risk() const { return runtime_.risk_mode(); }
  std::size_t hazard_knots() const { return hazard_knots_; }
  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }
  std::size_t pending_requests() const { return pending_.size(); }
  /// Per-request ingest-to-response latencies harvested so far (us).
  const std::vector<double>& latency_us() const { return latency_us_; }

 private:
  struct Pending {
    int conn = -1;
    std::uint32_t request = 0;
    std::size_t n_options = 0;
    std::uint8_t status = 0;
    double arrival_seconds = 0.0;
  };

  /// Completes pending requests out of buffered_* (in order) while full
  /// spans are available.
  std::vector<Completed> complete_ready(double now_seconds);

  TenantSpec spec_;
  std::size_t hazard_knots_ = 0;
  runtime::StreamRuntime runtime_;
  AdmissionController admission_;

  std::deque<Pending> pending_;
  /// Runtime results harvested but not yet assigned to a request, in event
  /// order (the stream between the last completed request and the newest
  /// polled batch).
  std::vector<cds::SpreadResult> buffered_results_;
  std::vector<cds::Sensitivities> buffered_greeks_;
  /// Option events already sliced into completed requests (offset of
  /// buffered_results_[0] within the runtime's full result stream).
  std::size_t consumed_events_ = 0;
  std::vector<double> latency_us_;
  bool drained_ = false;
};

}  // namespace cdsflow::service
