/// \file test_cds_bootstrap.cpp
/// Unit tests for hazard-curve bootstrapping: exact round trips (price a
/// known curve, bootstrap it back), flat-curve recovery, repricing accuracy,
/// and failure on inconsistent quotes.

#include <gtest/gtest.h>

#include "cds/bootstrap.hpp"
#include "cds/legs.hpp"
#include "common/error.hpp"
#include "workload/curves.hpp"

namespace cdsflow::cds {
namespace {

struct BootstrapFixture : ::testing::Test {
  TermStructure interest = workload::paper_interest_curve(256);

  /// Par spreads of a given hazard curve at the quote tenors.
  std::vector<SpreadQuote> quotes_from_curve(const TermStructure& hazard,
                                             const std::vector<double>& tenors,
                                             const BootstrapOptions& o = {}) {
    std::vector<SpreadQuote> quotes;
    for (const double tenor : tenors) {
      const CdsOption contract{.id = 0,
                               .maturity_years = tenor,
                               .payment_frequency = o.payment_frequency,
                               .recovery_rate = o.recovery_rate};
      quotes.push_back(
          {tenor, price_breakdown(interest, hazard, contract).spread_bps});
    }
    return quotes;
  }
};

TEST_F(BootstrapFixture, RecoversFlatHazardCurve) {
  // Build a flat 250 bps hazard curve with knots AT the quote tenors so the
  // bootstrap parameterisation can represent it exactly.
  const std::vector<double> tenors = {1.0, 3.0, 5.0, 10.0};
  const TermStructure truth(tenors, {0.025, 0.025, 0.025, 0.025});
  const auto quotes = quotes_from_curve(truth, tenors);

  const auto result = bootstrap_hazard_curve(interest, quotes);
  ASSERT_EQ(result.hazard.size(), tenors.size());
  for (std::size_t i = 0; i < tenors.size(); ++i) {
    EXPECT_NEAR(result.hazard.value(i), 0.025, 1e-8) << "segment " << i;
  }
  EXPECT_LT(result.max_error_bps, 1e-6);
}

TEST_F(BootstrapFixture, RecoversPiecewiseCurveExactly) {
  const std::vector<double> tenors = {1.0, 2.0, 5.0, 7.0, 10.0};
  const std::vector<double> rates = {0.01, 0.02, 0.035, 0.03, 0.045};
  const TermStructure truth(tenors, rates);
  const auto quotes = quotes_from_curve(truth, tenors);

  const auto result = bootstrap_hazard_curve(interest, quotes);
  for (std::size_t i = 0; i < tenors.size(); ++i) {
    EXPECT_NEAR(result.hazard.value(i), rates[i], 1e-7) << "segment " << i;
  }
}

TEST_F(BootstrapFixture, RepricesQuotesWithinTolerance) {
  const std::vector<SpreadQuote> quotes = {
      {1.0, 110.0}, {3.0, 150.0}, {5.0, 185.0}, {7.0, 205.0}, {10.0, 230.0}};
  const auto result = bootstrap_hazard_curve(interest, quotes);
  // Reprice each quote on the bootstrapped curve.
  for (const auto& quote : quotes) {
    const CdsOption contract{.id = 0,
                             .maturity_years = quote.tenor_years,
                             .payment_frequency = 4.0,
                             .recovery_rate = 0.4};
    const double repriced =
        price_breakdown(interest, result.hazard, contract).spread_bps;
    EXPECT_NEAR(repriced, quote.spread_bps, 1e-6)
        << "tenor " << quote.tenor_years;
  }
  EXPECT_LT(result.max_error_bps, 1e-6);
  EXPECT_GT(result.total_iterations, 0);
}

TEST_F(BootstrapFixture, UpwardSpreadsGiveUpwardHazards) {
  const std::vector<SpreadQuote> quotes = {
      {1.0, 100.0}, {5.0, 200.0}, {10.0, 300.0}};
  const auto result = bootstrap_hazard_curve(interest, quotes);
  EXPECT_LT(result.hazard.value(0), result.hazard.value(1));
  EXPECT_LT(result.hazard.value(1), result.hazard.value(2));
}

TEST_F(BootstrapFixture, SingleQuoteMatchesCreditTriangle) {
  const std::vector<SpreadQuote> quotes = {{5.0, 180.0}};
  const auto result = bootstrap_hazard_curve(interest, quotes);
  // spread ~ (1-R) * h: 180 bps at R=0.4 => h ~ 300 bps.
  EXPECT_NEAR(result.hazard.value(0), 0.03, 0.002);
}

TEST_F(BootstrapFixture, RecoveryAssumptionChangesCurve) {
  const std::vector<SpreadQuote> quotes = {{5.0, 180.0}};
  BootstrapOptions lo, hi;
  lo.recovery_rate = 0.2;
  hi.recovery_rate = 0.6;
  const auto low = bootstrap_hazard_curve(interest, quotes, lo);
  const auto high = bootstrap_hazard_curve(interest, quotes, hi);
  // Same spread with more recovery requires more default risk.
  EXPECT_GT(high.hazard.value(0), low.hazard.value(0));
}

TEST_F(BootstrapFixture, RejectsMalformedQuotes) {
  EXPECT_THROW(bootstrap_hazard_curve(interest, {}), Error);
  EXPECT_THROW(
      bootstrap_hazard_curve(interest, {{5.0, 100.0}, {3.0, 100.0}}), Error);
  EXPECT_THROW(bootstrap_hazard_curve(interest, {{-1.0, 100.0}}), Error);
  EXPECT_THROW(bootstrap_hazard_curve(interest, {{5.0, -50.0}}), Error);
}

TEST_F(BootstrapFixture, FailsOnArbitrageInconsistentQuotes) {
  // A 1y spread of 5000 bps followed by a 2y spread of 1 bp would need a
  // hugely negative hazard on (1y, 2y]: the solver must refuse, not
  // silently produce nonsense.
  const std::vector<SpreadQuote> quotes = {{1.0, 5000.0}, {2.0, 1.0}};
  EXPECT_THROW(bootstrap_hazard_curve(interest, quotes), Error);
}

TEST_F(BootstrapFixture, MonthlyQuotedContractsAlsoBootstrap) {
  BootstrapOptions options;
  options.payment_frequency = 12.0;
  const std::vector<SpreadQuote> quotes = {{2.0, 140.0}, {5.0, 190.0}};
  const auto result = bootstrap_hazard_curve(interest, quotes, options);
  EXPECT_LT(result.max_error_bps, 1e-6);
}

}  // namespace
}  // namespace cdsflow::cds
