/// \file test_sweep_pricer.cpp
/// The scenario-sweep engine: bit-for-bit parity of every scenario kind
/// against the naive per-scenario BatchPricer loop at both the scalar and
/// the host's active SIMD level, the exactness of the O(grids) extremal-
/// recovery aggregates against the full per-option scan, invariance of the
/// results under scenario grouping / shard size / worker count
/// (SweepRuntime), stats accounting, and input validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "cds/batch_pricer.hpp"
#include "cds/curve.hpp"
#include "cds/sweep_pricer.hpp"
#include "common/error.hpp"
#include "runtime/shard.hpp"
#include "runtime/sweep_runtime.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"
#include "workload/scenario.hpp"

namespace cdsflow {
namespace {

using cds::BatchPricer;
using cds::CdsOption;
using cds::ScenarioAggregate;
using cds::ScenarioKind;
using cds::SpreadResult;
using cds::SweepPricer;
using cds::TermStructure;

/// The SIMD levels worth testing on this host: the scalar reference plus
/// the active level when it differs.
std::vector<cds::simd::Level> test_levels() {
  std::vector<cds::simd::Level> levels = {cds::simd::Level::kScalar};
  if (cds::simd::active_level() != cds::simd::Level::kScalar) {
    levels.push_back(cds::simd::active_level());
  }
  return levels;
}

/// A small mixed book: random maturities/frequencies so the dedup finds
/// several distinct grids, random recoveries so the extremal-recovery
/// aggregate is non-trivial per grid.
std::vector<CdsOption> mixed_book(std::size_t count = 96) {
  workload::PortfolioSpec spec;
  spec.count = count;
  spec.seed = 20210902;
  spec.frequencies = {2.0, 4.0, 12.0};
  spec.frequency_weights = {1.0, 2.0, 1.0};
  return workload::make_portfolio(spec);
}

/// Prices scenario `s` of `set` with a fresh BatchPricer on the scenario's
/// materialised curves -- the naive comparator the sweep must reproduce bit
/// for bit.
std::vector<SpreadResult> naive_scenario(const workload::ScenarioSet& set,
                                         std::size_t s,
                                         const TermStructure& interest,
                                         const TermStructure& hazard,
                                         const std::vector<CdsOption>& book,
                                         cds::simd::Level level) {
  const TermStructure ir =
      set.kind != ScenarioKind::kHazard ? set.rate_curve(s) : interest;
  const TermStructure hz =
      set.kind != ScenarioKind::kRate ? set.hazard_curve(s) : hazard;
  const BatchPricer pricer(ir, hz, level);
  return pricer.price(book);
}

/// Runs the sweep with a per-option sink and checks, for every scenario:
/// sink results bit-equal to the naive loop, and the O(grids) aggregate
/// bit-equal to the full per-option scan of those results.
void expect_sweep_matches_naive(const workload::ScenarioSet& set,
                                const TermStructure& interest,
                                const TermStructure& hazard,
                                const std::vector<CdsOption>& book,
                                cds::simd::Level level) {
  SweepPricer sweep(interest, hazard, book, level);
  std::vector<std::vector<SpreadResult>> per_scenario(set.count);
  std::vector<ScenarioAggregate> aggregates(set.count);
  sweep.sweep(set.matrix(), 0, set.count, aggregates,
              [&](std::size_t s, std::span<const SpreadResult> rs) {
                per_scenario[s].assign(rs.begin(), rs.end());
              });
  for (std::size_t s = 0; s < set.count; ++s) {
    const auto naive =
        naive_scenario(set, s, interest, hazard, book, level);
    ASSERT_EQ(per_scenario[s].size(), naive.size()) << "scenario " << s;
    for (std::size_t i = 0; i < naive.size(); ++i) {
      EXPECT_EQ(per_scenario[s][i].id, naive[i].id);
      EXPECT_EQ(per_scenario[s][i].spread_bps, naive[i].spread_bps)
          << "kind " << to_string(set.kind) << " level "
          << cds::simd::to_string(level) << " scenario " << s << " option "
          << i;
    }
    const ScenarioAggregate scan = SweepPricer::aggregate_spreads(naive);
    EXPECT_EQ(aggregates[s].min_spread_bps, scan.min_spread_bps)
        << "scenario " << s;
    EXPECT_EQ(aggregates[s].max_spread_bps, scan.max_spread_bps)
        << "scenario " << s;
  }
}

// --- parity vs the naive per-scenario loop ---------------------------------------

TEST(SweepParity, HazardScenariosBitMatchNaiveLoop) {
  const auto interest = workload::paper_interest_curve(64);
  const auto hazard = workload::paper_hazard_curve(64);
  const auto book = mixed_book();
  // 13 scenarios: exercises partial SIMD groups at every vector width.
  const auto set = workload::mc_hazard_scenarios(hazard, 13);
  for (const auto level : test_levels()) {
    expect_sweep_matches_naive(set, interest, hazard, book, level);
  }
}

TEST(SweepParity, BucketedStressBitMatchesNaiveLoop) {
  const auto interest = workload::paper_interest_curve(64);
  const auto hazard = workload::paper_hazard_curve(64);
  const auto book = mixed_book(48);
  const auto set = workload::bucketed_stress_scenarios(hazard, 5, 50.0);
  for (const auto level : test_levels()) {
    expect_sweep_matches_naive(set, interest, hazard, book, level);
  }
}

TEST(SweepParity, RateScenariosBitMatchNaiveLoop) {
  const auto interest = workload::paper_interest_curve(64);
  const auto hazard = workload::paper_hazard_curve(64);
  const auto book = mixed_book(48);
  const auto set = workload::replay_scenarios(interest, 9);
  for (const auto level : test_levels()) {
    expect_sweep_matches_naive(set, interest, hazard, book, level);
  }
}

TEST(SweepParity, JointScenariosBitMatchNaiveLoop) {
  const auto interest = workload::paper_interest_curve(64);
  const auto hazard = workload::paper_hazard_curve(64);
  const auto book = mixed_book(48);
  const auto set = workload::joint_stress_scenarios(interest, hazard, 9,
                                                    75.0);
  for (const auto level : test_levels()) {
    expect_sweep_matches_naive(set, interest, hazard, book, level);
  }
}

TEST(SweepParity, TenorBookDedupsAndStillMatches) {
  const auto interest = workload::paper_interest_curve(64);
  const auto hazard = workload::paper_hazard_curve(64);
  workload::PortfolioSpec spec;
  spec.count = 64;
  spec.seed = 5;
  spec.maturity_tenor_grid = {1.0, 3.0, 5.0, 7.0, 10.0};
  const auto book = workload::make_portfolio(spec);
  const auto set = workload::parallel_stress_scenarios(hazard, 11, 100.0);
  for (const auto level : test_levels()) {
    SweepPricer sweep(interest, hazard, book, level);
    EXPECT_LE(sweep.book_stats().unique_schedules, 5u * 3u);
    expect_sweep_matches_naive(set, interest, hazard, book, level);
  }
}

// --- invariance under grouping / sharding / workers ------------------------------

TEST(SweepInvariance, RangeSplitsReproduceFullSweepBitwise) {
  const auto interest = workload::paper_interest_curve(64);
  const auto hazard = workload::paper_hazard_curve(64);
  const auto book = mixed_book(48);
  const auto set = workload::mc_hazard_scenarios(hazard, 17);
  for (const auto level : test_levels()) {
    SweepPricer sweep(interest, hazard, book, level);
    std::vector<ScenarioAggregate> whole(set.count);
    sweep.sweep(set.matrix(), 0, set.count, whole);
    // Awkward split points: single scenarios, then chunks of 3 -- both
    // misaligned with every SIMD group width.
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{3}}) {
      std::vector<ScenarioAggregate> pieces(set.count);
      for (std::size_t begin = 0; begin < set.count; begin += chunk) {
        const std::size_t end = std::min(set.count, begin + chunk);
        sweep.sweep(set.matrix(), begin, end,
                    std::span<ScenarioAggregate>(pieces).subspan(
                        begin, end - begin));
      }
      for (std::size_t s = 0; s < set.count; ++s) {
        EXPECT_EQ(pieces[s].min_spread_bps, whole[s].min_spread_bps)
            << "chunk " << chunk << " scenario " << s;
        EXPECT_EQ(pieces[s].max_spread_bps, whole[s].max_spread_bps)
            << "chunk " << chunk << " scenario " << s;
      }
    }
  }
}

TEST(SweepInvariance, RuntimeWorkerAndShardCountsAreBitInvariant) {
  const auto interest = workload::paper_interest_curve(64);
  const auto hazard = workload::paper_hazard_curve(64);
  const auto book = mixed_book(48);
  const auto set = workload::mc_hazard_scenarios(hazard, 23);

  SweepPricer reference(interest, hazard, book, cds::simd::active_level());
  const auto want = reference.sweep(set.matrix());

  for (const unsigned workers : {1u, 2u, 4u}) {
    for (const std::size_t shard_size :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}}) {
      runtime::SweepRuntimeConfig cfg;
      cfg.workers = workers;
      cfg.shard_size = shard_size;
      cfg.level = cds::simd::active_level();
      runtime::SweepRuntime rt(interest, hazard, book, cfg);
      const auto run = rt.run(set.matrix());
      ASSERT_EQ(run.aggregates.size(), want.size());
      for (std::size_t s = 0; s < want.size(); ++s) {
        EXPECT_EQ(run.aggregates[s].min_spread_bps, want[s].min_spread_bps)
            << "workers " << workers << " shard " << shard_size
            << " scenario " << s;
        EXPECT_EQ(run.aggregates[s].max_spread_bps, want[s].max_spread_bps)
            << "workers " << workers << " shard " << shard_size
            << " scenario " << s;
      }
      EXPECT_EQ(run.stats.scenarios, set.count);
      EXPECT_EQ(run.shards.size(),
                runtime::plan_shards(set.count, run.shard_size).size());
    }
  }
}

// --- stats accounting ------------------------------------------------------------

TEST(SweepStats, ColumnSharingAccounting) {
  const auto interest = workload::paper_interest_curve(64);
  const auto hazard = workload::paper_hazard_curve(64);
  const auto book = mixed_book(48);
  SweepPricer sweep(interest, hazard, book, cds::simd::Level::kScalar);
  const std::size_t grids = sweep.book_stats().unique_schedules;
  ASSERT_GT(grids, 1u);

  const auto hz_set = workload::mc_hazard_scenarios(hazard, 10);
  std::vector<ScenarioAggregate> agg(10);
  auto stats = sweep.sweep(hz_set.matrix(), 0, 10, agg);
  EXPECT_EQ(stats.scenarios, 10u);
  EXPECT_EQ(stats.options, book.size());
  EXPECT_EQ(stats.unique_schedules, grids);
  EXPECT_EQ(stats.retabulated_columns, grids * 10);
  EXPECT_EQ(stats.shared_columns, grids * 10);
  EXPECT_DOUBLE_EQ(stats.shared_column_rate(), 0.5);

  const auto joint_set =
      workload::joint_stress_scenarios(interest, hazard, 10, 50.0);
  auto joint_stats = sweep.sweep(joint_set.matrix(), 0, 10, agg);
  EXPECT_EQ(joint_stats.retabulated_columns, 2 * grids * 10);
  EXPECT_EQ(joint_stats.shared_columns, 0u);
  EXPECT_DOUBLE_EQ(joint_stats.shared_column_rate(), 0.0);

  stats.merge(joint_stats);
  EXPECT_EQ(stats.scenarios, 20u);
  EXPECT_EQ(stats.retabulated_columns, grids * 10 + 2 * grids * 10);
}

// --- validation ------------------------------------------------------------------

TEST(SweepValidation, RejectsBadInputs) {
  const auto interest = workload::paper_interest_curve(64);
  const auto hazard = workload::paper_hazard_curve(64);
  const auto book = mixed_book(16);
  EXPECT_THROW(SweepPricer(interest, hazard, {}), Error);

  SweepPricer sweep(interest, hazard, book);
  const auto set = workload::mc_hazard_scenarios(hazard, 4);
  std::vector<ScenarioAggregate> agg(4);

  // Range outside the set.
  EXPECT_THROW(sweep.sweep(set.matrix(), 2, 6,
                           std::span<ScenarioAggregate>(agg)),
               Error);
  // Aggregate span of the wrong length.
  EXPECT_THROW(sweep.sweep(set.matrix(), 0, 3,
                           std::span<ScenarioAggregate>(agg)),
               Error);
  // Value matrix of the wrong shape for the declared kind.
  cds::ScenarioMatrix bad = set.matrix();
  bad.hazard_values = bad.hazard_values.subspan(0, hazard.size());
  EXPECT_THROW(sweep.sweep(bad, 0, 4, std::span<ScenarioAggregate>(agg)),
               Error);
  // Rate kind without rate values.
  cds::ScenarioMatrix no_rates = set.matrix();
  no_rates.kind = ScenarioKind::kRate;
  EXPECT_THROW(
      sweep.sweep(no_rates, 0, 4, std::span<ScenarioAggregate>(agg)),
      Error);
}

TEST(SweepRuntimeBasics, EmptySetAndAccessors) {
  const auto interest = workload::paper_interest_curve(64);
  const auto hazard = workload::paper_hazard_curve(64);
  const auto book = mixed_book(16);
  runtime::SweepRuntimeConfig cfg;
  cfg.workers = 2;
  runtime::SweepRuntime rt(interest, hazard, book, cfg);
  EXPECT_EQ(rt.lanes(), 2u);

  cds::ScenarioMatrix empty;
  empty.kind = ScenarioKind::kHazard;
  empty.count = 0;
  const auto run = rt.run(empty);
  EXPECT_TRUE(run.aggregates.empty());
  EXPECT_TRUE(run.shards.empty());
  EXPECT_EQ(run.stats.scenarios, 0u);
}

}  // namespace
}  // namespace cdsflow
