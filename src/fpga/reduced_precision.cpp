#include "fpga/reduced_precision.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cdsflow::fpga {

namespace {

ResourceUsage scale_ops(const ResourceUsage& u, double lut_scale,
                        double dsp_scale) {
  ResourceUsage out = u;
  out.luts = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(u.luts) * lut_scale));
  out.flip_flops = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(u.flip_flops) * lut_scale));
  out.dsp_slices = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(u.dsp_slices) * dsp_scale));
  return out;
}

}  // namespace

HlsCostModel ReducedPrecisionModel::apply(const HlsCostModel& base) const {
  CDSFLOW_EXPECT(feed_scale >= 1.0, "fp32 feed cannot be narrower than fp64");
  HlsCostModel out = base;
  out.dadd_latency = fadd_latency;
  out.dmul_latency = fmul_latency;
  out.ddiv_latency = fdiv_latency;
  out.dexp_latency = fexp_latency;
  // The carried accumulation II equals the add latency; Listing 1 then only
  // needs `fadd_latency` partial sums and a shorter epilogue.
  out.baseline_accumulation_ii = fadd_latency;
  out.listing1_lanes = static_cast<unsigned>(fadd_latency);
  out.listing1_epilogue_cycles =
      fadd_latency * fadd_latency + fadd_latency;
  // Half-width elements through the same dual-ported URAM.
  out.uram_feed_elements_per_cycle =
      base.uram_feed_elements_per_cycle * feed_scale;
  return out;
}

OperatorCosts ReducedPrecisionModel::apply(const OperatorCosts& base) const {
  OperatorCosts out;
  out.dadd = scale_ops(base.dadd, lut_scale, dsp_scale);
  out.dmul = scale_ops(base.dmul, lut_scale, dsp_scale);
  out.ddiv = scale_ops(base.ddiv, lut_scale, dsp_scale);
  out.dexp = scale_ops(base.dexp, lut_scale, dsp_scale);
  out.dcmp = scale_ops(base.dcmp, lut_scale, dsp_scale);
  return out;
}

}  // namespace cdsflow::fpga
