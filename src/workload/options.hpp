/// \file options.hpp
/// Option portfolio generation.
///
/// The paper streams "many different option configurations" against the
/// fixed curves but does not publish its option mix; this generator draws a
/// realistic book -- maturities uniform over the liquid CDS range, standard
/// payment frequencies, senior-unsecured-like recoveries -- from a seeded
/// deterministic stream. The default parameters are the ones the DESIGN.md
/// calibration fixed so the simulated engines land on the paper's Table I
/// ratios (mean maturity 5.5y, quarterly payments => ~22 time points per
/// option on average).

#pragma once

#include <cstdint>
#include <vector>

#include "cds/types.hpp"

namespace cdsflow::workload {

struct PortfolioSpec {
  std::size_t count = 1024;
  double maturity_min_years = 1.0;
  double maturity_max_years = 10.0;
  /// When non-empty, maturities are drawn uniformly from this discrete set
  /// instead of the continuous [min, max] range -- the standard-tenor quoting
  /// convention of real CDS books (1/3/5/7/10y), under which many options
  /// share a payment schedule (the batch pricer's dedup case). Entries must
  /// be positive.
  std::vector<double> maturity_tenor_grid;
  /// Candidate payment frequencies with selection weights; the default is
  /// all-quarterly (the standard CDS coupon schedule).
  std::vector<double> frequencies = {4.0};
  std::vector<double> frequency_weights = {1.0};
  double recovery_min = 0.2;
  double recovery_max = 0.6;
  std::uint64_t seed = 42;

  void validate() const;
};

/// Draws `spec.count` options; ids are 0..count-1 in draw order.
std::vector<cds::CdsOption> make_portfolio(const PortfolioSpec& spec);

/// Total number of schedule time points across the portfolio (work-size
/// metric used by the engines and benches).
std::uint64_t total_time_points(const std::vector<cds::CdsOption>& options);

}  // namespace cdsflow::workload
