/// \file replica_pool.hpp
/// Free-list of engine-replica indices shared by the batch and streaming
/// runtimes: each in-flight task checks out an exclusive replica for the
/// duration of its shard / micro-batch. The runtimes size the pool to the
/// thread-pool width, so acquire() never actually waits -- the assertion
/// documents (and enforces) that invariant.

#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace cdsflow::runtime {

class ReplicaPool {
 public:
  explicit ReplicaPool(std::size_t n) {
    free_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) free_.push_back(n - 1 - i);
  }

  std::size_t acquire() CDSFLOW_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    CDSFLOW_ASSERT(!free_.empty(), "more in-flight tasks than replicas");
    const std::size_t idx = free_.back();
    free_.pop_back();
    return idx;
  }

  void release(std::size_t idx) CDSFLOW_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    free_.push_back(idx);
  }

  /// RAII checkout so worker lambdas release on every exit path (including
  /// a throwing engine).
  class Lease {
   public:
    explicit Lease(ReplicaPool& pool) : pool_(pool), idx_(pool.acquire()) {}
    ~Lease() { pool_.release(idx_); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    std::size_t index() const { return idx_; }

   private:
    ReplicaPool& pool_;
    std::size_t idx_;
  };

 private:
  Mutex mutex_;
  std::vector<std::size_t> free_ CDSFLOW_GUARDED_BY(mutex_);
};

}  // namespace cdsflow::runtime
