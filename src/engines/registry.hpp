/// \file registry.hpp
/// Name-based engine construction for examples, benches, the CLI and the
/// sharded runtime.
///
/// Recognised names:
///   "cpu"                   single-thread CPU engine (scalar kernel)
///   "cpu-mt"                CPU engine on all hardware threads
///   "cpu-mt<N>"             CPU engine on N threads (e.g. "cpu-mt8")
///   "cpu-batch"             single-thread batched SoA fast-path kernel
///   "cpu-batch-mt"          batch kernel on all hardware threads
///   "cpu-batch-mt<N>"       batch kernel on N threads
///   "cpu-vec"               batch kernel on the SIMD vector kernels at the
///                           host's best level (cds/vector_kernel.hpp;
///                           scalar fallback when the host has none)
///   "cpu-vec-mt[<N>]"       vector kernel on all / N threads
///   "cpu-risk"              scalar kernel + per-option Greeks (naive
///                           bumped-repricing loop)
///   "cpu-risk-mt[<N>]"      scalar risk kernel on all / N threads
///   "cpu-batch-risk"        batched Greeks over the precomputed grids
///                           (BatchPricer::price_with_sensitivities)
///   "cpu-batch-risk-mt[<N>]"  batched risk kernel on all / N threads
///   "cpu-vec-risk[-mt[<N>]]"  batched Greeks on the vector kernels
///   "cpu-sweep[-mt[<N>]]"   scenario-sweep family (cds::SweepPricer /
///                           runtime::SweepRuntime): the planner probes and
///                           plans these with the scenario count as the
///                           workload axis; for a plain price() call the
///                           engine is "cpu-vec" bit for bit
///   "xilinx-baseline"       Vitis library model
///   "dataflow"              optimised dataflow, restart per option
///   "dataflow-interoption"  free-running dataflow
///   "vectorised"            vectorised free-running dataflow
///   "multi-<N>"             N vectorised engines (e.g. "multi-5")
///   "cluster-<M>x<N>"       M cards of N vectorised engines each
///
/// The CPU family name is assembled as
/// "cpu[-batch|-vec|-sweep][-risk][-mt[N]]": the optional "-batch" token
/// selects the fast-path kernel, "-vec" the same kernel on the SIMD lanes,
/// "-sweep" the scenario-sweep family, "-risk" switches the run to
/// sensitivities, "-mt[N]" sets the thread count. Risk-mode details (bump
/// size, ladder edges) ride in the CpuEngineConfig argument.
///
/// Determinism guarantee: engine construction is pure (no global state), and
/// every engine the registry returns prices deterministically for a fixed
/// name + config + inputs -- thread-count variants of the CPU engines
/// partition work but never change per-option arithmetic, so "cpu-batch-mt8"
/// reproduces "cpu-batch" bit-for-bit, and likewise for the risk variants.
/// That is the property the sharded runtime's submission-order merge relies
/// on (see runtime/portfolio_runtime.hpp).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cds/curve.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/engine.hpp"

namespace cdsflow::engine {

/// Constructs an engine by name. Throws cdsflow::Error for unknown names.
std::unique_ptr<Engine> make_engine(const std::string& name,
                                    const cds::TermStructure& interest,
                                    const cds::TermStructure& hazard,
                                    const FpgaEngineConfig& fpga_config = {},
                                    const CpuEngineConfig& cpu_config = {});

/// Parses a "cpu[-batch|-vec|-sweep][-risk][-mt[N]]" family name into
/// `config` (batch_kernel / vector_kernel / sweep_kernel / risk_mode /
/// threads; other fields are left untouched). Returns false -- leaving `config` unmodified -- when
/// `name` is not a CPU-family name. The one home of the CPU name grammar:
/// make_engine uses it, and the streaming runtime reuses it so
/// `cdsflow_cli stream` accepts the same engine names (risk mode included)
/// as the batch commands.
bool parse_cpu_engine_name(const std::string& name, CpuEngineConfig& config);

/// Assembles the "cpu[-batch|-vec|-sweep][-risk][-mt[N]]" family name for
/// the given kernel/mode/thread count -- the inverse of
/// parse_cpu_engine_name (threads == 1 omits the -mt token, threads == 0
/// means all hardware threads, "-mt"; sweep_kernel wins over vector_kernel
/// wins over batch_kernel, as in CpuEngine::name). The planner uses it to
/// build its CPU candidate names.
std::string cpu_engine_name(bool batch_kernel, bool vector_kernel,
                            bool sweep_kernel, bool risk_mode,
                            unsigned threads);

/// Pre-sweep-kernel spelling: the 5-argument form with sweep_kernel =
/// false.
std::string cpu_engine_name(bool batch_kernel, bool vector_kernel,
                            bool risk_mode, unsigned threads);

/// Pre-vector-kernel spelling, kept so existing call sites read unchanged:
/// cpu_engine_name(batch, risk, threads) == the 4-argument form with
/// vector_kernel = false.
std::string cpu_engine_name(bool batch_kernel, bool risk_mode,
                            unsigned threads);

/// All fixed registry names (the parametrised multi-N/cpu-mtN forms are
/// represented by "multi-5" and "cpu-mt").
std::vector<std::string> engine_names();

}  // namespace cdsflow::engine
