/// \file test_report.cpp
/// Unit tests for the report module: table rendering in all three formats,
/// the measurement protocol, comparison rows, and the paper constants'
/// internal consistency.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "engines/cpu_engine.hpp"
#include "report/experiment.hpp"
#include "report/paper.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

namespace cdsflow::report {
namespace {

Table sample_table() {
  Table t("Sample");
  t.set_columns({"Name", "Value"});
  t.add_row({"alpha", "1.0"});
  t.add_row({"beta", "2.5"});
  return t;
}

TEST(Table, TextRenderingAlignsColumns) {
  const std::string out = sample_table().render_text();
  EXPECT_NE(out.find("Sample"), std::string::npos);
  EXPECT_NE(out.find("| Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Right-aligned numeric column.
  EXPECT_NE(out.find("  1.0 |"), std::string::npos);
}

TEST(Table, MarkdownRendering) {
  const std::string out = sample_table().render_markdown();
  EXPECT_NE(out.find("| Name | Value |"), std::string::npos);
  EXPECT_NE(out.find("| --- | ---: |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1.0 |"), std::string::npos);
}

TEST(Table, CsvRenderingWithQuoting) {
  Table t;
  t.set_columns({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"quote\"inside", "line"});
  const std::string out = t.render_csv();
  EXPECT_NE(out.find("a,b"), std::string::npos);
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, SeparatorOnlyAffectsText) {
  Table t;
  t.set_columns({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 3u);
  const std::string md = t.render_markdown();
  EXPECT_EQ(md.find("+--"), std::string::npos);
}

TEST(Table, EnforcesShape) {
  Table t;
  EXPECT_THROW(t.add_row({"x"}), Error);       // columns not set
  EXPECT_THROW(t.render_text(), Error);
  t.set_columns({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_THROW(t.set_columns({}), Error);
  EXPECT_THROW(t.set_columns({"a"}, {Align::kLeft, Align::kRight}), Error);
}

TEST(Measure, AveragesRequestedRuns) {
  const auto scenario = workload::smoke_scenario(6);
  engine::CpuEngine engine(scenario.interest, scenario.hazard);
  const auto m = measure(engine, scenario.options, 3, "label");
  EXPECT_EQ(m.label, "label");
  EXPECT_EQ(m.options_per_second.count(), 3u);
  EXPECT_GT(m.mean_ops(), 0.0);
  EXPECT_EQ(m.last_run.results.size(), scenario.options.size());
  EXPECT_THROW(measure(engine, scenario.options, 0), Error);
}

TEST(Measure, DefaultLabelIsEngineName) {
  const auto scenario = workload::smoke_scenario(4);
  engine::CpuEngine engine(scenario.interest, scenario.hazard);
  EXPECT_EQ(measure(engine, scenario.options, 1).label, "cpu");
}

TEST(Comparison, TableShowsDeltas) {
  const auto table = comparison_table(
      "T", "Options/second",
      {{"engine A", 110.0, 100.0}, {"engine B", 50.0, 0.0}});
  const std::string out = table.render_text();
  EXPECT_NE(out.find("+10.0%"), std::string::npos);
  EXPECT_NE(out.find("engine B"), std::string::npos);
  // No paper value => dashes.
  EXPECT_NE(out.find(" - "), std::string::npos);
}

TEST(PaperConstants, HeadlineRatiosMatchProse) {
  // "around eight times faster ... than the original Xilinx library version"
  EXPECT_NEAR(paper::kSpeedupVsLibrary, 8.0, 0.25);
  // "outperforming the CPU by around 1.55 times"
  EXPECT_NEAR(paper::kFpgaVsCpu, 1.5, 0.06);
  // "consuming 4.7 times less power"
  EXPECT_NEAR(paper::kPowerRatio, 4.7, 0.05);
  // "around seven times the power efficiency"
  EXPECT_NEAR(paper::kEfficiencyRatio, 7.06, 0.1);
}

TEST(PaperConstants, TableIIEfficienciesAreConsistent) {
  // Options/W column = options/s / W within rounding.
  EXPECT_NEAR(paper::kCpu24CoreOptsPerSec / paper::kCpu24CoreWatts,
              paper::kCpu24CoreOptsPerWatt, 0.5);
  EXPECT_NEAR(paper::kFpga5EngineOptsPerSec / paper::kFpga5EngineWatts,
              paper::kFpga5EngineOptsPerWatt, 0.5);
  EXPECT_NEAR(paper::kFpga2EngineOptsPerSec / paper::kFpga2EngineWatts,
              paper::kFpga2EngineOptsPerWatt, 0.5);
}

TEST(PaperConstants, TableIRatiosMatchSectionIII) {
  // "our initial optimised engine was around twice as fast as the Xilinx
  // open source implementation"
  EXPECT_NEAR(paper::kOptimisedDataflowOptsPerSec /
                  paper::kXilinxLibraryOptsPerSec,
              2.13, 0.05);
  // "significantly improved our performance by almost two times"
  EXPECT_NEAR(paper::kInterOptionOptsPerSec /
                  paper::kOptimisedDataflowOptsPerSec,
              1.80, 0.05);
  // "which doubled performance"
  EXPECT_NEAR(paper::kVectorisedOptsPerSec / paper::kInterOptionOptsPerSec,
              2.08, 0.05);
}

}  // namespace
}  // namespace cdsflow::report
