/// \file solver.hpp
/// Scalar root finding for the calibration tools (hazard-curve
/// bootstrapping inverts the pricer: find the hazard level that reprices a
/// quoted spread). Brent's method with a bisection fallback: derivative-free
/// and robust on the monotone-but-kinked objectives CDS calibration
/// produces.

#pragma once

#include <functional>

namespace cdsflow {

struct RootFindResult {
  double root = 0.0;
  /// Objective value at the root (|f| <= tolerance on success).
  double residual = 0.0;
  int iterations = 0;
  bool converged = false;
};

struct RootFindOptions {
  double f_tolerance = 1e-12;   ///< |f(x)| considered zero
  double x_tolerance = 1e-14;   ///< bracket width considered converged
  int max_iterations = 200;
};

/// Finds a root of `f` in [lo, hi]. Requires f(lo) and f(hi) to have
/// opposite signs (throws cdsflow::Error otherwise).
RootFindResult find_root_brent(const std::function<double(double)>& f,
                               double lo, double hi,
                               RootFindOptions options = {});

/// Expands [lo, hi] geometrically (upwards) until it brackets a sign change
/// of `f`, then solves. `hi` grows at most `max_expansions` times by factor
/// 2. Convenience for positive-quantity calibration (hazard rates).
RootFindResult find_root_expanding(const std::function<double(double)>& f,
                                   double lo, double hi,
                                   int max_expansions = 60,
                                   RootFindOptions options = {});

}  // namespace cdsflow
