#include "fpga/power.hpp"

#include "common/error.hpp"

namespace cdsflow::fpga {

double power_efficiency(double options_per_second, double watts) {
  CDSFLOW_EXPECT(watts > 0.0, "power efficiency requires positive watts");
  return options_per_second / watts;
}

}  // namespace cdsflow::fpga
