/// \file csv.hpp
/// CSV import/export for curves, portfolios and results -- the on-disk
/// interface a desk integrating the engine actually needs. Formats are
/// deliberately plain:
///
///   curve:      time_years,rate            (header required)
///   portfolio:  id,maturity_years,payment_frequency,recovery_rate
///   results:    id,spread_bps
///   risk:       id,spread_bps,cs01,ir01,rec01,jtd[,cs01_bucket_<i>...]
///   quotes:     tenor_years,spread_bps
///   stream:     batch,events,lane,pricing_seconds,max_latency_us,
///               deadline_misses (per micro-batch trace of a streaming run)
///   sweep:      scenario,min_spread_bps,max_spread_bps (per-scenario
///               aggregates of a scenario sweep, in scenario order)
///
/// Readers validate structure eagerly (header, field counts, numeric
/// parses, curve monotonicity / option ranges) and report the offending
/// line in the error message.

#pragma once

#include <string>
#include <vector>

#include "cds/bootstrap.hpp"
#include "cds/curve.hpp"
#include "cds/risk.hpp"
#include "cds/types.hpp"

namespace cdsflow::io {

// --- curves -----------------------------------------------------------------
void write_curve_csv(const std::string& path, const cds::TermStructure& curve);
cds::TermStructure read_curve_csv(const std::string& path);

// --- portfolios --------------------------------------------------------------
void write_portfolio_csv(const std::string& path,
                         const std::vector<cds::CdsOption>& options);
std::vector<cds::CdsOption> read_portfolio_csv(const std::string& path);

// --- results ------------------------------------------------------------------
void write_results_csv(const std::string& path,
                       const std::vector<cds::SpreadResult>& results);
std::vector<cds::SpreadResult> read_results_csv(const std::string& path);

// --- risk results -------------------------------------------------------------
/// Writes one row per option: id + spread + the four Greeks, followed by the
/// CS01 ladder buckets when `ladder_buckets > 0` (`ladder` is row-major
/// [option][bucket] as produced by the risk engines). `results`, `greeks`
/// and `ladder` must agree in length.
void write_sensitivities_csv(const std::string& path,
                             const std::vector<cds::SpreadResult>& results,
                             const std::vector<cds::Sensitivities>& greeks,
                             const std::vector<double>& ladder = {},
                             std::size_t ladder_buckets = 0);

// --- stream micro-batch trace -------------------------------------------------
/// One row per streaming micro-batch: index, option events priced, lane,
/// pricing time, worst ingest-to-result latency (microseconds) and deadline
/// misses. A plain row struct so io stays independent of the runtime layer;
/// the CLI converts runtime::StreamBatchOutcome records into these.
struct StreamBatchRow {
  std::size_t batch = 0;
  std::size_t events = 0;
  unsigned lane = 0;
  double pricing_seconds = 0.0;
  double max_latency_us = 0.0;
  std::uint64_t deadline_misses = 0;
};
void write_stream_batches_csv(const std::string& path,
                              const std::vector<StreamBatchRow>& rows);

// --- scenario-sweep aggregates ------------------------------------------------
/// One row per scenario: index plus the book's min/max par spread under
/// that scenario. A plain row struct so io stays independent of the cds
/// sweep layer; the CLI converts cds::ScenarioAggregate records into these.
struct SweepAggregateRow {
  std::size_t scenario = 0;
  double min_spread_bps = 0.0;
  double max_spread_bps = 0.0;
};
void write_sweep_aggregates_csv(const std::string& path,
                                const std::vector<SweepAggregateRow>& rows);

// --- per-tenant latency CDF ---------------------------------------------------
/// One row per (tenant, percentile): the tenant's ingest-to-response latency
/// CDF from the pricing service, microseconds. A plain row struct so io
/// stays independent of the service layer; latency_cdf_rows() converts a
/// tenant's raw latency samples into rows at the standard percentile grid
/// (1, 5, 10, 25, 50, 75, 90, 95, 99, 99.9, 100).
struct LatencyCdfRow {
  std::uint32_t tenant = 0;
  double percentile = 0.0;
  double latency_us = 0.0;
};
std::vector<LatencyCdfRow> latency_cdf_rows(std::uint32_t tenant,
                                            std::vector<double> latency_us);
void write_latency_cdf_csv(const std::string& path,
                           const std::vector<LatencyCdfRow>& rows);

// --- spread quotes (bootstrapping input) ----------------------------------------
void write_quotes_csv(const std::string& path,
                      const std::vector<cds::SpreadQuote>& quotes);
std::vector<cds::SpreadQuote> read_quotes_csv(const std::string& path);

}  // namespace cdsflow::io
