#include "runtime/sweep_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "runtime/replica_pool.hpp"
#include "runtime/shard.hpp"
#include "runtime/thread_pool.hpp"

namespace cdsflow::runtime {

SweepRuntime::SweepRuntime(cds::TermStructure interest,
                           cds::TermStructure hazard,
                           std::span<const cds::CdsOption> options,
                           SweepRuntimeConfig config)
    : config_(config) {
  lanes_ = config_.workers != 0
               ? config_.workers
               : std::max(1u, std::thread::hardware_concurrency());
  pricers_.reserve(lanes_);
  for (unsigned i = 0; i < lanes_; ++i) {
    pricers_.emplace_back(interest, hazard, options, config_.level);
  }
}

SweepRun SweepRuntime::run(const cds::ScenarioMatrix& scenarios) {
  SweepRun out;
  out.lanes = lanes_;
  out.shard_size = config_.shard_size != 0
                       ? config_.shard_size
                       : auto_shard_size(scenarios.count, lanes_);
  if (scenarios.count == 0) return out;

  const auto plan = plan_shards(scenarios.count, out.shard_size);
  out.aggregates.resize(scenarios.count);
  std::vector<cds::SweepStats> shard_stats(plan.size());
  std::vector<double> shard_seconds(plan.size(), 0.0);

  // Each shard writes a disjoint slice of `aggregates` (its own scenario
  // range), so the output is in submission order by construction and no
  // merge reordering is ever needed.
  const auto run_shard = [&](const Shard& shard, cds::SweepPricer& pricer) {
    const auto s0 = std::chrono::steady_clock::now();
    shard_stats[shard.index] = pricer.sweep(
        scenarios, shard.begin, shard.end,
        std::span<cds::ScenarioAggregate>(out.aggregates)
            .subspan(shard.begin, shard.size()));
    shard_seconds[shard.index] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - s0)
            .count();
  };

  const auto t0 = std::chrono::steady_clock::now();
  if (lanes_ == 1) {
    for (const auto& shard : plan) run_shard(shard, pricers_.front());
  } else {
    ReplicaPool replica_pool(pricers_.size());
    ThreadPool pool(lanes_);
    std::vector<std::future<void>> pending;
    pending.reserve(plan.size());
    for (const auto& shard : plan) {
      pending.push_back(pool.submit([this, &replica_pool, &run_shard, &shard] {
        const ReplicaPool::Lease lease(replica_pool);
        run_shard(shard, pricers_[lease.index()]);
      }));
    }
    for (auto& f : pending) f.get();  // rethrows the first shard failure
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Stats and accounting merge in shard (= submission) order.
  out.shards.reserve(plan.size());
  std::vector<double> task_seconds;
  task_seconds.reserve(plan.size());
  for (const auto& shard : plan) {
    out.stats.merge(shard_stats[shard.index]);
    out.shards.push_back({shard.index, shard.begin, shard.end,
                          shard_seconds[shard.index], /*lane=*/0});
    task_seconds.push_back(shard_seconds[shard.index]);
  }
  std::vector<unsigned> lane_of;
  out.modelled_seconds = list_schedule_makespan(task_seconds, lanes_, &lane_of);
  for (std::size_t i = 0; i < out.shards.size(); ++i) {
    out.shards[i].lane = lane_of[i];
  }
  if (out.modelled_seconds > 0.0) {
    out.modelled_scenarios_per_second =
        static_cast<double>(scenarios.count) / out.modelled_seconds;
  }
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (out.wall_seconds > 0.0) {
    out.wall_scenarios_per_second =
        static_cast<double>(scenarios.count) / out.wall_seconds;
  }
  return out;
}

}  // namespace cdsflow::runtime
