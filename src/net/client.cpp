#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace cdsflow::net {

Client Client::connect_unix(const std::string& path) {
  CDSFLOW_EXPECT(path.size() < sizeof(sockaddr_un{}.sun_path),
                 "unix socket path too long");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  CDSFLOW_EXPECT(fd >= 0, "socket(AF_UNIX) failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    CDSFLOW_EXPECT(false, "connect(" + path + ") failed: " +
                              std::strerror(err));
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CDSFLOW_EXPECT(fd >= 0, "socket(AF_INET) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  CDSFLOW_EXPECT(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                 "invalid IPv4 address '" + host + "'");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    CDSFLOW_EXPECT(false, "connect(" + host + ":" + std::to_string(port) +
                              ") failed: " + std::strerror(err));
  }
  return Client(fd);
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

void Client::send(const std::vector<std::uint8_t>& bytes) {
  CDSFLOW_EXPECT(fd_ >= 0, "client is not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    CDSFLOW_EXPECT(n > 0,
                   std::string("send failed: ") + std::strerror(errno));
    sent += static_cast<std::size_t>(n);
  }
}

Frame Client::read_frame() {
  CDSFLOW_EXPECT(fd_ >= 0, "client is not connected");
  for (;;) {
    if (auto frame = reader_.next()) return std::move(*frame);
    CDSFLOW_EXPECT(!reader_.failed(),
                   "malformed frame from server: " + reader_.error());
    std::uint8_t chunk[65536];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    CDSFLOW_EXPECT(n >= 0, std::string("recv failed: ") +
                               std::strerror(errno));
    CDSFLOW_EXPECT(n > 0, "server closed the connection");
    CDSFLOW_EXPECT(reader_.feed(chunk, static_cast<std::size_t>(n)),
                   "malformed frame from server: " + reader_.error());
  }
}

std::optional<Frame> Client::read_frame_for(std::uint64_t timeout_us) {
  CDSFLOW_EXPECT(fd_ >= 0, "client is not connected");
  for (;;) {
    if (auto frame = reader_.next()) return frame;
    CDSFLOW_EXPECT(!reader_.failed(),
                   "malformed frame from server: " + reader_.error());
    pollfd pfd{fd_, POLLIN, 0};
    const int timeout_ms =
        static_cast<int>((timeout_us + 999) / 1000);  // round up, >= 1ms
    const int rc = ::poll(&pfd, 1, std::max(1, timeout_ms));
    if (rc == 0) return std::nullopt;
    CDSFLOW_EXPECT(rc > 0 || errno == EINTR,
                   std::string("poll failed: ") + std::strerror(errno));
    if (rc < 0) continue;
    std::uint8_t chunk[65536];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    CDSFLOW_EXPECT(n >= 0, std::string("recv failed: ") +
                               std::strerror(errno));
    CDSFLOW_EXPECT(n > 0, "server closed the connection");
    CDSFLOW_EXPECT(reader_.feed(chunk, static_cast<std::size_t>(n)),
                   "malformed frame from server: " + reader_.error());
  }
}

void Client::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace cdsflow::net
