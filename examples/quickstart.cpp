/// \file quickstart.cpp
/// Five-minute tour of the cdsflow public API:
///   1. build interest/hazard term structures,
///   2. describe CDS options,
///   3. price them on the golden reference model,
///   4. price the same book on a simulated FPGA engine and compare.
///
/// Run:  ./quickstart

#include <iostream>

#include "cds/pricer.hpp"
#include "common/format.hpp"
#include "engines/vectorised_engine.hpp"
#include "workload/curves.hpp"

int main() {
  using namespace cdsflow;

  // 1. Term structures: (year-fraction, rate) knots. Real deployments load
  //    these from market data; generators produce realistic shapes.
  workload::CurveSpec interest_spec;
  interest_spec.points = 1024;        // the paper's setup
  interest_spec.base_rate = 0.02;     // ~2% rates
  interest_spec.shape = workload::CurveShape::kUpwardSloping;
  const cds::TermStructure interest = workload::make_curve(interest_spec);

  workload::CurveSpec hazard_spec;
  hazard_spec.points = 1024;
  hazard_spec.base_rate = 0.03;       // ~300 bps credit risk
  hazard_spec.shape = workload::CurveShape::kHumped;
  const cds::TermStructure hazard = workload::make_curve(hazard_spec);

  // 2. Options: maturity (years), premium frequency (per year), recovery.
  const std::vector<cds::CdsOption> book = {
      {.id = 0, .maturity_years = 3.0, .payment_frequency = 4.0, .recovery_rate = 0.40},
      {.id = 1, .maturity_years = 5.0, .payment_frequency = 4.0, .recovery_rate = 0.40},
      {.id = 2, .maturity_years = 7.0, .payment_frequency = 2.0, .recovery_rate = 0.25},
      {.id = 3, .maturity_years = 10.0, .payment_frequency = 12.0, .recovery_rate = 0.55},
  };

  // 3. Golden model: scalar reference maths, with the full leg breakdown.
  const cds::ReferencePricer pricer(interest, hazard);
  std::cout << "golden reference model:\n";
  for (const auto& option : book) {
    const auto b = pricer.breakdown(option);
    std::cout << "  option " << option.id << ": spread "
              << fixed(b.spread_bps, 2) << " bps  (premium leg "
              << fixed(b.premium_leg, 4) << ", protection leg "
              << fixed(b.protection_leg, 4) << ")\n";
  }

  // 4. FPGA engine (simulated): same spreads, plus a performance model.
  engine::VectorisedEngine fpga_engine(interest, hazard, {});
  const auto run = fpga_engine.price(book);
  std::cout << "\nvectorised FPGA engine (simulated Alveo U280 kernel):\n";
  for (const auto& result : run.results) {
    std::cout << "  option " << result.id << ": spread "
              << fixed(result.spread_bps, 2) << " bps\n";
  }
  std::cout << "\nkernel cycles: " << with_thousands(double(run.kernel_cycles), 0)
            << "  ->  " << with_thousands(run.options_per_second, 0)
            << " options/s at 300 MHz (incl. PCIe model)\n";
  return 0;
}
