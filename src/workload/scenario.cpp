#include "workload/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"

namespace cdsflow::workload {

Scenario paper_scenario(std::size_t n_options, std::uint64_t seed) {
  Scenario s;
  s.name = "paper";
  s.description =
      "1024 interest + 1024 hazard rates over 30y; maturities U[1,10]y, "
      "quarterly premiums, recovery U[0.2,0.6] (calibration in DESIGN.md)";
  s.interest = paper_interest_curve();
  s.hazard = paper_hazard_curve();
  PortfolioSpec spec;
  spec.count = n_options;
  spec.seed = seed;
  s.options = make_portfolio(spec);
  return s;
}

Scenario smoke_scenario(std::size_t n_options, std::uint64_t seed) {
  Scenario s;
  s.name = "smoke";
  s.description = "64-point curves, small book; fast unit/integration tests";
  CurveSpec interest;
  interest.points = 64;
  interest.span_years = 12.0;
  interest.base_rate = 0.02;
  interest.shape = CurveShape::kUpwardSloping;
  interest.seed = 3;
  CurveSpec hazard = interest;
  hazard.base_rate = 0.04;
  hazard.shape = CurveShape::kHumped;
  hazard.seed = 5;
  s.interest = make_curve(interest);
  s.hazard = make_curve(hazard);
  PortfolioSpec spec;
  spec.count = n_options;
  spec.maturity_min_years = 0.5;
  spec.maturity_max_years = 8.0;
  spec.frequencies = {1.0, 2.0, 4.0, 12.0};
  spec.frequency_weights = {1.0, 1.0, 2.0, 1.0};
  spec.seed = seed;
  s.options = make_portfolio(spec);
  return s;
}

Scenario stressed_scenario(std::size_t n_options, std::uint64_t seed) {
  Scenario s;
  s.name = "stressed";
  s.description =
      "stressed credit regime: inverted elevated hazards, mixed coupon "
      "frequencies";
  CurveSpec interest;
  interest.points = 1024;
  interest.span_years = 30.0;
  interest.base_rate = 0.045;
  interest.shape = CurveShape::kStressed;
  interest.seed = 17;
  // Built explicitly rather than copied from the interest spec: the hazard
  // curve's geometry is its own contract, not an accident of whatever the
  // interest spec happens to hold (a copy silently re-shapes the hazard
  // curve whenever someone tunes the interest spec above).
  CurveSpec hazard;
  hazard.points = 1024;
  hazard.span_years = 30.0;
  hazard.base_rate = 0.09;
  hazard.shape = CurveShape::kStressed;
  hazard.seed = 19;
  s.interest = make_curve(interest);
  s.hazard = make_curve(hazard);
  PortfolioSpec spec;
  spec.count = n_options;
  spec.maturity_min_years = 0.25;
  spec.maturity_max_years = 7.0;
  spec.frequencies = {4.0, 12.0};
  spec.frequency_weights = {3.0, 1.0};
  spec.recovery_min = 0.1;
  spec.recovery_max = 0.4;
  spec.seed = seed;
  s.options = make_portfolio(spec);
  return s;
}

namespace {

/// Hazard rates must stay positive for the scenarios to be priceable (the
/// annuity check fires otherwise, exactly as it would for a degenerate
/// market curve); interest rates may go negative, so only hazard rows are
/// floored.
constexpr double kMinHazardRate = 1e-8;
constexpr double kBasisPoint = 1e-4;

std::vector<double> copy_times(const cds::TermStructure& curve) {
  return curve.times();
}

}  // namespace

cds::ScenarioMatrix ScenarioSet::matrix() const {
  cds::ScenarioMatrix m;
  m.kind = kind;
  m.count = count;
  m.hazard_values = hazard_values;
  m.rate_values = rate_values;
  return m;
}

cds::TermStructure ScenarioSet::hazard_curve(std::size_t s) const {
  CDSFLOW_EXPECT(s < count && !hazard_times.empty(),
                 "scenario set has no hazard row for this index");
  const std::size_t n = hazard_times.size();
  return cds::TermStructure(
      hazard_times, std::vector<double>(hazard_values.begin() + s * n,
                                        hazard_values.begin() + (s + 1) * n));
}

cds::TermStructure ScenarioSet::rate_curve(std::size_t s) const {
  CDSFLOW_EXPECT(s < count && !rate_times.empty(),
                 "scenario set has no rate row for this index");
  const std::size_t n = rate_times.size();
  return cds::TermStructure(
      rate_times, std::vector<double>(rate_values.begin() + s * n,
                                      rate_values.begin() + (s + 1) * n));
}

ScenarioSet parallel_stress_scenarios(const cds::TermStructure& hazard,
                                      std::size_t count, double max_shock_bp) {
  CDSFLOW_EXPECT(count >= 1, "scenario set needs at least one scenario");
  ScenarioSet set;
  set.name = "parallel-stress";
  set.kind = cds::ScenarioKind::kHazard;
  set.count = count;
  set.hazard_times = copy_times(hazard);
  const std::vector<double>& base = hazard.values();
  const std::size_t n = base.size();
  set.hazard_values.resize(count * n);
  for (std::size_t s = 0; s < count; ++s) {
    // Evenly spaced ladder over [-max, +max]; a single scenario sits at 0.
    const double frac =
        count == 1 ? 0.0
                   : 2.0 * static_cast<double>(s) /
                             static_cast<double>(count - 1) -
                         1.0;
    const double shock = frac * max_shock_bp * kBasisPoint;
    for (std::size_t j = 0; j < n; ++j) {
      set.hazard_values[s * n + j] = std::max(base[j] + shock, kMinHazardRate);
    }
  }
  return set;
}

ScenarioSet bucketed_stress_scenarios(const cds::TermStructure& hazard,
                                      std::size_t buckets, double shock_bp) {
  CDSFLOW_EXPECT(buckets >= 1 && buckets <= hazard.size(),
                 "bucket count must be in [1, knots]");
  ScenarioSet set;
  set.name = "bucketed-stress";
  set.kind = cds::ScenarioKind::kHazard;
  set.count = 2 * buckets;
  set.hazard_times = copy_times(hazard);
  const std::vector<double>& base = hazard.values();
  const std::size_t n = base.size();
  const double shock = shock_bp * kBasisPoint;
  set.hazard_values.resize(set.count * n);
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t lo = b * n / buckets;
    const std::size_t hi = (b + 1) * n / buckets;
    for (unsigned dir = 0; dir < 2; ++dir) {
      const std::size_t s = 2 * b + dir;
      const double signed_shock = dir == 0 ? shock : -shock;
      for (std::size_t j = 0; j < n; ++j) {
        const double bump = (j >= lo && j < hi) ? signed_shock : 0.0;
        set.hazard_values[s * n + j] =
            std::max(base[j] + bump, kMinHazardRate);
      }
    }
  }
  return set;
}

ScenarioSet replay_scenarios(const cds::TermStructure& interest,
                             std::size_t count, double step_bp,
                             std::uint64_t seed) {
  CDSFLOW_EXPECT(count >= 1, "scenario set needs at least one scenario");
  ScenarioSet set;
  set.name = "replay";
  set.kind = cds::ScenarioKind::kRate;
  set.count = count;
  set.rate_times = copy_times(interest);
  const std::size_t n = interest.size();
  set.rate_values.resize(count * n);
  // A curve *sequence*: each state walks from the previous one, scenario
  // s's innovations drawn from an independent child stream so the matrix
  // is a pure function of (curve, count, step_bp, seed).
  const Rng master(seed);
  std::vector<double> state = interest.values();
  for (std::size_t s = 0; s < count; ++s) {
    Rng rng = master.split(s);
    for (std::size_t j = 0; j < n; ++j) {
      state[j] += rng.normal(0.0, step_bp * kBasisPoint);
      set.rate_values[s * n + j] = state[j];
    }
  }
  return set;
}

ScenarioSet mc_hazard_scenarios(const cds::TermStructure& hazard,
                                std::size_t count, double vol,
                                std::uint64_t seed) {
  CDSFLOW_EXPECT(count >= 1, "scenario set needs at least one scenario");
  ScenarioSet set;
  set.name = "mc-hazard";
  set.kind = cds::ScenarioKind::kHazard;
  set.count = count;
  set.hazard_times = copy_times(hazard);
  const std::vector<double>& base = hazard.values();
  const std::size_t n = base.size();
  set.hazard_values.resize(count * n);
  const Rng master(seed);
  for (std::size_t s = 0; s < count; ++s) {
    // Each path owns an independent child stream: rows do not depend on
    // each other, so any sharding of the *generation* (were it ever
    // parallelised) or of the sweep reproduces identical bits.
    Rng rng = master.split(s);
    for (std::size_t j = 0; j < n; ++j) {
      set.hazard_values[s * n + j] =
          std::max(base[j] * std::exp(vol * rng.normal()), kMinHazardRate);
    }
  }
  return set;
}

ScenarioSet joint_stress_scenarios(const cds::TermStructure& interest,
                                   const cds::TermStructure& hazard,
                                   std::size_t count, double max_shock_bp) {
  CDSFLOW_EXPECT(count >= 1, "scenario set needs at least one scenario");
  ScenarioSet set;
  set.name = "joint-stress";
  set.kind = cds::ScenarioKind::kJoint;
  set.count = count;
  set.hazard_times = copy_times(hazard);
  set.rate_times = copy_times(interest);
  const std::vector<double>& hz = hazard.values();
  const std::vector<double>& ir = interest.values();
  const std::size_t nh = hz.size();
  const std::size_t nr = ir.size();
  set.hazard_values.resize(count * nh);
  set.rate_values.resize(count * nr);
  for (std::size_t s = 0; s < count; ++s) {
    const double frac =
        count == 1 ? 0.0
                   : 2.0 * static_cast<double>(s) /
                             static_cast<double>(count - 1) -
                         1.0;
    const double shock = frac * max_shock_bp * kBasisPoint;
    for (std::size_t j = 0; j < nh; ++j) {
      set.hazard_values[s * nh + j] = std::max(hz[j] + shock, kMinHazardRate);
    }
    // Credit stress co-moves rates the other way at a fraction of the
    // credit shock (flight-to-quality direction).
    for (std::size_t j = 0; j < nr; ++j) {
      set.rate_values[s * nr + j] = ir[j] - 0.25 * shock;
    }
  }
  return set;
}

}  // namespace cdsflow::workload
