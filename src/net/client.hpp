/// \file client.hpp
/// Blocking client for the pricing service wire protocol -- the replay
/// tool's, tests' and bench's side of the socket.
///
/// Writes are full-frame sends; reads run a FrameReader over recv() so the
/// client tolerates arbitrary kernel segmentation. Requests may be
/// pipelined (many sends before the first read): the server always drains
/// its read side, so a blocking client cannot deadlock it.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/codec.hpp"

namespace cdsflow::net {

class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, std::uint16_t port);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends the whole buffer (blocking). Throws cdsflow::Error on a broken
  /// connection.
  void send(const std::vector<std::uint8_t>& bytes);

  /// Blocks until the next complete frame. Throws cdsflow::Error when the
  /// server closes the connection or the inbound stream is malformed.
  Frame read_frame();

  /// Like read_frame() but gives up after `timeout_us` without a complete
  /// frame (nullopt). A server-side close still throws.
  std::optional<Frame> read_frame_for(std::uint64_t timeout_us);

  /// Half-closes the write side (the server sees EOF after its last read).
  void shutdown_write();
  void close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace cdsflow::net
