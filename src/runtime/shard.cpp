#include "runtime/shard.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cdsflow::runtime {

std::vector<Shard> plan_shards(std::size_t n_options, std::size_t shard_size) {
  CDSFLOW_EXPECT(shard_size > 0, "shard_size must be positive");
  std::vector<Shard> plan;
  plan.reserve((n_options + shard_size - 1) / shard_size);
  for (std::size_t begin = 0; begin < n_options; begin += shard_size) {
    plan.push_back({plan.size(), begin, std::min(n_options, begin + shard_size)});
  }
  return plan;
}

std::size_t auto_shard_size(std::size_t n_options, unsigned workers) {
  CDSFLOW_EXPECT(workers > 0, "workers must be positive");
  const std::size_t target_shards =
      static_cast<std::size_t>(workers) * 4;  // oversubscribe for balance
  return std::max<std::size_t>(1, (n_options + target_shards - 1) /
                                      target_shards);
}

std::size_t setup_aware_shard_size(std::size_t n_options, unsigned workers,
                                   double setup_seconds,
                                   double per_option_seconds,
                                   double max_setup_fraction) {
  CDSFLOW_EXPECT(workers > 0, "workers must be positive");
  CDSFLOW_EXPECT(per_option_seconds > 0.0,
                 "per-option cost must be positive");
  CDSFLOW_EXPECT(max_setup_fraction > 0.0,
                 "setup fraction must be positive");
  const std::size_t balanced = auto_shard_size(n_options, workers);
  if (setup_seconds <= 0.0 || n_options == 0) return balanced;
  const std::size_t per_lane = std::max<std::size_t>(
      1, (n_options + workers - 1) / workers);
  // Smallest shard whose setup is <= max_setup_fraction of its compute.
  const double amortised = std::ceil(
      setup_seconds / (max_setup_fraction * per_option_seconds));
  if (amortised >= static_cast<double>(per_lane)) return per_lane;
  return std::min(per_lane,
                  std::max(balanced, std::max<std::size_t>(
                                         1, static_cast<std::size_t>(
                                                amortised))));
}

double list_schedule_makespan(std::span<const double> task_seconds,
                              unsigned lanes,
                              std::vector<unsigned>* lane_of) {
  CDSFLOW_EXPECT(lanes > 0, "list schedule needs at least one lane");
  if (lane_of != nullptr) {
    lane_of->assign(task_seconds.size(), 0);
  }
  std::vector<double> lane_busy_until(lanes, 0.0);
  double makespan = 0.0;
  for (std::size_t i = 0; i < task_seconds.size(); ++i) {
    const auto lane = static_cast<unsigned>(
        std::min_element(lane_busy_until.begin(), lane_busy_until.end()) -
        lane_busy_until.begin());
    if (lane_of != nullptr) (*lane_of)[i] = lane;
    lane_busy_until[lane] += task_seconds[i];
    makespan = std::max(makespan, lane_busy_until[lane]);
  }
  return makespan;
}

}  // namespace cdsflow::runtime
