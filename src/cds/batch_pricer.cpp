#include "cds/batch_pricer.hpp"

#include <bit>
#include <cmath>

#include "cds/legs.hpp"
#include "common/error.hpp"

namespace cdsflow::cds {

void BatchPricer::Workspace::clear() {
  grid_of.clear();
  grid_maturity.clear();
  grid_frequency.clear();
  grid_annuity.clear();
  grid_payoff.clear();
  grid_offset.clear();
  points.clear();
  discount.clear();
  survival.clear();
  default_mass.clear();
  dedup.clear();  // keeps the bucket array, so a warmed workspace stays
                  // allocation-free
}

BatchPricer::BatchPricer(TermStructure interest, TermStructure hazard)
    : interest_(std::move(interest)),
      hazard_(std::move(hazard)),
      hazard_prefix_(make_hazard_prefix(hazard_)) {
  interest_.validate();
}

BatchStats BatchPricer::price(std::span<const CdsOption> options,
                              std::span<SpreadResult> out,
                              Workspace& ws) const {
  CDSFLOW_EXPECT(out.size() == options.size(),
                 "batch price() needs out.size() == options.size()");
  ws.clear();
  BatchStats stats;
  stats.options = options.size();
  if (options.empty()) return stats;

  // Pass 1 -- dedup: map every option onto a unique (maturity, frequency)
  // grid id. Options are validated here, as in the scalar reference.
  ws.grid_of.reserve(options.size());
  for (const CdsOption& option : options) {
    option.validate();
    const detail::ScheduleKey key{
        std::bit_cast<std::uint64_t>(option.maturity_years),
        std::bit_cast<std::uint64_t>(option.payment_frequency)};
    const auto next_id = static_cast<std::uint32_t>(ws.grid_maturity.size());
    const auto [it, inserted] = ws.dedup.try_emplace(key, next_id);
    if (inserted) {
      ws.grid_maturity.push_back(option.maturity_years);
      ws.grid_frequency.push_back(option.payment_frequency);
    }
    ws.grid_of.push_back(it->second);
  }

  // Pass 2 -- per unique grid: materialise the schedule once into the flat
  // arena, tabulate D/Q/dq, and reduce the three leg sums in exactly the
  // scalar reference's accumulation order (so spreads match bit-for-bit).
  const std::size_t n_grids = ws.grid_maturity.size();
  ws.grid_offset.reserve(n_grids);
  ws.grid_annuity.reserve(n_grids);
  ws.grid_payoff.reserve(n_grids);
  for (std::size_t g = 0; g < n_grids; ++g) {
    CdsOption probe;  // schedule depends only on (maturity, frequency)
    probe.maturity_years = ws.grid_maturity[g];
    probe.payment_frequency = ws.grid_frequency[g];
    const std::size_t offset = ws.points.size();
    ws.grid_offset.push_back(offset);
    const std::size_t n_points = make_schedule(probe, ws.points);

    double premium = 0.0;
    double accrual = 0.0;
    double payoff = 0.0;
    double q_prev = 1.0;  // Q(0)
    for (std::size_t i = offset; i < offset + n_points; ++i) {
      const TimePoint tp = ws.points[i];
      const double q = survival_probability_prefix(hazard_prefix_, tp.t);
      const double r = interest_.interpolate_fast(tp.t);
      const double d = std::exp(-r * tp.t);
      const LegTerms terms = leg_terms_from_discount(d, q_prev, q, tp.dt);
      ws.discount.push_back(d);
      ws.survival.push_back(q);
      ws.default_mass.push_back(q_prev - q);
      premium += terms.premium;
      accrual += terms.accrual;
      payoff += terms.payoff;
      q_prev = q;
    }
    const double annuity = premium + accrual;
    // Hoisted from the per-option combine: the annuity is recovery-free, so
    // one check per grid covers every option on it (same diagnostic as
    // combine_spread_bps).
    CDSFLOW_EXPECT(annuity > 0.0,
                   "risky annuity must be positive to quote a spread");
    ws.grid_annuity.push_back(annuity);
    ws.grid_payoff.push_back(payoff);
  }
  stats.unique_schedules = n_grids;
  stats.grid_points = ws.points.size();

  // Pass 3 -- per option: a branch-free combine against the reduced grid
  // sums. Association order matches combine_spread_bps.
  const double* annuity = ws.grid_annuity.data();
  const double* payoff = ws.grid_payoff.data();
  const std::uint32_t* grid_of = ws.grid_of.data();
  std::size_t scalar_points = 0;
  for (std::size_t i = 0; i < options.size(); ++i) {
    const std::uint32_t g = grid_of[i];
    const double protection =
        (1.0 - options[i].recovery_rate) * payoff[g];
    out[i] = {options[i].id,
              kBasisPointsPerUnit * protection / annuity[g]};
    const std::size_t grid_end =
        g + 1 < n_grids ? ws.grid_offset[g + 1] : ws.points.size();
    scalar_points += grid_end - ws.grid_offset[g];
  }
  stats.scalar_points = scalar_points;
  return stats;
}

std::vector<SpreadResult> BatchPricer::price(
    const std::vector<CdsOption>& options) const {
  Workspace ws;
  std::vector<SpreadResult> out(options.size());
  price(options, out, ws);
  return out;
}

}  // namespace cdsflow::cds
