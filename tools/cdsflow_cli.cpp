/// \file cdsflow_cli.cpp
/// Command-line front end: price portfolios, bootstrap hazard curves, and
/// inspect device fit without writing C++.
///
///   cdsflow_cli price --engine vectorised --count 256 [--seed 42]
///                     [--curve-interest f.csv] [--curve-hazard f.csv]
///                     [--portfolio book.csv] [--out results.csv]
///                     [--workers N] [--shard-size S] [--replicas R]
///                     [--auto-plan] [--deadline-s D] [--probe-sizes 128,2048]
///
/// `--workers` / `--shard-size` route pricing through the sharded batch
/// runtime (src/runtime/): the book is cut into shards and priced on N
/// concurrent engine replicas, results merged back in submission order.
///
/// `--auto-plan` replaces the hand-chosen flags with the probe-calibrated
/// auto-planner (engines/planner.hpp): every candidate back-end is probed
/// at >= 2 sizes, an affine cost model (setup + per-option) is fitted, and
/// the cheapest engine x workers x shard_size plan whose projected list-
/// schedule makespan meets `--deadline-s` (default 3600) is executed.
/// Explicit --engine/--workers/--shard-size/--replicas flags override the
/// planned values.
///
///   cdsflow_cli risk  --engine cpu-batch-risk [--count N] [--seed S]
///                     [--bump B] [--ladder 0,1,3,5,7,10]
///                     [--curve-interest f.csv] [--curve-hazard f.csv]
///                     [--portfolio book.csv] [--out risk.csv]
///                     [--workers N] [--shard-size S] [--replicas R]
///                     [--auto-plan] [--deadline-s D] [--probe-sizes 128,2048]
///
/// `risk` computes per-option CS01/IR01/Rec01/JTD (and a bucketed CS01
/// ladder when --ladder is given) on a CPU risk engine -- by default the
/// batched kernel that bumps each unique schedule grid once instead of
/// repricing per option. Results match the scalar reference within 1e-9
/// relative (documented kernel tolerance: 1e-12).
///
/// Every CPU engine name also accepts the "-vec" kernel token
/// ("cpu-vec[-risk][-mt[N]]"): the batch kernel on the SIMD vector lanes
/// (docs/VECTOR_LANES.md). Under --auto-plan the vector candidates are
/// probed like any other back-end and win whenever measured fastest.
///
///   cdsflow_cli stream [--engine cpu-batch[-risk]] [--count N] [--seed S]
///                      [--rate HZ] [--max-batch B] [--max-wait-us W]
///                      [--deadline-us D] [--policy block|drop-oldest]
///                      [--queue-capacity C] [--workers N]
///                      [--hazard-every K] [--hazard-scale S]
///                      [--tenors 1,3,5,7,10]
///                      [--bump B] [--ladder 0,1,3,5,7,10]
///                      [--curve-interest f.csv] [--curve-hazard f.csv]
///                      [--out results.csv] [--batch-trace trace.csv]
///
/// `stream` drives the streaming quote-ingest runtime (src/runtime/
/// stream_runtime.hpp) with a deterministic synthetic feed: `--count`
/// events arrive at `--rate` events/s (0 = unpaced saturation), every
/// `--hazard-every`th event is a hazard-quote update applied incrementally
/// to the lane pricers, micro-batches flush on `--max-batch` or
/// `--max-wait-us`, and the report carries ingest-to-result latency
/// percentiles, `--deadline-us` miss counts and queue accounting next to
/// the modelled/wall throughput split. An engine name carrying "-risk"
/// streams per-option Greeks instead of spreads alone.
///
///   cdsflow_cli sweep [--scenarios N] [--kind hazard|mc|rate|joint]
///                     [--shock-bp B] [--count N] [--seed S]
///                     [--tenors 1,3,5,7,10] [--workers N] [--shard-size S]
///                     [--curve-interest f.csv] [--curve-hazard f.csv]
///                     [--portfolio book.csv] [--out aggregates.csv]
///
/// `sweep` prices ONE book under `--scenarios` perturbed market states on
/// the scenario-sweep engine (cds/sweep_pricer.hpp): the book is
/// deduplicated and its grids tabulated once, then each scenario
/// re-tabulates only the column its kind moves (hazard kinds the survival
/// column, "rate" the discount column, "joint" both). --kind selects the
/// generator: "hazard" a parallel stress ladder over +-`--shock-bp` basis
/// points, "mc" deterministic lognormal Monte-Carlo hazard paths, "rate" a
/// historical-replay random walk of the interest curve, "joint" the
/// two-sided stress ladder. --workers shards the scenario axis across
/// SweepPricer replicas (results bit-identical for any worker/shard
/// split); --out writes the per-scenario min/max spread aggregates as CSV.
///
///   cdsflow_cli serve [--unix /tmp/cds.sock | --port N] [--tenants K]
///                     [--risk-tenants R] [--engine cpu-batch] [--lanes L]
///                     [--max-batch B] [--max-wait-us W]
///                     [--class interactive|standard|batch]
///                     [--ops-per-second X --setup-s S] [--stop-when-idle]
///                     [--latency-cdf cdf.csv]
///                     [--curve-interest f.csv] [--curve-hazard f.csv]
///
/// `serve` runs the multi-tenant binary pricing service (src/service/):
/// tenants 1..K each get their own StreamRuntime (the last R in risk mode)
/// and an admission controller that projects each request's completion
/// through the planner's affine fit -- calibrated by probing the serving
/// engine unless --ops-per-second/--setup-s pin it -- and admits, defers or
/// sheds against the deadline class. --port 0 binds an ephemeral TCP port
/// (printed); --stop-when-idle exits once all clients have come and gone
/// (scripted runs); --latency-cdf writes per-tenant response-latency
/// percentiles as CSV.
///
///   cdsflow_cli client-replay (--unix /tmp/cds.sock | --host H --port N)
///                     [--tenant T] [--events N] [--request-size S]
///                     [--hazard-every K] [--risk] [--seed S]
///                     [--tenors 1,3,5,7,10] [--out results.csv]
///                     [--curve-hazard f.csv]
///
/// `client-replay` replays tenant T's seeded feed against a running server:
/// option events are grouped into price/risk requests of at most
/// --request-size (hazard updates flush the open request, preserving event
/// order), sent pipelined, and the responses are collected in request
/// order. Exit code 1 if any request was rejected.
///
///   cdsflow_cli cluster-worker (--unix /tmp/w.sock | --port N)
///                     [--engine cpu-batch] [--workers N] [--shard-size S]
///                     [--ops-per-second X --setup-s S] [--watts W]
///                     [--probe-sizes 256,2048] [--stop-when-idle]
///                     [--curve-interest f.csv] [--curve-hazard f.csv]
///
/// `cluster-worker` runs one node of the multi-process cluster plane
/// (src/cluster/, docs/CLUSTER.md): a local PortfolioRuntime behind the
/// binary wire protocol's NODE_PROBE / SHARD_PRICE / SHARD_RESULT frames
/// (docs/PROTOCOL.md). Unless --ops-per-second/--setup-s pin it, the
/// worker calibrates its own affine fit at --probe-sizes before serving --
/// that fit is what the coordinator's heterogeneous planner schedules on.
/// --stop-when-idle exits once all coordinators have come and gone.
///
///   cdsflow_cli cluster-price --nodes unix:/a.sock,host:port,...
///                     [--count N] [--seed S] [--portfolio book.csv]
///                     [--risk] [--shard-size S] [--deadline-s D]
///                     [--connect-timeout-s T] [--bandwidth BYTES_PER_S]
///                     [--verify] [--out results.csv]
///                     [--curve-interest f.csv] [--curve-hazard f.csv]
///
/// `cluster-price` coordinates a book across running cluster workers: it
/// probes every node (measured link latency + self-reported fit), plans
/// shard assignments with engine::plan_cluster() (deadline-first, then
/// energy), dispatches shards over the sockets and merges the results in
/// submission order. All workers must run the same engine name for the
/// merge to be bit-identical to a single-process run; --verify re-prices
/// the book locally on that engine and exits 1 unless every row matches
/// bit for bit (workers must then also serve the same curves this process
/// loads). --bandwidth sets the link model's modelled bytes/second.
///
///   cdsflow_cli bootstrap --quotes quotes.csv [--out hazard.csv]
///   cdsflow_cli engines
///   cdsflow_cli device [--engines N] [--lanes L]
///
/// Exit code 0 on success, 1 on usage/validation errors (message on
/// stderr).

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cds/bootstrap.hpp"
#include "cluster/coordinator.hpp"
#include "cluster/worker.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/thread_annotations.hpp"
#include "engines/planner.hpp"
#include "engines/registry.hpp"
#include "fpga/resource.hpp"
#include "io/csv.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "runtime/portfolio_runtime.hpp"
#include "runtime/stream_runtime.hpp"
#include "runtime/sweep_runtime.hpp"
#include "service/service.hpp"
#include "workload/curves.hpp"
#include "workload/feed.hpp"
#include "workload/options.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace cdsflow;

/// Strict numeric parses: the whole field must be consumed, so "5y" or
/// "1e-4x" is a usage error instead of a silently truncated value.
double parse_double_strict(const std::string& s, const std::string& what) {
  const char* begin = s.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  CDSFLOW_EXPECT(end != begin && *end == '\0',
                 what + " expects a number, got '" + s + "'");
  return v;
}

long parse_long_strict(const std::string& s, const std::string& what) {
  const char* begin = s.c_str();
  char* end = nullptr;
  const long v = std::strtol(begin, &end, 10);
  CDSFLOW_EXPECT(end != begin && *end == '\0',
                 what + " expects an integer, got '" + s + "'");
  return v;
}

/// --flag [value] parser; flags are unique. A flag followed by another
/// --flag (or by nothing) is boolean presence ("--auto-plan"); value-taking
/// flags reject the resulting empty string in their strict parses.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      CDSFLOW_EXPECT(key.rfind("--", 0) == 0, "expected --flag, got '" + key +
                                                  "'");
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key.substr(2)] = argv[++i];
      } else {
        values_[key.substr(2)] = "";  // boolean flag
      }
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::string get_or(const std::string& key, std::string fallback) const {
    return get(key).value_or(std::move(fallback));
  }

  long get_long_or(const std::string& key, long fallback) const {
    const auto v = get(key);
    if (!v) return fallback;
    return parse_long_strict(*v, "--" + key);
  }

  double get_double_or(const std::string& key, double fallback) const {
    const auto v = get(key);
    if (!v) return fallback;
    return parse_double_strict(*v, "--" + key);
  }

 private:
  std::map<std::string, std::string> values_;
};

struct Curves {
  cds::TermStructure interest;
  cds::TermStructure hazard;
};

Curves load_curves(const Args& args) {
  return {args.get("curve-interest")
              ? io::read_curve_csv(*args.get("curve-interest"))
              : workload::paper_interest_curve(),
          args.get("curve-hazard")
              ? io::read_curve_csv(*args.get("curve-hazard"))
              : workload::paper_hazard_curve()};
}

std::vector<cds::CdsOption> load_book(const Args& args) {
  if (args.get("portfolio")) {
    return io::read_portfolio_csv(*args.get("portfolio"));
  }
  workload::PortfolioSpec spec;
  spec.count = static_cast<std::size_t>(args.get_long_or("count", 256));
  spec.seed = static_cast<std::uint64_t>(args.get_long_or("seed", 42));
  return workload::make_portfolio(spec);
}

/// "0,1,3,5,7,10" -> {0, 1, 3, 5, 7, 10}. `flag` names the option in
/// diagnostics (--ladder, --tenors).
std::vector<double> parse_edge_list(const std::string& csv,
                                    const std::string& flag = "--ladder") {
  std::vector<double> edges;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', begin), csv.size());
    const std::string field = csv.substr(begin, comma - begin);
    CDSFLOW_EXPECT(!field.empty(),
                   flag + " expects comma-separated numbers, got '" + csv +
                       "'");
    edges.push_back(parse_double_strict(field, flag));
    begin = comma + 1;
  }
  return edges;
}

/// Applies --workers/--shard-size/--replicas to `cfg` (only the flags that
/// were given, so planned values survive as defaults); returns false when
/// none of the sharding flags were present.
bool runtime_config_from_args(const Args& args, runtime::RuntimeConfig& cfg) {
  if (!args.get("workers") && !args.get("shard-size") &&
      !args.get("replicas")) {
    return false;
  }
  if (args.get("workers")) {
    const long workers = args.get_long_or("workers", 0);
    CDSFLOW_EXPECT(workers >= 0, "--workers must be >= 0 (0 = all cores)");
    cfg.workers = static_cast<unsigned>(workers);
  }
  if (args.get("shard-size")) {
    const long shard_size = args.get_long_or("shard-size", 0);
    CDSFLOW_EXPECT(shard_size >= 0, "--shard-size must be >= 0 (0 = auto)");
    cfg.shard_size = static_cast<std::size_t>(shard_size);
  }
  if (args.get("replicas")) {
    const long replicas = args.get_long_or("replicas", 0);
    CDSFLOW_EXPECT(replicas >= 0, "--replicas must be >= 0 (0 = per worker)");
    cfg.engine_replicas = static_cast<unsigned>(replicas);
  }
  return true;
}

/// Runs the probe-calibrated auto-planner (--auto-plan) and returns the
/// chosen RuntimeConfig, with any explicit --engine/--workers/--shard-size/
/// --replicas flags applied as overrides on top of the plan.
runtime::RuntimeConfig auto_plan_config(const Args& args,
                                        const Curves& curves,
                                        std::size_t n_options, bool risk_mode,
                                        const engine::CpuEngineConfig& cpu) {
  engine::PlannerConfig pcfg;
  pcfg.risk_mode = risk_mode;
  pcfg.cpu = cpu;
  if (args.get("probe-sizes")) {
    pcfg.probe_sizes.clear();
    for (const double v :
         parse_edge_list(*args.get("probe-sizes"), "--probe-sizes")) {
      CDSFLOW_EXPECT(v >= 1.0, "--probe-sizes entries must be >= 1");
      pcfg.probe_sizes.push_back(static_cast<std::size_t>(v));
    }
  }
  const double deadline_s = args.get_double_or("deadline-s", 3600.0);
  CDSFLOW_EXPECT(deadline_s > 0.0, "--deadline-s must be > 0");

  const engine::BatchRequirements requirements{n_options, deadline_s};
  const auto entries = engine::plan_runtime(curves.interest, curves.hazard,
                                            requirements, pcfg);
  std::cout << "auto-plan: " << entries.size() << " candidate plan(s) for "
            << n_options << " options in <= " << fixed(deadline_s, 1)
            << " s (top 5):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, entries.size()); ++i) {
    const auto& e = entries[i];
    std::cout << "  " << pad_right(e.config.engine, 22) << " x"
              << e.config.workers << " worker(s), shard "
              << e.config.shard_size << " (" << e.n_shards
              << " shard(s)): " << fixed(e.projected_seconds, 4) << " s, "
              << fixed(e.projected_joules, 1) << " J"
              << (e.meets_deadline ? "" : "  [misses deadline]") << '\n';
  }
  const auto best = engine::best_runtime_plan(entries);
  CDSFLOW_EXPECT(best.has_value(),
                 "no plan meets the deadline; fastest projected " +
                     fixed(entries.front().projected_seconds, 6) +
                     " s -- raise --deadline-s or scale out");
  runtime::RuntimeConfig cfg = best->config;
  std::cout << "chosen plan: " << cfg.engine << " x " << cfg.workers
            << " worker(s), shard size " << cfg.shard_size << " (projected "
            << fixed(best->projected_seconds, 4) << " s, "
            << fixed(best->projected_joules, 1) << " J, setup "
            << fixed(best->candidate.setup_seconds * 1e3, 3)
            << " ms/shard)\n";
  // Explicit flags override the planned values (same validation as the
  // manual sharding path; absent flags keep the plan).
  if (args.get("engine")) cfg.engine = *args.get("engine");
  (void)runtime_config_from_args(args, cfg);
  return cfg;
}

int cmd_price(const Args& args) {
  const auto [interest, hazard] = load_curves(args);
  const auto book = load_book(args);

  const std::string engine_name = args.get_or("engine", "vectorised");
  engine::PricingRun run;
  runtime::RuntimeConfig cfg;
  cfg.engine = engine_name;
  bool use_runtime;
  if (args.get("auto-plan")) {
    cfg = auto_plan_config(args, {interest, hazard}, book.size(),
                           /*risk_mode=*/false, {});
    use_runtime = true;
  } else {
    use_runtime = runtime_config_from_args(args, cfg);
  }
  if (use_runtime) {
    runtime::PortfolioRuntime rt(interest, hazard, cfg);
    auto batch = rt.price(book);
    std::cout << "sharded runtime: " << batch.lanes << " lane(s) of ["
              << rt.worker_description() << "], " << batch.shards.size()
              << " shard(s) of <= " << batch.shard_size << " options\n"
              << "options: " << book.size() << "\n"
              << "modelled throughput: "
              << with_thousands(batch.run.options_per_second, 2)
              << " options/s\n"
              << "wall throughput: "
              << with_thousands(batch.wall_options_per_second, 2)
              << " options/s\n";
    run = std::move(batch.run);
  } else {
    auto engine = engine::make_engine(engine_name, interest, hazard);
    run = engine->price(book);
    std::cout << engine->description() << '\n'
              << "options: " << book.size() << "\n"
              << "throughput: " << with_thousands(run.options_per_second, 2)
              << " options/s";
    if (run.kernel_cycles > 0) {
      std::cout << " (" << with_thousands(double(run.kernel_cycles), 0)
                << " simulated kernel cycles)";
    }
    std::cout << '\n';
  }

  if (args.get("out")) {
    io::write_results_csv(*args.get("out"), run.results);
    std::cout << "results written to " << *args.get("out") << '\n';
  } else {
    for (std::size_t i = 0; i < std::min<std::size_t>(5, run.results.size());
         ++i) {
      std::cout << "  id " << run.results[i].id << ": "
                << fixed(run.results[i].spread_bps, 2) << " bps\n";
    }
    if (run.results.size() > 5) {
      std::cout << "  ... (" << run.results.size() - 5
                << " more; use --out to save)\n";
    }
  }
  return 0;
}

int cmd_risk(const Args& args) {
  const auto [interest, hazard] = load_curves(args);
  const auto book = load_book(args);

  const std::string engine_name = args.get_or("engine", "cpu-batch-risk");
  CDSFLOW_EXPECT(engine_name.rfind("cpu", 0) == 0,
                 "risk needs a CPU engine (cpu-risk / cpu-batch-risk / "
                 "cpu-vec-risk, optionally -mt[N]); simulated engines only "
                 "price");
  engine::CpuEngineConfig cpu;
  cpu.risk_mode = true;  // "risk" on any cpu engine name forces risk mode
  cpu.risk_bump = args.get_double_or("bump", 1e-4);
  if (args.get("ladder")) {
    cpu.ladder_edges = parse_edge_list(*args.get("ladder"));
  }

  engine::PricingRun run;
  runtime::RuntimeConfig cfg;
  cfg.engine = engine_name;
  cfg.cpu = cpu;
  bool use_runtime;
  if (args.get("auto-plan")) {
    cfg = auto_plan_config(args, {interest, hazard}, book.size(),
                           /*risk_mode=*/true, cpu);
    use_runtime = true;
  } else {
    use_runtime = runtime_config_from_args(args, cfg);
  }
  if (use_runtime) {
    runtime::PortfolioRuntime rt(interest, hazard, cfg);
    auto batch = rt.price(book);
    std::cout << "sharded runtime: " << batch.lanes << " lane(s) of ["
              << rt.worker_description() << "], " << batch.shards.size()
              << " shard(s) of <= " << batch.shard_size << " options\n"
              << "options: " << book.size() << "\n"
              << "modelled throughput: "
              << with_thousands(batch.run.options_per_second, 2)
              << " options/s\nwall throughput: "
              << with_thousands(batch.wall_options_per_second, 2)
              << " options/s\n";
    run = std::move(batch.run);
  } else {
    auto engine = engine::make_engine(engine_name, interest, hazard, {}, cpu);
    run = engine->price(book);
    std::cout << engine->description() << '\n'
              << "options: " << book.size() << "\n"
              << "throughput: " << with_thousands(run.options_per_second, 2)
              << " options/s\n";
  }
  CDSFLOW_EXPECT(run.sensitivities.size() == book.size(),
                 "engine returned no sensitivities");

  // Book-level aggregates: per-option Greeks sum to portfolio Greeks.
  double cs01 = 0.0, ir01 = 0.0, rec01 = 0.0, jtd = 0.0;
  for (const auto& s : run.sensitivities) {
    cs01 += s.cs01;
    ir01 += s.ir01;
    rec01 += s.rec01;
    jtd += s.jtd;
  }
  std::cout << "book totals: CS01 " << fixed(cs01, 4) << " bps/bp, IR01 "
            << fixed(ir01, 4) << " bps/bp, Rec01 " << fixed(rec01, 4)
            << " bps/%, JTD " << fixed(jtd, 2) << " units\n";

  if (args.get("out")) {
    io::write_sensitivities_csv(*args.get("out"), run.results,
                                run.sensitivities, run.cs01_ladder,
                                run.ladder_buckets);
    std::cout << "risk results written to " << *args.get("out") << '\n';
  } else {
    for (std::size_t i = 0;
         i < std::min<std::size_t>(5, run.sensitivities.size()); ++i) {
      const auto& s = run.sensitivities[i];
      std::cout << "  id " << run.results[i].id << ": spread "
                << fixed(s.spread_bps, 2) << " bps, cs01 "
                << fixed(s.cs01, 4) << ", ir01 " << fixed(s.ir01, 6)
                << ", rec01 " << fixed(s.rec01, 4) << ", jtd "
                << fixed(s.jtd, 2) << '\n';
    }
    if (run.sensitivities.size() > 5) {
      std::cout << "  ... (" << run.sensitivities.size() - 5
                << " more; use --out to save)\n";
    }
  }
  return 0;
}

int cmd_stream(const Args& args) {
  const auto [interest, hazard] = load_curves(args);

  runtime::StreamConfig cfg;
  cfg.engine = args.get_or("engine", "cpu-batch");
  const long workers = args.get_long_or("workers", 0);
  CDSFLOW_EXPECT(workers >= 0, "--workers must be >= 0 (0 = all cores)");
  cfg.lanes = static_cast<unsigned>(workers);
  const long queue_capacity = args.get_long_or("queue-capacity", 8192);
  CDSFLOW_EXPECT(queue_capacity > 0, "--queue-capacity must be > 0");
  cfg.queue_capacity = static_cast<std::size_t>(queue_capacity);
  cfg.policy =
      runtime::parse_backpressure_policy(args.get_or("policy", "block"));
  const long max_batch = args.get_long_or("max-batch", 1024);
  CDSFLOW_EXPECT(max_batch > 0, "--max-batch must be > 0");
  cfg.max_batch = static_cast<std::size_t>(max_batch);
  const long max_wait_us = args.get_long_or("max-wait-us", 500);
  CDSFLOW_EXPECT(max_wait_us >= 0, "--max-wait-us must be >= 0");
  cfg.max_wait_us = static_cast<std::uint64_t>(max_wait_us);
  const long deadline_us = args.get_long_or("deadline-us", 0);
  CDSFLOW_EXPECT(deadline_us >= 0, "--deadline-us must be >= 0 (0 = off)");
  cfg.deadline_us = static_cast<std::uint64_t>(deadline_us);
  cfg.risk_bump = args.get_double_or("bump", 1e-4);
  if (args.get("ladder")) {
    cfg.ladder_edges = parse_edge_list(*args.get("ladder"));
  }

  workload::QuoteFeedSpec feed_spec;
  feed_spec.events =
      static_cast<std::size_t>(args.get_long_or("count", 16384));
  feed_spec.rate_hz = args.get_double_or("rate", 0.0);
  feed_spec.hazard_update_every =
      static_cast<std::size_t>(args.get_long_or("hazard-every", 0));
  feed_spec.hazard_update_scale = args.get_double_or("hazard-scale", 0.05);
  feed_spec.seed = static_cast<std::uint64_t>(args.get_long_or("seed", 42));
  if (args.get("tenors")) {
    // Standard-tenor quoting: many quotes share a schedule, the lanes' grid
    // caches (and the incremental updates) do the least work.
    feed_spec.book.maturity_tenor_grid =
        parse_edge_list(*args.get("tenors"), "--tenors");
  }
  const auto feed = workload::make_quote_feed(feed_spec, hazard);

  runtime::StreamRuntime rt(interest, hazard, cfg);
  std::cout << "streaming runtime: " << rt.lanes() << " lane(s) of ["
            << rt.worker_description() << "], queue capacity "
            << cfg.queue_capacity << " (" << to_string(cfg.policy)
            << "), micro-batch <= " << cfg.max_batch << " or "
            << cfg.max_wait_us << " us\n";
  const auto report = rt.play(feed);

  auto us = [](double seconds) { return fixed(seconds * 1e6, 1) + " us"; };
  std::cout << "events: " << report.events_in << " in, "
            << report.events_priced << " priced, " << report.hazard_updates
            << " hazard update(s), " << report.events_dropped
            << " dropped\n"
            << "micro-batches: " << report.batches.size() << " ("
            << with_thousands(report.batches_per_second, 1)
            << " batches/s), queue high water " << report.queue_high_water
            << ", blocked pushes " << report.blocked_pushes << "\n"
            << "modelled throughput: "
            << with_thousands(report.modelled_events_per_second, 2)
            << " options/s\nwall throughput: "
            << with_thousands(report.wall_events_per_second, 2)
            << " options/s\n"
            << "ingest-to-result latency: p50 "
            << us(report.p50_latency_seconds) << ", p99 "
            << us(report.p99_latency_seconds) << ", max "
            << us(report.max_latency_seconds) << '\n';
  if (cfg.deadline_us > 0) {
    std::cout << "deadline " << cfg.deadline_us << " us: "
              << report.deadline_misses << " miss(es)\n";
  }
  if (report.hazard_updates > 0) {
    std::cout << "incremental risk: " << report.grids_retabulated
              << " grid re-tabulation(s) vs " << report.full_rebuild_grids
              << " under per-update full rebuilds\n";
  }

  if (args.get("out")) {
    if (rt.risk_mode()) {
      io::write_sensitivities_csv(*args.get("out"), report.run.results,
                                  report.run.sensitivities,
                                  report.run.cs01_ladder,
                                  report.run.ladder_buckets);
    } else {
      io::write_results_csv(*args.get("out"), report.run.results);
    }
    std::cout << "results written to " << *args.get("out") << '\n';
  }
  if (args.get("batch-trace")) {
    std::vector<io::StreamBatchRow> rows;
    rows.reserve(report.batches.size());
    for (const auto& b : report.batches) {
      rows.push_back({b.index, b.events, b.lane, b.pricing_seconds,
                      b.max_latency_seconds * 1e6, b.deadline_misses});
    }
    io::write_stream_batches_csv(*args.get("batch-trace"), rows);
    std::cout << "batch trace written to " << *args.get("batch-trace")
              << '\n';
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  const auto [interest, hazard] = load_curves(args);

  std::vector<cds::CdsOption> book;
  if (args.get("portfolio")) {
    book = io::read_portfolio_csv(*args.get("portfolio"));
  } else {
    workload::PortfolioSpec spec;
    spec.count = static_cast<std::size_t>(args.get_long_or("count", 4096));
    spec.seed = static_cast<std::uint64_t>(args.get_long_or("seed", 42));
    if (args.get("tenors")) {
      // Standard-tenor quoting: few unique schedules, maximal dedup -- the
      // book shape the sweep amortises best.
      spec.maturity_tenor_grid = parse_edge_list(*args.get("tenors"),
                                                 "--tenors");
    }
    book = workload::make_portfolio(spec);
  }

  const long n_scenarios = args.get_long_or("scenarios", 4096);
  CDSFLOW_EXPECT(n_scenarios > 0, "--scenarios must be > 0");
  const double shock_bp = args.get_double_or("shock-bp", 100.0);
  CDSFLOW_EXPECT(shock_bp > 0.0, "--shock-bp must be > 0");
  const std::string kind = args.get_or("kind", "hazard");
  workload::ScenarioSet set;
  if (kind == "hazard") {
    set = workload::parallel_stress_scenarios(
        hazard, static_cast<std::size_t>(n_scenarios), shock_bp);
  } else if (kind == "mc") {
    set = workload::mc_hazard_scenarios(
        hazard, static_cast<std::size_t>(n_scenarios));
  } else if (kind == "rate") {
    set = workload::replay_scenarios(interest,
                                     static_cast<std::size_t>(n_scenarios));
  } else if (kind == "joint") {
    set = workload::joint_stress_scenarios(
        interest, hazard, static_cast<std::size_t>(n_scenarios), shock_bp);
  } else {
    throw Error("--kind must be hazard, mc, rate or joint (got '" + kind +
                "')");
  }

  runtime::SweepRuntimeConfig cfg;
  const long workers = args.get_long_or("workers", 1);
  CDSFLOW_EXPECT(workers >= 0, "--workers must be >= 0 (0 = all cores)");
  cfg.workers = static_cast<unsigned>(workers);
  const long shard_size = args.get_long_or("shard-size", 0);
  CDSFLOW_EXPECT(shard_size >= 0, "--shard-size must be >= 0 (0 = auto)");
  cfg.shard_size = static_cast<std::size_t>(shard_size);
  cfg.level = cds::simd::active_level();

  runtime::SweepRuntime rt(interest, hazard, book, cfg);
  const auto run = rt.run(set.matrix());

  std::cout << "scenario sweep: " << set.name << " (" << to_string(set.kind)
            << "), " << run.stats.scenarios << " scenario(s) x "
            << run.stats.options << " option(s) on "
            << run.stats.unique_schedules << " unique schedule(s) ("
            << run.stats.grid_points << " grid point(s))\n"
            << "runtime: " << run.lanes << " lane(s), " << run.shards.size()
            << " shard(s) of <= " << run.shard_size << " scenario(s), SIMD "
            << cds::simd::to_string(cfg.level) << "\n"
            << "columns: " << run.stats.retabulated_columns
            << " re-tabulated, " << run.stats.shared_columns << " shared ("
            << fixed(run.stats.shared_column_rate() * 100.0, 1)
            << "% shared)\n"
            << "modelled throughput: "
            << with_thousands(run.modelled_scenarios_per_second, 2)
            << " scenarios/s\nwall throughput: "
            << with_thousands(run.wall_scenarios_per_second, 2)
            << " scenarios/s\n";

  if (args.get("out")) {
    std::vector<io::SweepAggregateRow> rows;
    rows.reserve(run.aggregates.size());
    for (std::size_t s = 0; s < run.aggregates.size(); ++s) {
      rows.push_back({s, run.aggregates[s].min_spread_bps,
                      run.aggregates[s].max_spread_bps});
    }
    io::write_sweep_aggregates_csv(*args.get("out"), rows);
    std::cout << "aggregates written to " << *args.get("out") << '\n';
  } else {
    for (std::size_t s = 0;
         s < std::min<std::size_t>(5, run.aggregates.size()); ++s) {
      std::cout << "  scenario " << s << ": spread ["
                << fixed(run.aggregates[s].min_spread_bps, 2) << ", "
                << fixed(run.aggregates[s].max_spread_bps, 2) << "] bps\n";
    }
    if (run.aggregates.size() > 5) {
      std::cout << "  ... (" << run.aggregates.size() - 5
                << " more; use --out to save)\n";
    }
  }
  return 0;
}

int cmd_bootstrap(const Args& args) {
  CDSFLOW_EXPECT(args.get("quotes").has_value(),
                 "bootstrap requires --quotes quotes.csv");
  const auto quotes = io::read_quotes_csv(*args.get("quotes"));
  const auto interest = args.get("curve-interest")
                            ? io::read_curve_csv(*args.get("curve-interest"))
                            : workload::paper_interest_curve();
  const auto result = cds::bootstrap_hazard_curve(interest, quotes);
  std::cout << "bootstrapped " << result.hazard.size()
            << "-segment hazard curve, max repricing error "
            << compact(result.max_error_bps) << " bps ("
            << result.total_iterations << " solver iterations)\n";
  for (std::size_t i = 0; i < result.hazard.size(); ++i) {
    std::cout << "  (" << fixed(result.hazard.time(i), 2) << "y] h = "
              << fixed(result.hazard.value(i) * 1e4, 1) << " bps\n";
  }
  if (args.get("out")) {
    io::write_curve_csv(*args.get("out"), result.hazard);
    std::cout << "curve written to " << *args.get("out") << '\n';
  }
  return 0;
}

int cmd_engines() {
  std::cout << "registered engines:\n";
  const auto interest = workload::paper_interest_curve(64);
  const auto hazard = workload::paper_hazard_curve(64);
  for (const auto& name : engine::engine_names()) {
    const auto engine = engine::make_engine(name, interest, hazard);
    std::cout << "  " << pad_right(name, 22) << engine->description()
              << '\n';
  }
  std::cout << "parameterised forms: cpu[-batch|-vec|-sweep][-risk]-mt<N>, "
               "multi-<N>\n";
  return 0;
}

int cmd_device(const Args& args) {
  const auto device = fpga::alveo_u280();
  const fpga::ResourceEstimator estimator(device);
  fpga::EngineShape shape;
  shape.hazard_lanes = static_cast<unsigned>(args.get_long_or("lanes", 6));
  shape.interpolation_lanes = shape.hazard_lanes;
  const auto engines =
      static_cast<unsigned>(args.get_long_or("engines", 5));
  std::cout << estimator.utilisation_report(shape, engines);
  return 0;
}

/// Shared by client-replay: walk a tenant feed in order, grouping option
/// events into requests of at most `request_size`; a hazard event flushes
/// the open request first so the runtime sees events in exact feed order
/// (the same slicing tests/test_service.cpp uses for its bit-identity
/// comparison).
struct WireStep {
  bool quote = false;
  std::uint32_t request = 0;  // !quote
  std::vector<cds::CdsOption> options;
  std::uint32_t knot = 0;  // quote
  double rate = 0.0;
};

std::vector<WireStep> slice_feed_for_wire(
    const std::vector<workload::QuoteFeedEvent>& feed,
    std::size_t request_size) {
  std::vector<WireStep> steps;
  std::uint32_t next_request = 1;
  WireStep open;
  auto flush = [&] {
    if (open.options.empty()) return;
    open.request = next_request++;
    steps.push_back(std::move(open));
    open = {};
  };
  for (const auto& event : feed) {
    if (event.kind == workload::QuoteFeedEvent::Kind::kHazardQuote) {
      flush();
      WireStep quote;
      quote.quote = true;
      quote.knot = static_cast<std::uint32_t>(event.knot);
      quote.rate = event.rate;
      steps.push_back(std::move(quote));
    } else {
      open.options.push_back(event.option);
      if (open.options.size() == request_size) flush();
    }
  }
  flush();
  return steps;
}

service::DeadlineClass parse_deadline_class(const Args& args) {
  const std::string name = args.get_or("class", "standard");
  const auto klass = service::find_deadline_class(name);
  CDSFLOW_EXPECT(klass.has_value(),
                 "--class must be interactive, standard or batch, got '" +
                     name + "'");
  return *klass;
}

int cmd_serve(const Args& args) {
  const auto [interest, hazard] = load_curves(args);

  const long n_tenants = args.get_long_or("tenants", 2);
  const long n_risk = args.get_long_or("risk-tenants", 0);
  CDSFLOW_EXPECT(n_tenants >= 1, "--tenants must be >= 1");
  CDSFLOW_EXPECT(n_risk >= 0 && n_risk <= n_tenants,
                 "--risk-tenants must lie in [0, --tenants]");
  const std::string engine = args.get_or("engine", "cpu-batch");
  const auto klass = parse_deadline_class(args);

  runtime::StreamConfig stream;
  stream.engine = engine;
  stream.lanes =
      static_cast<unsigned>(args.get_long_or("lanes", stream.lanes));
  stream.max_batch = static_cast<std::size_t>(
      args.get_long_or("max-batch", static_cast<long>(stream.max_batch)));
  stream.max_wait_us = static_cast<std::uint64_t>(
      args.get_long_or("max-wait-us", static_cast<long>(stream.max_wait_us)));

  // Admission fit: explicit flags pin a deterministic model; otherwise the
  // serving engine is probed and fitted (the planner's probe->fit protocol).
  engine::BackendCandidate fit;
  const bool pinned = args.get("ops-per-second").has_value();
  if (pinned) {
    fit.engine_name = engine;
    fit.watts = 1.0;
    fit.options_per_second = args.get_double_or("ops-per-second", 0.0);
    fit.setup_seconds = args.get_double_or("setup-s", 0.0);
    CDSFLOW_EXPECT(fit.options_per_second > 0.0,
                   "--ops-per-second must be positive");
  } else {
    fit = service::calibrate_stream_fit(interest, hazard, stream);
  }

  service::ServiceConfig config;
  config.stop_when_idle = args.get("stop-when-idle").has_value();
  for (long i = 1; i <= n_tenants; ++i) {
    service::TenantSpec spec;
    spec.id = static_cast<std::uint32_t>(i);
    spec.name = "tenant-" + std::to_string(i);
    spec.deadline = klass;
    spec.stream = stream;
    spec.fit = fit;
    if (i > n_tenants - n_risk) {
      spec.stream.engine = engine + "-risk";
      if (pinned) {
        spec.fit.engine_name = spec.stream.engine;
      } else {
        spec.fit = service::calibrate_stream_fit(interest, hazard,
                                                 spec.stream);
      }
    }
    config.tenants.push_back(std::move(spec));
  }

  net::ServerConfig server_config;
  server_config.unix_path = args.get_or("unix", "");
  server_config.tcp_port =
      static_cast<std::uint16_t>(args.get_long_or("port", 0));

  net::Server server(server_config);
  service::PricingService pricing(config, interest, hazard);

  if (!server_config.unix_path.empty()) {
    std::cout << "listening on unix:" << server.unix_path() << '\n';
  } else {
    std::cout << "listening on tcp port " << server.tcp_port() << '\n';
  }
  for (const auto& spec : config.tenants) {
    std::cout << "  tenant " << spec.id << " (" << spec.name << "): "
              << spec.stream.engine << " x"
              << (spec.stream.lanes == 0
                      ? std::string("auto")
                      : std::to_string(spec.stream.lanes))
              << " lane(s), class " << spec.deadline.name << " (deadline "
              << fixed(spec.deadline.deadline_seconds * 1e3, 1)
              << " ms, defer ceiling "
              << fixed(spec.deadline.defer_seconds * 1e3, 1)
              << " ms), fit " << with_thousands(spec.fit.options_per_second, 0)
              << " options/s + " << fixed(spec.fit.setup_seconds * 1e6, 1)
              << " us setup\n";
  }
  std::cout << (config.stop_when_idle
                    ? "serving until idle (all clients come and go)\n"
                    : "serving until killed\n");

  server.run(pricing);
  pricing.drain_all();

  const auto& stats = pricing.stats();
  std::cout << "served " << stats.frames << " frame(s): "
            << stats.quote_updates << " quote update(s), " << stats.requests
            << " request(s) -> " << stats.admitted << " admitted, "
            << stats.deferred << " deferred, " << stats.shed << " shed; "
            << stats.responses << " response(s), "
            << stats.rejects_malformed + stats.rejects_unknown_tenant +
                   stats.rejects_wrong_mode + stats.shed
            << " reject(s), " << stats.connections_poisoned
            << " poisoned connection(s)\n";
  if (args.get("latency-cdf")) {
    io::write_latency_cdf_csv(*args.get("latency-cdf"),
                              pricing.latency_rows());
    std::cout << "latency CDF written to " << *args.get("latency-cdf")
              << '\n';
  }
  return 0;
}

int cmd_client_replay(const Args& args) {
  const auto tenant =
      static_cast<std::uint32_t>(args.get_long_or("tenant", 1));
  CDSFLOW_EXPECT(tenant != 0, "--tenant 0 is reserved on the wire");
  const bool risk = args.get("risk").has_value();

  workload::QuoteFeedSpec spec;
  spec.events = static_cast<std::size_t>(args.get_long_or("events", 1024));
  spec.hazard_update_every =
      static_cast<std::size_t>(args.get_long_or("hazard-every", 64));
  spec.seed = static_cast<std::uint64_t>(args.get_long_or("seed", 42));
  spec.tenant = tenant;
  if (args.get("tenors")) {
    spec.book.maturity_tenor_grid =
        parse_edge_list(*args.get("tenors"), "--tenors");
  }
  const auto hazard = args.get("curve-hazard")
                          ? io::read_curve_csv(*args.get("curve-hazard"))
                          : workload::paper_hazard_curve();
  const auto steps = slice_feed_for_wire(
      workload::make_quote_feed(spec, hazard),
      static_cast<std::size_t>(args.get_long_or("request-size", 64)));

  net::Client client =
      args.get("unix")
          ? net::Client::connect_unix(*args.get("unix"))
          : net::Client::connect_tcp(
                args.get_or("host", "127.0.0.1"),
                static_cast<std::uint16_t>(args.get_long_or("port", 0)));

  // Pipelined replay: all frames out, then results in. The server responds
  // to requests in submission order per tenant, so responses can be matched
  // back positionally.
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t n_requests = 0;
  std::size_t n_options = 0;
  for (const auto& step : steps) {
    if (step.quote) {
      client.send(net::encode_quote_update(tenant, step.knot, step.rate));
    } else {
      client.send(
          net::encode_price_request(tenant, step.request, step.options, risk));
      ++n_requests;
      n_options += step.options.size();
    }
  }

  std::vector<cds::SpreadResult> results;
  results.reserve(n_options);
  std::size_t deferred = 0;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < n_requests; ++i) {
    const net::Frame frame = client.read_frame();
    if (frame.type == net::FrameType::kReject) {
      ++rejected;
      std::cout << "request " << frame.request << " rejected: "
                << net::to_string(frame.reason)
                << (frame.detail.empty() ? "" : " (" + frame.detail + ")")
                << '\n';
      continue;
    }
    CDSFLOW_EXPECT(frame.type == net::FrameType::kResult,
                   "unexpected frame type from server");
    if (frame.status == net::kResultDeferred) ++deferred;
    results.insert(results.end(), frame.results.begin(), frame.results.end());
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  client.close();

  std::cout << "tenant " << tenant << ": " << n_requests << " request(s) ("
            << n_options << " option(s), " << (risk ? "risk" : "price")
            << " mode), " << results.size() << " result row(s), " << deferred
            << " deferred, " << rejected << " rejected, " << fixed(wall, 3)
            << " s wall (" << with_thousands(n_options / std::max(wall, 1e-9), 0)
            << " options/s end-to-end)\n";
  if (args.get("out")) {
    io::write_results_csv(*args.get("out"), results);
    std::cout << "results written to " << *args.get("out") << '\n';
  }
  return rejected == 0 ? 0 : 1;
}

int cmd_cluster_worker(const Args& args) {
  const auto [interest, hazard] = load_curves(args);

  cluster::WorkerConfig config;
  config.runtime.engine = args.get_or("engine", "cpu-batch");
  config.runtime.workers =
      static_cast<unsigned>(args.get_long_or("workers", 1));
  config.runtime.shard_size =
      static_cast<std::size_t>(args.get_long_or("shard-size", 0));
  if (args.get("ops-per-second")) {
    config.fit.options_per_second =
        args.get_double_or("ops-per-second", 0.0);
    CDSFLOW_EXPECT(config.fit.options_per_second > 0.0,
                   "--ops-per-second must be positive");
    config.fit.setup_seconds = args.get_double_or("setup-s", 0.0);
  }
  config.fit.watts = args.get_double_or("watts", 0.0);
  if (args.get("probe-sizes")) {
    config.probe_sizes.clear();
    for (const double v :
         parse_edge_list(*args.get("probe-sizes"), "--probe-sizes")) {
      CDSFLOW_EXPECT(v >= 1.0, "--probe-sizes entries must be >= 1");
      config.probe_sizes.push_back(static_cast<std::size_t>(v));
    }
  }
  config.stop_when_idle = args.get("stop-when-idle").has_value();

  net::ServerConfig server_config;
  server_config.unix_path = args.get_or("unix", "");
  server_config.tcp_port =
      static_cast<std::uint16_t>(args.get_long_or("port", 0));

  // Server first so the socket is already listening while a cold fit
  // calibrates -- coordinators retry their connect until then.
  net::Server server(server_config);
  cluster::ClusterWorker worker(interest, hazard, std::move(config));

  if (!server_config.unix_path.empty()) {
    std::cout << "cluster worker on unix:" << server.unix_path() << '\n';
  } else {
    std::cout << "cluster worker on tcp port " << server.tcp_port() << '\n';
  }
  std::cout << "  engine " << worker.fit().engine_name << " ("
            << (worker.risk_mode() ? "risk" : "price") << " mode), fit "
            << with_thousands(worker.fit().options_per_second, 0)
            << " options/s + " << fixed(worker.fit().setup_seconds * 1e6, 1)
            << " us setup, " << fixed(worker.fit().watts, 1) << " W\n";

  server.run(worker);

  const auto& stats = worker.stats();
  std::cout << "served " << stats.probes << " probe(s), " << stats.shards
            << " shard(s) (" << stats.options << " option(s)), "
            << stats.rejects << " reject(s), " << stats.connections_poisoned
            << " poisoned connection(s)\n";
  return 0;
}

int cmd_cluster_price(const Args& args) {
  const auto book = load_book(args);
  const bool risk = args.get("risk").has_value();
  const auto nodes_arg = args.get("nodes");
  CDSFLOW_EXPECT(nodes_arg.has_value() && !nodes_arg->empty(),
                 "--nodes unix:/path[,...] or host:port[,...] is required");

  cluster::CoordinatorConfig config;
  config.shard_size =
      static_cast<std::size_t>(args.get_long_or("shard-size", 0));
  config.deadline_seconds = args.get_double_or("deadline-s", 3600.0);
  CDSFLOW_EXPECT(config.deadline_seconds > 0.0, "--deadline-s must be > 0");
  config.risk = risk;
  const double connect_timeout = args.get_double_or("connect-timeout-s", 5.0);
  const double bandwidth = args.get_double_or("bandwidth", 1.0e9);
  CDSFLOW_EXPECT(bandwidth > 0.0, "--bandwidth must be > 0");

  std::size_t begin = 0;
  const std::string& specs = *nodes_arg;
  while (begin <= specs.size()) {
    const std::size_t comma = std::min(specs.find(',', begin), specs.size());
    const std::string field = specs.substr(begin, comma - begin);
    CDSFLOW_EXPECT(!field.empty(), "--nodes contains an empty entry");
    cluster::NodeSpec spec;
    spec.connect_timeout_seconds = connect_timeout;
    spec.link.bytes_per_second = bandwidth;
    if (field.rfind("unix:", 0) == 0) {
      spec.unix_path = field.substr(5);
      CDSFLOW_EXPECT(!spec.unix_path.empty(),
                     "--nodes unix: entry needs a path");
    } else {
      const std::size_t colon = field.rfind(':');
      CDSFLOW_EXPECT(colon != std::string::npos && colon + 1 < field.size(),
                     "--nodes entry '" + field +
                         "' is neither unix:/path nor host:port");
      spec.host = field.substr(0, colon);
      spec.tcp_port = static_cast<std::uint16_t>(
          parse_long_strict(field.substr(colon + 1), "--nodes port"));
    }
    config.nodes.push_back(std::move(spec));
    begin = comma + 1;
  }

  cluster::ClusterCoordinator coordinator(std::move(config));
  std::cout << "cluster of " << coordinator.nodes().size() << " node(s):\n";
  for (const auto& node : coordinator.nodes()) {
    std::cout << "  " << node.address << ": " << node.fit.engine_name
              << ", fit " << with_thousands(node.fit.options_per_second, 0)
              << " options/s + " << fixed(node.fit.setup_seconds * 1e6, 1)
              << " us setup, " << fixed(node.fit.watts, 1) << " W, link "
              << fixed(node.link.latency_seconds * 1e6, 1) << " us + "
              << with_thousands(node.link.bytes_per_second, 0) << " B/s\n";
  }

  const auto run = coordinator.price(book);
  std::cout << "plan: " << run.plan.n_shards << " shard(s) of "
            << run.shard_size << " (assignment";
  for (std::size_t k = 0; k < run.plan.shards_per_node.size(); ++k) {
    std::cout << (k == 0 ? " " : " / ") << run.plan.shards_per_node[k];
  }
  std::cout << "), projected " << fixed(run.plan.projected_seconds * 1e3, 3)
            << " ms\n";
  std::cout << "priced " << run.run.results.size() << " option(s) ("
            << (risk ? "risk" : "price") << " mode): modelled "
            << with_thousands(run.run.options_per_second, 0)
            << " options/s, wall "
            << with_thousands(run.wall_options_per_second, 0)
            << " options/s";
  if (run.resubmissions > 0 || run.nodes_lost > 0) {
    std::cout << "; " << run.nodes_lost << " node(s) lost, "
              << run.resubmissions << " shard(s) resubmitted";
  }
  std::cout << '\n';

  if (args.get("out")) {
    io::write_results_csv(*args.get("out"), run.run.results);
    std::cout << "results written to " << *args.get("out") << '\n';
  }

  if (args.get("verify")) {
    // Re-price locally on the engine the workers report and compare every
    // row bit for bit (assumes the workers serve the same curves).
    const auto [interest, hazard] = load_curves(args);
    runtime::RuntimeConfig local_config;
    local_config.engine = coordinator.nodes().front().fit.engine_name;
    local_config.workers = 1;
    runtime::PortfolioRuntime local(interest, hazard, local_config);
    const auto reference = local.price(book);
    bool identical = reference.run.results.size() == run.run.results.size() &&
                     reference.run.sensitivities.size() ==
                         run.run.sensitivities.size();
    for (std::size_t i = 0; identical && i < run.run.results.size(); ++i) {
      identical = reference.run.results[i].id == run.run.results[i].id &&
                  std::bit_cast<std::uint64_t>(
                      reference.run.results[i].spread_bps) ==
                      std::bit_cast<std::uint64_t>(
                          run.run.results[i].spread_bps);
    }
    for (std::size_t i = 0; identical && i < run.run.sensitivities.size();
         ++i) {
      const auto& a = reference.run.sensitivities[i];
      const auto& b = run.run.sensitivities[i];
      identical =
          std::bit_cast<std::uint64_t>(a.cs01) ==
              std::bit_cast<std::uint64_t>(b.cs01) &&
          std::bit_cast<std::uint64_t>(a.ir01) ==
              std::bit_cast<std::uint64_t>(b.ir01) &&
          std::bit_cast<std::uint64_t>(a.rec01) ==
              std::bit_cast<std::uint64_t>(b.rec01) &&
          std::bit_cast<std::uint64_t>(a.jtd) ==
              std::bit_cast<std::uint64_t>(b.jtd);
    }
    std::cout << "verify vs local " << local_config.engine << ": "
              << (identical ? "bit-identical" : "MISMATCH") << '\n';
    if (!identical) {
      return 1;
    }
  }
  return 0;
}

int cmd_build_info() {
  // Machine-readable build provenance, one key=value per line. CI guards
  // parse this: scripts/cluster_smoke.sh refuses to certify a clang build
  // whose thread-safety annotations were compiled out (a silently
  // unchecked locking discipline), and the lint job records the compiler
  // the binaries under test were built with.
#if defined(__clang__)
  std::cout << "compiler=clang\n"
            << "compiler_version=" << __clang_major__ << '.'
            << __clang_minor__ << '\n';
#elif defined(__GNUC__)
  std::cout << "compiler=gcc\n"
            << "compiler_version=" << __GNUC__ << '.' << __GNUC_MINOR__
            << '\n';
#else
  std::cout << "compiler=unknown\ncompiler_version=0.0\n";
#endif
#if defined(CDSFLOW_THREAD_SAFETY_ANNOTATED)
  std::cout << "thread_safety_annotations=on\n";
#else
  std::cout << "thread_safety_annotations=off\n";
#endif
#if defined(NDEBUG)
  std::cout << "assertions=off\n";
#else
  std::cout << "assertions=on\n";
#endif
  return 0;
}

int usage() {
  std::cerr << "usage: cdsflow_cli <price|risk|stream|sweep|serve|"
               "client-replay|cluster-worker|cluster-price|bootstrap|"
               "engines|device|build-info> [--flag value ...]\n"
               "see the file header of tools/cdsflow_cli.cpp for details\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (command == "price") return cmd_price(args);
    if (command == "risk") return cmd_risk(args);
    if (command == "stream") return cmd_stream(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "client-replay") return cmd_client_replay(args);
    if (command == "cluster-worker") return cmd_cluster_worker(args);
    if (command == "cluster-price") return cmd_cluster_price(args);
    if (command == "bootstrap") return cmd_bootstrap(args);
    if (command == "engines") return cmd_engines();
    if (command == "device") return cmd_device(args);
    if (command == "build-info") return cmd_build_info();
    return usage();
  } catch (const cdsflow::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
