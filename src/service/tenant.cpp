#include "service/tenant.hpp"

#include <chrono>
#include <cmath>

#include "cds/stream_pricer.hpp"
#include "common/error.hpp"
#include "engines/registry.hpp"
#include "net/codec.hpp"
#include "workload/options.hpp"

namespace cdsflow::service {

engine::BackendCandidate calibrate_stream_fit(
    const cds::TermStructure& interest, const cds::TermStructure& hazard,
    const runtime::StreamConfig& stream,
    const std::vector<std::size_t>& probe_sizes) {
  CDSFLOW_EXPECT(!probe_sizes.empty(), "calibration needs probe sizes");

  engine::CpuEngineConfig cpu;
  CDSFLOW_EXPECT(engine::parse_cpu_engine_name(stream.engine, cpu),
                 "calibration needs a CPU-family engine name");
  cds::StreamPricerConfig pricer_config;
  pricer_config.risk_mode = cpu.risk_mode;
  pricer_config.risk_bump = stream.risk_bump;
  pricer_config.ladder_edges = stream.ladder_edges;
  if (cpu.vector_kernel) {
    pricer_config.kernel_level = cds::simd::active_level();
  }

  // The planner's probe protocol (one warmup, best of two timed repeats)
  // against the exact pricer a tenant lane will run. A fresh pricer per
  // size keeps the grid-cache state comparable to a lane's cold start --
  // the fit's setup term is precisely that cost.
  std::vector<engine::ProbeMeasurement> probes;
  for (const std::size_t size : probe_sizes) {
    workload::PortfolioSpec book;
    book.count = size;
    book.seed = 7;
    const auto options = workload::make_portfolio(book);
    std::vector<cds::SpreadResult> out(options.size());
    std::vector<cds::Sensitivities> greeks;
    std::vector<double> ladder;

    double best = 0.0;
    for (unsigned repeat = 0; repeat < 3; ++repeat) {
      cds::StreamPricer pricer(interest, hazard, pricer_config);
      if (pricer_config.risk_mode) {
        greeks.resize(options.size());
        ladder.resize(options.size() * pricer.ladder_buckets());
      }
      const auto t0 = std::chrono::steady_clock::now();
      if (pricer_config.risk_mode) {
        pricer.price_with_sensitivities(options, out, greeks, ladder);
      } else {
        pricer.price(options, out);
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double seconds = std::chrono::duration<double>(t1 - t0).count();
      if (repeat == 0) continue;  // discarded warmup
      best = (best == 0.0) ? seconds : std::min(best, seconds);
    }
    probes.push_back({size, std::max(best, 1e-9)});
  }
  return engine::fit_backend_model(stream.engine, 1.0, std::move(probes));
}

TenantSession::TenantSession(TenantSpec spec,
                             const cds::TermStructure& interest,
                             const cds::TermStructure& hazard)
    : spec_(std::move(spec)),
      hazard_knots_(hazard.size()),
      runtime_(interest, hazard, spec_.stream),
      admission_(spec_.fit, runtime_.lanes()) {
  CDSFLOW_EXPECT(spec_.id != 0, "tenant id 0 is reserved on the wire");
}

bool TenantSession::push_quote(std::uint32_t knot, double rate,
                               std::string* error) {
  // Semantic validation the codec deliberately leaves to the service: the
  // runtime's dispatcher applies updates on its own thread, so a bad knot
  // must be refused here, not discovered as a lane failure later.
  if (knot >= hazard_knots_) {
    if (error != nullptr) {
      *error = "hazard knot " + std::to_string(knot) + " out of range (curve " +
               "has " + std::to_string(hazard_knots_) + " knots)";
    }
    return false;
  }
  if (!std::isfinite(rate) || rate <= 0.0) {
    if (error != nullptr) *error = "hazard rate must be finite and positive";
    return false;
  }
  runtime_.push_hazard_quote(knot, rate);
  return true;
}

AdmissionDecision TenantSession::submit(
    int conn, std::uint32_t request,
    const std::vector<cds::CdsOption>& options, double now_seconds) {
  CDSFLOW_EXPECT(!drained_, "tenant session already drained");
  const AdmissionDecision decision = admission_.decide(
      spec_.id, request, options.size(), now_seconds, spec_.deadline);
  if (decision == AdmissionDecision::kShed) return decision;

  // Admitted work enters the event stream atomically in frame order; the
  // runtime's ordered merge then guarantees the request owns a contiguous
  // result span (see file header).
  Pending pending;
  pending.conn = conn;
  pending.request = request;
  pending.n_options = options.size();
  pending.status = decision == AdmissionDecision::kDefer
                       ? net::kResultDeferred
                       : net::kResultOnTime;
  pending.arrival_seconds = now_seconds;
  for (const auto& option : options) runtime_.push(option);
  pending_.push_back(pending);
  return decision;
}

std::vector<TenantSession::Completed> TenantSession::complete_ready(
    double now_seconds) {
  std::vector<Completed> done;
  while (!pending_.empty() &&
         buffered_results_.size() >= pending_.front().n_options) {
    const Pending& pending = pending_.front();
    Completed completed;
    completed.conn = pending.conn;
    completed.request = pending.request;
    completed.status = pending.status;
    completed.risk = risk();
    const auto end =
        buffered_results_.begin() +
        static_cast<std::ptrdiff_t>(pending.n_options);
    completed.results.assign(buffered_results_.begin(), end);
    buffered_results_.erase(buffered_results_.begin(), end);
    if (risk()) {
      const auto gend = buffered_greeks_.begin() +
                        static_cast<std::ptrdiff_t>(pending.n_options);
      completed.greeks.assign(buffered_greeks_.begin(), gend);
      buffered_greeks_.erase(buffered_greeks_.begin(), gend);
    }
    completed.latency_us = (now_seconds - pending.arrival_seconds) * 1e6;
    latency_us_.push_back(completed.latency_us);
    consumed_events_ += pending.n_options;
    pending_.pop_front();
    done.push_back(std::move(completed));
  }
  return done;
}

std::vector<TenantSession::Completed> TenantSession::poll(double now_seconds) {
  CDSFLOW_EXPECT(!drained_, "tenant session already drained");
  for (auto& batch : runtime_.poll_batches()) {
    buffered_results_.insert(buffered_results_.end(), batch.results.begin(),
                             batch.results.end());
    if (risk()) {
      buffered_greeks_.insert(buffered_greeks_.end(),
                              batch.sensitivities.begin(),
                              batch.sensitivities.end());
    }
  }
  return complete_ready(now_seconds);
}

std::vector<TenantSession::Completed> TenantSession::drain(
    double now_seconds) {
  CDSFLOW_EXPECT(!drained_, "tenant session already drained");
  drained_ = true;
  const runtime::StreamReport report = runtime_.finish();
  // The collector kept every batch (poll_batches only copies), so the
  // merged report re-derives the full ordered stream; everything past what
  // has been sliced into responses is still owed to pending requests.
  CDSFLOW_ASSERT(report.run.results.size() >= consumed_events_,
                 "drained stream shorter than consumed prefix");
  buffered_results_.assign(
      report.run.results.begin() +
          static_cast<std::ptrdiff_t>(consumed_events_),
      report.run.results.end());
  if (risk()) {
    buffered_greeks_.assign(
        report.run.sensitivities.begin() +
            static_cast<std::ptrdiff_t>(consumed_events_),
        report.run.sensitivities.end());
  }
  auto done = complete_ready(now_seconds);
  CDSFLOW_ASSERT(pending_.empty(),
                 "drained session left requests without results");
  return done;
}

}  // namespace cdsflow::service
