/// \file bench_ablation_acc_ii.cpp
/// Ablation: the accumulation initiation interval.
///
/// The paper's analysis pins the library engine's slowness on one number:
/// the II=7 of the carried double-precision add in the hazard scan. This
/// sweep prices the same workload with the accumulation II forced to 1..14
/// on the *baseline* engine structure, isolating how much of the engine's
/// cost is that single dependency -- and showing that the Listing-1 fix
/// (II=1) captures nearly all of the available gain, since the remaining
/// cost is the interpolation scans the dataflow rewrite overlaps instead.
///
/// Usage: bench_ablation_acc_ii [n_options]

#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "engines/xilinx_baseline.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 192;

  const auto scenario = workload::paper_scenario(n_options);
  std::cout << "== Ablation: accumulation II on the sequential engine ==\n"
            << "(the Vitis library ships with II=7 -- the carried double "
               "add; Listing 1 achieves II=1)\n\n";

  report::Table table("Baseline-structure throughput vs accumulation II");
  table.set_columns({"Accumulation II", "Options/s", "vs II=7",
                     "Hazard-scan share of option"});
  double at7 = 0.0;
  {
    engine::FpgaEngineConfig ref_cfg;
    ref_cfg.cost.baseline_accumulation_ii = 7;
    engine::XilinxBaselineEngine ref(scenario.interest, scenario.hazard,
                                     ref_cfg);
    at7 = ref.price(scenario.options).options_per_second;
  }
  for (const unsigned ii : {1u, 2u, 4u, 7u, 10u, 14u}) {
    engine::FpgaEngineConfig cfg;
    cfg.cost.baseline_accumulation_ii = ii;
    engine::XilinxBaselineEngine engine(scenario.interest, scenario.hazard,
                                        cfg);
    const auto run = engine.price(scenario.options);

    // Share of one option's cycles spent in the hazard scan.
    sim::Cycle hazard = 0, total = 0;
    for (const auto& span :
         engine.option_stage_spans(scenario.options.front())) {
      total += span.cycles;
      if (std::string(span.stage) == "default_probability") {
        hazard += span.cycles;
      }
    }
    table.add_row({std::to_string(ii),
                   with_thousands(run.options_per_second, 2),
                   fixed(run.options_per_second / at7, 2) + "x",
                   fixed(100.0 * double(hazard) / double(total), 1) + "%"});
  }
  std::cout << table.render_text()
            << "\neven at II=1 the sequential structure is dominated by the "
               "two interpolating PV loops -- the dataflow rewrite (stage "
               "overlap + single shared discount) is what unlocks the rest "
               "of the paper's 8x.\n";
  return 0;
}
