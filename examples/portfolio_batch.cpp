/// \file portfolio_batch.cpp
/// The paper's motivating scenario (Sec. I): overnight batch pricing of a
/// large CDS book under a deadline, choosing between a multi-core CPU and an
/// FPGA card. Prices the same portfolio on both back-ends, validates they
/// agree, and reports throughput, projected batch completion time and energy
/// per million options.
///
/// Run:  ./portfolio_batch [n_options]

#include <cstdlib>
#include <iostream>
#include <thread>

#include "common/format.hpp"
#include "common/stats.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/multi_engine.hpp"
#include "engines/planner.hpp"
#include "fpga/power.hpp"
#include "report/table.hpp"
#include "runtime/portfolio_runtime.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;

  const auto scenario = workload::paper_scenario(n_options, /*seed=*/2026);
  std::cout << "overnight batch: " << n_options << " CDS options, "
            << scenario.description << "\n\n";

  // --- CPU back-end (real execution) -----------------------------------------
  const unsigned threads = std::max(1u, std::thread::hardware_concurrency());
  engine::CpuEngine cpu(scenario.interest, scenario.hazard,
                        {.threads = threads});
  const auto cpu_run = cpu.price(scenario.options);

  // --- FPGA back-end (simulated 5-engine U280) --------------------------------
  engine::MultiEngineConfig fpga_cfg;
  fpga_cfg.n_engines = 5;
  fpga_cfg.device = fpga::alveo_u280();
  engine::MultiEngine fpga(scenario.interest, scenario.hazard, fpga_cfg);
  const auto fpga_run = fpga.price(scenario.options);

  // --- sharded runtime (4 concurrent simulated cards) -------------------------
  runtime::RuntimeConfig rt_cfg;
  rt_cfg.engine = "vectorised";
  rt_cfg.workers = 4;
  runtime::PortfolioRuntime rt(scenario.interest, scenario.hazard, rt_cfg);
  const auto rt_run = rt.price(scenario.options);

  // --- validation: both back-ends agree ---------------------------------------
  double max_rel = 0.0;
  for (std::size_t i = 0; i < n_options; ++i) {
    max_rel = std::max(max_rel,
                       relative_difference(cpu_run.results[i].spread_bps,
                                           fpga_run.results[i].spread_bps));
  }
  std::cout << "cross-validation: max relative spread difference "
            << compact(max_rel) << " (accumulation-order effects only)\n\n";

  // --- report -------------------------------------------------------------------
  const fpga::CpuPowerModel cpu_power;
  const fpga::FpgaPowerModel fpga_power;
  const double cpu_watts = cpu_power.watts(threads);
  const double fpga_watts = fpga_power.watts(fpga_cfg.n_engines);

  report::Table table("Batch pricing back-ends");
  table.set_columns({"Back-end", "Options/s", "1M options in", "Watts",
                     "kJ per 1M options"});
  auto add = [&table](const std::string& name, double ops, double watts) {
    const double seconds_per_million = 1e6 / ops;
    table.add_row({name, with_thousands(ops, 0),
                   format_duration_ns(seconds_per_million * 1e9),
                   fixed(watts, 1),
                   fixed(watts * seconds_per_million / 1e3, 2)});
  };
  add("CPU x" + std::to_string(threads) + " threads (measured)",
      cpu_run.options_per_second, cpu_watts);
  add("FPGA x5 engines (simulated U280)", fpga_run.options_per_second,
      fpga_watts);
  add("Runtime: 4 sharded vectorised lanes (modelled)",
      rt_run.run.options_per_second, 4 * fpga_power.watts(1));
  std::cout << table.render_text() << '\n';
  bool rt_identical = rt_run.run.results.size() == n_options;
  for (std::size_t i = 0; rt_identical && i < n_options; ++i) {
    rt_identical = rt_run.run.results[i].id == fpga_run.results[i].id &&
                   rt_run.run.results[i].spread_bps ==
                       fpga_run.results[i].spread_bps;
  }
  std::cout << "sharded runtime: " << rt_run.shards.size()
            << " shards of <= " << rt_run.shard_size << " options over "
            << rt_run.lanes << " lanes; results "
            << (rt_identical ? "match" : "DO NOT match")
            << " the single-engine ordering bit for bit\n\n";

  // --- book statistics -------------------------------------------------------------
  RunningStats spreads;
  for (const auto& r : fpga_run.results) spreads.add(r.spread_bps);
  std::cout << "book spread statistics: mean " << fixed(spreads.mean(), 1)
            << " bps, min " << fixed(spreads.min(), 1) << ", max "
            << fixed(spreads.max(), 1) << ", stddev "
            << fixed(spreads.stddev(), 1) << "\n\n";

  // --- capacity planning: 10M options before a 2-minute deadline --------------
  const engine::BatchRequirements requirements{.n_options = 10'000'000,
                                               .deadline_seconds = 120.0};
  engine::PlannerConfig planner_cfg;
  // Two probe sizes calibrate the affine (setup + per-option) cost model;
  // the larger one is big enough that CPU thread spin-up amortises fairly.
  planner_cfg.probe_sizes = {128, 512};
  const auto candidates = engine::enumerate_backends(
      scenario.interest, scenario.hazard, planner_cfg);
  const auto plan = engine::plan_batch(candidates, requirements);

  report::Table plan_table(
      "deadline plan: 10M options in <= 120 s (cheapest feasible first)");
  plan_table.set_columns(
      {"Back-end", "Projected time", "Projected energy", "Feasible"});
  for (const auto& entry : plan) {
    plan_table.add_row(
        {entry.candidate.engine_name,
         format_duration_ns(entry.projected_seconds * 1e9),
         fixed(entry.projected_joules / 1e3, 1) + " kJ",
         entry.meets_deadline ? "yes" : "NO"});
  }
  std::cout << plan_table.render_text();
  if (const auto best = engine::best_plan(plan)) {
    std::cout << "planner picks: " << best->candidate.engine_name << '\n';
  } else {
    std::cout << "no back-end meets the deadline -- scale out\n";
  }

  // --- full runtime plan: engine x workers x shard_size ------------------------
  const auto runtime_plans =
      engine::plan_runtime(candidates, requirements, planner_cfg);
  if (const auto best = engine::best_runtime_plan(runtime_plans)) {
    std::cout << "auto-planner picks: " << best->config.engine << " x "
              << best->config.workers << " worker(s), shard size "
              << best->config.shard_size << " ("
              << format_duration_ns(best->projected_seconds * 1e9)
              << " projected; the config plugs straight into "
                 "PortfolioRuntime)\n";
  }
  return 0;
}
