#include "cds/vector_kernel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cds/legs.hpp"
#include "cds/vector_kernel_arch.hpp"
#include "common/error.hpp"

namespace cdsflow::cds::simd {

namespace {

// The arch TUs address these types as raw strided doubles.
static_assert(sizeof(TimePoint) == 2 * sizeof(double) &&
                  offsetof(TimePoint, t) == 0,
              "TimePoint must be two packed doubles starting at t");
static_assert(sizeof(CdsOption) == 4 * sizeof(double) &&
                  offsetof(CdsOption, recovery_rate) == 3 * sizeof(double),
              "CdsOption must be 4 double-slots with recovery_rate last");
static_assert(sizeof(SpreadResult) == 2 * sizeof(double) &&
                  offsetof(SpreadResult, spread_bps) == sizeof(double),
              "SpreadResult must be two double-slots with the spread second");

PrefixView view(const HazardPrefix& prefix) {
  return {prefix.times.data(), prefix.rates.data(), prefix.lambda.data(),
          prefix.times.size(), SearchLut{}};
}

CurveView view(const TermStructure& curve) {
  return {curve.times().data(), curve.values().data(), curve.size(),
          SearchLut{}};
}

/// Points the arch kernel covers: the largest multiple of the lane width.
std::size_t vector_head(std::size_t n, Level level) {
  const std::size_t w = lanes(level);
  return n - n % w;
}

/// Scalar twin of the arch TUs' exp_pd (vector_kernel_impl.hpp), operation
/// for operation: std::fma is the single-rounding scalar counterpart of the
/// lane fmadd/fnmadd, so for any finite input this returns the exact bits a
/// vector lane would. The vector-level column tails run this instead of
/// std::exp so a point's value never depends on whether it landed in the
/// lane head or the tail -- i.e. on where the batch arena happened to end.
/// That is what keeps vector-level results invariant under sharding, thread
/// chunking and micro-batching (the runtime's determinism guarantees), and
/// incremental per-grid re-tabulation bit-consistent with an arena-wide
/// rebuild. kScalar keeps std::exp: the scalar reference, bit-identical to
/// the scalar batch kernel.
double exp_pd_scalar(double x) {
  constexpr double kLog2e = 1.44269504088896340736;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kMagic = 6755399441055744.0;  // 2^52 + 2^51

  x = x < -708.0 ? -708.0 : (x > 708.0 ? 708.0 : x);

  const double t = std::fma(x, kLog2e, kMagic);
  const double n = t - kMagic;
  const std::int64_t ni =
      std::bit_cast<std::int64_t>(t) - std::bit_cast<std::int64_t>(kMagic);

  double r = std::fma(-n, kLn2Hi, x);
  r = std::fma(-n, kLn2Lo, r);

  double p = 1.0 / 6227020800.0;         // 1/13!
  p = std::fma(p, r, 1.0 / 479001600.0);  // 1/12!
  p = std::fma(p, r, 1.0 / 39916800.0);   // 1/11!
  p = std::fma(p, r, 1.0 / 3628800.0);    // 1/10!
  p = std::fma(p, r, 1.0 / 362880.0);     // 1/9!
  p = std::fma(p, r, 1.0 / 40320.0);      // 1/8!
  p = std::fma(p, r, 1.0 / 5040.0);       // 1/7!
  p = std::fma(p, r, 1.0 / 720.0);        // 1/6!
  p = std::fma(p, r, 1.0 / 120.0);        // 1/5!
  p = std::fma(p, r, 1.0 / 24.0);         // 1/4!
  p = std::fma(p, r, 1.0 / 6.0);          // 1/3!
  p = std::fma(p, r, 0.5);                // 1/2!
  p = std::fma(p, r, 1.0);
  p = std::fma(p, r, 1.0);

  const double scale = std::bit_cast<double>(
      static_cast<std::uint64_t>(ni + 1023) << 52);
  return p * scale;
}

/// Builds the bucketed search-acceleration table documented on SearchLut
/// (vector_kernel_arch.hpp): bucket width at most half the smallest knot
/// gap, buckets[k] = the exact bound index of the anchor fma(k, width, t0).
/// The arch kernels then resolve any query with two gathers instead of a
/// log2(knots)-step gather chain, landing on the *identical* index.
///
/// Returns false -- leaving the view's table empty, so the kernels keep the
/// plain binary search -- for degenerate curves (fewer than two knots, or a
/// non-increasing gap) and when the required table would outgrow 8x the
/// knot count (strongly non-uniform spacing: the build would cost more than
/// the queries save).
bool build_search_lut(const double* times, std::size_t n, bool upper,
                      std::vector<std::int64_t>& buckets, SearchLut& lut) {
  if (n < 2) return false;
  double min_gap = times[1] - times[0];
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double gap = times[i + 1] - times[i];
    min_gap = gap < min_gap ? gap : min_gap;
  }
  if (!(min_gap > 0.0)) return false;
  const double range = times[n - 1] - times[0];
  const double needed = std::ceil(range / (0.5 * min_gap)) + 1.0;
  if (!(needed <= 8.0 * static_cast<double>(n))) return false;
  lut.n_buckets = static_cast<std::int64_t>(needed);
  lut.t0 = times[0];
  lut.width = range / static_cast<double>(lut.n_buckets);
  lut.inv_width = 1.0 / lut.width;
  buckets.resize(static_cast<std::size_t>(lut.n_buckets));
  const double* end = times + n;
  for (std::int64_t k = 0; k < lut.n_buckets; ++k) {
    const double anchor = std::fma(static_cast<double>(k), lut.width, lut.t0);
    const double* it = upper ? std::upper_bound(times, end, anchor)
                             : std::lower_bound(times, end, anchor);
    buckets[static_cast<std::size_t>(k)] = it - times;
  }
  lut.buckets = buckets.data();
  return true;
}

/// The table costs O(n_buckets) ~ O(knots) to build, so it only pays when
/// the call amortises it over enough points: arena-wide tabulations (every
/// batch/risk pass) qualify, per-grid stream re-tabulations (~tens of
/// points against a large curve) keep the binary search. Either path
/// produces the same indices, hence the same bits.
bool lut_worthwhile(std::size_t n_points, std::size_t n_knots) {
  return n_points >= 2 * n_knots;
}

Level min_level(Level a, Level b) { return a < b ? a : b; }

Level env_clamp(Level detected) {
  const char* env = std::getenv("CDSFLOW_SIMD");
  if (env == nullptr) return detected;
  if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    return min_level(detected, Level::kAvx2);
  }
  if (std::strcmp(env, "avx512") == 0) {
    return min_level(detected, Level::kAvx512);
  }
  return detected;  // unknown values are ignored, never widen
}

}  // namespace

bool compiled_with_simd() {
#if defined(CDSFLOW_HAVE_AVX2) || defined(CDSFLOW_HAVE_AVX512)
  return true;
#else
  return false;
#endif
}

Level detect_level() {
#if defined(CDSFLOW_HAVE_AVX2) || defined(CDSFLOW_HAVE_AVX512)
  static const Level detected = [] {
#if defined(CDSFLOW_HAVE_AVX512)
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl")) {
      return Level::kAvx512;
    }
#endif
#if defined(CDSFLOW_HAVE_AVX2)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return Level::kAvx2;
    }
#endif
    return Level::kScalar;
  }();
  return detected;
#else
  return Level::kScalar;
#endif
}

Level active_level() {
  static const Level active = env_clamp(detect_level());
  return active;
}

Level resolve_level(Level level) { return min_level(level, detect_level()); }

unsigned lanes(Level level) {
  switch (level) {
    case Level::kAvx512:
      return 8;
    case Level::kAvx2:
      return 4;
    case Level::kScalar:
      return 1;
  }
  return 1;
}

const char* to_string(Level level) {
  switch (level) {
    case Level::kAvx512:
      return "avx512";
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
      return "scalar";
  }
  return "scalar";
}

void survival_column(const HazardPrefix& prefix,
                     std::span<const TimePoint> points, std::span<double> out,
                     Level level) {
  CDSFLOW_ASSERT(out.size() == points.size(),
                 "survival column span must match the schedule length");
  const Level run = resolve_level(level);
  std::size_t head = 0;
  if (run != Level::kScalar) {
    head = vector_head(points.size(), run);
    // maybe_unused: with no arch TU compiled in (CDSFLOW_DISABLE_SIMD) the
    // dispatch blocks below vanish and this branch is dead code.
    [[maybe_unused]] const double* ts = &points.data()->t;
    PrefixView pv = view(prefix);
    std::vector<std::int64_t> lut_storage;
    if (lut_worthwhile(head, prefix.times.size())) {
      build_search_lut(pv.times, pv.size, /*upper=*/false, lut_storage,
                       pv.lut);
    }
#if defined(CDSFLOW_HAVE_AVX512)
    if (run == Level::kAvx512) {
      detail_avx512::survival_column(pv, ts, 2, head, out.data());
    }
#endif
#if defined(CDSFLOW_HAVE_AVX2)
    if (run == Level::kAvx2) {
      detail_avx2::survival_column(pv, ts, 2, head, out.data());
    }
#endif
    // Lane tail: Lambda via the reference expressions (which the lanes
    // already match bit for bit), exp via the scalar exp_pd twin -- the
    // column's bits are independent of where the head ends.
    for (std::size_t i = head; i < points.size(); ++i) {
      out[i] = exp_pd_scalar(-integrated_hazard_prefix(prefix, points[i].t));
    }
    return;
  }
  // kScalar: the scalar reference arithmetic, bit-identical to the batch
  // kernel's fused walk.
  for (std::size_t i = 0; i < points.size(); ++i) {
    out[i] = survival_probability_prefix(prefix, points[i].t);
  }
}

void discount_column(const TermStructure& interest,
                     std::span<const TimePoint> points, std::span<double> out,
                     Level level) {
  CDSFLOW_ASSERT(out.size() == points.size(),
                 "discount column span must match the schedule length");
  const Level run = resolve_level(level);
  if (run != Level::kScalar) {
    std::size_t head = 0;
    // A single-knot curve interpolates to a constant; the arch kernels
    // assume size >= 2 so their bracket gathers stay in range.
    if (interest.size() >= 2) {
      head = vector_head(points.size(), run);
      [[maybe_unused]] const double* ts = &points.data()->t;
      CurveView cv = view(interest);
      std::vector<std::int64_t> lut_storage;
      if (lut_worthwhile(head, interest.size())) {
        build_search_lut(cv.times, cv.size, /*upper=*/true, lut_storage,
                         cv.lut);
      }
#if defined(CDSFLOW_HAVE_AVX512)
      if (run == Level::kAvx512) {
        detail_avx512::discount_column(cv, ts, 2, head, out.data());
      }
#endif
#if defined(CDSFLOW_HAVE_AVX2)
      if (run == Level::kAvx2) {
        detail_avx2::discount_column(cv, ts, 2, head, out.data());
      }
#endif
    }
    // Lane tail: interpolation is the reference expression either way; exp
    // via the scalar exp_pd twin keeps the bits alignment-independent.
    for (std::size_t i = head; i < points.size(); ++i) {
      const double r = interest.interpolate_fast(points[i].t);
      out[i] = exp_pd_scalar(-(r * points[i].t));
    }
    return;
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double r = interest.interpolate_fast(points[i].t);
    out[i] = std::exp(-r * points[i].t);
  }
}

void tabulate_columns(const TermStructure& interest,
                      const HazardPrefix& prefix,
                      std::span<const TimePoint> points,
                      std::span<double> discount, std::span<double> survival,
                      bool refresh_discount, Level level) {
  survival_column(prefix, points, survival, level);
  if (refresh_discount) {
    discount_column(interest, points, discount, level);
  }
}

void combine_spreads(std::span<const CdsOption> options,
                     std::span<const std::uint32_t> grid_of,
                     std::span<const double> annuity,
                     std::span<const double> payoff,
                     std::span<SpreadResult> out, Level level) {
  CDSFLOW_ASSERT(out.size() == options.size() &&
                     grid_of.size() == options.size(),
                 "combine spans must match the option count");
  const Level run = resolve_level(level);
  std::size_t head = 0;
  if (run != Level::kScalar && !options.empty()) {
    head = vector_head(options.size(), run);
    [[maybe_unused]] const double* recovery = &options.data()->recovery_rate;
#if defined(CDSFLOW_HAVE_AVX512)
    if (run == Level::kAvx512) {
      detail_avx512::combine_spreads(recovery, 4, grid_of.data(),
                                     annuity.data(), payoff.data(), head,
                                     &out.data()->spread_bps, 2);
    }
#endif
#if defined(CDSFLOW_HAVE_AVX2)
    if (run == Level::kAvx2) {
      detail_avx2::combine_spreads(recovery, 4, grid_of.data(),
                                   annuity.data(), payoff.data(), head,
                                   &out.data()->spread_bps, 2);
    }
#endif
    for (std::size_t i = 0; i < head; ++i) {
      out[i].id = options[i].id;
    }
  }
  // Scalar tail / fallback: the batch kernel's combine, op for op.
  for (std::size_t i = head; i < options.size(); ++i) {
    const std::uint32_t g = grid_of[i];
    const double protection = (1.0 - options[i].recovery_rate) * payoff[g];
    out[i] = {options[i].id, kBasisPointsPerUnit * protection / annuity[g]};
  }
}

void exp_columns(std::span<const double> xs, std::span<double> out,
                 Level level) {
  CDSFLOW_ASSERT(out.size() == xs.size(),
                 "exp column spans must match in length");
  const Level run = resolve_level(level);
  if (run != Level::kScalar) {
    const std::size_t head = vector_head(xs.size(), run);
#if defined(CDSFLOW_HAVE_AVX512)
    if (run == Level::kAvx512) {
      detail_avx512::exp_columns(xs.data(), head, out.data());
    }
#endif
#if defined(CDSFLOW_HAVE_AVX2)
    if (run == Level::kAvx2) {
      detail_avx2::exp_columns(xs.data(), head, out.data());
    }
#endif
    for (std::size_t i = head; i < xs.size(); ++i) {
      out[i] = exp_pd_scalar(xs[i]);
    }
    return;
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = std::exp(xs[i]);
  }
}

void sweep_survival_group(std::span<const double> rates_T,
                          std::span<const double> knot_dt,
                          std::span<double> lambda_T,
                          std::span<const double> point_dt,
                          std::span<const std::int64_t> base_row,
                          std::span<const std::int64_t> rate_row,
                          std::span<double> q_T, Level level) {
  const Level run = resolve_level(level);
  const std::size_t w = lanes(run);
  const std::size_t n_knots = knot_dt.size();
  const std::size_t n_points = point_dt.size();
  CDSFLOW_ASSERT(rates_T.size() == n_knots * w &&
                     lambda_T.size() == (n_knots + 1) * w &&
                     q_T.size() == n_points * w &&
                     base_row.size() == n_points &&
                     rate_row.size() == n_points,
                 "sweep group spans must match (knots + 1 lambda rows, one "
                 "q row per point, lane-width scenarios)");
  // Row 0 is the j == 0 zero base in every lane.
  for (std::size_t lane = 0; lane < w; ++lane) lambda_T[lane] = 0.0;
  if (run != Level::kScalar) {
#if defined(CDSFLOW_HAVE_AVX512)
    if (run == Level::kAvx512) {
      detail_avx512::sweep_survival_block(rates_T.data(), n_knots,
                                          knot_dt.data(), lambda_T.data(),
                                          point_dt.data(), base_row.data(),
                                          rate_row.data(), n_points,
                                          q_T.data());
    }
#endif
#if defined(CDSFLOW_HAVE_AVX2)
    if (run == Level::kAvx2) {
      detail_avx2::sweep_survival_block(rates_T.data(), n_knots,
                                        knot_dt.data(), lambda_T.data(),
                                        point_dt.data(), base_row.data(),
                                        rate_row.data(), n_points, q_T.data());
    }
#endif
    return;
  }
  // kScalar (w == 1): the reference arithmetic -- make_hazard_prefix's
  // accumulation, integrated_hazard_prefix's point expression, std::exp --
  // so the sweep is bit-identical to per-scenario survival_probability_prefix.
  double acc = 0.0;
  for (std::size_t j = 0; j < n_knots; ++j) {
    acc += rates_T[j] * knot_dt[j];
    lambda_T[j + 1] = acc;
  }
  for (std::size_t i = 0; i < n_points; ++i) {
    const double lam =
        lambda_T[static_cast<std::size_t>(base_row[i])] +
        rates_T[static_cast<std::size_t>(rate_row[i])] * point_dt[i];
    q_T[i] = std::exp(-lam);
  }
}

void sweep_leg_sums_group(std::span<const double> dts,
                          std::span<const double> discount,
                          std::span<const double> q_T,
                          std::span<double> annuity_out,
                          std::span<double> payoff_out, Level level) {
  const Level run = resolve_level(level);
  const std::size_t w = lanes(run);
  const std::size_t n = dts.size();
  CDSFLOW_ASSERT(discount.size() == n && q_T.size() == n * w &&
                     annuity_out.size() == w && payoff_out.size() == w,
                 "sweep leg-sum spans must match (one grid, lane-width "
                 "scenario group)");
  if (run != Level::kScalar) {
#if defined(CDSFLOW_HAVE_AVX512)
    if (run == Level::kAvx512) {
      detail_avx512::sweep_leg_sums_block(dts.data(), discount.data(),
                                          q_T.data(), n, annuity_out.data(),
                                          payoff_out.data());
    }
#endif
#if defined(CDSFLOW_HAVE_AVX2)
    if (run == Level::kAvx2) {
      detail_avx2::sweep_leg_sums_block(dts.data(), discount.data(),
                                        q_T.data(), n, annuity_out.data(),
                                        payoff_out.data());
    }
#endif
    return;
  }
  // kScalar (w == 1): literally reduce_leg_sums' walk, term by term.
  double premium = 0.0;
  double accrual = 0.0;
  double payoff = 0.0;
  double q_prev = 1.0;  // Q(0)
  for (std::size_t i = 0; i < n; ++i) {
    const LegTerms terms =
        leg_terms_from_discount(discount[i], q_prev, q_T[i], dts[i]);
    premium += terms.premium;
    accrual += terms.accrual;
    payoff += terms.payoff;
    q_prev = q_T[i];
  }
  annuity_out[0] = premium + accrual;
  payoff_out[0] = payoff;
}

}  // namespace cdsflow::cds::simd
