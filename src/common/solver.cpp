#include "common/solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cdsflow {

RootFindResult find_root_brent(const std::function<double(double)>& f,
                               double lo, double hi,
                               RootFindOptions options) {
  CDSFLOW_EXPECT(f != nullptr, "root finder requires an objective");
  CDSFLOW_EXPECT(lo < hi, "root bracket is inverted");

  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  RootFindResult result;

  if (std::fabs(fa) <= options.f_tolerance) {
    return {a, fa, 0, true};
  }
  if (std::fabs(fb) <= options.f_tolerance) {
    return {b, fb, 0, true};
  }
  CDSFLOW_EXPECT(fa * fb < 0.0,
                 "root bracket does not straddle a sign change");

  // Brent: keep the best point b, previous point c; try inverse quadratic /
  // secant, fall back to bisection when the step is not well-behaved.
  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol = 2.0 * options.x_tolerance * std::fabs(b) +
                       0.5 * options.x_tolerance;
    const double m = 0.5 * (c - b);
    if (std::fabs(fb) <= options.f_tolerance || std::fabs(m) <= tol) {
      return {b, fb, iter, true};
    }
    if (std::fabs(e) >= tol && std::fabs(fa) > std::fabs(fb)) {
      // Attempt interpolation.
      const double s = fb / fa;
      double p, q;
      if (a == c) {  // secant
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {  // inverse quadratic
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      if (2.0 * p < std::min(3.0 * m * q - std::fabs(tol * q),
                             std::fabs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    } else {
      d = m;
      e = m;
    }
    a = b;
    fa = fb;
    b += std::fabs(d) > tol ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  return {b, fb, options.max_iterations, false};
}

RootFindResult find_root_expanding(const std::function<double(double)>& f,
                                   double lo, double hi, int max_expansions,
                                   RootFindOptions options) {
  CDSFLOW_EXPECT(f != nullptr, "root finder requires an objective");
  CDSFLOW_EXPECT(lo < hi, "root bracket is inverted");
  double fa = f(lo);
  if (std::fabs(fa) <= options.f_tolerance) return {lo, fa, 0, true};
  double b = hi;
  for (int i = 0; i <= max_expansions; ++i) {
    const double fb = f(b);
    if (std::fabs(fb) <= options.f_tolerance) return {b, fb, i, true};
    if (fa * fb < 0.0) return find_root_brent(f, lo, b, options);
    b *= 2.0;
  }
  throw Error("find_root_expanding: no sign change within the expansion "
              "budget");
}

}  // namespace cdsflow
