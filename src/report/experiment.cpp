#include "report/experiment.hpp"

#include "common/error.hpp"
#include "common/format.hpp"

namespace cdsflow::report {

Measurement measure(engine::Engine& engine,
                    const std::vector<cds::CdsOption>& options, int runs,
                    std::string label) {
  CDSFLOW_EXPECT(runs >= 1, "measurement requires at least one run");
  Measurement m;
  m.label = label.empty() ? engine.name() : std::move(label);
  for (int r = 0; r < runs; ++r) {
    m.last_run = engine.price(options);
    m.options_per_second.add(m.last_run.options_per_second);
    m.total_seconds.add(m.last_run.total_seconds);
  }
  return m;
}

Table comparison_table(const std::string& title,
                       const std::string& value_name,
                       const std::vector<ComparisonRow>& rows) {
  Table table(title);
  table.set_columns({"Description", value_name + " (measured)",
                     value_name + " (paper)", "delta"});
  for (const auto& row : rows) {
    table.add_row({row.description, with_thousands(row.measured, 2),
                   row.paper == 0.0 ? std::string("-")
                                    : with_thousands(row.paper, 2),
                   row.paper == 0.0
                       ? std::string("-")
                       : format_percent_delta(row.measured, row.paper)});
  }
  return table;
}

}  // namespace cdsflow::report
