#include "cds/sweep_pricer.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace cdsflow::cds {

const char* to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kHazard:
      return "hazard";
    case ScenarioKind::kRate:
      return "rate";
    case ScenarioKind::kJoint:
      return "joint";
  }
  return "hazard";
}

void SweepStats::merge(const SweepStats& other) {
  scenarios += other.scenarios;
  retabulated_columns += other.retabulated_columns;
  shared_columns += other.shared_columns;
  options = other.options;
  unique_schedules = other.unique_schedules;
  grid_points = other.grid_points;
}

SweepPricer::SweepPricer(TermStructure interest, TermStructure hazard,
                         std::span<const CdsOption> options,
                         simd::Level level)
    : base_(std::move(interest), std::move(hazard), level),
      options_(options.begin(), options.end()) {
  CDSFLOW_EXPECT(!options_.empty(), "scenario sweep needs a non-empty book");
  ws_.clear();
  book_stats_ = base_.build_grids(options_, ws_);
  n_grids_ = book_stats_.unique_schedules;

  // Per-grid extremal recoveries: the grid's min/max spread under *any*
  // scenario is the exact combine value at these recoveries (monotonicity
  // argument in the header), so the aggregates never touch the options
  // again.
  rec_min_.assign(n_grids_, std::numeric_limits<double>::infinity());
  rec_max_.assign(n_grids_, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < options_.size(); ++i) {
    const std::uint32_t g = ws_.grid_of[i];
    const double rec = options_[i].recovery_rate;
    rec_min_[g] = rec < rec_min_[g] ? rec : rec_min_[g];
    rec_max_[g] = rec > rec_max_[g] ? rec : rec_max_[g];
  }

  // Scenario-invariant hazard brackets: scenarios move knot values, never
  // knot times or schedules, so every point's segment index and both dt
  // terms are fixed across the whole sweep. The subtractions here are the
  // reference expressions' own (make_hazard_prefix's tau_j - tau_{j-1},
  // integrated_hazard_prefix's t - seg_begin), evaluated once.
  const HazardPrefix& prefix = base_.hazard_prefix();
  n_knots_ = prefix.times.size();
  knot_dt_.resize(n_knots_);
  double prev = 0.0;
  for (std::size_t j = 0; j < n_knots_; ++j) {
    knot_dt_[j] = prefix.times[j] - prev;
    prev = prefix.times[j];
  }
  const std::size_t n_points = ws_.points.size();
  base_row_.resize(n_points);
  rate_row_.resize(n_points);
  point_dt_.resize(n_points);
  accrual_dt_.resize(n_points);
  std::size_t max_row = 0;
  for (std::size_t i = 0; i < n_points; ++i) {
    accrual_dt_[i] = ws_.points[i].dt;
    const double t = ws_.points[i].t;
    const std::size_t j = static_cast<std::size_t>(
        std::lower_bound(prefix.times.begin(), prefix.times.end(), t) -
        prefix.times.begin());
    base_row_[i] = static_cast<std::int64_t>(j);
    rate_row_[i] = static_cast<std::int64_t>(std::min(j, n_knots_ - 1));
    const double seg_begin =
        j == 0 ? 0.0 : prefix.times[std::min(j, n_knots_) - 1];
    point_dt_[i] = t - seg_begin;
    max_row = std::max(max_row, j);
  }
  // Knots past the last schedule point never feed a lambda row or segment
  // rate the sweep reads, and the prefix accumulates left to right -- so
  // the per-scenario transpose and lambda chain can stop there without
  // moving a bit. A 30y curve under a 10y book drops ~2/3 of both.
  active_knots_ = std::min(n_knots_, max_row + 1);
}

ScenarioAggregate SweepPricer::aggregate_spreads(
    std::span<const SpreadResult> rs) {
  ScenarioAggregate agg{std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity()};
  for (const SpreadResult& r : rs) {
    agg.min_spread_bps =
        r.spread_bps < agg.min_spread_bps ? r.spread_bps : agg.min_spread_bps;
    agg.max_spread_bps =
        r.spread_bps > agg.max_spread_bps ? r.spread_bps : agg.max_spread_bps;
  }
  return agg;
}

void SweepPricer::finish_scenario(std::size_t s, std::size_t base_index,
                                  std::span<const double> discount,
                                  std::span<const double> survival,
                                  std::span<ScenarioAggregate> aggregates,
                                  const ResultSink& sink) {
  // Per-grid leg reduction in the scalar reference's accumulation order --
  // the exact walk the naive loop's build_grids performs per scenario.
  const auto points = std::span<const TimePoint>(ws_.points);
  scen_annuity_.resize(n_grids_);
  scen_payoff_.resize(n_grids_);
  for (std::size_t g = 0; g < n_grids_; ++g) {
    const std::size_t begin = ws_.grid_offset[g];
    const std::size_t end =
        g + 1 < n_grids_ ? ws_.grid_offset[g + 1] : points.size();
    const std::size_t n = end - begin;
    const detail::GridSums sums =
        detail::checked_grid_sums(detail::reduce_leg_sums(
            points.subspan(begin, n), discount.subspan(begin, n),
            survival.subspan(begin, n)));
    scen_annuity_[g] = sums.annuity;
    scen_payoff_[g] = sums.payoff;
  }
  emit_scenario(s, base_index, aggregates, sink);
}

void SweepPricer::emit_scenario(std::size_t s, std::size_t base_index,
                                std::span<ScenarioAggregate> aggregates,
                                const ResultSink& sink) {
  // O(grids) aggregate: the combine expression, op for op, at each grid's
  // extremal recoveries (spread is weakly decreasing in recovery).
  ScenarioAggregate agg{std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity()};
  for (std::size_t g = 0; g < n_grids_; ++g) {
    const double annuity = scen_annuity_[g];
    const double payoff = scen_payoff_[g];
    const double lo =
        kBasisPointsPerUnit * ((1.0 - rec_max_[g]) * payoff) / annuity;
    const double hi =
        kBasisPointsPerUnit * ((1.0 - rec_min_[g]) * payoff) / annuity;
    agg.min_spread_bps = lo < agg.min_spread_bps ? lo : agg.min_spread_bps;
    agg.max_spread_bps = hi > agg.max_spread_bps ? hi : agg.max_spread_bps;
  }
  aggregates[s - base_index] = agg;
  if (sink) {
    results_.resize(options_.size());
    simd::combine_spreads(options_, ws_.grid_of, scen_annuity_, scen_payoff_,
                          results_, base_.kernel_level());
    sink(s, results_);
  }
}

void SweepPricer::sweep_hazard(const ScenarioMatrix& m, std::size_t begin,
                               std::size_t end,
                               std::span<ScenarioAggregate> aggregates,
                               const ResultSink& sink) {
  const std::size_t w = simd::lanes(base_.kernel_level());
  const std::size_t n_points = ws_.points.size();
  const std::size_t nk = active_knots_;  // see the ctor truncation note
  rates_T_.resize(nk * w);
  lambda_T_.resize((nk + 1) * w);
  q_T_.resize(n_points * w);
  annuity_T_.resize(n_grids_ * w);
  payoff_T_.resize(n_grids_ * w);
  scen_annuity_.resize(n_grids_);
  scen_payoff_.resize(n_grids_);
  const auto discount = std::span<const double>(ws_.discount);
  const auto dts = std::span<const double>(accrual_dt_);
  const auto knot_dt = std::span<const double>(knot_dt_).first(nk);
  for (std::size_t s0 = begin; s0 < end; s0 += w) {
    const std::size_t in_group = std::min(w, end - s0);
    // Lane-transpose the group's rate rows; a partial final group pads the
    // spare lanes with its last scenario (every op is lane-wise, so padding
    // cannot perturb a real lane's bits and the padded outputs are simply
    // never read).
    for (std::size_t j = 0; j < nk; ++j) {
      for (std::size_t lane = 0; lane < w; ++lane) {
        const std::size_t s = s0 + (lane < in_group ? lane : in_group - 1);
        rates_T_[j * w + lane] = m.hazard_values[s * n_knots_ + j];
      }
    }
    simd::sweep_survival_group(rates_T_, knot_dt, lambda_T_, point_dt_,
                               base_row_, rate_row_, q_T_,
                               base_.kernel_level());
    // Leg sums for the whole group, grid by grid, scenarios abreast -- the
    // survival columns never leave their transposed layout.
    for (std::size_t g = 0; g < n_grids_; ++g) {
      const std::size_t gb = ws_.grid_offset[g];
      const std::size_t ge =
          g + 1 < n_grids_ ? ws_.grid_offset[g + 1] : n_points;
      simd::sweep_leg_sums_group(
          dts.subspan(gb, ge - gb), discount.subspan(gb, ge - gb),
          std::span<const double>(q_T_).subspan(gb * w, (ge - gb) * w),
          std::span<double>(annuity_T_).subspan(g * w, w),
          std::span<double>(payoff_T_).subspan(g * w, w),
          base_.kernel_level());
    }
    for (std::size_t lane = 0; lane < in_group; ++lane) {
      for (std::size_t g = 0; g < n_grids_; ++g) {
        // checked_grid_sums' positivity diagnostic per lane (its annuity
        // add already ran lane-wise in the kernel; + 0.0 keeps the bits).
        const detail::GridSums sums = detail::checked_grid_sums(
            {annuity_T_[g * w + lane], 0.0, payoff_T_[g * w + lane]});
        scen_annuity_[g] = sums.annuity;
        scen_payoff_[g] = sums.payoff;
      }
      emit_scenario(s0 + lane, begin, aggregates, sink);
    }
  }
}

void SweepPricer::sweep_rate(const ScenarioMatrix& m, std::size_t begin,
                             std::size_t end,
                             std::span<ScenarioAggregate> aggregates,
                             const ResultSink& sink) {
  const std::size_t n_rate_knots = base_.interest().size();
  d_col_.resize(ws_.points.size());
  for (std::size_t s = begin; s < end; ++s) {
    rate_vals_.assign(
        m.rate_values.begin() + static_cast<std::ptrdiff_t>(s * n_rate_knots),
        m.rate_values.begin() +
            static_cast<std::ptrdiff_t>((s + 1) * n_rate_knots));
    const TermStructure curve(base_.interest().times(), rate_vals_);
    simd::discount_column(curve, ws_.points, d_col_, base_.kernel_level());
    finish_scenario(s, begin, d_col_, ws_.survival, aggregates, sink);
  }
}

void SweepPricer::sweep_joint(const ScenarioMatrix& m, std::size_t begin,
                              std::size_t end,
                              std::span<ScenarioAggregate> aggregates,
                              const ResultSink& sink) {
  const std::size_t n_rate_knots = base_.interest().size();
  q_col_.resize(ws_.points.size());
  d_col_.resize(ws_.points.size());
  for (std::size_t s = begin; s < end; ++s) {
    fill_hazard_prefix(base_.hazard().times(),
                       m.hazard_values.subspan(s * n_knots_, n_knots_),
                       scen_prefix_);
    simd::survival_column(scen_prefix_, ws_.points, q_col_,
                          base_.kernel_level());
    rate_vals_.assign(
        m.rate_values.begin() + static_cast<std::ptrdiff_t>(s * n_rate_knots),
        m.rate_values.begin() +
            static_cast<std::ptrdiff_t>((s + 1) * n_rate_knots));
    const TermStructure curve(base_.interest().times(), rate_vals_);
    simd::discount_column(curve, ws_.points, d_col_, base_.kernel_level());
    finish_scenario(s, begin, d_col_, q_col_, aggregates, sink);
  }
}

SweepStats SweepPricer::sweep(const ScenarioMatrix& scenarios,
                              std::size_t begin, std::size_t end,
                              std::span<ScenarioAggregate> aggregates,
                              const ResultSink& sink) {
  CDSFLOW_EXPECT(begin <= end && end <= scenarios.count,
                 "sweep range must lie inside the scenario set");
  CDSFLOW_EXPECT(aggregates.size() == end - begin,
                 "sweep needs aggregates.size() == end - begin");
  const bool needs_hazard = scenarios.kind != ScenarioKind::kRate;
  const bool needs_rate = scenarios.kind != ScenarioKind::kHazard;
  if (needs_hazard) {
    CDSFLOW_EXPECT(
        scenarios.hazard_values.size() == scenarios.count * n_knots_,
        "scenario hazard matrix must be count x hazard-knots");
  }
  if (needs_rate) {
    CDSFLOW_EXPECT(scenarios.rate_values.size() ==
                       scenarios.count * base_.interest().size(),
                   "scenario rate matrix must be count x interest-knots");
  }

  switch (scenarios.kind) {
    case ScenarioKind::kHazard:
      sweep_hazard(scenarios, begin, end, aggregates, sink);
      break;
    case ScenarioKind::kRate:
      sweep_rate(scenarios, begin, end, aggregates, sink);
      break;
    case ScenarioKind::kJoint:
      sweep_joint(scenarios, begin, end, aggregates, sink);
      break;
  }

  SweepStats stats;
  stats.scenarios = end - begin;
  stats.options = options_.size();
  stats.unique_schedules = n_grids_;
  stats.grid_points = book_stats_.grid_points;
  const std::size_t per_scenario = n_grids_;
  const std::size_t n = end - begin;
  if (scenarios.kind == ScenarioKind::kJoint) {
    stats.retabulated_columns = 2 * per_scenario * n;
    stats.shared_columns = 0;
  } else {
    stats.retabulated_columns = per_scenario * n;
    stats.shared_columns = per_scenario * n;
  }
  return stats;
}

std::vector<ScenarioAggregate> SweepPricer::sweep(
    const ScenarioMatrix& scenarios) {
  std::vector<ScenarioAggregate> aggregates(scenarios.count);
  sweep(scenarios, 0, scenarios.count, aggregates);
  return aggregates;
}

}  // namespace cdsflow::cds
