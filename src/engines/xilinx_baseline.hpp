/// \file xilinx_baseline.hpp
/// Model of the original Xilinx Vitis library CDS engine (paper Fig. 1).
///
/// The open-source library engine favours "flexibility and ease of
/// integration over performance": each model component is a separate
/// pipelined loop, the loops run *sequentially* communicating through
/// arrays, the engine processes one option per kernel invocation, and the
/// hazard accumulation's carried double-precision add forces II=7 on its
/// scan. Total option cost is therefore the *sum* of the component spans
/// (contrast the dataflow engines, where it is the maximum), plus the
/// per-option kernel restart.
///
/// The implementation executes the reference math component-by-component
/// (results are bit-identical to the golden pricer, which uses the same
/// in-order summation) while charging cycles per the loop model; with a
/// trace attached it emits the strictly sequential stage timeline of Fig. 1.

#pragma once

#include "cds/curve.hpp"
#include "engines/engine.hpp"

namespace cdsflow::engine {

class XilinxBaselineEngine final : public Engine {
 public:
  XilinxBaselineEngine(cds::TermStructure interest, cds::TermStructure hazard,
                       FpgaEngineConfig config = {});

  std::string name() const override { return "xilinx-baseline"; }
  std::string description() const override {
    return "Xilinx Vitis library CDS engine (sequential loops, II=7 "
           "accumulation, restart per option)";
  }

  PricingRun price(const std::vector<cds::CdsOption>& options) override;

  /// Cycle cost of one option under the sequential-loop model (exposed for
  /// tests and the Fig. 1 bench).
  struct StageSpan {
    const char* stage;
    sim::Cycle cycles;
  };
  std::vector<StageSpan> option_stage_spans(const cds::CdsOption& option) const;

 private:
  cds::TermStructure interest_;
  cds::TermStructure hazard_;
  FpgaEngineConfig config_;
};

}  // namespace cdsflow::engine
