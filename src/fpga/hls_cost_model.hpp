/// \file hls_cost_model.hpp
/// Calibrated HLS timing constants -- the provenance record for every number
/// the simulator charges.
///
/// Two kinds of constants live here:
///
///  1. *Structural* HLS facts: double-precision operator latencies and IIs
///     on UltraScale+ as scheduled by Vitis HLS 2020.2. The central one is
///     the 7-cycle double add the paper names explicitly ("The accumulation,
///     a double precision add, requires seven cycles to complete",
///     Sec. III) -- it is both the latency of dadd and the II of a carried
///     double accumulation, and the whole point of paper Listing 1.
///
///  2. *Calibrated* host/system costs that the paper implies but does not
///     print: the per-option kernel restart overhead and the multi-engine
///     DMA arbitration cost. Both were fitted once against the paper's own
///     published throughput (Tables I and II) and are documented inline.
///     They are honest free parameters of the reproduction, not measurements.

#pragma once

#include "sim/cycle.hpp"

namespace cdsflow::fpga {

struct HlsCostModel {
  // --- kernel clock -------------------------------------------------------
  /// Vitis default kernel clock for Alveo shells. The paper does not report
  /// overriding it.
  double kernel_clock_hz = 300.0e6;

  // --- double-precision operator timing (Vitis HLS on UltraScale+) --------
  /// Latency of a double-precision add; also the II of a loop-carried double
  /// accumulation (paper Sec. III). Listing 1 exists to break exactly this.
  sim::Cycle dadd_latency = 7;
  sim::Cycle dmul_latency = 8;
  sim::Cycle ddiv_latency = 29;
  sim::Cycle dexp_latency = 30;
  sim::Cycle dcmp_latency = 2;

  /// II of the hazard accumulation scan in the Vitis library engine
  /// (= dadd_latency, the carried dependency).
  sim::Cycle baseline_accumulation_ii = 7;
  /// II of the same scan after the Listing 1 partial-sum rewrite.
  sim::Cycle optimised_accumulation_ii = 1;
  /// Number of replicated partial accumulators in Listing 1 (must cover the
  /// add latency to hide the dependency completely).
  unsigned listing1_lanes = 7;
  /// Extra cycles per accumulation to fold the partial lanes back together
  /// (Listing 1 lines 12-15: 7 iterations at II=7) plus pipeline drain.
  sim::Cycle listing1_epilogue_cycles = 7 * 7 + 7;

  /// II of the linear-interpolation bracket scan (no carried dependency).
  sim::Cycle interpolation_scan_ii = 1;

  /// Pipelined-loop entry/exit overhead charged once per loop invocation.
  sim::Cycle loop_overhead_cycles = 2;

  // --- host-side costs (calibrated) ----------------------------------------
  /// Host -> kernel restart cost per option for the engines that process one
  /// option per kernel invocation (Vitis library engine and the first
  /// dataflow rewrite): the XRT enqueue + ap_ctrl handshake round trip.
  /// CALIBRATION: the paper's optimised-dataflow engine (7368.42 opt/s) and
  /// its free-running successor (13298.70 opt/s) run the *same* stage graph;
  /// the difference, 1/7368.42 - 1/13298.70 = 60.5 us/option, is precisely
  /// the restart the rewrite removed. 60 us at 300 MHz = 18,000 cycles.
  sim::Cycle region_restart_cycles = 18'000;
  /// One-time region start for any engine (first ap_start).
  sim::Cycle region_initial_start_cycles = 300;

  /// Aggregate constant-data elements per cycle a replicated pool's
  /// round-robin scheduler can stream to its lanes: the replicated curves
  /// live in dual-ported URAM (paper Sec. III), so 2 elements/cycle.
  /// This is what caps the 6-lane pool at ~2x (Table I: 13298.70 ->
  /// 27675.67 opt/s).
  double uram_feed_elements_per_cycle = 2.0;

  /// Per-option DMA/queue arbitration cost added for each engine beyond the
  /// first when several engines share the PCIe/HBM infrastructure.
  /// CALIBRATION: Table II scaling (1.94x at 2 engines, 4.12x at 5) fits
  /// t_N = t_1/N + (N-1) * 0.4 us within 4%.
  double dma_arbitration_s_per_option_per_extra_engine = 0.4e-6;
};

/// The model every bench and engine uses unless a test overrides fields.
inline const HlsCostModel& default_cost_model() {
  static const HlsCostModel model{};
  return model;
}

}  // namespace cdsflow::fpga
