#include "service/service.hpp"

#include <cmath>
#include <iterator>
#include <utility>

#include "common/error.hpp"

namespace cdsflow::service {

namespace {

/// Semantic option validation (the codec checked shape only): ranges via
/// CdsOption::validate(), finiteness explicitly -- NaN/Inf doubles are
/// perfectly encodable bit patterns.
bool validate_options(const std::vector<cds::CdsOption>& options,
                      std::string* error) {
  for (const auto& option : options) {
    if (!std::isfinite(option.maturity_years) ||
        !std::isfinite(option.payment_frequency) ||
        !std::isfinite(option.recovery_rate)) {
      *error = "option " + std::to_string(option.id) +
               " carries a non-finite field";
      return false;
    }
    try {
      option.validate();
    } catch (const Error& e) {
      *error = e.what();
      return false;
    }
  }
  return true;
}

std::string clip_detail(std::string detail) {
  if (detail.size() > net::kMaxRejectDetailBytes) {
    detail.resize(net::kMaxRejectDetailBytes);
  }
  return detail;
}

}  // namespace

PricingService::PricingService(ServiceConfig config,
                               const cds::TermStructure& interest,
                               const cds::TermStructure& hazard)
    : config_(std::move(config)),
      epoch_(std::chrono::steady_clock::now()) {
  CDSFLOW_EXPECT(!config_.tenants.empty(), "service needs at least one tenant");
  for (const auto& spec : config_.tenants) {
    CDSFLOW_EXPECT(sessions_.count(spec.id) == 0,
                   "duplicate tenant id " + std::to_string(spec.id));
    sessions_.emplace(spec.id,
                      std::make_unique<TenantSession>(spec, interest, hazard));
  }
}

double PricingService::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

TenantSession* PricingService::session(std::uint32_t tenant) {
  const auto it = sessions_.find(tenant);
  return it == sessions_.end() ? nullptr : it->second.get();
}

const TenantSession* PricingService::session(std::uint32_t tenant) const {
  const auto it = sessions_.find(tenant);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void PricingService::send_reject(net::Server& server, int conn,
                                 std::uint32_t tenant, std::uint32_t request,
                                 net::RejectReason reason,
                                 std::string detail) {
  switch (reason) {
    case net::RejectReason::kMalformed:
      ++stats_.rejects_malformed;
      break;
    case net::RejectReason::kUnknownTenant:
      ++stats_.rejects_unknown_tenant;
      break;
    case net::RejectReason::kWrongMode:
      ++stats_.rejects_wrong_mode;
      break;
    case net::RejectReason::kOverload:
      break;  // counted as shed where the decision is made
  }
  server.send(conn, net::encode_reject(tenant, request, reason,
                                       clip_detail(std::move(detail))));
}

void PricingService::on_frame(net::Server& server, int conn,
                              net::Frame frame) {
  ++stats_.frames;
  switch (frame.type) {
    case net::FrameType::kQuoteUpdate: {
      TenantSession* tenant = session(frame.tenant);
      if (tenant == nullptr) {
        send_reject(server, conn, frame.tenant, frame.request,
                    net::RejectReason::kUnknownTenant,
                    "tenant " + std::to_string(frame.tenant));
        return;
      }
      std::string error;
      if (!tenant->push_quote(frame.knot, frame.rate, &error)) {
        send_reject(server, conn, frame.tenant, frame.request,
                    net::RejectReason::kMalformed, error);
        return;
      }
      ++stats_.quote_updates;  // fire-and-forget: no ack
      return;
    }
    case net::FrameType::kPriceRequest:
    case net::FrameType::kRiskRequest: {
      ++stats_.requests;
      TenantSession* tenant = session(frame.tenant);
      if (tenant == nullptr) {
        send_reject(server, conn, frame.tenant, frame.request,
                    net::RejectReason::kUnknownTenant,
                    "tenant " + std::to_string(frame.tenant));
        return;
      }
      const bool wants_risk = frame.type == net::FrameType::kRiskRequest;
      if (wants_risk != tenant->risk()) {
        send_reject(server, conn, frame.tenant, frame.request,
                    net::RejectReason::kWrongMode,
                    tenant->risk() ? "tenant serves risk requests"
                                   : "tenant serves price requests");
        return;
      }
      std::string error;
      if (!validate_options(frame.options, &error)) {
        send_reject(server, conn, frame.tenant, frame.request,
                    net::RejectReason::kMalformed, error);
        return;
      }
      const AdmissionDecision decision = tenant->submit(
          conn, frame.request, frame.options, now_seconds());
      switch (decision) {
        case AdmissionDecision::kAdmit:
          ++stats_.admitted;
          break;
        case AdmissionDecision::kDefer:
          ++stats_.deferred;
          break;
        case AdmissionDecision::kShed:
          ++stats_.shed;
          send_reject(server, conn, frame.tenant, frame.request,
                      net::RejectReason::kOverload,
                      "projected completion misses the defer ceiling");
          break;
      }
      return;
    }
    case net::FrameType::kResult:
    case net::FrameType::kReject: {
      // Server-to-client frames arriving from a client are a protocol
      // violation, handled like a poisoned stream: reject, then drop the
      // connection.
      send_reject(server, conn, frame.tenant, frame.request,
                  net::RejectReason::kMalformed,
                  std::string("client sent a server frame (") +
                      net::to_string(frame.type) + ")");
      server.close_connection(conn);
      return;
    }
    case net::FrameType::kNodeProbe:
    case net::FrameType::kShardPrice:
    case net::FrameType::kShardResult: {
      // Cluster-plane frames belong to a cluster worker
      // (src/cluster/worker.hpp), not the tenant-facing service.
      send_reject(server, conn, frame.tenant, frame.request,
                  net::RejectReason::kMalformed,
                  std::string("cluster frame at the pricing service (") +
                      net::to_string(frame.type) + ")");
      server.close_connection(conn);
      return;
    }
  }
}

void PricingService::on_malformed(net::Server& server, int conn,
                                  const std::string& error) {
  ++stats_.connections_poisoned;
  ++stats_.rejects_malformed;
  // The reader is poisoned; this reject is the last frame out before the
  // server tears the connection down.
  server.send(conn,
              net::encode_reject(0, 0, net::RejectReason::kMalformed,
                                 clip_detail(error)));
}

void PricingService::send_completed(
    net::Server& server, const std::vector<TenantSession::Completed>& batch,
    std::uint32_t tenant) {
  for (const auto& completed : batch) {
    ++stats_.responses;
    server.send(completed.conn,
                net::encode_result(tenant, completed.request, completed.status,
                                   completed.results, completed.greeks));
  }
}

void PricingService::on_tick(net::Server& server) {
  const double now = now_seconds();
  std::size_t pending = 0;
  for (auto& [id, tenant] : sessions_) {
    send_completed(server, tenant->poll(now), id);
    pending += tenant->pending_requests();
  }
  if (server.connections() > 0) saw_connection_ = true;
  if (config_.stop_when_idle && saw_connection_ &&
      server.connections() == 0 && pending == 0) {
    server.stop();
  }
}

void PricingService::on_disconnect(int) {}

std::vector<TenantSession::Completed> PricingService::drain_all() {
  std::vector<TenantSession::Completed> leftovers;
  if (drained_) return leftovers;
  drained_ = true;
  const double now = now_seconds();
  for (auto& [id, tenant] : sessions_) {
    auto done = tenant->drain(now);
    leftovers.insert(leftovers.end(),
                     std::make_move_iterator(done.begin()),
                     std::make_move_iterator(done.end()));
  }
  return leftovers;
}

std::vector<io::LatencyCdfRow> PricingService::latency_rows() const {
  std::vector<io::LatencyCdfRow> rows;
  for (const auto& [id, tenant] : sessions_) {
    auto tenant_rows = io::latency_cdf_rows(id, tenant->latency_us());
    rows.insert(rows.end(), tenant_rows.begin(), tenant_rows.end());
  }
  return rows;
}

}  // namespace cdsflow::service
