#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace cdsflow::sim {

std::size_t Trace::add_track(std::string name) {
  track_names_.push_back(std::move(name));
  return track_names_.size() - 1;
}

void Trace::record(std::size_t track, Cycle begin, Cycle end) {
  CDSFLOW_EXPECT(track < track_names_.size(), "unknown trace track");
  CDSFLOW_EXPECT(end > begin, "trace intervals must be non-empty");
  intervals_.push_back({track, begin, end});
}

Cycle Trace::busy_cycles(std::size_t track) const {
  Cycle busy = 0;
  for (const auto& iv : intervals_) {
    if (iv.track == track) busy += iv.end - iv.begin;
  }
  return busy;
}

Cycle Trace::span() const {
  Cycle end = 0;
  for (const auto& iv : intervals_) end = std::max(end, iv.end);
  return end;
}

double Trace::utilisation(std::size_t track) const {
  const Cycle s = span();
  if (s == 0) return 0.0;
  return static_cast<double>(busy_cycles(track)) / static_cast<double>(s);
}

namespace {

/// Merges a track's intervals into a sorted, disjoint list.
std::vector<std::pair<Cycle, Cycle>> merged_track(
    const std::vector<TraceInterval>& all, std::size_t track) {
  std::vector<std::pair<Cycle, Cycle>> ivs;
  for (const auto& iv : all) {
    if (iv.track == track) ivs.emplace_back(iv.begin, iv.end);
  }
  std::sort(ivs.begin(), ivs.end());
  std::vector<std::pair<Cycle, Cycle>> merged;
  for (const auto& iv : ivs) {
    if (!merged.empty() && iv.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, iv.second);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

}  // namespace

double Trace::overlap_fraction(std::size_t a, std::size_t b) const {
  const auto ia = merged_track(intervals_, a);
  const auto ib = merged_track(intervals_, b);
  Cycle busy_a = 0, busy_b = 0, both = 0;
  for (const auto& iv : ia) busy_a += iv.second - iv.first;
  for (const auto& iv : ib) busy_b += iv.second - iv.first;
  // Two-pointer sweep over the disjoint sorted interval lists.
  std::size_t i = 0, j = 0;
  while (i < ia.size() && j < ib.size()) {
    const Cycle lo = std::max(ia[i].first, ib[j].first);
    const Cycle hi = std::min(ia[i].second, ib[j].second);
    if (lo < hi) both += hi - lo;
    if (ia[i].second < ib[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  const Cycle denom = std::min(busy_a, busy_b);
  if (denom == 0) return 0.0;
  return static_cast<double>(both) / static_cast<double>(denom);
}

double Trace::mean_concurrency() const {
  const Cycle s = span();
  if (s == 0) return 0.0;
  Cycle total_busy = 0;
  for (std::size_t t = 0; t < track_count(); ++t) total_busy += busy_cycles(t);
  // Normalise by cycles where at least one track is busy: union of all
  // intervals.
  std::vector<std::pair<Cycle, Cycle>> all;
  all.reserve(intervals_.size());
  for (const auto& iv : intervals_) all.emplace_back(iv.begin, iv.end);
  std::sort(all.begin(), all.end());
  Cycle covered = 0;
  Cycle cur_begin = 0, cur_end = 0;
  bool open = false;
  for (const auto& iv : all) {
    if (open && iv.first <= cur_end) {
      cur_end = std::max(cur_end, iv.second);
    } else {
      if (open) covered += cur_end - cur_begin;
      cur_begin = iv.first;
      cur_end = iv.second;
      open = true;
    }
  }
  if (open) covered += cur_end - cur_begin;
  if (covered == 0) return 0.0;
  return static_cast<double>(total_busy) / static_cast<double>(covered);
}

std::string Trace::render_ascii(std::size_t width) const {
  CDSFLOW_EXPECT(width >= 10, "timeline width must be >= 10");
  const Cycle s = span();
  std::ostringstream os;
  std::size_t label_width = 0;
  for (const auto& n : track_names_) label_width = std::max(label_width, n.size());
  for (std::size_t t = 0; t < track_count(); ++t) {
    // Busy cycles per bucket.
    std::vector<double> busy(width, 0.0);
    const double bucket_cycles =
        static_cast<double>(s) / static_cast<double>(width);
    for (const auto& iv : intervals_) {
      if (iv.track != t) continue;
      for (std::size_t k = 0; k < width; ++k) {
        const double lo = static_cast<double>(k) * bucket_cycles;
        const double hi = lo + bucket_cycles;
        const double a = std::max(lo, static_cast<double>(iv.begin));
        const double b = std::min(hi, static_cast<double>(iv.end));
        if (b > a) busy[k] += b - a;
      }
    }
    os << track_names_[t];
    os << std::string(label_width - track_names_[t].size() + 1, ' ') << '|';
    for (std::size_t k = 0; k < width; ++k) {
      const double f = bucket_cycles > 0 ? busy[k] / bucket_cycles : 0.0;
      os << (f <= 0.001 ? ' ' : (f < 0.25 ? '.' : (f < 0.5 ? '-' : (f < 0.75 ? '+' : '#'))));
    }
    os << "|\n";
  }
  os << std::string(label_width + 1, ' ') << "0" << std::string(width > 8 ? width - 8 : 1, ' ')
     << s << " cycles\n";
  return os.str();
}

}  // namespace cdsflow::sim
