/// \file portfolio_runtime.hpp
/// Host-side scaling layer: shard a large portfolio across a pool of engine
/// instances and price the shards concurrently.
///
/// The paper scales throughput by replicating the dataflow engine and
/// running several concurrently on one card ("splitting the entire set up
/// into N chunks", Sec. IV / Table II). This runtime applies the same recipe
/// on the host: N engine replicas (any registry engine -- cpu, dataflow,
/// vectorised, multi-*, cluster-*), a thread pool driving them, and a
/// deterministic merge of the per-shard PricingRuns back into submission
/// order.
///
/// Determinism guarantee: shards are contiguous slices of the book, each
/// shard is priced whole by one engine replica, and the merge concatenates
/// shard results in shard (= submission) order regardless of which lane
/// finished first. Because options are independent and every replica of a
/// given engine computes identical per-option values, the merged *values*
/// -- spreads, and in risk mode the Sensitivities and CS01-ladder rows --
/// are bit-identical to a single-engine run over the whole book, whatever
/// the worker count, replica count or shard size. Only the *timing* fields
/// vary between configurations. (Risk-mode shards carry their
/// sensitivities/ladder next to the spreads; the merge concatenates all
/// three in the same order, so the guarantee extends to the Greeks.)
///
/// Two throughput figures are reported -- modelled vs wall:
///   - modelled: options / makespan of a deterministic list schedule of the
///     engine-reported shard times over the worker lanes. For simulated FPGA
///     engines the shard time is simulated device time, so this is the
///     paper-style metric (Table II with N = workers) and is reproducible on
///     any host, including a single-core CI box.
///   - wall: options / measured host wall time of the whole parallel
///     section. This is real elapsed time and therefore only meaningful
///     when the host actually has the cores to run the lanes concurrently;
///     on an oversubscribed host it degrades while the modelled figure
///     stays put. Benches report both so the two are never conflated.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cds/curve.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/engine.hpp"

namespace cdsflow::runtime {

/// The full execution configuration of one batch: engine x workers x
/// shard_size (plus per-engine-family details). Hand-written by callers, or
/// produced whole by the probe-calibrated auto-planner
/// (engine::plan_runtime / best_runtime_plan in engines/planner.hpp) --
/// a planned config plugs into PortfolioRuntime unchanged.
struct RuntimeConfig {
  /// Registry name of the shard worker engine (see engines/registry.hpp).
  std::string engine = "vectorised";
  /// Worker threads driving shards. 0 selects hardware_concurrency().
  unsigned workers = 0;
  /// Engine replicas backing the workers. 0 replicates one engine per
  /// worker; a smaller value caps the concurrency at that many lanes (the
  /// paper's engine-count ablation with the thread count held fixed).
  unsigned engine_replicas = 0;
  /// Options per shard. 0 picks auto_shard_size() (about 4 shards/worker).
  std::size_t shard_size = 0;
  /// Forwarded to make_engine for simulated FPGA workers.
  engine::FpgaEngineConfig fpga;
  /// Forwarded to make_engine for CPU workers.
  engine::CpuEngineConfig cpu;
};

/// Per-shard accounting, in shard (= submission) order.
struct ShardOutcome {
  std::size_t index = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  /// Engine-reported batch time for this shard (kernel + transfer).
  double engine_seconds = 0.0;
  /// Simulated kernel cycles (0 for native CPU workers).
  sim::Cycle kernel_cycles = 0;
  std::uint64_t invocations = 0;
  /// Lane the deterministic list schedule places this shard on.
  unsigned lane = 0;
};

struct RuntimeRun {
  /// Merged run. `results` (and, for risk-mode engines, `sensitivities` and
  /// `cs01_ladder`) are in submission order. `kernel_cycles`,
  /// `kernel_seconds`, `transfer_seconds` and `invocations` are sums over
  /// shards (total work); `total_seconds` is the modelled concurrent
  /// makespan and `options_per_second` the modelled throughput.
  engine::PricingRun run;
  std::vector<ShardOutcome> shards;

  /// Concurrency actually used (min of workers and engine replicas).
  unsigned lanes = 1;
  std::size_t shard_size = 0;

  /// Measured host wall time of the parallel section.
  double wall_seconds = 0.0;
  double wall_options_per_second = 0.0;
};

class PortfolioRuntime {
 public:
  /// Constructs the engine pool up front (each replica loads the curves at
  /// initialisation, as on the card). Throws cdsflow::Error for unknown
  /// engine names or zero-lane configurations.
  PortfolioRuntime(cds::TermStructure interest, cds::TermStructure hazard,
                   RuntimeConfig config = {});
  ~PortfolioRuntime();

  PortfolioRuntime(const PortfolioRuntime&) = delete;
  PortfolioRuntime& operator=(const PortfolioRuntime&) = delete;

  /// Prices the book. An empty book returns an empty run (all metrics 0).
  RuntimeRun price(const std::vector<cds::CdsOption>& options);

  unsigned lanes() const { return lanes_; }
  const RuntimeConfig& config() const { return config_; }
  /// Description of one engine replica, e.g. for reports.
  std::string worker_description() const;

 private:
  RuntimeConfig config_;
  unsigned lanes_;
  std::vector<std::unique_ptr<engine::Engine>> engines_;
};

}  // namespace cdsflow::runtime
