#!/usr/bin/env bash
# Single-host multi-process cluster smoke: launch two cdsflow_cli
# cluster-worker processes on unix-domain sockets with distinct pinned
# fits (4:1 -- the plan must skew toward the fast worker), price one book
# through cluster-price, and gate on the --verify bit-identity check
# against the in-process runtime (docs/CLUSTER.md's determinism contract).
#
# Usage: scripts/cluster_smoke.sh <path-to-cdsflow_cli> [n_options]
# Exit: 0 on bit-identical results, non-zero otherwise.
set -euo pipefail

CLI="${1:?usage: cluster_smoke.sh <path-to-cdsflow_cli> [n_options]}"
N_OPTIONS="${2:-2048}"

# Build-provenance guard: a clang build must carry the Clang thread-safety
# annotations (common/thread_annotations.hpp). If they were compiled out --
# a header regression or a stripped -W flag -- the concurrency discipline
# this smoke exercises is no longer machine-checked, so fail loudly rather
# than certify the binary. GCC has no analysis; annotations are expected
# off there.
BUILD_INFO="$("$CLI" build-info)"
COMPILER="$(printf '%s\n' "$BUILD_INFO" | sed -n 's/^compiler=//p')"
ANNOTATIONS="$(printf '%s\n' "$BUILD_INFO" | sed -n 's/^thread_safety_annotations=//p')"
if [[ "$COMPILER" == "clang" && "$ANNOTATIONS" != "on" ]]; then
  echo "cluster smoke: FATAL: clang-built worker binary reports" >&2
  echo "  thread_safety_annotations=$ANNOTATIONS -- the thread-safety" >&2
  echo "  annotations were compiled out; refusing to certify it." >&2
  exit 1
fi
echo "cluster smoke: $COMPILER build, thread_safety_annotations=$ANNOTATIONS"

SOCK_A="/tmp/cdsflow-smoke-a-$$.sock"
SOCK_B="/tmp/cdsflow-smoke-b-$$.sock"

cleanup() {
  # Workers exit on their own via --stop-when-idle; this reaps stragglers
  # when cluster-price fails before ever connecting.
  kill "${PID_A:-0}" "${PID_B:-0}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -f "$SOCK_A" "$SOCK_B"
}
trap cleanup EXIT

"$CLI" cluster-worker --unix "$SOCK_A" --engine cpu-batch \
  --ops-per-second 2e6 --setup-s 1e-4 --stop-when-idle &
PID_A=$!
"$CLI" cluster-worker --unix "$SOCK_B" --engine cpu-batch \
  --ops-per-second 5e5 --setup-s 1e-4 --stop-when-idle &
PID_B=$!

# cluster-price retries connects until the per-node timeout, so no
# sleep-and-poll is needed before pointing it at the worker sockets.
"$CLI" cluster-price --nodes "unix:$SOCK_A,unix:$SOCK_B" \
  --count "$N_OPTIONS" --verify

# Propagate worker exit codes (they stop once the coordinator disconnects).
wait "$PID_A"
wait "$PID_B"
echo "cluster smoke: OK"
