/// \file design_space.cpp
/// Design-space exploration with the device/resource/power models: for a
/// target card, sweep lane counts and engine counts, keep configurations
/// that place-and-route, and report the throughput / power-efficiency
/// frontier -- the study an FPGA engineer runs before committing to a
/// build (the paper's choice: 6 lanes, 5 engines on a U280).
///
/// Run:  ./design_space [n_options]

#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "engines/multi_engine.hpp"
#include "fpga/power.hpp"
#include "fpga/resource.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;

  const auto scenario = workload::paper_scenario(n_options);
  const auto device = fpga::alveo_u280();
  const fpga::ResourceEstimator estimator(device);
  const fpga::FpgaPowerModel power;

  std::cout << "design-space exploration on " << device.name << " ("
            << n_options << "-option probe workload)\n\n";

  report::Table table("lane/engine configurations that fit");
  table.set_columns({"Lanes", "Engines", "LUT util", "Options/s",
                     "Opts/Watt", "Note"});

  double best_ops = 0.0, best_eff = 0.0;
  std::string best_ops_cfg, best_eff_cfg;

  for (const unsigned lanes : {1u, 2u, 4u, 6u, 8u}) {
    fpga::EngineShape shape;
    shape.hazard_lanes = lanes;
    shape.interpolation_lanes = lanes;
    const unsigned max_engines = estimator.max_engines(shape);
    if (max_engines == 0) continue;

    for (unsigned engines = 1; engines <= max_engines; ++engines) {
      engine::MultiEngineConfig cfg;
      cfg.n_engines = engines;
      cfg.engine.vector_lanes = lanes;
      cfg.vectorised = lanes > 1;
      engine::MultiEngine me(scenario.interest, scenario.hazard, cfg);
      const auto run = me.price(scenario.options);

      const auto usage = estimator.estimate_design(shape, engines);
      const double lut_util =
          100.0 * double(usage.luts) / double(device.luts);
      const double watts = power.watts(engines);
      const double eff = run.options_per_second / watts;

      std::string note;
      if (lanes == 6 && engines == 5) note = "<- paper config";
      if (run.options_per_second > best_ops) {
        best_ops = run.options_per_second;
        best_ops_cfg = std::to_string(lanes) + " lanes x " +
                       std::to_string(engines) + " engines";
      }
      if (eff > best_eff) {
        best_eff = eff;
        best_eff_cfg = std::to_string(lanes) + " lanes x " +
                       std::to_string(engines) + " engines";
      }
      // Only print the frontier-ish rows to keep the table readable: the
      // max engine count per lane config plus the paper configuration.
      if (engines == max_engines || note.size() > 0) {
        table.add_row({std::to_string(lanes), std::to_string(engines),
                       fixed(lut_util, 1) + "%",
                       with_thousands(run.options_per_second, 0),
                       fixed(eff, 0), note});
      }
    }
  }
  std::cout << table.render_text() << '\n';
  std::cout << "highest throughput: " << best_ops_cfg << " ("
            << with_thousands(best_ops, 0) << " options/s)\n"
            << "highest efficiency: " << best_eff_cfg << " ("
            << fixed(best_eff, 0) << " options/Watt)\n";
  return 0;
}
