/// \file bench_planner.cpp
/// Planner fidelity: projected vs actually-measured seconds per runtime
/// plan, reported as JSON so CI tracks plan accuracy across PRs.
///
/// Runs the probe-calibrated auto-planner (probe -> affine fit -> enumerate
/// engine x workers x shard_size -> rank) over a book, then *executes*
/// every CPU plan through PortfolioRuntime and compares the planner's
/// projected list-schedule makespan against the measured wall time. The
/// plan-accuracy ratio (projected / measured) must stay within 0.5x-2.0x
/// for every CPU plan -- the bench exits non-zero otherwise, so a planner
/// regression (e.g. reintroducing the single-probe linear extrapolation
/// that overcharged the setup-heavy batch kernel) fails the smoke run.
/// Simulated FPGA plans are projected from deterministic modelled time and
/// are not wall-clock re-measured.
///
/// Usage: bench_planner [n_options] [deadline_s] [out.json]
///   defaults: 16384 60 BENCH_planner.json

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/format.hpp"
#include "engines/planner.hpp"
#include "report/table.hpp"
#include "runtime/portfolio_runtime.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16384;
  const double deadline_s = argc > 2 ? std::strtod(argv[2], nullptr) : 60.0;
  const std::string out_path = argc > 3 ? argv[3] : "BENCH_planner.json";

  // Below 512 options the probe pair {128, min(2048, n)} collapses toward
  // a single size and the affine fit degrades to the linear model this
  // bench exists to guard against.
  if (n_options < 512) {
    std::cerr << "bench_planner needs >= 512 options (got " << n_options
              << ") for two well-separated probe sizes\n";
    return 1;
  }
  const auto scenario = workload::paper_scenario(n_options, /*seed=*/7);
  std::cout << "== Auto-planner fidelity: " << n_options
            << " options, deadline " << deadline_s << " s ==\n\n";

  engine::PlannerConfig pcfg;
  // The larger probe must not exceed the book; the smaller probe stays well
  // inside the setup-dominated regime so the fit is actually exercised.
  pcfg.probe_sizes = {128, std::min<std::size_t>(2048, n_options)};
  pcfg.fpga_engine_counts = {1, 5};  // endpoints of the paper's Table II
  const auto candidates =
      engine::enumerate_backends(scenario.interest, scenario.hazard, pcfg);
  const engine::BatchRequirements requirements{n_options, deadline_s};
  const auto entries = engine::plan_runtime(candidates, requirements, pcfg);
  const auto best = engine::best_runtime_plan(entries);

  report::Table table("Projected vs measured (CPU plans)");
  table.set_columns({"Engine", "Workers", "Shard", "Projected s",
                     "Measured s", "Ratio", "OK"});

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"planner\",\n"
       << "  \"n_options\": " << n_options << ",\n"
       << "  \"deadline_seconds\": " << deadline_s << ",\n"
       << "  \"hardware_threads\": "
       << std::max(1u, std::thread::hardware_concurrency()) << ",\n"
       << "  \"n_candidate_plans\": " << entries.size() << ",\n";

  // Execute every CPU plan and compare projection against measurement.
  bool all_within_bounds = true;
  double worst_distance = 1.0;
  double chosen_wall_ops = 0.0;
  bool first = true;
  json << "  \"plans\": [";
  for (const auto& entry : entries) {
    if (entry.config.engine.rfind("cpu", 0) != 0) continue;  // simulated
    runtime::PortfolioRuntime rt(scenario.interest, scenario.hazard,
                                 entry.config);
    // Best of two runs: the first pays first-touch allocation, exactly the
    // noise the planner's own probe protocol discards.
    double measured_wall = rt.price(scenario.options).wall_seconds;
    const auto run = rt.price(scenario.options);
    measured_wall = std::min(measured_wall, run.wall_seconds);
    const double measured_modelled = run.run.total_seconds;

    const double ratio =
        measured_wall > 0.0 ? entry.projected_seconds / measured_wall : 0.0;
    const double distance = ratio > 0.0 ? std::max(ratio, 1.0 / ratio) : 1e9;
    worst_distance = std::max(worst_distance, distance);
    const bool within = ratio >= 0.5 && ratio <= 2.0;
    all_within_bounds = all_within_bounds && within;

    const bool chosen = best.has_value() &&
                        entry.config.engine == best->config.engine &&
                        entry.config.workers == best->config.workers &&
                        entry.config.shard_size == best->config.shard_size;
    if (chosen) chosen_wall_ops = run.wall_options_per_second;

    table.add_row({entry.config.engine, std::to_string(entry.config.workers),
                   std::to_string(entry.config.shard_size),
                   fixed(entry.projected_seconds, 5),
                   fixed(measured_wall, 5), fixed(ratio, 2) + "x",
                   within ? "yes" : "NO"});
    json << (first ? "" : ",") << "\n    {\"engine\": \""
         << entry.config.engine << "\", \"workers\": " << entry.config.workers
         << ", \"shard_size\": " << entry.config.shard_size
         << ", \"n_shards\": " << entry.n_shards
         << ", \"projected_seconds\": " << entry.projected_seconds
         << ", \"measured_wall_seconds\": " << measured_wall
         << ", \"measured_modelled_seconds\": " << measured_modelled
         << ", \"accuracy_ratio\": " << ratio
         << ", \"within_bounds\": " << (within ? "true" : "false")
         << ", \"chosen\": " << (chosen ? "true" : "false") << "}";
    first = false;
  }
  json << "\n  ],\n";

  // If the energy ranking chose a simulated plan, the CPU loop above never
  // measured it: execute it once here so the tracked chosen-plan wall
  // throughput is never silently zero.
  if (best.has_value() && chosen_wall_ops == 0.0) {
    runtime::PortfolioRuntime rt(scenario.interest, scenario.hazard,
                                 best->config);
    chosen_wall_ops = rt.price(scenario.options).wall_options_per_second;
  }

  std::cout << table.render_text() << '\n';
  if (best.has_value()) {
    std::cout << "chosen plan: " << best->config.engine << " x "
              << best->config.workers << " worker(s), shard size "
              << best->config.shard_size << " (projected "
              << fixed(best->projected_seconds, 5) << " s, "
              << fixed(best->projected_joules, 1) << " J)";
    if (chosen_wall_ops > 0.0) {
      std::cout << "; measured " << with_thousands(chosen_wall_ops, 0)
                << " options/s wall";
    }
    std::cout << '\n';
    json << "  \"chosen\": {\"engine\": \"" << best->config.engine
         << "\", \"workers\": " << best->config.workers
         << ", \"shard_size\": " << best->config.shard_size
         << ", \"projected_seconds\": " << best->projected_seconds
         << ", \"projected_joules\": " << best->projected_joules << "},\n";
  } else {
    std::cout << "no plan meets the deadline\n";
    json << "  \"chosen\": null,\n";
  }
  json << "  \"chosen_plan_wall_options_per_second\": " << chosen_wall_ops
       << ",\n"
       << "  \"worst_accuracy_distance\": " << worst_distance << ",\n"
       << "  \"all_within_bounds\": "
       << (all_within_bounds ? "true" : "false") << "\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  std::cout << "plan accuracy: worst distance from 1.0x is "
            << fixed(worst_distance, 2) << "x (bounds 0.5x-2.0x)\n"
            << "JSON written to " << out_path << '\n';
  return all_within_bounds && best.has_value() ? 0 : 1;
}
