/// \file bench_ext_precision.cpp
/// Extension: the reduced-precision study the paper proposes as future work
/// (Sec. V: "further exploration around reduced precision ... would be very
/// interesting").
///
/// Two halves:
///   * numerics (measured): the full CDS model evaluated in fp32 and in a
///     mixed fp32/fp64-accumulator mode, with spread errors in bps against
///     the fp64 golden model;
///   * hardware (projected): the calibrated fp64 cost model rescaled with
///     single-precision operator latencies/resources -- shorter add chains
///     (3-lane Listing 1), a double-width URAM feed, cheaper cores -- giving
///     projected throughput per engine and engines per card.
///
/// Usage: bench_ext_precision [n_options]

#include <cstdlib>
#include <iostream>

#include "cds/precision.hpp"
#include "common/format.hpp"
#include "engines/vectorised_engine.hpp"
#include "fpga/reduced_precision.hpp"
#include "fpga/resource.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;

  const auto scenario = workload::paper_scenario(n_options);
  std::cout << "== Extension: reduced precision (paper future work) ==\n"
            << n_options << " options\n\n";

  // --- numerical accuracy ----------------------------------------------------
  report::Table acc("Accuracy vs the fp64 golden model");
  acc.set_columns({"Arithmetic", "max |err| (bps)", "mean |err| (bps)",
                   "max rel err"});
  for (const auto precision :
       {cds::Precision::kSingle, cds::Precision::kMixed}) {
    const auto r = cds::evaluate_precision(scenario.interest, scenario.hazard,
                                           scenario.options, precision);
    acc.add_row({cds::to_string(precision), compact(r.max_abs_error_bps),
                 compact(r.mean_abs_error_bps), compact(r.max_rel_error)});
  }
  std::cout << acc.render_text()
            << "\nquoting convention is 2 decimal places of a bp; fp32 "
               "errors sit orders of magnitude below it.\n\n";

  // --- projected hardware benefit ----------------------------------------------
  const fpga::ReducedPrecisionModel rp;
  const auto device = fpga::alveo_u280();

  engine::FpgaEngineConfig fp64_cfg;
  engine::VectorisedEngine fp64_engine(scenario.interest, scenario.hazard,
                                       fp64_cfg);
  const auto fp64_run = fp64_engine.price(scenario.options);

  engine::FpgaEngineConfig fp32_cfg;
  fp32_cfg.cost = rp.apply(fp64_cfg.cost);
  engine::VectorisedEngine fp32_engine(scenario.interest, scenario.hazard,
                                       fp32_cfg);
  const auto fp32_run = fp32_engine.price(scenario.options);

  const fpga::ResourceEstimator fp64_est(device);
  const fpga::ResourceEstimator fp32_est(device,
                                         rp.apply(fpga::OperatorCosts{}));
  fpga::EngineShape shape;
  shape.hazard_lanes = shape.interpolation_lanes = fp64_cfg.vector_lanes;

  report::Table hw("Projected single-precision engine (simulated)");
  hw.set_columns({"Build", "Options/s (1 engine)", "Max engines on U280",
                  "Projected card total"});
  const unsigned n64 = fp64_est.max_engines(shape);
  const unsigned n32 = fp32_est.max_engines(shape);
  hw.add_row({"fp64 (paper)", with_thousands(fp64_run.options_per_second, 0),
              std::to_string(n64),
              with_thousands(fp64_run.options_per_second * 0.92 * n64, 0)});
  hw.add_row({"fp32 (projected)",
              with_thousands(fp32_run.options_per_second, 0),
              std::to_string(n32),
              with_thousands(fp32_run.options_per_second * 0.92 * n32, 0)});
  std::cout << hw.render_text() << "\nper-engine speedup "
            << fixed(fp32_run.options_per_second /
                         fp64_run.options_per_second,
                     2)
            << "x (wider URAM feed + shorter pipelines); card-level totals "
               "assume Table II's ~92% multi-engine efficiency.\n";
  return 0;
}
