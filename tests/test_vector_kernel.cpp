/// \file test_vector_kernel.cpp
/// The SIMD vector kernel's contract (cds/vector_kernel.hpp, bounds in
/// cds::VectorKernelContract, prose in docs/VECTOR_LANES.md): runtime
/// dispatch and the lane map, the exp ulp bound, column parity against the
/// scalar reference, alignment invariance of vector-level columns, the
/// bit-exact spread combine, the bit-identical kScalar fallback, randomized
/// vec-vs-scalar batch and risk parity across book shapes and knot counts,
/// stream bit-consistency across incremental hazard updates, the registry
/// name grammar, and planner enumeration of the cpu-vec candidates.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "cds/batch_pricer.hpp"
#include "cds/curve.hpp"
#include "cds/hazard.hpp"
#include "cds/precision.hpp"
#include "cds/pricer.hpp"
#include "cds/schedule.hpp"
#include "cds/stream_pricer.hpp"
#include "cds/types.hpp"
#include "cds/vector_kernel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "engines/planner.hpp"
#include "engines/registry.hpp"
#include "hls/replicate.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"

namespace cdsflow {
namespace {

using cds::BatchPricer;
using cds::CdsOption;
using cds::TermStructure;
using cds::VectorKernelContract;
using Level = cds::simd::Level;

/// The vector levels this host can actually execute (possibly empty).
std::vector<Level> available_vector_levels() {
  std::vector<Level> levels;
  for (const Level level : {Level::kAvx2, Level::kAvx512}) {
    if (cds::simd::resolve_level(level) == level) levels.push_back(level);
  }
  return levels;
}

/// Monotone bit ordering of finite doubles, for ulp distances across a
/// power-of-two boundary.
std::uint64_t ordered_bits(double x) {
  const std::uint64_t u = std::bit_cast<std::uint64_t>(x);
  return (u >> 63) ? ~u : (u | 0x8000000000000000ull);
}

double ulp_distance(double a, double b) {
  const std::uint64_t x = ordered_bits(a);
  const std::uint64_t y = ordered_bits(b);
  return static_cast<double>(x > y ? x - y : y - x);
}

std::vector<CdsOption> continuous_book(std::size_t count, std::uint64_t seed) {
  workload::PortfolioSpec spec;
  spec.count = count;
  spec.maturity_min_years = 0.25;
  spec.maturity_max_years = 29.5;
  spec.frequencies = {1.0, 2.0, 4.0, 12.0};
  spec.frequency_weights = {1.0, 1.0, 4.0, 1.0};
  spec.seed = seed;
  return workload::make_portfolio(spec);
}

std::vector<CdsOption> tenor_book(std::size_t count, std::uint64_t seed) {
  workload::PortfolioSpec spec;
  spec.count = count;
  spec.maturity_tenor_grid = {1.0, 3.0, 5.0, 7.0, 10.0};
  spec.frequencies = {2.0, 4.0};
  spec.frequency_weights = {1.0, 3.0};
  spec.seed = seed;
  return workload::make_portfolio(spec);
}

/// Flat schedule arena over a book, the layout the batch kernel tabulates.
std::vector<cds::TimePoint> schedule_arena(
    const std::vector<CdsOption>& book) {
  std::vector<cds::TimePoint> points;
  for (const CdsOption& option : book) cds::make_schedule(option, points);
  return points;
}

void expect_spread_parity(const std::vector<cds::SpreadResult>& got,
                          const std::vector<cds::SpreadResult>& want,
                          double tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
    EXPECT_LE(relative_difference(got[i].spread_bps, want[i].spread_bps), tol)
        << "option " << i << ": got " << got[i].spread_bps << " want "
        << want[i].spread_bps;
  }
}

// --- dispatch ---------------------------------------------------------------

TEST(VectorKernel, LaneMapMirrorsHlsReplication) {
  EXPECT_EQ(cds::simd::lanes(Level::kScalar), 1u);
  EXPECT_EQ(cds::simd::lanes(Level::kAvx2), 4u);
  EXPECT_EQ(cds::simd::lanes(Level::kAvx512), 8u);
  // The CPU lane table brackets the paper's URAM-feed-limited replication
  // factor (Fig. 3; hls/replicate.hpp) -- the correspondence documented in
  // docs/VECTOR_LANES.md.
  EXPECT_EQ(hls::ReplicationConfig{}.lanes, 6u);

  EXPECT_STREQ(cds::simd::to_string(Level::kScalar), "scalar");
  EXPECT_STREQ(cds::simd::to_string(Level::kAvx2), "avx2");
  EXPECT_STREQ(cds::simd::to_string(Level::kAvx512), "avx512");
}

TEST(VectorKernel, DispatchNeverExceedsTheHost) {
  const Level detect = cds::simd::detect_level();
  // A request is clamped to the host: asking for the widest level resolves
  // to exactly what detection found, and kScalar is always honoured.
  EXPECT_EQ(cds::simd::resolve_level(Level::kAvx512), detect);
  EXPECT_EQ(cds::simd::resolve_level(Level::kScalar), Level::kScalar);
  EXPECT_LE(static_cast<int>(cds::simd::active_level()),
            static_cast<int>(detect));
  if (!cds::simd::compiled_with_simd()) {
    // The scalar-only CI lane (-DCDSFLOW_DISABLE_SIMD=ON) lands here.
    EXPECT_EQ(detect, Level::kScalar);
  }
}

// --- the exp kernel (VectorKernelContract::kExpUlpBound) --------------------

TEST(VectorKernel, ExpColumnsWithinUlpBound) {
  for (const Level level : available_vector_levels()) {
    SCOPED_TRACE(cds::simd::to_string(level));
    Rng rng(2024 + static_cast<std::uint64_t>(level));
    // The pricing domain is -Lambda(t) and -r*t: rates below ~20% on tenors
    // to 30y stay within [-6, 0]. Test an order of magnitude beyond it on
    // both sides, plus the edges the kernel special-cases.
    std::vector<double> xs;
    for (int i = 0; i < 4096; ++i) xs.push_back(rng.uniform(-60.0, 10.0));
    for (const double edge : {0.0, -0.0, 1e-12, -1e-12, -59.9, 9.9, 1.0}) {
      xs.push_back(edge);
    }
    std::vector<double> got(xs.size());
    cds::simd::exp_columns(xs, got, level);
    double worst = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      worst = std::max(worst, ulp_distance(got[i], std::exp(xs[i])));
    }
    EXPECT_LE(worst, VectorKernelContract::kExpUlpBound);
  }
}

TEST(VectorKernel, ExpColumnsAtScalarLevelIsStdExp) {
  std::vector<double> xs = {-3.5, -1.0, -1e-9, 0.0, 0.25};
  std::vector<double> got(xs.size());
  cds::simd::exp_columns(xs, got, Level::kScalar);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(got[i], std::exp(xs[i]));
  }
}

// --- column kernels ---------------------------------------------------------

TEST(VectorKernel, ColumnsMatchReferenceWithinUlpBound) {
  for (const std::size_t knots : {1u, 2u, 7u, 64u, 1024u}) {
    SCOPED_TRACE("knots=" + std::to_string(knots));
    const auto interest = workload::paper_interest_curve(knots, 5);
    const auto hazard = workload::paper_hazard_curve(knots, 6);
    const auto prefix = cds::make_hazard_prefix(hazard);
    const auto points = schedule_arena(continuous_book(48, 700 + knots));

    std::vector<double> ref_q(points.size()), ref_d(points.size());
    cds::simd::survival_column(prefix, points, ref_q, Level::kScalar);
    cds::simd::discount_column(interest, points, ref_d, Level::kScalar);
    for (const Level level : available_vector_levels()) {
      SCOPED_TRACE(cds::simd::to_string(level));
      std::vector<double> q(points.size()), d(points.size());
      cds::simd::tabulate_columns(interest, prefix, points, d, q,
                                  /*refresh_discount=*/true, level);
      for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_LE(ulp_distance(q[i], ref_q[i]),
                  VectorKernelContract::kExpUlpBound)
            << "survival point " << i;
        EXPECT_LE(ulp_distance(d[i], ref_d[i]),
                  VectorKernelContract::kExpUlpBound)
            << "discount point " << i;
      }
    }
  }
}

TEST(VectorKernel, VectorColumnsAreAlignmentInvariant) {
  // The property the runtime's determinism rests on: a point's column value
  // does not depend on where the arena's lane head ends, because the tail
  // runs the bit-identical scalar exp_pd twin. Tabulating any subrange in
  // isolation must reproduce the arena-wide bits exactly.
  const auto interest = workload::paper_interest_curve(64, 5);
  const auto hazard = workload::paper_hazard_curve(64, 6);
  const auto prefix = cds::make_hazard_prefix(hazard);
  const auto points = schedule_arena(continuous_book(32, 4242));
  ASSERT_GE(points.size(), 32u);

  for (const Level level : available_vector_levels()) {
    SCOPED_TRACE(cds::simd::to_string(level));
    std::vector<double> whole_q(points.size()), whole_d(points.size());
    cds::simd::survival_column(prefix, points, whole_q, level);
    cds::simd::discount_column(interest, points, whole_d, level);

    // Deliberately lane-hostile split points (prime offsets, odd lengths).
    for (const std::size_t begin : {0, 1, 3, 7, 13}) {
      const std::size_t n = std::min<std::size_t>(points.size() - begin, 29);
      std::vector<double> q(n), d(n);
      const auto part = std::span<const cds::TimePoint>(points)
                            .subspan(begin, n);
      cds::simd::survival_column(prefix, part, q, level);
      cds::simd::discount_column(interest, part, d, level);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(q[i], whole_q[begin + i]) << "offset " << begin + i;
        EXPECT_EQ(d[i], whole_d[begin + i]) << "offset " << begin + i;
      }
    }
  }
}

TEST(VectorKernel, CombineSpreadsBitExactAtEveryLevel) {
  Rng rng(77);
  const std::size_t n_grids = 5;
  std::vector<double> annuity, payoff;
  for (std::size_t g = 0; g < n_grids; ++g) {
    annuity.push_back(rng.uniform(0.5, 8.0));
    payoff.push_back(rng.uniform(0.01, 0.9));
  }
  // 37 options: not a multiple of any lane width, so the tail runs too.
  std::vector<CdsOption> options;
  std::vector<std::uint32_t> grid_of;
  for (int i = 0; i < 37; ++i) {
    CdsOption option;
    option.id = 1000 + i;
    option.recovery_rate = rng.uniform(0.0, 0.95);
    options.push_back(option);
    grid_of.push_back(static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_grids) - 1)));
  }
  std::vector<cds::SpreadResult> want(options.size());
  cds::simd::combine_spreads(options, grid_of, annuity, payoff, want,
                             Level::kScalar);
  for (const Level level : available_vector_levels()) {
    SCOPED_TRACE(cds::simd::to_string(level));
    std::vector<cds::SpreadResult> got(options.size());
    cds::simd::combine_spreads(options, grid_of, annuity, payoff, got, level);
    for (std::size_t i = 0; i < options.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_EQ(got[i].spread_bps, want[i].spread_bps) << "option " << i;
    }
  }
}

// --- the kScalar fallback (bit-identical, not merely within tolerance) ------

TEST(VectorKernel, ScalarLevelIsBitIdenticalToBatchKernel) {
  const auto interest = workload::paper_interest_curve(64, 5);
  const auto hazard = workload::paper_hazard_curve(64, 6);
  const auto book = continuous_book(200, 2121);

  const BatchPricer batch(interest, hazard);
  const BatchPricer explicit_scalar(interest, hazard, Level::kScalar);
  EXPECT_EQ(explicit_scalar.kernel_level(), Level::kScalar);
  const auto want = batch.price(book);
  const auto got = explicit_scalar.price(book);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
    EXPECT_EQ(got[i].spread_bps, want[i].spread_bps);
  }

  if (cds::simd::detect_level() == Level::kScalar) {
    // SIMD compiled out (the scalar-only CI lane) or an unsupported CPU:
    // requesting the widest level must clamp to the same bits, and the
    // cpu-vec engine must reproduce cpu-batch exactly.
    const BatchPricer clamped(interest, hazard, Level::kAvx512);
    EXPECT_EQ(clamped.kernel_level(), Level::kScalar);
    const auto clamped_run = clamped.price(book);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(clamped_run[i].spread_bps, want[i].spread_bps);
    }
    const auto vec_run =
        engine::make_engine("cpu-vec", interest, hazard)->price(book);
    const auto batch_run =
        engine::make_engine("cpu-batch", interest, hazard)->price(book);
    ASSERT_EQ(vec_run.results.size(), batch_run.results.size());
    for (std::size_t i = 0; i < vec_run.results.size(); ++i) {
      EXPECT_EQ(vec_run.results[i].spread_bps,
                batch_run.results[i].spread_bps);
    }
  }
}

// --- randomized batch parity (VectorKernelContract::kSpreadRelTol) ----------

TEST(VectorKernel, BatchParityAcrossBooksAndKnotCounts) {
  const Level level = cds::simd::detect_level();
  for (const std::size_t knots : {1u, 2u, 7u, 129u}) {
    SCOPED_TRACE("knots=" + std::to_string(knots));
    const auto interest = workload::paper_interest_curve(knots, 5);
    const auto hazard = workload::paper_hazard_curve(knots, 6);
    const BatchPricer vec(interest, hazard, level);
    const BatchPricer scalar(interest, hazard);
    const cds::ReferencePricer ref(interest, hazard);
    EXPECT_EQ(vec.kernel_level(), level);

    for (const bool continuous : {true, false}) {
      SCOPED_TRACE(continuous ? "continuous book" : "standard-tenor book");
      const auto book = continuous ? continuous_book(160, 3000 + knots)
                                   : tenor_book(160, 4000 + knots);
      const auto got = vec.price(book);
      expect_spread_parity(got, scalar.price(book),
                           VectorKernelContract::kSpreadRelTol);
      // And against the golden model at the repo-wide acceptance bound.
      for (std::size_t i = 0; i < book.size(); ++i) {
        EXPECT_LE(
            relative_difference(got[i].spread_bps, ref.spread_bps(book[i])),
            1e-9);
      }
    }
  }
}

// --- risk parity (kGreekRelTol / kGreekAbsFloor via greek_tolerance) --------

TEST(VectorKernel, RiskParityWithinContract) {
  const auto interest = workload::paper_interest_curve(64, 5);
  const auto hazard = workload::paper_hazard_curve(64, 6);
  const BatchPricer vec(interest, hazard, cds::simd::detect_level());
  const BatchPricer scalar(interest, hazard);
  const auto book = continuous_book(120, 5150);

  cds::BatchRiskConfig config;
  config.ladder_edges = {0.0, 1.0, 3.0, 5.0, 10.0, 30.0};
  const auto got = vec.price_with_sensitivities(book, config);
  const auto want = scalar.price_with_sensitivities(book, config);
  ASSERT_EQ(got.sensitivities.size(), book.size());
  ASSERT_EQ(got.ladder_buckets, 5u);
  ASSERT_EQ(got.cs01_ladder.size(), book.size() * got.ladder_buckets);

  for (std::size_t i = 0; i < book.size(); ++i) {
    SCOPED_TRACE("option " + std::to_string(i));
    const cds::Sensitivities& g = got.sensitivities[i];
    const cds::Sensitivities& w = want.sensitivities[i];
    EXPECT_LE(relative_difference(g.spread_bps, w.spread_bps),
              VectorKernelContract::kSpreadRelTol);
    // Rec01 is a reweighting of the base sums: it obeys the spread bound.
    EXPECT_LE(relative_difference(g.rec01, w.rec01),
              VectorKernelContract::kSpreadRelTol);
    // JTD is 1 - R, no curve math: exactly equal.
    EXPECT_EQ(g.jtd, w.jtd);
    EXPECT_LE(std::fabs(g.cs01 - w.cs01),
              VectorKernelContract::greek_tolerance(w.cs01, w.spread_bps,
                                                    config.bump))
        << "cs01 " << g.cs01 << " vs " << w.cs01;
    EXPECT_LE(std::fabs(g.ir01 - w.ir01),
              VectorKernelContract::greek_tolerance(w.ir01, w.spread_bps,
                                                    config.bump))
        << "ir01 " << g.ir01 << " vs " << w.ir01;
    for (std::size_t b = 0; b < got.ladder_buckets; ++b) {
      const double gv = got.cs01_ladder[i * got.ladder_buckets + b];
      const double wv = want.cs01_ladder[i * want.ladder_buckets + b];
      EXPECT_LE(std::fabs(gv - wv),
                VectorKernelContract::greek_tolerance(wv, w.spread_bps,
                                                      config.bump))
          << "ladder bucket " << b << ": " << gv << " vs " << wv;
    }
  }
}

// --- streaming pricer -------------------------------------------------------

TEST(VectorKernel, StreamStaysBitConsistentWithBatchRebuilds) {
  const auto interest = workload::paper_interest_curve(32, 5);
  auto hazard_values = workload::paper_hazard_curve(32, 6).values();
  const auto hazard_times = workload::paper_hazard_curve(32, 6).times();
  const TermStructure hazard(hazard_times, hazard_values);
  const Level level = cds::simd::detect_level();

  cds::StreamPricerConfig vec_config;
  vec_config.kernel_level = level;
  cds::StreamPricer vec_stream(interest, hazard, vec_config);
  cds::StreamPricer scalar_stream(interest, hazard);

  const auto book = tenor_book(120, 808);
  const auto price_batch = [&](cds::StreamPricer& pricer, std::size_t begin,
                               std::size_t count) {
    std::vector<cds::SpreadResult> out(count);
    pricer.price(std::span<const CdsOption>(book).subspan(begin, count), out);
    return out;
  };

  for (std::size_t batch = 0; batch < 3; ++batch) {
    SCOPED_TRACE("micro-batch " + std::to_string(batch));
    const auto got = price_batch(vec_stream, batch * 40, 40);
    const auto want = price_batch(scalar_stream, batch * 40, 40);
    expect_spread_parity(got, want, VectorKernelContract::kSpreadRelTol);
  }

  // Move one hazard quote on both replicas and on a fresh batch pricer.
  const std::size_t knot = 7;
  const double rate = hazard.value(knot) * 1.35;
  vec_stream.update_hazard_quote(knot, rate);
  scalar_stream.update_hazard_quote(knot, rate);
  hazard_values[knot] = rate;
  const BatchPricer fresh(interest, TermStructure(hazard_times, hazard_values),
                          level);

  const auto after = price_batch(vec_stream, 0, book.size());
  expect_spread_parity(after, price_batch(scalar_stream, 0, book.size()),
                       VectorKernelContract::kSpreadRelTol);
  // Alignment invariance makes the incremental per-grid re-tabulation
  // bit-consistent with an arena-wide rebuild even at vector levels.
  const auto rebuilt = fresh.price(book);
  ASSERT_EQ(after.size(), rebuilt.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].id, rebuilt[i].id);
    EXPECT_EQ(after[i].spread_bps, rebuilt[i].spread_bps) << "option " << i;
  }
}

// --- engines and registry ---------------------------------------------------

TEST(VectorKernel, EngineParityAndThreadInvariance) {
  const auto interest = workload::paper_interest_curve(64, 5);
  const auto hazard = workload::paper_hazard_curve(64, 6);
  const auto book = tenor_book(192, 99);

  const auto vec = engine::make_engine("cpu-vec", interest, hazard);
  EXPECT_EQ(vec->name(), "cpu-vec");
  EXPECT_NE(vec->description().find("SIMD batch kernel"), std::string::npos);
  EXPECT_NE(
      vec->description().find(cds::simd::to_string(cds::simd::active_level())),
      std::string::npos);

  const auto vec_run = vec->price(book);
  const auto batch_run =
      engine::make_engine("cpu-batch", interest, hazard)->price(book);
  ASSERT_EQ(vec_run.results.size(), book.size());
  for (std::size_t i = 0; i < book.size(); ++i) {
    EXPECT_LE(relative_difference(vec_run.results[i].spread_bps,
                                  batch_run.results[i].spread_bps),
              VectorKernelContract::kSpreadRelTol);
  }

  // Thread variants partition the book into per-thread chunks with their own
  // arenas; alignment invariance keeps the registry's bit-for-bit claim.
  const auto mt_run =
      engine::make_engine("cpu-vec-mt2", interest, hazard)->price(book);
  ASSERT_EQ(mt_run.results.size(), book.size());
  for (std::size_t i = 0; i < book.size(); ++i) {
    EXPECT_EQ(mt_run.results[i].id, vec_run.results[i].id);
    EXPECT_EQ(mt_run.results[i].spread_bps, vec_run.results[i].spread_bps)
        << "option " << i;
  }
}

TEST(VectorKernel, RegistryNameGrammarRoundTrips) {
  engine::CpuEngineConfig config;
  ASSERT_TRUE(engine::parse_cpu_engine_name("cpu-vec", config));
  EXPECT_TRUE(config.vector_kernel);
  EXPECT_FALSE(config.batch_kernel);
  EXPECT_FALSE(config.risk_mode);
  EXPECT_EQ(config.threads, 1u);

  config = {};
  ASSERT_TRUE(engine::parse_cpu_engine_name("cpu-vec-risk-mt8", config));
  EXPECT_TRUE(config.vector_kernel);
  EXPECT_TRUE(config.risk_mode);
  EXPECT_EQ(config.threads, 8u);

  config = {};
  ASSERT_TRUE(engine::parse_cpu_engine_name("cpu-vec-mt", config));
  EXPECT_TRUE(config.vector_kernel);
  EXPECT_EQ(config.threads, 0u);  // all hardware threads

  config = {};
  EXPECT_FALSE(engine::parse_cpu_engine_name("cpu-vectorised", config));
  EXPECT_FALSE(config.vector_kernel);

  EXPECT_EQ(engine::cpu_engine_name(false, true, false, 1), "cpu-vec");
  EXPECT_EQ(engine::cpu_engine_name(true, true, true, 8), "cpu-vec-risk-mt8");
  EXPECT_EQ(engine::cpu_engine_name(true, false, false, 2), "cpu-batch-mt2");
  // The legacy 3-argument spelling still means vector_kernel = false.
  EXPECT_EQ(engine::cpu_engine_name(true, true, 8), "cpu-batch-risk-mt8");

  const auto names = engine::engine_names();
  for (const char* name : {"cpu-vec", "cpu-vec-mt", "cpu-vec-risk"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

// --- planner ----------------------------------------------------------------

TEST(VectorKernel, PlannerEnumeratesVectorCandidateOnSimdHosts) {
  const auto interest = workload::paper_interest_curve(16, 5);
  const auto hazard = workload::paper_hazard_curve(16, 6);
  engine::PlannerConfig config;
  config.probe_sizes = {8, 24};
  config.probe_warmup_runs = 1;
  config.probe_repeats = 1;
  config.cpu_thread_counts = {1};
  config.fpga_engine_counts = {1};

  const auto has = [](const std::vector<engine::BackendCandidate>& candidates,
                      const std::string& name) {
    return std::any_of(candidates.begin(), candidates.end(),
                       [&](const engine::BackendCandidate& c) {
                         return c.engine_name == name;
                       });
  };

  const auto candidates = engine::enumerate_backends(interest, hazard, config);
  EXPECT_TRUE(has(candidates, "cpu"));
  EXPECT_TRUE(has(candidates, "cpu-batch"));
  // cpu-vec rides the existing probe->affine-fit pipeline with no
  // planner-logic changes; it appears exactly when the host has lanes.
  EXPECT_EQ(has(candidates, "cpu-vec"),
            cds::simd::active_level() != Level::kScalar);
  for (const auto& candidate : candidates) {
    EXPECT_GT(candidate.options_per_second, 0.0) << candidate.engine_name;
  }

  config.probe_cpu_vec = false;
  EXPECT_FALSE(has(engine::enumerate_backends(interest, hazard, config),
                   "cpu-vec"));
}

}  // namespace
}  // namespace cdsflow
