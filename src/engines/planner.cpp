#include "engines/planner.hpp"

#include <algorithm>
#include <thread>

#include "common/error.hpp"
#include "engines/registry.hpp"
#include "fpga/device.hpp"
#include "workload/options.hpp"

namespace cdsflow::engine {

PlannerConfig::PlannerConfig() : device(fpga::alveo_u280()) {}

std::vector<BackendCandidate> enumerate_backends(
    const cds::TermStructure& interest, const cds::TermStructure& hazard,
    const PlannerConfig& config) {
  CDSFLOW_EXPECT(config.probe_options >= 8,
                 "probe workload too small to be representative");

  // Probe book drawn once, shared by every candidate.
  workload::PortfolioSpec probe_spec;
  probe_spec.count = config.probe_options;
  probe_spec.seed = 20211109;  // fixed: candidates must see identical work
  const auto probe = workload::make_portfolio(probe_spec);

  std::vector<BackendCandidate> candidates;

  // --- CPU candidates -------------------------------------------------------
  std::vector<unsigned> threads = config.cpu_thread_counts;
  if (threads.empty()) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    threads = {1u};
    if (hw > 1) threads.push_back(hw);
  }
  for (const unsigned t : threads) {
    std::vector<std::string> names;
    names.push_back(t == 1 ? "cpu" : "cpu-mt" + std::to_string(t));
    if (config.probe_cpu_batch) {
      names.push_back(t == 1 ? "cpu-batch"
                             : "cpu-batch-mt" + std::to_string(t));
    }
    for (const auto& name : names) {
      auto engine = make_engine(name, interest, hazard);
      const auto run = engine->price(probe);
      candidates.push_back(
          {name, config.cpu_power.watts(t), run.options_per_second});
    }
  }

  // --- FPGA candidates --------------------------------------------------------
  std::vector<unsigned> engines = config.fpga_engine_counts;
  if (engines.empty()) {
    fpga::EngineShape shape;
    shape.hazard_lanes = shape.interpolation_lanes = 6;
    const fpga::ResourceEstimator estimator(config.device);
    const unsigned max = estimator.max_engines(shape);
    for (unsigned n = 1; n <= max; ++n) engines.push_back(n);
  }
  for (const unsigned n : engines) {
    const std::string name = "multi-" + std::to_string(n);
    auto engine = make_engine(name, interest, hazard);
    const auto run = engine->price(probe);
    candidates.push_back(
        {name, config.fpga_power.watts(n), run.options_per_second});
  }
  return candidates;
}

std::vector<PlanEntry> plan_batch(
    const std::vector<BackendCandidate>& candidates,
    const BatchRequirements& requirements) {
  CDSFLOW_EXPECT(requirements.n_options > 0, "batch must contain options");
  CDSFLOW_EXPECT(requirements.deadline_seconds > 0.0,
                 "deadline must be positive");
  CDSFLOW_EXPECT(!candidates.empty(), "no back-end candidates supplied");

  std::vector<PlanEntry> entries;
  entries.reserve(candidates.size());
  for (const auto& candidate : candidates) {
    CDSFLOW_EXPECT(candidate.options_per_second > 0.0,
                   "candidate '" + candidate.engine_name +
                       "' has no throughput measurement");
    PlanEntry entry;
    entry.candidate = candidate;
    entry.projected_seconds = candidate.seconds_for(requirements.n_options);
    entry.projected_joules = candidate.joules_for(requirements.n_options);
    entry.meets_deadline =
        entry.projected_seconds <= requirements.deadline_seconds;
    entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const PlanEntry& a, const PlanEntry& b) {
              if (a.meets_deadline != b.meets_deadline) {
                return a.meets_deadline;
              }
              if (a.meets_deadline) {
                return a.projected_joules < b.projected_joules;
              }
              return a.projected_seconds < b.projected_seconds;
            });
  return entries;
}

std::optional<PlanEntry> best_plan(const std::vector<PlanEntry>& entries) {
  if (entries.empty() || !entries.front().meets_deadline) {
    return std::nullopt;
  }
  return entries.front();
}

}  // namespace cdsflow::engine
