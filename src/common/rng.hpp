/// \file rng.hpp
/// Deterministic random number generation.
///
/// Workload generation must be bit-reproducible across platforms and standard
/// library implementations (std:: distributions are not), so cdsflow ships its
/// own xoshiro256** generator plus the handful of distributions the workload
/// module needs. Streams are seedable and splittable: every portfolio, curve,
/// and scenario derives an independent child stream from a master seed, so
/// adding a new consumer never perturbs existing draws.

#pragma once

#include <cstdint>
#include <vector>

namespace cdsflow {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded via splitmix64 as the authors recommend.
class Rng {
 public:
  /// Seeds the stream. Two Rng instances with equal seeds produce identical
  /// sequences on every platform.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare so the
  /// stream position is easy to reason about).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Picks an element index weighted by `weights` (need not be normalised;
  /// all weights must be >= 0 with a positive sum).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent child stream; `salt` distinguishes siblings.
  Rng split(std::uint64_t salt) const;

 private:
  std::uint64_t state_[4];
};

}  // namespace cdsflow
