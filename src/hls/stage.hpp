/// \file stage.hpp
/// Pipelined dataflow stage primitives.
///
/// Each stage models one HLS dataflow function: a loop (or loop nest) that
/// consumes tokens from input streams, is *occupied* for a number of cycles
/// per token, and makes its result visible on the output stream after a
/// pipeline latency. The occupancy per token is the stage's effective
/// initiation interval:
///
///   * a fully pipelined II=1 operation occupies its issue slot for 1 cycle;
///   * the Vitis library's hazard accumulation occupies 7 cycles per element
///     (the carried double-precision add the paper's Listing 1 removes);
///   * an inner scan over `n` curve points occupies `n * inner_ii` cycles --
///     expressed with a dynamic `work` function of the token.
///
/// Results commit to the output stream strictly in order; a full output
/// stream back-pressures the stage exactly as a full FIFO stalls an HLS
/// pipeline. Every stage counts busy cycles and can record its activity in a
/// sim::Trace for the figure benches.
///
/// The primitives:
///   SourceStage     memory/input side: emits a prepared token sequence
///   SinkStage       collects results
///   MapStage        1 token in -> 1 token out (optionally stateful kernel)
///   ExpandStage     1 token in -> K tokens out (time-point generation)
///   ReduceStage     K tokens in -> 1 token out (per-option accumulators)
///   ZipStage        1 token from each of several inputs -> 1 out
///   BroadcastStage  1 token in -> copy to every output

#pragma once

#include <deque>
#include <functional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sim/channel.hpp"
#include "sim/process.hpp"
#include "sim/trace.hpp"

namespace cdsflow::hls {

using sim::Channel;
using sim::Cycle;
using sim::kNoWake;

/// Timing parameters shared by the stage templates.
struct StageTiming {
  /// Cycles from issue until the result is visible on the output stream.
  Cycle latency = 1;
  /// Static occupancy per token (effective II) when no dynamic work function
  /// is supplied.
  Cycle ii = 1;
  /// Maximum results in flight (pipeline depth). 0 selects latency/ii + 1.
  std::size_t pipeline_depth = 0;

  std::size_t depth_or_default() const {
    if (pipeline_depth != 0) return pipeline_depth;
    const Cycle d = ii == 0 ? latency : latency / std::max<Cycle>(ii, 1);
    return static_cast<std::size_t>(d) + 1;
  }
};

/// Mixin with the bookkeeping every stage shares: token counting, busy-cycle
/// accounting, optional tracing and stall-note flags.
class StageBase : public sim::Process {
 public:
  StageBase(std::string name, StageTiming timing, std::uint64_t expected_tokens,
            sim::Trace* trace = nullptr)
      : Process(std::move(name)), timing_(timing), expected_(expected_tokens) {
    if (trace != nullptr) {
      trace_ = trace;
      track_ = trace->add_track(this->name());
    }
  }

  std::uint64_t processed_tokens() const { return processed_; }
  std::uint64_t expected_tokens() const { return expected_; }
  Cycle busy_cycles() const { return busy_; }
  const StageTiming& timing() const { return timing_; }

 protected:
  /// Books `occupied` busy cycles starting at `now` (and traces them).
  void note_issue(Cycle now, Cycle occupied) {
    ++processed_;
    busy_ += occupied;
    if (trace_ != nullptr) trace_->record(track_, now, now + occupied);
  }

  StageTiming timing_;
  std::uint64_t expected_ = 0;
  std::uint64_t processed_ = 0;

 private:
  Cycle busy_ = 0;
  sim::Trace* trace_ = nullptr;
  std::size_t track_ = 0;
};

// ---------------------------------------------------------------------------
// SourceStage
// ---------------------------------------------------------------------------

/// Emits a prepared sequence of tokens, paced by `ii` (or a per-token pace
/// function, used by the memory-port models to account for burst widths).
template <typename T>
class SourceStage final : public StageBase {
 public:
  SourceStage(std::string name, Channel<T>& out, std::vector<T> tokens,
              StageTiming timing, sim::Trace* trace = nullptr,
              std::function<Cycle(const T&)> pace = nullptr)
      : StageBase(std::move(name), timing, tokens.size(), trace),
        out_(out),
        tokens_(std::move(tokens)),
        pace_(std::move(pace)) {}

  bool step(Cycle now) override {
    if (idx_ >= tokens_.size()) return false;
    if (now < next_emit_) return false;
    if (!out_.can_push()) {
      out_.record_push_stall();
      return false;
    }
    const Cycle occupied =
        std::max<Cycle>(pace_ ? pace_(tokens_[idx_]) : timing_.ii, 1);
    out_.push(tokens_[idx_]);
    emission_cycles_.push_back(now);
    ++idx_;
    note_issue(now, occupied);
    next_emit_ = now + occupied;
    return true;
  }

  Cycle next_wake(Cycle now) const override {
    if (idx_ >= tokens_.size()) return kNoWake;
    if (next_emit_ > now) return next_emit_;
    return kNoWake;  // blocked on output space
  }

  bool done() const override { return idx_ >= tokens_.size(); }

  std::string describe_state() const override {
    return "emitted " + std::to_string(idx_) + "/" +
           std::to_string(tokens_.size()) + ", blocked on '" + out_.name() +
           "'";
  }

  /// Cycle at which each token entered the stream (latency accounting).
  const std::vector<Cycle>& emission_cycles() const {
    return emission_cycles_;
  }

 private:
  Channel<T>& out_;
  std::vector<T> tokens_;
  std::function<Cycle(const T&)> pace_;
  std::vector<Cycle> emission_cycles_;
  std::size_t idx_ = 0;
  Cycle next_emit_ = 0;
};

// ---------------------------------------------------------------------------
// SinkStage
// ---------------------------------------------------------------------------

/// Collects `expected` tokens into a vector (the engine reads them after the
/// run). `ii` models the drain rate of the result port.
template <typename T>
class SinkStage final : public StageBase {
 public:
  SinkStage(std::string name, Channel<T>& in, std::uint64_t expected,
            StageTiming timing, sim::Trace* trace = nullptr)
      : StageBase(std::move(name), timing, expected, trace), in_(in) {
    collected_.reserve(static_cast<std::size_t>(expected));
  }

  bool step(Cycle now) override {
    if (processed_ >= expected_) return false;
    if (now < next_take_) return false;
    if (!in_.can_pop()) {
      in_.record_pop_stall();
      return false;
    }
    collected_.push_back(in_.pop());
    arrival_cycles_.push_back(now);
    const Cycle occupied = std::max<Cycle>(timing_.ii, 1);
    note_issue(now, occupied);
    next_take_ = now + occupied;
    return true;
  }

  Cycle next_wake(Cycle now) const override {
    if (processed_ >= expected_) return kNoWake;
    if (next_take_ > now && in_.can_pop()) return next_take_;
    return kNoWake;
  }

  bool done() const override { return processed_ >= expected_; }

  std::string describe_state() const override {
    return "received " + std::to_string(processed_) + "/" +
           std::to_string(expected_) + ", waiting on '" + in_.name() + "'";
  }

  const std::vector<T>& collected() const { return collected_; }
  std::vector<T>&& take() { return std::move(collected_); }

  /// Cycle at which each token was drained (latency accounting).
  const std::vector<Cycle>& arrival_cycles() const { return arrival_cycles_; }

 private:
  Channel<T>& in_;
  std::vector<T> collected_;
  std::vector<Cycle> arrival_cycles_;
  Cycle next_take_ = 0;
};

// ---------------------------------------------------------------------------
// MapStage
// ---------------------------------------------------------------------------

/// One token in, one token out. The kernel may be stateful (carried values
/// such as the previous survival probability live in the captured state of a
/// mutable lambda). `work` computes the per-token occupancy for loop-nest
/// stages; when null the static `ii` applies.
template <typename In, typename Out>
class MapStage final : public StageBase {
 public:
  MapStage(std::string name, Channel<In>& in, Channel<Out>& out,
           std::function<Out(const In&)> kernel, StageTiming timing,
           std::uint64_t expected, sim::Trace* trace = nullptr,
           std::function<Cycle(const In&)> work = nullptr)
      : StageBase(std::move(name), timing, expected, trace),
        in_(in),
        out_(out),
        kernel_(std::move(kernel)),
        work_(std::move(work)) {
    CDSFLOW_EXPECT(kernel_ != nullptr, "MapStage requires a kernel");
  }

  bool step(Cycle now) override {
    bool progressed = commit_ready(now);
    if (processed_ < expected_ && now >= next_issue_ &&
        inflight_.size() < timing_.depth_or_default()) {
      if (in_.can_pop()) {
        const In token = in_.pop();
        const Cycle occupied =
            std::max<Cycle>(work_ ? work_(token) : timing_.ii, 1);
        inflight_.push_back({now + occupied + timing_.latency, kernel_(token)});
        note_issue(now, occupied);
        next_issue_ = now + occupied;
        progressed = true;
      } else {
        in_.record_pop_stall();
      }
    }
    return progressed;
  }

  Cycle next_wake(Cycle now) const override {
    Cycle wake = kNoWake;
    if (!inflight_.empty() && inflight_.front().ready > now) {
      wake = std::min(wake, inflight_.front().ready);
    }
    if (processed_ < expected_ && next_issue_ > now && in_.can_pop() &&
        inflight_.size() < timing_.depth_or_default()) {
      wake = std::min(wake, next_issue_);
    }
    return wake;
  }

  bool done() const override {
    return processed_ >= expected_ && inflight_.empty();
  }

  std::string describe_state() const override {
    return "issued " + std::to_string(processed_) + "/" +
           std::to_string(expected_) + ", in-flight " +
           std::to_string(inflight_.size()) + ", in='" + in_.name() +
           "' out='" + out_.name() + "'";
  }

 private:
  struct InFlight {
    Cycle ready;
    Out value;
  };

  bool commit_ready(Cycle now) {
    bool progressed = false;
    while (!inflight_.empty() && inflight_.front().ready <= now) {
      if (!out_.can_push()) {
        out_.record_push_stall();
        break;
      }
      out_.push(std::move(inflight_.front().value));
      inflight_.pop_front();
      progressed = true;
    }
    return progressed;
  }

  Channel<In>& in_;
  Channel<Out>& out_;
  std::function<Out(const In&)> kernel_;
  std::function<Cycle(const In&)> work_;
  std::deque<InFlight> inflight_;
  Cycle next_issue_ = 0;
};

// ---------------------------------------------------------------------------
// ExpandStage
// ---------------------------------------------------------------------------

/// One token in, a batch of tokens out, emitted one per `ii` cycles (the
/// time-point generator: one option in, its payment schedule out).
template <typename In, typename Out>
class ExpandStage final : public StageBase {
 public:
  ExpandStage(std::string name, Channel<In>& in, Channel<Out>& out,
              std::function<std::vector<Out>(const In&)> kernel,
              StageTiming timing, std::uint64_t expected_inputs,
              sim::Trace* trace = nullptr)
      : StageBase(std::move(name), timing, expected_inputs, trace),
        in_(in),
        out_(out),
        kernel_(std::move(kernel)) {
    CDSFLOW_EXPECT(kernel_ != nullptr, "ExpandStage requires a kernel");
  }

  bool step(Cycle now) override {
    bool progressed = false;
    // Emit from the active batch.
    if (emit_idx_ < batch_.size() && now >= next_emit_) {
      if (out_.can_push()) {
        out_.push(batch_[emit_idx_]);
        ++emit_idx_;
        note_issue(now, std::max<Cycle>(timing_.ii, 1));
        next_emit_ = now + std::max<Cycle>(timing_.ii, 1);
        progressed = true;
      } else {
        out_.record_push_stall();
      }
    }
    // Accept the next input once the batch is drained.
    if (emit_idx_ >= batch_.size() && consumed_ < expected_ &&
        now >= next_emit_) {
      if (in_.can_pop()) {
        batch_ = kernel_(in_.pop());
        emit_idx_ = 0;
        ++consumed_;
        // The generator itself needs `latency` cycles before the first
        // element appears.
        next_emit_ = now + timing_.latency;
        progressed = true;
      } else {
        in_.record_pop_stall();
      }
    }
    return progressed;
  }

  Cycle next_wake(Cycle now) const override {
    if (done()) return kNoWake;
    if (next_emit_ > now &&
        (emit_idx_ < batch_.size() || in_.can_pop())) {
      return next_emit_;
    }
    return kNoWake;
  }

  bool done() const override {
    return consumed_ >= expected_ && emit_idx_ >= batch_.size();
  }

  std::string describe_state() const override {
    return "consumed " + std::to_string(consumed_) + "/" +
           std::to_string(expected_) + ", batch " +
           std::to_string(emit_idx_) + "/" + std::to_string(batch_.size()) +
           ", in='" + in_.name() + "' out='" + out_.name() + "'";
  }

  std::uint64_t emitted() const { return emitted_total(); }

 private:
  std::uint64_t emitted_total() const {
    return processed_;  // note_issue counts emissions for Expand
  }

  Channel<In>& in_;
  Channel<Out>& out_;
  std::function<std::vector<Out>(const In&)> kernel_;
  std::vector<Out> batch_;
  std::size_t emit_idx_ = 0;
  std::uint64_t consumed_ = 0;
  Cycle next_emit_ = 0;
};

// ---------------------------------------------------------------------------
// ReduceStage
// ---------------------------------------------------------------------------

/// Accumulates a group of tokens and emits one result when the group's final
/// token (identified by `is_last`) has been folded in. The per-token `ii`
/// models the accumulation dependency: 7 for a carried double-precision add
/// (the Vitis library), 1 for the partial-sum rewrite of paper Listing 1.
template <typename In, typename Out>
class ReduceStage final : public StageBase {
 public:
  using Update = std::function<void(const In&)>;
  using Finish = std::function<Out()>;
  using IsLast = std::function<bool(const In&)>;

  ReduceStage(std::string name, Channel<In>& in, Channel<Out>& out,
              Update update, Finish finish, IsLast is_last, StageTiming timing,
              std::uint64_t expected_inputs, sim::Trace* trace = nullptr)
      : StageBase(std::move(name), timing, expected_inputs, trace),
        in_(in),
        out_(out),
        update_(std::move(update)),
        finish_(std::move(finish)),
        is_last_(std::move(is_last)) {
    CDSFLOW_EXPECT(update_ && finish_ && is_last_,
                   "ReduceStage requires update/finish/is_last");
  }

  bool step(Cycle now) override {
    bool progressed = false;
    // Commit a pending group result.
    if (pending_ && now >= result_ready_) {
      if (out_.can_push()) {
        out_.push(std::move(pending_value_));
        pending_ = false;
        progressed = true;
      } else {
        out_.record_push_stall();
      }
    }
    // Fold in the next token (blocked while a result awaits commit so the
    // group boundary stays unambiguous).
    if (!pending_ && processed_ < expected_ && now >= next_issue_) {
      if (in_.can_pop()) {
        const In token = in_.pop();
        update_(token);
        const Cycle occupied = std::max<Cycle>(timing_.ii, 1);
        note_issue(now, occupied);
        next_issue_ = now + occupied;
        if (is_last_(token)) {
          pending_value_ = finish_();
          pending_ = true;
          result_ready_ = now + occupied + timing_.latency;
        }
        progressed = true;
      } else {
        in_.record_pop_stall();
      }
    }
    return progressed;
  }

  Cycle next_wake(Cycle now) const override {
    Cycle wake = kNoWake;
    if (pending_ && result_ready_ > now) wake = std::min(wake, result_ready_);
    if (!pending_ && processed_ < expected_ && next_issue_ > now &&
        in_.can_pop()) {
      wake = std::min(wake, next_issue_);
    }
    return wake;
  }

  bool done() const override { return processed_ >= expected_ && !pending_; }

  std::string describe_state() const override {
    return "folded " + std::to_string(processed_) + "/" +
           std::to_string(expected_) + (pending_ ? ", result pending" : "") +
           ", in='" + in_.name() + "' out='" + out_.name() + "'";
  }

 private:
  Channel<In>& in_;
  Channel<Out>& out_;
  Update update_;
  Finish finish_;
  IsLast is_last_;
  bool pending_ = false;
  Out pending_value_{};
  Cycle result_ready_ = 0;
  Cycle next_issue_ = 0;
};

// ---------------------------------------------------------------------------
// ZipStage
// ---------------------------------------------------------------------------

/// Pops one token from each input stream (in lockstep, HLS style: the n-th
/// token of every stream belongs together) and produces one output token.
template <typename Out, typename... Ins>
class ZipStage final : public StageBase {
 public:
  ZipStage(std::string name, std::tuple<Channel<Ins>*...> ins,
           Channel<Out>& out, std::function<Out(const Ins&...)> kernel,
           StageTiming timing, std::uint64_t expected,
           sim::Trace* trace = nullptr)
      : StageBase(std::move(name), timing, expected, trace),
        ins_(ins),
        out_(out),
        kernel_(std::move(kernel)) {
    CDSFLOW_EXPECT(kernel_ != nullptr, "ZipStage requires a kernel");
    std::apply(
        [](auto*... c) {
          auto check = [](const auto* p) {
            CDSFLOW_EXPECT(p != nullptr, "ZipStage input channel is null");
          };
          (check(c), ...);
        },
        ins_);
  }

  bool step(Cycle now) override {
    bool progressed = commit_ready(now);
    if (processed_ < expected_ && now >= next_issue_ &&
        inflight_.size() < timing_.depth_or_default()) {
      if (all_can_pop()) {
        Out value = std::apply(
            [this](auto*... c) { return kernel_(c->pop()...); }, ins_);
        const Cycle occupied = std::max<Cycle>(timing_.ii, 1);
        inflight_.push_back({now + occupied + timing_.latency,
                             std::move(value)});
        note_issue(now, occupied);
        next_issue_ = now + occupied;
        progressed = true;
      } else {
        record_pop_stalls();
      }
    }
    return progressed;
  }

  Cycle next_wake(Cycle now) const override {
    Cycle wake = kNoWake;
    if (!inflight_.empty() && inflight_.front().ready > now) {
      wake = std::min(wake, inflight_.front().ready);
    }
    if (processed_ < expected_ && next_issue_ > now && all_can_pop() &&
        inflight_.size() < timing_.depth_or_default()) {
      wake = std::min(wake, next_issue_);
    }
    return wake;
  }

  bool done() const override {
    return processed_ >= expected_ && inflight_.empty();
  }

  std::string describe_state() const override {
    std::string blocked;
    std::apply(
        [&blocked](auto*... c) {
          ((c->can_pop() ? void() : void(blocked += " '" + c->name() + "'")),
           ...);
        },
        ins_);
    return "issued " + std::to_string(processed_) + "/" +
           std::to_string(expected_) +
           (blocked.empty() ? "" : ", waiting on" + blocked);
  }

 private:
  struct InFlight {
    Cycle ready;
    Out value;
  };

  bool all_can_pop() const {
    return std::apply([](auto*... c) { return (c->can_pop() && ...); }, ins_);
  }

  void record_pop_stalls() {
    std::apply(
        [](auto*... c) {
          ((c->can_pop() ? void() : c->record_pop_stall()), ...);
        },
        ins_);
  }

  bool commit_ready(Cycle now) {
    bool progressed = false;
    while (!inflight_.empty() && inflight_.front().ready <= now) {
      if (!out_.can_push()) {
        out_.record_push_stall();
        break;
      }
      out_.push(std::move(inflight_.front().value));
      inflight_.pop_front();
      progressed = true;
    }
    return progressed;
  }

  std::tuple<Channel<Ins>*...> ins_;
  Channel<Out>& out_;
  std::function<Out(const Ins&...)> kernel_;
  std::deque<InFlight> inflight_;
  Cycle next_issue_ = 0;
};

// ---------------------------------------------------------------------------
// BroadcastStage
// ---------------------------------------------------------------------------

/// Copies each input token to every output stream (HLS stream duplication;
/// a stream has a single consumer, so fan-out requires explicit copies).
/// A token moves only when *all* outputs have space.
template <typename T>
class BroadcastStage final : public StageBase {
 public:
  BroadcastStage(std::string name, Channel<T>& in,
                 std::vector<Channel<T>*> outs, StageTiming timing,
                 std::uint64_t expected, sim::Trace* trace = nullptr)
      : StageBase(std::move(name), timing, expected, trace),
        in_(in),
        outs_(std::move(outs)) {
    CDSFLOW_EXPECT(!outs_.empty(), "BroadcastStage requires outputs");
    for (auto* c : outs_) {
      CDSFLOW_EXPECT(c != nullptr, "BroadcastStage output channel is null");
    }
  }

  bool step(Cycle now) override {
    if (processed_ >= expected_ || now < next_issue_) return false;
    if (!in_.can_pop()) {
      in_.record_pop_stall();
      return false;
    }
    for (auto* c : outs_) {
      if (!c->can_push()) {
        c->record_push_stall();
        return false;
      }
    }
    const T token = in_.pop();
    for (auto* c : outs_) c->push(token);
    const Cycle occupied = std::max<Cycle>(timing_.ii, 1);
    note_issue(now, occupied);
    next_issue_ = now + occupied;
    return true;
  }

  Cycle next_wake(Cycle now) const override {
    if (processed_ >= expected_) return kNoWake;
    if (next_issue_ > now && in_.can_pop()) return next_issue_;
    return kNoWake;
  }

  bool done() const override { return processed_ >= expected_; }

  std::string describe_state() const override {
    return "forwarded " + std::to_string(processed_) + "/" +
           std::to_string(expected_) + ", in='" + in_.name() + "'";
  }

 private:
  Channel<T>& in_;
  std::vector<Channel<T>*> outs_;
  Cycle next_issue_ = 0;
};

}  // namespace cdsflow::hls
