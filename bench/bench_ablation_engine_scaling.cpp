/// \file bench_ablation_engine_scaling.cpp
/// Ablation: engine count 1..6 with the resource-fit gate.
///
/// Extends Table II's 1/2/5 rows to every count and demonstrates the packing
/// limit: the estimator admits five vectorised engines on the U280 and
/// refuses the sixth (the paper: "being able to fit five onto the Alveo
/// U280"). Efficiency decays gently with the shared-DMA arbitration cost.
///
/// Usage: bench_ablation_engine_scaling [n_options]

#include <cstdlib>
#include <iostream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "engines/multi_engine.hpp"
#include "fpga/power.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;

  const auto scenario = workload::paper_scenario(n_options);
  const auto device = fpga::alveo_u280();
  const fpga::FpgaPowerModel power;

  std::cout << "== Ablation: FPGA engine count (fit limit on "
            << device.name << ") ==\n"
            << n_options << " options\n\n";

  report::Table table("Scaling with engine count");
  table.set_columns({"Engines", "Fits?", "Options/s", "Scaling", "Watts",
                     "Opts/Watt"});

  double base_ops = 0.0;
  for (unsigned n = 1; n <= 6; ++n) {
    engine::MultiEngineConfig cfg;
    cfg.n_engines = n;
    cfg.device = device;
    try {
      engine::MultiEngine engine(scenario.interest, scenario.hazard, cfg);
      const auto run = engine.price(scenario.options);
      if (n == 1) base_ops = run.options_per_second;
      table.add_row({std::to_string(n), "yes",
                     with_thousands(run.options_per_second, 2),
                     fixed(run.options_per_second / base_ops, 2) + "x",
                     fixed(power.watts(n), 2),
                     fixed(run.options_per_second / power.watts(n), 2)});
    } catch (const Error& e) {
      table.add_row({std::to_string(n), "NO (rejected)", "-", "-", "-", "-"});
      std::cerr << "  engine count " << n << " rejected: " << e.what()
                << "\n";
    }
  }
  std::cout << table.render_text() << '\n';
  return 0;
}
