// Seeded violation for cdslint's raw-primitives rule: a bare std::mutex
// member instead of the annotated cdsflow::Mutex wrapper, invisible to
// Clang's thread-safety analysis.
namespace fixture {

class BadCache {
 public:
  void put(long value) {
    mu_.lock();
    value_ = value;
    mu_.unlock();
  }

 private:
  std::mutex mu_;  // the seeded violation
  long value_ = 0;
};

}  // namespace fixture
