/// \file legs.hpp
/// The three present-value legs combined into the spread (paper Fig. 1:
/// payment, payoff and accrual terms plus the defaulting probability).
///
/// With discount factor D(t) = exp(-r(t) * t) (r linearly interpolated from
/// the interest curve), survival Q(t) and default-in-period mass
/// dQ_i = Q(t_{i-1}) - Q(t_i), summed over the payment schedule:
///
///   premium leg    sum_i D(t_i) *  Q(t_i) * dt_i      (expected premium
///                                                      payments per unit
///                                                      spread)
///   accrual leg    sum_i D(t_i) * dQ_i * dt_i / 2     (half a period of
///                                                      premium accrues on
///                                                      average before a
///                                                      default is settled)
///   protection leg (1-R) * sum_i D(t_i) * dQ_i        (the payoff the
///                                                      seller owes on
///                                                      default)
///
///   spread_bps = 10^4 * protection / (premium + accrual)
///
/// These per-time-point terms are exactly the tokens the dataflow engines
/// stream; the functions here are the scalar reference the engines are
/// validated against.

#pragma once

#include <vector>

#include "cds/curve.hpp"
#include "cds/schedule.hpp"
#include "cds/types.hpp"

namespace cdsflow::cds {

/// Discount factor D(t) from the interest-rate curve.
double discount_factor(const TermStructure& interest, double t);

/// Per-time-point contributions at one schedule point.
struct LegTerms {
  double premium = 0.0;
  double accrual = 0.0;
  /// Unscaled payoff mass D * dQ (the recovery scaling happens in the
  /// combine step, as in the engine's final stage).
  double payoff = 0.0;
};

/// Terms at time point (t, dt) given the survival at the previous point.
LegTerms leg_terms(const TermStructure& interest, double survival_prev,
                   double survival_now, double t, double dt);

/// Terms from an already-known discount factor -- the single home of the
/// premium/accrual/payoff formulas. leg_terms() wraps it after looking D(t)
/// up from the curve; the batch kernel calls it directly with its
/// precomputed grid values.
LegTerms leg_terms_from_discount(double discount, double survival_prev,
                                 double survival_now, double dt);

/// Whole-leg sums over an option's schedule (in schedule order, matching the
/// engines' accumulation order for the premium/accrual/payoff streams).
PricingBreakdown price_breakdown(const TermStructure& interest,
                                 const TermStructure& hazard,
                                 const CdsOption& option);

/// Same computation with a caller-owned schedule buffer: `scratch` is
/// cleared and refilled, so portfolio loops allocate once instead of once
/// per option.
PricingBreakdown price_breakdown(const TermStructure& interest,
                                 const TermStructure& hazard,
                                 const CdsOption& option,
                                 std::vector<TimePoint>& scratch);

/// Combines leg sums into the spread. Throws when the risky annuity
/// (premium + accrual) is not positive -- an unpriceable contract.
double combine_spread_bps(double premium_leg, double accrual_leg,
                          double payoff_sum, double recovery_rate);

}  // namespace cdsflow::cds
