/// \file test_planner.cpp
/// Unit tests for the probe-calibrated deadline/energy planner: affine
/// cost-model fitting, the setup-heavy misprojection fix, bare-candidate
/// ranking, and the full engine x workers x shard_size runtime plans.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "engines/planner.hpp"
#include "runtime/shard.hpp"
#include "workload/scenario.hpp"

namespace cdsflow::engine {
namespace {

BackendCandidate make_candidate(std::string name, double watts,
                                double options_per_second,
                                double setup_seconds = 0.0) {
  BackendCandidate c;
  c.engine_name = std::move(name);
  c.watts = watts;
  c.options_per_second = options_per_second;
  c.setup_seconds = setup_seconds;
  return c;
}

std::vector<BackendCandidate> synthetic_candidates() {
  return {
      make_candidate("cpu", 60.0, 10'000.0),        // slow, mid power
      make_candidate("multi-1", 35.8, 26'000.0),    // fast-ish, low power
      make_candidate("multi-5", 37.4, 100'000.0),   // fastest, low power
      make_candidate("cpu-mt24", 175.0, 75'000.0),  // fast, high power
  };
}

TEST(Planner, ProjectionsAreArithmeticallyConsistent) {
  const auto c = make_candidate("x", 50.0, 1000.0);
  EXPECT_DOUBLE_EQ(c.seconds_for(5000), 5.0);
  EXPECT_DOUBLE_EQ(c.joules_for(5000), 250.0);
  // The affine model adds the fixed setup exactly once per batch.
  const auto s = make_candidate("y", 50.0, 1000.0, /*setup_seconds=*/2.0);
  EXPECT_DOUBLE_EQ(s.seconds_for(5000), 7.0);
  EXPECT_DOUBLE_EQ(s.joules_for(5000), 350.0);
  EXPECT_DOUBLE_EQ(s.per_option_seconds(), 1e-3);
}

// --- affine cost-model fit --------------------------------------------------

TEST(Planner, FitRecoversAffineModelFromTwoProbes) {
  // True model: 1.5 s setup + 1 ms per option.
  const double setup = 1.5, per_option = 1e-3;
  const auto c = fit_backend_model(
      "cpu-batch", 60.0,
      {{128, setup + 128 * per_option}, {2048, setup + 2048 * per_option}});
  EXPECT_NEAR(c.setup_seconds, setup, 1e-9);
  EXPECT_NEAR(c.options_per_second, 1.0 / per_option, 1e-6);
  ASSERT_EQ(c.probes.size(), 2u);
  EXPECT_NEAR(c.seconds_for(1'000'000), setup + 1e6 * per_option, 1e-6);
}

TEST(Planner, FitWithOneProbeSizeDegradesToLinear) {
  const auto c = fit_backend_model("cpu", 60.0, {{128, 0.128}});
  EXPECT_DOUBLE_EQ(c.setup_seconds, 0.0);
  EXPECT_NEAR(c.options_per_second, 1000.0, 1e-9);
  // Repeated measurements of the same size are pooled, still linear.
  const auto r =
      fit_backend_model("cpu", 60.0, {{128, 0.128}, {128, 0.256}});
  EXPECT_DOUBLE_EQ(r.setup_seconds, 0.0);
  EXPECT_GT(r.options_per_second, 0.0);
}

TEST(Planner, FitFallsBackToLinearOnUnphysicalSlope) {
  // Bigger probe ran relatively faster (noise): slope would be negative.
  const auto c = fit_backend_model("cpu", 60.0, {{128, 0.2}, {2048, 0.1}});
  EXPECT_DOUBLE_EQ(c.setup_seconds, 0.0);
  EXPECT_GT(c.options_per_second, 0.0);
}

TEST(Planner, FitValidationErrors) {
  EXPECT_THROW(fit_backend_model("cpu", 60.0, {}), Error);
  EXPECT_THROW(fit_backend_model("cpu", 60.0, {{0, 0.1}}), Error);
  EXPECT_THROW(fit_backend_model("cpu", 60.0, {{128, 0.0}}), Error);
  EXPECT_THROW(fit_backend_model("cpu", 60.0, {{128, -1.0}}), Error);
}

TEST(Planner, FittedModelFixesSetupHeavyMisprojection) {
  // True costs: the batch kernel pays 2 s of grid setup then prices at
  // 100k options/s; the scalar kernel has no setup but only 1k options/s.
  const double batch_setup = 2.0, batch_per_option = 1e-5;
  const double scalar_per_option = 1e-3;
  const std::uint64_t batch_n = 1'000'000;
  const double true_batch_seconds =
      batch_setup + batch_n * batch_per_option;         // 12 s
  const double true_scalar_seconds = batch_n * scalar_per_option;  // 1000 s
  ASSERT_LT(true_batch_seconds, true_scalar_seconds);

  const auto probe_seconds = [&](std::size_t n, double setup, double per) {
    return setup + n * per;
  };

  // Old planner: one 128-option probe, linear extrapolation. The batch
  // kernel's setup dominates at probe size, so its probe throughput is
  // 128 / 2.00128 ~ 64 options/s and the projection at 1M options is
  // ~15,600 s -- the planner provably picks the scalar kernel, the slower
  // back-end.
  const double batch_probe_ops =
      128.0 / probe_seconds(128, batch_setup, batch_per_option);
  const double scalar_probe_ops =
      128.0 / probe_seconds(128, 0.0, scalar_per_option);
  const auto old_entries = plan_batch(
      {make_candidate("cpu-batch", 60.0, batch_probe_ops),
       make_candidate("cpu", 60.0, scalar_probe_ops)},
      {.n_options = batch_n, .deadline_seconds = 1e9});
  EXPECT_EQ(old_entries.front().candidate.engine_name, "cpu");

  // Fitted planner: the same two back-ends probed at 128 AND 2048 options;
  // the affine fit separates setup from per-option cost and picks the
  // back-end that actually finishes fastest.
  const auto fitted_entries = plan_batch(
      {fit_backend_model(
           "cpu-batch", 60.0,
           {{128, probe_seconds(128, batch_setup, batch_per_option)},
            {2048, probe_seconds(2048, batch_setup, batch_per_option)}}),
       fit_backend_model(
           "cpu", 60.0,
           {{128, probe_seconds(128, 0.0, scalar_per_option)},
            {2048, probe_seconds(2048, 0.0, scalar_per_option)}})},
      {.n_options = batch_n, .deadline_seconds = 1e9});
  EXPECT_EQ(fitted_entries.front().candidate.engine_name, "cpu-batch");
  EXPECT_NEAR(fitted_entries.front().projected_seconds, true_batch_seconds,
              1e-6);
  // The two planners disagree, and the fitted one matches ground truth.
  EXPECT_NE(old_entries.front().candidate.engine_name,
            fitted_entries.front().candidate.engine_name);
}

// --- bare-candidate ranking -------------------------------------------------

TEST(Planner, DeadlineSplitsCandidates) {
  // 1M options in <= 15 s: only multi-5 (10 s) qualifies.
  const auto entries =
      plan_batch(synthetic_candidates(), {.n_options = 1'000'000,
                                          .deadline_seconds = 15.0});
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_TRUE(entries.front().meets_deadline);
  EXPECT_EQ(entries.front().candidate.engine_name, "multi-5");
  EXPECT_FALSE(entries.back().meets_deadline);
}

TEST(Planner, ProjectionExactlyAtDeadlineMeetsIt) {
  // setup 1 s + 1000 options at 1 ms each = 2.0 s, deadline exactly 2.0 s.
  const auto c = make_candidate("cpu", 60.0, 1000.0, /*setup_seconds=*/1.0);
  const auto entries =
      plan_batch({c}, {.n_options = 1000, .deadline_seconds = 2.0});
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_DOUBLE_EQ(entries.front().projected_seconds, 2.0);
  EXPECT_TRUE(entries.front().meets_deadline);
  ASSERT_TRUE(best_plan(entries).has_value());
  // A hair past the deadline misses it.
  const auto late = plan_batch(
      {c}, {.n_options = 1001, .deadline_seconds = 2.0});
  EXPECT_FALSE(late.front().meets_deadline);
}

TEST(Planner, RanksFeasibleByEnergy) {
  // Generous deadline: everything qualifies; the FPGA back-ends win on
  // energy (the paper's Table II conclusion).
  const auto entries =
      plan_batch(synthetic_candidates(), {.n_options = 1'000'000,
                                          .deadline_seconds = 1e6});
  ASSERT_TRUE(entries.front().meets_deadline);
  EXPECT_EQ(entries.front().candidate.engine_name, "multi-5");
  // Energy ordering is non-decreasing within the feasible prefix.
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].meets_deadline) {
      EXPECT_GE(entries[i].projected_joules,
                entries[i - 1].projected_joules);
    }
  }
}

TEST(Planner, InfeasibleEntriesSortedByTime) {
  const auto entries = plan_batch(synthetic_candidates(),
                                  {.n_options = 1'000'000'000,
                                   .deadline_seconds = 1.0});
  for (const auto& e : entries) EXPECT_FALSE(e.meets_deadline);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i].projected_seconds,
              entries[i - 1].projected_seconds);
  }
  EXPECT_FALSE(best_plan(entries).has_value());
}

TEST(Planner, BestPlanPicksFeasibleFront) {
  const auto entries =
      plan_batch(synthetic_candidates(),
                 {.n_options = 100'000, .deadline_seconds = 100.0});
  const auto best = best_plan(entries);
  ASSERT_TRUE(best.has_value());
  EXPECT_TRUE(best->meets_deadline);
  EXPECT_EQ(best->candidate.engine_name, "multi-5");
}

TEST(Planner, ValidationErrors) {
  EXPECT_THROW(plan_batch({}, {.n_options = 1, .deadline_seconds = 1.0}),
               Error);
  EXPECT_THROW(plan_batch(synthetic_candidates(),
                          {.n_options = 0, .deadline_seconds = 1.0}),
               Error);
  EXPECT_THROW(plan_batch(synthetic_candidates(),
                          {.n_options = 1, .deadline_seconds = 0.0}),
               Error);
  EXPECT_THROW(
      plan_batch({make_candidate("broken", 10.0, 0.0)},
                 {.n_options = 1, .deadline_seconds = 1.0}),
      Error);
}

// --- runtime plans (engine x workers x shard_size) --------------------------

TEST(Planner, PlanRuntimeValidationErrors) {
  const auto candidates = synthetic_candidates();
  PlannerConfig config;
  EXPECT_THROW(
      plan_runtime(std::vector<BackendCandidate>{},
                   {.n_options = 1, .deadline_seconds = 1.0}, config),
      Error);
  EXPECT_THROW(plan_runtime(candidates,
                            {.n_options = 0, .deadline_seconds = 1.0},
                            config),
               Error);
  EXPECT_THROW(plan_runtime(candidates,
                            {.n_options = 1, .deadline_seconds = 0.0},
                            config),
               Error);
  EXPECT_THROW(
      plan_runtime({make_candidate("broken", 10.0, 0.0)},
                   {.n_options = 1, .deadline_seconds = 1.0}, config),
      Error);
  config.worker_counts = {0};
  EXPECT_THROW(plan_runtime(candidates,
                            {.n_options = 1, .deadline_seconds = 1.0},
                            config),
               Error);
}

TEST(Planner, PlanRuntimeIsDeterministicForFixedMeasurements) {
  const auto candidates = std::vector<BackendCandidate>{
      make_candidate("cpu", 60.0, 1000.0),
      make_candidate("cpu-batch", 60.0, 100'000.0, /*setup_seconds=*/0.5),
      make_candidate("multi-5", 37.4, 100'000.0),
  };
  PlannerConfig config;
  config.worker_counts = {1, 2, 4};
  const BatchRequirements req{.n_options = 100'000,
                              .deadline_seconds = 30.0};
  const auto a = plan_runtime(candidates, req, config);
  const auto b = plan_runtime(candidates, req, config);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].config.engine, b[i].config.engine);
    EXPECT_EQ(a[i].config.workers, b[i].config.workers);
    EXPECT_EQ(a[i].config.shard_size, b[i].config.shard_size);
    EXPECT_EQ(a[i].n_shards, b[i].n_shards);
    EXPECT_EQ(a[i].projected_seconds, b[i].projected_seconds);
    EXPECT_EQ(a[i].projected_joules, b[i].projected_joules);
    EXPECT_EQ(a[i].meets_deadline, b[i].meets_deadline);
  }
}

TEST(Planner, PlanRuntimeScalesWorkersToMeetDeadline) {
  // One single-threaded candidate at 1000 options/s: 10k options take 10 s
  // on one lane -- only the 4-lane plans fit a 3 s deadline.
  PlannerConfig config;
  config.worker_counts = {1, 2, 4};
  const auto entries = plan_runtime(
      {make_candidate("cpu", config.cpu_power.watts(1), 1000.0)},
      {.n_options = 10'000, .deadline_seconds = 3.0}, config);
  const auto best = best_runtime_plan(entries);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->config.engine, "cpu");
  EXPECT_EQ(best->config.workers, 4u);
  EXPECT_LE(best->projected_seconds, 3.0);
  // Multi-worker CPU plans draw the multi-core power, not the probe watts.
  EXPECT_DOUBLE_EQ(best->watts, config.cpu_power.watts(4));
  // Already-parallel engines never get a worker sweep.
  for (const auto& e : entries) {
    if (e.config.engine != "cpu") {
      EXPECT_EQ(e.config.workers, 1u);
    }
  }
}

TEST(Planner, PlanRuntimeUsesSetupAwareShardSize) {
  // A setup-heavy candidate: 0.5 s per shard of setup. The load-balanced
  // auto shard size (16 shards for 4 workers) would pay 8 s of setup; the
  // planner must offer -- and prefer -- the one-shard-per-lane plan.
  PlannerConfig config;
  config.worker_counts = {4};
  const std::size_t n = 100'000;
  const auto entries = plan_runtime(
      {make_candidate("cpu-batch", 75.0, 100'000.0, /*setup_seconds=*/0.5)},
      {.n_options = n, .deadline_seconds = 1e9}, config);
  ASSERT_FALSE(entries.empty());
  const auto& best = entries.front();
  EXPECT_EQ(best.config.shard_size, (n + 3) / 4);
  EXPECT_EQ(best.n_shards, 4u);
  // setup 0.5 + 25k options at 10 us each = 0.75 s makespan on 4 lanes.
  EXPECT_NEAR(best.projected_seconds, 0.75, 1e-9);
  // The auto-shard plan for the same candidate exists and is worse.
  const std::size_t auto_size = runtime::auto_shard_size(n, 4);
  bool found_auto = false;
  for (const auto& e : entries) {
    if (e.config.shard_size == auto_size) {
      found_auto = true;
      EXPECT_GT(e.projected_seconds, best.projected_seconds);
    }
  }
  EXPECT_TRUE(found_auto);
}

TEST(Planner, BestRuntimePlanEmptyWhenDeadlineUnreachable) {
  PlannerConfig config;
  config.worker_counts = {1};
  const auto entries = plan_runtime(
      {make_candidate("cpu", 60.0, 10.0)},
      {.n_options = 1'000'000, .deadline_seconds = 1.0}, config);
  ASSERT_FALSE(entries.empty());
  EXPECT_FALSE(entries.front().meets_deadline);
  EXPECT_FALSE(best_runtime_plan(entries).has_value());
  EXPECT_FALSE(best_runtime_plan({}).has_value());
}

// --- probing real back-ends -------------------------------------------------

TEST(Planner, EnumerateMeasuresRealBackends) {
  const auto scenario = workload::smoke_scenario(4);
  PlannerConfig config;
  config.probe_sizes = {16, 48};
  config.probe_warmup_runs = 1;
  config.probe_repeats = 2;
  config.cpu_thread_counts = {1};
  config.fpga_engine_counts = {1, 2};
  // Keep the candidate list host-independent (cpu-vec appears only on SIMD
  // hosts; its enumeration is covered by tests/test_vector_kernel.cpp).
  config.probe_cpu_vec = false;
  const auto candidates =
      enumerate_backends(scenario.interest, scenario.hazard, config);
  // cpu, cpu-batch, multi-1, multi-2.
  ASSERT_EQ(candidates.size(), 4u);
  EXPECT_EQ(candidates[0].engine_name, "cpu");
  EXPECT_EQ(candidates[1].engine_name, "cpu-batch");
  for (const auto& c : candidates) {
    EXPECT_GT(c.options_per_second, 0.0) << c.engine_name;
    EXPECT_GE(c.setup_seconds, 0.0) << c.engine_name;
    EXPECT_GT(c.watts, 0.0);
    // Both probe sizes recorded, in ascending size order.
    ASSERT_EQ(c.probes.size(), 2u) << c.engine_name;
    EXPECT_EQ(c.probes[0].n_options, 16u);
    EXPECT_EQ(c.probes[1].n_options, 48u);
    EXPECT_GT(c.probes[0].seconds, 0.0);
    EXPECT_GT(c.probes[1].seconds, 0.0);
  }
  // The batch kernel shares the scalar kernel's power model.
  EXPECT_DOUBLE_EQ(candidates[1].watts, candidates[0].watts);
  // multi-2 should out-run multi-1 on the same probes.
  EXPECT_GT(candidates[3].options_per_second,
            candidates[2].options_per_second);
}

TEST(Planner, EnumerateCanSkipCpuBatch) {
  const auto scenario = workload::smoke_scenario(4);
  PlannerConfig config;
  config.probe_sizes = {16};
  config.cpu_thread_counts = {1};
  config.fpga_engine_counts = {1};
  config.probe_cpu_batch = false;
  config.probe_cpu_vec = false;
  const auto candidates =
      enumerate_backends(scenario.interest, scenario.hazard, config);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].engine_name, "cpu");
  EXPECT_EQ(candidates[1].engine_name, "multi-1");
}

TEST(Planner, EnumerateRiskModeProbesRiskEnginesOnly) {
  const auto scenario = workload::smoke_scenario(4);
  PlannerConfig config;
  config.probe_sizes = {16};
  config.cpu_thread_counts = {1};
  config.risk_mode = true;
  config.probe_cpu_vec = false;  // host-independent candidate list
  const auto candidates =
      enumerate_backends(scenario.interest, scenario.hazard, config);
  // Risk planning: cpu-risk + cpu-batch-risk, no simulated candidates
  // (they only price).
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].engine_name, "cpu-risk");
  EXPECT_EQ(candidates[1].engine_name, "cpu-batch-risk");
}

TEST(Planner, EnumerateSweepModeProbesSweepCandidatesOnly) {
  const auto scenario = workload::smoke_scenario(4);
  PlannerConfig config;
  config.probe_sizes = {16, 48};  // scenario counts, not option counts
  config.probe_warmup_runs = 1;
  config.probe_repeats = 1;
  config.cpu_thread_counts = {1, 2};
  config.sweep_mode = true;
  config.sweep_probe_options = 32;
  const auto candidates =
      enumerate_backends(scenario.interest, scenario.hazard, config);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].engine_name, "cpu-sweep");
  EXPECT_EQ(candidates[1].engine_name, "cpu-sweep-mt2");
  for (const auto& c : candidates) {
    EXPECT_GT(c.options_per_second, 0.0) << c.engine_name;  // scenarios/s
    EXPECT_GE(c.setup_seconds, 0.0) << c.engine_name;
    ASSERT_EQ(c.probes.size(), 2u) << c.engine_name;
    EXPECT_EQ(c.probes[0].n_options, 16u);  // n axis = scenario count
    EXPECT_EQ(c.probes[1].n_options, 48u);
    EXPECT_GT(c.probes[0].seconds, 0.0);
  }
}

TEST(Planner, PlanRuntimeExpandsSweepCandidatesUnchanged) {
  // "cpu-sweep" parses as a single-threaded CPU family name, so the
  // standard plan_runtime expansion sweeps workers x shard_size over the
  // scenario axis with zero sweep-specific planning logic.
  const std::vector<BackendCandidate> candidates = {
      make_candidate("cpu-sweep", 60.0, 50'000.0, 1e-3)};
  BatchRequirements req;
  req.n_options = 100'000;  // scenarios, in sweep mode
  req.deadline_seconds = 10.0;
  PlannerConfig config;
  config.sweep_mode = true;
  config.worker_counts = {1, 4};
  const auto entries = plan_runtime(candidates, req, config);
  ASSERT_FALSE(entries.empty());
  bool saw_multi_worker = false;
  for (const auto& e : entries) {
    EXPECT_EQ(e.config.engine, "cpu-sweep");
    saw_multi_worker = saw_multi_worker || e.config.workers == 4;
  }
  EXPECT_TRUE(saw_multi_worker);
  const auto best = best_runtime_plan(entries);
  ASSERT_TRUE(best.has_value());
  EXPECT_TRUE(best->meets_deadline);
}

TEST(Planner, EnumerateRejectsTinyProbe) {
  const auto scenario = workload::smoke_scenario(4);
  PlannerConfig config;
  config.probe_sizes = {2};
  EXPECT_THROW(
      enumerate_backends(scenario.interest, scenario.hazard, config), Error);
  config.probe_sizes = {};
  EXPECT_THROW(
      enumerate_backends(scenario.interest, scenario.hazard, config), Error);
}

}  // namespace
}  // namespace cdsflow::engine
