/// \file feed.hpp
/// Deterministic synthetic quote-feed generation for the streaming runtime.
///
/// The paper's future-work scenario is an AAT-style real-time feed: quote
/// requests (and, for the risk workflow, hazard-quote updates) arrive
/// continuously instead of as a pre-materialised book. This generator draws
/// such a feed from a seeded stream, bit-reproducibly (common/rng.hpp):
/// option events use the portfolio generator's option mix, every Nth event
/// is optionally a hazard-quote update (one curve knot nudged by a bounded
/// relative move), and arrival offsets are exponential inter-arrival gaps at
/// the requested mean rate (a Poisson feed) -- or all zero for an unpaced
/// ("as fast as possible") feed that measures saturation throughput.

#pragma once

#include <cstdint>
#include <vector>

#include "cds/curve.hpp"
#include "cds/types.hpp"
#include "workload/options.hpp"

namespace cdsflow::workload {

struct QuoteFeedSpec {
  /// Total feed events (option quotes + hazard-quote updates).
  std::size_t events = 16384;
  /// Mean arrival rate in events/second; 0 makes every offset 0 (unpaced).
  double rate_hz = 0.0;
  /// Every Nth event (1-based) is a hazard-quote update; 0 disables updates.
  /// Must not be 1 (an all-update feed prices nothing).
  std::size_t hazard_update_every = 0;
  /// Relative size of a hazard-quote move: the new rate is the knot's
  /// original rate scaled by a uniform draw from [1-s, 1+s]. Must lie in
  /// [0, 1) so rates stay positive.
  double hazard_update_scale = 0.05;
  /// Option mix for the quote events (count is derived from `events`, the
  /// spec's own count is ignored).
  PortfolioSpec book;
  std::uint64_t seed = 42;
  /// Tenant stream selector: feeds drawn from the same `seed` but distinct
  /// `tenant` values are independent streams (distinct split-tree branches
  /// of the seed's root Rng -- see make_quote_feed). Deriving per-tenant
  /// seeds by arithmetic on `seed` instead (seed + t, seed ^ t, ...) is NOT
  /// safe: Rng's constructor expands the seed through a splitmix64 chain,
  /// so nearby seeds share most of their expanded state words and the
  /// resulting books/arrivals are visibly correlated. 0 (the default)
  /// reproduces the pre-tenant feeds bit-for-bit.
  std::uint32_t tenant = 0;

  void validate() const;
};

/// One pre-materialised feed element.
struct QuoteFeedEvent {
  enum class Kind { kOption, kHazardQuote };
  Kind kind = Kind::kOption;
  /// Arrival offset from feed start, seconds (non-decreasing; 0 when
  /// unpaced).
  double offset_seconds = 0.0;
  /// kOption payload (ids run 0..n_options-1 in feed order).
  cds::CdsOption option{};
  /// kHazardQuote payload: knot index into `hazard` and its new rate.
  std::size_t knot = 0;
  double rate = 0.0;
};

/// Draws the feed. `hazard` is the curve the updates move (knot indices and
/// baseline rates are taken from it; it must satisfy the TermStructure
/// invariants).
std::vector<QuoteFeedEvent> make_quote_feed(const QuoteFeedSpec& spec,
                                            const cds::TermStructure& hazard);

}  // namespace cdsflow::workload
