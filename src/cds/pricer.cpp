#include "cds/pricer.hpp"

#include "common/error.hpp"

namespace cdsflow::cds {

ReferencePricer::ReferencePricer(TermStructure interest, TermStructure hazard)
    : interest_(std::move(interest)), hazard_(std::move(hazard)) {
  interest_.validate();
  hazard_.validate();
}

double ReferencePricer::spread_bps(const CdsOption& option) const {
  return breakdown(option).spread_bps;
}

double ReferencePricer::spread_bps(const CdsOption& option,
                                   std::vector<TimePoint>& scratch) const {
  return price_breakdown(interest_, hazard_, option, scratch).spread_bps;
}

PricingBreakdown ReferencePricer::breakdown(const CdsOption& option) const {
  return price_breakdown(interest_, hazard_, option);
}

std::vector<SpreadResult> ReferencePricer::price(
    const std::vector<CdsOption>& options) const {
  std::vector<SpreadResult> results;
  results.reserve(options.size());
  std::vector<TimePoint> scratch;  // one schedule buffer for the whole book
  for (const CdsOption& option : options) {
    results.push_back({option.id, spread_bps(option, scratch)});
  }
  return results;
}

}  // namespace cdsflow::cds
