/// \file test_hls_memory_dataflow.cpp
/// Unit tests for the memory-port model and the region runner policies.

#include <gtest/gtest.h>

#include "hls/dataflow.hpp"
#include "hls/memory.hpp"

namespace cdsflow::hls {
namespace {

// --- MemoryPortModel -----------------------------------------------------------

TEST(MemoryPortModel, BytesPerBeatFromWidth) {
  MemoryPortModel port;  // 512-bit default
  EXPECT_EQ(port.bytes_per_beat(), 64u);
  MemoryPortModel narrow({.data_width_bits = 64});
  EXPECT_EQ(narrow.bytes_per_beat(), 8u);
}

TEST(MemoryPortModel, TransferCyclesSingleBurst) {
  MemoryPortModel port({.data_width_bits = 512,
                        .burst_latency = 60,
                        .max_burst_beats = 64});
  // 1 KiB = 16 beats -> one burst: 60 + 16.
  EXPECT_EQ(port.transfer_cycles(1024), 76u);
  EXPECT_EQ(port.transfer_cycles(0), 0u);
}

TEST(MemoryPortModel, TransferCyclesMultiBurst) {
  MemoryPortModel port({.data_width_bits = 512,
                        .burst_latency = 60,
                        .max_burst_beats = 64});
  // 8 KiB = 128 beats -> two bursts: 2*60 + 128.
  EXPECT_EQ(port.transfer_cycles(8192), 248u);
}

TEST(MemoryPortModel, PartialBeatRoundsUp) {
  MemoryPortModel port;
  // 65 bytes needs 2 beats.
  EXPECT_EQ(port.transfer_cycles(65) - port.transfer_cycles(64), 1u);
}

TEST(MemoryPortModel, PacingCycles) {
  MemoryPortModel port;
  EXPECT_EQ(port.pacing_cycles(24), 1u);    // sub-beat token
  EXPECT_EQ(port.pacing_cycles(64), 1u);
  EXPECT_EQ(port.pacing_cycles(65), 2u);
  EXPECT_EQ(port.pacing_cycles(0), 1u);     // still one cycle minimum
}

TEST(MemoryPortModel, RejectsInvalidConfig) {
  EXPECT_THROW(MemoryPortModel({.data_width_bits = 0}), Error);
  EXPECT_THROW(MemoryPortModel({.data_width_bits = 12}), Error);
  EXPECT_THROW(MemoryPortModel({.data_width_bits = 512,
                                .burst_latency = 1,
                                .max_burst_beats = 0}),
               Error);
}

// --- RegionRunner -----------------------------------------------------------------

TEST(RegionRunner, FreeRunningInvokesOnce) {
  RegionRunner runner(ExecutionPolicy::kFreeRunning,
                      {.restart_cycles = 1000, .initial_start_cycles = 50});
  int calls = 0;
  const auto r = runner.run(1, [&](std::uint64_t) {
    ++calls;
    return sim::Cycle{400};
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(r.invocations, 1u);
  EXPECT_EQ(r.total_cycles, 450u);  // initial start + body, no restarts
}

TEST(RegionRunner, FreeRunningRejectsMultipleItems) {
  RegionRunner runner(ExecutionPolicy::kFreeRunning, {});
  EXPECT_THROW(runner.run(3, [](std::uint64_t) { return sim::Cycle{1}; }),
               Error);
}

TEST(RegionRunner, RestartPerOptionChargesRestarts) {
  RegionRunner runner(ExecutionPolicy::kRestartPerOption,
                      {.restart_cycles = 100, .initial_start_cycles = 10});
  const auto r = runner.run(4, [](std::uint64_t i) {
    return sim::Cycle{1000 + i};  // slightly different spans
  });
  EXPECT_EQ(r.invocations, 4u);
  // 10 + (1000+1001+1002+1003) + 3*100.
  EXPECT_EQ(r.total_cycles, 10u + 4006u + 300u);
}

TEST(RegionRunner, SequentialLoopsSameAccountingAsRestart) {
  const RegionOverheads oh{.restart_cycles = 7, .initial_start_cycles = 3};
  RegionRunner a(ExecutionPolicy::kRestartPerOption, oh);
  RegionRunner b(ExecutionPolicy::kSequentialLoops, oh);
  auto body = [](std::uint64_t) { return sim::Cycle{50}; };
  EXPECT_EQ(a.run(5, body).total_cycles, b.run(5, body).total_cycles);
}

TEST(RegionRunner, PolicyNames) {
  EXPECT_STREQ(to_string(ExecutionPolicy::kSequentialLoops),
               "sequential-loops");
  EXPECT_STREQ(to_string(ExecutionPolicy::kRestartPerOption),
               "restart-per-option");
  EXPECT_STREQ(to_string(ExecutionPolicy::kFreeRunning), "free-running");
}

TEST(RegionRunner, RequiresBuilder) {
  RegionRunner runner(ExecutionPolicy::kFreeRunning, {});
  EXPECT_THROW(runner.run(1, nullptr), Error);
}

}  // namespace
}  // namespace cdsflow::hls
