/// \file batch_pricer.hpp
/// Batched structure-of-arrays fast-path pricing kernel for the CPU.
///
/// The host-side scalar path re-derives everything per option: an O(knots)
/// hazard scan plus an exp per schedule point, an O(knots) interpolation
/// scan plus an exp per schedule point, and a heap-allocated schedule per
/// option. That is exactly the redundant recomputation the paper strips out
/// of the FPGA kernel by restructuring it as dataflow (Sec. III); this
/// kernel performs the same restructuring for the CPU path the sharded
/// runtime's workers execute:
///
///   1. *Schedule dedup.* Options sharing (maturity, frequency) share one
///      payment grid; a standard-tenor book of 16k options collapses to a
///      handful of grids. Grids live in one flat arena (no per-option
///      allocation).
///   2. *Curve-grid precompute.* Once per (interest, hazard) pair and unique
///      grid, the kernel tabulates the discount factor D(t_i), survival
///      Q(t_i) and default mass dq_i on that grid -- hazard integration via
///      O(log) prefix sums (integrated_hazard_prefix), interpolation via
///      O(log) binary search (interpolate_fast) -- and reduces the three leg
///      sums in the reference accumulation order.
///   3. *Per-option combine.* Pricing an option is then a branch-free
///      multiply-divide against its grid's reduced sums: no exp, no curve
///      scan, no allocation in the inner loop.
///
/// Numerics: every intermediate is computed with the same association order
/// as the scalar reference (`price_breakdown`), so spreads agree with
/// ReferencePricer bit-for-bit under default compilation (and to well below
/// 1e-9 relative under any IEEE-conforming contraction). The HLS-mirroring
/// fixed-bound scans stay untouched for the simulated engines -- they model
/// what the hardware pays; this kernel is what the host should pay.

#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "cds/curve.hpp"
#include "cds/hazard.hpp"
#include "cds/schedule.hpp"
#include "cds/types.hpp"

namespace cdsflow::cds {

namespace detail {

/// Dedup key: the exact bit patterns of (maturity, frequency). Near-equal
/// doubles hash to distinct grids, which costs a redundant grid but never
/// correctness.
struct ScheduleKey {
  std::uint64_t maturity_bits = 0;
  std::uint64_t frequency_bits = 0;
  friend bool operator==(const ScheduleKey&, const ScheduleKey&) = default;
};

struct ScheduleKeyHash {
  std::size_t operator()(const ScheduleKey& key) const noexcept {
    // splitmix64-style finaliser over the combined words.
    std::uint64_t x =
        key.maturity_bits ^ (key.frequency_bits * 0x9E3779B97F4A7C15ULL);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace detail

/// What one batch cost and how much work dedup removed.
struct BatchStats {
  std::size_t options = 0;
  /// Distinct (maturity, frequency) grids the batch collapsed to.
  std::size_t unique_schedules = 0;
  /// Schedule points actually materialised and walked (sum over grids).
  std::size_t grid_points = 0;
  /// Schedule points the scalar path would have walked (sum over options);
  /// grid_points / scalar_points is the dedup factor.
  std::size_t scalar_points = 0;
};

class BatchPricer {
 public:
  /// Reusable scratch for price(): flat SoA arrays plus the dedup map. All
  /// memory is retained between calls, so a warmed workspace makes a batch
  /// allocation-free. One workspace per concurrent caller.
  struct Workspace {
    // Per option, in batch order.
    std::vector<std::uint32_t> grid_of;
    // Per unique grid.
    std::vector<double> grid_maturity;
    std::vector<double> grid_frequency;
    std::vector<double> grid_annuity;  ///< premium + accrual leg sums
    std::vector<double> grid_payoff;   ///< unscaled payoff sum
    std::vector<std::size_t> grid_offset;
    // Flat arena over all unique grids. The three tabulated curves are not
    // read by the spread combine (its reductions fold them immediately);
    // they are the per-grid intermediates a risk pass differentiates --
    // CS01/JTD are one more reduction over these arrays (see the ROADMAP
    // batch-kernel-Greeks item) -- and the parity tests check them against
    // the reference curve math directly.
    std::vector<TimePoint> points;
    std::vector<double> discount;  ///< D(t_i)
    std::vector<double> survival;  ///< Q(t_i)
    std::vector<double> default_mass;  ///< dq_i = Q(t_{i-1}) - Q(t_i)
    std::unordered_map<detail::ScheduleKey, std::uint32_t,
                       detail::ScheduleKeyHash>
        dedup;

    void clear();
  };

  /// Both curves are copied and the hazard prefix table is built once; the
  /// pricer is immutable afterwards (safe to share across threads, each
  /// thread bringing its own Workspace).
  BatchPricer(TermStructure interest, TermStructure hazard);

  const TermStructure& interest() const { return interest_; }
  const TermStructure& hazard() const { return hazard_; }
  const HazardPrefix& hazard_prefix() const { return hazard_prefix_; }

  /// Prices options[i] into out[i] (ids preserved, batch order). `out` must
  /// have the same length as `options`. Throws cdsflow::Error on invalid
  /// options or an unpriceable grid (non-positive risky annuity), exactly
  /// like the scalar reference.
  BatchStats price(std::span<const CdsOption> options,
                   std::span<SpreadResult> out, Workspace& workspace) const;

  /// Convenience overload that owns its workspace and result vector.
  std::vector<SpreadResult> price(const std::vector<CdsOption>& options) const;

 private:
  TermStructure interest_;
  TermStructure hazard_;
  HazardPrefix hazard_prefix_;
};

}  // namespace cdsflow::cds
