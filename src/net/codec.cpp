#include "net/codec.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/error.hpp"

namespace cdsflow::net {
namespace {

// Wire row sizes (see the layout table in codec.hpp).
constexpr std::size_t kQuotePayloadBytes = 12;
constexpr std::size_t kOptionRowBytes = 28;
constexpr std::size_t kPriceRowBytes = 12;
constexpr std::size_t kRiskRowBytes = 44;
constexpr std::size_t kResultPreambleBytes = 8;
constexpr std::size_t kRejectPreambleBytes = 4;
constexpr std::size_t kNodeInfoPreambleBytes = 32;
constexpr std::size_t kShardPricePreambleBytes = 8;
constexpr std::size_t kShardResultPreambleBytes = 16;

// All wire integers are little-endian regardless of host order; doubles
// travel as their IEEE-754 bit pattern in a little-endian u64.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t{p[i]} << (8 * i);
  }
  return v;
}

std::int32_t get_i32(const std::uint8_t* p) {
  return static_cast<std::int32_t>(get_u32(p));
}

double get_f64(const std::uint8_t* p) {
  return std::bit_cast<double>(get_u64(p));
}

void put_header(std::vector<std::uint8_t>& out, FrameType type,
                std::uint32_t tenant, std::uint32_t request,
                std::uint32_t payload_bytes) {
  put_u32(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u16(out, 0);  // reserved flags
  put_u32(out, tenant);
  put_u32(out, request);
  put_u32(out, payload_bytes);
}

}  // namespace

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kQuoteUpdate:
      return "quote-update";
    case FrameType::kPriceRequest:
      return "price-request";
    case FrameType::kRiskRequest:
      return "risk-request";
    case FrameType::kResult:
      return "result";
    case FrameType::kReject:
      return "reject";
    case FrameType::kNodeProbe:
      return "node-probe";
    case FrameType::kShardPrice:
      return "shard-price";
    case FrameType::kShardResult:
      return "shard-result";
  }
  return "unknown";
}

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kMalformed:
      return "malformed";
    case RejectReason::kOverload:
      return "overload";
    case RejectReason::kUnknownTenant:
      return "unknown-tenant";
    case RejectReason::kWrongMode:
      return "wrong-mode";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_quote_update(std::uint32_t tenant,
                                              std::uint32_t knot,
                                              double rate) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + kQuotePayloadBytes);
  put_header(out, FrameType::kQuoteUpdate, tenant, 0,
             kQuotePayloadBytes);
  put_u32(out, knot);
  put_f64(out, rate);
  return out;
}

std::vector<std::uint8_t> encode_price_request(
    std::uint32_t tenant, std::uint32_t request,
    const std::vector<cds::CdsOption>& options, bool risk) {
  CDSFLOW_EXPECT(!options.empty(), "price request needs at least one option");
  CDSFLOW_EXPECT(options.size() <= kMaxOptionsPerRequest,
                 "price request exceeds kMaxOptionsPerRequest");
  const std::size_t payload = 4 + kOptionRowBytes * options.size();
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload);
  put_header(out, risk ? FrameType::kRiskRequest : FrameType::kPriceRequest,
             tenant, request, static_cast<std::uint32_t>(payload));
  put_u32(out, static_cast<std::uint32_t>(options.size()));
  for (const auto& o : options) {
    put_i32(out, o.id);
    put_f64(out, o.maturity_years);
    put_f64(out, o.payment_frequency);
    put_f64(out, o.recovery_rate);
  }
  return out;
}

std::vector<std::uint8_t> encode_result(
    std::uint32_t tenant, std::uint32_t request, std::uint8_t status,
    const std::vector<cds::SpreadResult>& results,
    const std::vector<cds::Sensitivities>& greeks) {
  const bool risk = !greeks.empty();
  CDSFLOW_EXPECT(results.size() <= kMaxOptionsPerRequest,
                 "result exceeds kMaxOptionsPerRequest");
  CDSFLOW_EXPECT(!risk || greeks.size() == results.size(),
                 "risk result needs one Sensitivities row per result");
  const std::size_t row = risk ? kRiskRowBytes : kPriceRowBytes;
  const std::size_t payload = kResultPreambleBytes + row * results.size();
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload);
  put_header(out, FrameType::kResult, tenant, request,
             static_cast<std::uint32_t>(payload));
  out.push_back(status);
  out.push_back(risk ? 1 : 0);
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(results.size()));
  for (std::size_t i = 0; i < results.size(); ++i) {
    put_i32(out, results[i].id);
    put_f64(out, results[i].spread_bps);
    if (risk) {
      put_f64(out, greeks[i].cs01);
      put_f64(out, greeks[i].ir01);
      put_f64(out, greeks[i].rec01);
      put_f64(out, greeks[i].jtd);
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_reject(std::uint32_t tenant,
                                        std::uint32_t request,
                                        RejectReason reason,
                                        const std::string& detail) {
  CDSFLOW_EXPECT(detail.size() <= kMaxRejectDetailBytes,
                 "reject detail exceeds kMaxRejectDetailBytes");
  const std::size_t payload = kRejectPreambleBytes + detail.size();
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload);
  put_header(out, FrameType::kReject, tenant, request,
             static_cast<std::uint32_t>(payload));
  out.push_back(static_cast<std::uint8_t>(reason));
  out.push_back(0);  // reserved
  put_u16(out, static_cast<std::uint16_t>(detail.size()));
  out.insert(out.end(), detail.begin(), detail.end());
  return out;
}

std::vector<std::uint8_t> encode_node_probe(std::uint32_t request) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes);
  put_header(out, FrameType::kNodeProbe, /*tenant=*/0, request,
             /*payload_bytes=*/0);
  return out;
}

std::vector<std::uint8_t> encode_node_info(std::uint32_t request,
                                           std::uint32_t lanes,
                                           double options_per_second,
                                           double setup_seconds, double watts,
                                           const std::string& engine_name) {
  CDSFLOW_EXPECT(lanes > 0, "node info needs at least one lane");
  CDSFLOW_EXPECT(!engine_name.empty(), "node info needs an engine name");
  CDSFLOW_EXPECT(engine_name.size() <= kMaxEngineNameBytes,
                 "engine name exceeds kMaxEngineNameBytes");
  const std::size_t payload = kNodeInfoPreambleBytes + engine_name.size();
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload);
  put_header(out, FrameType::kNodeProbe, /*tenant=*/0, request,
             static_cast<std::uint32_t>(payload));
  put_u32(out, lanes);
  put_f64(out, options_per_second);
  put_f64(out, setup_seconds);
  put_f64(out, watts);
  put_u16(out, static_cast<std::uint16_t>(engine_name.size()));
  put_u16(out, 0);  // reserved
  out.insert(out.end(), engine_name.begin(), engine_name.end());
  return out;
}

std::vector<std::uint8_t> encode_shard_price(
    std::uint32_t shard, const std::vector<cds::CdsOption>& options,
    bool risk) {
  CDSFLOW_EXPECT(!options.empty(), "shard price needs at least one option");
  CDSFLOW_EXPECT(options.size() <= kMaxOptionsPerRequest,
                 "shard price exceeds kMaxOptionsPerRequest");
  const std::size_t payload =
      kShardPricePreambleBytes + kOptionRowBytes * options.size();
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload);
  put_header(out, FrameType::kShardPrice, /*tenant=*/0, shard,
             static_cast<std::uint32_t>(payload));
  out.push_back(risk ? 1 : 0);
  out.push_back(0);  // reserved
  put_u16(out, 0);   // reserved
  put_u32(out, static_cast<std::uint32_t>(options.size()));
  for (const auto& o : options) {
    put_i32(out, o.id);
    put_f64(out, o.maturity_years);
    put_f64(out, o.payment_frequency);
    put_f64(out, o.recovery_rate);
  }
  return out;
}

std::vector<std::uint8_t> encode_shard_result(
    std::uint32_t shard, double engine_seconds,
    const std::vector<cds::SpreadResult>& results,
    const std::vector<cds::Sensitivities>& greeks) {
  const bool risk = !greeks.empty();
  CDSFLOW_EXPECT(!results.empty(), "shard result needs at least one row");
  CDSFLOW_EXPECT(results.size() <= kMaxOptionsPerRequest,
                 "shard result exceeds kMaxOptionsPerRequest");
  CDSFLOW_EXPECT(!risk || greeks.size() == results.size(),
                 "risk shard result needs one Sensitivities row per result");
  const std::size_t row = risk ? kRiskRowBytes : kPriceRowBytes;
  const std::size_t payload = kShardResultPreambleBytes + row * results.size();
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload);
  put_header(out, FrameType::kShardResult, /*tenant=*/0, shard,
             static_cast<std::uint32_t>(payload));
  out.push_back(0);  // status: shard results are unconditional
  out.push_back(risk ? 1 : 0);
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(results.size()));
  put_f64(out, engine_seconds);
  for (std::size_t i = 0; i < results.size(); ++i) {
    put_i32(out, results[i].id);
    put_f64(out, results[i].spread_bps);
    if (risk) {
      put_f64(out, greeks[i].cs01);
      put_f64(out, greeks[i].ir01);
      put_f64(out, greeks[i].rec01);
      put_f64(out, greeks[i].jtd);
    }
  }
  return out;
}

std::size_t shard_price_frame_bytes(std::size_t n_options) {
  return kHeaderBytes + kShardPricePreambleBytes + kOptionRowBytes * n_options;
}

std::size_t shard_result_frame_bytes(std::size_t n_options, bool risk) {
  return kHeaderBytes + kShardResultPreambleBytes +
         (risk ? kRiskRowBytes : kPriceRowBytes) * n_options;
}

void FrameReader::poison(std::string why) {
  failed_ = true;
  error_ = std::move(why);
  buffer_.clear();
}

bool FrameReader::require_payload_at_least(std::size_t payload_bytes,
                                           std::size_t need,
                                           const char* frame_name) {
  if (payload_bytes >= need) {
    return true;
  }
  poison(std::string(frame_name) + " payload shorter than its fixed fields (" +
         std::to_string(payload_bytes) + " < " + std::to_string(need) +
         " bytes)");
  return false;
}

bool FrameReader::require_payload_exact(std::size_t payload_bytes,
                                        std::size_t want, const char* what) {
  if (payload_bytes == want) {
    return true;
  }
  poison(std::string(what) + " (payload is " + std::to_string(payload_bytes) +
         " bytes, layout needs " + std::to_string(want) + ")");
  return false;
}

bool FrameReader::require_count_between(std::uint64_t count, std::uint64_t min,
                                        std::uint64_t max, const char* what) {
  if (count >= min && count <= max) {
    return true;
  }
  poison(std::string(what) + " " + std::to_string(count) + " outside [" +
         std::to_string(min) + ", " + std::to_string(max) + "]");
  return false;
}

bool FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  if (failed_) {
    return false;
  }
  buffer_.insert(buffer_.end(), data, data + n);

  // Decode every complete frame sitting in the buffer. Validation is
  // progressive: each header field is checked as soon as its bytes arrive,
  // so a stream that can no longer begin a valid frame poisons immediately
  // -- a peer pushing garbage and then waiting would otherwise never
  // complete a header and never learn it is being rejected. An absurd
  // payload_bytes is likewise caught before it can force buffering.
  while (!failed_) {
    const std::uint8_t* h = buffer_.data();
    const std::size_t have = buffer_.size();
    static constexpr std::uint8_t kMagicBytes[4] = {
        static_cast<std::uint8_t>(kWireMagic),
        static_cast<std::uint8_t>(kWireMagic >> 8),
        static_cast<std::uint8_t>(kWireMagic >> 16),
        static_cast<std::uint8_t>(kWireMagic >> 24)};
    for (std::size_t i = 0; i < std::min<std::size_t>(have, 4); ++i) {
      if (h[i] != kMagicBytes[i]) {
        poison("bad magic");
        break;
      }
    }
    if (failed_) {
      break;
    }
    if (have >= 5 && h[4] != kWireVersion) {
      poison("unsupported wire version " + std::to_string(int{h[4]}));
      break;
    }
    if (have >= 6) {
      const std::uint8_t raw = h[5];
      if (raw < static_cast<std::uint8_t>(FrameType::kQuoteUpdate) ||
          raw > static_cast<std::uint8_t>(FrameType::kShardResult)) {
        poison("unknown frame type " + std::to_string(int{raw}));
        break;
      }
    }
    if (have >= 8 && get_u16(h + 6) != 0) {
      poison("reserved header flags set");
      break;
    }
    if (have < kHeaderBytes) {
      break;
    }
    const std::uint8_t raw_type = h[5];
    const std::uint32_t payload_bytes = get_u32(h + 16);
    if (payload_bytes > kMaxPayloadBytes) {
      poison("payload length " + std::to_string(payload_bytes) +
             " exceeds kMaxPayloadBytes");
      break;
    }
    if (buffer_.size() < kHeaderBytes + payload_bytes) {
      break;  // wait for more bytes
    }

    Frame frame;
    frame.type = static_cast<FrameType>(raw_type);
    frame.tenant = get_u32(h + 8);
    frame.request = get_u32(h + 12);
    if (raw_type >= static_cast<std::uint8_t>(FrameType::kNodeProbe) &&
        frame.tenant != 0) {
      poison("cluster frame carries a tenant id");
      break;
    }
    const std::uint8_t* p = h + kHeaderBytes;

    switch (frame.type) {
      case FrameType::kQuoteUpdate: {
        if (!require_payload_exact(payload_bytes, kQuotePayloadBytes,
                                   "quote-update payload must be 12 bytes")) {
          break;
        }
        frame.knot = get_u32(p);
        frame.rate = get_f64(p + 4);
        break;
      }
      case FrameType::kPriceRequest:
      case FrameType::kRiskRequest: {
        if (!require_payload_at_least(payload_bytes, 4, "request")) {
          break;
        }
        const std::uint32_t count = get_u32(p);
        if (!require_count_between(count, 1, kMaxOptionsPerRequest,
                                   "request option count")) {
          break;
        }
        if (!require_payload_exact(
                payload_bytes, 4 + kOptionRowBytes * count,
                "request payload length does not match its option count")) {
          break;
        }
        frame.options.resize(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint8_t* row = p + 4 + kOptionRowBytes * i;
          frame.options[i].id = get_i32(row);
          frame.options[i].maturity_years = get_f64(row + 4);
          frame.options[i].payment_frequency = get_f64(row + 12);
          frame.options[i].recovery_rate = get_f64(row + 20);
        }
        break;
      }
      case FrameType::kResult: {
        if (!require_payload_at_least(payload_bytes, kResultPreambleBytes,
                                      "result")) {
          break;
        }
        frame.status = p[0];
        if (frame.status != kResultOnTime && frame.status != kResultDeferred) {
          poison("unknown result status byte");
          break;
        }
        if (p[1] > 1) {
          poison("unknown result kind byte");
          break;
        }
        frame.risk = p[1] == 1;
        if (get_u16(p + 2) != 0) {
          poison("reserved result bytes set");
          break;
        }
        const std::uint32_t count = get_u32(p + 4);
        if (!require_count_between(count, 0, kMaxOptionsPerRequest,
                                   "result row count")) {
          break;
        }
        const std::size_t row = frame.risk ? kRiskRowBytes : kPriceRowBytes;
        if (!require_payload_exact(
                payload_bytes, kResultPreambleBytes + row * count,
                "result payload length does not match its row count")) {
          break;
        }
        frame.results.resize(count);
        if (frame.risk) {
          frame.greeks.resize(count);
        }
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint8_t* r = p + kResultPreambleBytes + row * i;
          frame.results[i].id = get_i32(r);
          frame.results[i].spread_bps = get_f64(r + 4);
          if (frame.risk) {
            frame.greeks[i].spread_bps = frame.results[i].spread_bps;
            frame.greeks[i].cs01 = get_f64(r + 12);
            frame.greeks[i].ir01 = get_f64(r + 20);
            frame.greeks[i].rec01 = get_f64(r + 28);
            frame.greeks[i].jtd = get_f64(r + 36);
          }
        }
        break;
      }
      case FrameType::kReject: {
        if (!require_payload_at_least(payload_bytes, kRejectPreambleBytes,
                                      "reject")) {
          break;
        }
        const std::uint8_t raw_reason = p[0];
        if (raw_reason < static_cast<std::uint8_t>(RejectReason::kMalformed) ||
            raw_reason > static_cast<std::uint8_t>(RejectReason::kWrongMode)) {
          poison("unknown reject reason " + std::to_string(int{raw_reason}));
          break;
        }
        frame.reason = static_cast<RejectReason>(raw_reason);
        if (p[1] != 0) {
          poison("reserved reject byte set");
          break;
        }
        const std::uint16_t detail_len = get_u16(p + 2);
        if (!require_count_between(detail_len, 0, kMaxRejectDetailBytes,
                                   "reject detail length")) {
          break;
        }
        if (!require_payload_exact(
                payload_bytes, kRejectPreambleBytes + detail_len,
                "reject payload length does not match its detail length")) {
          break;
        }
        frame.detail.assign(reinterpret_cast<const char*>(p + 4), detail_len);
        break;
      }
      case FrameType::kNodeProbe: {
        if (payload_bytes == 0) {
          break;  // a probe request carries no payload
        }
        if (!require_payload_at_least(payload_bytes, kNodeInfoPreambleBytes,
                                      "node-info")) {
          break;
        }
        frame.probe_reply = true;
        frame.lanes = get_u32(p);
        if (frame.lanes == 0) {
          poison("node info reports zero lanes");
          break;
        }
        frame.ops_per_second = get_f64(p + 4);
        frame.setup_seconds = get_f64(p + 12);
        frame.watts = get_f64(p + 20);
        const std::uint16_t name_len = get_u16(p + 28);
        if (!require_count_between(name_len, 1, kMaxEngineNameBytes,
                                   "node-info engine name length")) {
          break;
        }
        if (get_u16(p + 30) != 0) {
          poison("reserved node-info bytes set");
          break;
        }
        if (!require_payload_exact(
                payload_bytes, kNodeInfoPreambleBytes + name_len,
                "node-info payload length does not match its name length")) {
          break;
        }
        frame.engine.assign(reinterpret_cast<const char*>(p + 32), name_len);
        break;
      }
      case FrameType::kShardPrice: {
        if (!require_payload_at_least(payload_bytes, kShardPricePreambleBytes,
                                      "shard-price")) {
          break;
        }
        if (p[0] > 1) {
          poison("unknown shard-price kind byte");
          break;
        }
        frame.risk = p[0] == 1;
        if (p[1] != 0 || get_u16(p + 2) != 0) {
          poison("reserved shard-price bytes set");
          break;
        }
        const std::uint32_t count = get_u32(p + 4);
        if (!require_count_between(count, 1, kMaxOptionsPerRequest,
                                   "shard option count")) {
          break;
        }
        if (!require_payload_exact(
                payload_bytes, kShardPricePreambleBytes + kOptionRowBytes * count,
                "shard-price payload length does not match its option count")) {
          break;
        }
        frame.options.resize(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint8_t* row =
              p + kShardPricePreambleBytes + kOptionRowBytes * i;
          frame.options[i].id = get_i32(row);
          frame.options[i].maturity_years = get_f64(row + 4);
          frame.options[i].payment_frequency = get_f64(row + 12);
          frame.options[i].recovery_rate = get_f64(row + 20);
        }
        break;
      }
      case FrameType::kShardResult: {
        if (!require_payload_at_least(payload_bytes, kShardResultPreambleBytes,
                                      "shard-result")) {
          break;
        }
        if (p[0] != 0) {
          poison("unknown shard-result status byte");
          break;
        }
        if (p[1] > 1) {
          poison("unknown shard-result kind byte");
          break;
        }
        frame.risk = p[1] == 1;
        if (get_u16(p + 2) != 0) {
          poison("reserved shard-result bytes set");
          break;
        }
        const std::uint32_t count = get_u32(p + 4);
        if (!require_count_between(count, 1, kMaxOptionsPerRequest,
                                   "shard-result row count")) {
          break;
        }
        frame.engine_seconds = get_f64(p + 8);
        const std::size_t row = frame.risk ? kRiskRowBytes : kPriceRowBytes;
        if (!require_payload_exact(
                payload_bytes, kShardResultPreambleBytes + row * count,
                "shard-result payload length does not match its row count")) {
          break;
        }
        frame.results.resize(count);
        if (frame.risk) {
          frame.greeks.resize(count);
        }
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint8_t* r = p + kShardResultPreambleBytes + row * i;
          frame.results[i].id = get_i32(r);
          frame.results[i].spread_bps = get_f64(r + 4);
          if (frame.risk) {
            frame.greeks[i].spread_bps = frame.results[i].spread_bps;
            frame.greeks[i].cs01 = get_f64(r + 12);
            frame.greeks[i].ir01 = get_f64(r + 20);
            frame.greeks[i].rec01 = get_f64(r + 28);
            frame.greeks[i].jtd = get_f64(r + 36);
          }
        }
        break;
      }
    }
    if (failed_) {
      break;
    }

    ready_.push_back(std::move(frame));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(
                                        kHeaderBytes + payload_bytes));
  }
  return !failed_;
}

std::optional<Frame> FrameReader::next() {
  if (ready_next_ >= ready_.size()) {
    ready_.clear();
    ready_next_ = 0;
    return std::nullopt;
  }
  Frame frame = std::move(ready_[ready_next_]);
  ++ready_next_;
  return frame;
}

}  // namespace cdsflow::net
