/// \file planner.hpp
/// Deadline-aware back-end selection for overnight batches.
///
/// The paper's motivation (Sec. I): banks batch-process financial models
/// "for instance overnight, which must still occur within specific time
/// constraints". Given a book size, a deadline, and the available back-ends
/// (CPU threads, 1..max FPGA engines), the planner measures or models each
/// candidate's throughput, discards those that miss the deadline, and ranks
/// the rest by energy (power model x runtime) -- the decision a capacity
/// planner actually makes with Table II in hand.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cds/curve.hpp"
#include "fpga/power.hpp"
#include "fpga/resource.hpp"

namespace cdsflow::engine {

/// One candidate execution configuration.
struct BackendCandidate {
  /// Engine registry name ("cpu-mt8", "multi-3", ...).
  std::string engine_name;
  /// Modelled electrical power while running.
  double watts = 0.0;
  /// Measured/modelled throughput on the probe workload.
  double options_per_second = 0.0;

  double seconds_for(std::uint64_t n_options) const {
    return static_cast<double>(n_options) / options_per_second;
  }
  double joules_for(std::uint64_t n_options) const {
    return watts * seconds_for(n_options);
  }
};

/// A candidate judged against the batch requirements.
struct PlanEntry {
  BackendCandidate candidate;
  double projected_seconds = 0.0;
  double projected_joules = 0.0;
  bool meets_deadline = false;
};

struct BatchRequirements {
  std::uint64_t n_options = 0;
  double deadline_seconds = 0.0;
};

struct PlannerConfig {
  /// Probe workload size used to measure candidate throughput.
  std::size_t probe_options = 128;
  /// CPU thread counts to consider (empty: 1 and hardware_concurrency).
  std::vector<unsigned> cpu_thread_counts;
  /// Also probe the batched SoA fast-path CPU kernel ("cpu-batch[-mtN]") at
  /// every CPU thread count. Same power model as the scalar kernel -- the
  /// fast path wins on energy purely by finishing sooner.
  bool probe_cpu_batch = true;
  /// FPGA engine counts to consider (empty: 1..max that fit the device).
  std::vector<unsigned> fpga_engine_counts;
  /// Device for the fit check and the FPGA count default.
  fpga::DeviceSpec device;
  fpga::FpgaPowerModel fpga_power;
  fpga::CpuPowerModel cpu_power;

  PlannerConfig();
};

/// Measures every candidate back-end on a probe workload drawn from the
/// given curves.
std::vector<BackendCandidate> enumerate_backends(
    const cds::TermStructure& interest, const cds::TermStructure& hazard,
    const PlannerConfig& config = {});

/// Projects each candidate against the requirements and returns the entries
/// sorted: deadline-meeting entries first (by energy ascending), then the
/// rest (by time ascending).
std::vector<PlanEntry> plan_batch(const std::vector<BackendCandidate>& candidates,
                                  const BatchRequirements& requirements);

/// The cheapest candidate that meets the deadline, if any.
std::optional<PlanEntry> best_plan(const std::vector<PlanEntry>& entries);

}  // namespace cdsflow::engine
