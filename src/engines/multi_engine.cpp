#include "engines/multi_engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "engines/interoption_engine.hpp"
#include "engines/vectorised_engine.hpp"

namespace cdsflow::engine {

MultiEngine::MultiEngine(cds::TermStructure interest,
                         cds::TermStructure hazard, MultiEngineConfig config)
    : interest_(std::move(interest)),
      hazard_(std::move(hazard)),
      config_(std::move(config)) {
  interest_.validate();
  hazard_.validate();
  CDSFLOW_EXPECT(config_.n_engines >= 1, "need at least one engine");
  if (config_.device.has_value()) {
    const fpga::ResourceEstimator estimator(*config_.device);
    CDSFLOW_EXPECT(
        estimator.fits(shape(), config_.n_engines),
        std::to_string(config_.n_engines) + " engines do not fit on " +
            config_.device->name +
            " (max " +
            std::to_string(estimator.max_engines(shape())) + ")");
  }
}

fpga::EngineShape MultiEngine::shape() const {
  fpga::EngineShape s;
  const unsigned lanes =
      config_.vectorised ? config_.engine.vector_lanes : 1;
  s.hazard_lanes = lanes;
  s.interpolation_lanes = lanes;
  s.accumulation_lanes = config_.engine.cost.listing1_lanes;
  s.curve_points = static_cast<unsigned>(interest_.size());
  s.dataflow_plumbing = true;
  return s;
}

std::string MultiEngine::name() const {
  return "multi-" + std::to_string(config_.n_engines);
}

std::string MultiEngine::description() const {
  return std::to_string(config_.n_engines) + " " +
         (config_.vectorised ? std::string("vectorised")
                             : std::string("free-running")) +
         " engine(s), options split in chunks";
}

PricingRun MultiEngine::price(const std::vector<cds::CdsOption>& options) {
  CDSFLOW_EXPECT(!options.empty(), "price() requires options");
  const unsigned n = config_.n_engines;
  const std::size_t count = options.size();
  CDSFLOW_EXPECT(count >= n,
                 "fewer options than engines; reduce engine count");

  PricingRun run;
  run.results.reserve(count);

  // Contiguous chunks, remainder spread over the first engines.
  const std::size_t base = count / n;
  const std::size_t extra = count % n;

  // Sub-engines account kernel cycles only; the batch-level transfers and
  // arbitration are charged once below.
  FpgaEngineConfig sub_cfg = config_.engine;
  sub_cfg.include_transfer = false;
  sub_cfg.trace = nullptr;

  sim::Cycle max_cycles = 0;
  std::size_t begin = 0;
  for (unsigned e = 0; e < n; ++e) {
    const std::size_t len = base + (e < extra ? 1 : 0);
    const std::vector<cds::CdsOption> chunk(
        options.begin() + static_cast<std::ptrdiff_t>(begin),
        options.begin() + static_cast<std::ptrdiff_t>(begin + len));
    begin += len;

    PricingRun chunk_run;
    if (config_.vectorised) {
      VectorisedEngine engine(interest_, hazard_, sub_cfg);
      chunk_run = engine.price(chunk);
    } else {
      InterOptionEngine engine(interest_, hazard_, sub_cfg);
      chunk_run = engine.price(chunk);
    }
    max_cycles = std::max(max_cycles, chunk_run.kernel_cycles);
    run.results.insert(run.results.end(), chunk_run.results.begin(),
                       chunk_run.results.end());
  }
  CDSFLOW_ASSERT(run.results.size() == count,
                 "multi-engine chunks must cover every option exactly once");

  run.kernel_cycles = max_cycles;
  run.invocations = n;
  run.kernel_seconds =
      static_cast<double>(max_cycles) / config_.engine.clock_hz();
  const fpga::Interconnect pcie(config_.engine.interconnect);
  if (config_.engine.include_transfer) {
    run.transfer_seconds =
        pcie.transfer_seconds(batch_traffic(interest_.size(), count).total());
  }
  run.transfer_seconds += pcie.arbitration_seconds(count, n);
  run.finalise(count);
  return run;
}

}  // namespace cdsflow::engine
