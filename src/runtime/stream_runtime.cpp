#include "runtime/stream_runtime.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "engines/registry.hpp"
#include "runtime/shard.hpp"

namespace cdsflow::runtime {

namespace stream_detail {

void BatchCollector::put(BatchResult result) {
  MutexLock lock(mutex_);
  results_.push_back(std::move(result));
}

std::vector<BatchResult> BatchCollector::take() {
  MutexLock lock(mutex_);
  std::sort(results_.begin(), results_.end(),
            [](const BatchResult& a, const BatchResult& b) {
              return a.index < b.index;
            });
  for (std::size_t i = 0; i < results_.size(); ++i) {
    CDSFLOW_ASSERT(results_[i].index == i,
                   "micro-batch merge lost or duplicated a batch");
  }
  return std::move(results_);
}

std::vector<BatchResult> BatchCollector::peek_ready(std::size_t begin) const {
  MutexLock lock(mutex_);
  // results_ is small and unsorted (lanes complete out of order); walk the
  // contiguous index run from `begin` with a linear probe per step.
  std::vector<BatchResult> ready;
  for (std::size_t want = begin;; ++want) {
    const auto it =
        std::find_if(results_.begin(), results_.end(),
                     [want](const BatchResult& r) { return r.index == want; });
    if (it == results_.end()) break;
    ready.push_back(*it);
  }
  return ready;
}

std::size_t BatchCollector::count() const {
  MutexLock lock(mutex_);
  return results_.size();
}

}  // namespace stream_detail

namespace {

std::chrono::nanoseconds us_to_duration(std::uint64_t us) {
  return std::chrono::nanoseconds(us * 1000);
}

}  // namespace

StreamRuntime::StreamRuntime(cds::TermStructure interest,
                             cds::TermStructure hazard, StreamConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity, config_.policy) {
  CDSFLOW_EXPECT(config_.max_batch > 0, "max_batch must be positive");

  // The engine name reuses the registry's CPU grammar: "-risk" switches the
  // micro-batches to Greeks, "-mt[N]" is an alternate way to set the lanes.
  engine::CpuEngineConfig cpu;
  CDSFLOW_EXPECT(engine::parse_cpu_engine_name(config_.engine, cpu),
                 "stream runtime needs a CPU-family engine name "
                 "(cpu[-batch|-vec][-risk][-mt[N]]); simulated engines price "
                 "through the batch runtime");
  pricer_config_.risk_mode = cpu.risk_mode;
  pricer_config_.risk_bump = config_.risk_bump;
  pricer_config_.ladder_edges = config_.ladder_edges;
  if (cpu.vector_kernel) {
    pricer_config_.kernel_level = cds::simd::active_level();
  }

  unsigned lanes = config_.lanes;
  if (lanes == 0 && config_.engine.find("-mt") != std::string::npos) {
    // Keyed on the token, not the parsed thread count, so an explicit
    // "-mt1" really means one lane ("cpu" with no token also parses to
    // threads == 1 but should default to all cores below).
    lanes = cpu.threads;  // "-mt" leaves 0 = all cores, "-mtN" sets N
  }
  if (lanes == 0) lanes = std::max(1u, std::thread::hardware_concurrency());
  lanes_ = lanes;

  pricers_.reserve(lanes_);
  for (unsigned i = 0; i < lanes_; ++i) {
    pricers_.push_back(std::make_unique<cds::StreamPricer>(interest, hazard,
                                                           pricer_config_));
  }
  replicas_ = std::make_unique<ReplicaPool>(lanes_);
  pool_ = std::make_unique<ThreadPool>(lanes_);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

StreamRuntime::~StreamRuntime() {
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_->stop();
}

bool StreamRuntime::push(const cds::CdsOption& option) {
  return queue_.push(option_event(option));
}

bool StreamRuntime::push_hazard_quote(std::size_t knot, double rate) {
  return queue_.push(hazard_quote_event(knot, rate));
}

void StreamRuntime::close() { queue_.close(); }

std::size_t StreamRuntime::ladder_buckets() const {
  return pricers_.front()->ladder_buckets();
}

std::string StreamRuntime::worker_description() const {
  std::string desc = "streaming grid pricer (persistent batched kernel";
  if (pricer_config_.risk_mode) {
    desc += ", risk mode";
    const std::size_t buckets = pricers_.front()->ladder_buckets();
    if (buckets > 0) {
      desc += ", " + std::to_string(buckets) + "-bucket ladder";
    }
  }
  return desc + ")";
}

void StreamRuntime::submit_batch(std::vector<QuoteEvent> events) {
  if (events.empty()) return;
  const std::size_t index = next_batch_index_++;
  // shared_ptr because ThreadPool tasks are std::function (copyable).
  auto batch = std::make_shared<std::vector<QuoteEvent>>(std::move(events));
  in_flight_.push_back(pool_->submit([this, index, batch] {
    const ReplicaPool::Lease lane(*replicas_);
    cds::StreamPricer& pricer = *pricers_[lane.index()];
    const std::size_t n = batch->size();

    stream_detail::BatchResult out;
    out.index = index;
    out.lane = static_cast<unsigned>(lane.index());
    std::vector<cds::CdsOption> options;
    options.reserve(n);
    for (const QuoteEvent& event : *batch) options.push_back(event.option);
    out.results.resize(n);

    const auto t0 = StreamClock::now();
    if (pricer.risk_mode()) {
      out.sensitivities.resize(n);
      out.cs01_ladder.resize(n * pricer.ladder_buckets());
      pricer.price_with_sensitivities(options, out.results, out.sensitivities,
                                      out.cs01_ladder);
    } else {
      pricer.price(options, out.results);
    }
    const auto t1 = StreamClock::now();

    out.pricing_seconds = std::chrono::duration<double>(t1 - t0).count();
    out.done = t1;
    out.latency_seconds.reserve(n);
    for (const QuoteEvent& event : *batch) {
      out.latency_seconds.push_back(
          std::chrono::duration<double>(t1 - event.ingest).count());
    }
    collector_.put(std::move(out));
  }));
}

void StreamRuntime::barrier() {
  for (auto& f : in_flight_) f.get();  // rethrows the first batch failure
  in_flight_.clear();
}

void StreamRuntime::dispatch_loop() {
  try {
    MicroBatcher batcher(config_.max_batch,
                         us_to_duration(config_.max_wait_us));
    for (;;) {
      std::optional<QuoteEvent> event;
      if (batcher.open()) {
        event = queue_.pop_for(batcher.time_until_due(StreamClock::now()));
      } else {
        event = queue_.pop();  // parked until an event arrives or we drain
      }
      if (event) {
        if (!first_ingest_set_) {
          first_ingest_ = event->ingest;
          first_ingest_set_ = true;
        }
        if (event->kind == QuoteEvent::Kind::kHazardQuote) {
          // A quote update is an ordering point: everything ingested before
          // it prices on the old curve, everything after on the new one.
          // Flush, drain the in-flight batches, then move every lane
          // replica -- each re-tabulating only its affected grids.
          if (batcher.open()) submit_batch(batcher.take());
          barrier();
          for (auto& pricer : pricers_) {
            pricer->update_hazard_quote(event->knot, event->rate);
          }
          ++hazard_updates_;
        } else if (batcher.add(std::move(*event))) {
          submit_batch(batcher.take());
        }
        continue;
      }
      // Timed out or drained: flush an overdue partial batch either way.
      if (batcher.due(StreamClock::now())) submit_batch(batcher.take());
      if (queue_.drained()) {
        if (batcher.open()) submit_batch(batcher.take());
        break;
      }
    }
    barrier();
  } catch (...) {
    failure_ = std::current_exception();
    // Release parked producers and let every in-flight batch retire before
    // the dispatcher exits (their tasks reference runtime state).
    queue_.close();
    for (auto& f : in_flight_) {
      if (f.valid()) f.wait();
    }
    in_flight_.clear();
  }
}

StreamReport StreamRuntime::finish() {
  CDSFLOW_EXPECT(!finished_, "StreamRuntime::finish() may be called once");
  finished_ = true;
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_->stop();
  if (failure_) std::rethrow_exception(failure_);

  StreamReport report;
  report.lanes = lanes_;
  report.hazard_updates = hazard_updates_;
  const IngestQueueStats qstats = queue_.stats();
  report.events_in = qstats.accepted;
  report.events_dropped = qstats.dropped_oldest;
  report.blocked_pushes = qstats.blocked_pushes;
  report.queue_high_water = qstats.high_water;
  for (const auto& pricer : pricers_) {
    report.grids_retabulated += pricer->stats().grids_retabulated;
    report.full_rebuild_grids += pricer->stats().full_rebuild_grids;
  }

  auto batches = collector_.take();
  const double deadline_seconds =
      static_cast<double>(config_.deadline_us) * 1e-6;
  std::vector<double> pricing_seconds;
  std::vector<double> latencies;
  pricing_seconds.reserve(batches.size());
  StreamClock::time_point last_done = first_ingest_;
  for (auto& batch : batches) {
    report.run.results.insert(report.run.results.end(), batch.results.begin(),
                              batch.results.end());
    if (!batch.sensitivities.empty()) {
      report.run.sensitivities.insert(report.run.sensitivities.end(),
                                      batch.sensitivities.begin(),
                                      batch.sensitivities.end());
      report.run.ladder_buckets = ladder_buckets();
      report.run.cs01_ladder.insert(report.run.cs01_ladder.end(),
                                    batch.cs01_ladder.begin(),
                                    batch.cs01_ladder.end());
    }
    StreamBatchOutcome outcome;
    outcome.index = batch.index;
    outcome.events = batch.results.size();
    outcome.lane = batch.lane;
    outcome.pricing_seconds = batch.pricing_seconds;
    for (const double latency : batch.latency_seconds) {
      outcome.max_latency_seconds =
          std::max(outcome.max_latency_seconds, latency);
      if (config_.deadline_us > 0 && latency > deadline_seconds) {
        ++outcome.deadline_misses;
      }
    }
    report.deadline_misses += outcome.deadline_misses;
    latencies.insert(latencies.end(), batch.latency_seconds.begin(),
                     batch.latency_seconds.end());
    pricing_seconds.push_back(batch.pricing_seconds);
    last_done = std::max(last_done, batch.done);
    report.batches.push_back(outcome);

    report.run.kernel_seconds += batch.pricing_seconds;
    report.run.invocations += 1;
  }
  report.events_priced = report.run.results.size();

  if (!latencies.empty()) {
    report.max_latency_seconds =
        *std::max_element(latencies.begin(), latencies.end());
    report.p50_latency_seconds = percentile(latencies, 50.0);
    report.p99_latency_seconds = percentile(std::move(latencies), 99.0);
  }

  report.modelled_seconds =
      pricing_seconds.empty()
          ? 0.0
          : list_schedule_makespan(pricing_seconds, lanes_);
  report.run.total_seconds = report.modelled_seconds;
  if (report.modelled_seconds > 0.0) {
    report.modelled_events_per_second =
        static_cast<double>(report.events_priced) / report.modelled_seconds;
    report.run.options_per_second = report.modelled_events_per_second;
  }
  if (first_ingest_set_) {
    report.wall_seconds =
        std::chrono::duration<double>(last_done - first_ingest_).count();
  }
  if (report.wall_seconds > 0.0) {
    report.wall_events_per_second =
        static_cast<double>(report.events_priced) / report.wall_seconds;
    report.batches_per_second =
        static_cast<double>(report.batches.size()) / report.wall_seconds;
  }
  return report;
}

std::vector<stream_detail::BatchResult> StreamRuntime::poll_batches() {
  auto ready = collector_.peek_ready(next_polled_batch_);
  next_polled_batch_ += ready.size();
  return ready;
}

StreamReport StreamRuntime::play(
    const std::vector<workload::QuoteFeedEvent>& feed) {
  const auto t0 = StreamClock::now();
  for (const auto& event : feed) {
    if (event.offset_seconds > 0.0) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<StreamClock::duration>(
                   std::chrono::duration<double>(event.offset_seconds)));
    }
    if (event.kind == workload::QuoteFeedEvent::Kind::kHazardQuote) {
      push_hazard_quote(event.knot, event.rate);
    } else {
      push(event.option);
    }
  }
  return finish();
}

}  // namespace cdsflow::runtime
