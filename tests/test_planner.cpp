/// \file test_planner.cpp
/// Unit tests for the deadline-aware batch planner.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "engines/planner.hpp"
#include "workload/scenario.hpp"

namespace cdsflow::engine {
namespace {

std::vector<BackendCandidate> synthetic_candidates() {
  return {
      {"cpu", 60.0, 10'000.0},       // slow, mid power
      {"multi-1", 35.8, 26'000.0},   // fast-ish, low power
      {"multi-5", 37.4, 100'000.0},  // fastest, low power
      {"cpu-mt24", 175.0, 75'000.0}, // fast, high power
  };
}

TEST(Planner, ProjectionsAreArithmeticallyConsistent) {
  const BackendCandidate c{"x", 50.0, 1000.0};
  EXPECT_DOUBLE_EQ(c.seconds_for(5000), 5.0);
  EXPECT_DOUBLE_EQ(c.joules_for(5000), 250.0);
}

TEST(Planner, DeadlineSplitsCandidates) {
  // 1M options in <= 15 s: only multi-5 (10 s) qualifies.
  const auto entries =
      plan_batch(synthetic_candidates(), {.n_options = 1'000'000,
                                          .deadline_seconds = 15.0});
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_TRUE(entries.front().meets_deadline);
  EXPECT_EQ(entries.front().candidate.engine_name, "multi-5");
  EXPECT_FALSE(entries.back().meets_deadline);
}

TEST(Planner, RanksFeasibleByEnergy) {
  // Generous deadline: everything qualifies; the FPGA back-ends win on
  // energy (the paper's Table II conclusion).
  const auto entries =
      plan_batch(synthetic_candidates(), {.n_options = 1'000'000,
                                          .deadline_seconds = 1e6});
  ASSERT_TRUE(entries.front().meets_deadline);
  EXPECT_EQ(entries.front().candidate.engine_name, "multi-5");
  // Energy ordering is non-decreasing within the feasible prefix.
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].meets_deadline) {
      EXPECT_GE(entries[i].projected_joules,
                entries[i - 1].projected_joules);
    }
  }
}

TEST(Planner, InfeasibleEntriesSortedByTime) {
  const auto entries = plan_batch(synthetic_candidates(),
                                  {.n_options = 1'000'000'000,
                                   .deadline_seconds = 1.0});
  for (const auto& e : entries) EXPECT_FALSE(e.meets_deadline);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i].projected_seconds,
              entries[i - 1].projected_seconds);
  }
  EXPECT_FALSE(best_plan(entries).has_value());
}

TEST(Planner, BestPlanPicksFeasibleFront) {
  const auto entries =
      plan_batch(synthetic_candidates(),
                 {.n_options = 100'000, .deadline_seconds = 100.0});
  const auto best = best_plan(entries);
  ASSERT_TRUE(best.has_value());
  EXPECT_TRUE(best->meets_deadline);
  EXPECT_EQ(best->candidate.engine_name, "multi-5");
}

TEST(Planner, ValidationErrors) {
  EXPECT_THROW(plan_batch({}, {.n_options = 1, .deadline_seconds = 1.0}),
               Error);
  EXPECT_THROW(plan_batch(synthetic_candidates(),
                          {.n_options = 0, .deadline_seconds = 1.0}),
               Error);
  EXPECT_THROW(plan_batch(synthetic_candidates(),
                          {.n_options = 1, .deadline_seconds = 0.0}),
               Error);
  EXPECT_THROW(
      plan_batch({{"broken", 10.0, 0.0}},
                 {.n_options = 1, .deadline_seconds = 1.0}),
      Error);
}

TEST(Planner, EnumerateMeasuresRealBackends) {
  const auto scenario = workload::smoke_scenario(4);
  PlannerConfig config;
  config.probe_options = 16;
  config.cpu_thread_counts = {1};
  config.fpga_engine_counts = {1, 2};
  const auto candidates =
      enumerate_backends(scenario.interest, scenario.hazard, config);
  // cpu, cpu-batch, multi-1, multi-2.
  ASSERT_EQ(candidates.size(), 4u);
  EXPECT_EQ(candidates[0].engine_name, "cpu");
  EXPECT_EQ(candidates[1].engine_name, "cpu-batch");
  for (const auto& c : candidates) {
    EXPECT_GT(c.options_per_second, 0.0) << c.engine_name;
    EXPECT_GT(c.watts, 0.0);
  }
  // The batch kernel shares the scalar kernel's power model.
  EXPECT_DOUBLE_EQ(candidates[1].watts, candidates[0].watts);
  // multi-2 should out-run multi-1 on the same probe.
  EXPECT_GT(candidates[3].options_per_second,
            candidates[2].options_per_second);
}

TEST(Planner, EnumerateCanSkipCpuBatch) {
  const auto scenario = workload::smoke_scenario(4);
  PlannerConfig config;
  config.probe_options = 16;
  config.cpu_thread_counts = {1};
  config.fpga_engine_counts = {1};
  config.probe_cpu_batch = false;
  const auto candidates =
      enumerate_backends(scenario.interest, scenario.hazard, config);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].engine_name, "cpu");
  EXPECT_EQ(candidates[1].engine_name, "multi-1");
}

TEST(Planner, EnumerateRejectsTinyProbe) {
  const auto scenario = workload::smoke_scenario(4);
  PlannerConfig config;
  config.probe_options = 2;
  EXPECT_THROW(
      enumerate_backends(scenario.interest, scenario.hazard, config), Error);
}

}  // namespace
}  // namespace cdsflow::engine
