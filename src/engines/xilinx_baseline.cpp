#include "engines/xilinx_baseline.hpp"

#include "cds/legs.hpp"
#include "cds/pricer.hpp"
#include "cds/schedule.hpp"
#include "common/error.hpp"
#include "hls/dataflow.hpp"

namespace cdsflow::engine {

XilinxBaselineEngine::XilinxBaselineEngine(cds::TermStructure interest,
                                           cds::TermStructure hazard,
                                           FpgaEngineConfig config)
    : interest_(std::move(interest)),
      hazard_(std::move(hazard)),
      config_(config) {
  interest_.validate();
  hazard_.validate();
}

std::vector<XilinxBaselineEngine::StageSpan>
XilinxBaselineEngine::option_stage_spans(const cds::CdsOption& option) const {
  const auto& cost = config_.cost;
  const auto schedule = cds::make_schedule(option);
  const auto T = static_cast<sim::Cycle>(schedule.size());
  const auto R = static_cast<sim::Cycle>(interest_.size());
  const sim::Cycle lo = cost.loop_overhead_cycles;

  // Hazard scans: for every time point the library re-accumulates the
  // constant data up to t at II=7 (the paper's central bottleneck).
  sim::Cycle hazard_scan = 0;
  for (const auto& tp : schedule) {
    const auto len =
        static_cast<sim::Cycle>(hazard_.count_at_or_before(tp.t)) + 1;
    hazard_scan += len * cost.baseline_accumulation_ii + cost.dexp_latency;
  }

  std::vector<StageSpan> spans;
  spans.push_back({"load_option", 10});
  spans.push_back({"time_points", lo + T + 4});
  spans.push_back({"default_probability", lo + hazard_scan});
  // Payment and payoff loops each re-interpolate the discount rate with a
  // full bracket scan per time point (the dataflow rewrite computes the
  // discount once and streams it).
  const sim::Cycle interp_pass =
      lo + T * (R * cost.interpolation_scan_ii + cost.ddiv_latency +
                cost.dexp_latency + 2 * cost.dmul_latency);
  spans.push_back({"payment_pv", interp_pass});
  spans.push_back({"payoff_pv", interp_pass});
  spans.push_back({"accrual", lo + T + 2 * cost.dmul_latency});
  // Four accumulation loops (premium, accrual, payoff, plus the combined
  // bookkeeping pass), each with the II=7 carried add.
  spans.push_back(
      {"accumulate", 4 * (lo + T * cost.baseline_accumulation_ii +
                          cost.dadd_latency)});
  spans.push_back({"combine_spread",
                   cost.ddiv_latency + 2 * cost.dmul_latency + 10});
  return spans;
}

PricingRun XilinxBaselineEngine::price(
    const std::vector<cds::CdsOption>& options) {
  CDSFLOW_EXPECT(!options.empty(), "price() requires options");
  PricingRun run;
  run.results.reserve(options.size());

  const cds::ReferencePricer pricer(interest_, hazard_);

  // Trace tracks (shared across options so the Fig. 1 bench can show several
  // options back to back).
  std::vector<std::size_t> tracks;
  if (config_.trace != nullptr) {
    for (const auto& span : option_stage_spans(options.front())) {
      tracks.push_back(config_.trace->add_track(span.stage));
    }
  }

  const hls::RegionRunner runner(
      hls::ExecutionPolicy::kSequentialLoops,
      {config_.cost.region_restart_cycles,
       config_.cost.region_initial_start_cycles});

  sim::Cycle trace_clock = 0;
  const auto region = runner.run(options.size(), [&](std::uint64_t i) {
    const auto& option = options[i];
    // Values: identical operations and order as the golden model.
    run.results.push_back({option.id, pricer.spread_bps(option)});
    // Cycles: sum of the sequential loop spans.
    sim::Cycle total = 0;
    const auto spans = option_stage_spans(option);
    for (std::size_t s = 0; s < spans.size(); ++s) {
      if (config_.trace != nullptr) {
        config_.trace->record(tracks[s], trace_clock + total,
                              trace_clock + total + spans[s].cycles);
      }
      total += spans[s].cycles;
    }
    trace_clock += total + config_.cost.region_restart_cycles;
    return total;
  });

  run.kernel_cycles = region.total_cycles;
  run.invocations = region.invocations;
  run.kernel_seconds =
      static_cast<double>(run.kernel_cycles) / config_.clock_hz();
  if (config_.include_transfer) {
    const fpga::Interconnect pcie(config_.interconnect);
    const BatchTraffic traffic =
        batch_traffic(interest_.size(), options.size());
    run.transfer_seconds = pcie.transfer_seconds(traffic.total());
  }
  run.finalise(options.size());
  return run;
}

}  // namespace cdsflow::engine
