/// \file test_hls_stages.cpp
/// Unit tests for the HLS stage primitives: issue pacing (II), latency
/// accounting, dynamic work, pipeline depth, back-pressure, expand/reduce
/// group semantics, zip lockstep, broadcast all-or-nothing -- each checked
/// against closed-form cycle counts.

#include <gtest/gtest.h>

#include <numeric>

#include "hls/stage.hpp"
#include "hls/stream.hpp"
#include "sim/simulation.hpp"

namespace cdsflow::hls {
namespace {

using sim::Simulation;

std::vector<int> iota_tokens(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

struct Harness {
  Simulation sim;
};

// --- SourceStage --------------------------------------------------------------

TEST(SourceStage, PacesEmissionByII) {
  Simulation sim;
  auto& out = make_stream<int>(sim, "out", 16);
  sim.add_process<SourceStage<int>>("src", out, iota_tokens(5),
                                    StageTiming{.latency = 1, .ii = 2});
  auto& sink = sim.add_process<SinkStage<int>>(
      "sink", out, 5, StageTiming{.latency = 1, .ii = 1});
  const auto r = sim.run();
  // Emissions at cycles 0,2,4,6,8.
  EXPECT_EQ(r.end_cycle, 8u);
  EXPECT_EQ(sink.collected().size(), 5u);
  EXPECT_EQ(sink.collected().back(), 4);
}

TEST(SourceStage, PerTokenPaceFunction) {
  Simulation sim;
  auto& out = make_stream<int>(sim, "out", 16);
  sim.add_process<SourceStage<int>>(
      "src", out, iota_tokens(3), StageTiming{.latency = 1, .ii = 1}, nullptr,
      [](const int& v) { return static_cast<sim::Cycle>(v * 10 + 1); });
  sim.add_process<SinkStage<int>>("sink", out, 3,
                                  StageTiming{.latency = 1, .ii = 1});
  const auto r = sim.run();
  // Paces: token0 -> 1 cycle, token1 -> 11, token2 -> 21.
  // Emissions at 0, 1, 12.
  EXPECT_EQ(r.end_cycle, 12u);
}

// --- SinkStage -----------------------------------------------------------------

TEST(SinkStage, DrainRateThrottles) {
  Simulation sim;
  auto& out = make_stream<int>(sim, "out", 2);
  sim.add_process<SourceStage<int>>("src", out, iota_tokens(6),
                                    StageTiming{.latency = 1, .ii = 1});
  sim.add_process<SinkStage<int>>("sink", out, 6,
                                  StageTiming{.latency = 1, .ii = 5});
  const auto r = sim.run();
  // Sink takes one token every 5 cycles: takes at 0,5,10,15,20,25.
  EXPECT_EQ(r.end_cycle, 25u);
  EXPECT_GT(out.push_stalls(), 0u);  // source was back-pressured
}

// --- MapStage -------------------------------------------------------------------

TEST(MapStage, FullyPipelinedLatency) {
  Simulation sim;
  auto& in = make_stream<int>(sim, "in", 4);
  auto& out = make_stream<int>(sim, "out", 4);
  sim.add_process<SourceStage<int>>("src", in, iota_tokens(10),
                                    StageTiming{.latency = 1, .ii = 1});
  auto& map = sim.add_process<MapStage<int, int>>(
      "map", in, out, [](const int& v) { return v * 2; },
      StageTiming{.latency = 8, .ii = 1}, 10);
  auto& sink = sim.add_process<SinkStage<int>>(
      "sink", out, 10, StageTiming{.latency = 1, .ii = 1});
  const auto r = sim.run();
  // Issue k at cycle k (II=1), result ready at k + 1 + 8; last k=9 -> 18.
  EXPECT_EQ(r.end_cycle, 18u);
  EXPECT_EQ(map.processed_tokens(), 10u);
  EXPECT_EQ(map.busy_cycles(), 10u);
  EXPECT_EQ(sink.collected()[3], 6);
}

TEST(MapStage, DynamicWorkSerialisesIssues) {
  Simulation sim;
  auto& in = make_stream<int>(sim, "in", 4);
  auto& out = make_stream<int>(sim, "out", 4);
  sim.add_process<SourceStage<int>>("src", in, iota_tokens(4),
                                    StageTiming{.latency = 1, .ii = 1});
  auto& map = sim.add_process<MapStage<int, int>>(
      "map", in, out, [](const int& v) { return v; },
      StageTiming{.latency = 2, .ii = 1}, 4, nullptr,
      [](const int&) { return sim::Cycle{100}; });
  sim.add_process<SinkStage<int>>("sink", out, 4,
                                  StageTiming{.latency = 1, .ii = 1});
  const auto r = sim.run();
  // Issues at 0,100,200,300; last result ready 300+100+2 = 402.
  EXPECT_EQ(r.end_cycle, 402u);
  EXPECT_EQ(map.busy_cycles(), 400u);
}

TEST(MapStage, BackpressureFromSlowConsumer) {
  Simulation sim;
  auto& in = make_stream<int>(sim, "in", 2);
  auto& out = make_stream<int>(sim, "out", 2);
  sim.add_process<SourceStage<int>>("src", in, iota_tokens(20),
                                    StageTiming{.latency = 1, .ii = 1});
  sim.add_process<MapStage<int, int>>(
      "map", in, out, [](const int& v) { return v; },
      StageTiming{.latency = 1, .ii = 1}, 20);
  sim.add_process<SinkStage<int>>("sink", out, 20,
                                  StageTiming{.latency = 1, .ii = 10});
  const auto r = sim.run();
  // Throughput set by the sink: ~10 cycles per token.
  EXPECT_GE(r.end_cycle, 190u);
  EXPECT_GT(out.push_stalls(), 0u);
  EXPECT_GT(in.push_stalls(), 0u);  // pressure propagates upstream
}

TEST(MapStage, PipelineDepthLimitsInFlight) {
  Simulation sim;
  auto& in = make_stream<int>(sim, "in", 32);
  auto& out = make_stream<int>(sim, "out", 1);
  sim.add_process<SourceStage<int>>("src", in, iota_tokens(8),
                                    StageTiming{.latency = 1, .ii = 1});
  // Depth 2: with the output blocked, at most 2 results may be in flight.
  sim.add_process<MapStage<int, int>>(
      "map", in, out, [](const int& v) { return v; },
      StageTiming{.latency = 4, .ii = 1, .pipeline_depth = 2}, 8);
  sim.add_process<SinkStage<int>>("sink", out, 8,
                                  StageTiming{.latency = 1, .ii = 20});
  const auto r = sim.run();
  // Sink dominates: 8 tokens * 20 cycles apart => ~140 end.
  EXPECT_GE(r.end_cycle, 140u);
  // Order must be preserved despite stalling.
  // (sink stores in arrival order)
  EXPECT_EQ(r.total_steps > 0, true);
}

TEST(MapStage, StatefulKernelCarriesState) {
  Simulation sim;
  auto& in = make_stream<int>(sim, "in", 4);
  auto& out = make_stream<int>(sim, "out", 4);
  sim.add_process<SourceStage<int>>("src", in, iota_tokens(5),
                                    StageTiming{.latency = 1, .ii = 1});
  auto acc = std::make_shared<int>(0);
  sim.add_process<MapStage<int, int>>(
      "map", in, out,
      [acc](const int& v) {
        *acc += v;
        return *acc;
      },
      StageTiming{.latency = 1, .ii = 1}, 5);
  auto& sink = sim.add_process<SinkStage<int>>(
      "sink", out, 5, StageTiming{.latency = 1, .ii = 1});
  sim.run();
  EXPECT_EQ(sink.collected(), (std::vector<int>{0, 1, 3, 6, 10}));
}

TEST(MapStage, RequiresKernel) {
  Simulation sim;
  auto& in = make_stream<int>(sim, "in", 4);
  auto& out = make_stream<int>(sim, "out", 4);
  EXPECT_THROW((sim.add_process<MapStage<int, int>>(
                   "map", in, out, std::function<int(const int&)>{},
                   StageTiming{}, 1)),
               Error);
}

// --- ExpandStage -----------------------------------------------------------------

TEST(ExpandStage, EmitsBatchPacedByII) {
  Simulation sim;
  auto& in = make_stream<int>(sim, "in", 4);
  auto& out = make_stream<int>(sim, "out", 16);
  sim.add_process<SourceStage<int>>("src", in, std::vector<int>{3},
                                    StageTiming{.latency = 1, .ii = 1});
  sim.add_process<ExpandStage<int, int>>(
      "expand", in, out,
      [](const int& n) {
        std::vector<int> batch;
        for (int i = 0; i < n; ++i) batch.push_back(i);
        return batch;
      },
      StageTiming{.latency = 5, .ii = 2}, 1);
  auto& sink = sim.add_process<SinkStage<int>>(
      "sink", out, 3, StageTiming{.latency = 1, .ii = 1});
  const auto r = sim.run();
  EXPECT_EQ(sink.collected(), (std::vector<int>{0, 1, 2}));
  // Input consumed at 0, first emission at 5, then 7, 9.
  EXPECT_EQ(r.end_cycle, 9u);
}

TEST(ExpandStage, HandlesMultipleGroupsAndEmptyBatches) {
  Simulation sim;
  auto& in = make_stream<int>(sim, "in", 4);
  auto& out = make_stream<int>(sim, "out", 16);
  sim.add_process<SourceStage<int>>("src", in, std::vector<int>{2, 0, 3},
                                    StageTiming{.latency = 1, .ii = 1});
  sim.add_process<ExpandStage<int, int>>(
      "expand", in, out,
      [](const int& n) {
        std::vector<int> batch;
        for (int i = 0; i < n; ++i) batch.push_back(n * 100 + i);
        return batch;
      },
      StageTiming{.latency = 1, .ii = 1}, 3);
  auto& sink = sim.add_process<SinkStage<int>>(
      "sink", out, 5, StageTiming{.latency = 1, .ii = 1});
  sim.run();
  EXPECT_EQ(sink.collected(),
            (std::vector<int>{200, 201, 300, 301, 302}));
}

// --- ReduceStage ------------------------------------------------------------------

struct Grouped {
  int group = 0;
  int value = 0;
  bool last = false;
};

TEST(ReduceStage, SumsGroupsAndEmitsOnLast) {
  Simulation sim;
  auto& in = make_stream<Grouped>(sim, "in", 8);
  auto& out = make_stream<int>(sim, "out", 8);
  std::vector<Grouped> tokens = {
      {0, 1, false}, {0, 2, false}, {0, 3, true},
      {1, 10, false}, {1, 20, true}};
  sim.add_process<SourceStage<Grouped>>("src", in, tokens,
                                        StageTiming{.latency = 1, .ii = 1});
  auto acc = std::make_shared<int>(0);
  sim.add_process<ReduceStage<Grouped, int>>(
      "reduce", in, out,
      [acc](const Grouped& g) {
        if (g.value == 1 || g.value == 10) *acc = 0;  // group start
        *acc += g.value;
      },
      [acc]() { return *acc; }, [](const Grouped& g) { return g.last; },
      StageTiming{.latency = 1, .ii = 1}, tokens.size());
  auto& sink = sim.add_process<SinkStage<int>>(
      "sink", out, 2, StageTiming{.latency = 1, .ii = 1});
  sim.run();
  EXPECT_EQ(sink.collected(), (std::vector<int>{6, 30}));
}

TEST(ReduceStage, IIThrottlesAccumulation) {
  Simulation sim;
  auto& in = make_stream<Grouped>(sim, "in", 8);
  auto& out = make_stream<int>(sim, "out", 8);
  std::vector<Grouped> tokens;
  for (int i = 0; i < 10; ++i) tokens.push_back({0, 1, i == 9});
  sim.add_process<SourceStage<Grouped>>("src", in, tokens,
                                        StageTiming{.latency = 1, .ii = 1});
  auto acc = std::make_shared<int>(0);
  auto& reduce = sim.add_process<ReduceStage<Grouped, int>>(
      "reduce", in, out, [acc](const Grouped& g) { *acc += g.value; },
      [acc]() { return *acc; }, [](const Grouped& g) { return g.last; },
      // The Vitis library's carried double add: II=7.
      StageTiming{.latency = 7, .ii = 7}, tokens.size());
  sim.add_process<SinkStage<int>>("sink", out, 1,
                                  StageTiming{.latency = 1, .ii = 1});
  const auto r = sim.run();
  // 10 tokens at II=7: last folded at 63, result ready at 63+7+7.
  EXPECT_EQ(r.end_cycle, 77u);
  EXPECT_EQ(reduce.busy_cycles(), 70u);
}

// --- ZipStage ---------------------------------------------------------------------

TEST(ZipStage, PairsTokensInLockstep) {
  Simulation sim;
  auto& a = make_stream<int>(sim, "a", 4);
  auto& b = make_stream<int>(sim, "b", 4);
  auto& out = make_stream<int>(sim, "out", 8);
  sim.add_process<SourceStage<int>>("sa", a, iota_tokens(5),
                                    StageTiming{.latency = 1, .ii = 1});
  sim.add_process<SourceStage<int>>("sb", b, std::vector<int>{10, 20, 30, 40, 50},
                                    StageTiming{.latency = 1, .ii = 3});
  sim.add_process<ZipStage<int, int, int>>(
      "zip", std::make_tuple(&a, &b), out,
      [](const int& x, const int& y) { return x + y; },
      StageTiming{.latency = 1, .ii = 1}, 5);
  auto& sink = sim.add_process<SinkStage<int>>(
      "sink", out, 5, StageTiming{.latency = 1, .ii = 1});
  const auto r = sim.run();
  EXPECT_EQ(sink.collected(), (std::vector<int>{10, 21, 32, 43, 54}));
  // Rate set by the slower input (II=3): last b token at cycle 12.
  EXPECT_EQ(r.end_cycle, 14u);
}

TEST(ZipStage, ThreeInputs) {
  Simulation sim;
  auto& a = make_stream<int>(sim, "a", 4);
  auto& b = make_stream<int>(sim, "b", 4);
  auto& c = make_stream<int>(sim, "c", 4);
  auto& out = make_stream<int>(sim, "out", 8);
  sim.add_process<SourceStage<int>>("sa", a, std::vector<int>{1, 2},
                                    StageTiming{.latency = 1, .ii = 1});
  sim.add_process<SourceStage<int>>("sb", b, std::vector<int>{10, 20},
                                    StageTiming{.latency = 1, .ii = 1});
  sim.add_process<SourceStage<int>>("sc", c, std::vector<int>{100, 200},
                                    StageTiming{.latency = 1, .ii = 1});
  sim.add_process<ZipStage<int, int, int, int>>(
      "zip", std::make_tuple(&a, &b, &c), out,
      [](const int& x, const int& y, const int& z) { return x + y + z; },
      StageTiming{.latency = 1, .ii = 1}, 2);
  auto& sink = sim.add_process<SinkStage<int>>(
      "sink", out, 2, StageTiming{.latency = 1, .ii = 1});
  sim.run();
  EXPECT_EQ(sink.collected(), (std::vector<int>{111, 222}));
}

TEST(ZipStage, MismatchedStreamsDeadlockDetected) {
  Simulation sim;
  auto& a = make_stream<int>(sim, "a", 4);
  auto& b = make_stream<int>(sim, "b", 4);
  auto& out = make_stream<int>(sim, "out", 8);
  sim.add_process<SourceStage<int>>("sa", a, iota_tokens(5),
                                    StageTiming{.latency = 1, .ii = 1});
  sim.add_process<SourceStage<int>>("sb", b, iota_tokens(4),  // one short!
                                    StageTiming{.latency = 1, .ii = 1});
  sim.add_process<ZipStage<int, int, int>>(
      "zip", std::make_tuple(&a, &b), out,
      [](const int& x, const int& y) { return x + y; },
      StageTiming{.latency = 1, .ii = 1}, 5);
  sim.add_process<SinkStage<int>>("sink", out, 5,
                                  StageTiming{.latency = 1, .ii = 1});
  EXPECT_THROW(sim.run(), Error);
}

// --- BroadcastStage ------------------------------------------------------------------

TEST(BroadcastStage, CopiesToAllOutputs) {
  Simulation sim;
  auto& in = make_stream<int>(sim, "in", 4);
  auto& o1 = make_stream<int>(sim, "o1", 4);
  auto& o2 = make_stream<int>(sim, "o2", 4);
  auto& o3 = make_stream<int>(sim, "o3", 4);
  sim.add_process<SourceStage<int>>("src", in, iota_tokens(4),
                                    StageTiming{.latency = 1, .ii = 1});
  sim.add_process<BroadcastStage<int>>(
      "bcast", in, std::vector<sim::Channel<int>*>{&o1, &o2, &o3},
      StageTiming{.latency = 1, .ii = 1}, 4);
  auto& s1 = sim.add_process<SinkStage<int>>(
      "s1", o1, 4, StageTiming{.latency = 1, .ii = 1});
  auto& s2 = sim.add_process<SinkStage<int>>(
      "s2", o2, 4, StageTiming{.latency = 1, .ii = 1});
  auto& s3 = sim.add_process<SinkStage<int>>(
      "s3", o3, 4, StageTiming{.latency = 1, .ii = 1});
  sim.run();
  EXPECT_EQ(s1.collected(), iota_tokens(4));
  EXPECT_EQ(s2.collected(), iota_tokens(4));
  EXPECT_EQ(s3.collected(), iota_tokens(4));
}

TEST(BroadcastStage, AllOrNothingBlocksOnOneFullOutput) {
  Simulation sim;
  auto& in = make_stream<int>(sim, "in", 8);
  auto& fast = make_stream<int>(sim, "fast", 8);
  auto& slow = make_stream<int>(sim, "slow", 1);
  sim.add_process<SourceStage<int>>("src", in, iota_tokens(6),
                                    StageTiming{.latency = 1, .ii = 1});
  sim.add_process<BroadcastStage<int>>(
      "bcast", in, std::vector<sim::Channel<int>*>{&fast, &slow},
      StageTiming{.latency = 1, .ii = 1}, 6);
  sim.add_process<SinkStage<int>>("sf", fast, 6,
                                  StageTiming{.latency = 1, .ii = 1});
  sim.add_process<SinkStage<int>>("ss", slow, 6,
                                  StageTiming{.latency = 1, .ii = 9});
  const auto r = sim.run();
  // Slow sink sets the pace (one token per 9 cycles).
  EXPECT_GE(r.end_cycle, 45u);
  EXPECT_GT(slow.push_stalls(), 0u);
}

TEST(SourceStage, RecordsEmissionCycles) {
  Simulation sim;
  auto& out = make_stream<int>(sim, "out", 16);
  auto& src = sim.add_process<SourceStage<int>>(
      "src", out, iota_tokens(4), StageTiming{.latency = 1, .ii = 3});
  sim.add_process<SinkStage<int>>("sink", out, 4,
                                  StageTiming{.latency = 1, .ii = 1});
  sim.run();
  EXPECT_EQ(src.emission_cycles(),
            (std::vector<sim::Cycle>{0, 3, 6, 9}));
}

TEST(SinkStage, RecordsArrivalCycles) {
  Simulation sim;
  auto& out = make_stream<int>(sim, "out", 16);
  sim.add_process<SourceStage<int>>("src", out, iota_tokens(3),
                                    StageTiming{.latency = 1, .ii = 5});
  auto& sink = sim.add_process<SinkStage<int>>(
      "sink", out, 3, StageTiming{.latency = 1, .ii = 1});
  sim.run();
  // Tokens land the cycle they are emitted (same-cycle hand-off).
  EXPECT_EQ(sink.arrival_cycles(), (std::vector<sim::Cycle>{0, 5, 10}));
}

TEST(SourceSink, LatencyThroughAMapStage) {
  Simulation sim;
  auto& in = make_stream<int>(sim, "in", 4);
  auto& out = make_stream<int>(sim, "out", 4);
  auto& src = sim.add_process<SourceStage<int>>(
      "src", in, iota_tokens(3), StageTiming{.latency = 1, .ii = 10});
  sim.add_process<MapStage<int, int>>(
      "map", in, out, [](const int& v) { return v; },
      StageTiming{.latency = 6, .ii = 1}, 3);
  auto& sink = sim.add_process<SinkStage<int>>(
      "sink", out, 3, StageTiming{.latency = 1, .ii = 1});
  sim.run();
  // Uncontended: every token's latency is the map's issue+latency (7).
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sink.arrival_cycles()[i] - src.emission_cycles()[i], 7u);
  }
}

TEST(StageTiming, DepthDefaults) {
  EXPECT_EQ((StageTiming{.latency = 8, .ii = 1}.depth_or_default()), 9u);
  EXPECT_EQ((StageTiming{.latency = 8, .ii = 4}.depth_or_default()), 3u);
  EXPECT_EQ(
      (StageTiming{.latency = 8, .ii = 1, .pipeline_depth = 2}
           .depth_or_default()),
      2u);
}

}  // namespace
}  // namespace cdsflow::hls
