/// \file bench_batch_pricer.cpp
/// CPU fast path: single-thread throughput of the batched SoA kernel
/// (schedule dedup + precomputed curve grids) against the scalar reference
/// path, reported as JSON for the cross-PR perf trajectory.
///
/// Two book styles bracket the dedup opportunity:
///   - "continuous": maturities uniform over [1, 10]y (the generator's
///     default) -- schedules barely repeat, so the speedup isolates the
///     O(log) prefix-sum/binary-search curve queries;
///   - "standard-tenor": maturities drawn from the 1/3/5/7/10y quoting grid
///     real CDS books use -- 16k options collapse to 5 payment grids and the
///     per-option cost drops to one branch-free combine.
/// Both runs cross-check the batch spreads against ReferencePricer
/// (<= 1e-9 relative required; the bench fails otherwise). A sharded-runtime
/// section prices the tenor book through PortfolioRuntime with the scalar
/// and batch workers for the wall-clock view.
///
/// Usage: bench_batch_pricer [n_options] [knots] [out.json]
///   defaults: 16384 1024 BENCH_cpu_fastpath.json

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cds/batch_pricer.hpp"
#include "cds/pricer.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "report/table.hpp"
#include "runtime/portfolio_runtime.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"

namespace {

using namespace cdsflow;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct BookResult {
  std::string book;
  double scalar_seconds = 0.0;
  double batch_seconds = 0.0;
  double speedup = 0.0;
  double max_rel_error = 0.0;
  cds::BatchStats stats;
};

BookResult run_book(const std::string& name,
                    const cds::TermStructure& interest,
                    const cds::TermStructure& hazard,
                    const std::vector<cds::CdsOption>& book) {
  BookResult out;
  out.book = name;

  // Scalar reference path: min over repeats (per-option curve scans).
  const cds::ReferencePricer reference(interest, hazard);
  std::vector<cds::SpreadResult> want;
  out.scalar_seconds = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    want = reference.price(book);
    out.scalar_seconds = std::min(out.scalar_seconds, seconds_since(t0));
  }

  // Batch fast path: min over repeats with a warmed workspace.
  const cds::BatchPricer batch(interest, hazard);
  cds::BatchPricer::Workspace ws;
  std::vector<cds::SpreadResult> got(book.size());
  out.batch_seconds = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    out.stats = batch.price(book, got, ws);
    out.batch_seconds = std::min(out.batch_seconds, seconds_since(t0));
  }

  for (std::size_t i = 0; i < book.size(); ++i) {
    out.max_rel_error =
        std::max(out.max_rel_error,
                 relative_difference(got[i].spread_bps, want[i].spread_bps));
  }
  out.speedup = out.scalar_seconds / out.batch_seconds;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16384;
  const std::size_t knots =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1024;
  const std::string out_path = argc > 3 ? argv[3] : "BENCH_cpu_fastpath.json";

  const auto interest = workload::paper_interest_curve(knots);
  const auto hazard = workload::paper_hazard_curve(knots);
  std::cout << "== CPU fast path: batched SoA kernel vs scalar reference, "
            << n_options << " options, " << knots << "-knot curves ==\n\n";

  workload::PortfolioSpec continuous;
  continuous.count = n_options;
  continuous.seed = 7;
  workload::PortfolioSpec tenor = continuous;
  tenor.maturity_tenor_grid = {1.0, 3.0, 5.0, 7.0, 10.0};

  std::vector<BookResult> results;
  results.push_back(run_book("continuous", interest, hazard,
                             workload::make_portfolio(continuous)));
  const auto tenor_book = workload::make_portfolio(tenor);
  results.push_back(run_book("standard-tenor", interest, hazard, tenor_book));

  report::Table table("Single-thread throughput, scalar vs batch kernel");
  table.set_columns({"Book", "Scalar opts/s", "Batch opts/s", "Speedup",
                     "Unique grids", "Max rel err"});
  bool parity_ok = true;
  double min_speedup = 1e300;
  for (const auto& r : results) {
    const double n = static_cast<double>(r.stats.options);
    table.add_row({r.book, with_thousands(n / r.scalar_seconds, 0),
                   with_thousands(n / r.batch_seconds, 0),
                   fixed(r.speedup, 1) + "x",
                   std::to_string(r.stats.unique_schedules),
                   compact(r.max_rel_error)});
    parity_ok = parity_ok && r.max_rel_error <= 1e-9;
    min_speedup = std::min(min_speedup, r.speedup);
  }
  std::cout << table.render_text() << '\n';

  // Sharded-runtime wall clock on the tenor book, scalar vs batch workers.
  const unsigned workers = std::max(1u, std::thread::hardware_concurrency());
  double wall_ops[2] = {0.0, 0.0};
  const char* engines[2] = {"cpu", "cpu-batch"};
  for (int e = 0; e < 2; ++e) {
    runtime::RuntimeConfig cfg;
    cfg.engine = engines[e];
    cfg.workers = workers;
    runtime::PortfolioRuntime rt(interest, hazard, cfg);
    wall_ops[e] = rt.price(tenor_book).wall_options_per_second;
  }
  std::cout << "sharded runtime (" << workers << " worker(s), tenor book): "
            << with_thousands(wall_ops[0], 0) << " -> "
            << with_thousands(wall_ops[1], 0) << " options/s wall ("
            << fixed(wall_ops[1] / wall_ops[0], 1) << "x)\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"cpu_fastpath\",\n"
       << "  \"n_options\": " << n_options << ",\n"
       << "  \"curve_knots\": " << knots << ",\n"
       << "  \"single_thread_speedup\": " << min_speedup << ",\n"
       << "  \"parity_within_1e9\": " << (parity_ok ? "true" : "false")
       << ",\n"
       << "  \"books\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << (i == 0 ? "" : ",") << "\n    {\"book\": \"" << r.book << "\""
         << ", \"scalar_seconds\": " << r.scalar_seconds
         << ", \"batch_seconds\": " << r.batch_seconds
         << ", \"speedup\": " << r.speedup
         << ", \"max_rel_error\": " << r.max_rel_error
         << ", \"unique_schedules\": " << r.stats.unique_schedules
         << ", \"grid_points\": " << r.stats.grid_points
         << ", \"scalar_points\": " << r.stats.scalar_points << "}";
  }
  json << "\n  ],\n"
       << "  \"sharded_runtime\": {\"workers\": " << workers
       << ", \"cpu_wall_options_per_second\": " << wall_ops[0]
       << ", \"cpu_batch_wall_options_per_second\": " << wall_ops[1]
       << "}\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  std::cout << "JSON written to " << out_path << '\n';

  if (!parity_ok) {
    std::cerr << "FAIL: batch kernel diverged from the reference beyond "
                 "1e-9 relative\n";
    return 1;
  }
  if (min_speedup < 5.0) {
    std::cerr << "warning: single-thread speedup " << fixed(min_speedup, 2)
              << "x below the 5x acceptance bar on this host/size\n";
  }
  return 0;
}
